// Quickstart: open an engine, create a spatial table, load a few
// features, and run the basic spatial query shapes — window search,
// point-in-polygon, distance search and k-nearest-neighbour.
package main

import (
	"fmt"
	"log"

	"jackpine"
)

func main() {
	// A PostGIS-like engine: exact DE-9IM topology with an R-tree index.
	eng := jackpine.OpenEngine(jackpine.GaiaDB())

	mustExec := func(q string) {
		if _, err := eng.Exec(q); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}

	mustExec(`CREATE TABLE pois (id INTEGER, name TEXT, kind TEXT, loc GEOMETRY)`)
	mustExec(`INSERT INTO pois VALUES
		(1, 'city hall',   'civic',  ST_MakePoint(50, 50)),
		(2, 'north park',  'park',   ST_GeomFromText('POLYGON ((20 70, 45 70, 45 95, 20 95, 20 70))')),
		(3, 'ferry dock',  'transit', ST_MakePoint(90, 10)),
		(4, 'museum',      'civic',  ST_MakePoint(55, 48)),
		(5, 'river trail', 'park',   ST_GeomFromText('LINESTRING (0 30, 40 35, 80 28, 100 40)'))`)
	mustExec(`CREATE SPATIAL INDEX pois_loc ON pois (loc)`)

	show := func(title, q string) {
		res, err := eng.Exec(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Printf("\n%s\n  %s\n", title, q)
		for _, row := range res.Rows {
			fmt.Print("  ")
			for i, v := range row {
				if i > 0 {
					fmt.Print(" | ")
				}
				fmt.Print(v)
			}
			fmt.Println()
		}
	}

	show("Window search (everything in the city centre):",
		`SELECT id, name FROM pois WHERE ST_Intersects(loc, ST_MakeEnvelope(40, 40, 60, 60))`)

	show("Point-in-polygon (which park contains the picnic spot?):",
		`SELECT name FROM pois WHERE kind = 'park' AND ST_Contains(loc, ST_MakePoint(30, 80))`)

	show("Distance search (civic buildings within 10 units of city hall):",
		`SELECT name, ST_Distance(loc, ST_MakePoint(50, 50)) AS dist
		 FROM pois WHERE kind = 'civic' AND ST_DWithin(loc, ST_MakePoint(50, 50), 10)`)

	show("Nearest neighbours of the ferry dock:",
		`SELECT name, ST_Distance(loc, ST_MakePoint(90, 10)) AS dist
		 FROM pois ORDER BY ST_Distance(loc, ST_MakePoint(90, 10)) LIMIT 3`)

	show("Geometry construction and measurement:",
		`SELECT name, ST_Area(ST_Buffer(loc, 5)) AS service_area FROM pois WHERE kind = 'transit'`)
}
