// Remote: the benchmark's portability story end to end — start a wire
// server around a MySpatial-profile engine, load the dataset over TCP,
// and run the same micro queries through the remote driver that the
// in-process connector runs locally, comparing results and costs.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"jackpine"
	"jackpine/internal/engine"
	"jackpine/internal/wire"
)

func main() {
	// Local reference engine.
	local := jackpine.OpenEngine(jackpine.GaiaDB())
	ds := jackpine.GenerateDataset(jackpine.ScaleSmall, 1)
	if err := jackpine.LoadDataset(local, ds, true); err != nil {
		log.Fatal(err)
	}

	// Remote engine behind a TCP server on a random port.
	remoteEng := engine.Open(engine.GaiaDB())
	srv := wire.NewServer(remoteEng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("wire server listening on %s\n", addr)

	remote := jackpine.ConnectRemote(addr, "gaiadb-remote")
	conn, err := remote.Connect()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := jackpine.LoadDatasetConn(conn, ds, true); err != nil {
		log.Fatal(err)
	}
	conn.Close()
	fmt.Printf("loaded %d features over TCP in %s\n\n", ds.TotalFeatures(), time.Since(start).Round(time.Millisecond))

	// The identical benchmark code runs against both connectors — the
	// "any database with a driver" claim.
	ctx := jackpine.NewQueryContext(ds)
	suite := jackpine.TopologicalSuite()[:6]
	opts := jackpine.Options{Warmup: 1, Runs: 3}

	localRes, err := jackpine.RunMicro(jackpine.Connect(local), suite, ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	remoteRes, err := jackpine.RunMicro(remote, suite, ctx, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-36s %12s %12s %10s\n", "id", "query", "in-process", "over TCP", "wire cost")
	for i := range localRes {
		l, r := localRes[i], remoteRes[i]
		fmt.Printf("%-6s %-36s %12s %12s %9.1fx\n",
			l.ID, l.Name, l.Mean.Round(time.Microsecond), r.Mean.Round(time.Microsecond),
			float64(r.Mean)/float64(l.Mean))
		if l.Rows != r.Rows {
			fmt.Fprintf(os.Stderr, "result mismatch on %s: %d vs %d rows\n", l.ID, l.Rows, r.Rows)
			os.Exit(1)
		}
	}
	fmt.Println("\nlocal and remote result sets are identical; the delta is pure transport.")
}
