// Geocode: the geocoding and reverse-geocoding macro scenarios (MS2,
// MS3) as an application — resolve street addresses to coordinates via
// the indexed address-range lookup, then resolve coordinates back to the
// nearest address with a k-nearest-neighbour query.
package main

import (
	"fmt"
	"log"

	"jackpine"
	"jackpine/internal/geom"
)

func main() {
	eng := jackpine.OpenEngine(jackpine.GaiaDB())
	ds := jackpine.GenerateDataset(jackpine.ScaleSmall, 1)
	if err := jackpine.LoadDataset(eng, ds, true); err != nil {
		log.Fatal(err)
	}

	addresses := []struct {
		street string
		house  int64
	}{
		{"Oak St", 315},
		{"Main St", 1250},
		{"Cedar Ave", 742},
	}
	fmt.Println("geocoding (address → coordinate):")
	var lastCoord geom.Coord
	for _, a := range addresses {
		c, err := geocode(eng, a.street, a.house)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d %-10s → (%.1f, %.1f)\n", a.house, a.street, c.X, c.Y)
		lastCoord = c
	}

	fmt.Println("\nreverse geocoding (coordinate → address):")
	probes := []geom.Coord{
		lastCoord,
		{X: 512, Y: 481},
		{X: 1503, Y: 1204},
	}
	for _, p := range probes {
		addr, err := reverseGeocode(eng, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (%.1f, %.1f) → %s\n", p.X, p.Y, addr)
	}
}

// geocode resolves a street address to a coordinate by finding the edge
// whose address range covers the house number and interpolating along it.
func geocode(eng *jackpine.Engine, street string, house int64) (geom.Coord, error) {
	q := fmt.Sprintf(
		"SELECT fromaddr, toaddr, geo FROM edges WHERE name = '%s' AND fromaddr <= %d AND toaddr >= %d",
		street, house, house)
	res, err := eng.Exec(q)
	if err != nil {
		return geom.Coord{}, err
	}
	if len(res.Rows) == 0 {
		return geom.Coord{}, fmt.Errorf("no address range covers %d %s", house, street)
	}
	row := res.Rows[0]
	from, to := row[0].Int, row[1].Int
	line := row[2].Geom.(geom.LineString)
	t := float64(house-from) / float64(to-from)
	a, b := line[0], line[len(line)-1]
	return geom.Coord{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}, nil
}

// reverseGeocode finds the nearest road edge with a kNN query and
// interpolates the house number from the projection onto the segment.
func reverseGeocode(eng *jackpine.Engine, p geom.Coord) (string, error) {
	q := fmt.Sprintf(
		"SELECT name, fromaddr, toaddr, geo FROM edges ORDER BY ST_Distance(geo, ST_MakePoint(%g, %g)) LIMIT 1",
		p.X, p.Y)
	res, err := eng.Exec(q)
	if err != nil {
		return "", err
	}
	if len(res.Rows) == 0 {
		return "", fmt.Errorf("no edges in database")
	}
	row := res.Rows[0]
	line := row[3].Geom.(geom.LineString)
	_, t := geom.ClosestPointOnSegment(p, line[0], line[len(line)-1])
	from, to := row[1].Int, row[2].Int
	house := from + int64(t*float64(to-from))
	return fmt.Sprintf("%d %s", house, row[0].Text), nil
}
