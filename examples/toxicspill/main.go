// Toxicspill: the toxic spill analysis macro scenario (MS6) as an
// application — model a chemical spill on a motorway, derive the plume
// with ST_Buffer, and report threatened water bodies, sensitive sites
// inside the plume, and the nearest hospitals for emergency response.
package main

import (
	"fmt"
	"log"

	"jackpine"
	"jackpine/internal/geom"
)

func main() {
	eng := jackpine.OpenEngine(jackpine.GaiaDB())
	ds := jackpine.GenerateDataset(jackpine.ScaleSmall, 1)
	if err := jackpine.LoadDataset(eng, ds, true); err != nil {
		log.Fatal(err)
	}

	// The incident: a tanker crash on the first motorway segment that
	// crosses the river corridor.
	res, err := eng.Exec(`SELECT e.id, e.name, e.geo FROM areawater w JOIN edges e
		ON ST_Intersects(e.geo, ST_Buffer(w.geo, 60))
		WHERE w.id = 1 AND e.class = 'motorway' LIMIT 1`)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Rows) == 0 {
		log.Fatal("no motorway near the river in this dataset")
	}
	edgeName := res.Rows[0][1].Text
	line := res.Rows[0][2].Geom.(geom.LineString)
	spill := geom.Coord{
		X: (line[0].X + line[len(line)-1].X) / 2,
		Y: (line[0].Y + line[len(line)-1].Y) / 2,
	}
	const plumeRadius = 200.0
	fmt.Printf("incident: tanker spill on %s at (%.0f, %.0f), plume radius %.0f\n\n",
		edgeName, spill.X, spill.Y, plumeRadius)
	plume := fmt.Sprintf("ST_Buffer(ST_MakePoint(%g, %g), %g)", spill.X, spill.Y, plumeRadius)

	// 1. Water bodies threatened by runoff.
	res, err = eng.Exec(fmt.Sprintf(
		`SELECT name, ST_Area(ST_Intersection(geo, %s)) AS exposed FROM areawater
		 WHERE ST_Intersects(geo, %s)`, plume, plume))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("threatened water bodies (%d):\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  %-24s exposed area %.0f\n", row[0].Text, row[1].Float)
	}

	// 2. Sensitive sites inside the plume.
	res, err = eng.Exec(fmt.Sprintf(
		`SELECT category, COUNT(*) FROM pointlm WHERE ST_Intersects(geo, %s) GROUP BY category ORDER BY category`,
		plume))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsites inside the plume:\n")
	if len(res.Rows) == 0 {
		fmt.Println("  none")
	}
	for _, row := range res.Rows {
		fmt.Printf("  %-14s %d\n", row[0].Text, row[1].Int)
	}

	// 3. Nearest hospitals for response routing.
	res, err = eng.Exec(fmt.Sprintf(
		`SELECT name, ST_Distance(geo, ST_MakePoint(%g, %g)) AS dist FROM pointlm
		 WHERE category = 'hospital' ORDER BY ST_Distance(geo, ST_MakePoint(%g, %g)) LIMIT 3`,
		spill.X, spill.Y, spill.X, spill.Y))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnearest hospitals:\n")
	for _, row := range res.Rows {
		fmt.Printf("  %-24s %.0f away\n", row[0].Text, row[1].Float)
	}

	// 4. Road closures: edges crossing the plume boundary.
	res, err = eng.Exec(fmt.Sprintf(
		`SELECT COUNT(*) FROM edges WHERE ST_Intersects(geo, %s)`, plume))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroad segments to close: %d\n", res.Rows[0][0].Int)
}
