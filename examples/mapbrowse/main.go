// Mapbrowse: the map search & browsing macro scenario (MS1) as an
// application — simulate a user panning and zooming over the synthetic
// city and render each viewport as ASCII art from the engine's window
// query results.
package main

import (
	"fmt"
	"log"

	"jackpine"
	"jackpine/internal/geom"
)

const (
	cols = 72
	rows = 24
)

func main() {
	eng := jackpine.OpenEngine(jackpine.GaiaDB())
	ds := jackpine.GenerateDataset(jackpine.ScaleSmall, 1)
	if err := jackpine.LoadDataset(eng, ds, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d features; extent %.0fx%.0f\n",
		ds.TotalFeatures(), ds.Extent.Width(), ds.Extent.Height())

	// A browsing session: zoom from city view into a neighbourhood.
	views := []struct {
		title string
		win   geom.Rect
	}{
		{"city view", geom.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}},
		{"district view", geom.Rect{MinX: 600, MinY: 600, MaxX: 1400, MaxY: 1400}},
		{"street view", geom.Rect{MinX: 900, MinY: 900, MaxX: 1200, MaxY: 1200}},
		{"pan east", geom.Rect{MinX: 1000, MinY: 900, MaxX: 1300, MaxY: 1200}},
	}
	for _, v := range views {
		render(eng, v.title, v.win)
	}
}

// render draws one viewport: water '~', landmarks '#', roads '+', points '.'.
func render(eng *jackpine.Engine, title string, win geom.Rect) {
	canvas := make([][]byte, rows)
	for i := range canvas {
		canvas[i] = make([]byte, cols)
		for j := range canvas[i] {
			canvas[i][j] = ' '
		}
	}
	plot := func(c geom.Coord, ch byte) {
		x := int((c.X - win.MinX) / win.Width() * float64(cols))
		y := int((c.Y - win.MinY) / win.Height() * float64(rows))
		if x >= 0 && x < cols && y >= 0 && y < rows {
			canvas[rows-1-y][x] = ch
		}
	}
	drawGeom := func(g geom.Geometry, ch byte) {
		switch t := g.(type) {
		case geom.Point:
			plot(t.Coord, ch)
		case geom.LineString:
			drawPath(t, ch, plot)
		case geom.Polygon:
			for _, r := range t {
				drawPath(geom.LineString(r), ch, plot)
			}
		case geom.MultiPolygon:
			for _, p := range t {
				for _, r := range p {
					drawPath(geom.LineString(r), ch, plot)
				}
			}
		}
	}

	layers := []struct {
		table string
		ch    byte
	}{
		{"areawater", '~'},
		{"arealm", '#'},
		{"edges", '+'},
		{"pointlm", '.'},
	}
	totalRows := 0
	for _, layer := range layers {
		q := fmt.Sprintf("SELECT geo FROM %s WHERE ST_Intersects(geo, ST_MakeEnvelope(%g, %g, %g, %g))",
			layer.table, win.MinX, win.MinY, win.MaxX, win.MaxY)
		res, err := eng.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		totalRows += len(res.Rows)
		for _, row := range res.Rows {
			if row[0].Geom != nil {
				drawGeom(row[0].Geom, layer.ch)
			}
		}
	}

	fmt.Printf("\n-- %s [%.0f,%.0f → %.0f,%.0f] (%d features) --\n",
		title, win.MinX, win.MinY, win.MaxX, win.MaxY, totalRows)
	for _, line := range canvas {
		fmt.Println(string(line))
	}
}

// drawPath samples a polyline onto the canvas.
func drawPath(l geom.LineString, ch byte, plot func(geom.Coord, byte)) {
	for i := 0; i+1 < len(l); i++ {
		a, b := l[i], l[i+1]
		steps := int(geom.Dist(a, b)/4) + 1
		for s := 0; s <= steps; s++ {
			t := float64(s) / float64(steps)
			plot(geom.Coord{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}, ch)
		}
	}
}
