// Cluster: the scale-out story end to end — partition the benchmark
// dataset across four engines behind a scatter-gather router, show that
// every query answers exactly as a single engine would, then rebuild the
// same cluster over TCP with one wire server per shard.
package main

import (
	"fmt"
	"log"

	"jackpine"
	"jackpine/internal/cluster"
	"jackpine/internal/engine"
	"jackpine/internal/tiger"
	"jackpine/internal/wire"
)

func main() {
	ds := jackpine.GenerateDataset(jackpine.ScaleSmall, 1)

	// Single-engine reference.
	single := jackpine.OpenEngine(jackpine.GaiaDB())
	if err := jackpine.LoadDataset(single, ds, true); err != nil {
		log.Fatal(err)
	}

	// The same dataset spatially partitioned across four engines. The
	// cluster is an ordinary Connector: suites, reports and examples run
	// against it unchanged.
	cl, err := jackpine.OpenCluster(jackpine.GaiaDB(), ds, 4)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := cl.Connect()
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	queries := []string{
		// Window scan: only shards whose data MBR meets the window run it.
		"SELECT id, name FROM pointlm WHERE ST_Intersects(geo, ST_MakeEnvelope(150, 150, 900, 900)) ORDER BY id",
		// Aggregate: shards return partial states, the router merges them.
		"SELECT COUNT(*), SUM(ST_Length(geo)) FROM edges",
		// kNN: each shard returns its best k, the router keeps the global k.
		"SELECT id FROM pointlm ORDER BY ST_Distance(geo, ST_MakePoint(500, 500)) LIMIT 5",
	}
	for _, q := range queries {
		want, err := single.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		got, err := conn.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		if fmt.Sprint(want.Rows) != fmt.Sprint(got.Rows) {
			log.Fatalf("cluster diverged from single engine on %s", q)
		}
		fmt.Printf("%d rows, identical on 1 and 4 shards:  %s\n", len(got.Rows), q)
	}

	// EXPLAIN shows the routing, and ShardStats how often pruning skipped
	// entire shards.
	plan, err := conn.Query("EXPLAIN SELECT id FROM pointlm WHERE ST_Intersects(geo, ST_MakeEnvelope(150, 150, 900, 900))")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range plan.Rows {
		fmt.Printf("explain: %v %v %v\n", row[0], row[1], row[2])
	}
	ss := cl.ShardStats()
	fmt.Printf("scatters=%d shard-queries=%d pruned=%d (%.0f%%)\n\n",
		ss.Scatters, ss.ShardQueries, ss.Pruned, 100*ss.PruneRate())

	// The same cluster over TCP: one wire server per shard, exactly what
	// `spatialdbd -preload small -shard i -of 4` runs as a process.
	part, err := cluster.NewPartitioner(ds.Extent, 4)
	if err != nil {
		log.Fatal(err)
	}
	addrs := make([]string, 4)
	for i := range addrs {
		eng := engine.Open(engine.GaiaDB())
		if err := tiger.LoadShard(execer{eng}, ds, true, i, part.Assign); err != nil {
			log.Fatal(err)
		}
		srv := wire.NewServer(eng)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs[i] = addr
	}
	wireCl, err := jackpine.OpenClusterRemote(jackpine.GaiaDB(), ds, addrs)
	if err != nil {
		log.Fatal(err)
	}
	wireConn, err := wireCl.Connect()
	if err != nil {
		log.Fatal(err)
	}
	defer wireConn.Close()
	for _, q := range queries {
		want, err := single.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		got, err := wireConn.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		if fmt.Sprint(want.Rows) != fmt.Sprint(got.Rows) {
			log.Fatalf("wire cluster diverged from single engine on %s", q)
		}
		fmt.Printf("%d rows, identical over %d wire shards: %s\n", len(got.Rows), len(addrs), q)
	}
}

type execer struct{ e *engine.Engine }

// Exec implements tiger.Execer.
func (a execer) Exec(q string) error {
	_, err := a.e.Exec(q)
	return err
}
