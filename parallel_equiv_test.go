package jackpine

import (
	"strings"
	"testing"
)

// canonRows renders a result set into one comparable string: one line
// per row, cells joined by a unit separator, in the order the engine
// returned them. The executor's shard-order merge guarantees parallel
// plans reproduce the serial row order exactly, so the comparison is
// over the ordered rows, not a sorted multiset.
func canonRows(rs *ResultSet) string {
	var b strings.Builder
	for _, row := range rs.Rows {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(0x1f)
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelEquivalence runs the entire micro suite (MT1–MT15,
// MA1–MA12) at parallelism 1, 2, and 8 and requires byte-identical
// results from every query: same columns, same rows, same order, same
// float rendering (SUM/AVG accumulate exactly, so shard boundaries
// cannot perturb low-order bits).
func TestParallelEquivalence(t *testing.T) {
	ds := GenerateDataset(ScaleSmall, 1)
	eng := OpenEngine(GaiaDB(), WithParallelism(1))
	if err := LoadDataset(eng, ds, true); err != nil {
		t.Fatal(err)
	}
	ctx := NewQueryContext(ds)
	conn, err := Connect(eng).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if eng.Parallelism() != 1 {
		t.Fatalf("WithParallelism(1): engine reports %d", eng.Parallelism())
	}

	baseline := make(map[string]string)
	for _, q := range MicroSuite() {
		rs, err := conn.Query(q.SQL(ctx, 0))
		if err != nil {
			t.Fatalf("%s serial: %v", q.ID, err)
		}
		baseline[q.ID] = canonRows(rs)
	}

	for _, par := range []int{2, 8} {
		eng.SetParallelism(par)
		for _, q := range MicroSuite() {
			rs, err := conn.Query(q.SQL(ctx, 0))
			if err != nil {
				t.Fatalf("%s at parallelism %d: %v", q.ID, par, err)
			}
			if got := canonRows(rs); got != baseline[q.ID] {
				t.Errorf("%s: parallelism %d diverges from serial\nserial:\n%s\nparallel:\n%s",
					q.ID, par, baseline[q.ID], got)
			}
		}
	}

	// The sweep above must actually exercise the parallel path: at
	// parallelism 8 the scan-heavy MA2 plan reports a parallel access.
	eng.SetParallelism(8)
	res, err := eng.Exec("SELECT SUM(ST_Length(geo)) FROM edges")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Access) == 0 || !strings.Contains(res.Access[0], "parallel seqscan (8 workers)") {
		t.Errorf("MA2 at parallelism 8: access = %v, want parallel seqscan", res.Access)
	}
}
