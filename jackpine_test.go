package jackpine

import (
	"math"
	"strings"
	"testing"

	"jackpine/internal/storage"
	"jackpine/internal/wire"
)

// newLoadedEngine loads the shared small dataset into a fresh engine.
func newLoadedEngine(t *testing.T, p Profile) *Engine {
	t.Helper()
	eng := OpenEngine(p)
	if err := LoadDataset(eng, testDataset(t), true); err != nil {
		t.Fatal(err)
	}
	return eng
}

var sharedTestDS *Dataset

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	if sharedTestDS == nil {
		sharedTestDS = GenerateDataset(ScaleSmall, 1)
	}
	return sharedTestDS
}

func TestPublicAPIEndToEnd(t *testing.T) {
	eng := newLoadedEngine(t, GaiaDB())
	ctx := NewQueryContext(testDataset(t))

	results, err := RunMicro(Connect(eng), MicroSuite(), ctx, Options{Warmup: 0, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 27 {
		t.Fatalf("micro results = %d", len(results))
	}
	var sb strings.Builder
	WriteMicroTable(&sb, results)
	if !strings.Contains(sb.String(), "MT1") {
		t.Error("table rendering broken")
	}

	macro := RunMacroSuite(Connect(eng), ctx, Options{Warmup: 0, Runs: 1})
	if len(macro) != 7 {
		t.Fatalf("macro results = %d", len(macro))
	}
	for _, r := range macro {
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
		}
	}
}

// TestEnginesAgreeOnExactAnalysis verifies the correctness invariant the
// benchmark relies on: non-windowed analysis queries return identical
// values on every engine (the profiles differ in predicates and
// indexing, never in measurement functions).
func TestEnginesAgreeOnExactAnalysis(t *testing.T) {
	queries := []string{
		"SELECT SUM(ST_Area(geo)) FROM arealm",
		"SELECT SUM(ST_Length(geo)) FROM edges",
		"SELECT SUM(ST_Area(ST_Envelope(geo))) FROM areawater",
		"SELECT COUNT(*) FROM parcels",
		"SELECT SUM(ST_NumPoints(geo)) FROM areawater",
	}
	var baseline []storage.Value
	for i, p := range AllProfiles() {
		eng := newLoadedEngine(t, p)
		var got []storage.Value
		for _, q := range queries {
			res, err := eng.Exec(q)
			if err != nil {
				t.Fatalf("%s: %s: %v", p.Name, q, err)
			}
			got = append(got, res.Rows[0][0])
		}
		if i == 0 {
			baseline = got
			continue
		}
		for j := range queries {
			bf, _ := baseline[j].AsFloat()
			gf, _ := got[j].AsFloat()
			if math.Abs(bf-gf) > 1e-6*math.Max(1, math.Abs(bf)) {
				t.Errorf("%s disagrees on %q: %v vs %v", p.Name, queries[j], got[j], baseline[j])
			}
		}
	}
}

// TestIndexedMatchesUnindexed verifies the planner invariant: access
// path selection never changes results on an exact engine.
func TestIndexedMatchesUnindexed(t *testing.T) {
	ds := testDataset(t)
	indexed := newLoadedEngine(t, GaiaDB())
	plain := OpenEngine(GaiaDB())
	if err := LoadDataset(plain, ds, false); err != nil {
		t.Fatal(err)
	}
	ctx := NewQueryContext(ds)
	for _, q := range TopologicalSuite() {
		sqlText := q.SQL(ctx, 3)
		ri, err := indexed.Exec(sqlText)
		if err != nil {
			t.Fatalf("%s (indexed): %v", q.ID, err)
		}
		rp, err := plain.Exec(sqlText)
		if err != nil {
			t.Fatalf("%s (plain): %v", q.ID, err)
		}
		if ri.Rows[0][0].Int != rp.Rows[0][0].Int {
			t.Errorf("%s: indexed count %v != seqscan count %v (access %v vs %v)",
				q.ID, ri.Rows[0][0], rp.Rows[0][0], ri.Access, rp.Access)
		}
	}
}

// TestExactEnginesAgreeOnTopology verifies that the two exact-semantics
// profiles (R-tree vs grid index) return identical results for every
// topological micro query across several probe iterations — the index
// family must never change answers.
func TestExactEnginesAgreeOnTopology(t *testing.T) {
	gaia := newLoadedEngine(t, GaiaDB())
	commerce := newLoadedEngine(t, CommerceDB())
	ctx := NewQueryContext(testDataset(t))
	for _, q := range TopologicalSuite() {
		for iter := 0; iter < 3; iter++ {
			sqlText := q.SQL(ctx, iter)
			rg, errG := gaia.Exec(sqlText)
			rc, errC := commerce.Exec(sqlText)
			// Feature gaps differ per profile: only compare queries both
			// engines support.
			if errG != nil || errC != nil {
				continue
			}
			if rg.Rows[0][0].Int != rc.Rows[0][0].Int {
				t.Errorf("%s iter %d: gaiadb=%v commercedb=%v (access %v vs %v)",
					q.ID, iter, rg.Rows[0][0], rc.Rows[0][0], rg.Access, rc.Access)
			}
		}
	}
}

// TestRemoteMatchesLocal verifies the wire transport returns the same
// results as in-process execution.
func TestRemoteMatchesLocal(t *testing.T) {
	eng := newLoadedEngine(t, GaiaDB())
	srv := wire.NewServer(eng)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	local, _ := Connect(eng).Connect()
	remote, err := ConnectRemote(addr, "remote-test").Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	defer remote.Close()

	queries := []string{
		"SELECT COUNT(*) FROM edges",
		"SELECT id, name FROM pointlm WHERE ST_Intersects(geo, ST_MakeEnvelope(0, 0, 600, 600)) ORDER BY id LIMIT 5",
		"SELECT SUM(ST_Area(geo)) FROM arealm",
	}
	for _, q := range queries {
		lr, err := local.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := remote.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(lr.Rows) != len(rr.Rows) {
			t.Fatalf("%q: row counts differ %d vs %d", q, len(lr.Rows), len(rr.Rows))
		}
		for i := range lr.Rows {
			for j := range lr.Rows[i] {
				if lr.Rows[i][j].String() != rr.Rows[i][j].String() {
					t.Errorf("%q row %d col %d: %v vs %v", q, i, j, lr.Rows[i][j], rr.Rows[i][j])
				}
			}
		}
	}
}

// TestLoadDatasetConn loads through the generic driver path.
func TestLoadDatasetConn(t *testing.T) {
	eng := OpenEngine(CommerceDB())
	conn, err := Connect(eng).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := LoadDatasetConn(conn, testDataset(t), true); err != nil {
		t.Fatal(err)
	}
	rs, err := conn.Query("SELECT COUNT(*) FROM parcels")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].Int != int64(len(testDataset(t).Parcels)) {
		t.Errorf("parcel count = %v", rs.Rows[0][0])
	}
}

// TestProfilesExposeExpectedShape sanity-checks the facade constructors.
func TestProfilesExposeExpectedShape(t *testing.T) {
	ps := AllProfiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d", len(ps))
	}
	if !MySpatial().MBRPredicates || GaiaDB().MBRPredicates || CommerceDB().MBRPredicates {
		t.Error("MBR flags wrong")
	}
	if GaiaDB().Name != "gaiadb" || MySpatial().Name != "myspatial" || CommerceDB().Name != "commercedb" {
		t.Error("profile names wrong")
	}
}
