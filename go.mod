module jackpine

go 1.22
