//go:build race

package jackpine

// raceEnabled reports whether the race detector is compiled in; the
// allocation-regression guard skips under it because instrumentation
// changes heap allocation counts.
const raceEnabled = true
