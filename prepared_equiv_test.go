package jackpine

import (
	"fmt"
	"strings"
	"testing"

	"jackpine/internal/driver"
	"jackpine/internal/wire"
)

// recordingConn wraps a connection and appends every query it sees,
// with the canonical rendering of the result, to a log. Macro scenarios
// chain queries on earlier results, so comparing the logs of two
// engines proves every intermediate result matched, not just the final
// row counts.
type recordingConn struct {
	conn driver.Conn
	log  *strings.Builder
}

func (r recordingConn) Exec(q string) (int, error) {
	n, err := r.conn.Exec(q)
	fmt.Fprintf(r.log, "EXEC %s -> %d\n", q, n)
	return n, err
}

func (r recordingConn) Query(q string) (*ResultSet, error) {
	rs, err := r.conn.Query(q)
	if err != nil {
		return rs, err
	}
	fmt.Fprintf(r.log, "QUERY %s\n%s", q, canonRows(rs))
	return rs, nil
}

func (r recordingConn) Close() error { return nil }

// TestTopoPrepEquivalence runs the entire micro suite (MT1–MT15,
// MA1–MA12) and all six macro scenarios on two engines — prepared
// topology kernel disabled versus enabled — over both the in-process
// and the wire transport, and requires byte-identical results from
// every query: same rows, same order, same float rendering. The
// prepared path swaps only the kernel entry point, so any divergence
// means a prepared evaluation changed semantics.
func TestTopoPrepEquivalence(t *testing.T) {
	ds := GenerateDataset(ScaleSmall, 1)

	off := OpenEngine(GaiaDB(), WithTopoPrep(false))
	on := OpenEngine(GaiaDB())
	for _, eng := range []*Engine{off, on} {
		if err := LoadDataset(eng, ds, true); err != nil {
			t.Fatal(err)
		}
	}
	if off.TopoPrep() {
		t.Fatal("WithTopoPrep(false) did not disable preparation")
	}
	if !on.TopoPrep() {
		t.Fatal("default engine has preparation disabled")
	}

	ctx := NewQueryContext(ds)
	offConn, err := Connect(off).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer offConn.Close()
	onConn, err := Connect(on).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer onConn.Close()

	// Micro suite, in-process, serial and parallel.
	for _, par := range []int{1, 8} {
		off.SetParallelism(par)
		on.SetParallelism(par)
		for _, q := range MicroSuite() {
			sql := q.SQL(ctx, 0)
			rs, err := offConn.Query(sql)
			if err != nil {
				t.Fatalf("%s unprepared at parallelism %d: %v", q.ID, par, err)
			}
			want := canonRows(rs)
			rs, err = onConn.Query(sql)
			if err != nil {
				t.Fatalf("%s prepared at parallelism %d: %v", q.ID, par, err)
			}
			if got := canonRows(rs); got != want {
				t.Errorf("%s: prepared at parallelism %d diverges\nunprepared:\n%s\nprepared:\n%s",
					q.ID, par, want, got)
			}
		}
	}
	off.SetParallelism(1)
	on.SetParallelism(1)

	// Micro suite over the wire transport.
	offSrv, onSrv := wire.NewServer(off), wire.NewServer(on)
	offAddr, err := offSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer offSrv.Close()
	onAddr, err := onSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer onSrv.Close()
	offWire, err := ConnectRemote(offAddr, "off").Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer offWire.Close()
	onWire, err := ConnectRemote(onAddr, "on").Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer onWire.Close()
	for _, q := range MicroSuite() {
		sql := q.SQL(ctx, 0)
		rs, err := offWire.Query(sql)
		if err != nil {
			t.Fatalf("%s unprepared over wire: %v", q.ID, err)
		}
		want := canonRows(rs)
		rs, err = onWire.Query(sql)
		if err != nil {
			t.Fatalf("%s prepared over wire: %v", q.ID, err)
		}
		if got := canonRows(rs); got != want {
			t.Errorf("%s: prepared over wire diverges\nunprepared:\n%s\nprepared:\n%s",
				q.ID, want, got)
		}
	}

	// All six macro scenarios, every chained query compared, over both
	// transports. MS5 mutates parcels; driving both engines through the
	// same operations keeps their states in lockstep.
	for _, sc := range MacroSuite() {
		for name, conns := range map[string][2]Conn{
			"inproc": {offConn, onConn},
			"wire":   {offWire, onWire},
		} {
			var offLog, onLog strings.Builder
			for iter := 0; iter < 2; iter++ {
				if _, err := sc.Run(ctx, recordingConn{conns[0], &offLog}, iter); err != nil {
					t.Fatalf("%s unprepared (%s) iter %d: %v", sc.ID, name, iter, err)
				}
				if _, err := sc.Run(ctx, recordingConn{conns[1], &onLog}, iter); err != nil {
					t.Fatalf("%s prepared (%s) iter %d: %v", sc.ID, name, iter, err)
				}
			}
			if offLog.String() != onLog.String() {
				t.Errorf("%s (%s): prepared run diverges\nunprepared:\n%s\nprepared:\n%s",
					sc.ID, name, offLog.String(), onLog.String())
			}
		}
	}

	// The sweep must have exercised the prepared path on the enabled
	// engine and never on the disabled one.
	onCC := on.CacheCounters()
	if onCC.PrepHits == 0 {
		t.Errorf("prepared engine saw no prepared evaluations (misses=%d)", onCC.PrepMisses)
	}
	offCC := off.CacheCounters()
	if offCC.PrepHits != 0 {
		t.Errorf("disabled engine recorded %d prepared evaluations", offCC.PrepHits)
	}
}
