package jackpine

import (
	"strings"
	"testing"
)

// ms7Queries are the three table-to-table join statements issued by the
// MS7 overlay-and-proximity macro, inlined so the rail can compare their
// result bytes (the scenario Run only surfaces row counts).
var ms7Queries = []struct{ id, sql string }{
	{"MS7.overlay", "SELECT COUNT(*) FROM arealm a JOIN areawater w ON ST_Intersects(a.geo, w.geo)"},
	{"MS7.cluster", "SELECT COUNT(*) FROM pointlm a JOIN pointlm b ON ST_DWithin(a.geo, b.geo, 50.0) WHERE a.id < b.id"},
	{"MS7.proximity", "SELECT COUNT(*), MAX(p.id) FROM pointlm p JOIN areawater w ON ST_DWithin(p.geo, w.geo, 100.0)"},
}

// TestJoinStrategyEquivalence drives every join-bearing micro query
// (the ST_* topological-relation joins of the micro suite) and the
// three MS7 macro joins through forced index-nested-loop, forced
// partition-based spatial-merge, and the cost-based default, at
// parallelism 1 and 8, all on one engine. Every combination must
// return byte-identical results to the serial INL baseline. Running
// each statement repeatedly on the same engine also exercises the
// version-keyed PBSM state cache: later PBSM executions reuse the
// cached grid rather than rebuilding it.
func TestJoinStrategyEquivalence(t *testing.T) {
	ds := GenerateDataset(ScaleSmall, 1)
	eng := OpenEngine(GaiaDB(), WithParallelism(1), WithJoinStrategy(JoinINL))
	if err := LoadDataset(eng, ds, true); err != nil {
		t.Fatal(err)
	}
	ctx := NewQueryContext(ds)
	conn, err := Connect(eng).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	type joinQuery struct{ id, sql string }
	var queries []joinQuery
	for _, q := range MicroSuite() {
		if s := q.SQL(ctx, 0); strings.Contains(s, " JOIN ") {
			queries = append(queries, joinQuery{q.ID, s})
		}
	}
	if len(queries) < 8 {
		t.Fatalf("micro suite exposes %d join queries, want at least 8", len(queries))
	}
	for _, q := range ms7Queries {
		queries = append(queries, joinQuery(q))
	}

	// ST_Relate-with-pattern joins (MT15) are not a PBSM-eligible shape:
	// the three-argument predicate stays on the index-nested-loop path
	// even when PBSM is forced.
	relates := 0
	for _, q := range queries {
		if strings.Contains(q.sql, "ST_Relate") {
			relates++
		}
	}

	baseline := make(map[string]string)
	for _, q := range queries {
		rs, err := conn.Query(q.sql)
		if err != nil {
			t.Fatalf("%s serial INL: %v", q.id, err)
		}
		baseline[q.id] = canonRows(rs)
	}
	if st := eng.JoinStats(); st.INL == 0 || st.PBSM != 0 {
		t.Fatalf("forced INL baseline ran INL=%d PBSM=%d joins, want all INL", st.INL, st.PBSM)
	}

	for _, strat := range []JoinStrategy{JoinPBSM, JoinAuto} {
		eng.SetJoinStrategy(strat)
		for _, par := range []int{1, 8} {
			eng.SetParallelism(par)
			eng.ResetJoinStats()
			for _, q := range queries {
				rs, err := conn.Query(q.sql)
				if err != nil {
					t.Fatalf("%s strategy %v parallelism %d: %v", q.id, strat, par, err)
				}
				if got := canonRows(rs); got != baseline[q.id] {
					t.Errorf("%s: strategy %v parallelism %d diverges from serial INL\nwant:\n%s\ngot:\n%s",
						q.id, strat, par, baseline[q.id], got)
				}
			}
			if st := eng.JoinStats(); strat == JoinPBSM &&
				(st.PBSM < int64(len(queries)-relates) || st.INL > int64(relates)) {
				t.Errorf("forced PBSM at parallelism %d ran INL=%d PBSM=%d joins, want %d PBSM (+%d ST_Relate INL)",
					par, st.INL, st.PBSM, len(queries)-relates, relates)
			}
		}
	}
}
