package jackpine_test

import (
	"fmt"
	"log"

	"jackpine"
)

// Opening an engine and running spatial SQL.
func Example() {
	eng := jackpine.OpenEngine(jackpine.GaiaDB())
	for _, q := range []string{
		`CREATE TABLE pois (id INTEGER, name TEXT, loc GEOMETRY)`,
		`INSERT INTO pois VALUES
			(1, 'city hall', ST_MakePoint(50, 50)),
			(2, 'harbour',   ST_MakePoint(90, 10))`,
		`CREATE SPATIAL INDEX pois_loc ON pois (loc)`,
	} {
		if _, err := eng.Exec(q); err != nil {
			log.Fatal(err)
		}
	}
	res, err := eng.Exec(`SELECT name FROM pois WHERE ST_DWithin(loc, ST_MakePoint(52, 50), 5)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows[0][0])
	// Output: city hall
}

// Generating the benchmark dataset and measuring one engine.
func ExampleRunMicro() {
	eng := jackpine.OpenEngine(jackpine.MySpatial())
	ds := jackpine.GenerateDataset(jackpine.ScaleSmall, 1)
	if err := jackpine.LoadDataset(eng, ds, true); err != nil {
		log.Fatal(err)
	}
	ctx := jackpine.NewQueryContext(ds)
	results, err := jackpine.RunMicro(jackpine.Connect(eng),
		jackpine.TopologicalSuite()[:1], ctx, jackpine.Options{Warmup: 1, Runs: 2})
	if err != nil {
		log.Fatal(err)
	}
	r := results[0]
	fmt.Printf("%s on %s: %d run(s), rows=%d, unsupported=%v\n",
		r.ID, r.Engine, r.Runs, r.Rows, r.Unsupported)
	// Output: MT1 on myspatial: 2 run(s), rows=1, unsupported=false
}

// Running a macro scenario (geocoding).
func ExampleRunMacro() {
	eng := jackpine.OpenEngine(jackpine.GaiaDB())
	ds := jackpine.GenerateDataset(jackpine.ScaleSmall, 1)
	if err := jackpine.LoadDataset(eng, ds, true); err != nil {
		log.Fatal(err)
	}
	ctx := jackpine.NewQueryContext(ds)
	res := jackpine.RunMacro(jackpine.Connect(eng), jackpine.MacroSuite()[1], ctx,
		jackpine.Options{Runs: 3})
	fmt.Printf("%s: %s, ops=%d, err=%v\n", res.ID, res.Name, res.Ops, res.Err)
	// Output: MS2: geocoding, ops=3, err=<nil>
}
