// Package jackpine is a from-scratch Go reproduction of "Jackpine: A
// benchmark to evaluate spatial database performance" (Ray, Simion,
// Demke Brown — ICDE 2011), together with everything the benchmark needs
// to run: three complete spatial database engines (geometry model,
// DE-9IM topology, overlay operations, R-tree/grid/B+tree indexes,
// slotted-page storage with a buffer pool, a SQL layer with spatial
// functions and index-aware planning), a deterministic TIGER-like data
// generator, a driver abstraction with in-process and TCP transports,
// and a spatially-sharded cluster layer that scatter-gathers queries
// across independent shard engines (see OpenCluster).
//
// This package is the public facade: it re-exports the pieces a
// downstream user needs. Quick start:
//
//	eng := jackpine.OpenEngine(jackpine.GaiaDB())
//	ds := jackpine.GenerateDataset(jackpine.ScaleSmall, 1)
//	if err := jackpine.LoadDataset(eng, ds, true); err != nil { ... }
//	res, err := eng.Exec("SELECT COUNT(*) FROM edges WHERE ST_Intersects(geo, ST_MakeEnvelope(0,0,500,500))")
//
// To benchmark:
//
//	ctx := jackpine.NewQueryContext(ds)
//	results, err := jackpine.RunMicro(jackpine.Connect(eng), jackpine.MicroSuite(), ctx, jackpine.DefaultOptions())
//	jackpine.WriteMicroTable(os.Stdout, results)
package jackpine

import (
	sqldrv "database/sql/driver"
	"fmt"
	"io"

	"jackpine/internal/cluster"
	"jackpine/internal/core"
	"jackpine/internal/driver"
	"jackpine/internal/engine"
	"jackpine/internal/experiments"
	"jackpine/internal/sql"
	"jackpine/internal/sqldriver"
	"jackpine/internal/storage/wal"
	"jackpine/internal/tiger"
	"jackpine/internal/wire"
)

// Engine aliases the spatial database engine type.
type Engine = engine.Engine

// Profile aliases an engine profile (semantics + architecture).
type Profile = engine.Profile

// Dataset aliases the generated TIGER-like dataset.
type Dataset = tiger.Dataset

// Scale aliases the dataset scale selector.
type Scale = tiger.Scale

// Dataset scales.
const (
	ScaleSmall  = tiger.Small
	ScaleMedium = tiger.Medium
	ScaleLarge  = tiger.Large
)

// Connector aliases the database-access abstraction the benchmark runs
// against.
type Connector = driver.Connector

// Conn aliases one database session.
type Conn = driver.Conn

// ResultSet aliases a fully-retrieved query result.
type ResultSet = driver.ResultSet

// QueryContext aliases the deterministic workload-probe generator.
type QueryContext = core.QueryContext

// MicroQuery aliases one micro benchmark query.
type MicroQuery = core.MicroQuery

// MacroScenario aliases one macro workload scenario.
type MacroScenario = core.MacroScenario

// Options aliases the workload-runner options.
type Options = core.Options

// MicroResult aliases a micro query measurement.
type MicroResult = core.MicroResult

// MacroResult aliases a macro scenario measurement.
type MacroResult = core.MacroResult

// GaiaDB returns the PostGIS-like engine profile (exact DE-9IM topology,
// R-tree index, full function set).
func GaiaDB() Profile { return engine.GaiaDB() }

// MySpatial returns the MySQL-5.x-like profile (MBR-only topological
// predicates, reduced function set).
func MySpatial() Profile { return engine.MySpatial() }

// CommerceDB returns the anonymized commercial profile (exact topology,
// fixed-grid index).
func CommerceDB() Profile { return engine.CommerceDB() }

// AllProfiles returns the three built-in profiles.
func AllProfiles() []Profile { return engine.AllProfiles() }

// OpenEngine creates an engine with the given profile.
func OpenEngine(p Profile, opts ...engine.Option) *Engine { return engine.Open(p, opts...) }

// OpenDurable opens (or creates) a durable engine rooted at dir: pages
// live in a file-backed store, every commit is written ahead to a
// redo log and group-committed with fsync, and reopening the directory
// recovers the committed state exactly — tables, indexes, and row
// order are byte-identical to the engine that wrote them. See
// Engine.Checkpoint for log truncation.
func OpenDurable(p Profile, dir string, opts ...engine.Option) (*Engine, error) {
	return engine.OpenDurable(p, dir, opts...)
}

// WALStats aliases the write-ahead-log activity counters reported by
// Engine.WALStats on durable engines.
type WALStats = wal.Stats

// WithParallelism sets the engine's intra-query worker pool size
// (0 = GOMAXPROCS, 1 = serial). See also Engine.SetParallelism.
func WithParallelism(n int) engine.Option { return engine.WithParallelism(n) }

// WithGeomCache budgets the decoded-geometry cache in bytes (<= 0
// disables it; default 16 MiB).
func WithGeomCache(bytes int) engine.Option { return engine.WithGeomCache(bytes) }

// WithTopoPrep toggles prepared-geometry evaluation of topological
// predicates: the constant side (literal query window, outer join row)
// is decomposed and indexed once per statement execution instead of
// per row. Enabled by default.
func WithTopoPrep(enabled bool) engine.Option { return engine.WithTopoPrep(enabled) }

// WithPlanCache bounds the prepared-statement (plan) cache in entries
// (<= 0 disables it; default 256). See also Engine.Prepare.
func WithPlanCache(entries int) engine.Option { return engine.WithPlanCache(entries) }

// WithBatchExec toggles batch-at-a-time (vectorized) query execution:
// eligible scans process column batches through flat MBR prefilter
// kernels and batched predicate refinement. Enabled by default.
func WithBatchExec(enabled bool) engine.Option { return engine.WithBatchExec(enabled) }

// WithBatchSize overrides the number of row slots per column batch
// (<= 0 means the default, 256).
func WithBatchSize(n int) engine.Option { return engine.WithBatchSize(n) }

// JoinStrategy selects how two-table spatial joins execute: JoinAuto
// (cost-based), JoinINL (per-outer-row index probes), or JoinPBSM
// (partition-based spatial-merge: grid partitioning + plane sweep).
type JoinStrategy = sql.JoinStrategy

// Spatial-join strategies (see JoinStrategy).
const (
	JoinAuto = sql.JoinAuto
	JoinINL  = sql.JoinINL
	JoinPBSM = sql.JoinPBSM
)

// WithJoinStrategy forces the spatial-join strategy. The default,
// JoinAuto, costs index-nested-loop against the partitioned sweep from
// table statistics per statement. See also Engine.SetJoinStrategy.
func WithJoinStrategy(s JoinStrategy) engine.Option { return engine.WithJoinStrategy(s) }

// JoinStats aliases the cumulative spatial-join counters reported by
// Engine.JoinStats: joins per strategy, PBSM grid cells, and duplicate
// candidate pairs suppressed by the reference-point rule.
type JoinStats = sql.JoinStats

// Stmt aliases a prepared statement (see Engine.Prepare).
type Stmt = engine.Stmt

// Connect wraps a local engine in an in-process Connector.
func Connect(eng *Engine) Connector { return driver.NewInProc(eng) }

// ConnectRemote returns a Connector that dials a wire server (see
// cmd/spatialdbd) at addr.
func ConnectRemote(addr, name string) Connector { return wire.NewClient(addr, name) }

// Cluster aliases the spatially-sharded scatter-gather router. A
// *Cluster is a Connector, so every suite and report runs against it
// unchanged.
type Cluster = cluster.Cluster

// ShardStats aliases the cluster's scatter/prune counters.
type ShardStats = driver.ShardStats

// OpenCluster builds an in-process spatially-sharded cluster: n engines
// with the given profile, each preloaded with its grid-partition slice
// of the dataset and fully indexed, behind one scatter-gather router.
func OpenCluster(p Profile, ds *Dataset, n int) (*Cluster, error) {
	return experiments.SetupCluster(p, ds, n)
}

// OpenClusterReplicated builds an in-process cluster with `replicas`
// identical engines per shard. Reads load-balance across a shard's
// replicas (power-of-two-choices on in-flight count) and hedge a second
// request when the first is slow; writes broadcast to every replica.
func OpenClusterReplicated(p Profile, ds *Dataset, n, replicas int) (*Cluster, error) {
	return experiments.SetupReplicatedCluster(p, ds, n, replicas)
}

// OpenClusterRemote assembles a cluster whose shards are wire servers.
// Each server at addrs[i] must hold shard i's partition of the dataset
// (spatialdbd -preload ... -shard i -of len(addrs)) and run the given
// profile.
func OpenClusterRemote(p Profile, ds *Dataset, addrs []string) (*Cluster, error) {
	part, err := cluster.NewPartitioner(ds.Extent, len(addrs))
	if err != nil {
		return nil, err
	}
	shards := make([]Connector, len(addrs))
	for i, addr := range addrs {
		shards[i] = wire.NewClient(addr, fmt.Sprintf("shard%d", i))
	}
	cl, err := cluster.Open(shards, part, cluster.Options{Profile: p})
	if err != nil {
		return nil, err
	}
	for _, ddl := range tiger.Schema() {
		if err := cl.Register(ddl); err != nil {
			return nil, err
		}
	}
	if err := cl.RefreshStats(); err != nil {
		return nil, err
	}
	return cl, nil
}

// SQLConnector adapts a local engine to Go's database/sql:
//
//	db := sql.OpenDB(jackpine.SQLConnector(eng))
//
// Remote engines are reachable with sql.Open("jackpine",
// "tcp://host:port") — importing this package registers the driver.
// Geometry columns scan as WKB []byte; '?' placeholders are supported.
func SQLConnector(eng *Engine) sqldrv.Connector { return sqldriver.NewConnector(eng) }

// GenerateDataset builds the deterministic TIGER-like dataset.
func GenerateDataset(scale Scale, seed int64) *Dataset { return tiger.Generate(scale, seed) }

// LoadDataset creates the benchmark schema in the engine and loads the
// dataset, optionally building all indexes.
func LoadDataset(eng *Engine, ds *Dataset, withIndexes bool) error {
	return tiger.Load(engineExecer{eng}, ds, withIndexes)
}

// LoadDatasetConn loads the dataset through any driver connection (for
// remote engines).
func LoadDatasetConn(conn Conn, ds *Dataset, withIndexes bool) error {
	return tiger.Load(connExecer{conn}, ds, withIndexes)
}

type engineExecer struct{ e *Engine }

// Exec implements tiger.Execer.
func (a engineExecer) Exec(q string) error {
	_, err := a.e.Exec(q)
	return err
}

type connExecer struct{ c Conn }

// Exec implements tiger.Execer.
func (a connExecer) Exec(q string) error {
	_, err := a.c.Exec(q)
	return err
}

// NewQueryContext builds the deterministic probe generator for a dataset.
func NewQueryContext(ds *Dataset) *QueryContext { return core.NewQueryContext(ds) }

// TopologicalSuite returns the DE-9IM micro benchmark queries (MT1–MT15).
func TopologicalSuite() []MicroQuery { return core.TopologicalSuite() }

// AnalysisSuite returns the spatial-analysis micro benchmark queries
// (MA1–MA12).
func AnalysisSuite() []MicroQuery { return core.AnalysisSuite() }

// MicroSuite returns both micro suites.
func MicroSuite() []MicroQuery { return core.MicroSuite() }

// MacroSuite returns the seven macro workload scenarios (MS1–MS7).
func MacroSuite() []MacroScenario { return core.MacroSuite() }

// DefaultOptions returns the workload-runner defaults.
func DefaultOptions() Options { return core.DefaultOptions() }

// RunMicro measures a micro suite against a connector.
func RunMicro(c Connector, suite []MicroQuery, ctx *QueryContext, opts Options) ([]MicroResult, error) {
	return core.RunMicro(c, suite, ctx, opts)
}

// RunMacro measures one macro scenario.
func RunMacro(c Connector, sc MacroScenario, ctx *QueryContext, opts Options) MacroResult {
	return core.RunMacro(c, sc, ctx, opts)
}

// RunMacroSuite measures all macro scenarios.
func RunMacroSuite(c Connector, ctx *QueryContext, opts Options) []MacroResult {
	return core.RunMacroSuite(c, ctx, opts)
}

// WriteMicroTable renders micro results as an aligned comparison table.
func WriteMicroTable(w io.Writer, results []MicroResult) { core.WriteMicroTable(w, results) }

// WriteMicroCSV renders micro results as CSV.
func WriteMicroCSV(w io.Writer, results []MicroResult) { core.WriteMicroCSV(w, results) }

// WriteMacroTable renders macro results as an aligned comparison table.
func WriteMacroTable(w io.Writer, results []MacroResult) { core.WriteMacroTable(w, results) }

// WriteMacroCSV renders macro results as CSV.
func WriteMacroCSV(w io.Writer, results []MacroResult) { core.WriteMacroCSV(w, results) }
