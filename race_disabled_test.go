//go:build !race

package jackpine

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
