package jackpine

import (
	"testing"
)

// TestCacheEquivalence runs the entire micro suite (MT1–MT15, MA1–MA12)
// on two engines — decode-layer caches disabled versus enabled — at
// parallelism 1 and 8, executing every query twice on each so the
// second pass on the cached engine is served from the geometry and plan
// caches. Every execution must be byte-identical to the uncached
// baseline: same columns, same rows, same order, same float rendering.
// The caches sit below result construction, so a divergence means a
// cached decode or cached plan changed semantics.
func TestCacheEquivalence(t *testing.T) {
	ds := GenerateDataset(ScaleSmall, 1)

	plain := OpenEngine(GaiaDB(), WithGeomCache(0), WithPlanCache(0))
	cached := OpenEngine(GaiaDB())
	for _, eng := range []*Engine{plain, cached} {
		if err := LoadDataset(eng, ds, true); err != nil {
			t.Fatal(err)
		}
	}
	if plain.GeomCache() != nil {
		t.Fatal("WithGeomCache(0) did not disable the geometry cache")
	}
	if cached.GeomCache() == nil {
		t.Fatal("default engine has no geometry cache")
	}

	ctx := NewQueryContext(ds)
	plainConn, err := Connect(plain).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer plainConn.Close()
	cachedConn, err := Connect(cached).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer cachedConn.Close()

	for _, par := range []int{1, 8} {
		plain.SetParallelism(par)
		cached.SetParallelism(par)
		for _, q := range MicroSuite() {
			sql := q.SQL(ctx, 0)
			rs, err := plainConn.Query(sql)
			if err != nil {
				t.Fatalf("%s uncached at parallelism %d: %v", q.ID, par, err)
			}
			want := canonRows(rs)
			// Twice: the first pass fills the caches, the second hits them.
			for pass := 0; pass < 2; pass++ {
				rs, err := cachedConn.Query(sql)
				if err != nil {
					t.Fatalf("%s cached pass %d at parallelism %d: %v", q.ID, pass, par, err)
				}
				if got := canonRows(rs); got != want {
					t.Errorf("%s: cached pass %d at parallelism %d diverges\nuncached:\n%s\ncached:\n%s",
						q.ID, pass, par, want, got)
				}
			}
		}
	}

	// The sweep must actually exercise both caches on the cached engine.
	cc := cached.CacheCounters()
	if cc.GeomHits == 0 {
		t.Errorf("geometry cache saw no hits over the sweep (misses=%d)", cc.GeomMisses)
	}
	if cc.PlanHits == 0 {
		t.Errorf("plan cache saw no hits over the sweep (misses=%d)", cc.PlanMisses)
	}
	// And the uncached engine's counters must stay silent.
	pc := plain.CacheCounters()
	if pc.GeomHits+pc.GeomMisses != 0 || pc.PlanHits+pc.PlanMisses != 0 {
		t.Errorf("disabled caches recorded traffic: %+v", pc)
	}
}
