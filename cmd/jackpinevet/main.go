// Command jackpinevet is the project's multichecker: it runs every
// registered invariant analyzer (see internal/lint) over the packages
// matching the given patterns and exits non-zero on any unsuppressed
// diagnostic.
//
// Usage:
//
//	go run ./cmd/jackpinevet ./...          # whole module (the CI gate)
//	go run ./cmd/jackpinevet -run floatcmp ./internal/geom
//	go run ./cmd/jackpinevet -json ./...    # machine-readable findings
//	go run ./cmd/jackpinevet -lockgraph ./... # dump the lock-order graph
//	go run ./cmd/jackpinevet -list
//
// Diagnostics are suppressed, one line at a time, with
//
//	//lint:allow <analyzer> <justification>
//
// or for a whole file with
//
//	//lint:allow-file <analyzer> <justification>
//
// where the justification is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"jackpine/internal/lint"
)

// jsonDiagnostic is the -json wire shape, one object per finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "only run analyzers whose name matches this regexp")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	lockgraph := flag.Bool("lockgraph", false, "print the module lock-order graph (one 'A -> B' edge per line) and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: jackpinevet [-list] [-run regexp] [-json] [-lockgraph] [packages]\n\n"+
				"Runs the jackpine invariant analyzers over the given package\n"+
				"patterns (default ./...) and exits 1 on any finding.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jackpinevet: bad -run pattern: %v\n", err)
			os.Exit(2)
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(os.Stderr, "jackpinevet: -run %q matches no analyzer (see -list)\n", *run)
			os.Exit(2)
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jackpinevet: %v\n", err)
		os.Exit(2)
	}

	if *lockgraph {
		for _, edge := range lint.LockGraph(pkgs) {
			fmt.Println(edge)
		}
		return
	}

	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jackpinevet: %v\n", err)
		os.Exit(2)
	}
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "jackpinevet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "jackpinevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
