package main

import (
	"testing"

	"jackpine/internal/tiger"
)

func TestParseScale(t *testing.T) {
	cases := map[string]tiger.Scale{
		"small": tiger.Small, "Small": tiger.Small,
		"medium": tiger.Medium, "MEDIUM": tiger.Medium,
		"large": tiger.Large,
	}
	for in, want := range cases {
		got, err := parseScale(in)
		if err != nil || got != want {
			t.Errorf("parseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseScale("gigantic"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestParseProfiles(t *testing.T) {
	ps, err := parseProfiles("gaiadb,myspatial,commercedb")
	if err != nil || len(ps) != 3 {
		t.Fatalf("parseProfiles: %v, %v", ps, err)
	}
	if ps[0].Name != "gaiadb" || ps[2].Name != "commercedb" {
		t.Errorf("order wrong: %v", ps)
	}
	ps, err = parseProfiles(" MySpatial ")
	if err != nil || len(ps) != 1 || !ps[0].MBRPredicates {
		t.Errorf("single profile: %v, %v", ps, err)
	}
	if _, err := parseProfiles("oracle"); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := parseProfiles(""); err == nil {
		t.Error("empty profile list accepted")
	}
	if _, err := parseProfiles(",,"); err == nil {
		t.Error("blank profile list accepted")
	}
}
