// Command jackpine runs the Jackpine spatial database benchmark against
// the built-in engines (or a remote engine over the wire protocol) and
// prints the paper's tables.
//
// Usage:
//
//	jackpine [flags]
//
// Suites (-suite): all, dataset (E1), queries (the query-definition
// catalog), micro-topo (E2), micro-analysis (E3), macro (E4),
// index-effect (E5), scaleup (E6), mbr (E7), features (E8), cache (E9),
// concurrency (E10), selectivity (E11), join-ablation (E12),
// parallelism (E13), decode (E14), scaleout (E15), topo-prep (E16),
// batch (E17), persist (E18), spatial-join (E19).
// Add -full-joins to run the micro joins over the whole extent as the
// paper did. Add -data <dir> to root the durable suites at a fixed
// directory instead of a temporary one.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"jackpine/internal/core"
	"jackpine/internal/driver"
	"jackpine/internal/engine"
	"jackpine/internal/experiments"
	"jackpine/internal/tiger"
	"jackpine/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jackpine:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleFlag   = flag.String("scale", "small", "dataset scale: small, medium, large")
		seed        = flag.Int64("seed", 1, "dataset / probe seed")
		suite       = flag.String("suite", "all", "experiment suite to run: all, dataset, queries, micro-topo, micro-analysis, macro, index-effect, scaleup, mbr, features, cache, concurrency, selectivity, join-ablation, parallelism, decode, scaleout, topo-prep, batch, persist, spatial-join")
		enginesFlag = flag.String("engines", "gaiadb,myspatial,commercedb", "comma-separated engine profiles")
		warmup      = flag.Int("warmup", 2, "warmup iterations per query")
		runs        = flag.Int("runs", 5, "measured iterations per query")
		clients     = flag.Int("clients", 1, "concurrent clients for macro scenarios")
		remote      = flag.String("remote", "", "benchmark a remote wire server at host:port instead of local engines")
		csv         = flag.Bool("csv", false, "emit CSV instead of tables (micro/macro suites)")
		fullJoins   = flag.Bool("full-joins", false, "run micro joins over the full extent (as the paper did) instead of sampled windows")
		shardsFlag  = flag.String("shards", "1,2,4,8", "comma-separated cluster sizes for -suite scaleout")
		replicas    = flag.Int("replicas", 1, "replicas per shard for -suite scaleout (reads hedge across them when > 1)")
		dataDir     = flag.String("data", "", "data directory for the durable suites (persist); empty uses a temporary directory")
	)
	flag.Parse()

	shardCounts, err := parseShards(*shardsFlag)
	if err != nil {
		return err
	}

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		return err
	}
	profiles, err := parseProfiles(*enginesFlag)
	if err != nil {
		return err
	}
	cfg := experiments.Config{
		Scale:     scale,
		Seed:      *seed,
		Opts:      core.Options{Warmup: *warmup, Runs: *runs, Clients: *clients},
		Profiles:  profiles,
		FullJoins: *fullJoins,
		DataDir:   *dataDir,
	}
	out := os.Stdout

	if *remote != "" {
		return runRemote(*remote, cfg, *suite, *csv)
	}

	wants := func(ids ...string) bool {
		if *suite == "all" {
			return true
		}
		for _, id := range ids {
			if *suite == id {
				return true
			}
		}
		return false
	}

	needEnv := wants("micro-topo") || wants("micro-analysis") || wants("macro") ||
		wants("mbr") || wants("features") || wants("concurrency") || wants("selectivity")
	var env *experiments.Env
	if needEnv {
		fmt.Fprintf(out, "loading %s dataset into %d engine(s)...\n", scale, len(profiles))
		env, err = experiments.Setup(cfg)
		if err != nil {
			return err
		}
	}
	type step struct {
		id  string
		run func() error
	}
	steps := []step{
		{"dataset", func() error { return experiments.RunE1(out, cfg) }},
		{"queries", func() error { return experiments.RunQueryCatalog(out, cfg) }},
		{"micro-topo", func() error {
			if *csv {
				return runMicroCSV(out, env, core.TopologicalSuite())
			}
			return experiments.RunE2(out, env)
		}},
		{"micro-analysis", func() error {
			if *csv {
				return runMicroCSV(out, env, core.AnalysisSuite())
			}
			return experiments.RunE3(out, env)
		}},
		{"macro", func() error {
			if *csv {
				return runMacroCSV(out, env)
			}
			return experiments.RunE4(out, env)
		}},
		{"index-effect", func() error { return experiments.RunE5(out, cfg) }},
		{"scaleup", func() error {
			scales := []tiger.Scale{tiger.Small, tiger.Medium}
			if scale == tiger.Large {
				scales = append(scales, tiger.Large)
			}
			return experiments.RunE6(out, cfg, scales)
		}},
		{"mbr", func() error { return experiments.RunE7(out, env) }},
		{"features", func() error { return experiments.RunE8(out, env) }},
		{"cache", func() error { return experiments.RunE9(out, cfg) }},
		{"concurrency", func() error { return experiments.RunE10(out, env, []int{1, 2, 4, 8}) }},
		{"selectivity", func() error { return experiments.RunE11(out, env) }},
		{"join-ablation", func() error { return experiments.RunE12(out, cfg) }},
		{"parallelism", func() error { return experiments.RunE13(out, cfg, []int{1, 2, 4, 8}) }},
		{"decode", func() error { return experiments.RunE14(out, cfg) }},
		{"scaleout", func() error { return experiments.RunE15(out, cfg, shardCounts, *replicas) }},
		{"topo-prep", func() error { return experiments.RunE16(out, cfg) }},
		{"batch", func() error { return experiments.RunE17(out, cfg) }},
		{"persist", func() error { return experiments.RunE18(out, cfg) }},
		{"spatial-join", func() error { return experiments.RunE19(out, cfg, []int{1, 2, 8}, shardCounts) }},
	}
	ran := false
	for _, s := range steps {
		if wants(s.id) {
			if err := s.run(); err != nil {
				return fmt.Errorf("%s: %w", s.id, err)
			}
			ran = true
		}
	}
	if !ran {
		return fmt.Errorf("unknown suite %q", *suite)
	}
	return nil
}

func runMicroCSV(out *os.File, env *experiments.Env, suite []core.MicroQuery) error {
	var all []core.MicroResult
	for _, conn := range env.Connectors {
		res, err := core.RunMicro(conn, suite, env.Ctx, env.Config.Opts)
		if err != nil {
			return err
		}
		all = append(all, res...)
	}
	core.WriteMicroCSV(out, all)
	return nil
}

func runMacroCSV(out *os.File, env *experiments.Env) error {
	var all []core.MacroResult
	for _, conn := range env.Connectors {
		all = append(all, core.RunMacroSuite(conn, env.Ctx, env.Config.Opts)...)
	}
	core.WriteMacroCSV(out, all)
	return nil
}

// runRemote drives a remote engine: load the dataset over the wire, then
// run the micro and macro suites.
func runRemote(addr string, cfg experiments.Config, suite string, csv bool) error {
	client := wire.NewClient(addr, "remote")
	conn, err := client.Connect()
	if err != nil {
		return err
	}
	ds := tiger.Generate(cfg.Scale, cfg.Seed)
	ctx := core.NewQueryContext(ds)
	fmt.Printf("loading %s dataset into remote engine at %s...\n", cfg.Scale, addr)
	if err := tiger.Load(remoteExecer{conn}, ds, true); err != nil {
		return err
	}
	conn.Close()

	if suite == "all" || suite == "micro-topo" || suite == "micro-analysis" {
		var queries []core.MicroQuery
		if suite != "micro-analysis" {
			queries = append(queries, core.TopologicalSuite()...)
		}
		if suite != "micro-topo" {
			queries = append(queries, core.AnalysisSuite()...)
		}
		res, err := core.RunMicro(client, queries, ctx, cfg.Opts)
		if err != nil {
			return err
		}
		if csv {
			core.WriteMicroCSV(os.Stdout, res)
		} else {
			core.WriteMicroTable(os.Stdout, res)
		}
	}
	if suite == "all" || suite == "macro" {
		res := core.RunMacroSuite(client, ctx, cfg.Opts)
		if csv {
			core.WriteMacroCSV(os.Stdout, res)
		} else {
			core.WriteMacroTable(os.Stdout, res)
		}
	}
	return nil
}

type remoteExecer struct{ conn driver.Conn }

// Exec implements tiger.Execer.
func (r remoteExecer) Exec(q string) error {
	_, err := r.conn.Exec(q)
	return err
}

func parseScale(s string) (tiger.Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return tiger.Small, nil
	case "medium":
		return tiger.Medium, nil
	case "large":
		return tiger.Large, nil
	}
	return 0, fmt.Errorf("unknown scale %q (small, medium, large)", s)
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid shard count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shard counts selected")
	}
	return out, nil
}

func parseProfiles(s string) ([]engine.Profile, error) {
	var out []engine.Profile
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(name)) {
		case "gaiadb":
			out = append(out, engine.GaiaDB())
		case "myspatial":
			out = append(out, engine.MySpatial())
		case "commercedb":
			out = append(out, engine.CommerceDB())
		case "":
		default:
			return nil, fmt.Errorf("unknown engine profile %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no engine profiles selected")
	}
	return out, nil
}
