// Command spatialdbd serves a spatial engine over the wire protocol so
// remote clients (cmd/spatialsql, or cmd/jackpine with -remote) can use
// it — the "any database with a driver" side of the benchmark's
// portability story.
//
// Usage:
//
//	spatialdbd [-addr 127.0.0.1:7676] [-profile gaiadb] [-preload small]
//
// With -shard I -of N the preload keeps only shard I's grid partition of
// the dataset (with the hidden _seq column cluster routers expect), so N
// spatialdbd processes form the shard set of a wire-transport cluster.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"jackpine/internal/cluster"
	"jackpine/internal/engine"
	"jackpine/internal/tiger"
	"jackpine/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spatialdbd:", err)
		os.Exit(1)
	}
}

type engineExecer struct{ e *engine.Engine }

// Exec implements tiger.Execer.
func (a engineExecer) Exec(q string) error {
	_, err := a.e.Exec(q)
	return err
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:7676", "listen address")
		profile = flag.String("profile", "gaiadb", "engine profile: gaiadb, myspatial, commercedb")
		preload = flag.String("preload", "", "optionally preload a dataset: small, medium, large")
		seed    = flag.Int64("seed", 1, "preload dataset seed")
		shard   = flag.Int("shard", 0, "with -of: preload only this shard's partition (0-based)")
		of      = flag.Int("of", 0, "preload as one shard of an N-shard cluster (requires -preload)")
	)
	flag.Parse()

	var p engine.Profile
	switch strings.ToLower(*profile) {
	case "gaiadb":
		p = engine.GaiaDB()
	case "myspatial":
		p = engine.MySpatial()
	case "commercedb":
		p = engine.CommerceDB()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	eng := engine.Open(p)

	if *preload != "" {
		var scale tiger.Scale
		switch strings.ToLower(*preload) {
		case "small":
			scale = tiger.Small
		case "medium":
			scale = tiger.Medium
		case "large":
			scale = tiger.Large
		default:
			return fmt.Errorf("unknown preload scale %q", *preload)
		}
		ds := tiger.Generate(scale, *seed)
		if *of > 0 {
			if *shard < 0 || *shard >= *of {
				return fmt.Errorf("-shard %d out of range for -of %d", *shard, *of)
			}
			part, err := cluster.NewPartitioner(ds.Extent, *of)
			if err != nil {
				return err
			}
			fmt.Printf("preloading shard %d of %d, %s dataset (seed %d)...\n", *shard, *of, scale, *seed)
			if err := tiger.LoadShard(engineExecer{eng}, ds, true, *shard, part.Assign); err != nil {
				return err
			}
		} else {
			fmt.Printf("preloading %s dataset (seed %d)...\n", scale, *seed)
			if err := tiger.Load(engineExecer{eng}, ds, true); err != nil {
				return err
			}
		}
	} else if *of > 0 {
		return fmt.Errorf("-of requires -preload")
	}

	srv := wire.NewServer(eng)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("spatialdbd: profile %s listening on %s\n", p.Name, bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("\nspatialdbd: shutting down")
	return srv.Close()
}
