// Command spatialdbd serves a spatial engine over the wire protocol so
// remote clients (cmd/spatialsql, or cmd/jackpine with -remote) can use
// it — the "any database with a driver" side of the benchmark's
// portability story.
//
// Usage:
//
//	spatialdbd [-addr 127.0.0.1:7676] [-profile gaiadb] [-preload small]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"jackpine/internal/engine"
	"jackpine/internal/tiger"
	"jackpine/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spatialdbd:", err)
		os.Exit(1)
	}
}

type engineExecer struct{ e *engine.Engine }

// Exec implements tiger.Execer.
func (a engineExecer) Exec(q string) error {
	_, err := a.e.Exec(q)
	return err
}

func run() error {
	var (
		addr    = flag.String("addr", "127.0.0.1:7676", "listen address")
		profile = flag.String("profile", "gaiadb", "engine profile: gaiadb, myspatial, commercedb")
		preload = flag.String("preload", "", "optionally preload a dataset: small, medium, large")
		seed    = flag.Int64("seed", 1, "preload dataset seed")
	)
	flag.Parse()

	var p engine.Profile
	switch strings.ToLower(*profile) {
	case "gaiadb":
		p = engine.GaiaDB()
	case "myspatial":
		p = engine.MySpatial()
	case "commercedb":
		p = engine.CommerceDB()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	eng := engine.Open(p)

	if *preload != "" {
		var scale tiger.Scale
		switch strings.ToLower(*preload) {
		case "small":
			scale = tiger.Small
		case "medium":
			scale = tiger.Medium
		case "large":
			scale = tiger.Large
		default:
			return fmt.Errorf("unknown preload scale %q", *preload)
		}
		fmt.Printf("preloading %s dataset (seed %d)...\n", scale, *seed)
		if err := tiger.Load(engineExecer{eng}, tiger.Generate(scale, *seed), true); err != nil {
			return err
		}
	}

	srv := wire.NewServer(eng)
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("spatialdbd: profile %s listening on %s\n", p.Name, bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("\nspatialdbd: shutting down")
	return srv.Close()
}
