// Command spatialsql is a small interactive SQL shell. By default it
// opens a local in-memory engine; with -remote it connects to a
// spatialdbd server. Statements are read line by line (end with ';' to
// span lines) and results print as aligned tables.
//
// Usage:
//
//	spatialsql [-profile gaiadb] [-remote host:port] [-f script.sql]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"jackpine/internal/driver"
	"jackpine/internal/engine"
	"jackpine/internal/storage"
	"jackpine/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spatialsql:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		profile = flag.String("profile", "gaiadb", "engine profile for local mode")
		remote  = flag.String("remote", "", "connect to a spatialdbd server at host:port")
		script  = flag.String("f", "", "execute statements from a file, then exit")
		timing  = flag.Bool("timing", true, "print per-statement execution time")
	)
	flag.Parse()

	var connector driver.Connector
	if *remote != "" {
		connector = wire.NewClient(*remote, "remote")
	} else {
		var p engine.Profile
		switch strings.ToLower(*profile) {
		case "gaiadb":
			p = engine.GaiaDB()
		case "myspatial":
			p = engine.MySpatial()
		case "commercedb":
			p = engine.CommerceDB()
		default:
			return fmt.Errorf("unknown profile %q", *profile)
		}
		connector = driver.NewInProc(engine.Open(p))
	}
	conn, err := connector.Connect()
	if err != nil {
		return err
	}
	defer conn.Close()

	var in io.Reader = os.Stdin
	interactive := true
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		interactive = false
	}
	if interactive {
		fmt.Printf("spatialsql connected to %s — end statements with ';', \\q quits\n", connector.Name())
	}

	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var buf strings.Builder
	prompt := func() {
		if !interactive {
			return
		}
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("  -> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == `\q` || trimmed == "quit" || trimmed == "exit") {
			return nil
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		if stmt != "" {
			execute(conn, stmt, *timing)
		}
		prompt()
	}
	return scanner.Err()
}

func execute(conn driver.Conn, stmt string, timing bool) {
	start := time.Now()
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "SELECT") || strings.HasPrefix(upper, "EXPLAIN") {
		rs, err := conn.Query(stmt)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printResultSet(rs)
		if timing {
			fmt.Printf("(%d row(s), %s)\n", len(rs.Rows), elapsed.Round(time.Microsecond))
		}
		return
	}
	n, err := conn.Exec(stmt)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if timing {
		fmt.Printf("ok (%d row(s) affected, %s)\n", n, elapsed.Round(time.Microsecond))
	} else {
		fmt.Printf("ok (%d row(s) affected)\n", n)
	}
}

// printResultSet renders rows with column-width alignment, truncating
// very long cells (WKT of big geometries).
func printResultSet(rs *driver.ResultSet) {
	const maxCell = 60
	cell := func(v storage.Value) string {
		s := v.String()
		if len(s) > maxCell {
			return s[:maxCell-1] + "…"
		}
		return s
	}
	widths := make([]int, len(rs.Columns))
	for i, c := range rs.Columns {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(rs.Rows))
	for r, row := range rs.Rows {
		rendered[r] = make([]string, len(row))
		for i, v := range row {
			rendered[r][i] = cell(v)
			if len(rendered[r][i]) > widths[i] {
				widths[i] = len(rendered[r][i])
			}
		}
	}
	for i, c := range rs.Columns {
		fmt.Printf("%-*s  ", widths[i], c)
		_ = i
	}
	fmt.Println()
	for i := range rs.Columns {
		fmt.Print(strings.Repeat("-", widths[i]), "  ")
	}
	fmt.Println()
	for _, row := range rendered {
		for i, s := range row {
			fmt.Printf("%-*s  ", widths[i], s)
		}
		fmt.Println()
	}
}
