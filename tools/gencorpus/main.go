// Command gencorpus regenerates the committed fuzz seed corpora from
// the benchmark's own workload generators, so the fuzz targets start
// from inputs shaped like real traffic rather than hand-typed samples:
//
//	internal/sql/testdata/fuzz/FuzzParse            every micro-suite query
//	internal/wire/testdata/fuzz/FuzzWireProtocol    request frames + response payloads
//	internal/topo/testdata/fuzz/FuzzDE9IM           WKT pairs from the TIGER generator
//	internal/storage/wal/testdata/fuzz/FuzzWALReplay  real log files with hostile tails
//
// Run from the repository root after changing the suites, the wire
// format, or the TIGER generator:
//
//	go run ./tools/gencorpus
//
// Output files use the standard Go fuzzing corpus encoding
// ("go test fuzz v1"), one file per seed, with stable names so
// regeneration produces reviewable diffs.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"jackpine/internal/core"
	"jackpine/internal/geom"
	"jackpine/internal/storage"
	"jackpine/internal/storage/wal"
	"jackpine/internal/tiger"
)

func main() {
	if _, err := os.Stat("go.mod"); err != nil {
		log.Fatal("gencorpus: run from the repository root")
	}
	ds := tiger.Generate(tiger.Small, 42)
	ctx := core.NewQueryContext(ds)

	writeSQLCorpus(ctx)
	writeWireCorpus(ctx)
	writeTopoCorpus(ds)
	writeWALCorpus()
}

// seed encodes one corpus entry in the "go test fuzz v1" format.
func seed(dir, name string, vals ...string) {
	out := "go test fuzz v1\n"
	for _, v := range vals {
		out += v + "\n"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(out), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println(filepath.Join(dir, name))
}

func qstr(s string) string  { return "string(" + strconv.Quote(s) + ")" }
func qbyte(b []byte) string { return "[]byte(" + strconv.Quote(string(b)) + ")" }

// writeSQLCorpus emits the full micro benchmark — every topological,
// analysis and micro-operation query at iteration 0 — as FuzzParse
// seeds, plus the DDL the loader issues.
func writeSQLCorpus(ctx *core.QueryContext) {
	dir := filepath.Join("internal", "sql", "testdata", "fuzz", "FuzzParse")
	for _, q := range suites() {
		seed(dir, q.ID, qstr(q.SQL(ctx, 0)))
	}
	ddl := []string{
		"CREATE TABLE edges (id INT, name TEXT, class TEXT, fraddl INT, toaddr INT, geo GEOMETRY)",
		"CREATE SPATIAL INDEX ON edges (geo)",
		"CREATE INDEX ON edges (name)",
	}
	for i, s := range ddl {
		seed(dir, fmt.Sprintf("ddl%d", i), qstr(s))
	}
}

// writeWireCorpus emits protocol frames: one request frame per suite
// category plus response frames for every op code. The frame and
// result-set encodings are built by hand here, mirroring the format
// comment at the top of internal/wire/protocol.go, so the corpus stays
// an independent statement of the wire format.
func writeWireCorpus(ctx *core.QueryContext) {
	dir := filepath.Join("internal", "wire", "testdata", "fuzz", "FuzzWireProtocol")
	frame := func(op byte, payload []byte) []byte {
		out := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)+1))
		out = append(out, op)
		return append(out, payload...)
	}
	for i, q := range []core.MicroQuery{suites()[0], suites()[len(suites())-1]} {
		seed(dir, fmt.Sprintf("query%d", i), qbyte(frame('Q', []byte(q.SQL(ctx, 0)))))
	}
	seed(dir, "exec", qbyte(frame('X', []byte("VACUUM edges"))))
	seed(dir, "error", qbyte(frame('!', []byte("engine: unknown table \"nope\""))))
	ack := binary.LittleEndian.AppendUint32(nil, 7)
	seed(dir, "ack", qbyte(frame('A', ack)))

	// A rows response: u16 column count, u16-length-prefixed names,
	// u32 row count, u32-length-prefixed storage tuples.
	rows := binary.LittleEndian.AppendUint16(nil, 2)
	for _, col := range []string{"id", "geo"} {
		rows = binary.LittleEndian.AppendUint16(rows, uint16(len(col)))
		rows = append(rows, col...)
	}
	rows = binary.LittleEndian.AppendUint32(rows, 1)
	tuple := storage.EncodeTuple([]storage.Value{
		storage.NewInt(1),
		storage.NewGeom(geom.MustParseWKT("LINESTRING (0 0, 1 1)")),
	})
	rows = binary.LittleEndian.AppendUint32(rows, uint32(len(tuple)))
	rows = append(rows, tuple...)
	seed(dir, "rows-frame", qbyte(frame('R', rows)))
	seed(dir, "rows-payload", qbyte(rows))
}

// writeTopoCorpus emits WKT pairs drawn from the generated TIGER
// dataset: real street segments, water and landmark polygons, and
// point features in every pairing the DE-9IM micro suite exercises.
func writeTopoCorpus(ds *tiger.Dataset) {
	dir := filepath.Join("internal", "topo", "testdata", "fuzz", "FuzzDE9IM")
	edge := func(i int) string { return geom.WKT(ds.Edges[i%len(ds.Edges)].Geom) }
	water := func(i int) string { return geom.WKT(ds.AreaWater[i%len(ds.AreaWater)].Geom) }
	landm := func(i int) string { return geom.WKT(ds.AreaLandmarks[i%len(ds.AreaLandmarks)].Geom) }
	point := func(i int) string { return geom.WKT(ds.PointLandmarks[i%len(ds.PointLandmarks)].Geom) }
	pairs := []struct {
		name string
		a, b string
	}{
		{"edge-edge", edge(0), edge(1)},
		{"edge-edge-far", edge(2), edge(len(ds.Edges) / 2)},
		{"edge-landmark", edge(3), landm(0)},
		{"water-landmark", water(0), landm(1)},
		{"water-water", water(1), water(2)},
		{"point-water", point(0), water(3)},
		{"point-edge", point(1), edge(4)},
		{"point-point", point(2), point(2)},
		{"landmark-self", landm(2), landm(2)},
	}
	for _, p := range pairs {
		seed(dir, p.name, qstr(p.a), qstr(p.b))
	}
}

// writeWALCorpus emits FuzzWALReplay seeds built from a real log: the
// wal package writes three committed transactions plus one uncommitted
// page record, and the seeds are that file with the tails a crash can
// leave — clean, torn mid-record, CRC-flipped, magic destroyed, and a
// hostile length field. Recovery must replay the committed prefix of
// every one of them (or refuse cleanly) without panicking.
func writeWALCorpus() {
	dir := filepath.Join("internal", "storage", "wal", "testdata", "fuzz", "FuzzWALReplay")
	tmp, err := os.MkdirTemp("", "gencorpus-wal-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	path := filepath.Join(tmp, "wal.log")
	w, err := wal.Open(path, storage.NewMemStore())
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	for t := 0; t < 3; t++ {
		txn := w.Begin()
		for j := range buf {
			buf[j] = byte(t*37 + j)
		}
		if _, err := w.AppendPage(txn, uint32(t), buf); err != nil {
			log.Fatal(err)
		}
		if err := w.Commit(txn); err != nil {
			log.Fatal(err)
		}
	}
	// One appended-but-never-committed record: replay must drop it.
	if _, err := w.AppendPage(w.Begin(), 3, buf); err != nil {
		log.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), raw...))
	}
	seed(dir, "clean", qbyte(raw))
	seed(dir, "header-only", qbyte(raw[:32]))
	seed(dir, "sub-header", qbyte(raw[:17]))
	seed(dir, "torn-mid-record", qbyte(raw[:32+(len(raw)-32)/3]))
	seed(dir, "torn-in-length-word", qbyte(raw[:34]))
	seed(dir, "flipped-tail-crc", qbyte(mutate(func(b []byte) []byte {
		b[len(b)-1] ^= 0x5A
		return b
	})))
	seed(dir, "flipped-payload", qbyte(mutate(func(b []byte) []byte {
		b[len(b)/2] ^= 0x5A
		return b
	})))
	seed(dir, "bad-magic", qbyte(mutate(func(b []byte) []byte {
		b[0] ^= 0xFF
		return b
	})))
	seed(dir, "hostile-length", qbyte(mutate(func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[32:], 0xFFFFFFF0)
		return b
	})))
	seed(dir, "garbage-tail", qbyte(append(append([]byte(nil), raw...),
		[]byte("JPWAL001 this is not a record frame")...)))
}

// suites concatenates the three micro benchmark suites.
func suites() []core.MicroQuery {
	var all []core.MicroQuery
	all = append(all, core.TopologicalSuite()...)
	all = append(all, core.AnalysisSuite()...)
	all = append(all, core.MicroSuite()...)
	return all
}
