package jackpine

// The benches below regenerate every table and figure of the paper's
// evaluation (experiments E1–E16; see DESIGN.md for the index). Each
// benchmark iteration executes one unit of the experiment's workload, so
// `go test -bench=. -benchmem` reports the per-operation costs the
// corresponding experiment compares. The cmd/jackpine harness prints the
// same results as the paper-style comparison tables.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"jackpine/internal/core"
	"jackpine/internal/engine"
	"jackpine/internal/experiments"
	"jackpine/internal/geom"
	"jackpine/internal/tiger"
	"jackpine/internal/topo"
)

// benchEnv caches one loaded engine per (profile, scale, indexed) so the
// expensive load happens once per `go test -bench` process.
type benchKey struct {
	profile string
	scale   tiger.Scale
	indexed bool
}

var (
	benchMu   sync.Mutex
	benchEnvs = map[benchKey]*Engine{}
	benchDS   = map[tiger.Scale]*Dataset{}
)

func benchDataset(b *testing.B, scale tiger.Scale) *Dataset {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if ds, ok := benchDS[scale]; ok {
		return ds
	}
	ds := GenerateDataset(scale, 1)
	benchDS[scale] = ds
	return ds
}

func benchEngine(b *testing.B, p Profile, scale tiger.Scale, indexed bool) *Engine {
	b.Helper()
	ds := benchDataset(b, scale)
	benchMu.Lock()
	defer benchMu.Unlock()
	key := benchKey{p.Name, scale, indexed}
	if eng, ok := benchEnvs[key]; ok {
		return eng
	}
	eng := OpenEngine(p)
	if err := LoadDataset(eng, ds, indexed); err != nil {
		b.Fatal(err)
	}
	benchEnvs[key] = eng
	return eng
}

// runMicroQuery runs one micro query as the benchmark body.
func runMicroQuery(b *testing.B, eng *Engine, q MicroQuery, ds *Dataset) {
	b.Helper()
	ctx := NewQueryContext(ds)
	conn, err := Connect(eng).Connect()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	// Probe support once so unsupported queries skip instead of failing.
	if _, err := conn.Query(q.SQL(ctx, 0)); err != nil {
		b.Skipf("unsupported on %s: %v", eng.Profile().Name, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query(q.SQL(ctx, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1DatasetGeneration measures dataset synthesis (table E1's
// input); one iteration generates the full small dataset.
func BenchmarkE1DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := GenerateDataset(ScaleSmall, int64(i+1))
		if ds.TotalFeatures() == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkE2MicroTopological regenerates figure E2: every DE-9IM micro
// query on every engine profile.
func BenchmarkE2MicroTopological(b *testing.B) {
	for _, p := range AllProfiles() {
		eng := benchEngine(b, p, ScaleSmall, true)
		for _, q := range TopologicalSuite() {
			b.Run(fmt.Sprintf("%s/%s", p.Name, q.ID), func(b *testing.B) {
				runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
			})
		}
	}
}

// BenchmarkE3MicroAnalysis regenerates figure E3: every spatial-analysis
// micro query on every engine profile.
func BenchmarkE3MicroAnalysis(b *testing.B) {
	for _, p := range AllProfiles() {
		eng := benchEngine(b, p, ScaleSmall, true)
		for _, q := range AnalysisSuite() {
			b.Run(fmt.Sprintf("%s/%s", p.Name, q.ID), func(b *testing.B) {
				runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
			})
		}
	}
}

// BenchmarkE4MacroScenarios regenerates figure E4: one iteration is one
// end-user operation of the scenario.
func BenchmarkE4MacroScenarios(b *testing.B) {
	for _, p := range AllProfiles() {
		eng := benchEngine(b, p, ScaleSmall, true)
		for _, sc := range MacroSuite() {
			b.Run(fmt.Sprintf("%s/%s", p.Name, sc.ID), func(b *testing.B) {
				ctx := NewQueryContext(benchDataset(b, ScaleSmall))
				conn, err := Connect(eng).Connect()
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				if _, err := sc.Run(ctx, conn, 0); err != nil {
					b.Skipf("unsupported on %s: %v", p.Name, err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sc.Run(ctx, conn, i+1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE5IndexEffect regenerates figure E5: the MT7 point-in-polygon
// join with and without the spatial index.
func BenchmarkE5IndexEffect(b *testing.B) {
	var q MicroQuery
	for _, cand := range TopologicalSuite() {
		if cand.ID == "MT7" {
			q = cand
		}
	}
	for _, indexed := range []bool{true, false} {
		name := "indexed"
		if !indexed {
			name = "noindex"
		}
		b.Run(name, func(b *testing.B) {
			eng := benchEngine(b, GaiaDB(), ScaleSmall, indexed)
			runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
		})
	}
}

// BenchmarkE6ScaleUp regenerates figure E6: the MT3 polygon join at
// increasing dataset scales.
func BenchmarkE6ScaleUp(b *testing.B) {
	var q MicroQuery
	for _, cand := range TopologicalSuite() {
		if cand.ID == "MT3" {
			q = cand
		}
	}
	for _, scale := range []tiger.Scale{ScaleSmall, ScaleMedium} {
		b.Run(scale.String(), func(b *testing.B) {
			eng := benchEngine(b, GaiaDB(), scale, true)
			runMicroQuery(b, eng, q, benchDataset(b, scale))
		})
	}
}

// BenchmarkE7MBRAccuracy regenerates table E7's timing column: the MT3
// intersects join under exact versus MBR-only semantics.
func BenchmarkE7MBRAccuracy(b *testing.B) {
	var q MicroQuery
	for _, cand := range TopologicalSuite() {
		if cand.ID == "MT3" {
			q = cand
		}
	}
	for _, p := range []Profile{GaiaDB(), MySpatial()} {
		b.Run(p.Name, func(b *testing.B) {
			eng := benchEngine(b, p, ScaleSmall, true)
			runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
		})
	}
}

// BenchmarkE9ColdWarm regenerates figure E9: a map-browsing window query
// against a small buffer pool, cold (cache dropped per iteration) versus
// warm.
func BenchmarkE9ColdWarm(b *testing.B) {
	setup := func(b *testing.B) (*Engine, string) {
		ds := benchDataset(b, ScaleSmall)
		eng := OpenEngine(GaiaDB(), engine.WithPoolPages(64))
		if err := LoadDataset(eng, ds, true); err != nil {
			b.Fatal(err)
		}
		eng.Pool().MissPenalty = 5 * time.Microsecond
		ctx := NewQueryContext(ds)
		win := ctx.Window("E9", 0, 6)
		return eng, fmt.Sprintf("SELECT id FROM edges WHERE ST_Intersects(geo, %s)", core.WindowWKT(win))
	}
	b.Run("cold", func(b *testing.B) {
		eng, q := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := eng.Pool().DropAll(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := eng.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng, q := setup(b)
		if _, err := eng.Exec(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10Concurrency regenerates figure E10: parallel geocoding
// operations (run with -cpu 1,2,4,8 to sweep client counts).
func BenchmarkE10Concurrency(b *testing.B) {
	eng := benchEngine(b, GaiaDB(), ScaleSmall, true)
	ds := benchDataset(b, ScaleSmall)
	sc := MacroSuite()[1] // geocoding
	ctx := NewQueryContext(ds)
	b.RunParallel(func(pb *testing.PB) {
		conn, err := Connect(eng).Connect()
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		i := 0
		for pb.Next() {
			i++
			if _, err := sc.Run(ctx, conn, i); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Selectivity regenerates figure E11: window scans at
// increasing selectivity.
func BenchmarkE11Selectivity(b *testing.B) {
	eng := benchEngine(b, GaiaDB(), ScaleSmall, true)
	ds := benchDataset(b, ScaleSmall)
	ctx := NewQueryContext(ds)
	for _, blocks := range []float64{0.5, 2, 8} {
		b.Run(fmt.Sprintf("blocks-%g", blocks), func(b *testing.B) {
			conn, err := Connect(eng).Connect()
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				win := ctx.Window("E11", i, blocks)
				q := fmt.Sprintf("SELECT id FROM pointlm WHERE ST_Intersects(geo, %s)", core.WindowWKT(win))
				if _, err := conn.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// findMicro looks up one micro query by id.
func findMicro(b *testing.B, id string) MicroQuery {
	b.Helper()
	for _, q := range MicroSuite() {
		if q.ID == id {
			return q
		}
	}
	b.Fatalf("no micro query %s", id)
	return MicroQuery{}
}

// parallelBenchIDs are the E13 queries: MA2 is the scan-heavy aggregate
// (SUM(ST_Length) over every edge) and MA6 the refinement-heavy spatial
// window (ST_DWithin count over pointlm). Both stage-0 tables are above
// the engine's 256-row parallel threshold at the small scale.
var parallelBenchIDs = []string{"MA2", "MA6"}

// BenchmarkE13Parallelism regenerates figure E13: the scan-heavy and
// refinement-heavy micro queries at increasing intra-query worker
// counts on GaiaDB. On a single-core machine the parallel plans still
// run (goroutines serialize); real scaling needs 4+ cores.
func BenchmarkE13Parallelism(b *testing.B) {
	eng := benchEngine(b, GaiaDB(), ScaleSmall, true)
	defer eng.SetParallelism(0) // engine is cached across benchmarks
	ds := benchDataset(b, ScaleSmall)
	for _, id := range parallelBenchIDs {
		q := findMicro(b, id)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", q.ID, workers), func(b *testing.B) {
				eng.SetParallelism(workers)
				runMicroQuery(b, eng, q, ds)
			})
		}
	}
}

// TestWriteParallelBench regenerates BENCH_parallel.json, the committed
// E13 baseline. Gated behind JACKPINE_WRITE_BENCH=1 so normal test runs
// stay measurement-free:
//
//	JACKPINE_WRITE_BENCH=1 go test -run TestWriteParallelBench .
func TestWriteParallelBench(t *testing.T) {
	if os.Getenv("JACKPINE_WRITE_BENCH") != "1" {
		t.Skip("set JACKPINE_WRITE_BENCH=1 to rewrite BENCH_parallel.json")
	}
	ds := GenerateDataset(ScaleSmall, 1)
	eng := OpenEngine(GaiaDB())
	if err := LoadDataset(eng, ds, true); err != nil {
		t.Fatal(err)
	}
	ctx := NewQueryContext(ds)
	conn, err := Connect(eng).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	type timing struct {
		Workers int     `json:"workers"`
		MeanUS  int64   `json:"mean_us"`
		Speedup float64 `json:"speedup"`
	}
	type queryOut struct {
		ID      string   `json:"id"`
		Name    string   `json:"name"`
		SQL     string   `json:"sql"`
		Access  string   `json:"access"`
		Rows    int      `json:"rows"`
		Timings []timing `json:"timings"`
	}
	out := struct {
		Experiment string     `json:"experiment"`
		Date       string     `json:"date"`
		CPUs       int        `json:"cpus"`
		GOMAXPROCS int        `json:"gomaxprocs"`
		Scale      string     `json:"scale"`
		Warmup     int        `json:"warmup"`
		Runs       int        `json:"runs"`
		Note       string     `json:"note"`
		Queries    []queryOut `json:"queries"`
	}{
		Experiment: "E13 intra-query parallelism scaling (GaiaDB)",
		Date:       time.Now().UTC().Format("2006-01-02"),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      ScaleSmall.String(),
		Warmup:     2,
		Runs:       9,
		Note: "Speedup is mean(workers=1)/mean(workers=n). The acceptance " +
			"target (>=2x at 4 workers) applies to 4+ core machines; on this " +
			"host the worker goroutines time-share the available cores, so " +
			"speedup ~1x is expected when cpus=1.",
	}
	const warmup, runs = 2, 9
	for _, id := range parallelBenchIDs {
		var q MicroQuery
		for _, cand := range MicroSuite() {
			if cand.ID == id {
				q = cand
			}
		}
		qo := queryOut{ID: q.ID, Name: q.Name, SQL: q.SQL(ctx, 0)}
		for _, workers := range []int{1, 2, 4, 8} {
			eng.SetParallelism(workers)
			for w := 0; w < warmup; w++ {
				if _, err := conn.Query(q.SQL(ctx, w)); err != nil {
					t.Fatal(err)
				}
			}
			var total time.Duration
			for i := 0; i < runs; i++ {
				sql := q.SQL(ctx, warmup+i)
				start := time.Now()
				rs, err := conn.Query(sql)
				total += time.Since(start)
				if err != nil {
					t.Fatal(err)
				}
				qo.Rows = len(rs.Rows)
			}
			if workers == 4 { // record the plan the paper's figure cites
				res, err := eng.Exec(q.SQL(ctx, 0))
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Access) > 0 {
					qo.Access = res.Access[0]
				}
			}
			mean := total / runs
			tm := timing{Workers: workers, MeanUS: mean.Microseconds(), Speedup: 1}
			if len(qo.Timings) > 0 && mean > 0 {
				base := time.Duration(qo.Timings[0].MeanUS) * time.Microsecond
				tm.Speedup = float64(base.Nanoseconds()) / float64(mean.Nanoseconds())
			}
			qo.Timings = append(qo.Timings, tm)
		}
		eng.SetParallelism(0)
		out.Queries = append(out.Queries, qo)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_parallel.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_parallel.json (%d bytes)", len(buf))
}

// decodeBenchConfigs are the E14 cache configurations: no decode-layer
// caches, plan cache only, geometry cache only, both.
var decodeBenchConfigs = []struct {
	Name string
	Opts []engine.Option
}{
	{"none", []engine.Option{engine.WithGeomCache(0), engine.WithPlanCache(0)}},
	{"plan", []engine.Option{engine.WithGeomCache(0)}},
	{"geom", []engine.Option{engine.WithPlanCache(0)}},
	{"plan+geom", nil},
}

// decodeBenchQueries builds the E14 workload: short selective window
// queries whose warm-repeat cost is dominated by per-execution parse
// and WKB-decode work rather than by predicate refinement.
func decodeBenchQueries(ctx *QueryContext) []string {
	queries := make([]string, 0, 24)
	for i := 0; i < 8; i++ {
		win := core.WindowWKT(ctx.Window("E14", i, 2))
		queries = append(queries,
			fmt.Sprintf("SELECT COUNT(*) FROM parcels WHERE ST_Intersects(geo, %s)", win),
			fmt.Sprintf("SELECT SUM(ST_Length(geo)) FROM edges WHERE ST_Intersects(geo, %s)", win),
			fmt.Sprintf("SELECT id FROM pointlm WHERE ST_DWithin(geo, ST_Centroid(%s), 20)", win))
	}
	return queries
}

// BenchmarkE14DecodeCache regenerates figure E14: the warm-repeat cost
// of a window-query workload under each cache configuration. One
// iteration runs the whole workload once; the caches are pre-warmed, so
// the per-iteration delta between configurations is the parse and
// WKB-decode work the caches eliminate.
func BenchmarkE14DecodeCache(b *testing.B) {
	ds := benchDataset(b, ScaleSmall)
	ctx := NewQueryContext(ds)
	queries := decodeBenchQueries(ctx)
	for _, c := range decodeBenchConfigs {
		b.Run(c.Name, func(b *testing.B) {
			eng := OpenEngine(GaiaDB(), c.Opts...)
			if err := LoadDataset(eng, ds, true); err != nil {
				b.Fatal(err)
			}
			conn, err := Connect(eng).Connect()
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			// Warm pass populates whichever caches are enabled.
			for _, q := range queries {
				if _, err := conn.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := conn.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// TestWriteDecodeBench regenerates BENCH_decode.json, the committed E14
// baseline. Gated behind JACKPINE_WRITE_BENCH=1 like
// TestWriteParallelBench:
//
//	JACKPINE_WRITE_BENCH=1 go test -run TestWriteDecodeBench .
func TestWriteDecodeBench(t *testing.T) {
	if os.Getenv("JACKPINE_WRITE_BENCH") != "1" {
		t.Skip("set JACKPINE_WRITE_BENCH=1 to rewrite BENCH_decode.json")
	}
	ds := GenerateDataset(ScaleSmall, 1)
	ctx := NewQueryContext(ds)
	queries := decodeBenchQueries(ctx)

	type configOut struct {
		Caches      string  `json:"caches"`
		ColdUS      int64   `json:"cold_us"`
		WarmUS      int64   `json:"warm_us"`
		WarmSpeedup float64 `json:"warm_speedup_vs_none"`
		GeomHit     float64 `json:"geom_hit_ratio"`
		PlanHit     float64 `json:"plan_hit_ratio"`
	}
	out := struct {
		Experiment string      `json:"experiment"`
		Date       string      `json:"date"`
		CPUs       int         `json:"cpus"`
		GOMAXPROCS int         `json:"gomaxprocs"`
		Scale      string      `json:"scale"`
		Queries    int         `json:"queries"`
		Runs       int         `json:"runs"`
		Note       string      `json:"note"`
		Configs    []configOut `json:"configs"`
	}{
		Experiment: "E14 decode elimination: geometry and plan caches (GaiaDB)",
		Date:       time.Now().UTC().Format("2006-01-02"),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      ScaleSmall.String(),
		Queries:    len(queries),
		Runs:       31,
		Note: "cold_us is the first pass against empty caches; warm_us is the " +
			"mean of the following passes served from them. warm_speedup_vs_none " +
			"is warm(none)/warm(config). Hit ratios cover all measured passes; " +
			"-1 means the cache is disabled.",
	}
	const runs = 31
	warmNone := time.Duration(0)
	for _, c := range decodeBenchConfigs {
		eng := OpenEngine(GaiaDB(), c.Opts...)
		if err := LoadDataset(eng, ds, true); err != nil {
			t.Fatal(err)
		}
		conn, err := Connect(eng).Connect()
		if err != nil {
			t.Fatal(err)
		}
		pass := func() time.Duration {
			start := time.Now()
			for _, q := range queries {
				if _, err := conn.Query(q); err != nil {
					t.Fatal(err)
				}
			}
			return time.Since(start)
		}
		// Collect the previous config's engine before timing.
		runtime.GC()
		eng.ResetCacheStats()
		cold := pass()
		var warmTotal time.Duration
		for i := 0; i < runs; i++ {
			warmTotal += pass()
		}
		warm := warmTotal / runs
		cc := eng.CacheCounters()
		conn.Close()
		ratio := func(hits, misses uint64) float64 {
			if hits+misses == 0 {
				return -1
			}
			return float64(hits) / float64(hits+misses)
		}
		co := configOut{
			Caches: c.Name, ColdUS: cold.Microseconds(), WarmUS: warm.Microseconds(),
			GeomHit: ratio(cc.GeomHits, cc.GeomMisses),
			PlanHit: ratio(cc.PlanHits, cc.PlanMisses),
		}
		if c.Name == "none" {
			warmNone = warm
		}
		if warmNone > 0 && warm > 0 {
			co.WarmSpeedup = float64(warmNone.Nanoseconds()) / float64(warm.Nanoseconds())
		}
		out.Configs = append(out.Configs, co)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_decode.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_decode.json (%d bytes)", len(buf))
}

// scaleoutShardCounts are the E15 cluster sizes.
var scaleoutShardCounts = []int{1, 2, 4, 8}

// benchCluster caches one loaded in-process cluster per shard count.
var benchClusters = map[int]*Cluster{}

func benchClusterN(b *testing.B, n int) *Cluster {
	b.Helper()
	ds := benchDataset(b, ScaleSmall)
	benchMu.Lock()
	defer benchMu.Unlock()
	if cl, ok := benchClusters[n]; ok {
		return cl
	}
	cl, err := OpenCluster(GaiaDB(), ds, n)
	if err != nil {
		b.Fatal(err)
	}
	benchClusters[n] = cl
	return cl
}

// BenchmarkE15ScaleOut regenerates figure E15: macro throughput (MS1 map
// browsing, MS3 geocoding) and representative micro queries on
// spatially-sharded clusters of increasing size. All shards of an
// in-process cluster share this machine, so full-scan work is bounded by
// the core count; window-driven queries also gain from shard pruning.
func BenchmarkE15ScaleOut(b *testing.B) {
	ds := benchDataset(b, ScaleSmall)
	ctx := NewQueryContext(ds)
	var macros []MacroScenario
	for _, sc := range MacroSuite() {
		if sc.ID == "MS1" || sc.ID == "MS3" {
			macros = append(macros, sc)
		}
	}
	for _, n := range scaleoutShardCounts {
		cl := benchClusterN(b, n)
		for _, sc := range macros {
			b.Run(fmt.Sprintf("%s/shards-%d", sc.ID, n), func(b *testing.B) {
				conn, err := cl.Connect()
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sc.Run(ctx, conn, i+1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		for _, id := range []string{"MA2", "MA6", "MT1"} {
			q := findMicro(b, id)
			b.Run(fmt.Sprintf("%s/shards-%d", q.ID, n), func(b *testing.B) {
				conn, err := cl.Connect()
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := conn.Query(q.SQL(ctx, i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestWriteScaleoutBench regenerates BENCH_scaleout.json, the committed
// E15 baseline. Gated behind JACKPINE_WRITE_BENCH=1 like
// TestWriteParallelBench:
//
//	JACKPINE_WRITE_BENCH=1 go test -run TestWriteScaleoutBench .
func TestWriteScaleoutBench(t *testing.T) {
	if os.Getenv("JACKPINE_WRITE_BENCH") != "1" {
		t.Skip("set JACKPINE_WRITE_BENCH=1 to rewrite BENCH_scaleout.json")
	}
	ds := GenerateDataset(ScaleSmall, 1)
	ctx := NewQueryContext(ds)

	type macroOut struct {
		Shards     int     `json:"shards"`
		OpsPerSec  float64 `json:"ops_per_sec"`
		Speedup    float64 `json:"speedup"`
		PruneRate  float64 `json:"shard_prune_rate"`
		RowsPerOp  float64 `json:"rows_per_op"`
		MeanLatUS  int64   `json:"mean_latency_us"`
		P50LatUS   int64   `json:"p50_latency_us"`
		P95LatUS   int64   `json:"p95_latency_us"`
		P99LatUS   int64   `json:"p99_latency_us"`
		FastPath   int     `json:"fast_path"`
		HedgeFired int     `json:"hedge_fired"`
		HedgeWon   int     `json:"hedge_won"`
	}
	type microOut struct {
		Shards     int     `json:"shards"`
		MeanUS     int64   `json:"mean_us"`
		P50US      int64   `json:"p50_us"`
		P99US      int64   `json:"p99_us"`
		Speedup    float64 `json:"speedup"`
		PruneRate  float64 `json:"shard_prune_rate"`
		Rows       int     `json:"rows"`
		FastPath   int     `json:"fast_path"`
		HedgeFired int     `json:"hedge_fired"`
		HedgeWon   int     `json:"hedge_won"`
	}
	type queryOut struct {
		ID    string     `json:"id"`
		Name  string     `json:"name"`
		Macro []macroOut `json:"macro,omitempty"`
		Micro []microOut `json:"micro,omitempty"`
	}
	out := struct {
		Experiment string     `json:"experiment"`
		Date       string     `json:"date"`
		CPUs       int        `json:"cpus"`
		GOMAXPROCS int        `json:"gomaxprocs"`
		Scale      string     `json:"scale"`
		Warmup     int        `json:"warmup"`
		Runs       int        `json:"runs"`
		Replicas   int        `json:"replicas"`
		Note       string     `json:"note"`
		Queries    []queryOut `json:"queries"`
	}{
		Experiment: "E15 scale-out: spatially-sharded cluster (GaiaDB)",
		Date:       time.Now().UTC().Format("2006-01-02"),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      ScaleSmall.String(),
		Warmup:     10,
		Runs:       200,
		Replicas:   1,
		Note: "Speedup is vs the 1-shard cluster, whose single-table reads all " +
			"take the same verbatim-forward fast path; on a single-CPU host a " +
			"scatter cannot beat that baseline, so >=1x speedups here come from " +
			"routing (fast path, kNN two-phase, pruning), not parallelism. " +
			"shard_prune_rate is the fraction of per-shard queries spatial " +
			"pruning avoided (-1 when nothing was prune-eligible); fast_path " +
			"counts statements resolved to a single owning shard. Hedge " +
			"counters stay 0 at 1 replica per shard. Each (query, shards) " +
			"cell is the best of 3 full passes over the matrix, which cancels " +
			"the slow drift of this shared host across a long run. p99 here " +
			"is dominated by multi-ms scheduler stalls visible even at 1 " +
			"shard; p50 is the stable column for µs-scale queries.",
	}
	opts := Options{Warmup: 10, Runs: 200, Clients: 1}

	var macros []MacroScenario
	for _, sc := range MacroSuite() {
		if sc.ID == "MS1" || sc.ID == "MS3" {
			macros = append(macros, sc)
		}
	}
	var micros []MicroQuery
	for _, q := range MicroSuite() {
		switch q.ID {
		case "MA2", "MA6", "MT1":
			micros = append(micros, q)
		}
	}
	queries := make(map[string]*queryOut)
	var order []string
	get := func(id, name string) *queryOut {
		if qo, ok := queries[id]; ok {
			return qo
		}
		qo := &queryOut{ID: id, Name: name}
		queries[id] = qo
		order = append(order, id)
		return qo
	}
	// The host's throughput drifts over a long run (shared CPU), which
	// would bias whichever shard count is measured last. Sweep the whole
	// matrix several times and keep each cell's best pass — the run
	// least disturbed by outside load — then derive speedups.
	const passes = 3
	bestMacro := make(map[string]map[int]macroOut)
	bestMicro := make(map[string]map[int]microOut)
	for pass := 0; pass < passes; pass++ {
		for _, n := range scaleoutShardCounts {
			cl, err := OpenCluster(GaiaDB(), ds, n)
			if err != nil {
				t.Fatal(err)
			}
			// Collect the previous cluster's engines now so GC pauses do
			// not land inside the measured runs (ops here are tens of µs).
			runtime.GC()
			for _, sc := range macros {
				res := RunMacro(cl, sc, ctx, opts)
				if res.Err != nil {
					t.Fatalf("%s on %d shards: %v", sc.ID, n, res.Err)
				}
				get(sc.ID, sc.Name)
				mo := macroOut{
					Shards: n, OpsPerSec: res.Throughput, Speedup: 1,
					PruneRate: res.ShardPruneRate, RowsPerOp: res.RowsPerOp,
					MeanLatUS:  res.MeanLatency.Microseconds(),
					P50LatUS:   res.P50Latency.Microseconds(),
					P95LatUS:   res.P95Latency.Microseconds(),
					P99LatUS:   res.P99Latency.Microseconds(),
					FastPath:   res.ShardFastPath,
					HedgeFired: res.ShardHedgeFired, HedgeWon: res.ShardHedgeWon,
				}
				if bestMacro[sc.ID] == nil {
					bestMacro[sc.ID] = make(map[int]macroOut)
				}
				if prev, ok := bestMacro[sc.ID][n]; !ok || mo.OpsPerSec > prev.OpsPerSec {
					bestMacro[sc.ID][n] = mo
				}
			}
			micRes, err := RunMicro(cl, micros, ctx, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range micRes {
				if r.Err != nil {
					t.Fatalf("%s on %d shards: %v", r.ID, n, r.Err)
				}
				get(r.ID, r.Name)
				mo := microOut{
					Shards: n, MeanUS: r.Mean.Microseconds(), Speedup: 1,
					P50US: r.Median.Microseconds(), P99US: r.P99.Microseconds(),
					PruneRate: r.ShardPruneRate, Rows: r.Rows,
					FastPath:   r.ShardFastPath,
					HedgeFired: r.ShardHedgeFired, HedgeWon: r.ShardHedgeWon,
				}
				if bestMicro[r.ID] == nil {
					bestMicro[r.ID] = make(map[int]microOut)
				}
				if prev, ok := bestMicro[r.ID][n]; !ok || mo.MeanUS < prev.MeanUS {
					bestMicro[r.ID][n] = mo
				}
			}
		}
	}
	for _, id := range order {
		qo := queries[id]
		for _, n := range scaleoutShardCounts {
			if mo, ok := bestMacro[id][n]; ok {
				if base := bestMacro[id][scaleoutShardCounts[0]]; base.OpsPerSec > 0 {
					mo.Speedup = mo.OpsPerSec / base.OpsPerSec
				}
				qo.Macro = append(qo.Macro, mo)
			}
			if mo, ok := bestMicro[id][n]; ok {
				if base := bestMicro[id][scaleoutShardCounts[0]]; mo.MeanUS > 0 {
					mo.Speedup = float64(base.MeanUS) / float64(mo.MeanUS)
				}
				qo.Micro = append(qo.Micro, mo)
			}
		}
		out.Queries = append(out.Queries, *qo)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_scaleout.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_scaleout.json (%d bytes)", len(buf))
}

// BenchmarkE12JoinAblation regenerates figure E12: the MT2 spatial join
// with an index-nested-loop inner versus a block nested loop.
func BenchmarkE12JoinAblation(b *testing.B) {
	var q MicroQuery
	for _, cand := range TopologicalSuite() {
		if cand.ID == "MT2" {
			q = cand
		}
	}
	b.Run("index-nested-loop", func(b *testing.B) {
		eng := benchEngine(b, GaiaDB(), ScaleSmall, true)
		runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
	})
	b.Run("block-nested-loop", func(b *testing.B) {
		eng := benchEngine(b, GaiaDB(), ScaleSmall, false)
		runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
	})
}

// topoKernelConst builds the E16 constant operand: a 256-vertex regular
// polygon, dense enough that re-decomposing (and re-indexing) it per
// row dominates an unprepared DE-9IM evaluation.
func topoKernelConst() geom.Geometry {
	const n = 256
	ring := make(geom.Ring, 0, n+1)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / float64(n)
		ring = append(ring, geom.Coord{X: 500 + 400*math.Cos(th), Y: 500 + 400*math.Sin(th)})
	}
	ring = append(ring, ring[0])
	return geom.Polygon{ring}
}

// topoKernelRows builds parcel-like boxes scattered across the
// constant's envelope, so the MBR screen passes and every evaluation
// refines the full DE-9IM matrix (a mix of interior, boundary-crossing
// and env-overlapping-but-exterior rows).
func topoKernelRows() []geom.Geometry {
	rows := make([]geom.Geometry, 0, 512)
	for i := 0; i < 512; i++ {
		x := 100 + 36*float64(i%23)
		y := 100 + 36*float64(i/23)
		ring := geom.Ring{
			{X: x, Y: y}, {X: x + 8, Y: y}, {X: x + 8, Y: y + 8},
			{X: x, Y: y + 8}, {X: x, Y: y},
		}
		rows = append(rows, geom.Polygon{ring})
	}
	return rows
}

// topoPrepBenchQueries builds the E16 SQL workload: full-matrix
// predicates against a 256-vertex constant region, plus an
// index-nested-loop spatial join whose outer rows are prepared per
// invocation.
func topoPrepBenchQueries(ctx *QueryContext) []string {
	queries := make([]string, 0, 13)
	for i := 0; i < 4; i++ {
		win := ctx.Window("E16", i, 4)
		cx, cy := (win.MinX+win.MaxX)/2, (win.MinY+win.MaxY)/2
		r := win.Width() / 2
		const n = 256
		var sb strings.Builder
		sb.WriteString("ST_GEOMFROMTEXT('POLYGON ((")
		for j := 0; j <= n; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			a := 2 * math.Pi * float64(j%n) / float64(n)
			fmt.Fprintf(&sb, "%g %g", cx+r*math.Cos(a), cy+r*math.Sin(a))
		}
		sb.WriteString("))')")
		region := sb.String()
		queries = append(queries,
			fmt.Sprintf("SELECT COUNT(*) FROM parcels WHERE ST_Intersects(geo, %s)", region),
			fmt.Sprintf("SELECT COUNT(*) FROM edges WHERE ST_Crosses(geo, %s)", region),
			fmt.Sprintf("SELECT COUNT(*) FROM pointlm WHERE ST_Within(geo, %s)", region))
	}
	joinWin := core.WindowWKT(ctx.Window("E16/join", 0, 4))
	queries = append(queries, fmt.Sprintf(
		"SELECT COUNT(*) FROM arealm AS a JOIN pointlm AS p ON ST_Contains(a.geo, p.geo) WHERE ST_Intersects(a.geo, %s)",
		joinWin))
	return queries
}

// BenchmarkE16TopoKernel regenerates figure E16. The kernel/ pair
// isolates the prepared topology kernel itself: one iteration computes
// one DE-9IM matrix between the 256-vertex constant and one row
// geometry, with the constant either re-decomposed per call (naive) or
// prepared once (prepared). The sql/ pair runs the E16 SQL workload
// through a GaiaDB engine with prepared-constant evaluation off and on.
func BenchmarkE16TopoKernel(b *testing.B) {
	constG := topoKernelConst()
	rows := topoKernelRows()
	b.Run("kernel/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topo.Relate(constG, rows[i%len(rows)])
		}
	})
	b.Run("kernel/prepared", func(b *testing.B) {
		p := topo.Prepare(constG)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Relate(rows[i%len(rows)])
		}
	})
	ds := benchDataset(b, ScaleSmall)
	ctx := NewQueryContext(ds)
	queries := topoPrepBenchQueries(ctx)
	for _, c := range []struct {
		name string
		prep bool
	}{{"sql/off", false}, {"sql/on", true}} {
		b.Run(c.name, func(b *testing.B) {
			eng := OpenEngine(GaiaDB(), engine.WithTopoPrep(c.prep))
			if err := LoadDataset(eng, ds, true); err != nil {
				b.Fatal(err)
			}
			conn, err := Connect(eng).Connect()
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			for _, q := range queries {
				if _, err := conn.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := conn.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// TestWriteTopoKernelBench regenerates BENCH_topokernel.json, the
// committed E16 baseline. Gated like the other BENCH writers:
//
//	JACKPINE_WRITE_BENCH=1 go test -run TestWriteTopoKernelBench .
func TestWriteTopoKernelBench(t *testing.T) {
	if os.Getenv("JACKPINE_WRITE_BENCH") != "1" {
		t.Skip("set JACKPINE_WRITE_BENCH=1 to rewrite BENCH_topokernel.json")
	}
	constG := topoKernelConst()
	rows := topoKernelRows()

	// Kernel timing: several alternating passes over the row set.
	const passes = 31
	timeKernel := func(rel func(geom.Geometry) topo.Matrix) time.Duration {
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, r := range rows {
				rel(r)
			}
		}
		return time.Since(start) / time.Duration(passes*len(rows))
	}
	naiveNS := timeKernel(func(r geom.Geometry) topo.Matrix { return topo.Relate(constG, r) })
	prep := topo.Prepare(constG)
	prepNS := timeKernel(prep.Relate)

	ds := GenerateDataset(ScaleSmall, 1)
	ctx := NewQueryContext(ds)
	queries := topoPrepBenchQueries(ctx)
	type sqlOut struct {
		Prepared string  `json:"prepared"`
		WarmUS   int64   `json:"warm_us"`
		Speedup  float64 `json:"speedup_vs_off"`
		PrepHit  float64 `json:"prep_hit_ratio"`
	}
	var sqlConfigs []sqlOut
	var offWarm time.Duration
	for _, c := range []struct {
		name string
		prep bool
	}{{"off", false}, {"on", true}} {
		eng := OpenEngine(GaiaDB(), engine.WithTopoPrep(c.prep))
		if err := LoadDataset(eng, ds, true); err != nil {
			t.Fatal(err)
		}
		conn, err := Connect(eng).Connect()
		if err != nil {
			t.Fatal(err)
		}
		pass := func() time.Duration {
			start := time.Now()
			for _, q := range queries {
				if _, err := conn.Query(q); err != nil {
					t.Fatal(err)
				}
			}
			return time.Since(start)
		}
		pass() // warm caches
		runtime.GC()
		eng.ResetCacheStats()
		const runs = 7
		var total time.Duration
		for i := 0; i < runs; i++ {
			total += pass()
		}
		warm := total / runs
		cc := eng.CacheCounters()
		conn.Close()
		hit := -1.0
		if cc.PrepHits+cc.PrepMisses > 0 {
			hit = float64(cc.PrepHits) / float64(cc.PrepHits+cc.PrepMisses)
		}
		so := sqlOut{Prepared: c.name, WarmUS: warm.Microseconds(), PrepHit: hit}
		if c.name == "off" {
			offWarm = warm
			so.Speedup = 1
		} else if warm > 0 {
			so.Speedup = float64(offWarm.Nanoseconds()) / float64(warm.Nanoseconds())
		}
		sqlConfigs = append(sqlConfigs, so)
	}

	out := struct {
		Experiment    string   `json:"experiment"`
		Date          string   `json:"date"`
		CPUs          int      `json:"cpus"`
		GOMAXPROCS    int      `json:"gomaxprocs"`
		ConstVertices int      `json:"const_vertices"`
		Rows          int      `json:"rows"`
		Passes        int      `json:"passes"`
		NaiveNSPerOp  int64    `json:"kernel_naive_ns_per_relate"`
		PrepNSPerOp   int64    `json:"kernel_prepared_ns_per_relate"`
		KernelSpeedup float64  `json:"kernel_speedup"`
		Scale         string   `json:"scale"`
		Queries       int      `json:"queries"`
		SQLRuns       int      `json:"sql_runs"`
		SQL           []sqlOut `json:"sql_configs"`
		Note          string   `json:"note"`
	}{
		Experiment:    "E16 prepared-geometry topology kernel (GaiaDB)",
		Date:          time.Now().UTC().Format("2006-01-02"),
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ConstVertices: 256,
		Rows:          len(rows),
		Passes:        passes,
		NaiveNSPerOp:  naiveNS.Nanoseconds(),
		PrepNSPerOp:   prepNS.Nanoseconds(),
		Scale:         ScaleSmall.String(),
		Queries:       len(queries),
		SQLRuns:       7,
		SQL:           sqlConfigs,
		Note: "kernel_*_ns_per_relate is one full DE-9IM matrix between the " +
			"256-vertex constant and one parcel-sized row, averaged over all " +
			"rows and passes; naive re-decomposes the constant per call, " +
			"prepared decomposes and STR-indexes it once. sql warm_us is the " +
			"E16 workload (12 window-predicate queries + 1 spatial join) on a " +
			"warm GaiaDB engine with prepared-constant evaluation off/on.",
	}
	if prepNS > 0 {
		out.KernelSpeedup = float64(naiveNS.Nanoseconds()) / float64(prepNS.Nanoseconds())
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_topokernel.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("kernel naive %v prepared %v (%.2fx); wrote BENCH_topokernel.json (%d bytes)",
		naiveNS, prepNS, out.KernelSpeedup, len(buf))
}

// e17BenchQueries renders the E17 window-predicate micros (two probe
// iterations each) against a query context.
func e17BenchQueries(ctx *QueryContext) []string {
	var out []string
	for _, q := range experiments.E17Queries() {
		out = append(out, q.SQL(ctx, 0), q.SQL(ctx, 1))
	}
	return out
}

// BenchmarkE17BatchExec compares tuple-at-a-time and batch-at-a-time
// execution on the E17 window-predicate micros, single core. One
// iteration runs the whole query set once; -benchmem shows the
// allocs/op reduction the batch executor's pooled batches and arena
// decoding buy.
func BenchmarkE17BatchExec(b *testing.B) {
	ds := benchDataset(b, tiger.Small)
	ctx := NewQueryContext(ds)
	queries := e17BenchQueries(ctx)
	for _, c := range []struct {
		name  string
		batch bool
	}{{"row", false}, {"batch", true}} {
		b.Run(c.name, func(b *testing.B) {
			eng := OpenEngine(GaiaDB(), WithBatchExec(c.batch))
			eng.SetParallelism(1)
			if err := LoadDataset(eng, ds, true); err != nil {
				b.Fatal(err)
			}
			conn, err := Connect(eng).Connect()
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			for _, q := range queries {
				if _, err := conn.Query(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := conn.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// batchGuardQueryID is the representative window-predicate micro the
// allocation-regression guard tracks.
const batchGuardQueryID = "MT13"

// batchGuardAllocs measures steady-state allocations per execution of
// the guard query on a warm, single-core, batch-enabled engine at small
// scale — the exact procedure that produced the committed baseline in
// BENCH_batch.json.
func batchGuardAllocs(tb testing.TB) float64 {
	tb.Helper()
	ds := GenerateDataset(ScaleSmall, 1)
	ctx := NewQueryContext(ds)
	query := ""
	for _, q := range experiments.E17Queries() {
		if q.ID == batchGuardQueryID {
			query = q.SQL(ctx, 0)
		}
	}
	if query == "" {
		tb.Fatalf("guard query %s not in the E17 set", batchGuardQueryID)
	}
	eng := OpenEngine(GaiaDB())
	eng.SetParallelism(1)
	if err := LoadDataset(eng, ds, true); err != nil {
		tb.Fatal(err)
	}
	conn, err := Connect(eng).Connect()
	if err != nil {
		tb.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 3; i++ {
		if _, err := conn.Query(query); err != nil {
			tb.Fatal(err)
		}
	}
	return testing.AllocsPerRun(20, func() {
		if _, err := conn.Query(query); err != nil {
			tb.Fatal(err)
		}
	})
}

// TestBatchAllocRegression fails when the batch executor's allocs/op on
// the guard query exceeds the committed BENCH_batch.json baseline by
// more than 20%: the margin absorbs environment noise while catching a
// reintroduced per-row allocation (which multiplies by the row count,
// not percents). Skipped under the race detector, whose instrumentation
// changes allocation counts.
func TestBatchAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	buf, err := os.ReadFile("BENCH_batch.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	var bench struct {
		Guard struct {
			Query       string  `json:"query"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"alloc_guard"`
	}
	if err := json.Unmarshal(buf, &bench); err != nil {
		t.Fatalf("BENCH_batch.json: %v", err)
	}
	if bench.Guard.Query != batchGuardQueryID || bench.Guard.AllocsPerOp <= 0 {
		t.Skipf("baseline has no alloc_guard for %s", batchGuardQueryID)
	}
	got := batchGuardAllocs(t)
	limit := bench.Guard.AllocsPerOp * 1.2
	if got > limit {
		t.Errorf("%s allocs/op = %.0f, exceeds baseline %.0f by more than 20%% (limit %.0f); "+
			"a per-row allocation crept back into the batch path, or the baseline needs "+
			"regenerating (JACKPINE_WRITE_BENCH=1 go test -run TestWriteBatchBench .)",
			batchGuardQueryID, got, bench.Guard.AllocsPerOp, limit)
	}
}

// TestWriteBatchBench regenerates BENCH_batch.json, the committed E17
// result set and the allocation-regression baseline. Gated like the
// other BENCH writers:
//
//	JACKPINE_WRITE_BENCH=1 go test -run TestWriteBatchBench .
func TestWriteBatchBench(t *testing.T) {
	if os.Getenv("JACKPINE_WRITE_BENCH") != "1" {
		t.Skip("set JACKPINE_WRITE_BENCH=1 to rewrite BENCH_batch.json")
	}
	const runs = 7
	ds := tiger.Generate(tiger.Medium, 1)
	ctx := core.NewQueryContext(ds)
	row, err := experiments.MeasureE17(ds, ctx, false, runs)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := experiments.MeasureE17(ds, ctx, true, runs)
	if err != nil {
		t.Fatal(err)
	}

	type queryOut struct {
		ID          string  `json:"id"`
		RowUS       int64   `json:"row_us"`
		BatchUS     int64   `json:"batch_us"`
		Speedup     float64 `json:"speedup"`
		RowAllocs   float64 `json:"row_allocs_per_op"`
		BatchAllocs float64 `json:"batch_allocs_per_op"`
		AllocRatio  float64 `json:"alloc_ratio"`
	}
	var queries []queryOut
	var rowTotal, batchTotal time.Duration
	for _, q := range experiments.E17Queries() {
		r, b := row[q.ID], batch[q.ID]
		qo := queryOut{
			ID: q.ID, RowUS: r.Mean.Microseconds(), BatchUS: b.Mean.Microseconds(),
			RowAllocs: r.Allocs, BatchAllocs: b.Allocs,
		}
		if b.Mean > 0 {
			qo.Speedup = float64(r.Mean) / float64(b.Mean)
		}
		if r.Allocs > 0 {
			qo.AllocRatio = b.Allocs / r.Allocs
		}
		queries = append(queries, qo)
		rowTotal += r.Mean
		batchTotal += b.Mean
	}

	guardAllocs := batchGuardAllocs(t)

	out := struct {
		Experiment   string     `json:"experiment"`
		Date         string     `json:"date"`
		CPUs         int        `json:"cpus"`
		GOMAXPROCS   int        `json:"gomaxprocs"`
		Scale        string     `json:"scale"`
		Runs         int        `json:"runs"`
		BatchSize    int        `json:"batch_size"`
		Queries      []queryOut `json:"queries"`
		TotalSpeedup float64    `json:"total_speedup"`
		Guard        struct {
			Query       string  `json:"query"`
			Scale       string  `json:"scale"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"alloc_guard"`
		Note string `json:"note"`
	}{
		Experiment: "E17 vectorized batch execution (GaiaDB, 1 worker)",
		Date:       time.Now().UTC().Format("2006-01-02"),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      tiger.Medium.String(),
		Runs:       runs,
		BatchSize:  256,
		Queries:    queries,
		Note: "row/batch are per-execution wall times of the best of 7 timed " +
			"passes on one core with warm caches (the minimum is the stable " +
			"estimator of uncontended cost on a shared host); *_allocs_per_op " +
			"are process-wide heap " +
			"allocation deltas per execution (runtime.MemStats). alloc_guard " +
			"is the TestBatchAllocRegression baseline: steady-state allocs/op " +
			"of " + batchGuardQueryID + " at small scale, batch on, measured " +
			"with testing.AllocsPerRun.",
	}
	if batchTotal > 0 {
		out.TotalSpeedup = float64(rowTotal) / float64(batchTotal)
	}
	out.Guard.Query = batchGuardQueryID
	out.Guard.Scale = tiger.Small.String()
	out.Guard.AllocsPerOp = guardAllocs

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_batch.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("total speedup %.2fx (row %v, batch %v); guard %s %.0f allocs/op; wrote BENCH_batch.json (%d bytes)",
		out.TotalSpeedup, rowTotal, batchTotal, batchGuardQueryID, guardAllocs, len(buf))
}

// TestWritePersistBench regenerates BENCH_persist.json, the committed
// E18 durability baseline. Gated behind JACKPINE_WRITE_BENCH=1 like
// TestWriteParallelBench:
//
//	JACKPINE_WRITE_BENCH=1 go test -run TestWritePersistBench .
func TestWritePersistBench(t *testing.T) {
	if os.Getenv("JACKPINE_WRITE_BENCH") != "1" {
		t.Skip("set JACKPINE_WRITE_BENCH=1 to rewrite BENCH_persist.json")
	}
	cfg := experiments.DefaultConfig()
	dir := t.TempDir()
	cells, st, err := experiments.MeasureE18(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	cold, warm, steady := cells[0], cells[1], cells[2]

	type microOut struct {
		ID            string  `json:"id"`
		Name          string  `json:"name"`
		ColdUS        int64   `json:"cold_us"`
		WarmUS        int64   `json:"warm_us"`
		SteadyUS      int64   `json:"steady_us"`
		ColdWarmRatio float64 `json:"cold_warm_ratio"`
	}
	type macroOut struct {
		ID        string  `json:"id"`
		Name      string  `json:"name"`
		ColdOps   float64 `json:"cold_ops_per_s"`
		WarmOps   float64 `json:"warm_ops_per_s"`
		SteadyOps float64 `json:"steady_ops_per_s"`
		WALFsyncs int     `json:"wal_fsyncs"`
	}
	out := struct {
		Experiment      string     `json:"experiment"`
		Date            string     `json:"date"`
		CPUs            int        `json:"cpus"`
		Scale           string     `json:"scale"`
		Warmup          int        `json:"warmup"`
		Runs            int        `json:"runs"`
		LoadMS          int64      `json:"load_ms"`
		WALAppends      uint64     `json:"wal_appends"`
		WALCommits      uint64     `json:"wal_commits"`
		WALFsyncs       uint64     `json:"wal_fsyncs"`
		GroupCommitSize float64    `json:"group_commit_size"`
		Recovered       uint64     `json:"recovered_records"`
		Note            string     `json:"note"`
		Micro           []microOut `json:"micro"`
		Macro           []macroOut `json:"macro"`
	}{
		Experiment:      "E18 durability: WAL, recovery, cold vs warm vs steady (GaiaDB)",
		Date:            time.Now().UTC().Format("2006-01-02"),
		CPUs:            runtime.NumCPU(),
		Scale:           cfg.Scale.String(),
		Warmup:          cfg.Opts.Warmup,
		Runs:            cfg.Opts.Runs,
		LoadMS:          st.LoadTime.Milliseconds(),
		WALAppends:      st.Load.Appends,
		WALCommits:      st.Load.Commits,
		WALFsyncs:       st.Load.Fsyncs,
		GroupCommitSize: st.Load.GroupCommitSize(),
		Recovered:       st.Recovered,
		Note: "cold = reopened directory (recovery + empty buffer pool, the " +
			"pool dropped before every micro query and macro scenario; " +
			"warmup=0, runs=1 for micros); warm = same engine after the cold " +
			"pass; steady = the in-memory baseline engine. recovered_records " +
			"is 0 when the load's Close checkpointed cleanly. wal_fsyncs in " +
			"macro rows is the warm pass's count: only MS5 (land information " +
			"management) writes.",
	}
	for i := range cold.Micro {
		c, wa, s := cold.Micro[i], warm.Micro[i], steady.Micro[i]
		ratio := 0.0
		if wa.Mean > 0 {
			ratio = float64(c.Mean) / float64(wa.Mean)
		}
		out.Micro = append(out.Micro, microOut{
			ID: c.ID, Name: c.Name,
			ColdUS:        c.Mean.Microseconds(),
			WarmUS:        wa.Mean.Microseconds(),
			SteadyUS:      s.Mean.Microseconds(),
			ColdWarmRatio: math.Round(ratio*100) / 100,
		})
	}
	for i := range cold.Macro {
		c, wa, s := cold.Macro[i], warm.Macro[i], steady.Macro[i]
		out.Macro = append(out.Macro, macroOut{
			ID: c.ID, Name: c.Name,
			ColdOps:   math.Round(c.Throughput*10) / 10,
			WarmOps:   math.Round(wa.Throughput*10) / 10,
			SteadyOps: math.Round(s.Throughput*10) / 10,
			WALFsyncs: wa.WALFsyncs,
		})
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_persist.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("load %s, %d fsyncs (group commit %.1f); wrote BENCH_persist.json (%d bytes)",
		st.LoadTime.Round(time.Millisecond), st.Load.Fsyncs, st.Load.GroupCommitSize(), len(buf))
}

// TestWriteSpatialJoinBench regenerates BENCH_spatialjoin.json, the
// committed E19 evidence for the partition-based spatial-merge join.
// Same protocol as TestWriteParallelBench:
//
//	JACKPINE_WRITE_BENCH=1 go test -run TestWriteSpatialJoinBench .
func TestWriteSpatialJoinBench(t *testing.T) {
	if os.Getenv("JACKPINE_WRITE_BENCH") != "1" {
		t.Skip("set JACKPINE_WRITE_BENCH=1 to rewrite BENCH_spatialjoin.json")
	}
	cfg := experiments.DefaultConfig()
	cfg.Scale = tiger.Medium
	ds := tiger.Generate(cfg.Scale, cfg.Seed)
	ctx := core.NewQueryContext(ds)
	const runs = 5

	type cellOut struct {
		INLUS      int64   `json:"inl_us"`
		PBSMUS     int64   `json:"pbsm_us"`
		Speedup    float64 `json:"speedup"`
		Rows       int     `json:"rows"`
		Cells      int64   `json:"pbsm_cells,omitempty"`
		DedupDrops int64   `json:"dedup_drops,omitempty"`
		Pushdowns  int     `json:"join_pushdowns,omitempty"`
	}
	type singleOut struct {
		Parallelism int `json:"parallelism"`
		cellOut
	}
	type clusterOut struct {
		Shards int `json:"shards"`
		cellOut
	}
	out := struct {
		Experiment string       `json:"experiment"`
		Date       string       `json:"date"`
		CPUs       int          `json:"cpus"`
		Scale      string       `json:"scale"`
		Runs       int          `json:"runs"`
		Workload   string       `json:"workload"`
		Note       string       `json:"note"`
		Single     []singleOut  `json:"single_engine"`
		Cluster    []clusterOut `json:"cluster"`
	}{
		Experiment: "E19 partition-based spatial-merge join vs index-nested-loop (GaiaDB)",
		Date:       time.Now().UTC().Format("2006-01-02"),
		CPUs:       runtime.NumCPU(),
		Scale:      cfg.Scale.String(),
		Runs:       runs,
		Workload: "MS7 overlay-and-proximity macro: arealm x areawater " +
			"ST_Intersects overlay, pointlm self-join ST_DWithin clustering, " +
			"pointlm x areawater ST_DWithin proximity; per-operation wall " +
			"time, best of the timed passes.",
		Note: "inl forces per-outer-row R-tree probes, pbsm the grid " +
			"partitioning + x-sorted plane sweep with reference-point " +
			"dedup. Row counts are asserted identical per cell. Cluster " +
			"rows run co-partitioned joins shard-local (join_pushdowns " +
			"counts them); cells/dedup are per operation.",
	}

	maxSpeedup := 0.0
	for _, par := range []int{1, 2, 8} {
		inl, err := experiments.MeasureE19(ds, ctx, JoinINL, par, runs)
		if err != nil {
			t.Fatal(err)
		}
		pbsm, err := experiments.MeasureE19(ds, ctx, JoinPBSM, par, runs)
		if err != nil {
			t.Fatal(err)
		}
		if inl.Rows != pbsm.Rows {
			t.Fatalf("parallelism %d: INL rows %d != PBSM rows %d", par, inl.Rows, pbsm.Rows)
		}
		sp := float64(inl.Mean) / float64(pbsm.Mean)
		if sp > maxSpeedup {
			maxSpeedup = sp
		}
		out.Single = append(out.Single, singleOut{par, cellOut{
			INLUS: inl.Mean.Microseconds(), PBSMUS: pbsm.Mean.Microseconds(),
			Speedup: math.Round(sp*100) / 100, Rows: pbsm.Rows,
			Cells: pbsm.Cells, DedupDrops: pbsm.DedupDrops,
		}})
		t.Logf("par=%d inl=%v pbsm=%v speedup=%.2fx", par, inl.Mean, pbsm.Mean, sp)
	}
	for _, shards := range []int{1, 2, 8} {
		inl, err := experiments.MeasureE19Cluster(ds, ctx, JoinINL, shards, runs)
		if err != nil {
			t.Fatal(err)
		}
		pbsm, err := experiments.MeasureE19Cluster(ds, ctx, JoinPBSM, shards, runs)
		if err != nil {
			t.Fatal(err)
		}
		if inl.Rows != pbsm.Rows {
			t.Fatalf("shards %d: INL rows %d != PBSM rows %d", shards, inl.Rows, pbsm.Rows)
		}
		sp := float64(inl.Mean) / float64(pbsm.Mean)
		out.Cluster = append(out.Cluster, clusterOut{shards, cellOut{
			INLUS: inl.Mean.Microseconds(), PBSMUS: pbsm.Mean.Microseconds(),
			Speedup: math.Round(sp*100) / 100, Rows: pbsm.Rows,
			Cells: pbsm.Cells, DedupDrops: pbsm.DedupDrops,
			Pushdowns: pbsm.Pushdowns,
		}})
		t.Logf("shards=%d inl=%v pbsm=%v speedup=%.2fx pushdowns=%d",
			shards, inl.Mean, pbsm.Mean, sp, pbsm.Pushdowns)
	}
	if maxSpeedup < 2.0 {
		t.Fatalf("best single-engine PBSM speedup %.2fx, want >= 2x on the join-heavy macro", maxSpeedup)
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_spatialjoin.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("best speedup %.2fx; wrote BENCH_spatialjoin.json (%d bytes)", maxSpeedup, len(buf))
}
