package jackpine

// The benches below regenerate every table and figure of the paper's
// evaluation (experiments E1–E12; see DESIGN.md for the index). Each
// benchmark iteration executes one unit of the experiment's workload, so
// `go test -bench=. -benchmem` reports the per-operation costs the
// corresponding experiment compares. The cmd/jackpine harness prints the
// same results as the paper-style comparison tables.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"jackpine/internal/core"
	"jackpine/internal/engine"
	"jackpine/internal/tiger"
)

// benchEnv caches one loaded engine per (profile, scale, indexed) so the
// expensive load happens once per `go test -bench` process.
type benchKey struct {
	profile string
	scale   tiger.Scale
	indexed bool
}

var (
	benchMu   sync.Mutex
	benchEnvs = map[benchKey]*Engine{}
	benchDS   = map[tiger.Scale]*Dataset{}
)

func benchDataset(b *testing.B, scale tiger.Scale) *Dataset {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if ds, ok := benchDS[scale]; ok {
		return ds
	}
	ds := GenerateDataset(scale, 1)
	benchDS[scale] = ds
	return ds
}

func benchEngine(b *testing.B, p Profile, scale tiger.Scale, indexed bool) *Engine {
	b.Helper()
	ds := benchDataset(b, scale)
	benchMu.Lock()
	defer benchMu.Unlock()
	key := benchKey{p.Name, scale, indexed}
	if eng, ok := benchEnvs[key]; ok {
		return eng
	}
	eng := OpenEngine(p)
	if err := LoadDataset(eng, ds, indexed); err != nil {
		b.Fatal(err)
	}
	benchEnvs[key] = eng
	return eng
}

// runMicroQuery runs one micro query as the benchmark body.
func runMicroQuery(b *testing.B, eng *Engine, q MicroQuery, ds *Dataset) {
	b.Helper()
	ctx := NewQueryContext(ds)
	conn, err := Connect(eng).Connect()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	// Probe support once so unsupported queries skip instead of failing.
	if _, err := conn.Query(q.SQL(ctx, 0)); err != nil {
		b.Skipf("unsupported on %s: %v", eng.Profile().Name, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Query(q.SQL(ctx, i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1DatasetGeneration measures dataset synthesis (table E1's
// input); one iteration generates the full small dataset.
func BenchmarkE1DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := GenerateDataset(ScaleSmall, int64(i+1))
		if ds.TotalFeatures() == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkE2MicroTopological regenerates figure E2: every DE-9IM micro
// query on every engine profile.
func BenchmarkE2MicroTopological(b *testing.B) {
	for _, p := range AllProfiles() {
		eng := benchEngine(b, p, ScaleSmall, true)
		for _, q := range TopologicalSuite() {
			b.Run(fmt.Sprintf("%s/%s", p.Name, q.ID), func(b *testing.B) {
				runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
			})
		}
	}
}

// BenchmarkE3MicroAnalysis regenerates figure E3: every spatial-analysis
// micro query on every engine profile.
func BenchmarkE3MicroAnalysis(b *testing.B) {
	for _, p := range AllProfiles() {
		eng := benchEngine(b, p, ScaleSmall, true)
		for _, q := range AnalysisSuite() {
			b.Run(fmt.Sprintf("%s/%s", p.Name, q.ID), func(b *testing.B) {
				runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
			})
		}
	}
}

// BenchmarkE4MacroScenarios regenerates figure E4: one iteration is one
// end-user operation of the scenario.
func BenchmarkE4MacroScenarios(b *testing.B) {
	for _, p := range AllProfiles() {
		eng := benchEngine(b, p, ScaleSmall, true)
		for _, sc := range MacroSuite() {
			b.Run(fmt.Sprintf("%s/%s", p.Name, sc.ID), func(b *testing.B) {
				ctx := NewQueryContext(benchDataset(b, ScaleSmall))
				conn, err := Connect(eng).Connect()
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				if _, err := sc.Run(ctx, conn, 0); err != nil {
					b.Skipf("unsupported on %s: %v", p.Name, err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sc.Run(ctx, conn, i+1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE5IndexEffect regenerates figure E5: the MT7 point-in-polygon
// join with and without the spatial index.
func BenchmarkE5IndexEffect(b *testing.B) {
	var q MicroQuery
	for _, cand := range TopologicalSuite() {
		if cand.ID == "MT7" {
			q = cand
		}
	}
	for _, indexed := range []bool{true, false} {
		name := "indexed"
		if !indexed {
			name = "noindex"
		}
		b.Run(name, func(b *testing.B) {
			eng := benchEngine(b, GaiaDB(), ScaleSmall, indexed)
			runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
		})
	}
}

// BenchmarkE6ScaleUp regenerates figure E6: the MT3 polygon join at
// increasing dataset scales.
func BenchmarkE6ScaleUp(b *testing.B) {
	var q MicroQuery
	for _, cand := range TopologicalSuite() {
		if cand.ID == "MT3" {
			q = cand
		}
	}
	for _, scale := range []tiger.Scale{ScaleSmall, ScaleMedium} {
		b.Run(scale.String(), func(b *testing.B) {
			eng := benchEngine(b, GaiaDB(), scale, true)
			runMicroQuery(b, eng, q, benchDataset(b, scale))
		})
	}
}

// BenchmarkE7MBRAccuracy regenerates table E7's timing column: the MT3
// intersects join under exact versus MBR-only semantics.
func BenchmarkE7MBRAccuracy(b *testing.B) {
	var q MicroQuery
	for _, cand := range TopologicalSuite() {
		if cand.ID == "MT3" {
			q = cand
		}
	}
	for _, p := range []Profile{GaiaDB(), MySpatial()} {
		b.Run(p.Name, func(b *testing.B) {
			eng := benchEngine(b, p, ScaleSmall, true)
			runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
		})
	}
}

// BenchmarkE9ColdWarm regenerates figure E9: a map-browsing window query
// against a small buffer pool, cold (cache dropped per iteration) versus
// warm.
func BenchmarkE9ColdWarm(b *testing.B) {
	setup := func(b *testing.B) (*Engine, string) {
		ds := benchDataset(b, ScaleSmall)
		eng := OpenEngine(GaiaDB(), engine.WithPoolPages(64))
		if err := LoadDataset(eng, ds, true); err != nil {
			b.Fatal(err)
		}
		eng.Pool().MissPenalty = 5 * time.Microsecond
		ctx := NewQueryContext(ds)
		win := ctx.Window("E9", 0, 6)
		return eng, fmt.Sprintf("SELECT id FROM edges WHERE ST_Intersects(geo, %s)", core.WindowWKT(win))
	}
	b.Run("cold", func(b *testing.B) {
		eng, q := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := eng.Pool().DropAll(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := eng.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng, q := setup(b)
		if _, err := eng.Exec(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10Concurrency regenerates figure E10: parallel geocoding
// operations (run with -cpu 1,2,4,8 to sweep client counts).
func BenchmarkE10Concurrency(b *testing.B) {
	eng := benchEngine(b, GaiaDB(), ScaleSmall, true)
	ds := benchDataset(b, ScaleSmall)
	sc := MacroSuite()[1] // geocoding
	ctx := NewQueryContext(ds)
	b.RunParallel(func(pb *testing.PB) {
		conn, err := Connect(eng).Connect()
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		i := 0
		for pb.Next() {
			i++
			if _, err := sc.Run(ctx, conn, i); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Selectivity regenerates figure E11: window scans at
// increasing selectivity.
func BenchmarkE11Selectivity(b *testing.B) {
	eng := benchEngine(b, GaiaDB(), ScaleSmall, true)
	ds := benchDataset(b, ScaleSmall)
	ctx := NewQueryContext(ds)
	for _, blocks := range []float64{0.5, 2, 8} {
		b.Run(fmt.Sprintf("blocks-%g", blocks), func(b *testing.B) {
			conn, err := Connect(eng).Connect()
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				win := ctx.Window("E11", i, blocks)
				q := fmt.Sprintf("SELECT id FROM pointlm WHERE ST_Intersects(geo, %s)", core.WindowWKT(win))
				if _, err := conn.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12JoinAblation regenerates figure E12: the MT2 spatial join
// with an index-nested-loop inner versus a block nested loop.
func BenchmarkE12JoinAblation(b *testing.B) {
	var q MicroQuery
	for _, cand := range TopologicalSuite() {
		if cand.ID == "MT2" {
			q = cand
		}
	}
	b.Run("index-nested-loop", func(b *testing.B) {
		eng := benchEngine(b, GaiaDB(), ScaleSmall, true)
		runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
	})
	b.Run("block-nested-loop", func(b *testing.B) {
		eng := benchEngine(b, GaiaDB(), ScaleSmall, false)
		runMicroQuery(b, eng, q, benchDataset(b, ScaleSmall))
	})
}
