package jackpine

import (
	"strings"
	"testing"

	"jackpine/internal/wire"
)

// TestBatchEquivalence runs the entire micro suite (MT1–MT15, MA1–MA12)
// and all six macro scenarios on two engines — batch execution disabled
// versus enabled — over both the in-process and the wire transport, and
// requires byte-identical results from every query: same rows, same
// order, same float rendering. The batch path replaces only how stage-0
// rows move through the scan and filter cascade, so any divergence
// means batching changed semantics. Batch activity counters prove the
// intended path actually ran on each engine.
func TestBatchEquivalence(t *testing.T) {
	ds := GenerateDataset(ScaleSmall, 1)

	off := OpenEngine(GaiaDB(), WithBatchExec(false))
	on := OpenEngine(GaiaDB())
	for _, eng := range []*Engine{off, on} {
		if err := LoadDataset(eng, ds, true); err != nil {
			t.Fatal(err)
		}
	}
	if off.BatchExec() {
		t.Fatal("WithBatchExec(false) did not disable batch execution")
	}
	if !on.BatchExec() {
		t.Fatal("default engine has batch execution disabled")
	}

	ctx := NewQueryContext(ds)
	offConn, err := Connect(off).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer offConn.Close()
	onConn, err := Connect(on).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer onConn.Close()

	// Micro suite, in-process, serial and parallel.
	for _, par := range []int{1, 8} {
		off.SetParallelism(par)
		on.SetParallelism(par)
		for _, q := range MicroSuite() {
			sql := q.SQL(ctx, 0)
			rs, err := offConn.Query(sql)
			if err != nil {
				t.Fatalf("%s row path at parallelism %d: %v", q.ID, par, err)
			}
			want := canonRows(rs)
			rs, err = onConn.Query(sql)
			if err != nil {
				t.Fatalf("%s batch path at parallelism %d: %v", q.ID, par, err)
			}
			if got := canonRows(rs); got != want {
				t.Errorf("%s: batch path at parallelism %d diverges\nrow path:\n%s\nbatch path:\n%s",
					q.ID, par, want, got)
			}
		}
	}
	off.SetParallelism(1)
	on.SetParallelism(1)

	// Micro suite over the wire transport.
	offSrv, onSrv := wire.NewServer(off), wire.NewServer(on)
	offAddr, err := offSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer offSrv.Close()
	onAddr, err := onSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer onSrv.Close()
	offWire, err := ConnectRemote(offAddr, "off").Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer offWire.Close()
	onWire, err := ConnectRemote(onAddr, "on").Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer onWire.Close()
	for _, q := range MicroSuite() {
		sql := q.SQL(ctx, 0)
		rs, err := offWire.Query(sql)
		if err != nil {
			t.Fatalf("%s row path over wire: %v", q.ID, err)
		}
		want := canonRows(rs)
		rs, err = onWire.Query(sql)
		if err != nil {
			t.Fatalf("%s batch path over wire: %v", q.ID, err)
		}
		if got := canonRows(rs); got != want {
			t.Errorf("%s: batch path over wire diverges\nrow path:\n%s\nbatch path:\n%s",
				q.ID, want, got)
		}
	}

	// All six macro scenarios, every chained query compared, over both
	// transports. MS5 mutates parcels; driving both engines through the
	// same operations keeps their states in lockstep.
	for _, sc := range MacroSuite() {
		for name, conns := range map[string][2]Conn{
			"inproc": {offConn, onConn},
			"wire":   {offWire, onWire},
		} {
			var offLog, onLog strings.Builder
			for iter := 0; iter < 2; iter++ {
				if _, err := sc.Run(ctx, recordingConn{conns[0], &offLog}, iter); err != nil {
					t.Fatalf("%s row path (%s) iter %d: %v", sc.ID, name, iter, err)
				}
				if _, err := sc.Run(ctx, recordingConn{conns[1], &onLog}, iter); err != nil {
					t.Fatalf("%s batch path (%s) iter %d: %v", sc.ID, name, iter, err)
				}
			}
			if offLog.String() != onLog.String() {
				t.Errorf("%s (%s): batch run diverges\nrow path:\n%s\nbatch path:\n%s",
					sc.ID, name, offLog.String(), onLog.String())
			}
		}
	}

	// The sweep must have driven the batch executor on the enabled
	// engine and never on the disabled one.
	if batches, rows := on.BatchStats(); batches == 0 || rows == 0 {
		t.Errorf("batch engine processed no batches (batches=%d rows=%d)", batches, rows)
	}
	if batches, rows := off.BatchStats(); batches != 0 || rows != 0 {
		t.Errorf("disabled engine processed %d batches (%d rows)", batches, rows)
	}
}
