package jackpine

import (
	"path/filepath"
	"testing"
)

// TestDurableEquivalence is the durability acceptance sweep: the whole
// micro suite (MT1–MT15, MA1–MA12) must return byte-identical results
// from three engines — the in-memory baseline, the durable engine that
// loaded the dataset, and a fresh engine reopened on that durable
// engine's directory after a clean close (recovery replays the log,
// the catalog is read back from its reserved pages, and every index
// rebuilds). The macro scenarios then run the same operations on both
// engines — including MS5's UPDATE, which commits through the WAL —
// and the micro sweep repeats after the mutations and again after the
// reopen. Same columns, same rows, same order, same float rendering:
// the page file and WAL are a transparent layer under the heap, never
// a semantic one.
func TestDurableEquivalence(t *testing.T) {
	ds := GenerateDataset(ScaleSmall, 1)
	ctx := NewQueryContext(ds)
	dir := filepath.Join(t.TempDir(), "db")

	mem := OpenEngine(GaiaDB())
	if err := LoadDataset(mem, ds, true); err != nil {
		t.Fatal(err)
	}
	dur, err := OpenDurable(GaiaDB(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadDataset(dur, ds, true); err != nil {
		t.Fatal(err)
	}

	memConn, err := Connect(mem).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer memConn.Close()

	// The suite's SQL for a fixed iteration is deterministic, so the
	// same statement strings replay against every engine.
	microSweep := func(conn Conn, phase string) {
		t.Helper()
		for _, q := range MicroSuite() {
			s := q.SQL(ctx, 0)
			want, err := memConn.Query(s)
			if err != nil {
				t.Fatalf("%s baseline %s: %v", phase, q.ID, err)
			}
			got, err := conn.Query(s)
			if err != nil {
				t.Fatalf("%s durable %s: %v", phase, q.ID, err)
			}
			if canonRows(got) != canonRows(want) {
				t.Errorf("%s: %s diverges from the in-memory baseline\nmem:\n%.400s\ndurable:\n%.400s",
					phase, q.ID, canonRows(want), canonRows(got))
			}
		}
	}

	durConn, err := Connect(dur).Connect()
	if err != nil {
		t.Fatal(err)
	}
	microSweep(durConn, "loaded")

	// Macro operations, mutations included, applied identically to both
	// engines. Row counts per operation must agree, and the micro state
	// must still be identical afterwards.
	for _, sc := range MacroSuite() {
		for i := 0; i < 3; i++ {
			wantN, err := sc.Run(ctx, memConn, i)
			if err != nil {
				t.Fatalf("macro baseline %s op %d: %v", sc.ID, i, err)
			}
			gotN, err := sc.Run(ctx, durConn, i)
			if err != nil {
				t.Fatalf("macro durable %s op %d: %v", sc.ID, i, err)
			}
			if gotN != wantN {
				t.Errorf("macro %s op %d: durable returned %d rows, baseline %d", sc.ID, i, gotN, wantN)
			}
		}
	}
	microSweep(durConn, "post-macro")
	durConn.Close()
	if err := dur.Close(); err != nil {
		t.Fatalf("close durable engine: %v", err)
	}

	re, err := OpenDurable(GaiaDB(), dir)
	if err != nil {
		t.Fatalf("reopen durable engine: %v", err)
	}
	defer re.Close()
	reConn, err := Connect(re).Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer reConn.Close()
	microSweep(reConn, "reopened")
}
