package core

import "fmt"

// MicroQuery is one micro benchmark query: a generator producing the SQL
// text for a given iteration. Probe geometries vary deterministically
// per iteration so repeated runs exercise different data while remaining
// identical across engines.
type MicroQuery struct {
	// ID is the experiment identifier (MT1…, MA1…).
	ID string
	// Name describes the operation under test.
	Name string
	// Category is "topological" or "analysis".
	Category string
	// SQL produces the query text for one iteration.
	SQL func(ctx *QueryContext, iter int) string
}

// Micro query windows, in city blocks. Topological joins run inside a
// sampled window so a single execution stays interactive at every scale
// (the full-table joins of the original paper ran for minutes to hours).
const (
	joinWindowBlocks   = 4.0
	selectWindowBlocks = 6.0
)

// TopologicalSuite returns the DE-9IM micro benchmark (Jackpine's first
// micro component): each named topological relation exercised on the
// geometry-type combination it is most meaningful for.
func TopologicalSuite() []MicroQuery {
	return []MicroQuery{
		{
			ID: "MT1", Name: "LineString Intersects LineString", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT1", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM edges a JOIN edges b ON ST_Intersects(b.geo, a.geo) "+
						"WHERE ST_Intersects(a.geo, %s) AND a.id < b.id", w)
			},
		},
		{
			ID: "MT2", Name: "LineString Intersects Polygon", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT2", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM arealm a JOIN edges e ON ST_Intersects(e.geo, a.geo) "+
						"WHERE ST_Intersects(a.geo, %s)", w)
			},
		},
		{
			ID: "MT3", Name: "Polygon Intersects Polygon", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT3", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM arealm a JOIN areawater w ON ST_Intersects(w.geo, a.geo) "+
						"WHERE ST_Intersects(a.geo, %s)", w)
			},
		},
		{
			ID: "MT4", Name: "LineString Crosses Polygon", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT4", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM areawater w JOIN edges e ON ST_Crosses(e.geo, w.geo) "+
						"WHERE ST_Intersects(w.geo, %s)", w)
			},
		},
		{
			ID: "MT5", Name: "Polygon Overlaps Polygon", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT5", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM arealm a JOIN areawater w ON ST_Overlaps(w.geo, a.geo) "+
						"WHERE ST_Intersects(a.geo, %s)", w)
			},
		},
		{
			ID: "MT6", Name: "Polygon Touches Polygon", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT6", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM parcels a JOIN parcels b ON ST_Touches(b.geo, a.geo) "+
						"WHERE ST_Intersects(a.geo, %s) AND a.id < b.id", w)
			},
		},
		{
			ID: "MT7", Name: "Point Within Polygon", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT7", iter, selectWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM arealm a JOIN pointlm p ON ST_Within(p.geo, a.geo) "+
						"WHERE ST_Intersects(a.geo, %s)", w)
			},
		},
		{
			ID: "MT8", Name: "Polygon Contains Point", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				p := PointWKT(ctx.Point("MT8", iter))
				return fmt.Sprintf("SELECT COUNT(*) FROM arealm WHERE ST_Contains(geo, %s)", p)
			},
		},
		{
			ID: "MT9", Name: "Polygon Equals Polygon", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT9", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM arealm a JOIN arealm b ON ST_Equals(b.geo, a.geo) "+
						"WHERE ST_Intersects(a.geo, %s)", w)
			},
		},
		{
			ID: "MT10", Name: "LineString Within Polygon", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT10", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM arealm a JOIN edges e ON ST_Within(e.geo, a.geo) "+
						"WHERE ST_Intersects(a.geo, %s)", w)
			},
		},
		{
			ID: "MT11", Name: "LineString Touches LineString", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT11", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM edges a JOIN edges b ON ST_Touches(b.geo, a.geo) "+
						"WHERE ST_Intersects(a.geo, %s) AND a.id < b.id", w)
			},
		},
		{
			ID: "MT12", Name: "Point Intersects LineString", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT12", iter, selectWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM pointlm p JOIN edges e ON ST_Intersects(e.geo, p.geo) "+
						"WHERE ST_Intersects(p.geo, %s)", w)
			},
		},
		{
			ID: "MT13", Name: "Point Disjoint Polygon (windowed)", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := ctx.Window("MT13", iter, selectWindowBlocks)
				probe := WindowWKT(ctx.Window("MT13/probe", iter, 2))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM pointlm WHERE ST_Intersects(geo, %s) AND ST_Disjoint(geo, %s)",
					WindowWKT(w), probe)
			},
		},
		{
			ID: "MT14", Name: "Polygon Covers Point", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT14", iter, selectWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM arealm a JOIN pointlm p ON ST_Covers(a.geo, p.geo) "+
						"WHERE ST_Intersects(a.geo, %s)", w)
			},
		},
		{
			ID: "MT15", Name: "Relate with explicit DE-9IM pattern", Category: "topological",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MT15", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM arealm a JOIN areawater b ON ST_Relate(a.geo, b.geo, 'T*T***T**') "+
						"WHERE ST_Intersects(a.geo, %s) AND ST_Intersects(b.geo, %s)", w, w)
			},
		},
	}
}

// AnalysisSuite returns the spatial-analysis-function micro benchmark
// (Jackpine's second micro component).
func AnalysisSuite() []MicroQuery {
	return []MicroQuery{
		{
			ID: "MA1", Name: "Total area of area landmarks", Category: "analysis",
			SQL: func(*QueryContext, int) string {
				return "SELECT SUM(ST_Area(geo)) FROM arealm"
			},
		},
		{
			ID: "MA2", Name: "Total length of road edges", Category: "analysis",
			SQL: func(*QueryContext, int) string {
				return "SELECT SUM(ST_Length(geo)) FROM edges"
			},
		},
		{
			ID: "MA3", Name: "Envelope of every water polygon", Category: "analysis",
			SQL: func(*QueryContext, int) string {
				return "SELECT SUM(ST_Area(ST_Envelope(geo))) FROM areawater"
			},
		},
		{
			ID: "MA4", Name: "Buffer around sampled edges", Category: "analysis",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MA4", iter, 2))
				return fmt.Sprintf(
					"SELECT SUM(ST_Area(ST_Buffer(geo, 20))) FROM edges WHERE ST_Intersects(geo, %s)", w)
			},
		},
		{
			ID: "MA5", Name: "Convex hull of landmarks", Category: "analysis",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MA5", iter, selectWindowBlocks))
				return fmt.Sprintf(
					"SELECT SUM(ST_Area(ST_ConvexHull(geo))) FROM arealm WHERE ST_Intersects(geo, %s)", w)
			},
		},
		{
			ID: "MA6", Name: "Distance search (DWithin)", Category: "analysis",
			SQL: func(ctx *QueryContext, iter int) string {
				p := PointWKT(ctx.Point("MA6", iter))
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM pointlm WHERE ST_DWithin(geo, %s, %g)", p, 2.5*100.0)
			},
		},
		{
			ID: "MA7", Name: "Union of intersecting polygon pairs", Category: "analysis",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MA7", iter, joinWindowBlocks))
				return fmt.Sprintf(
					"SELECT SUM(ST_Area(ST_Union(a.geo, b.geo))) FROM arealm a "+
						"JOIN areawater b ON ST_Intersects(b.geo, a.geo) "+
						"WHERE ST_Intersects(a.geo, %s)", w)
			},
		},
		{
			ID: "MA8", Name: "Intersection area against probe region", Category: "analysis",
			SQL: func(ctx *QueryContext, iter int) string {
				probe := WindowWKT(ctx.Window("MA8", iter, 3))
				return fmt.Sprintf(
					"SELECT SUM(ST_Area(ST_Intersection(geo, %s))) FROM arealm WHERE ST_Intersects(geo, %s)",
					probe, probe)
			},
		},
		{
			ID: "MA9", Name: "Centroid computation", Category: "analysis",
			SQL: func(ctx *QueryContext, iter int) string {
				p := ctx.Point("MA9", iter)
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM arealm WHERE ST_X(ST_Centroid(geo)) > %g", p.X)
			},
		},
		{
			ID: "MA10", Name: "Boundary decomposition", Category: "analysis",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MA10", iter, selectWindowBlocks))
				return fmt.Sprintf(
					"SELECT SUM(ST_NumPoints(ST_Boundary(geo))) FROM arealm WHERE ST_Intersects(geo, %s)", w)
			},
		},
		{
			ID: "MA11", Name: "Dimension scan", Category: "analysis",
			SQL: func(ctx *QueryContext, iter int) string {
				w := WindowWKT(ctx.Window("MA11", iter, selectWindowBlocks))
				return fmt.Sprintf(
					"SELECT SUM(ST_Dimension(geo)) FROM parcels WHERE ST_Intersects(geo, %s)", w)
			},
		},
		{
			ID: "MA12", Name: "Top-k largest landmarks", Category: "analysis",
			SQL: func(*QueryContext, int) string {
				return "SELECT id FROM arealm ORDER BY ST_Area(geo) DESC LIMIT 10"
			},
		},
	}
}

// MicroSuite returns both micro components in order.
func MicroSuite() []MicroQuery {
	return append(TopologicalSuite(), AnalysisSuite()...)
}
