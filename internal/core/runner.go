package core

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"jackpine/internal/driver"
	"jackpine/internal/engine"
	"jackpine/internal/sql"
)

// Options configure a benchmark run.
type Options struct {
	// Warmup is the number of unmeasured iterations per query.
	Warmup int
	// Runs is the number of measured iterations per query.
	Runs int
	// Clients is the number of concurrent connections for macro
	// throughput measurement (micro queries always run single-stream,
	// as in the paper).
	Clients int
	// Parallelism records the engine's intra-query worker pool size for
	// this run (0 = engine default). The runner does not configure the
	// engine — callers set the knob (engine.SetParallelism) and report
	// the value here so results carry the dimension.
	Parallelism int
}

// DefaultOptions returns the runner defaults: 2 warmup iterations, 5
// measured runs, a single client.
func DefaultOptions() Options { return Options{Warmup: 2, Runs: 5, Clients: 1} }

func (o Options) normalized() Options {
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Runs < 1 {
		o.Runs = 1
	}
	if o.Clients < 1 {
		o.Clients = 1
	}
	return o
}

// MicroResult is the measurement of one micro query on one engine.
type MicroResult struct {
	ID          string
	Name        string
	Category    string
	Engine      string
	Runs        int
	Mean        time.Duration
	Median      time.Duration // p50 over the measured iterations
	P95         time.Duration
	P99         time.Duration
	Min         time.Duration
	Max         time.Duration
	Rows        int // rows returned by the last measured run
	Parallelism int // engine worker pool size during the run (0 = default)
	Unsupported bool
	Err         error

	// Cache hit ratios over the measured iterations (buffer pool,
	// decoded-geometry cache, plan cache). -1 means unknown: the
	// connection does not expose counters (remote engines) or the cache
	// saw no traffic during the run.
	PoolHitRatio      float64
	GeomCacheHitRatio float64
	PlanCacheHitRatio float64

	// TopoPrepHitRatio is the fraction of exact topological predicate
	// evaluations served through a prepared constant side over the
	// measured iterations; -1 means unknown or no exact evaluations.
	TopoPrepHitRatio float64

	// AllocsPerRun and BytesPerRun are process-wide heap allocation
	// deltas per measured iteration (runtime.MemStats Mallocs and
	// TotalAlloc), sampled only for in-process connections, where the
	// engine's work happens in this process. -1 means unknown (remote
	// engine). Process-wide: concurrent background work inflates them.
	AllocsPerRun float64
	BytesPerRun  float64

	// Shards and ShardPruneRate describe scatter-gather routing when the
	// connection is a spatially-sharded cluster (detected by interface,
	// like the cache counters): the cluster size and the fraction of
	// per-shard queries spatial pruning avoided over the measured
	// iterations. 0 / -1 when the target is not a cluster or nothing
	// was prune-eligible.
	Shards         int
	ShardPruneRate float64

	// ShardFastPath counts statements the cluster forwarded verbatim to a
	// single shard; ShardHedgeFired/ShardHedgeWon count hedged second
	// requests issued and won. All deltas over the measured iterations;
	// 0 when the target is not a cluster.
	ShardFastPath   int
	ShardHedgeFired int
	ShardHedgeWon   int

	// WALFsyncs is the number of log fsyncs over the measured iterations
	// and DirtyPages the buffer-pool dirty-page gauge sampled after them.
	// -1 when the engine is not durable (the shard-column convention).
	WALFsyncs  int
	DirtyPages int

	// JoinStrategy labels the spatial-join strategy that executed over
	// the measured iterations ("inl", "pbsm", "mixed"); blank when no
	// spatial join ran or the connection exposes no join counters
	// (remote engines). PBSMCells and DedupDrops are the grid cells
	// built and cross-cell duplicate pairs suppressed, -1 when unknown.
	// JoinPushdown counts cluster joins answered shard-local, 0 when
	// the target is not a cluster (the ShardFastPath convention).
	JoinStrategy string
	PBSMCells    int
	DedupDrops   int
	JoinPushdown int
}

// MacroResult is the measurement of one macro scenario on one engine.
type MacroResult struct {
	ID          string
	Name        string
	Engine      string
	Clients     int
	Parallelism int // engine worker pool size during the run (0 = default)
	Ops         int
	Elapsed     time.Duration
	Throughput  float64 // operations per second
	MeanLatency time.Duration
	// P50/P95/P99Latency are client-observed per-operation latency
	// quantiles over every measured operation across all clients
	// (full-sample, not per-client averages).
	P50Latency  time.Duration
	P95Latency  time.Duration
	P99Latency  time.Duration
	RowsPerOp   float64
	Unsupported bool
	Err         error

	// Cache hit ratios over the measured phase; -1 means unknown (see
	// MicroResult).
	PoolHitRatio      float64
	GeomCacheHitRatio float64
	PlanCacheHitRatio float64

	// TopoPrepHitRatio as in MicroResult, over the measured phase.
	TopoPrepHitRatio float64

	// AllocsPerOp and BytesPerOp as in MicroResult (per operation,
	// over the measured phase); -1 means unknown.
	AllocsPerOp float64
	BytesPerOp  float64

	// Shards and ShardPruneRate as in MicroResult, over the measured
	// phase.
	Shards         int
	ShardPruneRate float64

	// ShardFastPath / ShardHedgeFired / ShardHedgeWon as in MicroResult,
	// over the measured phase.
	ShardFastPath   int
	ShardHedgeFired int
	ShardHedgeWon   int

	// WALFsyncs / DirtyPages as in MicroResult, over the measured phase.
	WALFsyncs  int
	DirtyPages int

	// JoinStrategy / PBSMCells / DedupDrops / JoinPushdown as in
	// MicroResult, over the measured phase.
	JoinStrategy string
	PBSMCells    int
	DedupDrops   int
	JoinPushdown int
}

// cacheCounterConn is implemented by in-process connections that can
// report engine cache counters; remote connections simply lack it.
type cacheCounterConn interface {
	CacheCounters() engine.CacheCounters
}

// shardStatsConn is implemented by cluster connections that report
// scatter-gather routing counters; single-engine connections lack it.
type shardStatsConn interface {
	ShardStats() driver.ShardStats
}

// joinStatsConn is implemented by in-process connections that report
// the engine's spatial-join strategy counters.
type joinStatsConn interface {
	JoinStats() sql.JoinStats
}

// joinStrategyLabel classifies which spatial-join strategy executed
// between two counter snapshots; blank when no spatial join ran.
func joinStrategyLabel(before, after sql.JoinStats) string {
	inl, pbsm := after.INL-before.INL, after.PBSM-before.PBSM
	switch {
	case inl > 0 && pbsm > 0:
		return "mixed"
	case pbsm > 0:
		return "pbsm"
	case inl > 0:
		return "inl"
	}
	return ""
}

// pruneDelta is the prune rate between two shard-counter snapshots,
// over prune-eligible scatters only (windowless full scans do not
// dilute the denominator).
func pruneDelta(before, after driver.ShardStats) float64 {
	return driver.ShardStats{
		PrunableSent: after.PrunableSent - before.PrunableSent,
		Pruned:       after.Pruned - before.Pruned,
	}.PruneRate()
}

// cacheRatio converts a counter delta to a ratio, -1 when no traffic.
func cacheRatio(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return -1
	}
	return float64(hits) / float64(hits+misses)
}

// isUnsupported recognises the engine's feature-gap errors.
func isUnsupported(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not supported")
}

// RunMicro measures every query in the suite against the connector,
// single-stream. Unsupported queries are reported as such rather than
// failing the run (the paper's result tables mark these per DBMS).
func RunMicro(connector driver.Connector, suite []MicroQuery, ctx *QueryContext, opts Options) ([]MicroResult, error) {
	opts = opts.normalized()
	conn, err := connector.Connect()
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	results := make([]MicroResult, 0, len(suite))
	for _, q := range suite {
		res := MicroResult{
			ID: q.ID, Name: q.Name, Category: q.Category,
			Engine: connector.Name(), Runs: opts.Runs,
			Parallelism:  opts.Parallelism,
			PoolHitRatio: -1, GeomCacheHitRatio: -1, PlanCacheHitRatio: -1,
			TopoPrepHitRatio: -1,
			AllocsPerRun:     -1, BytesPerRun: -1,
			ShardPruneRate: -1,
			WALFsyncs:      -1, DirtyPages: -1,
			PBSMCells: -1, DedupDrops: -1,
		}
		// Warmup (also surfaces unsupported functions cheaply).
		aborted := false
		for w := 0; w < opts.Warmup && !aborted; w++ {
			if _, err := conn.Query(q.SQL(ctx, w)); err != nil {
				if isUnsupported(err) {
					res.Unsupported = true
				} else {
					res.Err = err
				}
				aborted = true
			}
		}
		if !aborted {
			cc, hasCC := conn.(cacheCounterConn)
			var before engine.CacheCounters
			if hasCC {
				before = cc.CacheCounters()
			}
			ss, hasSS := conn.(shardStatsConn)
			var ssBefore driver.ShardStats
			if hasSS {
				ssBefore = ss.ShardStats()
			}
			js, hasJS := conn.(joinStatsConn)
			var jsBefore sql.JoinStats
			if hasJS {
				jsBefore = js.JoinStats()
			}
			var memBefore runtime.MemStats
			if hasCC {
				runtime.ReadMemStats(&memBefore)
			}
			durations := make([]time.Duration, 0, opts.Runs)
			for i := 0; i < opts.Runs; i++ {
				query := q.SQL(ctx, opts.Warmup+i)
				start := time.Now()
				rs, err := conn.Query(query)
				elapsed := time.Since(start)
				if err != nil {
					if isUnsupported(err) {
						res.Unsupported = true
					} else {
						res.Err = fmt.Errorf("%s: %w", q.ID, err)
					}
					break
				}
				durations = append(durations, elapsed)
				res.Rows = len(rs.Rows)
			}
			if len(durations) > 0 {
				fillStats(&res, durations)
			}
			if hasCC && len(durations) > 0 {
				var memAfter runtime.MemStats
				runtime.ReadMemStats(&memAfter)
				n := float64(len(durations))
				res.AllocsPerRun = float64(memAfter.Mallocs-memBefore.Mallocs) / n
				res.BytesPerRun = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / n
				after := cc.CacheCounters()
				res.PoolHitRatio = cacheRatio(after.PoolHits-before.PoolHits, after.PoolMisses-before.PoolMisses)
				res.GeomCacheHitRatio = cacheRatio(after.GeomHits-before.GeomHits, after.GeomMisses-before.GeomMisses)
				res.PlanCacheHitRatio = cacheRatio(after.PlanHits-before.PlanHits, after.PlanMisses-before.PlanMisses)
				res.TopoPrepHitRatio = cacheRatio(after.PrepHits-before.PrepHits, after.PrepMisses-before.PrepMisses)
				if after.WALEnabled {
					res.WALFsyncs = int(after.WALFsyncs - before.WALFsyncs)
					res.DirtyPages = int(after.DirtyPages) // gauge, not a delta
				}
			}
			if hasSS && len(durations) > 0 {
				after := ss.ShardStats()
				res.Shards = after.Shards
				res.ShardPruneRate = pruneDelta(ssBefore, after)
				res.ShardFastPath = after.FastPathHits - ssBefore.FastPathHits
				res.ShardHedgeFired = after.HedgeFired - ssBefore.HedgeFired
				res.ShardHedgeWon = after.HedgeWon - ssBefore.HedgeWon
				res.JoinPushdown = after.JoinPushdowns - ssBefore.JoinPushdowns
			}
			if hasJS && len(durations) > 0 {
				after := js.JoinStats()
				res.JoinStrategy = joinStrategyLabel(jsBefore, after)
				res.PBSMCells = int(after.Cells - jsBefore.Cells)
				res.DedupDrops = int(after.DedupDrops - jsBefore.DedupDrops)
			}
		}
		results = append(results, res)
	}
	return results, nil
}

func fillStats(res *MicroResult, ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	res.Runs = len(ds)
	res.Mean = sum / time.Duration(len(ds))
	res.Median = ds[len(ds)/2]
	res.P95 = ds[(len(ds)*95)/100]
	res.P99 = ds[(len(ds)*99)/100]
	res.Min = ds[0]
	res.Max = ds[len(ds)-1]
}

// quantile reads the q-quantile from a sorted duration sample (same
// index convention as fillStats).
func quantile(ds []time.Duration, q int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	return ds[(len(ds)*q)/100]
}

// RunMacro measures one scenario's throughput with opts.Clients
// concurrent connections, each performing opts.Runs operations after
// opts.Warmup unmeasured ones. Iteration numbers are partitioned across
// clients so concurrent operations touch different probe locations.
func RunMacro(connector driver.Connector, sc MacroScenario, ctx *QueryContext, opts Options) MacroResult {
	opts = opts.normalized()
	res := MacroResult{
		ID: sc.ID, Name: sc.Name, Engine: connector.Name(), Clients: opts.Clients,
		Parallelism:  opts.Parallelism,
		PoolHitRatio: -1, GeomCacheHitRatio: -1, PlanCacheHitRatio: -1,
		TopoPrepHitRatio: -1,
		AllocsPerOp:      -1, BytesPerOp: -1,
		ShardPruneRate: -1,
		WALFsyncs:      -1, DirtyPages: -1,
		PBSMCells: -1, DedupDrops: -1,
	}

	// Feature probe: run one operation; an unsupported error marks the
	// whole scenario, mirroring the paper's per-DBMS support table.
	probeConn, err := connector.Connect()
	if err != nil {
		res.Err = err
		return res
	}
	if _, err := sc.Run(ctx, probeConn, 0); err != nil {
		probeConn.Close()
		if isUnsupported(err) {
			res.Unsupported = true
		} else {
			res.Err = err
		}
		return res
	}
	probeConn.Close()

	type clientOut struct {
		ops  int
		rows int
		durs []time.Duration
		err  error
	}
	outs := make([]clientOut, opts.Clients)

	// Snapshot the engine's cache counters around the measured phase via
	// a dedicated connection (the counters are engine-global).
	var before engine.CacheCounters
	var statsCC cacheCounterConn
	var ssBefore driver.ShardStats
	var statsSS shardStatsConn
	var jsBefore sql.JoinStats
	var statsJS joinStatsConn
	if statsConn, err := connector.Connect(); err == nil {
		if cc, ok := statsConn.(cacheCounterConn); ok {
			statsCC = cc
			before = cc.CacheCounters()
		}
		if ss, ok := statsConn.(shardStatsConn); ok {
			statsSS = ss
			ssBefore = ss.ShardStats()
		}
		if js, ok := statsConn.(joinStatsConn); ok {
			statsJS = js
			jsBefore = js.JoinStats()
		}
		if statsCC != nil || statsSS != nil || statsJS != nil {
			defer statsConn.Close()
		} else {
			statsConn.Close()
		}
	}

	var memBefore runtime.MemStats
	if statsCC != nil {
		runtime.ReadMemStats(&memBefore)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := connector.Connect()
			if err != nil {
				outs[c].err = err
				return
			}
			defer conn.Close()
			base := 1 + c*(opts.Warmup+opts.Runs)
			for w := 0; w < opts.Warmup; w++ {
				if _, err := sc.Run(ctx, conn, base+w); err != nil {
					outs[c].err = err
					return
				}
			}
			outs[c].durs = make([]time.Duration, 0, opts.Runs)
			for i := 0; i < opts.Runs; i++ {
				opStart := time.Now()
				rows, err := sc.Run(ctx, conn, base+opts.Warmup+i)
				opElapsed := time.Since(opStart)
				if err != nil {
					outs[c].err = err
					return
				}
				outs[c].ops++
				outs[c].rows += rows
				outs[c].durs = append(outs[c].durs, opElapsed)
			}
		}(c)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	totalRows := 0
	var durs []time.Duration
	for _, o := range outs {
		if o.err != nil && res.Err == nil {
			res.Err = o.err
		}
		res.Ops += o.ops
		totalRows += o.rows
		durs = append(durs, o.durs...)
	}
	if res.Ops > 0 && res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / res.Elapsed.Seconds()
		// Multiply before dividing: dividing first truncates to the
		// nanosecond per op and the error scales with the client count.
		res.MeanLatency = res.Elapsed * time.Duration(opts.Clients) / time.Duration(res.Ops)
		res.RowsPerOp = float64(totalRows) / float64(res.Ops)
	}
	if len(durs) > 0 {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		res.P50Latency = quantile(durs, 50)
		res.P95Latency = quantile(durs, 95)
		res.P99Latency = quantile(durs, 99)
	}
	if statsCC != nil {
		if res.Ops > 0 {
			var memAfter runtime.MemStats
			runtime.ReadMemStats(&memAfter)
			res.AllocsPerOp = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(res.Ops)
			res.BytesPerOp = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(res.Ops)
		}
		after := statsCC.CacheCounters()
		res.PoolHitRatio = cacheRatio(after.PoolHits-before.PoolHits, after.PoolMisses-before.PoolMisses)
		res.GeomCacheHitRatio = cacheRatio(after.GeomHits-before.GeomHits, after.GeomMisses-before.GeomMisses)
		res.PlanCacheHitRatio = cacheRatio(after.PlanHits-before.PlanHits, after.PlanMisses-before.PlanMisses)
		res.TopoPrepHitRatio = cacheRatio(after.PrepHits-before.PrepHits, after.PrepMisses-before.PrepMisses)
		if after.WALEnabled {
			res.WALFsyncs = int(after.WALFsyncs - before.WALFsyncs)
			res.DirtyPages = int(after.DirtyPages) // gauge, not a delta
		}
	}
	if statsSS != nil {
		after := statsSS.ShardStats()
		res.Shards = after.Shards
		res.ShardPruneRate = pruneDelta(ssBefore, after)
		res.ShardFastPath = after.FastPathHits - ssBefore.FastPathHits
		res.ShardHedgeFired = after.HedgeFired - ssBefore.HedgeFired
		res.ShardHedgeWon = after.HedgeWon - ssBefore.HedgeWon
		res.JoinPushdown = after.JoinPushdowns - ssBefore.JoinPushdowns
	}
	if statsJS != nil {
		after := statsJS.JoinStats()
		res.JoinStrategy = joinStrategyLabel(jsBefore, after)
		res.PBSMCells = int(after.Cells - jsBefore.Cells)
		res.DedupDrops = int(after.DedupDrops - jsBefore.DedupDrops)
	}
	return res
}

// RunMacroSuite runs every scenario.
func RunMacroSuite(connector driver.Connector, ctx *QueryContext, opts Options) []MacroResult {
	var out []MacroResult
	for _, sc := range MacroSuite() {
		out = append(out, RunMacro(connector, sc, ctx, opts))
	}
	return out
}
