package core

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteMicroTable renders micro results grouped by query, one column per
// engine, in the style of the paper's response-time tables.
func WriteMicroTable(w io.Writer, results []MicroResult) {
	engines := engineOrder(results)
	byKey := make(map[string]map[string]MicroResult)
	var order []string
	names := make(map[string]string)
	for _, r := range results {
		if _, ok := byKey[r.ID]; !ok {
			byKey[r.ID] = make(map[string]MicroResult)
			order = append(order, r.ID)
			names[r.ID] = r.Name
		}
		byKey[r.ID][r.Engine] = r
	}

	fmt.Fprintf(w, "%-6s %-42s", "id", "query")
	for _, e := range engines {
		fmt.Fprintf(w, " %14s", e)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 49+15*len(engines)))
	for _, id := range order {
		fmt.Fprintf(w, "%-6s %-42s", id, truncate(names[id], 42))
		for _, e := range engines {
			r, ok := byKey[id][e]
			switch {
			case !ok:
				fmt.Fprintf(w, " %14s", "-")
			case r.Unsupported:
				fmt.Fprintf(w, " %14s", "unsupported")
			case r.Err != nil:
				fmt.Fprintf(w, " %14s", "ERROR")
			default:
				fmt.Fprintf(w, " %14s", fmtDuration(r.Mean))
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteMicroCSV renders micro results as CSV. The trailing hit-ratio
// columns are blank when the connection does not expose cache counters
// or the cache saw no traffic.
func WriteMicroCSV(w io.Writer, results []MicroResult) {
	fmt.Fprintln(w, "id,name,category,engine,runs,parallelism,mean_us,p50_us,p95_us,p99_us,min_us,max_us,rows,unsupported,error,pool_hit,geom_cache_hit,plan_cache_hit,prep_hit,allocs,bytes,shards,shard_prune,shard_fastpath,hedge_fired,hedge_won,wal_fsync,dirty_pages,join_strategy,pbsm_cells,dedup_drops,join_pushdown")
	for _, r := range results {
		errMsg := ""
		if r.Err != nil {
			errMsg = strings.ReplaceAll(r.Err.Error(), ",", ";")
		}
		fmt.Fprintf(w, "%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%v,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
			r.ID, csvQuote(r.Name), r.Category, r.Engine, r.Runs, r.Parallelism,
			r.Mean.Microseconds(), r.Median.Microseconds(), r.P95.Microseconds(),
			r.P99.Microseconds(), r.Min.Microseconds(), r.Max.Microseconds(),
			r.Rows, r.Unsupported, errMsg,
			fmtRatio(r.PoolHitRatio), fmtRatio(r.GeomCacheHitRatio), fmtRatio(r.PlanCacheHitRatio),
			fmtRatio(r.TopoPrepHitRatio), fmtCount(r.AllocsPerRun), fmtCount(r.BytesPerRun),
			fmtShards(r.Shards), fmtRatio(r.ShardPruneRate),
			fmtShardCount(r.Shards, r.ShardFastPath), fmtShardCount(r.Shards, r.ShardHedgeFired),
			fmtShardCount(r.Shards, r.ShardHedgeWon),
			fmtIntCount(r.WALFsyncs), fmtIntCount(r.DirtyPages),
			r.JoinStrategy, fmtIntCount(r.PBSMCells), fmtIntCount(r.DedupDrops),
			fmtShardCount(r.Shards, r.JoinPushdown))
	}
}

// WriteMacroTable renders macro results grouped by scenario.
func WriteMacroTable(w io.Writer, results []MacroResult) {
	engines := engineOrderMacro(results)
	byKey := make(map[string]map[string]MacroResult)
	var order []string
	names := make(map[string]string)
	for _, r := range results {
		if _, ok := byKey[r.ID]; !ok {
			byKey[r.ID] = make(map[string]MacroResult)
			order = append(order, r.ID)
			names[r.ID] = r.Name
		}
		byKey[r.ID][r.Engine] = r
	}
	fmt.Fprintf(w, "%-5s %-30s", "id", "scenario (ops/sec)")
	for _, e := range engines {
		fmt.Fprintf(w, " %14s", e)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 36+15*len(engines)))
	for _, id := range order {
		fmt.Fprintf(w, "%-5s %-30s", id, truncate(names[id], 30))
		for _, e := range engines {
			r, ok := byKey[id][e]
			switch {
			case !ok:
				fmt.Fprintf(w, " %14s", "-")
			case r.Unsupported:
				fmt.Fprintf(w, " %14s", "unsupported")
			case r.Err != nil:
				fmt.Fprintf(w, " %14s", "ERROR")
			default:
				fmt.Fprintf(w, " %14.2f", r.Throughput)
			}
		}
		fmt.Fprintln(w)
	}
}

// WriteMacroCSV renders macro results as CSV. Hit-ratio columns follow
// the micro CSV convention (blank when unknown).
func WriteMacroCSV(w io.Writer, results []MacroResult) {
	fmt.Fprintln(w, "id,name,engine,clients,parallelism,ops,elapsed_ms,ops_per_sec,mean_latency_us,p50_latency_us,p95_latency_us,p99_latency_us,rows_per_op,unsupported,error,pool_hit,geom_cache_hit,plan_cache_hit,prep_hit,allocs,bytes,shards,shard_prune,shard_fastpath,hedge_fired,hedge_won,wal_fsync,dirty_pages,join_strategy,pbsm_cells,dedup_drops,join_pushdown")
	for _, r := range results {
		errMsg := ""
		if r.Err != nil {
			errMsg = strings.ReplaceAll(r.Err.Error(), ",", ";")
		}
		fmt.Fprintf(w, "%s,%s,%s,%d,%d,%d,%d,%.3f,%d,%d,%d,%d,%.1f,%v,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
			r.ID, csvQuote(r.Name), r.Engine, r.Clients, r.Parallelism, r.Ops,
			r.Elapsed.Milliseconds(), r.Throughput, r.MeanLatency.Microseconds(),
			r.P50Latency.Microseconds(), r.P95Latency.Microseconds(), r.P99Latency.Microseconds(),
			r.RowsPerOp, r.Unsupported, errMsg,
			fmtRatio(r.PoolHitRatio), fmtRatio(r.GeomCacheHitRatio), fmtRatio(r.PlanCacheHitRatio),
			fmtRatio(r.TopoPrepHitRatio), fmtCount(r.AllocsPerOp), fmtCount(r.BytesPerOp),
			fmtShards(r.Shards), fmtRatio(r.ShardPruneRate),
			fmtShardCount(r.Shards, r.ShardFastPath), fmtShardCount(r.Shards, r.ShardHedgeFired),
			fmtShardCount(r.Shards, r.ShardHedgeWon),
			fmtIntCount(r.WALFsyncs), fmtIntCount(r.DirtyPages),
			r.JoinStrategy, fmtIntCount(r.PBSMCells), fmtIntCount(r.DedupDrops),
			fmtShardCount(r.Shards, r.JoinPushdown))
	}
}

// fmtShards renders a cluster size, blank for single-engine runs.
func fmtShards(n int) string {
	if n <= 0 {
		return ""
	}
	return fmt.Sprintf("%d", n)
}

// fmtShardCount renders a cluster routing counter, blank for
// single-engine runs (where the value is meaningless rather than zero).
func fmtShardCount(shards, n int) string {
	if shards <= 0 {
		return ""
	}
	return fmt.Sprintf("%d", n)
}

// fmtIntCount renders a durability counter, blank when unknown (< 0,
// i.e. the engine has no WAL attached).
func fmtIntCount(n int) string {
	if n < 0 {
		return ""
	}
	return fmt.Sprintf("%d", n)
}

// fmtCount renders a per-iteration allocation count or byte volume,
// blank when unknown (< 0).
func fmtCount(c float64) string {
	if c < 0 {
		return ""
	}
	return fmt.Sprintf("%.0f", c)
}

// fmtRatio renders a cache hit ratio, blank when unknown (< 0).
func fmtRatio(r float64) string {
	if r < 0 {
		return ""
	}
	return fmt.Sprintf("%.3f", r)
}

func engineOrder(results []MicroResult) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Engine] {
			seen[r.Engine] = true
			out = append(out, r.Engine)
		}
	}
	return out
}

func engineOrderMacro(results []MacroResult) []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Engine] {
			seen[r.Engine] = true
			out = append(out, r.Engine)
		}
	}
	return out
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// fmtDuration renders a duration compactly (µs below 10 ms, ms below
// 10 s, seconds above).
func fmtDuration(d time.Duration) string {
	switch {
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < 10*time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
