// Package core implements the Jackpine benchmark framework — the paper's
// primary contribution. It defines the micro benchmark suites (DE-9IM
// topological queries and spatial-analysis queries), the six macro
// workload scenarios (map search and browsing, geocoding, reverse
// geocoding, flood risk analysis, land information management, toxic
// spill analysis), a workload runner with warmup, repetition,
// percentile statistics and multi-client throughput measurement, and
// plain-text/CSV reporters.
//
// The benchmark is portable: it talks to engines exclusively through
// driver.Connector, so anything with a driver — in-process or across
// the wire protocol — can be measured.
package core

import (
	"fmt"

	"jackpine/internal/geom"
	"jackpine/internal/tiger"
)

// QueryContext supplies the workload generators with the dataset under
// test and deterministic randomness. The same (dataset seed, query id,
// iteration) triple always yields the same probe geometry, so different
// engines are measured against identical query streams.
type QueryContext struct {
	Dataset *tiger.Dataset

	// FullWindows makes every sampled query window cover the entire
	// dataset extent, turning the windowed micro joins into the
	// full-table joins the original paper ran (response times grow from
	// milliseconds to seconds/minutes with scale; the default windowed
	// mode keeps runs interactive).
	FullWindows bool
}

// NewQueryContext wraps a generated dataset.
func NewQueryContext(ds *tiger.Dataset) *QueryContext {
	return &QueryContext{Dataset: ds}
}

// streamRNG derives a deterministic random stream for (label, iter).
func (c *QueryContext) streamRNG(label string, iter int) *rng {
	h := uint64(1469598103934665603)
	for i := 0; i < len(label); i++ {
		h = (h ^ uint64(label[i])) * 1099511628211
	}
	h ^= uint64(c.Dataset.Seed) * 0x9E3779B97F4A7C15
	h ^= uint64(iter+1) * 0xBF58476D1CE4E5B9
	return &rng{state: h}
}

// Window returns a deterministic query window covering roughly blocks ×
// blocks city blocks, fully inside the dataset extent.
func (c *QueryContext) Window(label string, iter int, blocks float64) geom.Rect {
	if c.FullWindows {
		return c.Dataset.Extent
	}
	r := c.streamRNG(label, iter)
	side := blocks * tiger.BlockSize
	ext := c.Dataset.Extent
	maxX := ext.MaxX - side
	maxY := ext.MaxY - side
	if maxX < ext.MinX {
		maxX = ext.MinX
	}
	if maxY < ext.MinY {
		maxY = ext.MinY
	}
	x := ext.MinX + r.float()*(maxX-ext.MinX)
	y := ext.MinY + r.float()*(maxY-ext.MinY)
	return geom.Rect{MinX: x, MinY: y, MaxX: x + side, MaxY: y + side}
}

// Point returns a deterministic point inside the extent.
func (c *QueryContext) Point(label string, iter int) geom.Coord {
	r := c.streamRNG(label, iter)
	ext := c.Dataset.Extent
	return geom.Coord{
		X: ext.MinX + r.float()*ext.Width(),
		Y: ext.MinY + r.float()*ext.Height(),
	}
}

// RandomEdge returns a deterministic road edge.
func (c *QueryContext) RandomEdge(label string, iter int) tiger.Edge {
	r := c.streamRNG(label, iter)
	return c.Dataset.Edges[r.intn(len(c.Dataset.Edges))]
}

// RandomParcelID returns a deterministic parcel id, or 0 when the
// dataset has no parcels.
func (c *QueryContext) RandomParcelID(label string, iter int) int64 {
	if len(c.Dataset.Parcels) == 0 {
		return 0
	}
	r := c.streamRNG(label, iter)
	return c.Dataset.Parcels[r.intn(len(c.Dataset.Parcels))].ID
}

// RandomWaterID returns a deterministic water-feature id (skipping the
// river, which is feature 1, so buffers stay small).
func (c *QueryContext) RandomWaterID(label string, iter int) int64 {
	n := len(c.Dataset.AreaWater)
	if n <= 1 {
		return 1
	}
	r := c.streamRNG(label, iter)
	return c.Dataset.AreaWater[1+r.intn(n-1)].ID
}

// RandomAddress returns a deterministic (street name, house number) pair
// drawn from the dataset's real address ranges.
func (c *QueryContext) RandomAddress(label string, iter int) (string, int64) {
	e := c.RandomEdge(label, iter)
	r := c.streamRNG(label+"/num", iter)
	span := e.ToAddr - e.FromAddr
	return e.Name, e.FromAddr + int64(r.intn(int(span+1)))
}

// WindowWKT renders a window as an ST_MakeEnvelope call.
func WindowWKT(w geom.Rect) string {
	return fmt.Sprintf("ST_MakeEnvelope(%g, %g, %g, %g)", w.MinX, w.MinY, w.MaxX, w.MaxY)
}

// PointWKT renders a coordinate as an ST_MakePoint call.
func PointWKT(p geom.Coord) string {
	return fmt.Sprintf("ST_MakePoint(%g, %g)", p.X, p.Y)
}

// GeomWKT renders a geometry as an ST_GeomFromText call.
func GeomWKT(g geom.Geometry) string {
	return "ST_GeomFromText('" + geom.WKT(g) + "')"
}

// rng mirrors the generator used by package tiger (splitmix64).
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
