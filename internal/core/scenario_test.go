package core

import (
	"fmt"
	"strings"
	"testing"

	"jackpine/internal/engine"
	"jackpine/internal/geom"
)

// TestGeocodeReverseConsistency geocodes addresses client-side and
// reverse-geocodes the resulting coordinates: the nearest edge to a
// point interpolated on a street is overwhelmingly that street.
func TestGeocodeReverseConsistency(t *testing.T) {
	connector, ctx := testTarget(t, engine.GaiaDB())
	conn, err := connector.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	agree := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		name, house := ctx.RandomAddress("consistency", i)
		rs, err := conn.Query(fmt.Sprintf(
			"SELECT fromaddr, toaddr, geo FROM edges WHERE name = '%s' AND fromaddr <= %d AND toaddr >= %d",
			name, house, house))
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) == 0 {
			t.Fatalf("no edge for %q #%d", name, house)
		}
		row := rs.Rows[0]
		line := row[2].Geom.(geom.LineString)
		frac := float64(house-row[0].Int) / float64(row[1].Int-row[0].Int)
		pt := geom.Coord{
			X: line[0].X + frac*(line[len(line)-1].X-line[0].X),
			Y: line[0].Y + frac*(line[len(line)-1].Y-line[0].Y),
		}
		rs, err = conn.Query(fmt.Sprintf(
			"SELECT name FROM edges ORDER BY ST_Distance(geo, ST_MakePoint(%g, %g)) LIMIT 1",
			pt.X, pt.Y))
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) == 1 && rs.Rows[0][0].Text == name {
			agree++
		}
	}
	// Near intersections the nearest edge can be the crossing street;
	// demand a strong majority, not unanimity.
	if agree < trials*3/4 {
		t.Errorf("only %d/%d round trips agree", agree, trials)
	}
}

// TestFloodRiskParcelsWithinBuffer verifies MS4's semantic core: every
// parcel the scenario's join reports genuinely intersects the buffered
// water body.
func TestFloodRiskParcelsWithinBuffer(t *testing.T) {
	connector, ctx := testTarget(t, engine.GaiaDB())
	conn, err := connector.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	wid := ctx.RandomWaterID("MS4-check", 1)
	rs, err := conn.Query(fmt.Sprintf(
		"SELECT p.geo, w.geo FROM areawater w JOIN parcels p ON ST_Intersects(p.geo, ST_Buffer(w.geo, 40)) WHERE w.id = %d",
		wid))
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rs.Rows {
		parcel, water := row[0].Geom, row[1].Geom
		if d := geom.Distance(parcel, water); d > 40+1e-6 {
			t.Errorf("row %d: parcel at distance %v from water, beyond the 40-unit flood buffer", i, d)
		}
	}
	// Complement check: no parcel at distance <= 39 is missing.
	rs2, err := conn.Query(fmt.Sprintf(
		"SELECT COUNT(*) FROM areawater w JOIN parcels p ON ST_DWithin(p.geo, w.geo, 39) WHERE w.id = %d", wid))
	if err != nil {
		t.Fatal(err)
	}
	if int(rs2.Rows[0][0].Int) > len(rs.Rows) {
		t.Errorf("buffer join found %d parcels but %d are within 39 units",
			len(rs.Rows), rs2.Rows[0][0].Int)
	}
}

// TestToxicSpillFindsNearestHospitals checks MS6's kNN leg against a
// brute-force oracle over the dataset.
func TestToxicSpillFindsNearestHospitals(t *testing.T) {
	connector, ctx := testTarget(t, engine.GaiaDB())
	conn, err := connector.Connect()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	e := ctx.RandomEdge("MS6-check", 2)
	mid := geom.Coord{
		X: (e.Geom[0].X + e.Geom[len(e.Geom)-1].X) / 2,
		Y: (e.Geom[0].Y + e.Geom[len(e.Geom)-1].Y) / 2,
	}
	rs, err := conn.Query(fmt.Sprintf(
		"SELECT name, ST_Distance(geo, ST_MakePoint(%g, %g)) FROM pointlm WHERE category = 'hospital' "+
			"ORDER BY ST_Distance(geo, ST_MakePoint(%g, %g)) LIMIT 3", mid.X, mid.Y, mid.X, mid.Y))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("kNN returned %d hospitals", len(rs.Rows))
	}
	// Oracle: scan the dataset.
	var best []float64
	for _, p := range ctx.Dataset.PointLandmarks {
		if p.Category != "hospital" {
			continue
		}
		best = append(best, geom.Dist(p.Geom.Coord, mid))
	}
	sortFloats(best)
	for i, row := range rs.Rows {
		if got := row[1].Float; got > best[i]+1e-9 {
			t.Errorf("rank %d: engine distance %v > oracle %v", i, got, best[i])
		}
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestFullWindowsMode checks the paper-faithful full-join mode: windows
// cover the entire extent and the join results grow accordingly.
func TestFullWindowsMode(t *testing.T) {
	connector, ctx := testTarget(t, engine.GaiaDB())
	full := *ctx
	full.FullWindows = true
	if full.Window("x", 0, 4) != ctx.Dataset.Extent {
		t.Fatal("full-windows mode must return the extent")
	}
	conn, _ := connector.Connect()
	defer conn.Close()
	q := TopologicalSuite()[2] // MT3
	windowed, err := conn.Query(q.SQL(ctx, 0))
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := conn.Query(q.SQL(&full, 0))
	if err != nil {
		t.Fatal(err)
	}
	if fullRes.Rows[0][0].Int < windowed.Rows[0][0].Int {
		t.Errorf("full join count %v < windowed %v", fullRes.Rows[0][0], windowed.Rows[0][0])
	}
	if fullRes.Rows[0][0].Int == 0 {
		t.Error("full join found nothing")
	}
}

// TestQueryCatalogRendersEverything covers the query-definition table.
func TestQueryCatalogRendersEverything(t *testing.T) {
	ctx := NewQueryContext(Generate(t))
	for _, q := range MicroSuite() {
		sqlText := q.SQL(ctx, 0)
		if !strings.Contains(sqlText, "SELECT") {
			t.Errorf("%s: query text %q has no SELECT", q.ID, sqlText)
		}
	}
}
