package core

import (
	"strings"
	"testing"

	"jackpine/internal/driver"
	"jackpine/internal/engine"
	"jackpine/internal/tiger"
)

// testTarget loads a small dataset into an engine and returns its
// connector and query context.
func testTarget(t *testing.T, profile engine.Profile) (driver.Connector, *QueryContext) {
	t.Helper()
	ds := Generate(t)
	eng := engine.Open(profile)
	if err := tiger.Load(execAdapter{eng}, ds, true); err != nil {
		t.Fatal(err)
	}
	return driver.NewInProc(eng), NewQueryContext(ds)
}

var sharedDataset *tiger.Dataset

// Generate caches one small dataset across tests in this package.
func Generate(t *testing.T) *tiger.Dataset {
	t.Helper()
	if sharedDataset == nil {
		sharedDataset = tiger.Generate(tiger.Small, 1)
	}
	return sharedDataset
}

type execAdapter struct{ e *engine.Engine }

func (a execAdapter) Exec(q string) error {
	_, err := a.e.Exec(q)
	return err
}

func TestQueryContextDeterminism(t *testing.T) {
	ds := Generate(t)
	ctx1 := NewQueryContext(ds)
	ctx2 := NewQueryContext(ds)
	if ctx1.Window("MT1", 3, 4) != ctx2.Window("MT1", 3, 4) {
		t.Error("windows not deterministic")
	}
	if ctx1.Window("MT1", 3, 4) == ctx1.Window("MT1", 4, 4) {
		t.Error("windows identical across iterations")
	}
	if ctx1.Window("MT1", 3, 4) == ctx1.Window("MT2", 3, 4) {
		t.Error("windows identical across labels")
	}
	if ctx1.Point("p", 1) != ctx2.Point("p", 1) {
		t.Error("points not deterministic")
	}
	name1, h1 := ctx1.RandomAddress("a", 5)
	name2, h2 := ctx2.RandomAddress("a", 5)
	if name1 != name2 || h1 != h2 {
		t.Error("addresses not deterministic")
	}
	// Windows stay inside the extent.
	for i := 0; i < 50; i++ {
		w := ctx1.Window("chk", i, 4)
		if !ds.Extent.ContainsRect(w) {
			t.Fatalf("window %d outside extent: %+v", i, w)
		}
	}
}

func TestMicroSuiteCompleteness(t *testing.T) {
	topo := TopologicalSuite()
	analysis := AnalysisSuite()
	if len(topo) != 15 {
		t.Errorf("topological suite has %d queries, want 15", len(topo))
	}
	if len(analysis) != 12 {
		t.Errorf("analysis suite has %d queries, want 12", len(analysis))
	}
	seen := map[string]bool{}
	for _, q := range MicroSuite() {
		if seen[q.ID] {
			t.Errorf("duplicate query id %s", q.ID)
		}
		seen[q.ID] = true
		if q.Name == "" || q.Category == "" || q.SQL == nil {
			t.Errorf("query %s incomplete", q.ID)
		}
	}
}

func TestRunMicroOnGaiaDB(t *testing.T) {
	connector, ctx := testTarget(t, engine.GaiaDB())
	results, err := RunMicro(connector, MicroSuite(), ctx, Options{Warmup: 1, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 27 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.ID, r.Err)
		}
		if r.Unsupported {
			t.Errorf("%s unsupported on gaiadb", r.ID)
		}
		if r.Err == nil && !r.Unsupported && r.Mean <= 0 {
			t.Errorf("%s has zero mean duration", r.ID)
		}
	}
}

func TestRunMicroMarksUnsupported(t *testing.T) {
	connector, ctx := testTarget(t, engine.MySpatial())
	results, err := RunMicro(connector, MicroSuite(), ctx, Options{Warmup: 1, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	unsupported := map[string]bool{}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.ID, r.Err)
		}
		if r.Unsupported {
			unsupported[r.ID] = true
		}
	}
	// MT14 uses ST_Covers, MT15 uses ST_Relate, MA5 uses ST_ConvexHull,
	// MA6 uses ST_DWithin: all missing from the MySpatial profile.
	for _, id := range []string{"MT14", "MT15", "MA5", "MA6"} {
		if !unsupported[id] {
			t.Errorf("%s should be unsupported on myspatial", id)
		}
	}
	if unsupported["MT1"] || unsupported["MA1"] {
		t.Error("basic queries wrongly marked unsupported")
	}
}

func TestMBRCountsAreSupersets(t *testing.T) {
	exactConn, ctx := testTarget(t, engine.GaiaDB())
	mbrConn, _ := testTarget(t, engine.MySpatial())

	// MT3 counts intersecting polygon pairs: the MBR engine must report
	// at least as many as the exact engine on the same window.
	q := TopologicalSuite()[2]
	if q.ID != "MT3" {
		t.Fatal("suite order changed")
	}
	ce, _ := exactConn.Connect()
	cm, _ := mbrConn.Connect()
	defer ce.Close()
	defer cm.Close()
	for iter := 0; iter < 5; iter++ {
		sqlText := q.SQL(ctx, iter)
		re, err := ce.Query(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := cm.Query(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		exact := re.Rows[0][0].Int
		approx := rm.Rows[0][0].Int
		if approx < exact {
			t.Errorf("iter %d: MBR count %d < exact count %d", iter, approx, exact)
		}
	}
}

func TestRunMacroAllScenarios(t *testing.T) {
	connector, ctx := testTarget(t, engine.GaiaDB())
	for _, sc := range MacroSuite() {
		res := RunMacro(connector, sc, ctx, Options{Warmup: 1, Runs: 2})
		if res.Err != nil {
			t.Errorf("%s (%s): %v", sc.ID, sc.Name, res.Err)
			continue
		}
		if res.Unsupported {
			t.Errorf("%s unsupported on gaiadb", sc.ID)
			continue
		}
		if res.Ops != 2 || res.Throughput <= 0 {
			t.Errorf("%s: ops=%d throughput=%v", sc.ID, res.Ops, res.Throughput)
		}
	}
}

func TestRunMacroMultiClient(t *testing.T) {
	connector, ctx := testTarget(t, engine.GaiaDB())
	sc := MacroSuite()[1] // geocoding: cheap per op
	res := RunMacro(connector, sc, ctx, Options{Warmup: 0, Runs: 5, Clients: 4})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Ops != 20 {
		t.Errorf("ops = %d, want 20", res.Ops)
	}
	if res.Clients != 4 {
		t.Errorf("clients = %d", res.Clients)
	}
}

func TestRunMacroOnMySpatial(t *testing.T) {
	connector, ctx := testTarget(t, engine.MySpatial())
	results := RunMacroSuite(connector, ctx, Options{Warmup: 0, Runs: 1})
	if len(results) != 7 {
		t.Fatalf("scenario results = %d", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
		}
	}
}

func TestReportWriters(t *testing.T) {
	connector, ctx := testTarget(t, engine.GaiaDB())
	micro, err := RunMicro(connector, TopologicalSuite()[:3], ctx, Options{Warmup: 0, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteMicroTable(&sb, micro)
	out := sb.String()
	for _, want := range []string{"MT1", "MT2", "MT3", "gaiadb"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	WriteMicroCSV(&sb, micro)
	if lines := strings.Count(sb.String(), "\n"); lines != 4 {
		t.Errorf("CSV has %d lines, want 4 (header + 3)", lines)
	}

	macro := []MacroResult{
		{ID: "MS1", Name: "map search and browsing", Engine: "gaiadb", Ops: 10, Throughput: 5.5},
		{ID: "MS1", Name: "map search and browsing", Engine: "myspatial", Unsupported: true},
	}
	sb.Reset()
	WriteMacroTable(&sb, macro)
	if !strings.Contains(sb.String(), "unsupported") || !strings.Contains(sb.String(), "5.50") {
		t.Errorf("macro table:\n%s", sb.String())
	}
	sb.Reset()
	WriteMacroCSV(&sb, macro)
	if !strings.Contains(sb.String(), "MS1,map search and browsing,gaiadb") {
		t.Errorf("macro csv:\n%s", sb.String())
	}
}

func TestGeocodeAlwaysFindsAddress(t *testing.T) {
	// Every generated (name, house) pair must resolve to exactly one
	// edge — the generator's address ranges partition each street.
	connector, ctx := testTarget(t, engine.GaiaDB())
	conn, _ := connector.Connect()
	defer conn.Close()
	sc := MacroSuite()[1]
	for i := 0; i < 25; i++ {
		if _, err := sc.Run(ctx, conn, i); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}
