package core

import (
	"testing"
	"time"

	"jackpine/internal/driver"
)

type nopConn struct{}

func (nopConn) Exec(string) (int, error)                { return 0, nil }
func (nopConn) Query(string) (*driver.ResultSet, error) { return &driver.ResultSet{}, nil }
func (nopConn) Close() error                            { return nil }

type nopConnector struct{}

func (nopConnector) Name() string                  { return "nop" }
func (nopConnector) Connect() (driver.Conn, error) { return nopConn{}, nil }

// TestMacroMeanLatencyPrecision pins the mean-latency arithmetic:
// Elapsed*Clients/Ops, multiplying before dividing. The reverted order
// (Elapsed/Ops, then *Clients) truncates to the nanosecond per op and
// multiplies the truncation error by the client count.
func TestMacroMeanLatencyPrecision(t *testing.T) {
	const perOp = 200 * time.Microsecond
	sc := MacroScenario{
		ID:   "TLAT",
		Name: "latency precision probe",
		Run: func(ctx *QueryContext, conn driver.Conn, iter int) (int, error) {
			time.Sleep(perOp)
			return 1, nil
		},
	}
	// Clients and Runs are chosen so Ops (= 7*13 = 91) rarely divides the
	// measured Elapsed exactly, which is where the two formulas diverge.
	opts := Options{Warmup: 0, Runs: 13, Clients: 7}
	res := RunMacro(nopConnector{}, sc, nil, opts)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Ops != 7*13 {
		t.Fatalf("ops = %d, want %d", res.Ops, 7*13)
	}
	want := res.Elapsed * time.Duration(res.Clients) / time.Duration(res.Ops)
	if res.MeanLatency != want {
		t.Errorf("MeanLatency = %v, want Elapsed*Clients/Ops = %v (Elapsed %v)",
			res.MeanLatency, want, res.Elapsed)
	}
	// Each operation slept perOp, so per-client latency can't be below it.
	if res.MeanLatency < perOp {
		t.Errorf("MeanLatency = %v, below the per-op floor %v", res.MeanLatency, perOp)
	}
}
