package core

import (
	"fmt"

	"jackpine/internal/driver"
	"jackpine/internal/geom"
)

// MacroScenario is one application workload. An iteration corresponds to
// one end-user operation (one map pan, one geocode, one risk report …)
// and may issue several queries, some depending on earlier results —
// exactly how the original macro scenarios chained queries.
type MacroScenario struct {
	// ID is the experiment identifier (MS1…MS6).
	ID string
	// Name is the scenario's title from the paper's abstract.
	Name string
	// Run executes one operation on the connection, returning the total
	// number of rows retrieved.
	Run func(ctx *QueryContext, conn driver.Conn, iter int) (int, error)
}

// MacroSuite returns the seven macro workload scenarios.
func MacroSuite() []MacroScenario {
	return []MacroScenario{
		mapBrowsing(), geocoding(), reverseGeocoding(),
		floodRisk(), landInformation(), toxicSpill(),
		overlayAnalysis(),
	}
}

// queryRows runs a query and returns its row count.
func queryRows(conn driver.Conn, q string) (int, error) {
	rs, err := conn.Query(q)
	if err != nil {
		return 0, fmt.Errorf("%w (query: %s)", err, q)
	}
	return len(rs.Rows), nil
}

// mapBrowsing (MS1): an interactive map session — fetch all layers for a
// viewport at three zoom levels, then pan twice at street level.
func mapBrowsing() MacroScenario {
	layers := []string{"edges", "areawater", "arealm", "pointlm"}
	return MacroScenario{
		ID:   "MS1",
		Name: "map search and browsing",
		Run: func(ctx *QueryContext, conn driver.Conn, iter int) (int, error) {
			total := 0
			fetch := func(w geom.Rect) error {
				for _, layer := range layers {
					n, err := queryRows(conn, fmt.Sprintf(
						"SELECT id, ST_AsText(geo) FROM %s WHERE ST_Intersects(geo, %s)",
						layer, WindowWKT(w)))
					if err != nil {
						return err
					}
					total += n
				}
				return nil
			}
			// Zoom in: city, district, street level.
			base := ctx.Window("MS1", iter, 8)
			for _, blocks := range []float64{8, 4, 2} {
				w := geom.Rect{
					MinX: base.MinX, MinY: base.MinY,
					MaxX: base.MinX + blocks*100, MaxY: base.MinY + blocks*100,
				}
				if err := fetch(w); err != nil {
					return total, err
				}
			}
			// Pan twice at street level.
			w := geom.Rect{MinX: base.MinX, MinY: base.MinY, MaxX: base.MinX + 200, MaxY: base.MinY + 200}
			for pan := 0; pan < 2; pan++ {
				w = geom.Rect{MinX: w.MinX + 100, MinY: w.MinY, MaxX: w.MaxX + 100, MaxY: w.MaxY}
				if err := fetch(w); err != nil {
					return total, err
				}
			}
			return total, nil
		},
	}
}

// geocoding (MS2): street name + house number → coordinate, via the
// address-range lookup plus client-side interpolation along the edge.
func geocoding() MacroScenario {
	return MacroScenario{
		ID:   "MS2",
		Name: "geocoding",
		Run: func(ctx *QueryContext, conn driver.Conn, iter int) (int, error) {
			name, house := ctx.RandomAddress("MS2", iter)
			rs, err := conn.Query(fmt.Sprintf(
				"SELECT fromaddr, toaddr, geo FROM edges WHERE name = '%s' AND fromaddr <= %d AND toaddr >= %d",
				name, house, house))
			if err != nil {
				return 0, err
			}
			if len(rs.Rows) == 0 {
				return 0, fmt.Errorf("geocoding: no edge for %q #%d", name, house)
			}
			// Interpolate the coordinate along the returned segment.
			row := rs.Rows[0]
			from, to := row[0].Int, row[1].Int
			line, ok := row[2].Geom.(geom.LineString)
			if !ok || len(line) < 2 {
				return len(rs.Rows), fmt.Errorf("geocoding: edge has no linestring")
			}
			t := float64(house-from) / float64(to-from)
			_ = geom.Coord{
				X: line[0].X + t*(line[len(line)-1].X-line[0].X),
				Y: line[0].Y + t*(line[len(line)-1].Y-line[0].Y),
			}
			return len(rs.Rows), nil
		},
	}
}

// reverseGeocoding (MS3): coordinate → nearest road edge → interpolated
// house number.
func reverseGeocoding() MacroScenario {
	return MacroScenario{
		ID:   "MS3",
		Name: "reverse geocoding",
		Run: func(ctx *QueryContext, conn driver.Conn, iter int) (int, error) {
			p := ctx.Point("MS3", iter)
			rs, err := conn.Query(fmt.Sprintf(
				"SELECT name, fromaddr, toaddr, geo FROM edges ORDER BY ST_Distance(geo, %s) LIMIT 1",
				PointWKT(p)))
			if err != nil {
				return 0, err
			}
			if len(rs.Rows) == 0 {
				return 0, fmt.Errorf("reverse geocoding: no edges")
			}
			row := rs.Rows[0]
			line, ok := row[3].Geom.(geom.LineString)
			if !ok || len(line) < 2 {
				return 1, fmt.Errorf("reverse geocoding: edge has no linestring")
			}
			_, t := geom.ClosestPointOnSegment(p, line[0], line[len(line)-1])
			from, to := row[1].Int, row[2].Int
			house := from + int64(t*float64(to-from))
			_ = house
			return len(rs.Rows), nil
		},
	}
}

// floodRisk (MS4): buffer a water body and report the parcels at risk
// with their inundated area.
func floodRisk() MacroScenario {
	return MacroScenario{
		ID:   "MS4",
		Name: "flood risk analysis",
		Run: func(ctx *QueryContext, conn driver.Conn, iter int) (int, error) {
			wid := ctx.RandomWaterID("MS4", iter)
			n, err := queryRows(conn, fmt.Sprintf(
				"SELECT p.id, ST_Area(ST_Intersection(p.geo, ST_Buffer(w.geo, 40))) "+
					"FROM areawater w JOIN parcels p ON ST_Intersects(p.geo, ST_Buffer(w.geo, 40)) "+
					"WHERE w.id = %d", wid))
			if err != nil {
				return 0, err
			}
			// Summary statistic for the report.
			m, err := queryRows(conn, fmt.Sprintf(
				"SELECT COUNT(*), SUM(ST_Area(p.geo)) FROM areawater w "+
					"JOIN parcels p ON ST_Intersects(p.geo, ST_Buffer(w.geo, 40)) WHERE w.id = %d", wid))
			return n + m, err
		},
	}
}

// landInformation (MS5): parcel neighbourhood analysis and a land-use
// reclassification — lookup, adjacency via Touches, road-corridor
// aggregation, then an UPDATE.
func landInformation() MacroScenario {
	return MacroScenario{
		ID:   "MS5",
		Name: "land information management",
		Run: func(ctx *QueryContext, conn driver.Conn, iter int) (int, error) {
			pid := ctx.RandomParcelID("MS5", iter)
			total, err := queryRows(conn, fmt.Sprintf(
				"SELECT b.id, b.owner, b.landuse FROM parcels a JOIN parcels b ON ST_Touches(b.geo, a.geo) "+
					"WHERE a.id = %d", pid))
			if err != nil {
				return 0, err
			}
			// Parcels in a corridor along a sampled road segment.
			e := ctx.RandomEdge("MS5/road", iter)
			n, err := queryRows(conn, fmt.Sprintf(
				"SELECT COUNT(*), SUM(ST_Area(geo)) FROM parcels "+
					"WHERE ST_Intersects(geo, ST_Buffer(%s, 30))", GeomWKT(e.Geom)))
			if err != nil {
				return total, err
			}
			total += n
			// Reclassify the parcel (idempotent, so reruns are stable).
			if _, err := conn.Exec(fmt.Sprintf(
				"UPDATE parcels SET landuse = 'public' WHERE id = %d", pid)); err != nil {
				return total, err
			}
			return total, nil
		},
	}
}

// overlayAnalysis (MS7): a regional overlay and proximity report — an
// analyst's batch job over whole layers rather than one probe window.
// All three steps are spatial table-to-table joins with aggregate
// outputs: the land/water overlay, landmark clustering, and waterfront
// landmarks. This is the shape the partition-based spatial-merge join
// targets, and on a cluster each step is answerable shard-local.
func overlayAnalysis() MacroScenario {
	return MacroScenario{
		ID:   "MS7",
		Name: "overlay and proximity analysis",
		Run: func(ctx *QueryContext, conn driver.Conn, iter int) (int, error) {
			total := 0
			// Overlay: landmark areas crossing water bodies.
			n, err := queryRows(conn,
				"SELECT COUNT(*) FROM arealm a JOIN areawater w ON ST_Intersects(a.geo, w.geo)")
			if err != nil {
				return total, err
			}
			total += n
			// Clustering: landmark pairs closer than half a block.
			n, err = queryRows(conn,
				"SELECT COUNT(*) FROM pointlm a JOIN pointlm b ON ST_DWithin(a.geo, b.geo, 50.0) WHERE a.id < b.id")
			if err != nil {
				return total, err
			}
			total += n
			// Proximity: waterfront landmarks within a block of water.
			n, err = queryRows(conn,
				"SELECT COUNT(*), MAX(p.id) FROM pointlm p JOIN areawater w ON ST_DWithin(p.geo, w.geo, 100.0)")
			if err != nil {
				return total, err
			}
			return total + n, nil
		},
	}
}

// toxicSpill (MS6): a spill on a transport edge — affected water bodies,
// sensitive sites inside the plume, nearest hospitals for response.
func toxicSpill() MacroScenario {
	return MacroScenario{
		ID:   "MS6",
		Name: "toxic spill analysis",
		Run: func(ctx *QueryContext, conn driver.Conn, iter int) (int, error) {
			e := ctx.RandomEdge("MS6", iter)
			mid := geom.Coord{
				X: (e.Geom[0].X + e.Geom[len(e.Geom)-1].X) / 2,
				Y: (e.Geom[0].Y + e.Geom[len(e.Geom)-1].Y) / 2,
			}
			spill := PointWKT(mid)
			plume := fmt.Sprintf("ST_Buffer(%s, 150)", spill)
			total := 0
			n, err := queryRows(conn, fmt.Sprintf(
				"SELECT id, name FROM areawater WHERE ST_Intersects(geo, %s)", plume))
			if err != nil {
				return total, err
			}
			total += n
			n, err = queryRows(conn, fmt.Sprintf(
				"SELECT id, name, category FROM pointlm WHERE category = 'school' "+
					"AND ST_Intersects(geo, %s)", plume))
			if err != nil {
				return total, err
			}
			total += n
			n, err = queryRows(conn, fmt.Sprintf(
				"SELECT id, name FROM pointlm WHERE category = 'hospital' "+
					"ORDER BY ST_Distance(geo, %s) LIMIT 3", spill))
			if err != nil {
				return total, err
			}
			total += n
			return total, nil
		},
	}
}
