// Package overlay implements constructive planar geometry: polygon
// boolean operations (intersection, union, difference, symmetric
// difference), buffers, convex hulls, and the mixed-type ST_Intersection
// semantics built on them.
//
// Polygon boolean operations use an overlay-graph method: all edges of
// both operands are split at their pairwise intersections, each resulting
// sub-edge is classified against the other operand (inside / outside /
// on-boundary), the operation's selection rules pick the boundary
// sub-edges of the result, and the selected directed edges are stitched
// back into rings. Inputs must be valid polygons (see geom.Validate);
// outputs have counter-clockwise shells and clockwise holes.
package overlay

import (
	"math"

	"jackpine/internal/geom"
)

// Op identifies a boolean overlay operation.
type Op int

// The supported boolean operations.
const (
	OpIntersection Op = iota
	OpUnion
	OpDifference
)

// PolygonOp applies the boolean operation to two areal operands and
// returns the resulting region. Operands may be Polygon or MultiPolygon;
// the result is a MultiPolygon (possibly empty).
func PolygonOp(a, b geom.Geometry, op Op) geom.MultiPolygon {
	pa, pb := toMultiPolygon(a), toMultiPolygon(b)
	if len(pa) == 0 {
		if op == OpIntersection || op == OpDifference {
			return nil
		}
		return normalizeMulti(pb)
	}
	if len(pb) == 0 {
		if op == OpIntersection {
			return nil
		}
		return normalizeMulti(pa)
	}
	// Envelope screening.
	ea, eb := pa.Envelope(), pb.Envelope()
	if !ea.Intersects(eb) {
		switch op {
		case OpIntersection:
			return nil
		case OpDifference:
			return normalizeMulti(pa)
		default:
			out := normalizeMulti(pa)
			return append(out, normalizeMulti(pb)...)
		}
	}
	g := newOverlayGraph(normalizeMulti(pa), normalizeMulti(pb))
	return g.run(op)
}

// toMultiPolygon extracts the areal parts of g.
func toMultiPolygon(g geom.Geometry) geom.MultiPolygon {
	switch t := g.(type) {
	case geom.Polygon:
		if t.IsEmpty() {
			return nil
		}
		return geom.MultiPolygon{t}
	case geom.MultiPolygon:
		var out geom.MultiPolygon
		for _, p := range t {
			if !p.IsEmpty() {
				out = append(out, p)
			}
		}
		return out
	case geom.Collection:
		var out geom.MultiPolygon
		for _, sub := range t {
			out = append(out, toMultiPolygon(sub)...)
		}
		return out
	default:
		return nil
	}
}

// normalizeMulti deep-copies polygons with shells counter-clockwise and
// holes clockwise, dropping degenerate rings.
func normalizeMulti(mp geom.MultiPolygon) geom.MultiPolygon {
	out := make(geom.MultiPolygon, 0, len(mp))
	for _, p := range mp {
		np := make(geom.Polygon, 0, len(p))
		for i, r := range p {
			if len(r) < 4 || math.Abs(geom.RingSignedArea2(r)) == 0 {
				continue
			}
			nr := append(geom.Ring(nil), r...)
			ccw := geom.RingIsCCW(nr)
			if i == 0 && !ccw || i > 0 && ccw {
				geom.ReverseCoords(nr)
			}
			np = append(np, nr)
		}
		if len(np) > 0 {
			out = append(out, np)
		}
	}
	return out
}

// ovEdge is a directed sub-edge in the overlay graph.
type ovEdge struct {
	a, b  geom.Coord
	owner int // 0 = first operand, 1 = second
}

type overlayGraph struct {
	ops   [2]geom.MultiPolygon
	edges [2][]ovEdge // original directed edges per operand
}

func newOverlayGraph(a, b geom.MultiPolygon) *overlayGraph {
	g := &overlayGraph{ops: [2]geom.MultiPolygon{a, b}}
	for side, mp := range g.ops {
		for _, p := range mp {
			for _, r := range p {
				for i := 0; i < len(r)-1; i++ {
					if !r[i].Equal(r[i+1]) {
						g.edges[side] = append(g.edges[side], ovEdge{a: r[i], b: r[i+1], owner: side})
					}
				}
			}
		}
	}
	return g
}

// run executes the operation and assembles the resulting polygons.
func (g *overlayGraph) run(op Op) geom.MultiPolygon {
	subA, subB := splitBoth(g.edges[0], g.edges[1])

	// Index B sub-edges by canonical endpoints for coincidence lookup.
	type dirInfo struct{ same, opposite bool }
	coincident := make(map[[4]float64]*dirInfo, len(subB))
	for _, e := range subB {
		k, forward := canonKey(e.a, e.b)
		info := coincident[k]
		if info == nil {
			info = &dirInfo{}
			coincident[k] = info
		}
		if forward {
			info.same = true
		} else {
			info.opposite = true
		}
	}

	var selected []ovEdge
	// Classify and select A's sub-edges.
	for _, e := range subA {
		mid := geom.Coord{X: (e.a.X + e.b.X) / 2, Y: (e.a.Y + e.b.Y) / 2}
		k, forward := canonKey(e.a, e.b)
		if info, ok := coincident[k]; ok {
			sameDir := (forward && info.same) || (!forward && info.opposite)
			switch op {
			case OpUnion, OpIntersection:
				if sameDir {
					selected = append(selected, e)
				}
			case OpDifference:
				if !sameDir {
					selected = append(selected, e)
				}
			}
			continue
		}
		switch loc := locateMulti(mid, g.ops[1]); {
		case op == OpIntersection && loc == locInterior,
			op == OpUnion && loc == locExterior,
			op == OpDifference && loc == locExterior:
			selected = append(selected, e)
		case loc == locBoundary:
			// Midpoint grazes the other boundary without a coincident
			// sub-edge: a tangency at the sampling point. Resolve by
			// sampling off-centre.
			alt := geom.Coord{X: e.a.X + 0.25*(e.b.X-e.a.X), Y: e.a.Y + 0.25*(e.b.Y-e.a.Y)}
			loc = locateMulti(alt, g.ops[1])
			if (op == OpIntersection && loc == locInterior) ||
				(op != OpIntersection && loc == locExterior) {
				selected = append(selected, e)
			}
		}
	}
	// Classify and select B's sub-edges (coincident ones were decided via
	// A's copies above).
	for _, e := range subB {
		mid := geom.Coord{X: (e.a.X + e.b.X) / 2, Y: (e.a.Y + e.b.Y) / 2}
		loc := locateMulti(mid, g.ops[0])
		switch {
		case op == OpIntersection && loc == locInterior:
			selected = append(selected, e)
		case op == OpUnion && loc == locExterior:
			selected = append(selected, e)
		case op == OpDifference && loc == locInterior:
			selected = append(selected, ovEdge{a: e.b, b: e.a, owner: e.owner})
		}
	}

	rings := stitch(selected)
	return assemblePolygons(rings)
}

// canonKey builds an order-independent key for a segment and reports
// whether (a, b) is in canonical order.
func canonKey(a, b geom.Coord) ([4]float64, bool) {
	if a.X < b.X || (a.X == b.X && a.Y < b.Y) {
		return [4]float64{a.X, a.Y, b.X, b.Y}, true
	}
	return [4]float64{b.X, b.Y, a.X, a.Y}, false
}

// splitBoth splits the edges of both operands at their pairwise
// intersections. Each intersection point is computed exactly once and the
// same coordinate is registered on both sides, so the resulting sub-edge
// endpoints match bit-for-bit and stitch cleanly.
func splitBoth(aEdges, bEdges []ovEdge) (subA, subB []ovEdge) {
	cutsA := make([][]cutPoint, len(aEdges))
	cutsB := make([][]cutPoint, len(bEdges))
	envB := make([]geom.Rect, len(bEdges))
	for j, e := range bEdges {
		envB[j] = geom.RectFromPoints(e.a, e.b)
	}
	for i, ea := range aEdges {
		envA := geom.RectFromPoints(ea.a, ea.b)
		for j, eb := range bEdges {
			if !envA.Intersects(envB[j]) {
				continue
			}
			kind, p0, p1 := geom.SegSegIntersection(ea.a, ea.b, eb.a, eb.b)
			if kind == geom.SegDisjoint {
				continue
			}
			p0 = snapToEndpoints(p0, ea, eb)
			cutsA[i] = append(cutsA[i], cutPoint{edgeParam(ea, p0), p0})
			cutsB[j] = append(cutsB[j], cutPoint{edgeParam(eb, p0), p0})
			if kind == geom.SegOverlap {
				p1 = snapToEndpoints(p1, ea, eb)
				cutsA[i] = append(cutsA[i], cutPoint{edgeParam(ea, p1), p1})
				cutsB[j] = append(cutsB[j], cutPoint{edgeParam(eb, p1), p1})
			}
		}
	}
	return applyCuts(aEdges, cutsA), applyCuts(bEdges, cutsB)
}

// snapToEndpoints moves an intersection point onto a nearby edge endpoint
// so both sides of the overlay register bit-identical split coordinates.
// The snap tolerance is relative to each edge's length, matching the
// parameter epsilon used by applyCuts.
func snapToEndpoints(p geom.Coord, ea, eb ovEdge) geom.Coord {
	for _, e := range [...]ovEdge{ea, eb} {
		tol := 1e-9 * (absf(e.b.X-e.a.X) + absf(e.b.Y-e.a.Y))
		if absf(p.X-e.a.X)+absf(p.Y-e.a.Y) <= tol {
			return e.a
		}
		if absf(p.X-e.b.X)+absf(p.Y-e.b.Y) <= tol {
			return e.b
		}
	}
	return p
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// applyCuts subdivides each edge at its recorded cut parameters.
func applyCuts(edges []ovEdge, cuts [][]cutPoint) []ovEdge {
	var out []ovEdge
	for i, e := range edges {
		cs := cuts[i]
		if len(cs) == 0 {
			out = append(out, e)
			continue
		}
		sortCutPoints(cs)
		prev := e.a
		prevT := 0.0
		for _, c := range cs {
			if c.t <= prevT+1e-9 || c.t >= 1-1e-9 || c.p.Equal(prev) {
				continue
			}
			out = append(out, ovEdge{a: prev, b: c.p, owner: e.owner})
			prev = c.p
			prevT = c.t
		}
		if !prev.Equal(e.b) {
			out = append(out, ovEdge{a: prev, b: e.b, owner: e.owner})
		}
	}
	return out
}

// splitEdges splits each edge of src at every intersection with edges of
// other, preserving direction. Used where only one side needs splitting
// (line clipping); polygon overlay uses splitBoth for exact endpoint
// agreement between the two sides.
func splitEdges(src, other []ovEdge) []ovEdge {
	// Pre-compute envelopes of the other side once.
	otherEnv := make([]geom.Rect, len(other))
	for i, e := range other {
		otherEnv[i] = geom.RectFromPoints(e.a, e.b)
	}
	var out []ovEdge
	cuts := make([]cutPoint, 0, 8)
	for _, e := range src {
		env := geom.RectFromPoints(e.a, e.b)
		cuts = cuts[:0]
		for j, o := range other {
			if !env.Intersects(otherEnv[j]) {
				continue
			}
			kind, p0, p1 := geom.SegSegIntersection(e.a, e.b, o.a, o.b)
			switch kind {
			case geom.SegPoint:
				cuts = append(cuts, cutPoint{edgeParam(e, p0), p0})
			case geom.SegOverlap:
				cuts = append(cuts, cutPoint{edgeParam(e, p0), p0}, cutPoint{edgeParam(e, p1), p1})
			}
		}
		if len(cuts) == 0 {
			out = append(out, e)
			continue
		}
		sortCutPoints(cuts)
		prev := e.a
		prevT := 0.0
		for _, c := range cuts {
			if c.t <= prevT+1e-12 || c.t >= 1-1e-12 || c.p.Equal(prev) {
				continue
			}
			out = append(out, ovEdge{a: prev, b: c.p, owner: e.owner})
			prev = c.p
			prevT = c.t
		}
		if !prev.Equal(e.b) {
			out = append(out, ovEdge{a: prev, b: e.b, owner: e.owner})
		}
	}
	return out
}

type cutPoint struct {
	t float64
	p geom.Coord
}

func sortCutPoints(cs []cutPoint) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].t < cs[j-1].t; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

func edgeParam(e ovEdge, p geom.Coord) float64 {
	dx, dy := e.b.X-e.a.X, e.b.Y-e.a.Y
	if math.Abs(dx) >= math.Abs(dy) {
		if dx == 0 {
			return 0
		}
		return (p.X - e.a.X) / dx
	}
	return (p.Y - e.a.Y) / dy
}

// Point-in-region classification for overlay selection.
type ovLoc int

const (
	locExterior ovLoc = iota
	locBoundary
	locInterior
)

func locateMulti(p geom.Coord, mp geom.MultiPolygon) ovLoc {
	loc := locExterior
	for _, poly := range mp {
		switch locatePolygonOv(p, poly) {
		case locInterior:
			return locInterior
		case locBoundary:
			loc = locBoundary
		}
	}
	return loc
}

func locatePolygonOv(p geom.Coord, poly geom.Polygon) ovLoc {
	if len(poly) == 0 {
		return locExterior
	}
	switch geom.PointInRing(p, poly[0]) {
	case geom.RingExterior:
		return locExterior
	case geom.RingBoundary:
		return locBoundary
	}
	for _, hole := range poly[1:] {
		switch geom.PointInRing(p, hole) {
		case geom.RingInterior:
			return locExterior
		case geom.RingBoundary:
			return locBoundary
		}
	}
	return locInterior
}

// stitch links the selected directed edges into closed rings. At
// junctions with several outgoing edges the walk picks the edge making
// the sharpest counter-clockwise turn, which keeps result interiors on
// the left and rings simple.
func stitch(edges []ovEdge) []geom.Ring {
	outgoing := make(map[geom.Coord][]int, len(edges))
	for i, e := range edges {
		outgoing[e.a] = append(outgoing[e.a], i)
	}
	used := make([]bool, len(edges))
	var rings []geom.Ring

	for start := range edges {
		if used[start] {
			continue
		}
		ring := geom.Ring{edges[start].a}
		cur := start
		for steps := 0; steps <= len(edges); steps++ {
			used[cur] = true
			ring = append(ring, edges[cur].b)
			if edges[cur].b.Equal(ring[0]) {
				break
			}
			next := pickNext(edges, outgoing[edges[cur].b], edges[cur], used)
			if next < 0 {
				ring = nil // dangling chain: drop it
				break
			}
			cur = next
		}
		if len(ring) >= 4 && ring[0].Equal(ring[len(ring)-1]) {
			ring = dedupeRing(ring)
			if len(ring) >= 4 && math.Abs(geom.RingSignedArea2(ring)) > 1e-18 {
				rings = append(rings, ring)
			}
		}
	}
	return rings
}

// pickNext chooses the unused outgoing edge with the smallest clockwise
// rotation from the incoming direction (equivalently, the sharpest left
// turn), excluding an immediate reversal unless it is the only option.
func pickNext(edges []ovEdge, candidates []int, in ovEdge, used []bool) int {
	inAng := math.Atan2(in.b.Y-in.a.Y, in.b.X-in.a.X)
	best := -1
	bestTurn := math.Inf(1)
	reversal := -1
	for _, c := range candidates {
		if used[c] {
			continue
		}
		e := edges[c]
		outAng := math.Atan2(e.b.Y-e.a.Y, e.b.X-e.a.X)
		// Turn angle in (0, 2π]: rotation from the incoming direction to
		// the outgoing direction measured clockwise; the smallest value
		// is the sharpest left (counter-clockwise) turn.
		turn := math.Mod(inAng+math.Pi-outAng+4*math.Pi, 2*math.Pi)
		if turn < 1e-12 {
			reversal = c // exact U-turn: only as a last resort
			continue
		}
		if turn < bestTurn {
			bestTurn = turn
			best = c
		}
	}
	if best < 0 {
		return reversal
	}
	return best
}

func dedupeRing(r geom.Ring) geom.Ring {
	out := r[:1]
	for _, c := range r[1:] {
		if !c.Equal(out[len(out)-1]) {
			out = append(out, c)
		}
	}
	if len(out) >= 2 && !out[0].Equal(out[len(out)-1]) {
		out = append(out, out[0])
	}
	return out
}

// assemblePolygons groups stitched rings into polygons: counter-clockwise
// rings are shells, clockwise rings are holes assigned to the smallest
// enclosing shell.
func assemblePolygons(rings []geom.Ring) geom.MultiPolygon {
	type shellInfo struct {
		ring geom.Ring
		area float64
	}
	var shells []shellInfo
	var holes []geom.Ring
	for _, r := range rings {
		if geom.RingIsCCW(r) {
			shells = append(shells, shellInfo{r, math.Abs(geom.RingSignedArea2(r)) / 2})
		} else {
			holes = append(holes, r)
		}
	}
	if len(shells) == 0 {
		return nil
	}
	polys := make(geom.MultiPolygon, len(shells))
	for i, s := range shells {
		polys[i] = geom.Polygon{s.ring}
	}
	for _, h := range holes {
		bestIdx := -1
		bestArea := math.Inf(1)
		for i, s := range shells {
			if s.area < bestArea && ringContainsRing(s.ring, h) {
				bestArea = s.area
				bestIdx = i
			}
		}
		if bestIdx >= 0 {
			polys[bestIdx] = append(polys[bestIdx], h)
		}
	}
	return polys
}

// ringContainsRing reports whether inner lies inside outer, using
// majority sampling over inner's vertices and edge midpoints to tolerate
// boundary contact.
func ringContainsRing(outer, inner geom.Ring) bool {
	in, out := 0, 0
	consider := func(p geom.Coord) {
		switch geom.PointInRing(p, outer) {
		case geom.RingInterior:
			in++
		case geom.RingExterior:
			out++
		}
	}
	for i := 0; i < len(inner)-1; i++ {
		consider(inner[i])
		consider(geom.Coord{X: (inner[i].X + inner[i+1].X) / 2, Y: (inner[i].Y + inner[i+1].Y) / 2})
		if in+out >= 8 {
			break
		}
	}
	return in > out
}
