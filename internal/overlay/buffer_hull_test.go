package overlay

import (
	"math"
	"testing"

	"jackpine/internal/geom"
	"jackpine/internal/topo"
)

func TestBufferPoint(t *testing.T) {
	b := Buffer(geom.Pt(0, 0), 2, 8)
	if err := geom.Validate(b); err != nil {
		t.Fatalf("invalid buffer: %v", err)
	}
	got := geom.Area(b)
	want := math.Pi * 4
	// An inscribed 32-gon underestimates the circle slightly.
	if got > want || got < want*0.98 {
		t.Errorf("point buffer area = %v, want slightly under %v", got, want)
	}
	env := b.Envelope()
	if math.Abs(env.Width()-4) > 1e-9 || math.Abs(env.Height()-4) > 1e-9 {
		t.Errorf("point buffer envelope = %+v", env)
	}
}

func TestBufferLine(t *testing.T) {
	line := geom.LineString{{X: 0, Y: 0}, {X: 10, Y: 0}}
	b := Buffer(line, 1, 8)
	got := geom.Area(b)
	want := 20 + math.Pi // rectangle 10x2 plus two semicircle caps
	if math.Abs(got-want) > 0.1 {
		t.Errorf("line buffer area = %v, want ~%v", got, want)
	}
	// Every vertex of the source must be inside the buffer.
	for _, c := range line {
		if !topo.Intersects(geom.Point{Coord: c}, b) {
			t.Errorf("source vertex %v not covered by buffer", c)
		}
	}
}

func TestBufferPolyline(t *testing.T) {
	line := geom.LineString{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}}
	b := Buffer(line, 0.5, 8)
	if err := geom.Validate(b); err != nil {
		t.Fatalf("invalid polyline buffer: %v", err)
	}
	got := geom.Area(b)
	// Two 4x1 rectangles overlapping in a rounded corner region plus caps:
	// bounded between the hull pieces.
	if got < 7.5 || got > 9.5 {
		t.Errorf("polyline buffer area = %v, expected around 8.5", got)
	}
	if mid := geom.Pt(4, 0); !topo.Intersects(mid, b) {
		t.Error("corner vertex not covered")
	}
	if far := geom.Pt(6, 0); topo.Intersects(far, b) {
		t.Error("point beyond buffer distance covered")
	}
}

func TestBufferPolygon(t *testing.T) {
	p := sq(0, 0, 4)
	b := Buffer(p, 1, 8)
	got := geom.Area(b)
	// Square grown by 1: 16 + 4 sides x 4x1 + ~π corner area.
	want := 16 + 16 + math.Pi
	if math.Abs(got-want) > 0.2 {
		t.Errorf("polygon buffer area = %v, want ~%v", got, want)
	}
	// The original polygon is covered by its buffer.
	if !topo.Covers(b, p) {
		t.Error("buffer does not cover its source polygon")
	}
}

func TestBufferZeroAndNegative(t *testing.T) {
	if b := Buffer(geom.Pt(0, 0), 0, 8); !b.IsEmpty() {
		t.Error("zero-distance buffer of a point should be empty")
	}
	p := sq(0, 0, 2)
	if b := Buffer(p, 0, 8); math.Abs(geom.Area(b)-4) > 1e-9 {
		t.Error("zero-distance buffer of a polygon should be the polygon")
	}
	if b := Buffer(p, -1, 8); !b.IsEmpty() {
		t.Error("negative buffers are unsupported and should be empty")
	}
	if b := Buffer(geom.Polygon{}, 1, 8); !b.IsEmpty() {
		t.Error("buffer of empty should be empty")
	}
	if b := Buffer(nil, 1, 8); !b.IsEmpty() {
		t.Error("buffer of nil should be empty")
	}
}

func TestBufferDefaultQuadSegs(t *testing.T) {
	b := Buffer(geom.Pt(0, 0), 1, 0) // 0 → DefaultQuadSegs
	poly, ok := b.(geom.Polygon)
	if !ok {
		t.Fatalf("expected Polygon, got %T", b)
	}
	if len(poly[0]) != 4*DefaultQuadSegs+1 {
		t.Errorf("ring has %d coords, want %d", len(poly[0]), 4*DefaultQuadSegs+1)
	}
}

func TestConvexHullCases(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "GEOMETRYCOLLECTION EMPTY", "GEOMETRYCOLLECTION EMPTY"},
		{"single point", "POINT (1 2)", "POINT (1 2)"},
		{"two points", "MULTIPOINT ((0 0), (1 1))", "LINESTRING (0 0, 1 1)"},
		{"collinear", "MULTIPOINT ((0 0), (1 1), (2 2), (3 3))", "LINESTRING (0 0, 3 3)"},
		{"square corners", "MULTIPOINT ((0 0), (4 0), (4 4), (0 4), (2 2))",
			"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := ConvexHull(g(tc.in))
			if geom.WKT(got) != tc.want {
				t.Errorf("ConvexHull = %s, want %s", geom.WKT(got), tc.want)
			}
		})
	}
}

func TestConvexHullOfConcavePolygon(t *testing.T) {
	concave := g("POLYGON ((0 0, 6 0, 6 2, 2 2, 2 4, 6 4, 6 6, 0 6, 0 0))")
	hull := ConvexHull(concave)
	if got := geom.Area(hull); math.Abs(got-36) > 1e-9 {
		t.Errorf("hull area = %v, want 36", got)
	}
	// Hull must cover the source.
	if !topo.Covers(hull, concave) {
		t.Error("hull does not cover its source")
	}
	// Hull must be convex: every vertex turn counter-clockwise.
	ring := hull.(geom.Polygon)[0]
	for i := 0; i+2 < len(ring); i++ {
		if geom.Orient(ring[i], ring[i+1], ring[i+2]) == geom.Clockwise {
			t.Fatalf("hull has a clockwise turn at %d", i)
		}
	}
}

func TestConvexHullDuplicatePoints(t *testing.T) {
	hull := ConvexHull(g("MULTIPOINT ((1 1), (1 1), (1 1))"))
	if geom.WKT(hull) != "POINT (1 1)" {
		t.Errorf("hull of identical points = %s", geom.WKT(hull))
	}
}
