package overlay

import (
	"sort"

	"jackpine/internal/geom"
)

// ConvexHull returns the convex hull of the geometry's coordinates using
// Andrew's monotone chain. The result is a Polygon for three or more
// non-collinear points, a LineString for collinear inputs with at least
// two distinct points, a Point for a single distinct coordinate, and an
// empty Collection for empty input.
func ConvexHull(g geom.Geometry) geom.Geometry {
	coords := collectCoords(g)
	if len(coords) == 0 {
		return geom.Collection{}
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].X != coords[j].X {
			return coords[i].X < coords[j].X
		}
		return coords[i].Y < coords[j].Y
	})
	// Deduplicate.
	uniq := coords[:1]
	for _, c := range coords[1:] {
		if !c.Equal(uniq[len(uniq)-1]) {
			uniq = append(uniq, c)
		}
	}
	coords = uniq

	switch len(coords) {
	case 1:
		return geom.Point{Coord: coords[0]}
	case 2:
		return geom.LineString{coords[0], coords[1]}
	}

	hull := monotoneChain(coords)
	if len(hull) == 2 {
		return geom.LineString{hull[0], hull[1]}
	}
	ring := make(geom.Ring, 0, len(hull)+1)
	ring = append(ring, hull...)
	ring = append(ring, hull[0])
	return geom.Polygon{ring}
}

// monotoneChain computes the hull vertices in counter-clockwise order.
// Collinear inputs collapse to the two extreme points.
func monotoneChain(pts []geom.Coord) []geom.Coord {
	n := len(pts)
	hull := make([]geom.Coord, 0, 2*n)
	// Lower hull.
	for _, p := range pts {
		for len(hull) >= 2 && geom.Orient(hull[len(hull)-2], hull[len(hull)-1], p) != geom.CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := pts[i]
		for len(hull) >= lower && geom.Orient(hull[len(hull)-2], hull[len(hull)-1], p) != geom.CounterClockwise {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1] // last point repeats the first
}

func collectCoords(g geom.Geometry) []geom.Coord {
	var out []geom.Coord
	var walk func(geom.Geometry)
	walk = func(g geom.Geometry) {
		switch t := g.(type) {
		case geom.Point:
			if !t.Empty {
				out = append(out, t.Coord)
			}
		case geom.MultiPoint:
			for _, p := range t {
				walk(p)
			}
		case geom.LineString:
			out = append(out, t...)
		case geom.MultiLineString:
			for _, l := range t {
				out = append(out, l...)
			}
		case geom.Polygon:
			for _, r := range t {
				out = append(out, r...)
			}
		case geom.MultiPolygon:
			for _, p := range t {
				walk(p)
			}
		case geom.Collection:
			for _, sub := range t {
				walk(sub)
			}
		}
	}
	if g != nil {
		walk(g)
	}
	return out
}
