package overlay

import (
	"math"
	"testing"

	"jackpine/internal/geom"
	"jackpine/internal/tiger"
	"jackpine/internal/topo"
)

// TestBufferAllWaterFeatures buffers every generated water body — the
// flood-risk scenario's core operation — and checks structural validity
// and containment invariants on each result.
func TestBufferAllWaterFeatures(t *testing.T) {
	ds := tiger.Generate(tiger.Small, 3)
	for _, w := range ds.AreaWater {
		b := Buffer(w.Geom, 25, 4)
		if b.IsEmpty() {
			t.Fatalf("water %d (%s): empty buffer", w.ID, w.Name)
		}
		if err := geom.Validate(b); err != nil {
			t.Fatalf("water %d: invalid buffer: %v", w.ID, err)
		}
		if got, src := geom.Area(b), geom.Area(w.Geom); got <= src {
			t.Errorf("water %d: buffer area %v <= source %v", w.ID, got, src)
		}
		if !topo.Covers(b, w.Geom) {
			t.Errorf("water %d: buffer does not cover source", w.ID)
		}
		// The buffer stays within the analytic envelope bound.
		want := w.Geom.Envelope().Expand(25 + 1e-6)
		if !want.ContainsRect(b.Envelope()) {
			t.Errorf("water %d: buffer escapes envelope bound", w.ID)
		}
	}
}

// TestUnionAllLandmarkClusters unions overlapping landmark blobs and
// checks area bounds: the union is no larger than the sum and at least
// as large as the largest member.
func TestUnionAllLandmarkClusters(t *testing.T) {
	ds := tiger.Generate(tiger.Small, 5)
	var gs []geom.Geometry
	var sum, maxArea float64
	for _, a := range ds.AreaLandmarks[:60] {
		gs = append(gs, a.Geom)
		ar := geom.Area(a.Geom)
		sum += ar
		if ar > maxArea {
			maxArea = ar
		}
	}
	u := UnionAll(gs)
	got := geom.Area(u)
	if got > sum+1e-6 {
		t.Errorf("union area %v exceeds member sum %v", got, sum)
	}
	if got < maxArea-1e-6 {
		t.Errorf("union area %v below largest member %v", got, maxArea)
	}
	if err := geom.Validate(u); err != nil {
		t.Errorf("union invalid: %v", err)
	}
	// Every member is covered by the union, verified by area (a DE-9IM
	// CoveredBy test would be noisy here: overlay output boundaries
	// coincide with member boundaries only to within floating-point
	// rounding, which exact relate classification cannot absorb).
	for i, g := range gs[:20] {
		if leak := geom.Area(Difference(g, u)); leak > 1e-6 {
			t.Errorf("member %d leaks %v area outside the union", i, leak)
		}
	}
}

// TestIntersectionConsistencyWithPredicates cross-checks the overlay
// engine against the DE-9IM engine: ST_Intersection is non-empty exactly
// when ST_Intersects holds (for areal pairs with 2D intersections).
func TestIntersectionConsistencyWithPredicates(t *testing.T) {
	ds := tiger.Generate(tiger.Small, 7)
	lms := ds.AreaLandmarks
	checked, nonEmpty := 0, 0
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			a, b := lms[i].Geom, lms[j].Geom
			if !a.Envelope().Intersects(b.Envelope()) {
				continue
			}
			checked++
			inter := PolygonOp(a, b, OpIntersection)
			interArea := geom.Area(inter)
			overlaps := topo.Overlaps(a, b) || topo.Contains(a, b) || topo.Within(a, b) || topo.Equals(a, b)
			if overlaps && interArea <= 0 {
				t.Errorf("pair (%d,%d): predicates say 2D overlap but intersection empty", i, j)
			}
			if !topo.Intersects(a, b) && interArea > 1e-9 {
				t.Errorf("pair (%d,%d): disjoint but intersection area %v", i, j, interArea)
			}
			if interArea > 0 {
				nonEmpty++
				// Inclusion-exclusion sanity.
				u := PolygonOp(a, b, OpUnion)
				lhs := geom.Area(a) + geom.Area(b)
				rhs := geom.Area(u) + interArea
				if math.Abs(lhs-rhs) > 1e-6*lhs {
					t.Errorf("pair (%d,%d): inclusion-exclusion broken: %v vs %v", i, j, lhs, rhs)
				}
			}
		}
	}
	if checked < 10 || nonEmpty < 3 {
		t.Fatalf("stress test too weak: checked=%d nonEmpty=%d", checked, nonEmpty)
	}
}

// TestClipAllEdgesAgainstRiver clips every road edge against the river
// polygon: inside plus outside lengths must reassemble the original.
func TestClipAllEdgesAgainstRiver(t *testing.T) {
	ds := tiger.Generate(tiger.Small, 9)
	river := ds.AreaWater[0].Geom
	env := river.Envelope()
	tested := 0
	for _, e := range ds.Edges {
		if !e.Geom.Envelope().Intersects(env) {
			continue
		}
		tested++
		in := ClipLines(e.Geom, river, true)
		out := ClipLines(e.Geom, river, false)
		total := geom.Length(in) + geom.Length(out)
		want := geom.Length(e.Geom)
		if math.Abs(total-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("edge %d: clip pieces %v != original %v", e.ID, total, want)
		}
	}
	if tested < 20 {
		t.Fatalf("only %d edges near the river", tested)
	}
}
