package overlay

import (
	"math"

	"jackpine/internal/geom"
)

// DefaultQuadSegs is the default number of segments used to approximate
// a quarter circle in buffer output, matching the PostGIS default.
const DefaultQuadSegs = 8

// Buffer returns the region within distance d of the geometry, as a
// polygonal approximation with quadSegs segments per quarter circle
// (DefaultQuadSegs if quadSegs <= 0). Negative distances are not
// supported and return an empty geometry, as do empty inputs and d == 0
// on points/lines.
func Buffer(g geom.Geometry, d float64, quadSegs int) geom.Geometry {
	if quadSegs <= 0 {
		quadSegs = DefaultQuadSegs
	}
	if g == nil || g.IsEmpty() || d < 0 || math.IsNaN(d) {
		return geom.Collection{}
	}
	if d == 0 {
		if g.Dimension() == 2 {
			return g.Clone()
		}
		return geom.Collection{}
	}
	var pieces []geom.Geometry
	addCapsules := func(cs []geom.Coord) {
		for i := 0; i < len(cs)-1; i++ {
			pieces = append(pieces, capsule(cs[i], cs[i+1], d, quadSegs))
		}
	}
	var walk func(geom.Geometry)
	walk = func(g geom.Geometry) {
		switch t := g.(type) {
		case geom.Point:
			if !t.Empty {
				pieces = append(pieces, circle(t.Coord, d, quadSegs))
			}
		case geom.MultiPoint:
			for _, p := range t {
				walk(p)
			}
		case geom.LineString:
			if len(t) == 1 {
				pieces = append(pieces, circle(t[0], d, quadSegs))
			} else {
				addCapsules(t)
			}
		case geom.MultiLineString:
			for _, l := range t {
				walk(l)
			}
		case geom.Polygon:
			if !t.IsEmpty() {
				pieces = append(pieces, geom.MultiPolygon{t.Clone().(geom.Polygon)})
				for _, r := range t {
					addCapsules(r)
				}
			}
		case geom.MultiPolygon:
			for _, p := range t {
				walk(p)
			}
		case geom.Collection:
			for _, sub := range t {
				walk(sub)
			}
		}
	}
	walk(g)
	return UnionAll(pieces)
}

// circle builds a closed counter-clockwise polygon approximating the
// disc of radius r around c. All circles sample the same global angle
// grid (2πk / 4·quadSegs), so arcs of equal circles produced by adjacent
// capsules coincide bit-for-bit, which keeps the union overlay exact.
func circle(c geom.Coord, r float64, quadSegs int) geom.Polygon {
	n := 4 * quadSegs
	ring := make(geom.Ring, 0, n+1)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		ring = append(ring, geom.Coord{X: c.X + r*math.Cos(ang), Y: c.Y + r*math.Sin(ang)})
	}
	ring = append(ring, ring[0])
	return geom.Polygon{ring}
}

// capsule builds the "stadium" shape covering all points within r of the
// segment a-b, as the convex hull of the two endpoint circles. Because
// both circles sample the shared global angle grid, capsules that share
// an endpoint have exactly coincident cap arcs.
func capsule(a, b geom.Coord, r float64, quadSegs int) geom.Polygon {
	if a.Equal(b) {
		return circle(a, r, quadSegs)
	}
	ca, cb := circle(a, r, quadSegs), circle(b, r, quadSegs)
	pts := make(geom.MultiPoint, 0, len(ca[0])+len(cb[0]))
	for _, c := range ca[0][:len(ca[0])-1] {
		pts = append(pts, geom.Point{Coord: c})
	}
	for _, c := range cb[0][:len(cb[0])-1] {
		pts = append(pts, geom.Point{Coord: c})
	}
	hull := ConvexHull(pts)
	if p, ok := hull.(geom.Polygon); ok {
		return p
	}
	return circle(a, r, quadSegs) // degenerate fallback (r == 0)
}
