package overlay

import (
	"sort"

	"jackpine/internal/geom"
)

// Union returns the union of two geometries. Areal operands combine via
// polygon overlay; lower-dimensional operands are returned alongside the
// areal result in a Collection when mixed. Union of two empty geometries
// is an empty Collection.
func Union(a, b geom.Geometry) geom.Geometry {
	da, db := dimOf(a), dimOf(b)
	switch {
	case da == 2 && db == 2:
		return simplifyMulti(PolygonOp(a, b, OpUnion))
	case da < 0:
		return cloneOrEmpty(b)
	case db < 0:
		return cloneOrEmpty(a)
	default:
		// Mixed / lower dimensions: a flat collection of both operands.
		return geom.Collection{a.Clone(), b.Clone()}
	}
}

// UnionAll unions a list of areal geometries with balanced divide and
// conquer, which keeps intermediate results small.
func UnionAll(gs []geom.Geometry) geom.Geometry {
	switch len(gs) {
	case 0:
		return geom.MultiPolygon{}
	case 1:
		return simplifyMulti(toMultiPolygon(gs[0]))
	}
	mid := len(gs) / 2
	left := UnionAll(gs[:mid])
	right := UnionAll(gs[mid:])
	return simplifyMulti(PolygonOp(left, right, OpUnion))
}

// Intersection returns the point-set intersection of two geometries,
// supporting all type combinations used by the SQL layer:
//
//   - areal × areal   → MultiPolygon (overlay)
//   - line  × areal   → MultiLineString (the clipped pieces)
//   - point × any     → the points inside the other geometry
//   - line  × line    → Collection of crossing points and shared pieces
//
// The result is empty (an empty Collection) when the inputs do not
// intersect.
func Intersection(a, b geom.Geometry) geom.Geometry {
	da, db := dimOf(a), dimOf(b)
	if da < 0 || db < 0 {
		return geom.Collection{}
	}
	// Normalize: lower dimension first.
	if da > db {
		return Intersection(b, a)
	}
	switch {
	case da == 0:
		return pointIntersection(a, b)
	case da == 1 && db == 1:
		return lineLineIntersection(a, b)
	case da == 1 && db == 2:
		return ClipLines(a, b, true)
	default: // 2 × 2
		return simplifyMulti(PolygonOp(a, b, OpIntersection))
	}
}

// Difference returns a minus b. Areal × areal uses overlay; subtracting
// a lower-dimensional geometry from an areal one returns a unchanged;
// line minus areal clips to the polygon's exterior; other combinations
// subtract pointwise where representable.
func Difference(a, b geom.Geometry) geom.Geometry {
	da, db := dimOf(a), dimOf(b)
	if da < 0 {
		return geom.Collection{}
	}
	if db < 0 {
		return cloneOrEmpty(a)
	}
	switch {
	case da == 2 && db == 2:
		return simplifyMulti(PolygonOp(a, b, OpDifference))
	case da == 2:
		return cloneOrEmpty(a) // removing a 0/1-dim set leaves the area
	case da == 1 && db == 2:
		return ClipLines(a, b, false)
	case da == 0:
		var out geom.MultiPoint
		forEachPoint(a, func(p geom.Point) {
			if locGeometry(p.Coord, b) == locExterior {
				out = append(out, p)
			}
		})
		return out
	default:
		// line minus line/point: removing a 0-dim set leaves the line.
		return cloneOrEmpty(a)
	}
}

// SymDifference returns the symmetric difference of two areal geometries.
func SymDifference(a, b geom.Geometry) geom.Geometry {
	left := Difference(a, b)
	right := Difference(b, a)
	return Union(left, right)
}

// dimOf returns the dimension of g, or -1 when empty or nil.
func dimOf(g geom.Geometry) int {
	if g == nil || g.IsEmpty() {
		return -1
	}
	return g.Dimension()
}

func cloneOrEmpty(g geom.Geometry) geom.Geometry {
	if g == nil {
		return geom.Collection{}
	}
	return g.Clone()
}

// simplifyMulti collapses a MultiPolygon result: empty → empty Collection,
// single polygon → Polygon. Output ring ordering is made deterministic.
func simplifyMulti(mp geom.MultiPolygon) geom.Geometry {
	if len(mp) == 0 {
		return geom.Collection{}
	}
	sort.Slice(mp, func(i, j int) bool {
		ei, ej := mp[i].Envelope(), mp[j].Envelope()
		if ei.MinX != ej.MinX {
			return ei.MinX < ej.MinX
		}
		return ei.MinY < ej.MinY
	})
	if len(mp) == 1 {
		return mp[0]
	}
	return mp
}

func forEachPoint(g geom.Geometry, fn func(geom.Point)) {
	switch t := g.(type) {
	case geom.Point:
		if !t.Empty {
			fn(t)
		}
	case geom.MultiPoint:
		for _, p := range t {
			if !p.Empty {
				fn(p)
			}
		}
	case geom.Collection:
		for _, sub := range t {
			forEachPoint(sub, fn)
		}
	}
}

func forEachLine(g geom.Geometry, fn func(geom.LineString)) {
	switch t := g.(type) {
	case geom.LineString:
		if len(t) >= 2 {
			fn(t)
		}
	case geom.MultiLineString:
		for _, l := range t {
			if len(l) >= 2 {
				fn(l)
			}
		}
	case geom.Collection:
		for _, sub := range t {
			forEachLine(sub, fn)
		}
	}
}

// locGeometry classifies a coordinate against an arbitrary geometry
// (union semantics, boundary counted for areal and linear parts).
func locGeometry(p geom.Coord, g geom.Geometry) ovLoc {
	loc := locExterior
	switch t := g.(type) {
	case geom.Point:
		if !t.Empty && t.Coord.Equal(p) {
			return locInterior
		}
	case geom.MultiPoint:
		for _, q := range t {
			if !q.Empty && q.Coord.Equal(p) {
				return locInterior
			}
		}
	case geom.LineString:
		for i := 0; i < len(t)-1; i++ {
			if geom.OnSegment(p, t[i], t[i+1]) {
				return locBoundary
			}
		}
	case geom.MultiLineString:
		for _, l := range t {
			if locGeometry(p, l) != locExterior {
				return locBoundary
			}
		}
	case geom.Polygon:
		return locatePolygonOv(p, t)
	case geom.MultiPolygon:
		return locateMulti(p, t)
	case geom.Collection:
		for _, sub := range t {
			if l := locGeometry(p, sub); l > loc {
				loc = l
			}
			if loc == locInterior {
				return locInterior
			}
		}
	}
	return loc
}

// pointIntersection returns the points of a that lie on/in b.
func pointIntersection(a, b geom.Geometry) geom.Geometry {
	var out geom.MultiPoint
	forEachPoint(a, func(p geom.Point) {
		if locGeometry(p.Coord, b) != locExterior {
			out = append(out, p)
		}
	})
	if len(out) == 0 {
		return geom.Collection{}
	}
	if len(out) == 1 {
		return out[0]
	}
	return out
}

// ClipLines clips the linear geometry a against the areal geometry b,
// keeping the pieces inside (keepInside true) or outside (false). Pieces
// running along b's boundary count as inside.
func ClipLines(a, b geom.Geometry, keepInside bool) geom.Geometry {
	mp := toMultiPolygon(b)
	// Collect the polygon's ring segments for splitting.
	var ringEdges []ovEdge
	for _, poly := range mp {
		for _, r := range poly {
			for i := 0; i < len(r)-1; i++ {
				ringEdges = append(ringEdges, ovEdge{a: r[i], b: r[i+1], owner: 1})
			}
		}
	}
	var pieces geom.MultiLineString
	forEachLine(a, func(l geom.LineString) {
		var lineEdges []ovEdge
		for i := 0; i < len(l)-1; i++ {
			if !l[i].Equal(l[i+1]) {
				lineEdges = append(lineEdges, ovEdge{a: l[i], b: l[i+1], owner: 0})
			}
		}
		sub := splitEdges(lineEdges, ringEdges)
		var cur geom.LineString
		flush := func() {
			if len(cur) >= 2 {
				pieces = append(pieces, cur)
			}
			cur = nil
		}
		for _, e := range sub {
			mid := geom.Coord{X: (e.a.X + e.b.X) / 2, Y: (e.a.Y + e.b.Y) / 2}
			loc := locateMulti(mid, mp)
			keep := loc != locExterior
			if !keepInside {
				keep = loc == locExterior
			}
			if !keep {
				flush()
				continue
			}
			if len(cur) == 0 {
				cur = geom.LineString{e.a, e.b}
			} else if cur[len(cur)-1].Equal(e.a) {
				cur = append(cur, e.b)
			} else {
				flush()
				cur = geom.LineString{e.a, e.b}
			}
		}
		flush()
	})
	if len(pieces) == 0 {
		return geom.Collection{}
	}
	if len(pieces) == 1 {
		return pieces[0]
	}
	return pieces
}

// lineLineIntersection returns the crossing points and collinear shared
// pieces of two linear geometries.
func lineLineIntersection(a, b geom.Geometry) geom.Geometry {
	var segsA, segsB []ovEdge
	forEachLine(a, func(l geom.LineString) {
		for i := 0; i < len(l)-1; i++ {
			segsA = append(segsA, ovEdge{a: l[i], b: l[i+1]})
		}
	})
	forEachLine(b, func(l geom.LineString) {
		for i := 0; i < len(l)-1; i++ {
			segsB = append(segsB, ovEdge{a: l[i], b: l[i+1]})
		}
	})
	seenPts := make(map[geom.Coord]bool)
	var pts geom.MultiPoint
	var lines geom.MultiLineString
	for _, ea := range segsA {
		envA := geom.RectFromPoints(ea.a, ea.b)
		for _, eb := range segsB {
			if !envA.Intersects(geom.RectFromPoints(eb.a, eb.b)) {
				continue
			}
			kind, p0, p1 := geom.SegSegIntersection(ea.a, ea.b, eb.a, eb.b)
			switch kind {
			case geom.SegPoint:
				if !seenPts[p0] {
					seenPts[p0] = true
					pts = append(pts, geom.Point{Coord: p0})
				}
			case geom.SegOverlap:
				lines = append(lines, geom.LineString{p0, p1})
			}
		}
	}
	// Drop points that lie on a shared piece (they are redundant).
	var outPts geom.MultiPoint
	for _, p := range pts {
		onLine := false
		for _, l := range lines {
			if geom.OnSegment(p.Coord, l[0], l[1]) {
				onLine = true
				break
			}
		}
		if !onLine {
			outPts = append(outPts, p)
		}
	}
	switch {
	case len(lines) == 0 && len(outPts) == 0:
		return geom.Collection{}
	case len(lines) == 0 && len(outPts) == 1:
		return outPts[0]
	case len(lines) == 0:
		return outPts
	case len(outPts) == 0 && len(lines) == 1:
		return lines[0]
	case len(outPts) == 0:
		return lines
	default:
		out := geom.Collection{}
		for _, p := range outPts {
			out = append(out, p)
		}
		for _, l := range lines {
			out = append(out, l)
		}
		return out
	}
}
