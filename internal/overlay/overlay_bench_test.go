package overlay

import (
	"math"
	"testing"

	"jackpine/internal/geom"
)

func benchBlob(cx, cy float64, n int) geom.Polygon {
	ring := make(geom.Ring, 0, n+1)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		r := 10 + 3*math.Cos(3*a)
		ring = append(ring, geom.Coord{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)})
	}
	ring = append(ring, ring[0])
	return geom.Polygon{ring}
}

func BenchmarkPolygonUnionOverlapping(b *testing.B) {
	p1 := benchBlob(0, 0, 48)
	p2 := benchBlob(9, 4, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(PolygonOp(p1, p2, OpUnion)) == 0 {
			b.Fatal("empty union")
		}
	}
}

func BenchmarkPolygonIntersectionOverlapping(b *testing.B) {
	p1 := benchBlob(0, 0, 48)
	p2 := benchBlob(9, 4, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(PolygonOp(p1, p2, OpIntersection)) == 0 {
			b.Fatal("empty intersection")
		}
	}
}

func BenchmarkBufferLineString(b *testing.B) {
	line := make(geom.LineString, 12)
	for i := range line {
		line[i] = geom.Coord{X: float64(i) * 10, Y: math.Sin(float64(i)) * 8}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Buffer(line, 3, 8).IsEmpty() {
			b.Fatal("empty buffer")
		}
	}
}

func BenchmarkBufferPoint(b *testing.B) {
	p := geom.Pt(3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Buffer(p, 5, 8).IsEmpty() {
			b.Fatal("empty buffer")
		}
	}
}

func BenchmarkConvexHull(b *testing.B) {
	pts := make(geom.MultiPoint, 500)
	r := uint64(1)
	for i := range pts {
		r = r*6364136223846793005 + 1442695040888963407
		pts[i] = geom.Point{Coord: geom.Coord{
			X: float64(r>>40) / float64(1<<24) * 1000,
			Y: float64((r>>16)&0xFFFFFF) / float64(1<<24) * 1000,
		}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ConvexHull(pts).IsEmpty() {
			b.Fatal("empty hull")
		}
	}
}

func BenchmarkClipLineAgainstPolygon(b *testing.B) {
	poly := benchBlob(0, 0, 64)
	line := geom.LineString{{X: -20, Y: -5}, {X: 0, Y: 5}, {X: 20, Y: -5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ClipLines(line, poly, true)
	}
}
