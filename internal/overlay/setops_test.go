package overlay

import (
	"math"
	"testing"

	"jackpine/internal/geom"
)

func TestIntersectionArealAreal(t *testing.T) {
	res := Intersection(sq(0, 0, 4), sq(2, 2, 4))
	if got := geom.Area(res); math.Abs(got-4) > 1e-9 {
		t.Errorf("areal intersection area = %v, want 4", got)
	}
	if _, ok := res.(geom.Polygon); !ok {
		t.Errorf("single-part result should simplify to Polygon, got %T", res)
	}
}

func TestIntersectionLinePolygon(t *testing.T) {
	line := g("LINESTRING (-2 2, 6 2)")
	poly := sq(0, 0, 4)
	res := Intersection(line, poly)
	ls, ok := res.(geom.LineString)
	if !ok {
		t.Fatalf("expected LineString, got %T (%s)", res, geom.WKT(res))
	}
	if got := geom.Length(ls); math.Abs(got-4) > 1e-9 {
		t.Errorf("clipped length = %v, want 4", got)
	}
	// Order of arguments must not matter.
	res2 := Intersection(poly, line)
	if got := geom.Length(res2); math.Abs(got-4) > 1e-9 {
		t.Errorf("reversed clip length = %v, want 4", got)
	}
}

func TestIntersectionLineCrossingHole(t *testing.T) {
	donut := geom.Polygon{
		geom.Ring{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}, {X: 0, Y: 0}},
		geom.Ring{{X: 4, Y: 4}, {X: 4, Y: 6}, {X: 6, Y: 6}, {X: 6, Y: 4}, {X: 4, Y: 4}},
	}
	line := g("LINESTRING (-1 5, 11 5)")
	res := Intersection(line, donut)
	ml, ok := res.(geom.MultiLineString)
	if !ok {
		t.Fatalf("expected MultiLineString, got %T (%s)", res, geom.WKT(res))
	}
	if len(ml) != 2 {
		t.Fatalf("expected 2 pieces, got %d: %s", len(ml), geom.WKT(res))
	}
	if got := geom.Length(res); math.Abs(got-8) > 1e-9 {
		t.Errorf("total clipped length = %v, want 8 (10 across minus 2 in hole)", got)
	}
}

func TestIntersectionPointCases(t *testing.T) {
	poly := sq(0, 0, 4)
	if res := Intersection(g("POINT (2 2)"), poly); geom.WKT(res) != "POINT (2 2)" {
		t.Errorf("point-in-polygon intersection = %s", geom.WKT(res))
	}
	if res := Intersection(g("POINT (9 9)"), poly); !res.IsEmpty() {
		t.Errorf("outside point intersection = %s", geom.WKT(res))
	}
	res := Intersection(g("MULTIPOINT ((1 1), (9 9), (3 3))"), poly)
	mp, ok := res.(geom.MultiPoint)
	if !ok || len(mp) != 2 {
		t.Errorf("multipoint intersection = %s", geom.WKT(res))
	}
}

func TestIntersectionLineLine(t *testing.T) {
	res := Intersection(g("LINESTRING (0 0, 4 4)"), g("LINESTRING (0 4, 4 0)"))
	if geom.WKT(res) != "POINT (2 2)" {
		t.Errorf("crossing lines intersection = %s", geom.WKT(res))
	}
	res = Intersection(g("LINESTRING (0 0, 4 0)"), g("LINESTRING (2 0, 6 0)"))
	ls, ok := res.(geom.LineString)
	if !ok || math.Abs(geom.Length(ls)-2) > 1e-9 {
		t.Errorf("overlapping lines intersection = %s", geom.WKT(res))
	}
	res = Intersection(g("LINESTRING (0 0, 1 0)"), g("LINESTRING (5 5, 6 6)"))
	if !res.IsEmpty() {
		t.Errorf("disjoint lines intersection = %s", geom.WKT(res))
	}
}

func TestIntersectionEmpty(t *testing.T) {
	if res := Intersection(geom.Polygon{}, sq(0, 0, 1)); !res.IsEmpty() {
		t.Error("empty ∩ polygon should be empty")
	}
	if res := Intersection(nil, sq(0, 0, 1)); !res.IsEmpty() {
		t.Error("nil ∩ polygon should be empty")
	}
}

func TestUnionMixedAndEmpty(t *testing.T) {
	u := Union(sq(0, 0, 2), sq(1, 1, 2))
	if got := geom.Area(u); math.Abs(got-7) > 1e-9 {
		t.Errorf("union area = %v, want 7", got)
	}
	u = Union(geom.Polygon{}, sq(0, 0, 2))
	if got := geom.Area(u); math.Abs(got-4) > 1e-9 {
		t.Errorf("union with empty = %v, want 4", got)
	}
	u = Union(g("POINT (1 1)"), g("LINESTRING (0 0, 1 0)"))
	if _, ok := u.(geom.Collection); !ok {
		t.Errorf("mixed-dimension union should be a Collection, got %T", u)
	}
}

func TestUnionAll(t *testing.T) {
	var squares []geom.Geometry
	for i := 0; i < 8; i++ {
		squares = append(squares, sq(float64(i), 0, 1.5))
	}
	u := UnionAll(squares)
	// Total footprint is a 1.5-tall strip from x=0 to x=8.5.
	if got := geom.Area(u); math.Abs(got-8.5*1.5) > 1e-6 {
		t.Errorf("UnionAll area = %v, want %v", got, 8.5*1.5)
	}
	if got := UnionAll(nil); !got.IsEmpty() {
		t.Error("UnionAll of nothing should be empty")
	}
	one := UnionAll([]geom.Geometry{sq(0, 0, 2)})
	if got := geom.Area(one); math.Abs(got-4) > 1e-9 {
		t.Errorf("UnionAll of one = %v, want 4", got)
	}
}

func TestDifferenceCases(t *testing.T) {
	// Areal minus areal.
	d := Difference(sq(0, 0, 4), sq(2, 0, 4))
	if got := geom.Area(d); math.Abs(got-8) > 1e-9 {
		t.Errorf("areal difference area = %v, want 8", got)
	}
	// Areal minus line: unchanged.
	d = Difference(sq(0, 0, 4), g("LINESTRING (-1 2, 5 2)"))
	if got := geom.Area(d); math.Abs(got-16) > 1e-9 {
		t.Errorf("areal minus line = %v, want 16", got)
	}
	// Line minus areal: outside pieces.
	d = Difference(g("LINESTRING (-2 2, 6 2)"), sq(0, 0, 4))
	if got := geom.Length(d); math.Abs(got-4) > 1e-9 {
		t.Errorf("line minus polygon length = %v, want 4", got)
	}
	// Point minus areal.
	d = Difference(g("MULTIPOINT ((1 1), (9 9))"), sq(0, 0, 4))
	if mp, ok := d.(geom.MultiPoint); !ok || len(mp) != 1 || !mp[0].Equal(geom.Coord{X: 9, Y: 9}) {
		t.Errorf("point difference = %s", geom.WKT(d))
	}
	// Minus empty.
	d = Difference(sq(0, 0, 2), geom.Polygon{})
	if got := geom.Area(d); math.Abs(got-4) > 1e-9 {
		t.Errorf("minus empty = %v, want 4", got)
	}
	// Empty minus anything.
	if d := Difference(geom.Polygon{}, sq(0, 0, 2)); !d.IsEmpty() {
		t.Error("empty minus polygon should be empty")
	}
}

func TestSymDifference(t *testing.T) {
	d := SymDifference(sq(0, 0, 4), sq(2, 0, 4))
	if got := geom.Area(d); math.Abs(got-16) > 1e-9 {
		t.Errorf("sym difference area = %v, want 16", got)
	}
	d = SymDifference(sq(0, 0, 2), sq(0, 0, 2))
	if got := geom.Area(d); got != 0 {
		t.Errorf("self sym difference area = %v, want 0", got)
	}
}

func TestClipLinesBoundaryPieces(t *testing.T) {
	// A line running along the polygon's edge counts as inside.
	res := ClipLines(g("LINESTRING (1 0, 3 0)"), sq(0, 0, 4), true)
	if got := geom.Length(res); math.Abs(got-2) > 1e-9 {
		t.Errorf("edge-aligned clip length = %v, want 2", got)
	}
	res = ClipLines(g("LINESTRING (1 0, 3 0)"), sq(0, 0, 4), false)
	if !res.IsEmpty() {
		t.Errorf("outside pieces of an edge-aligned line = %s", geom.WKT(res))
	}
}
