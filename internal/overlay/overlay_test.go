package overlay

import (
	"math"
	"testing"
	"testing/quick"

	"jackpine/internal/geom"
)

func g(wkt string) geom.Geometry { return geom.MustParseWKT(wkt) }

func sq(x, y, side float64) geom.Polygon {
	return geom.Polygon{geom.Ring{
		{X: x, Y: y}, {X: x + side, Y: y}, {X: x + side, Y: y + side}, {X: x, Y: y + side}, {X: x, Y: y},
	}}
}

func areaOf(g geom.Geometry) float64 { return geom.Area(g) }

func TestPolygonOpOverlappingSquares(t *testing.T) {
	a, b := sq(0, 0, 4), sq(2, 2, 4)
	inter := PolygonOp(a, b, OpIntersection)
	if got := areaOf(inter); math.Abs(got-4) > 1e-9 {
		t.Errorf("intersection area = %v, want 4", got)
	}
	union := PolygonOp(a, b, OpUnion)
	if got := areaOf(union); math.Abs(got-28) > 1e-9 {
		t.Errorf("union area = %v, want 28", got)
	}
	diff := PolygonOp(a, b, OpDifference)
	if got := areaOf(diff); math.Abs(got-12) > 1e-9 {
		t.Errorf("difference area = %v, want 12", got)
	}
	// Validity of outputs.
	for _, res := range []geom.MultiPolygon{inter, union, diff} {
		if err := geom.Validate(res); err != nil {
			t.Errorf("invalid overlay output %s: %v", geom.WKT(res), err)
		}
	}
}

func TestPolygonOpDisjoint(t *testing.T) {
	a, b := sq(0, 0, 1), sq(5, 5, 1)
	if got := PolygonOp(a, b, OpIntersection); len(got) != 0 {
		t.Errorf("disjoint intersection = %s", geom.WKT(got))
	}
	if got := areaOf(PolygonOp(a, b, OpUnion)); math.Abs(got-2) > 1e-9 {
		t.Errorf("disjoint union area = %v, want 2", got)
	}
	if got := areaOf(PolygonOp(a, b, OpDifference)); math.Abs(got-1) > 1e-9 {
		t.Errorf("disjoint difference area = %v, want 1", got)
	}
}

func TestPolygonOpContainment(t *testing.T) {
	outer, inner := sq(0, 0, 10), sq(3, 3, 2)
	if got := areaOf(PolygonOp(outer, inner, OpIntersection)); math.Abs(got-4) > 1e-9 {
		t.Errorf("contained intersection area = %v, want 4", got)
	}
	if got := areaOf(PolygonOp(outer, inner, OpUnion)); math.Abs(got-100) > 1e-9 {
		t.Errorf("containment union area = %v, want 100", got)
	}
	diff := PolygonOp(outer, inner, OpDifference)
	if got := areaOf(diff); math.Abs(got-96) > 1e-9 {
		t.Errorf("containment difference area = %v, want 96", got)
	}
	// The difference must be a polygon with a hole.
	if len(diff) != 1 || len(diff[0]) != 2 {
		t.Errorf("difference should be one polygon with one hole, got %s", geom.WKT(diff))
	}
}

func TestPolygonOpIdentical(t *testing.T) {
	a := sq(0, 0, 3)
	if got := areaOf(PolygonOp(a, a, OpIntersection)); math.Abs(got-9) > 1e-9 {
		t.Errorf("self intersection area = %v, want 9", got)
	}
	if got := areaOf(PolygonOp(a, a, OpUnion)); math.Abs(got-9) > 1e-9 {
		t.Errorf("self union area = %v, want 9", got)
	}
	if got := areaOf(PolygonOp(a, a, OpDifference)); got != 0 {
		t.Errorf("self difference area = %v, want 0", got)
	}
}

func TestPolygonOpEdgeAdjacent(t *testing.T) {
	a, b := sq(0, 0, 2), sq(2, 0, 2)
	union := PolygonOp(a, b, OpUnion)
	if got := areaOf(union); math.Abs(got-8) > 1e-9 {
		t.Errorf("adjacent union area = %v, want 8", got)
	}
	// Union of edge-adjacent squares should be a single polygon.
	if len(union) != 1 {
		t.Errorf("adjacent union has %d polygons, want 1: %s", len(union), geom.WKT(union))
	}
	if got := areaOf(PolygonOp(a, b, OpIntersection)); got != 0 {
		t.Errorf("adjacent intersection area = %v, want 0", got)
	}
	if got := areaOf(PolygonOp(a, b, OpDifference)); math.Abs(got-4) > 1e-9 {
		t.Errorf("adjacent difference area = %v, want 4", got)
	}
}

func TestPolygonOpCornerTouch(t *testing.T) {
	a, b := sq(0, 0, 2), sq(2, 2, 2)
	union := PolygonOp(a, b, OpUnion)
	if got := areaOf(union); math.Abs(got-8) > 1e-9 {
		t.Errorf("corner union area = %v, want 8", got)
	}
	if got := areaOf(PolygonOp(a, b, OpIntersection)); got != 0 {
		t.Errorf("corner intersection area = %v, want 0", got)
	}
}

func TestPolygonOpWithHoles(t *testing.T) {
	donut := geom.Polygon{
		geom.Ring{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}, {X: 0, Y: 0}},
		geom.Ring{{X: 4, Y: 4}, {X: 4, Y: 6}, {X: 6, Y: 6}, {X: 6, Y: 4}, {X: 4, Y: 4}}, // CW hole
	}
	plug := sq(4, 4, 2)
	union := PolygonOp(donut, plug, OpUnion)
	if got := areaOf(union); math.Abs(got-100) > 1e-9 {
		t.Errorf("donut+plug union area = %v, want 100", got)
	}
	// Intersection of the donut with a square straddling the hole.
	straddle := sq(3, 3, 4)
	inter := PolygonOp(donut, straddle, OpIntersection)
	if got := areaOf(inter); math.Abs(got-(16-4)) > 1e-9 {
		t.Errorf("straddle intersection area = %v, want 12", got)
	}
	// Difference that carves a bite out of the donut.
	bite := sq(-1, -1, 3)
	diff := PolygonOp(donut, bite, OpDifference)
	if got := areaOf(diff); math.Abs(got-(96-4)) > 1e-9 {
		t.Errorf("bitten donut area = %v, want 92", got)
	}
}

func TestPolygonOpPartialEdgeOverlap(t *testing.T) {
	// B shares part of A's right edge, offset vertically.
	a := sq(0, 0, 4)
	b := geom.Polygon{geom.Ring{{X: 4, Y: 1}, {X: 7, Y: 1}, {X: 7, Y: 3}, {X: 4, Y: 3}, {X: 4, Y: 1}}}
	union := PolygonOp(a, b, OpUnion)
	if got := areaOf(union); math.Abs(got-22) > 1e-9 {
		t.Errorf("partial-edge union area = %v, want 22", got)
	}
	if len(union) != 1 {
		t.Errorf("partial-edge union should be a single polygon, got %s", geom.WKT(union))
	}
}

func TestPolygonOpMultiPolygonOperands(t *testing.T) {
	a := geom.MultiPolygon{sq(0, 0, 2), sq(10, 0, 2)}
	b := sq(1, 1, 2)
	union := PolygonOp(a, b, OpUnion)
	if got := areaOf(union); math.Abs(got-(4+4+4-1)) > 1e-9 {
		t.Errorf("multi union area = %v, want 11", got)
	}
	inter := PolygonOp(a, b, OpIntersection)
	if got := areaOf(inter); math.Abs(got-1) > 1e-9 {
		t.Errorf("multi intersection area = %v, want 1", got)
	}
}

func TestPolygonOpEmptyOperands(t *testing.T) {
	a := sq(0, 0, 2)
	if got := PolygonOp(a, geom.Polygon{}, OpIntersection); len(got) != 0 {
		t.Error("intersection with empty should be empty")
	}
	if got := areaOf(PolygonOp(a, geom.Polygon{}, OpUnion)); math.Abs(got-4) > 1e-9 {
		t.Error("union with empty should be the original")
	}
	if got := areaOf(PolygonOp(geom.Polygon{}, a, OpUnion)); math.Abs(got-4) > 1e-9 {
		t.Error("union with empty (reversed) should be the original")
	}
	if got := PolygonOp(geom.Polygon{}, a, OpDifference); len(got) != 0 {
		t.Error("empty minus polygon should be empty")
	}
	if got := areaOf(PolygonOp(a, geom.Polygon{}, OpDifference)); math.Abs(got-4) > 1e-9 {
		t.Error("polygon minus empty should be the original")
	}
}

func TestOverlayAreaInvariant(t *testing.T) {
	// area(A) + area(B) == area(A∪B) + area(A∩B) across a family of
	// generated square pairs (inclusion-exclusion).
	prop := func(seed uint32) bool {
		x := float64(seed % 7)
		y := float64((seed / 7) % 7)
		s := 1 + float64((seed/49)%4)
		a := sq(0, 0, 5)
		b := sq(x, y, s)
		lhs := areaOf(a) + areaOf(b)
		rhs := areaOf(PolygonOp(a, b, OpUnion)) + areaOf(PolygonOp(a, b, OpIntersection))
		return math.Abs(lhs-rhs) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOverlayDifferenceInvariant(t *testing.T) {
	// area(A−B) == area(A) − area(A∩B).
	prop := func(seed uint32) bool {
		x := float64(seed%11) - 3
		y := float64((seed/11)%11) - 3
		s := 1 + float64((seed/121)%5)
		a := sq(0, 0, 6)
		b := sq(x, y, s)
		lhs := areaOf(PolygonOp(a, b, OpDifference))
		rhs := areaOf(a) - areaOf(PolygonOp(a, b, OpIntersection))
		return math.Abs(lhs-rhs) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOverlayStarPolygonProperty(t *testing.T) {
	// Inclusion-exclusion over randomly generated star polygons — no
	// axis alignment, irrational coordinates, varying vertex counts.
	star := func(seed uint64, cx, cy float64) geom.Polygon {
		r := seed
		next := func() float64 {
			r = r*6364136223846793005 + 1442695040888963407
			return float64(r>>40) / float64(1<<24)
		}
		n := 5 + int(seed%11)
		ring := make(geom.Ring, 0, n+1)
		for i := 0; i < n; i++ {
			ang := 2*math.Pi*float64(i)/float64(n) + next()*0.2
			rad := 3 + next()*4
			ring = append(ring, geom.Coord{X: cx + rad*math.Cos(ang), Y: cy + rad*math.Sin(ang)})
		}
		ring = append(ring, ring[0])
		return geom.Polygon{ring}
	}
	prop := func(seed uint64) bool {
		a := star(seed|1, 0, 0)
		b := star(seed>>7|1, float64(seed%9), float64((seed>>4)%9))
		if geom.Validate(a) != nil || geom.Validate(b) != nil {
			return true // generator occasionally self-intersects; skip
		}
		union := PolygonOp(a, b, OpUnion)
		inter := PolygonOp(a, b, OpIntersection)
		diffAB := PolygonOp(a, b, OpDifference)
		diffBA := PolygonOp(b, a, OpDifference)
		areaA, areaB := areaOf(a), areaOf(b)
		tol := 1e-6 * (areaA + areaB)
		// Inclusion-exclusion.
		if math.Abs(areaA+areaB-areaOf(union)-areaOf(inter)) > tol {
			return false
		}
		// Partition: union = (A−B) ⊎ (B−A) ⊎ (A∩B).
		if math.Abs(areaOf(union)-areaOf(diffAB)-areaOf(diffBA)-areaOf(inter)) > tol {
			return false
		}
		// Differences are bounded by their minuends.
		return areaOf(diffAB) <= areaA+tol && areaOf(diffBA) <= areaB+tol
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestOverlayTriangleRotations(t *testing.T) {
	// Non-axis-aligned operands: two triangles overlapping.
	a := geom.Polygon{geom.Ring{{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 3, Y: 6}, {X: 0, Y: 0}}}
	b := geom.Polygon{geom.Ring{{X: 0, Y: 4}, {X: 3, Y: -2}, {X: 6, Y: 4}, {X: 0, Y: 4}}}
	union := PolygonOp(a, b, OpUnion)
	inter := PolygonOp(a, b, OpIntersection)
	lhs := areaOf(a) + areaOf(b)
	rhs := areaOf(union) + areaOf(inter)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("inclusion-exclusion broken: %v vs %v", lhs, rhs)
	}
	if areaOf(inter) <= 0 || areaOf(inter) >= math.Min(areaOf(a), areaOf(b)) {
		t.Errorf("triangle intersection area out of range: %v", areaOf(inter))
	}
}
