// Package linttest runs lint analyzers over GOPATH-style fixture trees, in
// the manner of golang.org/x/tools/go/analysis/analysistest: fixture files
// under <testdata>/src/<importpath>/ carry `// want "regexp"` comments on
// the lines where diagnostics are expected, and the runner fails the test
// on any mismatch in either direction.
//
// Fixtures are hermetic: imports resolve against sibling fixture packages
// first (testdata/src/jackpine/internal/geom, testdata/src/sync, ...), so
// each analyzer test ships minimal stubs of the packages whose symbols it
// matches instead of type-checking the real standard library.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"jackpine/internal/lint"
)

// Run loads each fixture package from testdata/src, applies the analyzer,
// and matches diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(testdata)
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, l.fset, pkg, diags)
	}
}

// RunModule loads all the fixture packages into one shared type
// universe, runs the analyzer once over the whole set (as module
// analyzers require), and matches diagnostics against want comments
// across every package.
func RunModule(t *testing.T, testdata string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(testdata)
	var pkgs []*lint.Package
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, pkg := range pkgs {
		var mine []lint.Diagnostic
		dirs := map[string]bool{}
		for _, f := range pkg.Files {
			dirs[filepath.Dir(l.fset.Position(f.Pos()).Filename)] = true
		}
		for _, d := range diags {
			if dirs[filepath.Dir(d.Pos.Filename)] {
				mine = append(mine, d)
			}
		}
		checkWants(t, l.fset, pkg, mine)
	}
}

// ModuleDiagnostics loads the fixture packages into one shared universe
// and returns the analyzer's raw (allow-filtered) diagnostics without
// matching want comments.
func ModuleDiagnostics(t *testing.T, testdata string, a *lint.Analyzer, pkgPaths ...string) []lint.Diagnostic {
	t.Helper()
	l := newLoader(testdata)
	var pkgs []*lint.Package
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags
}

// Packages loads fixture packages into one shared type universe without
// running any analyzer, for tests that drive lint APIs (LockGraph)
// directly.
func Packages(t *testing.T, testdata string, pkgPaths ...string) []*lint.Package {
	t.Helper()
	l := newLoader(testdata)
	var pkgs []*lint.Package
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// Diagnostics loads one fixture package and returns the analyzer's raw
// (allow-filtered) diagnostics without matching want comments. Useful for
// asserting an analyzer stays silent outside its scope.
func Diagnostics(t *testing.T, testdata string, a *lint.Analyzer, pkgPath string) []lint.Diagnostic {
	t.Helper()
	l := newLoader(testdata)
	pkg, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	return diags
}

func newLoader(testdata string) *loader {
	return &loader{
		src:  filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*lint.Package),
	}
}

// loader resolves fixture import paths to directories under src.
type loader struct {
	src  string
	fset *token.FileSet
	pkgs map[string]*lint.Package
}

// Import implements types.Importer against the fixture tree.
func (l *loader) Import(path string) (*types.Package, error) {
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

func (l *loader) load(path string) (*lint.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture import %q has no stub under testdata/src: %w", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q is empty", path)
	}
	pkg, err := lint.TypeCheck(l.fset, path, files, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// checkWants cross-matches diagnostics against want comments.
func checkWants(t *testing.T, fset *token.FileSet, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitWantPatterns(m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitWantPatterns parses the quoted regexps after a want marker, e.g.
// `// want "first" "second"` or backquoted equivalents.
func splitWantPatterns(s string) []string {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return append(pats, s) // unterminated: surface as a bad pattern
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				pats = append(pats, unq)
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(pats, s)
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return append(pats, s)
		}
	}
	return pats
}
