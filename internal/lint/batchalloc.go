package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// BatchAlloc enforces the amortized-allocation contract on the batch
// execution kernels: a batch function runs once per batch, but the code
// inside its loops runs once per row slot, so any heap allocation there
// multiplies by the batch size and silently re-creates the per-row
// allocation cost that batching exists to remove. Scratch buffers must
// live on the batch or executor struct (grow-once, reuse across
// batches), and filter-only geometry decodes must go through the
// per-batch coordinate arena (geom.UnmarshalWKBArena), not the
// allocating decoders.
var BatchAlloc = &Analyzer{
	Name: "batchalloc",
	Doc: "forbid per-element heap allocation inside batch- and PBSM-" +
		"sweep-kernel loops in internal/sql and internal/storage: no make, " +
		"no fresh slice built with append into a new variable, no " +
		"allocating geometry decode (geom.UnmarshalWKB, geom.ParseWKT, " +
		"geom.MustParseWKT); hoist buffers into batch/executor scratch " +
		"state or use the arena decoder",
	Run: runBatchAlloc,
}

// batchFuncRE matches the batch-kernel naming convention. A function is
// a batch kernel if its own name matches, or if it is a method on a
// batch type (ColBatch, batchExec, ...), where the convention lives on
// the receiver instead of every method name. The PBSM join's cell and
// sweep kernels (sweepCell, buildPBSM, pbsmState methods, ...) run per
// envelope pair and live under the same contract.
var batchFuncRE = regexp.MustCompile(`(?i)(batch|sweep|pbsm)`)

// batchDecodeBans are the allocating decode entry points; the arena
// variant (UnmarshalWKBArena) is the sanctioned replacement and does
// not match.
var batchDecodeBans = []struct{ pkg, name string }{
	{"internal/geom", "UnmarshalWKB"},
	{"internal/geom", "ParseWKT"},
	{"internal/geom", "MustParseWKT"},
}

func runBatchAlloc(pass *Pass) error {
	if !pkgMatches(pass, "internal/sql", "internal/storage") {
		return nil
	}
	funcDecls(pass, func(decl *ast.FuncDecl) {
		if !isBatchFunc(decl) {
			return
		}
		inLoop := loopBodies(decl.Body)
		name := decl.Name.Name
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.CallExpr:
				if !inLoop(t.Pos()) {
					return true
				}
				if isBuiltin(pass.TypesInfo, t, "make") {
					pass.Reportf(t.Pos(),
						"batch kernel %s calls make inside its per-element loop; "+
							"hoist the buffer into batch/executor scratch state "+
							"(amortized-allocation contract, DESIGN.md)", name)
				}
				for _, ban := range batchDecodeBans {
					if calleeIs(pass.TypesInfo, t, ban.pkg, ban.name) {
						pass.Reportf(t.Pos(),
							"batch kernel %s calls %s inside its per-element loop; "+
								"decode through the batch coordinate arena "+
								"(geom.UnmarshalWKBArena) instead", name, ban.name)
					}
				}
			case *ast.AssignStmt:
				if t.Tok != token.DEFINE || !inLoop(t.Pos()) {
					return true
				}
				for _, rhs := range t.Rhs {
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok &&
						isBuiltin(pass.TypesInfo, call, "append") {
						pass.Reportf(call.Pos(),
							"batch kernel %s builds a fresh slice with append inside "+
								"its per-element loop; reuse a scratch slice "+
								"(s = append(s[:0], ...)) held on the batch or executor",
							name)
					}
				}
			}
			return true
		})
	})
	return nil
}

// isBatchFunc reports whether decl is a batch kernel: its name, or its
// receiver's type name, matches the batch naming convention.
func isBatchFunc(decl *ast.FuncDecl) bool {
	if batchFuncRE.MatchString(decl.Name.Name) {
		return true
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			if batchFuncRE.MatchString(recvTypeName(f.Type)) {
				return true
			}
		}
	}
	return false
}

// recvTypeName extracts the bare type name from a receiver type
// expression (*T, T, or a generic instantiation T[...]).
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// loopBodies returns a predicate reporting whether a position falls
// inside the body of any for/range statement in the function, at any
// nesting depth (including loops inside closures — a closure called
// per element allocates per element all the same).
func loopBodies(body *ast.BlockStmt) func(token.Pos) bool {
	type span struct{ lo, hi token.Pos }
	var loops []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{t.Body.Pos(), t.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{t.Body.Pos(), t.Body.End()})
		}
		return true
	})
	return func(p token.Pos) bool {
		for _, s := range loops {
			if p >= s.lo && p < s.hi {
				return true
			}
		}
		return false
	}
}

// isBuiltin reports whether call invokes the named universe builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
