package lint

import (
	"go/ast"
	"strings"
)

// //lint:allow <analyzer> <justification>
// //lint:allow-file <analyzer> <justification>
//
// An allow directive suppresses the named analyzer's diagnostics on exactly
// one line: its own line when it rides as a trailing comment after code, or
// the line immediately below when it sits alone on its line above the
// statement. The file-scoped form suppresses the analyzer everywhere in the
// file that declares it; it exists for files where one invariant is
// deliberately and pervasively relaxed (e.g. a catalog mutated only under a
// lock the analyzer cannot see), where repeating the same line allow at
// every site buries the one justification in noise. In both forms the
// justification is mandatory: a bare allow is itself reported, because an
// unexplained suppression is indistinguishable from a silenced bug.

const (
	allowPrefix     = "//lint:allow"
	allowFilePrefix = "//lint:allow-file"
)

type allowKey struct {
	file     string
	line     int
	analyzer string
}

type fileAllowKey struct {
	file     string
	analyzer string
}

type allowSet struct {
	lines map[allowKey]bool
	files map[fileAllowKey]bool
}

func newAllowSet() allowSet {
	return allowSet{
		lines: make(map[allowKey]bool),
		files: make(map[fileAllowKey]bool),
	}
}

// collectAllows scans a package's comments for allow directives into set.
// It returns diagnostics for malformed directives.
func collectAllows(pkg *Package, set allowSet) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		code := codeLines(pkg, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				// The file-scoped prefix extends the line-scoped one, so
				// test it first.
				fileScoped := strings.HasPrefix(c.Text, allowFilePrefix)
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if fileScoped {
					rest = strings.TrimPrefix(c.Text, allowFilePrefix)
				}
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) == 0 {
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "lint:allow directive names no analyzer",
					})
					continue
				}
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Analyzer: "allow",
						Pos:      pos,
						Message:  "lint:allow " + fields[0] + " needs a justification",
					})
					continue
				}
				if fileScoped {
					set.files[fileAllowKey{pos.Filename, fields[0]}] = true
					continue
				}
				line := pos.Line
				if !code[line] {
					// Standalone comment line: covers the next line.
					line++
				}
				set.lines[allowKey{pos.Filename, line, fields[0]}] = true
			}
		}
	}
	return diags
}

// codeLines reports which lines of f contain non-comment syntax, so a
// directive can tell whether it trails code or stands alone. Every line with
// code has some node beginning or ending on it, so marking only node
// boundary lines is enough.
func codeLines(pkg *Package, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return true
		}
		lines[pkg.Fset.Position(n.Pos()).Line] = true
		lines[pkg.Fset.Position(n.End()-1).Line] = true
		return true
	})
	return lines
}

// filter drops diagnostics covered by an allow directive.
func (s allowSet) filter(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if s.lines[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		if s.files[fileAllowKey{d.Pos.Filename, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
