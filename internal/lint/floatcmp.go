package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
)

// FloatCmp flags == and != between floating-point operands in the geometry
// kernels. Exact float equality is occasionally the right tool (degenerate
// denominators, shared-vertex detection) but far more often a latent bug —
// the PR 3 SegSegIntersection collinear-overlap regression was exactly a
// float == reaching a value that arrived via rounding. The sanctioned
// helpers in floatsafe.go (geom.ExactEq and the epsilon comparators) make
// the choice explicit at the call site; code inside floatsafe.go itself is
// exempt, since that is where the raw comparisons are allowed to live.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= on float operands in internal/geom and internal/topo; " +
		"call geom.ExactEq (intentional exact equality) or an epsilon helper " +
		"from floatsafe.go instead",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	if !pkgMatches(pass, "internal/geom", "internal/topo") {
		return nil
	}
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if name == "floatsafe.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			lt := pass.TypesInfo.TypeOf(be.X)
			rt := pass.TypesInfo.TypeOf(be.Y)
			if lt == nil || rt == nil || !isFloat(lt) || !isFloat(rt) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use geom.ExactEq for intentional "+
					"exact equality or an epsilon helper from floatsafe.go",
				be.Op)
			return true
		})
	}
	return nil
}
