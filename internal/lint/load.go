package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadPackages loads the module packages matching the go-style patterns
// (e.g. "./...") rooted at dir, parsed with comments and fully type-checked.
//
// The loader shells out to `go list -deps -export` once: the go command
// resolves patterns and compiles export data for the standard library,
// while every in-module package — targets and in-module dependencies
// alike — is parsed and type-checked from source, in the dependency
// order `go list -deps` guarantees, against one shared importer chain.
// Sharing the universe matters for module-wide analyzers: a method
// value in package A and its declaration in package B resolve to the
// same types.Object, so call graphs and interface satisfaction checks
// work across package boundaries. This keeps jackpinevet dependency-free
// (no x/tools) and works offline.
//
// Files excluded by build constraints are not silently dropped: the
// loader collects the custom (non-toolchain) tags mentioned in each
// target's ignored files, re-lists under each tag, and loads any target
// whose file set changed as an additional package. Diagnostics in files
// shared between variants are deduplicated by Run.
//
// Test files are not analyzed: the invariants guard production hot paths,
// and tests legitimately reach for exact decoding and literal comparisons.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	base, err := loadUniverse(dir, patterns, "")
	if err != nil {
		return nil, err
	}
	if len(base.targets) == 0 {
		return nil, errors.New("no packages matched")
	}
	pkgs := base.targets
	for _, tag := range customTags(base) {
		variant, err := loadUniverse(dir, patterns, tag)
		if err != nil {
			// A tag variant that does not list or build is not an
			// analyzable configuration; the base variant already
			// covered the tree.
			continue
		}
		for _, p := range variant.targets {
			if !sameFiles(base.goFiles[p.Path], variant.goFiles[p.Path]) {
				pkgs = append(pkgs, p)
			}
		}
	}
	return pkgs, nil
}

// universe is one build configuration's worth of loaded packages.
type universe struct {
	targets []*Package
	// goFiles maps every target import path to its file basenames, for
	// detecting which packages a tag variant actually changes.
	goFiles map[string][]string
	// ignored maps target import paths to build-constraint-excluded
	// file paths, the source of candidate tags.
	ignored map[string][]string
}

// loadUniverse lists, parses and type-checks one build configuration.
func loadUniverse(dir string, patterns []string, tag string) (*universe, error) {
	listed, err := goList(dir, patterns, tag)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (does the package build?)", path)
		}
		return os.Open(f)
	}
	imp := &chainImporter{
		source: make(map[string]*types.Package),
		std:    importer.ForCompiler(fset, "gc", lookup),
	}
	u := &universe{
		goFiles: make(map[string][]string),
		ignored: make(map[string][]string),
	}
	// `go list -deps` emits packages after all their dependencies, so a
	// single pass type-checks each in-module package against already-
	// checked imports.
	for _, t := range listed {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := TypeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		imp.source[t.ImportPath] = pkg.Types
		if !t.DepOnly {
			u.targets = append(u.targets, pkg)
			u.goFiles[t.ImportPath] = t.GoFiles
			for _, name := range t.IgnoredGoFiles {
				u.ignored[t.ImportPath] = append(u.ignored[t.ImportPath], filepath.Join(t.Dir, name))
			}
		}
	}
	return u, nil
}

// chainImporter satisfies in-module imports from the shared source
// universe and everything else (the standard library) from gc export
// data.
type chainImporter struct {
	source map[string]*types.Package
	std    types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := c.source[path]; ok {
		return pkg, nil
	}
	return c.std.Import(path)
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath     string
	Dir            string
	Export         string
	GoFiles        []string
	IgnoredGoFiles []string
	Standard       bool
	DepOnly        bool
}

// goList resolves patterns to packages in dependency order, with export
// data compiled for the dependency closure. A non-empty tag is added to
// the build context.
func goList(dir string, patterns []string, tag string) ([]listPkg, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,IgnoredGoFiles,Standard,DepOnly",
	}
	if tag != "" {
		args = append(args, "-tags", tag)
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var listed []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// customTags extracts the project-defined build tags mentioned in the
// constraints of files the base configuration ignored. Toolchain tags
// (GOOS, GOARCH, compiler, sanitizer and release tags) are not
// interesting variants: the loader analyzes the host configuration.
func customTags(u *universe) []string {
	tags := make(map[string]bool)
	for _, files := range u.ignored {
		for _, path := range files {
			for _, t := range fileTags(path) {
				if !toolchainTag(t) {
					tags[t] = true
				}
			}
		}
	}
	out := make([]string, 0, len(tags))
	for t := range tags {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// fileTags parses the build constraint of one file and returns every
// tag it mentions, positively or negatively.
func fileTags(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var tags []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			continue
		}
		var walk func(e constraint.Expr)
		walk = func(e constraint.Expr) {
			switch e := e.(type) {
			case *constraint.TagExpr:
				tags = append(tags, e.Tag)
			case *constraint.NotExpr:
				walk(e.X)
			case *constraint.AndExpr:
				walk(e.X)
				walk(e.Y)
			case *constraint.OrExpr:
				walk(e.X)
				walk(e.Y)
			}
		}
		walk(expr)
	}
	return tags
}

// toolchainTag reports whether a build tag belongs to the Go toolchain
// rather than the project: enabling it is not a project configuration.
func toolchainTag(tag string) bool {
	switch tag {
	case "unix", "cgo", "gc", "gccgo", "race", "msan", "asan", "purego",
		"linux", "darwin", "windows", "freebsd", "netbsd", "openbsd",
		"dragonfly", "solaris", "illumos", "aix", "android", "ios",
		"js", "wasip1", "plan9", "hurd",
		"amd64", "arm64", "arm", "386", "riscv64", "wasm", "loong64",
		"mips", "mipsle", "mips64", "mips64le", "ppc64", "ppc64le", "s390x":
		return true
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok && rest != "" {
		return true
	}
	return false
}

func sameFiles(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
