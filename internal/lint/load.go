package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// LoadPackages loads the module packages matching the go-style patterns
// (e.g. "./...") rooted at dir, parsed with comments and fully type-checked.
//
// The loader shells out to `go list -deps -export` once: the go command
// resolves patterns and compiles export data for every dependency, and the
// standard library's gc importer then satisfies imports from that export
// data, so only the target packages themselves are parsed from source. This
// keeps jackpinevet dependency-free (no x/tools) and works offline.
//
// Test files are not analyzed: the invariants guard production hot paths,
// and tests legitimately reach for exact decoding and literal comparisons.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, errors.New("no packages matched")
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (does the package build?)", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	var pkgs []*Package
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := TypeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// goList resolves patterns to target packages and an export-data map
// covering their whole dependency closure.
func goList(dir string, patterns []string) (targets []listPkg, exports map[string]string, err error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	exports = make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}
