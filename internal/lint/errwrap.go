package lint

import (
	"go/ast"
	"go/constant"
)

// ErrWrap keeps error chains intact across the layers callers actually
// program against (driver, engine, cluster, wire): an error formatted with
// %v or %s — or flattened via err.Error() — can no longer be matched with
// errors.Is/errors.As, which the retry and equivalence machinery rely on.
// Only %w preserves the chain.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "require %w when an error value is interpolated by fmt.Errorf in " +
		"internal/driver, internal/engine, internal/cluster and internal/wire, " +
		"and flag err.Error() passed to fmt.Errorf / errors.New (chain swallowing)",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	if !pkgMatches(pass, "internal/driver", "internal/engine", "internal/cluster", "internal/wire") {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			isErrorf := calleeIs(info, call, "fmt", "Errorf")
			isNew := calleeIs(info, call, "errors", "New")
			if !isErrorf && !isNew {
				return true
			}
			// err.Error() anywhere in the arguments flattens the chain.
			for _, arg := range call.Args {
				checkErrorCall(pass, arg)
			}
			if !isErrorf || call.Ellipsis.IsValid() || len(call.Args) == 0 {
				return true
			}
			checkErrorfVerbs(pass, call)
			return true
		})
	}
	return nil
}

// checkErrorCall flags x.Error() calls on error values inside arg.
func checkErrorCall(pass *Pass, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
			return true
		}
		if !implementsError(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		pass.Reportf(call.Pos(),
			"err.Error() swallows the error chain; pass the error itself and wrap with %%w")
		return true
	})
}

// checkErrorfVerbs aligns fmt.Errorf verbs with arguments and flags error
// values formatted with anything other than %w.
func checkErrorfVerbs(pass *Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: nothing to align
	}
	format := constant.StringVal(tv.Value)
	args := call.Args[1:]
	for _, v := range parseVerbs(format) {
		if v.argIndex < 0 || v.argIndex >= len(args) {
			continue // malformed format; go vet's printf check owns that
		}
		arg := args[v.argIndex]
		if v.verb == 'w' || !implementsError(pass.TypesInfo.TypeOf(arg)) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"error interpolated with %%%c loses the chain for errors.Is/As; use %%w", v.verb)
	}
}

// verb is one formatting directive and the argument index it consumes.
type verb struct {
	verb     rune
	argIndex int
}

// parseVerbs walks a printf format string tracking argument consumption,
// including '*' width/precision and explicit [n] indexes.
func parseVerbs(format string) []verb {
	var verbs []verb
	arg := 0
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Flags.
		for i < len(format) && isFlag(format[i]) {
			i++
		}
		// Explicit argument index.
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' {
				arg = n - 1
				i = j + 1
			}
		}
		// Width.
		i = skipNumOrStar(format, i, &arg)
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			i = skipNumOrStar(format, i, &arg)
		}
		if i >= len(format) {
			break
		}
		verbs = append(verbs, verb{verb: rune(format[i]), argIndex: arg})
		arg++
		i++
	}
	return verbs
}

func isFlag(c byte) bool {
	return c == '+' || c == '-' || c == '#' || c == ' ' || c == '0'
}

// skipNumOrStar advances past a width/precision specifier; '*' consumes an
// argument.
func skipNumOrStar(format string, i int, arg *int) int {
	if i < len(format) && format[i] == '*' {
		*arg++
		return i + 1
	}
	for i < len(format) && format[i] >= '0' && format[i] <= '9' {
		i++
	}
	return i
}
