package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the whole-module lock-acquisition graph and reports
// cycles as potential deadlocks. The mutex inventory spans every
// sync.Mutex/RWMutex struct field and package-level mutex in the module
// — engine catalog, buffer-pool shards, WAL append and group-commit
// locks, cluster and replica connections — which is exactly the set
// that PRs 6-8 grew and that ROADMAP items keep growing.
//
// Per function, a forward dataflow over the CFG computes the set of
// locks held at each statement (must-held: paths are intersected, so a
// conditionally taken lock adds no edges — the analysis prefers missing
// an edge to inventing one). Acquiring k while holding h records the
// edge h -> k. Call sites into module functions propagate transitively:
// holding h while calling a function whose transitive closure acquires
// k also records h -> k. Dynamic dispatch through interfaces is
// resolved by class-hierarchy analysis over the module's named types.
// RLock counts as Lock: reader-writer cycles still deadlock through an
// intervening writer. Self-edges are ignored — acquiring two shards of
// the same pool in sequence releases one before the other, and the
// dataflow sees that.
//
// Two different lock classes on a cycle mean two call paths can acquire
// them in opposite orders; the report carries one witness per edge.
// The deterministic graph dump behind the jackpinevet -lockgraph flag
// (LockGraph) is committed under testdata so ordering changes show up
// in review diffs.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "flag cycles in the module-wide lock-acquisition order graph " +
		"(every sync.Mutex/RWMutex field or package mutex, with " +
		"interprocedural propagation and interface call resolution): a " +
		"cycle is two code paths that can deadlock against each other",
	RunModule: runLockOrder,
}

func runLockOrder(pass *ModulePass) error {
	g := buildLockGraph(pass.Pkgs)
	for _, cyc := range g.cycles() {
		first := g.edges[edgeKey{cyc[0], cyc[1]}]
		var b strings.Builder
		fmt.Fprintf(&b, "potential deadlock: lock-order cycle %s", strings.Join(append(cyc, cyc[0]), " -> "))
		for i := range cyc {
			from, to := cyc[i], cyc[(i+1)%len(cyc)]
			w := g.edges[edgeKey{from, to}]
			fmt.Fprintf(&b, "; %s -> %s: %s", from, to, w.desc)
		}
		pass.Reportf(first.pkg, first.pos, "%s", b.String())
	}
	return nil
}

// LockGraph returns the module's lock-order edges as deterministic
// "from -> to" lines, sorted, one per ordered pair of lock classes.
func LockGraph(pkgs []*Package) []string {
	g := buildLockGraph(pkgs)
	lines := make([]string, 0, len(g.edges))
	for e := range g.edges {
		lines = append(lines, e.from+" -> "+e.to)
	}
	sort.Strings(lines)
	return lines
}

type edgeKey struct{ from, to string }

type lockWitness struct {
	pkg  *Package
	pos  token.Pos
	desc string
}

type lockGraph struct {
	edges map[edgeKey]*lockWitness
}

// funcUnit is one analyzable body: a declared function, or a function
// literal treated as an anonymous function with no held locks on entry.
type funcUnit struct {
	pkg  *Package
	name string
	fn   *types.Func // nil for literals
	body *ast.BlockStmt
}

func buildLockGraph(pkgs []*Package) *lockGraph {
	g := &lockGraph{edges: make(map[edgeKey]*lockWitness)}

	// 1. Mutex inventory: every sync mutex struct field and package var.
	lockKeys := make(map[types.Object]string)
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		short := shortPkg(pkg.Path)
		for _, name := range scope.Names() {
			switch obj := scope.Lookup(name).(type) {
			case *types.TypeName:
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if isSyncMutex(f.Type()) {
						lockKeys[f] = short + "." + obj.Name() + "." + f.Name()
					}
				}
			case *types.Var:
				if isSyncMutex(obj.Type()) {
					lockKeys[obj] = short + "." + obj.Name()
				}
			}
		}
	}
	if len(lockKeys) == 0 {
		return g
	}

	// 2. Function inventory, in deterministic order, plus the method
	// list for interface resolution.
	var units []funcUnit
	bodies := make(map[string]*funcUnit) // FullName -> unit
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				u := funcUnit{pkg: pkg, name: funcDisplayName(fn), fn: fn, body: decl.Body}
				units = append(units, u)
				bodies[fn.FullName()] = &units[len(units)-1]
				declName := u.name
				ast.Inspect(decl.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						units = append(units, funcUnit{pkg: pkg, name: declName + ".func", body: lit.Body})
					}
					return true
				})
			}
		}
	}

	resolve := newCallResolver(pkgs, bodies)

	// 3. Per-unit dataflow: held sets, direct acquisitions, call sites.
	type callSite struct {
		callees []string // FullNames
		held    []string
		pkg     *Package
		pos     token.Pos
		caller  string
	}
	acq := make(map[string]map[string]bool) // FullName -> directly acquired keys
	var calls []callSite
	for i := range units {
		u := &units[i]
		held := solveHeld(u, lockKeys)
		if u.fn != nil && acq[u.fn.FullName()] == nil {
			acq[u.fn.FullName()] = make(map[string]bool)
		}
		for _, ev := range held.acquisitions {
			if u.fn != nil {
				acq[u.fn.FullName()][ev.key] = true
			}
			for _, h := range ev.held {
				if h != ev.key {
					g.addEdge(h, ev.key, u.pkg, ev.pos, fmt.Sprintf(
						"%s acquires %s while holding %s", u.name, ev.key, h))
				}
			}
		}
		for _, ev := range held.calls {
			callees := resolve(u.pkg, ev.call)
			if len(callees) == 0 || len(ev.held) == 0 {
				continue
			}
			calls = append(calls, callSite{
				callees: callees, held: ev.held,
				pkg: u.pkg, pos: ev.pos, caller: u.name,
			})
		}
	}

	// 4. Transitive acquisition sets over the call graph.
	acqStar := transitiveAcq(bodies, resolve, acq)

	// 5. Edges from call sites: held x (transitively acquired).
	for _, cs := range calls {
		for _, callee := range cs.callees {
			for k := range acqStar[callee] {
				for _, h := range cs.held {
					if h == k {
						continue
					}
					g.addEdge(h, k, cs.pkg, cs.pos, fmt.Sprintf(
						"%s holds %s and calls %s, which acquires %s (possibly transitively)",
						cs.caller, h, displayName(callee), k))
				}
			}
		}
	}
	return g
}

func (g *lockGraph) addEdge(from, to string, pkg *Package, pos token.Pos, desc string) {
	key := edgeKey{from, to}
	if _, ok := g.edges[key]; ok {
		return // first witness wins; unit order is deterministic
	}
	g.edges[key] = &lockWitness{pkg: pkg, pos: pos, desc: desc}
}

// cycles returns every elementary lock-order cycle, one per strongly
// connected component, as a deterministic key sequence.
func (g *lockGraph) cycles() [][]string {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for e := range g.edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	sccs := stronglyConnected(nodes, adj)
	var out [][]string
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		out = append(out, cyclePath(scc, adj))
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// cyclePath finds a cycle through the SCC starting at its smallest
// node, walking smallest-neighbor-first within the component.
func cyclePath(scc []string, adj map[string][]string) []string {
	in := make(map[string]bool, len(scc))
	for _, n := range scc {
		in[n] = true
	}
	start := scc[0]
	path := []string{start}
	onPath := map[string]bool{start: true}
	var dfs func(cur string) bool
	dfs = func(cur string) bool {
		for _, next := range adj[cur] {
			if !in[next] {
				continue
			}
			if next == start && len(path) > 1 {
				return true
			}
			if onPath[next] {
				continue
			}
			path = append(path, next)
			onPath[next] = true
			if dfs(next) {
				return true
			}
			path = path[:len(path)-1]
			delete(onPath, next)
		}
		return false
	}
	dfs(start)
	return path
}

func stronglyConnected(nodes map[string]bool, adj map[string][]string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range sortedKeys(nodes) {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return sccs
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// heldResult is what one unit's dataflow yields.
type heldResult struct {
	acquisitions []acqEvent
	calls        []callEvent
}

type acqEvent struct {
	key  string
	held []string // sorted, excluding key
	pos  token.Pos
}

type callEvent struct {
	call *ast.CallExpr
	held []string
	pos  token.Pos
}

// heldFact is the must-held lock set; top marks unreached blocks.
type heldFact struct {
	top bool
	set map[string]bool
}

// solveHeld runs the held-set dataflow over one unit and collects
// acquisition and call events with the locks held at each.
func solveHeld(u *funcUnit, lockKeys map[types.Object]string) heldResult {
	info := u.pkg.TypesInfo
	cfg := NewCFG(u.body)
	prob := &FlowProblem{
		Forward:  true,
		Boundary: heldFact{set: map[string]bool{}},
		Init:     heldFact{top: true},
		Transfer: func(n ast.Node, f Fact) Fact {
			return heldTransfer(info, lockKeys, n, f.(heldFact))
		},
		Merge: func(a, b Fact) Fact {
			x, y := a.(heldFact), b.(heldFact)
			if x.top {
				return y
			}
			if y.top {
				return x
			}
			out := map[string]bool{}
			for k := range x.set {
				if y.set[k] {
					out[k] = true
				}
			}
			return heldFact{set: out}
		},
		Equal: func(a, b Fact) bool {
			x, y := a.(heldFact), b.(heldFact)
			if x.top != y.top {
				return false
			}
			if len(x.set) != len(y.set) {
				return false
			}
			for k := range x.set {
				if !y.set[k] {
					return false
				}
			}
			return true
		},
	}
	res := Solve(cfg, prob)

	var out heldResult
	for _, b := range cfg.Blocks {
		f := res.In[b.Index].(heldFact)
		if f.top {
			continue
		}
		for _, n := range b.Nodes {
			collectLockEvents(info, lockKeys, n, f, &out)
			f = heldTransfer(info, lockKeys, n, f)
		}
	}
	return out
}

func heldTransfer(info *types.Info, lockKeys map[types.Object]string, n ast.Node, f heldFact) heldFact {
	if f.top {
		return f
	}
	out := f
	copied := false
	update := func(key string, hold bool) {
		if !copied {
			cp := make(map[string]bool, len(out.set)+1)
			for k := range out.set {
				cp[k] = true
			}
			out = heldFact{set: cp}
			copied = true
		}
		if hold {
			out.set[key] = true
		} else {
			delete(out.set, key)
		}
	}
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op, ok := lockCall(info, lockKeys, call)
		if !ok {
			return true
		}
		switch op {
		case "Lock", "RLock":
			update(key, true)
		case "Unlock", "RUnlock":
			update(key, false)
		}
		return true
	})
	return out
}

// collectLockEvents records acquisitions and module call sites in n
// given the held set before it. Statements under a go statement are
// skipped: the spawned goroutine holds nothing of the caller's, and its
// body (a literal) is analyzed as its own unit.
func collectLockEvents(info *types.Info, lockKeys map[types.Object]string, n ast.Node, f heldFact, out *heldResult) {
	cur := f
	inspectShallow(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.GoStmt); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op, ok := lockCall(info, lockKeys, call); ok {
			if op == "Lock" || op == "RLock" {
				out.acquisitions = append(out.acquisitions, acqEvent{
					key: key, held: sortedHeld(cur, key), pos: call.Pos(),
				})
			}
			// Track intra-statement ordering: mu.Lock() twice in one
			// statement is not a pattern here, but keep cur honest.
			cur = heldTransfer(info, lockKeys, m, cur)
			return true
		}
		if callee(info, call) != nil && len(cur.set) > 0 {
			out.calls = append(out.calls, callEvent{
				call: call, held: sortedHeld(cur, ""), pos: call.Pos(),
			})
		}
		return true
	})
}

func sortedHeld(f heldFact, except string) []string {
	out := make([]string, 0, len(f.set))
	for k := range f.set {
		if k != except {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// lockCall resolves a call to mu.Lock/RLock/Unlock/RUnlock on an
// inventoried mutex, returning the lock key and the operation.
func lockCall(info *types.Info, lockKeys map[types.Object]string, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	var obj types.Object
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if fsel, ok := info.Selections[x]; ok && fsel.Kind() == types.FieldVal {
			obj = fsel.Obj()
		} else {
			obj = info.Uses[x.Sel]
		}
	case *ast.Ident:
		obj = info.Uses[x]
	}
	if obj == nil {
		return "", "", false
	}
	key, ok := lockKeys[obj]
	return key, op, ok
}

// newCallResolver returns a function resolving a call expression to the
// FullNames of module functions it may invoke: the static callee when
// its body is in the module, or every module implementation of an
// interface method (class-hierarchy analysis).
func newCallResolver(pkgs []*Package, bodies map[string]*funcUnit) func(*Package, *ast.CallExpr) []string {
	// Methods by name for CHA, with their receiver's named type.
	type methodImpl struct {
		fullName string
		recv     *types.Named
	}
	implsByName := make(map[string][]methodImpl)
	for full, u := range bodies {
		if u.fn == nil {
			continue
		}
		sig := u.fn.Type().(*types.Signature)
		r := sig.Recv()
		if r == nil {
			continue
		}
		t := r.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		implsByName[u.fn.Name()] = append(implsByName[u.fn.Name()], methodImpl{full, named})
	}
	for name := range implsByName {
		impls := implsByName[name]
		sort.Slice(impls, func(i, j int) bool { return impls[i].fullName < impls[j].fullName })
		implsByName[name] = impls
	}
	return func(pkg *Package, call *ast.CallExpr) []string {
		obj := callee(pkg.TypesInfo, call)
		fn, ok := obj.(*types.Func)
		if !ok {
			return nil
		}
		full := fn.FullName()
		if _, ok := bodies[full]; ok {
			return []string{full}
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return nil
		}
		iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
		if !ok {
			return nil
		}
		var out []string
		for _, impl := range implsByName[fn.Name()] {
			if types.Implements(impl.recv, iface) || types.Implements(types.NewPointer(impl.recv), iface) {
				out = append(out, impl.fullName)
			}
		}
		return out
	}
}

// transitiveAcq computes, for every module function, the set of lock
// keys it or anything it (transitively) calls acquires.
func transitiveAcq(bodies map[string]*funcUnit, resolve func(*Package, *ast.CallExpr) []string, acq map[string]map[string]bool) map[string]map[string]bool {
	// Call edges: every module call inside each body, go statements and
	// literals included — a literal invoked by the function can acquire
	// on the caller's path, and the over-approximation only widens
	// transitive sets, never held sets.
	edges := make(map[string][]string)
	for full, u := range bodies {
		seen := make(map[string]bool)
		ast.Inspect(u.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range resolve(u.pkg, call) {
				if !seen[callee] {
					seen[callee] = true
					edges[full] = append(edges[full], callee)
				}
			}
			return true
		})
	}
	star := make(map[string]map[string]bool, len(acq))
	for full, direct := range acq {
		set := make(map[string]bool, len(direct))
		for k := range direct {
			set[k] = true
		}
		star[full] = set
	}
	for changed := true; changed; {
		changed = false
		for full, callees := range edges {
			dst := star[full]
			if dst == nil {
				dst = make(map[string]bool)
				star[full] = dst
			}
			for _, c := range callees {
				for k := range star[c] {
					if !dst[k] {
						dst[k] = true
						changed = true
					}
				}
			}
		}
	}
	return star
}

// shortPkg trims a package path to its position under internal/, or to
// its last element, for readable lock keys.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "internal/"); i >= 0 {
		return path[i+len("internal/"):]
	}
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// funcDisplayName renders a function for witnesses: Recv.Name or Name.
func funcDisplayName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		t := r.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// displayName compresses a FullName like
// "(jackpine/internal/storage.*BufferPool).Pin" to "BufferPool.Pin".
func displayName(full string) string {
	if i := strings.LastIndex(full, "."); i >= 0 {
		method := full[i+1:]
		rest := full[:i]
		rest = strings.TrimSuffix(strings.TrimPrefix(rest, "("), ")")
		if j := strings.LastIndex(rest, "."); j >= 0 {
			rest = rest[j+1:]
		}
		rest = strings.TrimPrefix(rest, "*")
		if rest != "" && rest != full[:i] {
			return rest + "." + method
		}
		return method
	}
	return full
}
