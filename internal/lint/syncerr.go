package lint

import (
	"go/ast"
)

// SyncErr guards the durability layer's error discipline: on POSIX
// filesystems, delayed write errors surface at fsync or close — an
// os.File.Sync or Close whose error is dropped can silently lose the
// only report that a committed page or log record never reached disk.
// Inside internal/storage (the page stores, buffer pool, and WAL) every
// such error must be handled; intentional discards on handles with no
// durable writes (error-path cleanup, superseded log generations,
// read-only directory handles) carry a //lint:allow with the
// justification.
var SyncErr = &Analyzer{
	Name: "syncerr",
	Doc: "flag discarded os.File.Close/Sync errors under internal/storage: " +
		"statement-position calls, defer/go statements, and blank assignments " +
		"all drop the delayed write error that reports lost durability",
	Run: runSyncErr,
}

func runSyncErr(pass *Pass) error {
	if !pathUnder(pass.Pkg.Path(), "internal/storage") {
		return nil
	}
	report := func(expr ast.Expr, how string) {
		call, ok := expr.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") || len(call.Args) != 0 {
			return
		}
		if !isNamedType(pass.TypesInfo.TypeOf(sel.X), "os", "File") {
			return
		}
		pass.Reportf(call.Pos(),
			"%sos.File.%s discards its error: delayed write errors surface here and "+
				"dropping them loses the only report of a failed durable write; "+
				"handle the error or justify with //lint:allow syncerr",
			how, sel.Sel.Name)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				report(s.X, "")
			case *ast.DeferStmt:
				report(s.Call, "deferred ")
			case *ast.GoStmt:
				report(s.Call, "go-spawned ")
			case *ast.AssignStmt:
				// `_ = f.Close()` is still a discard, just a visible one.
				if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
					if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
						report(s.Rhs[0], "blank-assigned ")
					}
				}
			}
			return true
		})
	}
	return nil
}
