package lint

// Worklist dataflow over a CFG. A FlowProblem packages the lattice
// (Merge/Equal), the direction, and the per-node transfer function;
// Solve iterates to a fixpoint and returns the fact at the entry and
// exit of every block. Analyzers then re-walk a block's nodes with the
// same transfer function to recover the fact before or after each
// individual statement.
//
// Facts are opaque to the solver. Transfer functions must treat facts
// as immutable (return a fresh value rather than mutating the input):
// the solver caches and compares facts across iterations, and aliasing
// a mutated map would corrupt the fixpoint.

import (
	"go/ast"
)

// Fact is an analyzer-defined lattice element.
type Fact any

// FlowProblem defines one dataflow analysis over a CFG.
type FlowProblem struct {
	// Forward selects the direction: true propagates facts from Entry
	// along successor edges; false propagates from Exit along
	// predecessor edges.
	Forward bool
	// Boundary is the fact at the boundary block (Entry for forward
	// problems, Exit for backward ones).
	Boundary Fact
	// Init is the initial fact for every other block, typically the
	// lattice identity for Merge (top for must-analyses, bottom for
	// may-analyses).
	Init Fact
	// Transfer computes the effect of one node. For forward problems
	// nodes are applied in block order; for backward problems in
	// reverse block order.
	Transfer func(n ast.Node, f Fact) Fact
	// Edge, if non-nil, refines the fact flowing across a specific
	// edge. It is always called with the edge's source block and the
	// successor index within it, regardless of direction, so condition
	// outcomes can be exploited: succIdx 0 is the true edge of
	// Block.Cond, succIdx 1 the false edge. Return f unchanged when no
	// refinement applies.
	Edge func(b *Block, succIdx int, f Fact) Fact
	// Merge combines facts where paths join. It must be commutative,
	// associative, and monotone for the solver to terminate.
	Merge func(a, b Fact) Fact
	// Equal reports whether two facts are equal, used to detect the
	// fixpoint.
	Equal func(a, b Fact) bool
}

// FlowResult holds the solved facts: In[i] is the fact at the start of
// cfg.Blocks[i] in execution order, Out[i] the fact at its end. For
// backward problems In is still the execution-order start (i.e. the
// analysis result after processing the block against the direction).
type FlowResult struct {
	In  []Fact
	Out []Fact
}

// Solve runs the worklist algorithm to a fixpoint.
func Solve(cfg *CFG, p *FlowProblem) *FlowResult {
	n := len(cfg.Blocks)
	res := &FlowResult{In: make([]Fact, n), Out: make([]Fact, n)}
	for i := range cfg.Blocks {
		res.In[i] = p.Init
		res.Out[i] = p.Init
	}

	// Seed the boundary and order the worklist roughly along the
	// direction of flow so most blocks settle in one pass.
	order := postorder(cfg)
	if p.Forward {
		// reverse postorder
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}

	// Facts only flow out of blocks reachable from Entry: dead code
	// (statements after a return, say) is still solved so analyzers can
	// walk it, but its initial-valued facts must not dilute the merges
	// of live blocks — a must-property that holds on every live path
	// has to stay a must-property.
	reach := make([]bool, n)
	for _, b := range postorder(cfg) {
		reach[b.Index] = true
	}

	// A predecessor (successor, for backward problems) whose fact has
	// not been computed yet contributes nothing to a merge: its slot
	// still holds Init, which is only the lattice identity for some
	// problems. Because the worklist is seeded along the direction of
	// flow, every such skipped edge is a loop back edge, and the block
	// is revisited once the edge's source settles — the first merge a
	// loop header sees is its entry fact, exactly the seed a fixpoint
	// iteration wants.
	computed := make([]bool, n)

	inWork := make([]bool, n)
	var work []*Block
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range order {
		push(b)
	}
	// Blocks unreachable in the chosen direction still get processed
	// once so their facts are well-defined.
	for _, b := range cfg.Blocks {
		push(b)
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		if p.Forward {
			in := p.Init
			if b == cfg.Entry {
				in = p.Boundary
			}
			first := true
			for pi, pred := range b.Preds {
				if !reach[pred.Index] || !computed[pred.Index] {
					continue
				}
				f := res.Out[pred.Index]
				if p.Edge != nil {
					// succIdx of this edge from pred's perspective.
					f = p.Edge(pred, succIndex(pred, b, pi), f)
				}
				if first && b != cfg.Entry {
					in = f
					first = false
				} else {
					in = p.Merge(in, f)
				}
			}
			res.In[b.Index] = in
			out := in
			for _, node := range b.Nodes {
				out = p.Transfer(node, out)
			}
			if first := !computed[b.Index]; first || !p.Equal(out, res.Out[b.Index]) {
				computed[b.Index] = true
				res.Out[b.Index] = out
				for _, s := range b.Succs {
					push(s)
				}
			} else {
				res.Out[b.Index] = out
			}
		} else {
			out := p.Init
			if b == cfg.Exit {
				out = p.Boundary
			}
			first := true
			for si, succ := range b.Succs {
				if !computed[succ.Index] {
					continue
				}
				f := res.In[succ.Index]
				if p.Edge != nil {
					f = p.Edge(b, si, f)
				}
				if first && b != cfg.Exit {
					out = f
					first = false
				} else {
					out = p.Merge(out, f)
				}
			}
			res.Out[b.Index] = out
			in := out
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				in = p.Transfer(b.Nodes[i], in)
			}
			if first := !computed[b.Index]; first || !p.Equal(in, res.In[b.Index]) {
				computed[b.Index] = true
				res.In[b.Index] = in
				for _, pr := range b.Preds {
					push(pr)
				}
			} else {
				res.In[b.Index] = in
			}
		}
	}
	return res
}

// succIndex finds which successor slot of pred points at b. Preds and
// Succs are parallel only by construction order, so search; hint is
// unused beyond a starting guess.
func succIndex(pred, b *Block, hint int) int {
	if hint < len(pred.Succs) && pred.Succs[hint] == b {
		return hint
	}
	for i, s := range pred.Succs {
		if s == b {
			return i
		}
	}
	return -1
}

// postorder returns the blocks reachable from Entry in DFS postorder.
func postorder(cfg *CFG) []*Block {
	seen := make([]bool, len(cfg.Blocks))
	var out []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
		out = append(out, b)
	}
	visit(cfg.Entry)
	return out
}
