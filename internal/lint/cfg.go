package lint

// Control-flow graphs for analyzer dataflow. The per-node AST matching
// that carried the first eight analyzers cannot express the invariants
// PRs 6-8 introduced — "this mutation reaches a dirty-marking Unpin on
// every path", "this Pin is released exactly once including error
// returns" — because those are properties of paths, not of nodes. NewCFG
// lowers one function body into basic blocks with branch, loop, defer
// and return edges, at statement granularity, using nothing but go/ast;
// dataflow.go then runs worklist solvers over it.
//
// The model is deliberately small and documents its approximations:
//
//   - Defers are lexical, not dynamic: every deferred call is placed in a
//     single synthetic block (Deferred == true, calls in reverse source
//     order) that every function exit flows through, regardless of
//     whether the defer statement had executed on that path. Analyzers
//     that would misfire on that (e.g. releasing a resource that was
//     never acquired) check Block.Deferred and stay quiet there.
//   - Explicit panic(...) statements edge to the deferred block and then
//     to exit, so "cleanup runs on panic paths via defer" is visible.
//     Implicit runtime panics (nil derefs, index errors) are not modeled.
//   - goto is supported; unreachable code after a return keeps its own
//     block with no predecessors, so solvers see it with the initial
//     fact and analyzers report nothing meaningful inside it.

import (
	"go/ast"
)

// Block is one basic block: statements that execute straight-line,
// followed by zero or more successor edges.
type Block struct {
	Index int
	// Nodes holds the block's statements in execution order. A block
	// that branches on a condition carries the condition expression as
	// its final node (see Cond).
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Cond is the branch condition when the block ends in a two-way
	// branch: Succs[0] is the true edge and Succs[1] the false edge.
	// Nil for unconditional blocks and multi-way branches (switch,
	// select, range headers).
	Cond ast.Expr
	// Deferred marks the synthetic block holding deferred calls, which
	// every exit path traverses whether or not the defer statement ran
	// on that path.
	Deferred bool
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block // synthetic: no nodes, no successors
	// Defers lists the function's defer statements in source order.
	Defers []*ast.DeferStmt
}

// cfgBuilder holds the construction state.
type cfgBuilder struct {
	cfg     *CFG
	current *Block
	// Loop/switch context for break and continue, innermost last.
	breaks    []branchTarget
	continues []branchTarget
	// fallthroughNext is the next case-clause block inside a switch.
	fallthroughNext *Block
	labels          map[string]*Block
	gotos           map[string][]*Block // pending goto edges by label
	// exits collects blocks ending in return or panic; they are routed
	// through the deferred block (if any) to the exit at the end.
	exits []*Block
}

type branchTarget struct {
	label string
	block *Block
}

// NewCFG builds the control-flow graph of a function body (a FuncDecl's
// or FuncLit's Body).
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*Block),
		gotos:  make(map[string][]*Block),
	}
	entry := b.newBlock()
	b.cfg.Entry = entry
	b.current = entry
	b.stmtList(body.List)
	// Fallthrough off the end of the body exits the function — but only
	// when the end is reachable. A function whose last statement returns
	// leaves an empty unreachable continuation as the current block;
	// routing it to exit would merge the initial fact into the exit
	// fact and dilute every must-property (a definite leak would read
	// as a maybe-leak).
	if b.current == entry || len(b.current.Preds) > 0 {
		b.exits = append(b.exits, b.current)
	}

	// Unresolved gotos (labels in broken or unparsed code): route to
	// exit so the graph stays connected.
	for _, pend := range b.gotos {
		b.exits = append(b.exits, pend...)
	}

	// Exit plumbing: every exit path converges on the deferred block
	// (when the function has defers) and then the exit block.
	if len(b.cfg.Defers) > 0 {
		def := b.newBlock()
		def.Deferred = true
		for i := len(b.cfg.Defers) - 1; i >= 0; i-- {
			def.Nodes = append(def.Nodes, b.cfg.Defers[i].Call)
		}
		exit := b.newBlock()
		b.cfg.Exit = exit
		b.addEdge(def, exit)
		for _, blk := range b.exits {
			b.addEdge(blk, def)
		}
	} else {
		exit := b.newBlock()
		b.cfg.Exit = exit
		for _, blk := range b.exits {
			b.addEdge(blk, exit)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.current.Nodes = append(b.current.Nodes, s.Init)
		}
		b.current.Nodes = append(b.current.Nodes, s.Cond)
		b.current.Cond = s.Cond
		head := b.current
		join := b.newBlock()

		then := b.newBlock()
		b.addEdge(head, then) // true edge: Succs[0]
		b.current = then
		b.stmtList(s.Body.List)
		b.addEdge(b.current, join)

		if s.Else != nil {
			els := b.newBlock()
			b.addEdge(head, els) // false edge: Succs[1]
			b.current = els
			b.stmt(s.Else)
			b.addEdge(b.current, join)
		} else {
			b.addEdge(head, join) // false edge: Succs[1]
		}
		b.current = join

	case *ast.ForStmt:
		b.loop(s, "")

	case *ast.RangeStmt:
		b.rangeLoop(s, "")

	case *ast.SwitchStmt:
		b.switchStmt(s, "")

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")

	case *ast.SelectStmt:
		b.selectStmt(s, "")

	case *ast.LabeledStmt:
		// Start a fresh block so gotos can land on the label.
		lbl := b.newBlock()
		b.addEdge(b.current, lbl)
		b.current = lbl
		b.labels[s.Label.Name] = lbl
		for _, from := range b.gotos[s.Label.Name] {
			b.addEdge(from, lbl)
		}
		delete(b.gotos, s.Label.Name)
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			b.loop(inner, s.Label.Name)
		case *ast.RangeStmt:
			b.rangeLoop(inner, s.Label.Name)
		case *ast.SwitchStmt:
			b.switchStmt(inner, s.Label.Name)
		case *ast.TypeSwitchStmt:
			b.typeSwitchStmt(inner, s.Label.Name)
		case *ast.SelectStmt:
			b.selectStmt(inner, s.Label.Name)
		default:
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ReturnStmt:
		b.current.Nodes = append(b.current.Nodes, s)
		b.exits = append(b.exits, b.current)
		b.current = b.newBlock() // unreachable continuation

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		// The call itself is modeled in the deferred block, not here.

	case *ast.ExprStmt:
		b.current.Nodes = append(b.current.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				b.exits = append(b.exits, b.current)
				b.current = b.newBlock()
			}
		}

	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// empty statements: straight-line nodes.
		if s != nil {
			b.current.Nodes = append(b.current.Nodes, s)
		}
	}
}

// loop lowers a for statement: init -> header(cond) -> body -> post ->
// header, with break to the join and continue to the post block.
func (b *cfgBuilder) loop(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.current.Nodes = append(b.current.Nodes, s.Init)
	}
	header := b.newBlock()
	b.addEdge(b.current, header)
	join := b.newBlock()
	body := b.newBlock()
	if s.Cond != nil {
		header.Nodes = append(header.Nodes, s.Cond)
		header.Cond = s.Cond
		b.addEdge(header, body) // true edge
		b.addEdge(header, join) // false edge
	} else {
		b.addEdge(header, body)
	}

	post := header
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.addEdge(post, header)
	}
	b.pushLoop(label, join, post)
	b.current = body
	b.stmtList(s.Body.List)
	b.addEdge(b.current, post)
	b.popLoop()
	b.current = join
}

// rangeLoop lowers a range statement. The RangeStmt node itself is the
// header's node (it binds the iteration variables); the header has a
// body edge and a done edge.
func (b *cfgBuilder) rangeLoop(s *ast.RangeStmt, label string) {
	header := b.newBlock()
	header.Nodes = append(header.Nodes, s)
	b.addEdge(b.current, header)
	join := b.newBlock()
	body := b.newBlock()
	b.addEdge(header, body)
	b.addEdge(header, join)

	b.pushLoop(label, join, header)
	b.current = body
	b.stmtList(s.Body.List)
	b.addEdge(b.current, header)
	b.popLoop()
	b.current = join
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.current.Nodes = append(b.current.Nodes, s.Init)
	}
	if s.Tag != nil {
		b.current.Nodes = append(b.current.Nodes, s.Tag)
	}
	head := b.current
	join := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: join})

	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		for _, e := range c.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		if c.List == nil {
			hasDefault = true
		}
		b.addEdge(head, blocks[i])
	}
	if !hasDefault {
		b.addEdge(head, join)
	}
	savedFT := b.fallthroughNext
	for i, c := range clauses {
		b.current = blocks[i]
		b.fallthroughNext = nil
		if i+1 < len(blocks) {
			b.fallthroughNext = blocks[i+1]
		}
		b.stmtList(c.Body)
		b.addEdge(b.current, join)
	}
	b.fallthroughNext = savedFT
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.current = join
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.current.Nodes = append(b.current.Nodes, s.Init)
	}
	b.current.Nodes = append(b.current.Nodes, s.Assign)
	head := b.current
	join := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: join})

	hasDefault := false
	var blocks []*Block
	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		clauses = append(clauses, cc)
		blk := b.newBlock()
		if cc.List == nil {
			hasDefault = true
		}
		b.addEdge(head, blk)
		blocks = append(blocks, blk)
	}
	if !hasDefault {
		b.addEdge(head, join)
	}
	for i, c := range clauses {
		b.current = blocks[i]
		b.stmtList(c.Body)
		b.addEdge(b.current, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.current = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.current
	join := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, block: join})
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		blk := b.newBlock()
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.addEdge(head, blk)
		b.current = blk
		b.stmtList(cc.Body)
		b.addEdge(b.current, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.current = join
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.breaks) - 1; i >= 0; i-- {
			if label == "" || b.breaks[i].label == label {
				b.addEdge(b.current, b.breaks[i].block)
				break
			}
		}
		b.current = b.newBlock()
	case "continue":
		for i := len(b.continues) - 1; i >= 0; i-- {
			if label == "" || b.continues[i].label == label {
				b.addEdge(b.current, b.continues[i].block)
				break
			}
		}
		b.current = b.newBlock()
	case "goto":
		if tgt, ok := b.labels[label]; ok {
			b.addEdge(b.current, tgt)
		} else {
			b.gotos[label] = append(b.gotos[label], b.current)
		}
		b.current = b.newBlock()
	case "fallthrough":
		if b.fallthroughNext != nil {
			b.addEdge(b.current, b.fallthroughNext)
		}
		b.current = b.newBlock()
	}
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	b.continues = append(b.continues, branchTarget{label: label, block: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}
