package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinBalance verifies the buffer pool's reference-count protocol in the
// storage and engine layers: every BufferPool.Pin must be matched by
// exactly one Unpin of the same page on every path out of the function —
// early error returns, loop exits, and panic paths via defer included.
// A leaked pin permanently wedges a frame in memory (eviction skips
// pinned frames), and a double unpin corrupts the reference count and
// lets the pool evict a page someone still holds.
//
// The analysis runs a forward dataflow over the function's CFG. The
// fact tracks, per pinned page, whether it is currently pinned; the
// error variable returned alongside a Pin is tracked so the analysis
// knows the pin did not happen on the `err != nil` branch. A page whose
// pin or unpin escapes into a closure is dropped from tracking: the
// closure is analyzed as its own function and cross-function balance is
// out of intra-procedural reach.
var PinBalance = &Analyzer{
	Name: "pinbalance",
	Doc: "flag BufferPool.Pin calls whose frame is not released by exactly " +
		"one Unpin on every path (internal/storage, internal/engine): a " +
		"leaked pin wedges the frame, a double unpin corrupts the refcount",
	Run: runPinBalance,
}

// Pin states. pinAbsent doubles as "unpinned": both mean no obligation.
const (
	pinAbsent  int8 = iota // never pinned here, or already unpinned
	pinHeld                // definitely pinned
	pinMaybe               // pinned on some paths only
	pinEscaped             // handed to a closure; not tracked further
)

// pinFact is the dataflow fact: per-page pin state plus the error
// variables tied to each Pin call. Treated as immutable.
type pinFact struct {
	state map[string]int8
	errs  map[types.Object]string
}

func (f pinFact) clone() pinFact {
	out := pinFact{state: make(map[string]int8, len(f.state)), errs: make(map[types.Object]string, len(f.errs))}
	for k, v := range f.state {
		out.state[k] = v
	}
	for k, v := range f.errs {
		out.errs[k] = v
	}
	return out
}

func runPinBalance(pass *Pass) error {
	if !pkgMatches(pass, "internal/storage", "internal/engine") {
		return nil
	}
	funcBodies(pass, func(name string, body *ast.BlockStmt) {
		checkPinBalance(pass, body)
	})
	return nil
}

func checkPinBalance(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Where each page was pinned, for report positions. A function that
	// only unpins (the caller pinned) has no entries and stays silent.
	pinPos := make(map[string]token.Pos)
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := poolMethodCall(info, call, "Pin"); ok {
				key := pageKey(sel, call)
				if _, seen := pinPos[key]; !seen {
					pinPos[key] = call.Pos()
				}
			}
		}
		return true
	})
	if len(pinPos) == 0 {
		return
	}

	cfg := NewCFG(body)
	prob := &FlowProblem{
		Forward:  true,
		Boundary: pinFact{},
		Init:     pinFact{},
		Transfer: func(n ast.Node, f Fact) Fact { return pinTransfer(info, n, f.(pinFact)) },
		Edge: func(b *Block, succIdx int, f Fact) Fact {
			return pinEdge(info, b, succIdx, f.(pinFact))
		},
		Merge: func(a, b Fact) Fact { return pinMerge(a.(pinFact), b.(pinFact)) },
		Equal: func(a, b Fact) bool { return pinEqual(a.(pinFact), b.(pinFact)) },
	}
	res := Solve(cfg, prob)

	// Leaks: a page still (or maybe) pinned when the function exits.
	exit := res.In[cfg.Exit.Index].(pinFact)
	for key, st := range exit.state {
		pos, mine := pinPos[key]
		if !mine {
			continue
		}
		switch st {
		case pinHeld:
			pass.Reportf(pos, "page pinned here is never unpinned: every path out of the function must Unpin it")
		case pinMaybe:
			pass.Reportf(pos, "page pinned here is unpinned on only some paths; the remaining paths leak the frame")
		}
	}

	// Double unpins: re-walk each block with its solved entry fact and
	// flag an Unpin whose page is definitely not pinned. The deferred
	// block is exempt: a defer legitimately releases a pin that early
	// error paths never took.
	for _, b := range cfg.Blocks {
		if b.Deferred {
			continue
		}
		f := res.In[b.Index].(pinFact)
		for _, n := range b.Nodes {
			before := f
			f = pinTransfer(info, n, f)
			inspectShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := poolMethodCall(info, call, "Unpin")
				if !ok {
					return true
				}
				key := pageKey(sel, call)
				if _, mine := pinPos[key]; mine && before.state[key] == pinAbsent {
					pass.Reportf(call.Pos(), "page %s is already unpinned on every path reaching this Unpin", types.ExprString(call.Args[0]))
				}
				return true
			})
		}
	}
}

func pinTransfer(info *types.Info, n ast.Node, f pinFact) pinFact {
	out := f
	copied := false
	mutate := func() {
		if !copied {
			out = f.clone()
			copied = true
		}
	}
	var skip ast.Node
	if rs, ok := n.(*ast.RangeStmt); ok {
		skip = rs.Body // lowered into its own blocks, as in inspectShallow
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m != nil && m == skip {
			return false
		}
		// A closure that pins or unpins a page this function also tracks
		// takes the page out of intra-procedural reach. (Handled before
		// the shallow-walk cutoff: the literal's own statements still
		// must not leak into this function's facts.)
		if lit, ok := m.(*ast.FuncLit); ok && m != n {
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				call, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, method := range [...]string{"Pin", "Unpin"} {
					if sel, ok := poolMethodCall(info, call, method); ok {
						mutate()
						out.state[pageKey(sel, call)] = pinEscaped
					}
				}
				return true
			})
			return false
		}
		switch m := m.(type) {
		case *ast.AssignStmt:
			// buf, err := pool.Pin(id): pin the page and remember which
			// error variable reports its failure.
			if len(m.Rhs) == 1 {
				if call, ok := m.Rhs[0].(*ast.CallExpr); ok {
					if sel, ok := poolMethodCall(info, call, "Pin"); ok {
						mutate()
						key := pageKey(sel, call)
						if out.state[key] != pinEscaped {
							out.state[key] = pinHeld
						}
						if len(m.Lhs) == 2 {
							if id, ok := m.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
								obj := info.Defs[id]
								if obj == nil {
									obj = info.Uses[id]
								}
								if obj != nil {
									out.errs[obj] = key
								}
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := poolMethodCall(info, m, "Unpin"); ok {
				mutate()
				key := pageKey(sel, m)
				if out.state[key] != pinEscaped {
					out.state[key] = pinAbsent
				}
			}
		}
		return true
	})
	return out
}

// pinEdge exploits `err != nil` branches: on the error edge of a Pin's
// error variable the pin did not happen, so the obligation is dropped.
func pinEdge(info *types.Info, b *Block, succIdx int, f pinFact) pinFact {
	if b.Cond == nil {
		return f
	}
	obj, isNeq, ok := condNilCheck(info, b.Cond)
	if !ok {
		return f
	}
	key, tracked := f.errs[obj]
	if !tracked {
		return f
	}
	errEdge := (isNeq && succIdx == 0) || (!isNeq && succIdx == 1)
	if !errEdge {
		return f
	}
	out := f.clone()
	if out.state[key] != pinEscaped {
		out.state[key] = pinAbsent
	}
	delete(out.errs, obj)
	return out
}

func pinMerge(a, b pinFact) pinFact {
	out := pinFact{state: make(map[string]int8), errs: make(map[types.Object]string)}
	keys := make(map[string]bool)
	for k := range a.state {
		keys[k] = true
	}
	for k := range b.state {
		keys[k] = true
	}
	for k := range keys {
		x, y := a.state[k], b.state[k]
		switch {
		case x == y:
			out.state[k] = x
		case x == pinEscaped || y == pinEscaped:
			out.state[k] = pinEscaped
		default:
			out.state[k] = pinMaybe
		}
	}
	for k, v := range a.errs {
		out.errs[k] = v
	}
	for k, v := range b.errs {
		out.errs[k] = v
	}
	return out
}

func pinEqual(a, b pinFact) bool {
	if len(a.errs) != len(b.errs) {
		return false
	}
	for k, v := range a.errs {
		if b.errs[k] != v {
			return false
		}
	}
	// States compare modulo absent == 0 entries.
	for k, v := range a.state {
		if b.state[k] != v {
			return false
		}
	}
	for k, v := range b.state {
		if a.state[k] != v {
			return false
		}
	}
	return true
}
