package lint

import (
	"go/ast"
	"go/types"
)

// WalWrite enforces the NO-STEAL write discipline on pinned pages in
// the storage and engine layers: a function that mutates the bytes of a
// pinned buffer-pool page must release that page with Unpin(id, true)
// (or an equivalently non-constant dirty flag) on every path. Releasing
// a mutated page with Unpin(id, false) tells the pool the frame matches
// disk: the write is silently lost on eviction and never reaches the
// WAL — the exact overflow-header clobber class that PR 8 fixed by
// hand.
//
// Mechanics: page buffers are the []byte returned by BufferPool.Pin.
// The analyzer tracks local aliases of each pinned buffer (slices of
// it, page{buf} wrappers), detects mutations through them — direct
// index stores, copy/clear, encoding/binary stores, and calls to
// same-package functions that a fixpoint summary proves write through a
// parameter or receiver — and runs a backward must-analysis classifying
// each program point by the Unpin every path reaches: dirty, clean, or
// none (the page outlives the function; pinbalance owns that case). A
// mutation whose downstream classification is "clean" is reported.
var WalWrite = &Analyzer{
	Name: "walwrite",
	Doc: "flag mutations of pinned buffer-pool pages that reach " +
		"Unpin(id, false) on some path (internal/storage, internal/engine): " +
		"an undirtied write never reaches the WAL and is lost on eviction",
	Run: runWalWrite,
}

// Backward lattice: the classification of the Unpin reached from a
// program point, merged with min across paths. walClean poisons any
// merge — one undirtied path loses the write.
const (
	walClean   int8 = iota // reaches Unpin(id, false)
	walNoUnpin             // reaches function exit without an Unpin
	walDirty               // reaches Unpin(id, true) or a data-dependent flag
)

func runWalWrite(pass *Pass) error {
	if !pkgMatches(pass, "internal/storage", "internal/engine") {
		return nil
	}
	sums := writerSummaries(pass)
	funcBodies(pass, func(name string, body *ast.BlockStmt) {
		checkWalWrite(pass, sums, body)
	})
	return nil
}

func checkWalWrite(pass *Pass, sums map[*types.Func]*writeSet, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pin sites: page key -> the []byte variable holding the frame.
	aliases := make(map[types.Object]string)
	keys := make(map[string]bool)
	inspectShallow(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := poolMethodCall(info, call, "Pin")
		if !ok {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				key := pageKey(sel, call)
				aliases[obj] = key
				keys[key] = true
			}
		}
		return true
	})
	if len(keys) == 0 {
		return
	}

	// Propagate aliasing through assignments until stable: slices of the
	// buffer, page{buf} wrappers, and plain copies all reach the same
	// backing array.
	for changed := true; changed; {
		changed = false
		inspectShallow(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || aliases[obj] != "" {
					continue
				}
				if !aliasPreserving(as.Rhs[i]) {
					continue
				}
				for _, root := range rootObjs(info, as.Rhs[i]) {
					if key := aliases[root]; key != "" {
						aliases[obj] = key
						changed = true
						break
					}
				}
			}
			return true
		})
	}

	cfg := NewCFG(body)
	top := make(walFact)
	boundary := make(walFact)
	for k := range keys {
		top[k] = walDirty
		boundary[k] = walNoUnpin
	}
	prob := &FlowProblem{
		Forward:  false,
		Boundary: boundary,
		Init:     top,
		Transfer: func(n ast.Node, f Fact) Fact { return walTransfer(info, n, f.(walFact)) },
		Merge: func(a, b Fact) Fact {
			x, y := a.(walFact), b.(walFact)
			out := make(walFact, len(x))
			for k, v := range x {
				if w := y[k]; w < v {
					out[k] = w
				} else {
					out[k] = v
				}
			}
			return out
		},
		Equal: func(a, b Fact) bool {
			x, y := a.(walFact), b.(walFact)
			for k, v := range x {
				if y[k] != v {
					return false
				}
			}
			return true
		},
	}
	res := Solve(cfg, prob)

	// Re-walk each block backward: the fact below a node classifies the
	// Unpin its mutations flow into.
	for _, b := range cfg.Blocks {
		below := res.Out[b.Index].(walFact)
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			n := b.Nodes[i]
			forEachWrite(info, sums, n, func(obj types.Object, at ast.Node) {
				key := aliases[obj]
				if key == "" {
					return
				}
				if below[key] == walClean {
					pass.Reportf(at.Pos(),
						"write to pinned page %s reaches Unpin(.., false) on some path: "+
							"the mutation is never marked dirty, so it misses the WAL and is lost on eviction",
						keyPageExpr(key))
				}
			})
			below = walTransfer(info, n, below)
		}
	}
}

// walFact maps page keys to the lattice classification below a point.
type walFact map[string]int8

func walTransfer(info *types.Info, n ast.Node, f walFact) walFact {
	var out walFact
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := poolMethodCall(info, call, "Unpin")
		if !ok {
			return true
		}
		if out == nil {
			out = make(walFact, len(f))
			for k, v := range f {
				out[k] = v
			}
		}
		key := pageKey(sel, call)
		if _, tracked := f[key]; !tracked {
			return true
		}
		if len(call.Args) >= 2 && isFalseLiteral(call.Args[1]) {
			out[key] = walClean
		} else {
			out[key] = walDirty
		}
		return true
	})
	if out == nil {
		return f
	}
	return out
}

func isFalseLiteral(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "false"
}

// keyPageExpr recovers the printed page-id expression from a page key
// for report messages.
func keyPageExpr(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '|' {
			return key[i+1:]
		}
	}
	return key
}

// writeSet summarizes which inputs a function writes through.
type writeSet struct {
	recv   bool
	params map[int]bool
}

// writerSummaries computes, for every function in the package, whether
// it writes through its receiver or a parameter — directly (index
// stores, copy/clear, encoding/binary stores) or by passing them into
// another summarized writer. The fixpoint makes helpers like
// page.insert and initPage visible as mutations at their call sites.
func writerSummaries(pass *Pass) map[*types.Func]*writeSet {
	info := pass.TypesInfo
	sums := make(map[*types.Func]*writeSet)
	type declInfo struct {
		decl   *ast.FuncDecl
		fn     *types.Func
		inputs map[types.Object]int // param obj -> index; receiver -> -1
	}
	var decls []declInfo
	funcDecls(pass, func(decl *ast.FuncDecl) {
		fn, ok := info.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		sig := fn.Type().(*types.Signature)
		inputs := make(map[types.Object]int)
		if r := sig.Recv(); r != nil {
			inputs[r] = -1
			// The declared receiver ident, not the signature object, is
			// what body uses resolve to.
			if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
				if obj := info.Defs[decl.Recv.List[0].Names[0]]; obj != nil {
					inputs[obj] = -1
				}
			}
		}
		for i := 0; i < sig.Params().Len(); i++ {
			inputs[sig.Params().At(i)] = i
		}
		sums[fn] = &writeSet{params: make(map[int]bool)}
		decls = append(decls, declInfo{decl, fn, inputs})
	})
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			sum := sums[d.fn]
			forEachWrite(info, sums, d.decl.Body, func(obj types.Object, at ast.Node) {
				idx, ok := d.inputs[obj]
				if !ok {
					return
				}
				if idx == -1 {
					if !sum.recv {
						sum.recv = true
						changed = true
					}
				} else if !sum.params[idx] {
					sum.params[idx] = true
					changed = true
				}
			})
		}
	}
	return sums
}

// forEachWrite reports the root object of every buffer mutation inside
// n (function literals excluded): index and field stores, copy/clear,
// encoding/binary Put*, storage.SetPageLSN, and calls into summarized
// writers.
func forEachWrite(info *types.Info, sums map[*types.Func]*writeSet, n ast.Node, report func(obj types.Object, at ast.Node)) {
	emit := func(e ast.Expr, at ast.Node) {
		for _, obj := range rootObjs(info, e) {
			report(obj, at)
		}
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if _, ok := lhs.(*ast.Ident); ok {
					continue // rebinding, not a write through
				}
				emit(lhs, m)
			}
		case *ast.IncDecStmt:
			if _, ok := m.X.(*ast.Ident); !ok {
				emit(m.X, m)
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(m.Fun).(type) {
			case *ast.Ident:
				if b, ok := info.Uses[fun].(*types.Builtin); ok {
					if (b.Name() == "copy" || b.Name() == "clear") && len(m.Args) > 0 {
						emit(m.Args[0], m)
					}
					return true
				}
			}
			obj := callee(info, m)
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" &&
				len(m.Args) > 0 && len(fn.Name()) > 3 && fn.Name()[:3] == "Put" {
				emit(m.Args[0], m)
				return true
			}
			if fn.Pkg() != nil && pathIs(fn.Pkg().Path(), "internal/storage") &&
				fn.Name() == "SetPageLSN" && len(m.Args) > 0 {
				emit(m.Args[0], m)
				return true
			}
			if sum := sums[fn]; sum != nil {
				if sum.recv {
					if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok {
						emit(sel.X, m)
					}
				}
				for i := range sum.params {
					if i < len(m.Args) {
						emit(m.Args[i], m)
					}
				}
			}
		}
		return true
	})
}

// rootObjs returns the variables through which writing to e writes:
// the base of index/slice/selector chains, and every variable captured
// in a composite literal (page{buf} shares buf's backing array).
func rootObjs(info *types.Info, e ast.Expr) []types.Object {
	var out []types.Object
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				out = append(out, obj)
			} else if obj := info.Defs[e]; obj != nil {
				out = append(out, obj)
			}
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.IndexExpr:
			walk(e.X)
		case *ast.SliceExpr:
			walk(e.X)
		case *ast.StarExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.SelectorExpr:
			walk(e.X)
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
				} else {
					walk(elt)
				}
			}
		}
	}
	walk(e)
	return out
}

// aliasPreserving reports whether assigning e to a variable can share
// the source's backing memory: plain copies, slices, composite wrappers
// and address-taking do; calls and element loads produce fresh values.
func aliasPreserving(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SliceExpr, *ast.CompositeLit, *ast.SelectorExpr:
		return true
	case *ast.ParenExpr:
		return aliasPreserving(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() == "&"
	}
	return false
}
