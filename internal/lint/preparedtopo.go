package lint

import (
	"go/ast"
	"go/types"
)

// PreparedTopo enforces the prepared-geometry contract on the query layer:
// inside a loop in internal/sql or internal/engine, a direct call into the
// topology kernel (topo.Relate, topo.RelatePattern, a named predicate
// function, or Predicate.Eval) with a loop-invariant geometry operand
// re-decomposes — and re-indexes — that operand on every iteration. The
// invariant side must be prepared once with topo.Prepare outside the loop
// and evaluated through the *topo.Prepared handle.
var PreparedTopo = &Analyzer{
	Name: "preparedtopo",
	Doc: "forbid direct topology-kernel calls (topo.Relate, topo.RelatePattern, " +
		"the named predicate functions, Predicate.Eval) with a loop-invariant " +
		"geometry operand inside internal/sql and internal/engine loops; " +
		"prepare the invariant side once with topo.Prepare and reuse it",
	Run: runPreparedTopo,
}

// preparedTopoKernels are the topology entry points whose first two
// arguments are the geometry operands.
var preparedTopoKernels = map[string]bool{
	"Relate": true, "RelatePattern": true, "Eval": true,
	"Equals": true, "Disjoint": true, "Intersects": true, "Touches": true,
	"Crosses": true, "Within": true, "Contains": true, "Overlaps": true,
	"Covers": true, "CoveredBy": true,
}

func runPreparedTopo(pass *Pass) error {
	if !pkgMatches(pass, "internal/sql", "internal/engine") {
		return nil
	}
	funcDecls(pass, func(decl *ast.FuncDecl) {
		// Walk with an explicit ancestor stack (ast.Inspect signals the
		// end of a node's children with a nil callback).
		var stack []ast.Node
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				checkPreparedTopoCall(pass, call, stack)
			}
			stack = append(stack, n)
			return true
		})
	})
	return nil
}

// checkPreparedTopoCall reports a kernel call when some enclosing loop —
// with no function-literal boundary in between, so the call genuinely runs
// per iteration — leaves one geometry operand invariant while the other
// varies.
func checkPreparedTopoCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	name, ok := topoKernelCallee(pass.TypesInfo, call)
	if !ok || len(call.Args) < 2 {
		return
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch loop := stack[i].(type) {
		case *ast.FuncLit:
			// The call runs on the closure's schedule, not the loop's.
			return
		case *ast.ForStmt, *ast.RangeStmt:
			inv0 := loopInvariant(pass.TypesInfo, call.Args[0], loop)
			inv1 := loopInvariant(pass.TypesInfo, call.Args[1], loop)
			if inv0 != inv1 {
				pass.Reportf(call.Pos(),
					"topo.%s in a loop re-decomposes its loop-invariant operand "+
						"every iteration; hoist topo.Prepare out of the loop and "+
						"evaluate through the Prepared handle (prepared-geometry "+
						"contract, DESIGN.md)", name)
				return
			}
		}
	}
}

// topoKernelCallee resolves a call to one of the kernel entry points
// declared in internal/topo (package functions and the Predicate.Eval
// method alike).
func topoKernelCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := callee(info, call)
	if obj == nil || obj.Pkg() == nil || !pathIs(obj.Pkg().Path(), "internal/topo") {
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || !preparedTopoKernels[fn.Name()] {
		return "", false
	}
	// Methods on *topo.Prepared (Relate, RelatePattern, Eval, ...) ARE
	// the sanctioned fast path; only the Predicate.Eval method is a
	// kernel entry point.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed || named.Obj().Name() != "Predicate" {
			return "", false
		}
	}
	return fn.Name(), true
}

// loopInvariant reports whether no variable used by e is declared inside
// the loop (range variables, loop-local declarations). Calls with only
// loop-external inputs are treated as invariant — a heuristic, but the
// right default for the decode-free expressions the query layer feeds the
// kernel.
func loopInvariant(info *types.Info, e ast.Expr, loop ast.Node) bool {
	inv := true
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
			inv = false
			return false
		}
		return true
	})
	return inv
}
