package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseBody parses a function body from a snippet of statements.
func parseBody(t *testing.T, stmts string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + stmts + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// reachable walks the CFG from entry and returns the set of block
// indices visited.
func reachable(cfg *CFG) map[int]bool {
	seen := map[int]bool{}
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(cfg.Entry)
	return seen
}

// callsInOrder runs a forward gen-set analysis that accumulates the
// names of called functions, and returns the sorted set reaching exit.
// It exercises Solve end to end: merge at joins is set union.
func callsReachingExit(cfg *CFG) []string {
	type set = map[string]bool
	prob := &FlowProblem{
		Forward:  true,
		Boundary: set{},
		Init:     set{},
		Transfer: func(n ast.Node, f Fact) Fact {
			out := set{}
			for k := range f.(set) {
				out[k] = true
			}
			ast.Inspect(n, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
				return true
			})
			return out
		},
		Merge: func(a, b Fact) Fact {
			out := set{}
			for k := range a.(set) {
				out[k] = true
			}
			for k := range b.(set) {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b Fact) bool {
			x, y := a.(set), b.(set)
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if !y[k] {
					return false
				}
			}
			return true
		},
	}
	res := Solve(cfg, prob)
	var names []string
	for k := range res.In[cfg.Exit.Index].(map[string]bool) {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func TestCFGStraightLine(t *testing.T) {
	cfg := NewCFG(parseBody(t, "a(); b(); c()"))
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[a b c]" {
		t.Errorf("calls reaching exit = %v, want [a b c]", got)
	}
	if len(cfg.Entry.Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3", len(cfg.Entry.Nodes))
	}
}

func TestCFGBranch(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		if cond() {
			a()
		} else {
			b()
		}
		c()`))
	// Entry must end in a two-way branch with the condition recorded.
	if cfg.Entry.Cond == nil {
		t.Fatal("entry block has no Cond")
	}
	if len(cfg.Entry.Succs) != 2 {
		t.Fatalf("branch block has %d successors, want 2", len(cfg.Entry.Succs))
	}
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[a b c cond]" {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestCFGBranchNoElse(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		if cond() {
			a()
		}
		c()`))
	// The false edge (Succs[1]) must skip a().
	head := cfg.Entry
	if len(head.Succs) != 2 {
		t.Fatalf("branch block has %d successors, want 2", len(head.Succs))
	}
	trueBlk, falseBlk := head.Succs[0], head.Succs[1]
	if len(trueBlk.Nodes) == 0 || nodeString(trueBlk.Nodes[0]) != "a" {
		t.Error("true edge does not lead to the a() body")
	}
	if falseBlk == trueBlk {
		t.Error("true and false edges lead to the same block")
	}
	for _, n := range falseBlk.Nodes {
		if nodeString(n) == "a" {
			t.Error("false edge runs the then-body")
		}
	}
}

func TestCFGLoop(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		for i := 0; i < n; i++ {
			body()
		}
		after()`))
	// The loop must contain a back edge: some block's successor has a
	// smaller index on a cycle. Check via reachability of the header
	// from the body.
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[after body]" {
		t.Errorf("calls reaching exit = %v", got)
	}
	// A conditional header exists with two successors.
	var header *Block
	for _, b := range cfg.Blocks {
		if b.Cond != nil {
			header = b
		}
	}
	if header == nil {
		t.Fatal("no conditional header block in loop CFG")
	}
	// The body path must loop back to the header.
	seen := map[int]bool{}
	var loops func(b *Block) bool
	loops = func(b *Block) bool {
		if b == header {
			return true
		}
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			if loops(s) {
				return true
			}
		}
		return false
	}
	if !loops(header.Succs[0]) {
		t.Error("loop body does not reach back to the header")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		for _, v := range xs {
			use(v)
			if bad(v) {
				continue
			}
			tail(v)
		}
		after()`))
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[after bad tail use]" {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestCFGBreak(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		for {
			if done() {
				break
			}
			body()
		}
		after()`))
	// after() must be reachable (break escapes the infinite loop).
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[after body done]" {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
	outer:
		for {
			for {
				if done() {
					break outer
				}
				inner()
			}
		}
		after()`))
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[after done inner]" {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		if err := try(); err != nil {
			return
		}
		after()`))
	// Both the early return and the fallthrough end must reach exit, so
	// exit has at least two predecessors and after() reaches it on the
	// success path only.
	if len(cfg.Exit.Preds) < 2 {
		t.Errorf("exit has %d preds, want >= 2 (early return + fallthrough)", len(cfg.Exit.Preds))
	}
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[after try]" {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestCFGReturnUnreachableTail(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		return
		dead()`))
	// dead() sits in a block with no predecessors.
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(nodeString(n), "dead") && len(b.Preds) != 0 {
				t.Errorf("unreachable statement's block has %d preds, want 0", len(b.Preds))
			}
		}
	}
}

func nodeString(n ast.Node) string {
	if es, ok := n.(*ast.ExprStmt); ok {
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

func TestCFGDefer(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		defer cleanup()
		if err := try(); err != nil {
			return
		}
		work()`))
	if len(cfg.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(cfg.Defers))
	}
	// A single Deferred block exists, every exit path flows through it,
	// and it holds the deferred call.
	var def *Block
	for _, b := range cfg.Blocks {
		if b.Deferred {
			if def != nil {
				t.Fatal("multiple deferred blocks")
			}
			def = b
		}
	}
	if def == nil {
		t.Fatal("no deferred block")
	}
	if len(cfg.Exit.Preds) != 1 || cfg.Exit.Preds[0] != def {
		t.Error("exit is not dominated by the deferred block")
	}
	// cleanup() is therefore seen on every path, including the early
	// error return.
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[cleanup try work]" {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestCFGDeferReverseOrder(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		defer first()
		defer second()
		work()`))
	var def *Block
	for _, b := range cfg.Blocks {
		if b.Deferred {
			def = b
		}
	}
	if def == nil || len(def.Nodes) != 2 {
		t.Fatalf("deferred block missing or wrong size: %+v", def)
	}
	// LIFO: second() runs before first().
	c0 := def.Nodes[0].(*ast.CallExpr).Fun.(*ast.Ident).Name
	c1 := def.Nodes[1].(*ast.CallExpr).Fun.(*ast.Ident).Name
	if c0 != "second" || c1 != "first" {
		t.Errorf("deferred calls in order [%s %s], want [second first]", c0, c1)
	}
}

func TestCFGPanicPath(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		defer cleanup()
		if bad() {
			panic("boom")
		}
		work()`))
	// The panic edge must route through the deferred block: cleanup()
	// reaches exit even on the panic path. Verify by checking that the
	// panic block's successor chain hits the Deferred block.
	var panicBlk, def *Block
	for _, b := range cfg.Blocks {
		if b.Deferred {
			def = b
		}
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						panicBlk = b
					}
				}
			}
		}
	}
	if panicBlk == nil || def == nil {
		t.Fatal("panic or deferred block not found")
	}
	found := false
	for _, s := range panicBlk.Succs {
		if s == def {
			found = true
		}
	}
	if !found {
		t.Error("panic block does not edge to the deferred block")
	}
}

func TestCFGSwitch(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		switch tag() {
		case 1:
			a()
		case 2:
			b()
			fallthrough
		case 3:
			c()
		}
		after()`))
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[a after b c tag]" {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestCFGSwitchNoDefaultSkips(t *testing.T) {
	// Without a default clause, control can skip all cases.
	cfg := NewCFG(parseBody(t, `
		switch tag() {
		case 1:
			a()
		}
		after()`))
	// Find the path from entry to exit avoiding a(): must exist.
	var hasSkip func(b *Block, seen map[int]bool) bool
	hasSkip = func(b *Block, seen map[int]bool) bool {
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		for _, n := range b.Nodes {
			if nodeString(n) == "a" {
				return false
			}
		}
		if b == cfg.Exit {
			return true
		}
		for _, s := range b.Succs {
			if hasSkip(s, seen) {
				return true
			}
		}
		return false
	}
	if !hasSkip(cfg.Entry, map[int]bool{}) {
		t.Error("no path skipping the case body; switch without default must have one")
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		switch v := x.(type) {
		case int:
			a(v)
		default:
			b(v)
		}
		after()`))
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[a after b]" {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestCFGSelect(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		select {
		case v := <-ch:
			a(v)
		default:
			b()
		}
		after()`))
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[a after b]" {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestCFGGoto(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		i := 0
	again:
		i++
		if i < 3 {
			goto again
		}
		after()`))
	if got := callsReachingExit(cfg); fmt.Sprint(got) != "[after]" {
		t.Errorf("calls reaching exit = %v", got)
	}
	// The goto creates a cycle: some reachable block must have a
	// predecessor with a larger index.
	hasBack := false
	for _, b := range cfg.Blocks {
		for _, p := range b.Preds {
			if p.Index > b.Index {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Error("goto did not create a back edge")
	}
}

// TestSolveBackwardLiveCalls checks the backward direction: a "calls
// that may still happen" analysis. After the branch, only c() is ahead;
// at entry, all are.
func TestSolveBackwardLiveCalls(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		if cond() {
			a()
		}
		c()`))
	type set = map[string]bool
	prob := &FlowProblem{
		Forward:  false,
		Boundary: set{},
		Init:     set{},
		Transfer: func(n ast.Node, f Fact) Fact {
			out := set{}
			for k := range f.(set) {
				out[k] = true
			}
			ast.Inspect(n, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						out[id.Name] = true
					}
				}
				return true
			})
			return out
		},
		Merge: func(a, b Fact) Fact {
			out := set{}
			for k := range a.(set) {
				out[k] = true
			}
			for k := range b.(set) {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b Fact) bool {
			x, y := a.(set), b.(set)
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if !y[k] {
					return false
				}
			}
			return true
		},
	}
	res := Solve(cfg, prob)
	atEntry := res.In[cfg.Entry.Index].(set)
	for _, want := range []string{"cond", "a", "c"} {
		if !atEntry[want] {
			t.Errorf("call %s not live at entry: %v", want, atEntry)
		}
	}
}

// TestSolveEdgeRefinement exploits condition outcomes: on the true edge
// of `err != nil` a fact is cleared, mimicking how pinbalance forgets a
// pin whose constructor returned an error.
func TestSolveEdgeRefinement(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		err := acquire()
		if err != nil {
			onError()
		}
		onSuccess()`))
	// Fact: whether the resource is held (bool); Edge kills it on the
	// error (true) branch.
	prob := &FlowProblem{
		Forward:  true,
		Boundary: false,
		Init:     false,
		Transfer: func(n ast.Node, f Fact) Fact {
			held := f.(bool)
			ast.Inspect(n, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "acquire" {
						held = true
					}
				}
				return true
			})
			return held
		},
		Edge: func(b *Block, succIdx int, f Fact) Fact {
			if b.Cond != nil && succIdx == 0 {
				if be, ok := b.Cond.(*ast.BinaryExpr); ok && be.Op == token.NEQ {
					return false // error branch: acquisition failed
				}
			}
			return f
		},
		Merge: func(a, b Fact) Fact { return a.(bool) || b.(bool) },
		Equal: func(a, b Fact) bool { return a.(bool) == b.(bool) },
	}
	res := Solve(cfg, prob)
	// The error-branch block (true edge of the cond block) must see
	// held == false; the join sees true (merge of true from false-edge
	// and false from error path).
	var condBlk *Block
	for _, b := range cfg.Blocks {
		if b.Cond != nil {
			condBlk = b
		}
	}
	if condBlk == nil {
		t.Fatal("no conditional block")
	}
	errBlk := condBlk.Succs[0]
	if res.In[errBlk.Index].(bool) {
		t.Error("error branch sees held=true; edge refinement did not apply")
	}
	if !res.In[cfg.Exit.Index].(bool) {
		t.Error("exit sees held=false; success path fact was lost")
	}
}

// TestSolveLoopFixpoint checks termination and correctness on a loop
// where a fact generated inside the body must propagate around the back
// edge to the header.
func TestSolveLoopFixpoint(t *testing.T) {
	cfg := NewCFG(parseBody(t, `
		for i := 0; i < n; i++ {
			gen()
		}
		after()`))
	got := callsReachingExit(cfg)
	if fmt.Sprint(got) != "[after gen]" {
		t.Errorf("calls reaching exit = %v", got)
	}
}
