package lint

import (
	"go/ast"
	"go/types"
)

// inspectShallow walks n like ast.Inspect but does not descend into
// function literals: a closure's body has its own control flow and is
// analyzed as its own function, so its statements must not leak into
// the enclosing function's dataflow facts.
//
// When n itself is a range statement it also skips the loop body: the
// CFG places the RangeStmt node in the loop header (it binds the
// iteration variables), while the body's statements live in their own
// blocks — walking into the body here would replay every statement of
// the loop against the header's fact.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	var skip ast.Node
	if rs, ok := n.(*ast.RangeStmt); ok {
		skip = rs.Body
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m != nil && m == skip {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// funcBodies yields every function body in the package: declarations
// and function literals alike, each presented as an independent unit of
// control flow. name is the declaration's name, with ".func" appended
// per level of literal nesting.
func funcBodies(pass *Pass, fn func(name string, body *ast.BlockStmt)) {
	funcDecls(pass, func(decl *ast.FuncDecl) {
		fn(decl.Name.Name, decl.Body)
		var walkLits func(n ast.Node, name string)
		walkLits = func(n ast.Node, name string) {
			ast.Inspect(n, func(m ast.Node) bool {
				if lit, ok := m.(*ast.FuncLit); ok && m != n {
					fn(name+".func", lit.Body)
					walkLits(lit.Body, name+".func")
					return false
				}
				return true
			})
		}
		walkLits(decl.Body, decl.Name.Name)
	})
}

// poolMethodCall reports whether call invokes the named method on
// *storage.BufferPool and, if so, returns the resolved selector.
func poolMethodCall(info *types.Info, call *ast.CallExpr, method string) (*ast.SelectorExpr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	obj := callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	if !isNamedType(sig.Recv().Type(), fn.Pkg().Path(), "BufferPool") || !pathIs(fn.Pkg().Path(), "internal/storage") {
		return nil, false
	}
	return sel, true
}

// pageKey names one pinned page within a function: the printed pool
// expression plus the printed page-id argument, so h.pool.Pin(pid) and
// h.pool.Unpin(pid, true) refer to the same page while two different
// ids stay distinct.
func pageKey(sel *ast.SelectorExpr, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return types.ExprString(sel.X) + "|?"
	}
	return types.ExprString(sel.X) + "|" + types.ExprString(call.Args[0])
}

// condNilCheck recognizes `x != nil` and `x == nil` conditions over a
// plain identifier and returns the identifier's object plus whether the
// operator is !=.
func condNilCheck(info *types.Info, cond ast.Expr) (types.Object, bool, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil, false, false
	}
	op := be.Op.String()
	if op != "!=" && op != "==" {
		return nil, false, false
	}
	var idExpr, other ast.Expr = be.X, be.Y
	if isNilIdent(be.X) {
		idExpr, other = be.Y, be.X
	}
	if !isNilIdent(other) {
		return nil, false, false
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil, false, false
	}
	return obj, op == "!=", true
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
