// Package lint is jackpinevet's analysis framework: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface on top of
// the standard library's go/ast, go/types and go/importer. It exists because
// the project's hard-won invariants — lazy decoding on scan paths, explicit
// float comparison semantics, lock discipline, context propagation, error
// wrapping — are exactly the properties that regress silently under refactors,
// and `go vet` has no opinion about any of them.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. Diagnostics can be suppressed, with a mandatory justification,
// by a //lint:allow directive (see allow.go). The cmd/jackpinevet multichecker
// runs every registered analyzer over the module and exits non-zero on any
// unsuppressed diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Exactly one of Run and
// RunModule must be set: Run for per-package analyses, RunModule for
// whole-module analyses whose facts only make sense across package
// boundaries (e.g. a lock-acquisition graph).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant: what is
	// flagged and why the project cares.
	Doc string

	// Run inspects a single package and reports findings via pass.Reportf.
	Run func(pass *Pass) error

	// RunModule inspects every loaded package at once. It runs exactly
	// once per lint.Run invocation, after the per-package analyzers.
	RunModule func(pass *ModulePass) error
}

// Package is a parsed and type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries a module analyzer's view of every loaded package.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos, resolved through pkg's FileSet
// (packages loaded under different build-tag variants may carry
// distinct FileSets).
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one analyzer finding, located in the source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Run executes the analyzers over the packages, applies //lint:allow
// suppression, and returns the surviving diagnostics ordered by position.
// Per-package analyzers see one package at a time; module analyzers run
// once over the whole set, after them. Identical diagnostics are
// deduplicated, so a package loaded under several build-tag variants
// reports each finding in its shared files once.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	// The allow set spans all packages: module analyzers report across
	// package boundaries, and a directive's file name locates it fully.
	allows := newAllowSet()
	var all []Diagnostic
	seenAllowDiag := make(map[Diagnostic]bool)
	for _, pkg := range pkgs {
		for _, d := range collectAllows(pkg, allows) {
			if !seenAllowDiag[d] {
				seenAllowDiag[d] = true
				all = append(all, d)
			}
		}
	}
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Analyzer: a, Pkgs: pkgs, diags: &raw}
		if err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	seen := make(map[Diagnostic]bool, len(raw))
	for _, d := range allows.filter(raw) {
		if seen[d] {
			continue
		}
		seen[d] = true
		all = append(all, d)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers rely on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// TypeCheck parses nothing itself; it type-checks already-parsed files into
// a Package using the supplied importer. Shared by the module loader and the
// fixture loader.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
