package lint

import (
	"go/ast"
	"go/types"
)

// ArenaEscape guards the batch executor's arena lifetime convention
// (PR 6): geometries decoded through geom.UnmarshalWKBArena or
// storage.ColBatch.ColArena borrow coordinate storage from the batch's
// CoordArena, which is reset wholesale when the next batch begins. An
// arena-backed value that is stored somewhere outliving the batch — a
// struct field, a map or slice reachable from a field or package
// variable, a channel — becomes a dangling view of recycled memory:
// the coordinates silently change under the holder.
//
// The analysis is a forward, flow-sensitive taint propagation over each
// function's CFG. Sources are the two arena decoders; taint flows
// through assignments, composite literals and call results (a call with
// a tainted argument is assumed to return a tainted view, which is what
// storage.NewGeom does). Reported sinks are stores into fields, into
// indexed or mapped locations rooted at a field or package variable,
// into package variables, and channel sends. Stores into locations the
// batch itself owns stay legal: b.Row(s)[col] = v (the row base is a
// call result) and plain locals are batch-scoped by construction, and
// returning a tainted value is the caller's decision — ColArena itself
// must return one.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc: "flag arena-backed geometry values (UnmarshalWKBArena, ColArena) " +
		"stored into fields, maps, slices or channels that outlive the " +
		"batch (internal/sql, internal/storage, internal/engine): the " +
		"arena is recycled at the next batch and the stored view dangles",
	Run: runArenaEscape,
}

func runArenaEscape(pass *Pass) error {
	if !pkgMatches(pass, "internal/sql", "internal/storage", "internal/engine") {
		return nil
	}
	funcBodies(pass, func(name string, body *ast.BlockStmt) {
		checkArenaEscape(pass, body)
	})
	return nil
}

// taintFact is the set of currently arena-tainted local objects.
type taintFact map[types.Object]bool

func checkArenaEscape(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Fast pre-filter: no arena source in the body, nothing to track.
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isArenaSource(info, call) {
			found = true
		}
		return !found
	})
	if !found {
		return
	}

	cfg := NewCFG(body)
	prob := &FlowProblem{
		Forward:  true,
		Boundary: taintFact{},
		Init:     taintFact{},
		Transfer: func(n ast.Node, f Fact) Fact { return taintTransfer(info, n, f.(taintFact)) },
		Merge: func(a, b Fact) Fact {
			x, y := a.(taintFact), b.(taintFact)
			out := make(taintFact, len(x)+len(y))
			for k := range x {
				out[k] = true
			}
			for k := range y {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b Fact) bool {
			x, y := a.(taintFact), b.(taintFact)
			if len(x) != len(y) {
				return false
			}
			for k := range x {
				if !y[k] {
					return false
				}
			}
			return true
		},
	}
	res := Solve(cfg, prob)

	for _, b := range cfg.Blocks {
		f := res.In[b.Index].(taintFact)
		for _, n := range b.Nodes {
			reportEscapes(pass, n, f)
			f = taintTransfer(info, n, f)
		}
	}
}

// isArenaSource reports whether call produces an arena-backed value.
func isArenaSource(info *types.Info, call *ast.CallExpr) bool {
	obj := callee(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Name() == "UnmarshalWKBArena" && pathIs(obj.Pkg().Path(), "internal/geom"):
		return true
	case obj.Name() == "ColArena" && pathIs(obj.Pkg().Path(), "internal/storage"):
		return true
	}
	return false
}

// taintedExpr reports whether evaluating e can yield an arena view.
func taintedExpr(info *types.Info, e ast.Expr, f taintFact) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && f[obj]
	case *ast.ParenExpr:
		return taintedExpr(info, e.X, f)
	case *ast.UnaryExpr:
		return taintedExpr(info, e.X, f)
	case *ast.StarExpr:
		return taintedExpr(info, e.X, f)
	case *ast.BinaryExpr:
		return taintedExpr(info, e.X, f) || taintedExpr(info, e.Y, f)
	case *ast.IndexExpr:
		return taintedExpr(info, e.X, f)
	case *ast.SliceExpr:
		return taintedExpr(info, e.X, f)
	case *ast.SelectorExpr:
		return taintedExpr(info, e.X, f)
	case *ast.TypeAssertExpr:
		return taintedExpr(info, e.X, f)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if taintedExpr(info, elt, f) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if isArenaSource(info, e) {
			return true
		}
		// A call is assumed to pass taint through to its result:
		// storage.NewGeom wraps the arena view without copying.
		for _, arg := range e.Args {
			if taintedExpr(info, arg, f) {
				return true
			}
		}
		return false
	}
	return false
}

// taintTransfer propagates taint through one statement.
func taintTransfer(info *types.Info, n ast.Node, f taintFact) taintFact {
	out := f
	copied := false
	set := func(obj types.Object, tainted bool) {
		if obj == nil || out[obj] == tainted {
			return
		}
		if !copied {
			cp := make(taintFact, len(out)+1)
			for k := range out {
				cp[k] = true
			}
			out = cp
			copied = true
		}
		if tainted {
			out[obj] = true
		} else {
			delete(out, obj)
		}
	}
	objOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	inspectShallow(n, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch {
		case len(as.Lhs) == len(as.Rhs):
			for i, lhs := range as.Lhs {
				set(objOf(lhs), taintedExpr(info, as.Rhs[i], f))
			}
		case len(as.Rhs) == 1:
			// Multi-value call: the first result carries the value for
			// both arena decoders (Value, error) / (Geometry, error).
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				tainted := taintedExpr(info, call, f)
				for i, lhs := range as.Lhs {
					set(objOf(lhs), tainted && i == 0)
				}
			}
		}
		return true
	})
	return out
}

// reportEscapes flags sinks in n given the taint fact before it.
func reportEscapes(pass *Pass, n ast.Node, f taintFact) {
	info := pass.TypesInfo
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			if len(m.Lhs) != len(m.Rhs) {
				return true
			}
			for i, lhs := range m.Lhs {
				if !taintedExpr(info, m.Rhs[i], f) {
					continue
				}
				if where := escapeSink(pass, lhs); where != "" {
					pass.Reportf(m.Pos(),
						"arena-backed geometry stored into %s, which outlives the batch: "+
							"the CoordArena is recycled at the next batch and this value dangles", where)
				}
			}
		case *ast.SendStmt:
			if taintedExpr(info, m.Value, f) {
				pass.Reportf(m.Pos(),
					"arena-backed geometry sent on a channel: the receiver can hold it "+
						"past the batch that owns the CoordArena")
			}
		}
		return true
	})
}

// escapeSink classifies an assignment target that outlives the batch,
// returning a description, or "" for batch-scoped targets.
func escapeSink(pass *Pass, lhs ast.Expr) string {
	info := pass.TypesInfo
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return "field " + types.ExprString(lhs)
		}
		// Qualified package-var store (pkg.Var = v).
		if v, ok := info.Uses[lhs.Sel].(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return "package variable " + types.ExprString(lhs)
		}
	case *ast.Ident:
		if v, ok := info.Uses[lhs].(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return "package variable " + lhs.Name
		}
	case *ast.IndexExpr:
		base := ast.Unparen(lhs.X)
		if _, ok := base.(*ast.CallExpr); ok {
			// b.Row(s)[col] = v: the row storage belongs to the batch.
			return ""
		}
		if root := indexRootDescription(pass, base); root != "" {
			return root + " " + types.ExprString(lhs.X)
		}
	}
	return ""
}

// indexRootDescription walks an index/selector chain and classifies its
// root: a struct field or package variable outlives the batch, a local
// does not.
func indexRootDescription(pass *Pass, e ast.Expr) string {
	info := pass.TypesInfo
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return "field-held container"
			}
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return "package-level container"
			}
			return ""
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return "package-level container"
			}
			return ""
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return ""
		}
	}
}
