package lint_test

import (
	"testing"

	"jackpine/internal/lint"
)

// TestLoadPackages exercises the go list -export loader end to end against
// the real module: the loaded package must come back type-checked with
// selection info populated, which is what every analyzer depends on.
func TestLoadPackages(t *testing.T) {
	pkgs, err := lint.LoadPackages("../..", "./internal/geom")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "jackpine/internal/geom" {
		t.Errorf("path = %q, want jackpine/internal/geom", pkg.Path)
	}
	if pkg.Types == nil || !pkg.Types.Complete() {
		t.Error("package not fully type-checked")
	}
	if len(pkg.TypesInfo.Uses) == 0 || len(pkg.TypesInfo.Selections) == 0 {
		t.Error("types info not populated")
	}
	if len(pkg.Files) == 0 {
		t.Error("no syntax loaded")
	}
}
