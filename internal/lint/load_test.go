package lint_test

import (
	"testing"

	"jackpine/internal/lint"
)

// TestLoadPackages exercises the go list -export loader end to end against
// the real module: the loaded package must come back type-checked with
// selection info populated, which is what every analyzer depends on.
func TestLoadPackages(t *testing.T) {
	pkgs, err := lint.LoadPackages("../..", "./internal/geom")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "jackpine/internal/geom" {
		t.Errorf("path = %q, want jackpine/internal/geom", pkg.Path)
	}
	if pkg.Types == nil || !pkg.Types.Complete() {
		t.Error("package not fully type-checked")
	}
	if len(pkg.TypesInfo.Uses) == 0 || len(pkg.TypesInfo.Selections) == 0 {
		t.Error("types info not populated")
	}
	if len(pkg.Files) == 0 {
		t.Error("no syntax loaded")
	}
}

// TestLoadPackagesSharedUniverse pins that in-module dependencies are
// type-checked from source into the same universe as their importers:
// an object used in one package must be the identical types.Object that
// the defining package declares, which is what module-wide analyzers
// (call graphs, lock-order) rely on.
func TestLoadPackagesSharedUniverse(t *testing.T) {
	pkgs, err := lint.LoadPackages("../..", "./internal/geom", "./internal/topo")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	byPath := map[string]*lint.Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	geom := byPath["jackpine/internal/geom"]
	topo := byPath["jackpine/internal/topo"]
	if geom == nil || topo == nil {
		t.Fatalf("missing packages, got %v", byPath)
	}
	// topo imports geom; the import must be the very same *types.Package.
	for _, imp := range topo.Types.Imports() {
		if imp.Path() == "jackpine/internal/geom" && imp != geom.Types {
			t.Error("topo's geom import is a different types.Package than geom's own")
		}
	}
}

// TestLoadPackagesTagVariants checks that a package whose files are
// gated on a custom build tag is loaded once per variant: the base
// configuration plus one package per custom tag whose file set differs.
func TestLoadPackagesTagVariants(t *testing.T) {
	pkgs, err := lint.LoadPackages("testdata/tagmod", "./...")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) != 2 {
		for _, p := range pkgs {
			t.Logf("loaded %s", p.Path)
		}
		t.Fatalf("loaded %d packages, want 2 (base + fastpath variant)", len(pkgs))
	}
	// Exactly one variant must contain the tag-gated declaration.
	withFast := 0
	for _, p := range pkgs {
		if p.Path != "tagmod" {
			t.Errorf("unexpected package path %q", p.Path)
		}
		if p.Types.Scope().Lookup("fastModeName") != nil {
			withFast++
		}
		// Both variants must still carry the shared file's symbol.
		if p.Types.Scope().Lookup("Describe") == nil {
			t.Error("variant lost the shared Describe declaration")
		}
	}
	if withFast != 1 {
		t.Errorf("%d variants define fastModeName, want exactly 1", withFast)
	}
}
