package lint_test

import (
	"testing"

	"jackpine/internal/lint"
	"jackpine/internal/lint/linttest"
)

func TestBatchAlloc(t *testing.T) {
	linttest.Run(t, "testdata", lint.BatchAlloc,
		"ba/internal/sql", "ba/internal/storage")
}

func TestHotPathDecode(t *testing.T) {
	linttest.Run(t, "testdata", lint.HotPathDecode,
		"hp/internal/sql", "hp/internal/index/rtree")
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, "testdata", lint.FloatCmp, "fc/internal/topo")
}

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockDiscipline, "ld/internal/engine")
}

func TestCtxPropagate(t *testing.T) {
	linttest.Run(t, "testdata", lint.CtxPropagate,
		"cp/internal/wire", "cp/internal/cluster")
}

func TestErrWrap(t *testing.T) {
	linttest.Run(t, "testdata", lint.ErrWrap, "ew/internal/wire")
}

func TestPreparedTopo(t *testing.T) {
	linttest.Run(t, "testdata", lint.PreparedTopo,
		"pt/internal/sql", "pt/internal/engine")
}

func TestSyncErr(t *testing.T) {
	linttest.Run(t, "testdata", lint.SyncErr,
		"se/internal/storage", "se/internal/storage/wal")
}

func TestPinBalance(t *testing.T) {
	linttest.Run(t, "testdata", lint.PinBalance, "pb/internal/storage")
}

func TestWalWrite(t *testing.T) {
	linttest.Run(t, "testdata", lint.WalWrite, "ww/internal/storage")
}

func TestArenaEscape(t *testing.T) {
	linttest.Run(t, "testdata", lint.ArenaEscape, "ae/internal/sql")
}

func TestLockOrder(t *testing.T) {
	linttest.RunModule(t, "testdata", lint.LockOrder,
		"lo/internal/engine", "lo/internal/wal")
}

// TestLockOrderGraph pins the full deterministic edge dump behind the
// jackpinevet -lockgraph flag: the interface-dispatch edges from the
// engine, the wal-internal cycle, and nothing from the goroutine,
// conditional-lock, or same-class patterns.
func TestLockOrderGraph(t *testing.T) {
	pkgs := linttest.Packages(t, "testdata", "lo/internal/engine", "lo/internal/wal")
	got := lint.LockGraph(pkgs)
	want := []string{
		"engine.Engine.mu -> wal.WAL.mu",
		"engine.Engine.mu -> wal.WAL.syncMu",
		"wal.WAL.mu -> wal.WAL.syncMu",
		"wal.WAL.syncMu -> wal.WAL.mu",
	}
	if len(got) != len(want) {
		t.Fatalf("lock graph = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("lock graph[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestAnalyzersScopeOut pins that analyzers stay silent on packages outside
// their scope: the fixture trees are full of each other's violations, but an
// analyzer must only speak inside the package set its invariant covers.
func TestAnalyzersScopeOut(t *testing.T) {
	cases := []struct {
		a   *lint.Analyzer
		pkg string
	}{
		{lint.BatchAlloc, "fc/internal/topo"},
		{lint.BatchAlloc, "hp/internal/sql"}, // in-scope package, no batch kernels
		{lint.FloatCmp, "hp/internal/sql"},
		{lint.HotPathDecode, "fc/internal/topo"},
		{lint.CtxPropagate, "ld/internal/engine"},
		{lint.ErrWrap, "fc/internal/topo"},
		{lint.PreparedTopo, "pt/internal/topo"},
		{lint.SyncErr, "se/internal/wire"},
		{lint.PinBalance, "ww/internal/wire"},
		{lint.WalWrite, "ww/internal/wire"},
		{lint.ArenaEscape, "ae/internal/wire"},
	}
	for _, c := range cases {
		if diags := linttest.Diagnostics(t, "testdata", c.a, c.pkg); len(diags) > 0 {
			t.Errorf("%s on %s: expected silence, got %v", c.a.Name, c.pkg, diags)
		}
	}
}
