package lint_test

import (
	"testing"

	"jackpine/internal/lint"
	"jackpine/internal/lint/linttest"
)

func TestBatchAlloc(t *testing.T) {
	linttest.Run(t, "testdata", lint.BatchAlloc,
		"ba/internal/sql", "ba/internal/storage")
}

func TestHotPathDecode(t *testing.T) {
	linttest.Run(t, "testdata", lint.HotPathDecode,
		"hp/internal/sql", "hp/internal/index/rtree")
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, "testdata", lint.FloatCmp, "fc/internal/topo")
}

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, "testdata", lint.LockDiscipline, "ld/internal/engine")
}

func TestCtxPropagate(t *testing.T) {
	linttest.Run(t, "testdata", lint.CtxPropagate,
		"cp/internal/wire", "cp/internal/cluster")
}

func TestErrWrap(t *testing.T) {
	linttest.Run(t, "testdata", lint.ErrWrap, "ew/internal/wire")
}

func TestPreparedTopo(t *testing.T) {
	linttest.Run(t, "testdata", lint.PreparedTopo,
		"pt/internal/sql", "pt/internal/engine")
}

func TestSyncErr(t *testing.T) {
	linttest.Run(t, "testdata", lint.SyncErr,
		"se/internal/storage", "se/internal/storage/wal")
}

// TestAnalyzersScopeOut pins that analyzers stay silent on packages outside
// their scope: the fixture trees are full of each other's violations, but an
// analyzer must only speak inside the package set its invariant covers.
func TestAnalyzersScopeOut(t *testing.T) {
	cases := []struct {
		a   *lint.Analyzer
		pkg string
	}{
		{lint.BatchAlloc, "fc/internal/topo"},
		{lint.BatchAlloc, "hp/internal/sql"}, // in-scope package, no batch kernels
		{lint.FloatCmp, "hp/internal/sql"},
		{lint.HotPathDecode, "fc/internal/topo"},
		{lint.CtxPropagate, "ld/internal/engine"},
		{lint.ErrWrap, "fc/internal/topo"},
		{lint.PreparedTopo, "pt/internal/topo"},
		{lint.SyncErr, "se/internal/wire"},
	}
	for _, c := range cases {
		if diags := linttest.Diagnostics(t, "testdata", c.a, c.pkg); len(diags) > 0 {
			t.Errorf("%s on %s: expected silence, got %v", c.a.Name, c.pkg, diags)
		}
	}
}
