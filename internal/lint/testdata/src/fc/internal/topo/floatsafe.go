// floatsafe.go is the sanctioned home for raw float comparisons; the
// analyzer exempts it by file name.
package topo

func exactEq(a, b float64) bool { return a == b }

func epsEq(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}
