// Fixture for the floatcmp analyzer: the package path ends in internal/topo.
package topo

func exactZero(w float64) bool {
	return w == 0 // want `floating-point == comparison`
}

func notEqual(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

func converted(a float64, n int) bool {
	return float64(n) == a // want `floating-point == comparison`
}

func narrow(a, b float32) bool {
	return a == b // want `floating-point == comparison`
}

func both(w, h float64) bool {
	return w == 0 || h != 0 // want `floating-point == comparison` `floating-point != comparison`
}

func ints(a, b int) bool { return a == b }

func ordered(a, b float64) bool { return a < b || a >= b }

func allowed(a, b float64) bool {
	return a == b //lint:allow floatcmp operands are copies of the same literal; exact equality intended
}
