// Package errors is a hermetic fixture stub matched by import path.
package errors

type stubError struct{ s string }

func (e *stubError) Error() string { return e.s }

func New(text string) error { return &stubError{s: text} }
