// Fixture for the syncerr analyzer: the package path ends in
// internal/storage, the layer whose file handles carry durable writes.
package storage

import "os"

func dropStatement(f *os.File) {
	f.Close() // want `os.File.Close discards its error`
}

func dropSync(f *os.File) {
	f.Sync() // want `os.File.Sync discards its error`
}

func dropDeferred(f *os.File) {
	defer f.Close() // want `deferred os.File.Close discards its error`
}

func dropGo(f *os.File) {
	go f.Sync() // want `go-spawned os.File.Sync discards its error`
}

func dropBlank(f *os.File) {
	_ = f.Close() // want `blank-assigned os.File.Close discards its error`
}

func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func allowed(f *os.File) {
	f.Close() //lint:allow syncerr error-path cleanup; nothing durable went through this handle
}

type fakeConn struct{}

func (fakeConn) Close() error { return nil }

func notAFile(c fakeConn) {
	c.Close() // not an os.File: out of scope
}
