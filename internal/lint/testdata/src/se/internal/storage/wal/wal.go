// Fixture for the syncerr analyzer: packages below internal/storage
// (the write-ahead log) are in scope too.
package wal

import "os"

func rotateDrop(old *os.File) {
	old.Close() // want `os.File.Close discards its error`
}
