// Fixture for the syncerr scope check: internal/wire is outside the
// durability layer, so the same discards must stay silent — network
// handles have their own close discipline.
package wire

import "os"

func dropOutOfScope(f *os.File) {
	f.Close()
	defer f.Sync()
}
