// Fixture for the ctxpropagate analyzer: the package path ends in
// internal/cluster, the scatter-gather layer.
package cluster

import "context"

type router struct{}

func (r *router) scatter(ctx context.Context, shards int) {
	for i := 0; i < shards; i++ {
		r.send(context.TODO(), i) // want `context.TODO\(\) drops the incoming context; propagate ctx`
	}
}

func (r *router) send(ctx context.Context, shard int) {}

func (r *router) gather(ctx context.Context, shards int) {
	for i := 0; i < shards; i++ {
		r.send(ctx, i)
	}
}
