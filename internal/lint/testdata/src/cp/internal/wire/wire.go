// Fixture for the ctxpropagate analyzer: the package path ends in
// internal/wire.
package wire

import (
	"context"
	"net"
)

func dialPlain(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // want `net.Dial dials without a context`
}

func dialDeadline(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5000) // want `net.DialTimeout dials without a context`
}

func dialCtx(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

func refresh(ctx context.Context) {
	_ = context.Background() // want `context.Background\(\) drops the incoming context; propagate ctx`
	_ = context.TODO()       // want `context.TODO\(\) drops the incoming context; propagate ctx`
	_ = ctx
}

func boundary() {
	// No incoming context: creating the root here is the legitimate pattern.
	_ = context.Background()
}

func allowed(ctx context.Context) {
	_ = context.Background() //lint:allow ctxpropagate detached audit logging must outlive the request
	_ = ctx
}
