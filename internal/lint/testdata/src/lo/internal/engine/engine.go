// Fixture for the lockorder analyzer, engine side: the Logger calls
// dispatch through an interface that only the wal package's WAL
// implements, so the engine.mu -> wal.WAL.* edges exist only if
// class-hierarchy resolution works. None of the engine-side patterns
// below may create an edge of their own.
package engine

import "sync"

type Logger interface {
	Append(rec []byte)
}

type Engine struct {
	mu  sync.Mutex
	log Logger
	n   int
}

var globalMu sync.Mutex

// interface dispatch while holding e.mu: orders engine.Engine.mu before
// everything WAL.Append (transitively) acquires.
func (e *Engine) Exec(rec []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
	e.log.Append(rec)
}

// a goroutine spawned while holding e.mu does not inherit the caller's
// held set: no ordering edge.
func (e *Engine) Spawn() {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		e.log.Append(nil)
	}()
}

// a conditionally taken lock is not must-held at the join: no
// globalMu -> engine.Engine.mu edge.
func (e *Engine) CondLock(b bool) {
	if b {
		globalMu.Lock()
	}
	e.mu.Lock()
	e.mu.Unlock()
	if b {
		globalMu.Unlock()
	}
}

type Pool struct {
	mu sync.Mutex
}

// two instances of the same lock class: self-edges are iteration over
// shards, not an ordering violation.
func Drain(a, b *Pool) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
