// Fixture for the lockorder analyzer: Append takes mu before syncMu,
// Rotate takes syncMu before mu — the classic two-lock deadlock.
package wal

import "sync"

type WAL struct {
	mu     sync.Mutex
	syncMu sync.Mutex
	seq    int
}

func (w *WAL) Append(rec []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	w.syncMu.Lock() // want `potential deadlock: lock-order cycle wal\.WAL\.mu -> wal\.WAL\.syncMu -> wal\.WAL\.mu`
	w.syncMu.Unlock()
}

func (w *WAL) Rotate() {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	w.mu.Unlock()
}
