// Package fmt is a hermetic fixture stub matched by import path.
package fmt

type stubError struct{ s string }

func (e *stubError) Error() string { return e.s }

func Errorf(format string, a ...any) error { return &stubError{s: format} }

func Sprintf(format string, a ...any) string { return format }
