// Fixture for the pinbalance analyzer: the package path ends in
// internal/storage, and BufferPool is declared here so pool method
// calls resolve to a type named BufferPool in an internal/storage
// package, exactly as in the real tree.
package storage

type BufferPool struct {
	frames map[uint32][]byte
}

func (p *BufferPool) Pin(id uint32) ([]byte, error) { return p.frames[id], nil }

func (p *BufferPool) Unpin(id uint32, dirty bool) {}

var errEmpty error

// balanced pin/unpin on the single path: fine.
func readPage(p *BufferPool, id uint32) byte {
	buf, err := p.Pin(id)
	if err != nil {
		return 0
	}
	b := buf[0]
	p.Unpin(id, false)
	return b
}

// the deferred Unpin runs on every exit, panics included: fine.
func deferredUnpin(p *BufferPool, id uint32) (byte, error) {
	buf, err := p.Pin(id)
	if err != nil {
		return 0, err
	}
	defer p.Unpin(id, false)
	if len(buf) == 0 {
		return 0, errEmpty
	}
	return buf[0], nil
}

// pin and unpin inside a loop body stay balanced across iterations.
func scanPages(p *BufferPool, n uint32) int {
	total := 0
	for pid := uint32(0); pid < n; pid++ {
		buf, err := p.Pin(pid)
		if err != nil {
			return total
		}
		total += len(buf)
		p.Unpin(pid, false)
	}
	return total
}

// no path ever unpins: the frame is wedged for the process lifetime.
func leakAlways(p *BufferPool, id uint32) int {
	buf, _ := p.Pin(id) // want `page pinned here is never unpinned`
	return len(buf)
}

// the empty-page return leaks; the error return does not (the pin
// never happened when err != nil).
func leakSomePaths(p *BufferPool, id uint32) (byte, error) {
	buf, err := p.Pin(id) // want `page pinned here is unpinned on only some paths`
	if err != nil {
		return 0, err
	}
	if len(buf) == 0 {
		return 0, errEmpty
	}
	b := buf[0]
	p.Unpin(id, false)
	return b, nil
}

// the second Unpin underflows the frame's reference count.
func doubleUnpin(p *BufferPool, id uint32) int {
	buf, err := p.Pin(id)
	if err != nil {
		return 0
	}
	n := len(buf)
	p.Unpin(id, false)
	p.Unpin(id, false) // want `already unpinned on every path reaching this Unpin`
	return n
}

// the closure owns the release: cross-function balance is out of
// intra-procedural reach, so the page is dropped from tracking.
func closureRelease(p *BufferPool, id uint32) func() {
	buf, err := p.Pin(id)
	if err != nil {
		return nil
	}
	_ = buf
	return func() { p.Unpin(id, false) }
}
