// Package context is a hermetic fixture stub matched by import path.
package context

type Context interface {
	Done() <-chan struct{}
}

type emptyCtx struct{}

func (emptyCtx) Done() <-chan struct{} { return nil }

func Background() Context { return emptyCtx{} }
func TODO() Context       { return emptyCtx{} }
