// Fixture for the lockdiscipline analyzer: the package path ends in
// internal/engine, so mu-guarded field access is checked, and the
// WaitGroup-in-goroutine check applies as everywhere.
package engine

import "sync"

type Engine struct {
	name string // declared above mu: unguarded

	mu     sync.RWMutex
	tables map[string]int
	epoch  int
}

func (e *Engine) Lookup(name string) int {
	return e.tables[name] // want `read of Engine.tables \(guarded by mu.*\) without e.mu.RLock held`
}

func (e *Engine) LookupLocked(name string) int {
	return e.tables[name] // exempt: the Locked suffix documents the caller holds e.mu
}

func (e *Engine) Set(name string, v int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	e.tables[name] = v // want `write of Engine.tables \(guarded by mu.*\) without e.mu.Lock held`
}

func (e *Engine) Bump() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epoch++
}

func (e *Engine) Get(name string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tables[name]
}

func (e *Engine) Name() string { return e.name }

func (e *Engine) Catalog() map[string]int {
	return e.tables //lint:allow lockdiscipline called with e.mu held by Exec (documented lock order)
}

func (e *Engine) Drop(name string) {
	delete(e.tables, name) // want `read of Engine.tables \(guarded by mu.*\) without e.mu.RLock held`
}

type conn struct {
	mu   sync.Mutex
	next int
}

func (c *conn) bump() {
	c.next++ // want `write of conn.next \(guarded by mu.*\) without c.mu.Lock held`
}

func (c *conn) bumpSafe() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
}

func fanOutBad(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want `sync.WaitGroup.Add inside the goroutine it waits on`
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func fanOutGood(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var inner sync.WaitGroup
			inner.Add(1) // local to this goroutine: fine
			inner.Done()
			inner.Wait()
		}()
	}
	wg.Wait()
}
