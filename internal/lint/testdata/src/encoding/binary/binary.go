// Package binary is a hermetic fixture stub: walwrite matches Put*
// stores by the import path "encoding/binary", so fixtures type-check
// against this instead of the real standard library.
package binary

type littleEndian struct{}

var LittleEndian littleEndian

func (littleEndian) PutUint16(b []byte, v uint16) {}
func (littleEndian) PutUint32(b []byte, v uint32) {}
func (littleEndian) PutUint64(b []byte, v uint64) {}
func (littleEndian) Uint16(b []byte) uint16       { return 0 }
func (littleEndian) Uint32(b []byte) uint32       { return 0 }
func (littleEndian) Uint64(b []byte) uint64       { return 0 }
