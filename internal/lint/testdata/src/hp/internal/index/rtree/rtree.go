// Fixture for hotpathdecode: every function in an internal/index package is
// a build path, hot regardless of name.
package rtree

import "jackpine/internal/geom"

func New(wkbs [][]byte) {
	for _, w := range wkbs {
		_, _ = geom.UnmarshalWKB(w) // want `hot path New calls UnmarshalWKB`
	}
}

func bounds(wkbs [][]byte) {
	for _, w := range wkbs {
		_, _ = geom.EnvelopeWKB(w) // sanctioned: envelopes come off the bytes
	}
}
