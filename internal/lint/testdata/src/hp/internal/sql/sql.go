// Fixture for the hotpathdecode analyzer: the package path ends in
// internal/sql, so functions whose names match the hot-path regexp must not
// call the decode entry points.
package sql

import (
	"jackpine/internal/geom"
	"jackpine/internal/storage"
)

// scanTable matches the hot-path name set: decoding here is a violation.
func scanTable(wkb, tuple []byte) {
	g, _ := geom.UnmarshalWKB(wkb) // want `hot path scanTable calls UnmarshalWKB`
	_ = g
	vals, _ := storage.DecodeTuple(tuple, 3) // want `hot path scanTable calls DecodeTuple`
	_ = vals
	env, _ := geom.EnvelopeWKB(wkb) // sanctioned header walk
	_ = env
	var lt storage.LazyTuple
	_ = lt.Reset(tuple, 3) // sanctioned lazy view
}

// refineSpatial is hot; a decode hidden in a closure is still a violation.
func refineSpatial(rows [][]byte) {
	emit := func(row []byte) {
		_ = geom.MustParseWKT("POINT(1 1)") // want `hot path refineSpatial calls MustParseWKT`
	}
	for _, r := range rows {
		emit(r)
	}
}

// runShardAggregate exercises another hot-path name.
func runShardAggregate(s string) {
	_, _ = geom.ParseWKT(s) // want `hot path runShardAggregate calls ParseWKT`
}

// coerce is plan-time coercion, not a scan loop: decoding is legitimate.
func coerce(s string) {
	_, _ = geom.ParseWKT(s)
}

// scanSeed shows an allow directive with its mandatory justification.
func scanSeed(s string) {
	_, _ = geom.ParseWKT(s) //lint:allow hotpathdecode one-off probe parse at plan time, not per row
}
