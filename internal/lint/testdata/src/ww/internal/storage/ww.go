// Fixture for the walwrite analyzer: every function pins a page,
// mutates (or not), and releases it; the analyzer must flag exactly the
// mutations that can reach Unpin(id, false).
package storage

import "encoding/binary"

type BufferPool struct {
	frames map[uint32][]byte
}

func (p *BufferPool) Pin(id uint32) ([]byte, error) { return p.frames[id], nil }

func (p *BufferPool) Unpin(id uint32, dirty bool) {}

func SetPageLSN(b []byte, lsn uint64) {}

type page struct {
	data []byte
}

func (pg page) insert(v byte) {
	pg.data[0] = v
}

func initPage(b []byte) {
	b[0] = 1
}

// mutation released with a hard false dirty flag: lost on eviction.
func undirtied(p *BufferPool, id uint32) {
	buf, err := p.Pin(id)
	if err != nil {
		return
	}
	buf[0] = 1 // want `write to pinned page id reaches Unpin\(\.\., false\)`
	p.Unpin(id, false)
}

// same mutation, correctly marked dirty.
func dirtied(p *BufferPool, id uint32) {
	buf, err := p.Pin(id)
	if err != nil {
		return
	}
	buf[0] = 1
	p.Unpin(id, true)
}

// reads never need the dirty flag.
func readOnly(p *BufferPool, id uint32) byte {
	buf, err := p.Pin(id)
	if err != nil {
		return 0
	}
	b := buf[0]
	p.Unpin(id, false)
	return b
}

// encoding/binary stores are mutations of the destination slice.
func binaryHeader(p *BufferPool, id uint32) {
	buf, err := p.Pin(id)
	if err != nil {
		return
	}
	binary.LittleEndian.PutUint32(buf[4:], 7) // want `write to pinned page id reaches Unpin\(\.\., false\)`
	p.Unpin(id, false)
}

// the helper writes through its parameter; the summary fixpoint makes
// the call site a mutation of buf.
func viaHelper(p *BufferPool, id uint32) {
	buf, err := p.Pin(id)
	if err != nil {
		return
	}
	initPage(buf) // want `write to pinned page id reaches Unpin\(\.\., false\)`
	p.Unpin(id, false)
}

// page{buf} shares buf's backing array; insert writes through the
// receiver, so the wrapper call mutates the pinned frame.
func viaWrapper(p *BufferPool, id uint32) {
	buf, err := p.Pin(id)
	if err != nil {
		return
	}
	pg := page{data: buf}
	pg.insert(9) // want `write to pinned page id reaches Unpin\(\.\., false\)`
	p.Unpin(id, false)
}

// same wrapper, dirty release: fine.
func viaWrapperDirty(p *BufferPool, id uint32) {
	buf, err := p.Pin(id)
	if err != nil {
		return
	}
	pg := page{data: buf}
	pg.insert(9)
	p.Unpin(id, true)
}

// one path releases clean: the must-analysis poisons the merge.
func cleanOnSomePath(p *BufferPool, id uint32, flush bool) {
	buf, err := p.Pin(id)
	if err != nil {
		return
	}
	buf[0] = 1 // want `write to pinned page id reaches Unpin\(\.\., false\)`
	if flush {
		p.Unpin(id, true)
		return
	}
	p.Unpin(id, false)
}

// a data-dependent dirty flag is trusted: only the literal false is
// provably clean.
func dynamicFlag(p *BufferPool, id uint32, wrote bool) {
	buf, err := p.Pin(id)
	if err != nil {
		return
	}
	buf[0] = 1
	p.Unpin(id, wrote)
}

// stamping the page LSN is a mutation like any other.
func lsnOnly(p *BufferPool, id uint32) {
	buf, err := p.Pin(id)
	if err != nil {
		return
	}
	SetPageLSN(buf, 42) // want `write to pinned page id reaches Unpin\(\.\., false\)`
	p.Unpin(id, false)
}
