// Out-of-scope fixture shared by the pinbalance and walwrite scope
// tests: this package leaks a pin and loses a write, but its path does
// not end in internal/storage or internal/engine, so both analyzers
// must stay silent.
package wire

import "ww/internal/storage"

func leakAndLose(p *storage.BufferPool, id uint32) {
	buf, err := p.Pin(id)
	if err != nil {
		return
	}
	buf[0] = 1
	p.Unpin(id, false)
	buf2, _ := p.Pin(id + 1)
	_ = buf2
}
