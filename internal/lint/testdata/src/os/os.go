// Package os is a hermetic fixture stub: the syncerr analyzer matches
// the *os.File methods by the import path "os", so fixtures type-check
// against this instead of the real standard library.
package os

type File struct{ name string }

func Open(name string) (*File, error)   { return &File{name}, nil }
func Create(name string) (*File, error) { return &File{name}, nil }

func (f *File) Close() error { return nil }
func (f *File) Sync() error  { return nil }
func (f *File) Name() string { return f.name }
