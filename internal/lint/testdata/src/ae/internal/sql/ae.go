// Fixture for the arenaescape analyzer: arena-backed geometries may
// live inside the batch (locals, batch rows, return values) but must
// not be stored anywhere that outlives it.
package sql

import (
	"ae/internal/storage"
	"jackpine/internal/geom"
)

type cache struct {
	last  geom.Geometry
	geoms []geom.Geometry
}

var lastGeom geom.Geometry

func wrap(g geom.Geometry) geom.Geometry { return g }

// struct fields outlive the batch.
func fieldStore(c *cache, data []byte, a *geom.CoordArena) {
	g, err := geom.UnmarshalWKBArena(data, a)
	if err != nil {
		return
	}
	c.last = g // want `arena-backed geometry stored into field c\.last`
}

// package variables outlive everything.
func pkgVarStore(data []byte, a *geom.CoordArena) {
	g, _ := geom.UnmarshalWKBArena(data, a)
	lastGeom = g // want `arena-backed geometry stored into package variable lastGeom`
}

// a slice reachable from a field is as durable as the field.
func sliceStore(c *cache, b *storage.ColBatch, a *geom.CoordArena) {
	g, _ := b.ColArena(0, a)
	c.geoms[0] = g // want `arena-backed geometry stored into field-held container c\.geoms`
}

// the receiver can hold a channel message past the batch.
func chanSend(ch chan geom.Geometry, data []byte, a *geom.CoordArena) {
	g, _ := geom.UnmarshalWKBArena(data, a)
	ch <- g // want `arena-backed geometry sent on a channel`
}

// taint survives pass-through calls: wrap returns a view of its
// argument, as storage.NewGeom does.
func wrappedStore(c *cache, data []byte, a *geom.CoordArena) {
	g, _ := geom.UnmarshalWKBArena(data, a)
	v := wrap(g)
	c.last = v // want `arena-backed geometry stored into field c\.last`
}

// locals and returns are batch-scoped: the caller decides what to do.
func localOK(data []byte, a *geom.CoordArena) geom.Geometry {
	g, _ := geom.UnmarshalWKBArena(data, a)
	tmp := g
	return tmp
}

type rowBatch struct {
	rows [][]geom.Geometry
}

func (b *rowBatch) Row(i int) []geom.Geometry { return b.rows[i] }

// batch row storage is owned by the batch itself: b.Row(s)[col] = v is
// the executor's calibrated write pattern and stays legal.
func rowStoreOK(b *rowBatch, s, col int, data []byte, a *geom.CoordArena) {
	g, _ := geom.UnmarshalWKBArena(data, a)
	b.Row(s)[col] = g
}

// reassigning from a non-arena decoder clears the taint: the heap copy
// may be retained freely.
func retainedCopyOK(c *cache, data []byte, a *geom.CoordArena) {
	g, _ := geom.UnmarshalWKBArena(data, a)
	g, _ = geom.UnmarshalWKB(data)
	c.last = g
}
