// Hermetic stub for the arenaescape fixtures: ColArena is matched by a
// package path ending in internal/storage, mirroring the real
// storage.ColBatch decoder.
package storage

import "jackpine/internal/geom"

type ColBatch struct{}

func (b *ColBatch) ColArena(col int, a *geom.CoordArena) (geom.Geometry, error) {
	return nil, nil
}
