// Out-of-scope fixture for the arenaescape scope test: a wire-layer
// package may cache whatever it likes — the analyzer's invariant only
// covers the sql, storage and engine layers.
package wire

import "jackpine/internal/geom"

type session struct {
	last geom.Geometry
}

func record(s *session, data []byte, a *geom.CoordArena) {
	g, _ := geom.UnmarshalWKBArena(data, a)
	s.last = g
}
