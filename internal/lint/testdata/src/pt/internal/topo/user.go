// Fixture for preparedtopo's scope: this package path ends in
// internal/topo, not internal/sql or internal/engine, so the kernel is
// free to call itself in loops (that's what the kernel's own tests and
// internals do). The analyzer must stay silent here.
package topo

import (
	"jackpine/internal/geom"
	realtopo "jackpine/internal/topo"
)

// crossCheck would be a violation inside internal/sql.
func crossCheck(window geom.Geometry, rows []geom.Geometry) int {
	n := 0
	for _, row := range rows {
		if realtopo.Intersects(window, row) {
			n++
		}
	}
	return n
}
