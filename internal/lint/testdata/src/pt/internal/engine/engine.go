// Fixture for the preparedtopo analyzer: internal/engine is inside the
// analyzer's scope too.
package engine

import (
	"jackpine/internal/geom"
	"jackpine/internal/topo"
)

// filterLayer refines rows against a fixed viewport per iteration:
// violation.
func filterLayer(viewport geom.Geometry, layer []geom.Geometry) []geom.Geometry {
	var hits []geom.Geometry
	for _, g := range layer {
		if topo.Contains(viewport, g) { // want `topo.Contains in a loop`
			hits = append(hits, g)
		}
	}
	return hits
}

// filterPrepared is the sanctioned shape.
func filterPrepared(viewport geom.Geometry, layer []geom.Geometry) []geom.Geometry {
	p := topo.Prepare(viewport)
	var hits []geom.Geometry
	for _, g := range layer {
		if p.Eval(topo.PredIntersects, g) {
			hits = append(hits, g)
		}
	}
	return hits
}
