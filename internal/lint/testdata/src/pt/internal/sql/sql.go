// Fixture for the preparedtopo analyzer: the package path ends in
// internal/sql, so a direct topology-kernel call inside a loop with one
// loop-invariant geometry operand is a violation.
package sql

import (
	"jackpine/internal/geom"
	"jackpine/internal/topo"
)

// refineRows re-decomposes the constant window on every row: violation.
func refineRows(window geom.Geometry, rows []geom.Geometry) int {
	n := 0
	for _, row := range rows {
		if topo.Intersects(window, row) { // want `topo.Intersects in a loop`
			n++
		}
	}
	return n
}

// relateMatrix is a violation regardless of operand order.
func relateMatrix(rows []geom.Geometry, region geom.Geometry) []topo.Matrix {
	var out []topo.Matrix
	for i := 0; i < len(rows); i++ {
		out = append(out, topo.Relate(rows[i], region)) // want `topo.Relate in a loop`
	}
	return out
}

// evalPredicate flags the Predicate.Eval method form too.
func evalPredicate(pred topo.Predicate, window geom.Geometry, rows []geom.Geometry) int {
	n := 0
	for _, row := range rows {
		if pred.Eval(window, row) { // want `topo.Eval in a loop`
			n++
		}
	}
	return n
}

// patternScan flags ST_RELATE-style pattern matching.
func patternScan(rows []geom.Geometry, region geom.Geometry, pat string) int {
	n := 0
	for _, row := range rows {
		if topo.RelatePattern(region, row, pat) { // want `topo.RelatePattern in a loop`
			n++
		}
	}
	return n
}

// nestedJoin fixes the outer row across the inner scan — exactly the
// shape the per-outer-row preparation exists for: violation.
func nestedJoin(as, bs []geom.Geometry) int {
	n := 0
	for _, a := range as {
		for _, b := range bs {
			if topo.Intersects(a, b) { // want `topo.Intersects in a loop`
				n++
			}
		}
	}
	return n
}

// preparedScan is the sanctioned shape: prepare once, evaluate per row
// through the Prepared handle.
func preparedScan(window geom.Geometry, rows []geom.Geometry, pat string) int {
	p := topo.Prepare(window)
	n := 0
	for _, row := range rows {
		if p.Intersects(row) {
			n++
		}
		if p.RelatePattern(row, pat) {
			n++
		}
		if p.Eval(topo.PredIntersects, row) {
			n++
		}
	}
	return n
}

// pairwise varies both operands per iteration: nothing to prepare.
func pairwise(as, bs []geom.Geometry) int {
	n := 0
	for i := range as {
		if topo.Intersects(as[i], bs[i]) {
			n++
		}
	}
	return n
}

// hoisted evaluates loop-external operands only; the whole call is
// invariant, which is not this analyzer's concern.
func hoisted(a, b geom.Geometry, k int) int {
	n := 0
	for i := 0; i < k; i++ {
		if topo.Intersects(a, b) {
			n++
		}
	}
	return n
}

// deferredEval builds closures in the loop; the call runs on the
// closure's schedule, not the loop's.
func deferredEval(window geom.Geometry, rows []geom.Geometry) []func() bool {
	var fs []func() bool
	for _, row := range rows {
		row := row
		fs = append(fs, func() bool { return topo.Intersects(window, row) })
	}
	return fs
}

// probeOnce shows an allow directive with its mandatory justification.
func probeOnce(window geom.Geometry, rows []geom.Geometry) int {
	for _, row := range rows {
		if topo.Covers(window, row) { //lint:allow preparedtopo one-shot support probe, loop exits on first hit
			return 1
		}
	}
	return 0
}
