// Package topo is a hermetic fixture stub: preparedtopo matches the
// kernel entry points by a package path ending in internal/topo, so
// fixtures import this stub instead of the real kernel.
package topo

import "jackpine/internal/geom"

type Matrix [9]int8

type Predicate int

const PredIntersects Predicate = 2

func (p Predicate) Eval(a, b geom.Geometry) bool { return false }

func Relate(a, b geom.Geometry) Matrix                { return Matrix{} }
func RelatePattern(a, b geom.Geometry, p string) bool { return false }
func Intersects(a, b geom.Geometry) bool              { return false }
func Contains(a, b geom.Geometry) bool                { return false }
func Covers(a, b geom.Geometry) bool                  { return false }

type Prepared struct{}

func Prepare(g geom.Geometry) *Prepared { return &Prepared{} }

func (p *Prepared) Relate(b geom.Geometry) Matrix                  { return Matrix{} }
func (p *Prepared) RelatePattern(b geom.Geometry, pat string) bool { return false }
func (p *Prepared) Eval(pred Predicate, b geom.Geometry) bool      { return false }
func (p *Prepared) Intersects(b geom.Geometry) bool                { return false }
