// Package geom is a hermetic fixture stub: hotpathdecode matches the decode
// entry points by a package path ending in internal/geom, so fixtures import
// this stub instead of the real kernel.
package geom

type Geometry interface {
	GeomType() int
}

type point struct{}

func (point) GeomType() int { return 1 }

type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

type CoordArena struct{}

func UnmarshalWKB(data []byte) (Geometry, error) { return point{}, nil }
func UnmarshalWKBArena(data []byte, a *CoordArena) (Geometry, error) {
	return point{}, nil
}
func ParseWKT(s string) (Geometry, error)   { return point{}, nil }
func MustParseWKT(s string) Geometry        { return point{} }
func EnvelopeWKB(data []byte) (Rect, error) { return Rect{}, nil }
