// Package storage is a hermetic fixture stub: hotpathdecode matches
// DecodeTuple by a package path ending in internal/storage.
package storage

import "jackpine/internal/geom"

type Value struct {
	Int  int64
	Geom geom.Geometry
}

func DecodeTuple(data []byte, n int) ([]Value, error) { return make([]Value, n), nil }

type LazyTuple struct {
	data []byte
}

func (lt *LazyTuple) Reset(data []byte, n int) error { lt.data = data; return nil }
func (lt *LazyTuple) GeomWKB(i int) []byte           { return lt.data }
func (lt *LazyTuple) GeomEnvelope(i int) (geom.Rect, bool, error) {
	return geom.Rect{}, true, nil
}
