// Package net is a hermetic fixture stub matched by import path.
package net

import "context"

type Conn interface {
	Close() error
}

func Dial(network, address string) (Conn, error)                { return nil, nil }
func DialTimeout(network, address string, ms int) (Conn, error) { return nil, nil }

type Dialer struct{}

func (d *Dialer) DialContext(ctx context.Context, network, address string) (Conn, error) {
	return nil, nil
}
