// Fixture for the batchalloc analyzer: internal/storage is in scope,
// and ColBatch methods are kernels via the receiver type.
package storage

type Value struct{ Int int64 }

type ColBatch struct {
	Sel  []int
	rows []Value
}

// FilterWindow grows the struct-held selection vector: amortized across
// batches, sanctioned.
func (b *ColBatch) FilterWindow(n int) {
	b.Sel = b.Sel[:0]
	for i := 0; i < n; i++ {
		b.Sel = append(b.Sel, i)
	}
}

// Materialize allocates one row per slot: the violation batching exists
// to remove.
func (b *ColBatch) Materialize(n, width int) [][]Value {
	var out [][]Value
	for i := 0; i < n; i++ {
		row := make([]Value, width) // want `batch kernel Materialize calls make inside its per-element loop`
		out = append(out, row)
	}
	return out
}

// resetRows sizes the backing once, outside any loop: sanctioned.
func (b *ColBatch) resetRows(n, width int) {
	if cap(b.rows) < n*width {
		b.rows = make([]Value, n*width)
	}
	b.rows = b.rows[:n*width]
}
