// Fixture for the batchalloc analyzer: the package path ends in
// internal/sql, so functions matching the batch naming convention (by
// name or by receiver type) must not heap-allocate inside their loops.
package sql

import "jackpine/internal/geom"

// batchExec is a batch type: every method is a kernel via the receiver.
type batchExec struct {
	slots []int
	geoms []geom.Geometry
	arena geom.CoordArena
}

// runBatchFilter is a kernel by function name.
func runBatchFilter(wkbs [][]byte) {
	for _, w := range wkbs {
		buf := make([]byte, len(w)) // want `batch kernel runBatchFilter calls make inside its per-element loop`
		copy(buf, w)
		g, _ := geom.UnmarshalWKB(w) // want `batch kernel runBatchFilter calls UnmarshalWKB inside its per-element loop`
		_ = g
	}
}

// refill is a kernel via the batchExec receiver: a fresh slice per
// element is a violation, reuse of struct-held scratch is sanctioned,
// and the arena decoder is the sanctioned decode.
func (ex *batchExec) refill(rows [][]byte) {
	out := ex.slots[:0]
	for i, r := range rows {
		fresh := append([]int(nil), i) // want `batch kernel refill builds a fresh slice with append inside its per-element loop`
		_ = fresh
		out = append(out, i)
		g, _ := geom.UnmarshalWKBArena(r, &ex.arena)
		ex.geoms = append(ex.geoms, g)
	}
	ex.slots = out
}

// emitBatch hides the allocation in a closure whose body sits inside
// the loop: still once per element, still a violation.
func emitBatch(rows [][]byte, emit func([]byte)) {
	for _, r := range rows {
		func() {
			emit(append([]byte(nil), r...)) // sanctioned: append result not bound to a new variable is beyond this check
			row := make([]byte, len(r))     // want `batch kernel emitBatch calls make inside its per-element loop`
			emit(row)
		}()
	}
}

// growBatch allocates before the loop: sanctioned grow-once pattern.
func growBatch(n int) []int {
	buf := make([]int, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// seedBatch shows the allow directive with its mandatory justification.
func seedBatch(rows [][]byte) [][]byte {
	var out [][]byte
	for _, r := range rows {
		cp := make([]byte, len(r)) //lint:allow batchalloc rows escape the recycled batch, the copy is the point
		copy(cp, r)
		out = append(out, cp)
	}
	return out
}

// perRowEval has no batch in its name or receiver: out of scope even
// though it allocates and decodes per element.
func perRowEval(rows [][]byte) {
	for _, r := range rows {
		_, _ = geom.UnmarshalWKB(r)
		_ = make([]byte, 1)
	}
}

// pbsmState is a PBSM type: every method is a kernel via the receiver.
type pbsmState struct {
	ids []int64
}

// sweepCell is a kernel by name (the PBSM plane-sweep convention).
func sweepCell(minX []float64, la, lb []int32) {
	for _, a := range la {
		for _, b := range lb {
			pair := make([]int32, 2) // want `batch kernel sweepCell calls make inside its per-element loop`
			pair[0], pair[1] = a, b
			_ = minX[a]
		}
	}
}

// buildPBSM is a kernel by name: fresh per-cell slices are violations,
// appends into pre-declared buffers are the sanctioned pattern.
func buildPBSM(cells [][]int32) []int64 {
	var out []int64
	for _, c := range cells {
		local := append([]int64(nil), int64(len(c))) // want `batch kernel buildPBSM builds a fresh slice with append inside its per-element loop`
		_ = local
		out = append(out, int64(len(c)))
	}
	return out
}

// linear is a kernel via the pbsmState receiver.
func (st *pbsmState) linear(n int) []int64 {
	var ids []int64
	for i := 0; i < n; i++ {
		ids = append(ids, st.ids[i%len(st.ids)])
	}
	return ids
}

// scanPBSMEmit shows the allow directive on rows that must escape.
func scanPBSMEmit(rows [][]int64, emit func([]int64)) {
	for _, r := range rows {
		full := make([]int64, len(r)) //lint:allow batchalloc emitted rows escape the probe
		copy(full, r)
		emit(full)
	}
}
