// Fixture for the batchalloc analyzer: the package path ends in
// internal/sql, so functions matching the batch naming convention (by
// name or by receiver type) must not heap-allocate inside their loops.
package sql

import "jackpine/internal/geom"

// batchExec is a batch type: every method is a kernel via the receiver.
type batchExec struct {
	slots []int
	geoms []geom.Geometry
	arena geom.CoordArena
}

// runBatchFilter is a kernel by function name.
func runBatchFilter(wkbs [][]byte) {
	for _, w := range wkbs {
		buf := make([]byte, len(w)) // want `batch kernel runBatchFilter calls make inside its per-element loop`
		copy(buf, w)
		g, _ := geom.UnmarshalWKB(w) // want `batch kernel runBatchFilter calls UnmarshalWKB inside its per-element loop`
		_ = g
	}
}

// refill is a kernel via the batchExec receiver: a fresh slice per
// element is a violation, reuse of struct-held scratch is sanctioned,
// and the arena decoder is the sanctioned decode.
func (ex *batchExec) refill(rows [][]byte) {
	out := ex.slots[:0]
	for i, r := range rows {
		fresh := append([]int(nil), i) // want `batch kernel refill builds a fresh slice with append inside its per-element loop`
		_ = fresh
		out = append(out, i)
		g, _ := geom.UnmarshalWKBArena(r, &ex.arena)
		ex.geoms = append(ex.geoms, g)
	}
	ex.slots = out
}

// emitBatch hides the allocation in a closure whose body sits inside
// the loop: still once per element, still a violation.
func emitBatch(rows [][]byte, emit func([]byte)) {
	for _, r := range rows {
		func() {
			emit(append([]byte(nil), r...)) // sanctioned: append result not bound to a new variable is beyond this check
			row := make([]byte, len(r))     // want `batch kernel emitBatch calls make inside its per-element loop`
			emit(row)
		}()
	}
}

// growBatch allocates before the loop: sanctioned grow-once pattern.
func growBatch(n int) []int {
	buf := make([]int, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// seedBatch shows the allow directive with its mandatory justification.
func seedBatch(rows [][]byte) [][]byte {
	var out [][]byte
	for _, r := range rows {
		cp := make([]byte, len(r)) //lint:allow batchalloc rows escape the recycled batch, the copy is the point
		copy(cp, r)
		out = append(out, cp)
	}
	return out
}

// perRowEval has no batch in its name or receiver: out of scope even
// though it allocates and decodes per element.
func perRowEval(rows [][]byte) {
	for _, r := range rows {
		_, _ = geom.UnmarshalWKB(r)
		_ = make([]byte, 1)
	}
}
