// Fixture for the errwrap analyzer: the package path ends in internal/wire,
// one of the layers whose errors cross package boundaries.
package wire

import (
	"errors"
	"fmt"
)

func wrapV(err error) error {
	return fmt.Errorf("wire: read frame: %v", err) // want `error interpolated with %v loses the chain`
}

func wrapS(err error) error {
	return fmt.Errorf("wire: %s: handshake", err) // want `error interpolated with %s loses the chain`
}

func wrapW(err error) error {
	return fmt.Errorf("wire: read frame: %w", err)
}

func wrapIndexed(err error) error {
	return fmt.Errorf("wire: %[1]v", err) // want `error interpolated with %v loses the chain`
}

func wrapStar(n int, err error) error {
	return fmt.Errorf("wire: %*d %v", n, 7, err) // want `error interpolated with %v loses the chain`
}

func swallowNew(err error) error {
	return errors.New("wire: " + err.Error()) // want `err.Error\(\) swallows the error chain`
}

func swallowf(err error) error {
	return fmt.Errorf("wire: %s", err.Error()) // want `err.Error\(\) swallows the error chain`
}

type frameErr struct{ msg string }

func (e *frameErr) Error() string { return e.msg }

func wrapCustom(e *frameErr) error {
	return fmt.Errorf("wire: %v", e) // want `error interpolated with %v loses the chain`
}

func plain(n int) error {
	return fmt.Errorf("wire: bad frame length %d", n)
}

func dynamic(format string, err error) error {
	return fmt.Errorf(format, err) // non-constant format: left to go vet
}

func allowed(err error) error {
	return fmt.Errorf("wire: %v", err) //lint:allow errwrap message is pinned by a wire-compat test; chain intentionally cut
}
