// Package sync is a hermetic fixture stub: the analyzers match mutex and
// WaitGroup types by the import path "sync", so fixtures type-check against
// this instead of the real standard library.
package sync

type Mutex struct{ locked bool }

func (m *Mutex) Lock()   { m.locked = true }
func (m *Mutex) Unlock() { m.locked = false }

type RWMutex struct{ locked bool }

func (m *RWMutex) Lock()    { m.locked = true }
func (m *RWMutex) Unlock()  { m.locked = false }
func (m *RWMutex) RLock()   { m.locked = true }
func (m *RWMutex) RUnlock() { m.locked = false }

type WaitGroup struct{ n int }

func (w *WaitGroup) Add(delta int) { w.n += delta }
func (w *WaitGroup) Done()         { w.n-- }
func (w *WaitGroup) Wait()         {}
