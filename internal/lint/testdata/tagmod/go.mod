module tagmod

go 1.24
