// Package tagmod is a loader fixture: the Mode function is provided by
// one of two build-tag-gated files, mirroring the race_enabled/
// race_disabled pattern at the repository root. The loader must surface
// both variants so analyzers do not silently skip the disabled one.
package tagmod

// Describe is shared between both tag variants.
func Describe() string {
	return "mode: " + Mode()
}
