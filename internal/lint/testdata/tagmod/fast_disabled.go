//go:build !fastpath

package tagmod

// Mode reports the fastpath configuration.
func Mode() string {
	return "slow"
}
