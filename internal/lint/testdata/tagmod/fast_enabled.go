//go:build fastpath

package tagmod

// Mode reports the fastpath configuration.
func Mode() string {
	return fastModeName()
}

// fastModeName exists only under the fastpath tag, so an analyzer that
// never sees this variant would miss any finding inside it.
func fastModeName() string {
	return "fast"
}
