package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePkg type-checks a single in-memory file into a Package (no imports).
func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := TypeCheck(fset, "p", []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// lineReporter flags every line containing a marker comment, standing in
// for a real analyzer so the allow machinery can be tested in isolation.
var lineReporter = &Analyzer{
	Name: "marker",
	Doc:  "test analyzer: reports on every expression statement",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if es, ok := n.(*ast.ExprStmt); ok {
					pass.Reportf(es.Pos(), "marked")
				}
				return true
			})
		}
		return nil
	},
}

func TestAllowSuppression(t *testing.T) {
	pkg := parsePkg(t, `package p

func f() {
	print(1) //lint:allow marker trailing directives suppress their own line
	print(2)
	//lint:allow marker directives on their own line suppress the next one
	print(3)
	print(4) //lint:allow other a different analyzer's allow does not apply
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, d.Pos.Line)
	}
	// print(2) on line 5 and print(4) on line 8 must survive.
	if len(lines) != 2 || lines[0] != 5 || lines[1] != 8 {
		t.Fatalf("surviving diagnostic lines = %v, want [5 8]", lines)
	}
}

func TestAllowFileSuppression(t *testing.T) {
	pkg := parsePkg(t, `package p

//lint:allow-file marker the whole file deliberately relaxes this invariant

func f() {
	print(1)
	print(2)
}

func g() {
	print(3) //lint:allow other a different analyzer still reports here
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("file-scoped allow left diagnostics: %v", diags)
	}
}

func TestAllowFileRequiresJustification(t *testing.T) {
	pkg := parsePkg(t, `package p

//lint:allow-file marker

func f() {
	print(1)
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Analyzer+": "+d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "allow: lint:allow marker needs a justification") {
		t.Errorf("missing justification diagnostic, got:\n%s", joined)
	}
	if !strings.Contains(joined, "marker: marked") {
		t.Errorf("bare allow-file suppressed the diagnostics anyway, got:\n%s", joined)
	}
}

func TestAllowRequiresJustification(t *testing.T) {
	pkg := parsePkg(t, `package p

func f() {
	//lint:allow marker
	print(1)
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{lineReporter})
	if err != nil {
		t.Fatal(err)
	}
	// The bare directive must not suppress, and must itself be reported.
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Analyzer+": "+d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "allow: lint:allow marker needs a justification") {
		t.Errorf("missing justification diagnostic, got:\n%s", joined)
	}
	if !strings.Contains(joined, "marker: marked") {
		t.Errorf("bare allow suppressed the diagnostic anyway, got:\n%s", joined)
	}
}

func TestParseVerbs(t *testing.T) {
	cases := []struct {
		format string
		want   []verb
	}{
		{"plain", nil},
		{"%d", []verb{{'d', 0}}},
		{"%v %w", []verb{{'v', 0}, {'w', 1}}},
		{"100%% %s", []verb{{'s', 0}}},
		{"%[2]v %[1]s", []verb{{'v', 1}, {'s', 0}}},
		{"%*d %v", []verb{{'d', 1}, {'v', 2}}},
		{"%.2f %+q", []verb{{'f', 0}, {'q', 1}}},
		{"%.*f", []verb{{'f', 1}}},
	}
	for _, c := range cases {
		got := parseVerbs(c.format)
		if len(got) != len(c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseVerbs(%q)[%d] = %v, want %v", c.format, i, got[i], c.want[i])
			}
		}
	}
}

func TestPathMatching(t *testing.T) {
	if !pathIs("jackpine/internal/geom", "internal/geom") {
		t.Error("suffix at segment boundary should match")
	}
	if pathIs("jackpine/internal/biogeom", "internal/geom") {
		t.Error("mid-segment suffix must not match")
	}
	if !pathIs("internal/geom", "internal/geom") {
		t.Error("exact path should match")
	}
	if !pathUnder("jackpine/internal/index/rtree", "internal/index") {
		t.Error("subpackage should be under the tree")
	}
	if !pathUnder("jackpine/internal/index", "internal/index") {
		t.Error("the tree root itself should match")
	}
	if pathUnder("jackpine/internal/indexer", "internal/index") {
		t.Error("sibling with shared prefix must not match")
	}
}
