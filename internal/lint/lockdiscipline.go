package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockDiscipline enforces the project's mutex conventions on the engine,
// cluster and wire layers:
//
//  1. Fields declared below a `mu sync.Mutex` / `mu sync.RWMutex` field are
//     guarded by it (the standard Go struct-layout convention, which these
//     packages follow). A function that reads a guarded field must take the
//     same receiver's mu.RLock or mu.Lock first; a write requires mu.Lock.
//     Functions whose name ends in "Locked" document that the caller holds
//     the lock and are exempt; call sites that are safe for a subtler reason
//     (e.g. the engine catalog methods, which Exec calls with e.mu held)
//     carry a //lint:allow with the justification.
//
//  2. sync.WaitGroup.Add must not run inside the goroutine being waited on:
//     Wait can observe the counter before Add runs, returning early. This
//     check applies in every package.
//
// The check is intra-procedural and positional (a lock call must appear
// before the access in the same function body), which is exactly the shape
// of the code these packages commit to: lock at the top, defer unlock.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "flag access to mu-guarded struct fields without the documented " +
		"read/write lock held (internal/engine, internal/cluster, " +
		"internal/wire), and sync.WaitGroup.Add inside the goroutine it " +
		"waits on (everywhere)",
	Run: runLockDiscipline,
}

// guardInfo describes one mu-guarded field.
type guardInfo struct {
	structName string
	rw         bool // guarded by an RWMutex (RLock is enough for reads)
}

func runLockDiscipline(pass *Pass) error {
	checkGuards := pkgMatches(pass, "internal/engine", "internal/cluster", "internal/wire")
	guarded, muFields := collectGuardedFields(pass)
	funcDecls(pass, func(decl *ast.FuncDecl) {
		checkWaitGroupAdd(pass, decl)
		if !checkGuards || strings.HasSuffix(decl.Name.Name, "Locked") {
			return
		}
		checkGuardedAccess(pass, decl, guarded, muFields)
	})
	return nil
}

// collectGuardedFields finds every struct type in the package that contains
// a sync mutex field named mu and records the fields declared after it.
func collectGuardedFields(pass *Pass) (map[*types.Var]guardInfo, map[*types.Var]bool) {
	guarded := make(map[*types.Var]guardInfo)
	muFields := make(map[*types.Var]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var mu *types.Var
		var rw bool
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if mu == nil {
				if f.Name() == "mu" && isSyncMutex(f.Type()) {
					mu = f
					rw = isNamedType(f.Type(), "sync", "RWMutex")
					muFields[f] = true
				}
				continue
			}
			guarded[f] = guardInfo{structName: tn.Name(), rw: rw}
		}
	}
	return guarded, muFields
}

func isSyncMutex(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// lockEvent is one mu.Lock()/mu.RLock() call inside a function body.
type lockEvent struct {
	base  string // printed receiver expression, e.g. "e" or "cn.c"
	pos   int    // byte offset for before/after ordering
	write bool   // Lock (vs RLock)
}

// checkGuardedAccess reports guarded-field accesses in decl that are not
// preceded by a matching lock acquisition on the same receiver expression.
func checkGuardedAccess(pass *Pass, decl *ast.FuncDecl, guarded map[*types.Var]guardInfo, muFields map[*types.Var]bool) {
	info := pass.TypesInfo

	// First pass: collect lock acquisitions.
	var locks []lockEvent
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fsel, ok := info.Selections[muSel]
		if !ok || fsel.Kind() != types.FieldVal {
			return true
		}
		fvar, ok := fsel.Obj().(*types.Var)
		if !ok || !muFields[fvar] {
			return true
		}
		locks = append(locks, lockEvent{
			base:  types.ExprString(muSel.X),
			pos:   int(call.Pos()),
			write: sel.Sel.Name == "Lock",
		})
		return true
	})

	// Second pass: check every guarded-field selector.
	var stack []ast.Node
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fsel, ok := info.Selections[sel]
		if !ok || fsel.Kind() != types.FieldVal {
			return true
		}
		fvar, ok := fsel.Obj().(*types.Var)
		if !ok {
			return true
		}
		gi, ok := guarded[fvar]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		write := isWriteContext(stack)
		held := false
		for _, l := range locks {
			if l.base != base || l.pos >= int(sel.Pos()) {
				continue
			}
			if !write || l.write {
				held = true
				break
			}
		}
		if held {
			return true
		}
		verb := "read"
		need := base + ".mu.Lock"
		if !write && gi.rw {
			need = base + ".mu.RLock"
		}
		if write {
			verb = "write"
		}
		pass.Reportf(sel.Pos(),
			"%s of %s.%s (guarded by mu: fields below a mu field are mu-guarded) without %s held; "+
				"acquire it first or suffix the function name with Locked",
			verb, gi.structName, fvar.Name(), need)
		return true
	})
}

// isWriteContext reports whether the node on top of the stack is written:
// it (or a selector/index chain containing it) appears on the left side of
// an assignment, under ++/--, or has its address taken.
func isWriteContext(stack []ast.Node) bool {
	child := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == child
		case *ast.UnaryExpr:
			if p.Op.String() == "&" && p.X == child {
				return true
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.ParenExpr, *ast.StarExpr:
			// Keep climbing through the access chain.
		default:
			return false
		}
		child = stack[i]
	}
	return false
}

// checkWaitGroupAdd flags wg.Add calls inside a goroutine when wg is
// declared outside that goroutine's function literal.
func checkWaitGroupAdd(pass *Pass, decl *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Add" {
				return true
			}
			recv := info.TypeOf(sel.X)
			if recv == nil || !isNamedType(recv, "sync", "WaitGroup") {
				return true
			}
			if declaredWithin(info, sel.X, lit) {
				return true
			}
			pass.Reportf(call.Pos(),
				"sync.WaitGroup.Add inside the goroutine it waits on races with Wait; "+
					"call Add before the go statement")
			return true
		})
		return true
	})
}

// declaredWithin reports whether the root identifier of expr is declared
// inside lit's body (a WaitGroup local to the goroutine is fine to Add to).
func declaredWithin(info *types.Info, expr ast.Expr, lit *ast.FuncLit) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false // field selector or other chain: defined outside
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && lit.Pos() <= obj.Pos() && obj.Pos() < lit.End()
}
