package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathIs reports whether a package import path matches pat at a path-segment
// boundary, e.g. pathIs("jackpine/internal/geom", "internal/geom"). Matching
// by suffix keeps the analyzers independent of the module name, which lets
// the testdata fixtures mirror real package layouts.
func pathIs(path, pat string) bool {
	return path == pat || strings.HasSuffix(path, "/"+pat)
}

// pathUnder reports whether path is pat itself or any package below it.
func pathUnder(path, pat string) bool {
	return pathIs(path, pat) || strings.Contains(path+"/", "/"+pat+"/")
}

// pkgMatches reports whether the pass's package matches any pattern.
func pkgMatches(pass *Pass, pats ...string) bool {
	for _, p := range pats {
		if pathIs(pass.Pkg.Path(), p) {
			return true
		}
	}
	return false
}

// callee resolves the object a call expression invokes: a package-level
// function, a method, or nil when the callee is dynamic (function values,
// builtins, conversions).
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Qualified identifier (pkg.Func).
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeIs reports whether call invokes a function named name declared in a
// package matching pkgPat (segment-boundary suffix match, see pathIs).
func calleeIs(info *types.Info, call *ast.CallExpr, pkgPat, name string) bool {
	obj := callee(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Name() == name && pathIs(obj.Pkg().Path(), pkgPat)
}

// isNamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// errorIface is the built-in error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if basic, ok := t.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorIface)
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pass *Pass, fn func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// fileOf returns the file containing pos, or nil.
func fileOf(pass *Pass, decl *ast.FuncDecl) *ast.File {
	for _, f := range pass.Files {
		if f.Pos() <= decl.Pos() && decl.Pos() < f.End() {
			return f
		}
	}
	return nil
}
