package lint

// All returns every registered analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		ArenaEscape,
		BatchAlloc,
		CtxPropagate,
		ErrWrap,
		FloatCmp,
		HotPathDecode,
		LockDiscipline,
		LockOrder,
		PinBalance,
		PreparedTopo,
		SyncErr,
		WalWrite,
	}
}
