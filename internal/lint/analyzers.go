package lint

// All returns every registered analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxPropagate,
		ErrWrap,
		FloatCmp,
		HotPathDecode,
		LockDiscipline,
		PreparedTopo,
	}
}
