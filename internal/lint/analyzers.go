package lint

// All returns every registered analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		BatchAlloc,
		CtxPropagate,
		ErrWrap,
		FloatCmp,
		HotPathDecode,
		LockDiscipline,
		PreparedTopo,
		SyncErr,
	}
}
