package lint

import (
	"go/ast"
	"regexp"
)

// HotPathDecode enforces the lazy-decode contract on the executor's scan and
// refinement paths and on index builds: per-row work must go through
// storage.LazyTuple column views and geom.EnvelopeWKB header walks, never a
// full WKB/WKT decode or tuple materialization. The contract is what makes
// the MBR prefilter cheaper than the exact predicate it guards — one decode
// inside a scan loop and the benchmark quietly measures parsing, not the
// spatial operator under test.
var HotPathDecode = &Analyzer{
	Name: "hotpathdecode",
	Doc: "forbid geometry/tuple decoding (geom.UnmarshalWKB, geom.ParseWKT, " +
		"geom.MustParseWKT, storage.DecodeTuple) inside internal/sql and " +
		"internal/engine scan/refine/build functions and anywhere in " +
		"internal/index; use storage.LazyTuple / geom.EnvelopeWKB instead",
	Run: runHotPathDecode,
}

// hotFuncRE matches function names that are part of the per-row hot path in
// internal/sql and internal/engine. internal/index packages are hot in their
// entirety.
var hotFuncRE = regexp.MustCompile(`(?i)(scan|refine|shard|knn|hashjoin|spatialindex|rebuild)`)

// hotPathBans are the decode entry points the contract forbids.
var hotPathBans = []struct{ pkg, name string }{
	{"internal/geom", "UnmarshalWKB"},
	{"internal/geom", "ParseWKT"},
	{"internal/geom", "MustParseWKT"},
	{"internal/storage", "DecodeTuple"},
}

func runHotPathDecode(pass *Pass) error {
	path := pass.Pkg.Path()
	wholePkg := pathUnder(path, "internal/index")
	if !wholePkg && !pkgMatches(pass, "internal/sql", "internal/engine") {
		return nil
	}
	funcDecls(pass, func(decl *ast.FuncDecl) {
		if !wholePkg && !hotFuncRE.MatchString(decl.Name.Name) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, ban := range hotPathBans {
				if calleeIs(pass.TypesInfo, call, ban.pkg, ban.name) {
					pass.Reportf(call.Pos(),
						"hot path %s calls %s: per-row decoding is forbidden here; "+
							"use storage.LazyTuple / geom.EnvelopeWKB (lazy-decode contract, DESIGN.md)",
						decl.Name.Name, ban.name)
				}
			}
			return true
		})
	})
	return nil
}
