package lint

import (
	"go/ast"
)

// CtxPropagate keeps cancellation flowing through the network layers. Two
// rules, scoped to internal/wire and internal/cluster:
//
//  1. No bare net.Dial / net.DialTimeout: dialing is the one place a stuck
//     remote can wedge a scatter-gather fan-out, so every dial must go
//     through (&net.Dialer{}).DialContext with the caller's context.
//
//  2. A function that already receives a context.Context must not call
//     context.Background() or context.TODO() — that silently severs the
//     caller's deadline and cancellation from everything downstream.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc: "flag network calls in internal/wire and internal/cluster that drop " +
		"an incoming context.Context: bare net.Dial/net.DialTimeout, and " +
		"context.Background()/TODO() inside functions that receive a ctx",
	Run: runCtxPropagate,
}

func runCtxPropagate(pass *Pass) error {
	if !pkgMatches(pass, "internal/wire", "internal/cluster") {
		return nil
	}
	funcDecls(pass, func(decl *ast.FuncDecl) {
		ctxParam := contextParamName(pass, decl)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Dial", "DialTimeout"} {
				if calleeIs(pass.TypesInfo, call, "net", name) {
					pass.Reportf(call.Pos(),
						"net.%s dials without a context; use (&net.Dialer{}).DialContext "+
							"so the caller's cancellation and deadline propagate", name)
				}
			}
			if ctxParam == "" {
				return true
			}
			for _, name := range []string{"Background", "TODO"} {
				if calleeIs(pass.TypesInfo, call, "context", name) {
					pass.Reportf(call.Pos(),
						"context.%s() drops the incoming context; propagate %s instead",
						name, ctxParam)
				}
			}
			return true
		})
	})
	return nil
}

// contextParamName returns the name of decl's context.Context parameter,
// or "" when it has none.
func contextParamName(pass *Pass, decl *ast.FuncDecl) string {
	if decl.Type.Params == nil {
		return ""
	}
	for _, field := range decl.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isNamedType(t, "context", "Context") {
			continue
		}
		if len(field.Names) > 0 {
			return field.Names[0].Name
		}
		return "the context parameter"
	}
	return ""
}
