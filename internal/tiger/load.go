package tiger

import (
	"fmt"

	"jackpine/internal/geom"
)

// Execer runs one SQL statement; both local engines and remote driver
// connections satisfy it.
type Execer interface {
	Exec(query string) error
}

// Schema returns the DDL for the TIGER-like tables.
func Schema() []string {
	return []string{
		"CREATE TABLE edges (id INTEGER, name TEXT, class TEXT, fromaddr INTEGER, toaddr INTEGER, geo GEOMETRY)",
		"CREATE TABLE areawater (id INTEGER, name TEXT, category TEXT, geo GEOMETRY)",
		"CREATE TABLE arealm (id INTEGER, name TEXT, category TEXT, geo GEOMETRY)",
		"CREATE TABLE pointlm (id INTEGER, name TEXT, category TEXT, geo GEOMETRY)",
		"CREATE TABLE parcels (id INTEGER, owner TEXT, landuse TEXT, geo GEOMETRY)",
	}
}

// IndexDDL returns the index statements: spatial indexes on every layer
// plus the attribute indexes the geocoding workload relies on.
func IndexDDL() []string {
	return []string{
		"CREATE SPATIAL INDEX edges_geo ON edges (geo)",
		"CREATE SPATIAL INDEX areawater_geo ON areawater (geo)",
		"CREATE SPATIAL INDEX arealm_geo ON arealm (geo)",
		"CREATE SPATIAL INDEX pointlm_geo ON pointlm (geo)",
		"CREATE SPATIAL INDEX parcels_geo ON parcels (geo)",
		// Composite: geocoding probes name = ? AND fromaddr <= ?, so the
		// index range stops at the house number instead of fanning out
		// over every segment of every street with that name.
		"CREATE INDEX edges_addr ON edges (name, fromaddr)",
		"CREATE INDEX parcels_landuse ON parcels (landuse)",
		"CREATE INDEX pointlm_category ON pointlm (category)",
	}
}

// insertBatch is the number of rows per INSERT statement during loading.
const insertBatch = 200

// Load creates the schema, bulk-inserts the dataset through SQL, and
// builds the indexes. Set withIndexes false to leave all tables unindexed
// (the index-effect experiment loads that way and indexes selectively).
func Load(db Execer, ds *Dataset, withIndexes bool) error {
	for _, ddl := range Schema() {
		if err := db.Exec(ddl); err != nil {
			return fmt.Errorf("tiger: schema: %w", err)
		}
	}
	quote := func(s string) string {
		out := make([]byte, 0, len(s)+2)
		for i := 0; i < len(s); i++ {
			if s[i] == '\'' {
				out = append(out, '\'')
			}
			out = append(out, s[i])
		}
		return string(out)
	}
	wkt := func(g geom.Geometry) string {
		return "ST_GeomFromText('" + geom.WKT(g) + "')"
	}

	var batch []string
	flush := func(table string) error {
		if len(batch) == 0 {
			return nil
		}
		stmt := "INSERT INTO " + table + " VALUES "
		for i, row := range batch {
			if i > 0 {
				stmt += ", "
			}
			stmt += row
		}
		batch = batch[:0]
		return db.Exec(stmt)
	}
	add := func(table, row string) error {
		batch = append(batch, row)
		if len(batch) >= insertBatch {
			return flush(table)
		}
		return nil
	}

	for _, e := range ds.Edges {
		row := fmt.Sprintf("(%d, '%s', '%s', %d, %d, %s)",
			e.ID, quote(e.Name), e.Class, e.FromAddr, e.ToAddr, wkt(e.Geom))
		if err := add("edges", row); err != nil {
			return err
		}
	}
	if err := flush("edges"); err != nil {
		return err
	}
	areaTables := []struct {
		name string
		rows []Area
	}{
		{"areawater", ds.AreaWater},
		{"arealm", ds.AreaLandmarks},
		{"parcels", ds.Parcels},
	}
	for _, at := range areaTables {
		for _, a := range at.rows {
			row := fmt.Sprintf("(%d, '%s', '%s', %s)", a.ID, quote(a.Name), quote(a.Category), wkt(a.Geom))
			if err := add(at.name, row); err != nil {
				return err
			}
		}
		if err := flush(at.name); err != nil {
			return err
		}
	}
	for _, p := range ds.PointLandmarks {
		row := fmt.Sprintf("(%d, '%s', '%s', %s)", p.ID, quote(p.Name), quote(p.Category), wkt(p.Geom))
		if err := add("pointlm", row); err != nil {
			return err
		}
	}
	if err := flush("pointlm"); err != nil {
		return err
	}

	if withIndexes {
		for _, ddl := range IndexDDL() {
			if err := db.Exec(ddl); err != nil {
				return fmt.Errorf("tiger: index: %w", err)
			}
		}
	}
	return nil
}

// LayerStats summarizes one table of a dataset.
type LayerStats struct {
	Layer    string
	Features int
	Coords   int
	WKBBytes int
}

// Stats computes the dataset-statistics rows (experiment E1's table).
func (ds *Dataset) Stats() []LayerStats {
	var out []LayerStats
	addAreas := func(name string, rows []Area) {
		s := LayerStats{Layer: name, Features: len(rows)}
		for _, a := range rows {
			s.Coords += a.Geom.NumCoords()
			s.WKBBytes += len(geom.MarshalWKB(a.Geom))
		}
		out = append(out, s)
	}
	edgeStats := LayerStats{Layer: "edges", Features: len(ds.Edges)}
	for _, e := range ds.Edges {
		edgeStats.Coords += e.Geom.NumCoords()
		edgeStats.WKBBytes += len(geom.MarshalWKB(e.Geom))
	}
	out = append(out, edgeStats)
	addAreas("areawater", ds.AreaWater)
	addAreas("arealm", ds.AreaLandmarks)
	ptStats := LayerStats{Layer: "pointlm", Features: len(ds.PointLandmarks)}
	for _, p := range ds.PointLandmarks {
		ptStats.Coords += p.Geom.NumCoords()
		ptStats.WKBBytes += len(geom.MarshalWKB(p.Geom))
	}
	out = append(out, ptStats)
	addAreas("parcels", ds.Parcels)
	return out
}

// Validate checks every generated geometry, returning the first error.
func (ds *Dataset) Validate() error {
	for _, e := range ds.Edges {
		if err := geom.Validate(e.Geom); err != nil {
			return fmt.Errorf("edge %d: %w", e.ID, err)
		}
	}
	check := func(kind string, rows []Area) error {
		for _, a := range rows {
			if err := geom.Validate(a.Geom); err != nil {
				return fmt.Errorf("%s %d: %w", kind, a.ID, err)
			}
		}
		return nil
	}
	if err := check("water", ds.AreaWater); err != nil {
		return err
	}
	if err := check("landmark", ds.AreaLandmarks); err != nil {
		return err
	}
	if err := check("parcel", ds.Parcels); err != nil {
		return err
	}
	for _, p := range ds.PointLandmarks {
		if err := geom.Validate(p.Geom); err != nil {
			return fmt.Errorf("point %d: %w", p.ID, err)
		}
	}
	return nil
}

// TotalFeatures returns the feature count across all layers.
func (ds *Dataset) TotalFeatures() int {
	return len(ds.Edges) + len(ds.AreaWater) + len(ds.AreaLandmarks) +
		len(ds.PointLandmarks) + len(ds.Parcels)
}
