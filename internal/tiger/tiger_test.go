package tiger

import (
	"reflect"
	"strings"
	"testing"

	"jackpine/internal/engine"
	"jackpine/internal/geom"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Small, 42)
	b := Generate(Small, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed should generate identical datasets")
	}
	c := Generate(Small, 43)
	if reflect.DeepEqual(a.Edges, c.Edges) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateScales(t *testing.T) {
	small := Generate(Small, 1)
	medium := Generate(Medium, 1)
	if medium.TotalFeatures() <= small.TotalFeatures()*2 {
		t.Errorf("medium (%d) should be much larger than small (%d)",
			medium.TotalFeatures(), small.TotalFeatures())
	}
	if small.Scale.String() != "small" || medium.Scale.String() != "medium" ||
		Large.String() != "large" {
		t.Error("scale names")
	}
}

func TestGenerateAllGeometriesValid(t *testing.T) {
	ds := Generate(Small, 7)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Everything within the extent (with a little slack for the frame).
	slack := ds.Extent.Expand(1)
	for _, e := range ds.Edges {
		if !slack.ContainsRect(e.Geom.Envelope()) {
			t.Fatalf("edge %d outside extent", e.ID)
		}
	}
	for _, a := range ds.Parcels {
		if !slack.ContainsRect(a.Geom.Envelope()) {
			t.Fatalf("parcel %d outside extent", a.ID)
		}
	}
}

func TestEdgesHaveAddressesAndNames(t *testing.T) {
	ds := Generate(Small, 3)
	names := map[string]int{}
	for _, e := range ds.Edges {
		if e.Name == "" || e.Class == "" {
			t.Fatal("edge missing name/class")
		}
		if e.FromAddr >= e.ToAddr {
			t.Fatalf("edge %d address range %d..%d", e.ID, e.FromAddr, e.ToAddr)
		}
		names[e.Name]++
	}
	// Streets span many blocks: names must repeat across edges.
	repeated := 0
	for _, n := range names {
		if n > 1 {
			repeated++
		}
	}
	if repeated == 0 {
		t.Error("no street name spans multiple edges")
	}
}

func TestParcelsShareEdgesExactly(t *testing.T) {
	ds := Generate(Small, 5)
	// Find two horizontally adjacent parcels: consecutive ids within one
	// block row share a vertical edge.
	found := false
	for i := 0; i+1 < len(ds.Parcels) && !found; i++ {
		a, b := ds.Parcels[i].Geom, ds.Parcels[i+1].Geom
		ea, eb := a.Envelope(), b.Envelope()
		if ea.MaxX == eb.MinX && ea.MinY == eb.MinY {
			found = true
		}
	}
	if !found {
		t.Error("no exactly-adjacent parcel pair found")
	}
}

func TestStats(t *testing.T) {
	ds := Generate(Small, 9)
	stats := ds.Stats()
	if len(stats) != 5 {
		t.Fatalf("stats layers = %d", len(stats))
	}
	total := 0
	for _, s := range stats {
		if s.Features <= 0 || s.Coords <= 0 || s.WKBBytes <= 0 {
			t.Errorf("layer %s has empty stats: %+v", s.Layer, s)
		}
		total += s.Features
	}
	if total != ds.TotalFeatures() {
		t.Errorf("stats total %d != dataset total %d", total, ds.TotalFeatures())
	}
}

// execAdapter adapts an engine to the Execer interface.
type execAdapter struct{ e *engine.Engine }

func (a execAdapter) Exec(q string) error {
	_, err := a.e.Exec(q)
	return err
}

func TestLoadIntoEngine(t *testing.T) {
	ds := Generate(Small, 11)
	e := engine.Open(engine.GaiaDB())
	if err := Load(execAdapter{e}, ds, true); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{
		"edges":     len(ds.Edges),
		"areawater": len(ds.AreaWater),
		"arealm":    len(ds.AreaLandmarks),
		"pointlm":   len(ds.PointLandmarks),
		"parcels":   len(ds.Parcels),
	}
	for table, want := range counts {
		res := e.MustExec("SELECT COUNT(*) FROM " + table)
		if got := res.Rows[0][0].Int; got != int64(want) {
			t.Errorf("%s: loaded %d rows, want %d", table, got, want)
		}
	}
	// Spot checks: geocoding-style lookups hit the composite B+tree — a
	// name-only probe is a prefix range scan, name+address is narrower.
	res := e.MustExec("SELECT COUNT(*) FROM edges WHERE name = 'Oak St'")
	if res.Access[0] != "edges:btree-range" {
		t.Errorf("name lookup access = %v", res.Access)
	}
	if res.Rows[0][0].Int == 0 {
		t.Error("no edges named 'Oak St'")
	}
	res = e.MustExec("SELECT COUNT(*) FROM edges WHERE name = 'Oak St' AND fromaddr <= 310 AND toaddr >= 310")
	if res.Access[0] != "edges:btree-range" || res.Rows[0][0].Int != 1 {
		t.Errorf("address lookup: %v rows (%v)", res.Rows[0][0], res.Access)
	}
	// Window query drives the spatial index (fanned out across workers
	// on multi-core machines, hence the prefix/substring check).
	res = e.MustExec("SELECT COUNT(*) FROM pointlm WHERE ST_Intersects(geo, ST_MakeEnvelope(0, 0, 500, 500))")
	if !strings.HasPrefix(res.Access[0], "pointlm:") || !strings.Contains(res.Access[0], "spatial-index") {
		t.Errorf("window access = %v", res.Access)
	}
	// Geometries round-tripped through WKT/WKB intact.
	got := e.MustExec("SELECT ST_AsText(geo) FROM edges WHERE id = 1").Rows[0][0].Text
	if got != geom.WKT(ds.Edges[0].Geom) {
		t.Errorf("edge 1 geometry corrupted: %s vs %s", got, geom.WKT(ds.Edges[0].Geom))
	}
}

func TestLoadWithoutIndexes(t *testing.T) {
	ds := Generate(Small, 13)
	e := engine.Open(engine.GaiaDB())
	if err := Load(execAdapter{e}, ds, false); err != nil {
		t.Fatal(err)
	}
	res := e.MustExec("SELECT COUNT(*) FROM pointlm WHERE ST_Intersects(geo, ST_MakeEnvelope(0, 0, 500, 500))")
	if !strings.HasPrefix(res.Access[0], "pointlm:") || !strings.Contains(res.Access[0], "seqscan") {
		t.Errorf("unindexed access = %v", res.Access)
	}
}

func TestQuotingInNames(t *testing.T) {
	// Owner names come from a fixed pool without quotes today; this
	// guards the loader's escaping against future name pools.
	e := engine.Open(engine.GaiaDB())
	ds := &Dataset{
		Extent: geom.Rect{MaxX: 10, MaxY: 10},
		AreaLandmarks: []Area{{
			ID: 1, Name: "O'Hare", Category: "airport",
			Geom: geom.Polygon{geom.Ring{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}, {X: 0, Y: 0}}},
		}},
	}
	if err := Load(execAdapter{e}, ds, false); err != nil {
		t.Fatal(err)
	}
	res := e.MustExec("SELECT name FROM arealm")
	if res.Rows[0][0].Text != "O'Hare" {
		t.Errorf("quoted name = %q", res.Rows[0][0].Text)
	}
}
