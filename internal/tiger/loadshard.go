package tiger

import (
	"fmt"

	"jackpine/internal/geom"
)

// seqColumn is the hidden global-insertion-sequence column partitioned
// tables carry on cluster shards. It must match cluster.SeqColumn (a
// cluster test cross-checks the two).
const seqColumn = "_seq"

// ShardSchema returns the shard-side DDL: the benchmark tables with the
// hidden _seq column appended.
func ShardSchema() []string {
	out := make([]string, len(Schema()))
	for i, ddl := range Schema() {
		out[i] = ddl[:len(ddl)-1] + ", " + seqColumn + " INTEGER)"
	}
	return out
}

// LoadShard creates the shard-side schema and bulk-loads the slice of
// the dataset that assign maps to the given shard. The _seq sequence
// advances for every feature of a table in dataset order — across all
// shards — so a set of shards preloaded independently with LoadShard is
// row-for-row identical to one loaded through the cluster router, and
// cluster.RefreshStats can recover each table's sequence high-water
// mark. Feature iteration order matches Load: edges, areawater, arealm,
// parcels, pointlm.
func LoadShard(db Execer, ds *Dataset, withIndexes bool, shard int, assign func(geom.Geometry) int) error {
	for _, ddl := range ShardSchema() {
		if err := db.Exec(ddl); err != nil {
			return fmt.Errorf("tiger: shard schema: %w", err)
		}
	}
	quote := func(s string) string {
		out := make([]byte, 0, len(s)+2)
		for i := 0; i < len(s); i++ {
			if s[i] == '\'' {
				out = append(out, '\'')
			}
			out = append(out, s[i])
		}
		return string(out)
	}
	wkt := func(g geom.Geometry) string {
		return "ST_GeomFromText('" + geom.WKT(g) + "')"
	}

	var batch []string
	flush := func(table string) error {
		if len(batch) == 0 {
			return nil
		}
		stmt := "INSERT INTO " + table + " VALUES "
		for i, row := range batch {
			if i > 0 {
				stmt += ", "
			}
			stmt += row
		}
		batch = batch[:0]
		return db.Exec(stmt)
	}
	add := func(table, row string) error {
		batch = append(batch, row)
		if len(batch) >= insertBatch {
			return flush(table)
		}
		return nil
	}

	seq := 0
	for _, e := range ds.Edges {
		if assign(e.Geom) == shard {
			row := fmt.Sprintf("(%d, '%s', '%s', %d, %d, %s, %d)",
				e.ID, quote(e.Name), e.Class, e.FromAddr, e.ToAddr, wkt(e.Geom), seq)
			if err := add("edges", row); err != nil {
				return err
			}
		}
		seq++
	}
	if err := flush("edges"); err != nil {
		return err
	}
	areaTables := []struct {
		name string
		rows []Area
	}{
		{"areawater", ds.AreaWater},
		{"arealm", ds.AreaLandmarks},
		{"parcels", ds.Parcels},
	}
	for _, at := range areaTables {
		seq = 0
		for _, a := range at.rows {
			if assign(a.Geom) == shard {
				row := fmt.Sprintf("(%d, '%s', '%s', %s, %d)",
					a.ID, quote(a.Name), quote(a.Category), wkt(a.Geom), seq)
				if err := add(at.name, row); err != nil {
					return err
				}
			}
			seq++
		}
		if err := flush(at.name); err != nil {
			return err
		}
	}
	seq = 0
	for _, p := range ds.PointLandmarks {
		if assign(p.Geom) == shard {
			row := fmt.Sprintf("(%d, '%s', '%s', %s, %d)",
				p.ID, quote(p.Name), quote(p.Category), wkt(p.Geom), seq)
			if err := add("pointlm", row); err != nil {
				return err
			}
		}
		seq++
	}
	if err := flush("pointlm"); err != nil {
		return err
	}

	if withIndexes {
		for _, ddl := range IndexDDL() {
			if err := db.Exec(ddl); err != nil {
				return fmt.Errorf("tiger: shard index: %w", err)
			}
		}
	}
	return nil
}
