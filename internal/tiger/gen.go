// Package tiger generates the synthetic TIGER/Line-like spatial dataset
// the Jackpine workloads run on, and loads it into engines.
//
// The real benchmark used US Census TIGER/Line shapefiles (road edges
// with address ranges, area water, area landmarks, point landmarks).
// Those files are not redistributable here, so this package synthesizes
// a city with the same schema and spatial statistics: a perturbed street
// grid with block-level address ranges, lakes and a river, clustered
// polygonal and point landmarks, and a parcel fabric whose neighbours
// share edges exactly (so topological predicates like Touches behave as
// they do on cadastral data). Generation is deterministic per seed.
package tiger

import (
	"fmt"
	"math"

	"jackpine/internal/geom"
)

// Scale selects a dataset size.
type Scale int

// The three dataset scales.
const (
	Small Scale = iota
	Medium
	Large
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return "unknown"
}

// params maps a scale to generator knobs.
type params struct {
	blocks      int // city grid is blocks × blocks
	lakes       int
	arealm      int
	pointlm     int
	parcelFrac  int // 1/parcelFrac of blocks get a parcel fabric
	parcelsPerB int // parcels per subdivided block (per axis: n×n)
}

// Feature densities are constant per block across scales (as in real
// TIGER data, where a bigger state has more features at similar
// density), so windowed queries cost the same at every scale while full
// scans grow linearly — the scale-up experiment's key contrast.
func (s Scale) params() params {
	scaleTo := func(blocks int) params {
		area := blocks * blocks
		return params{
			blocks:      blocks,
			lakes:       area * 15 / 400,
			arealm:      area * 150 / 400,
			pointlm:     area * 600 / 400,
			parcelFrac:  2,
			parcelsPerB: 3,
		}
	}
	switch s {
	case Medium:
		return scaleTo(48)
	case Large:
		return scaleTo(96)
	default:
		return scaleTo(20)
	}
}

// BlockSize is the edge length of one city block in dataset units.
const BlockSize = 100.0

// Edge is one road segment (a block face) with a left-side address range.
type Edge struct {
	ID       int64
	Name     string
	Class    string // "residential", "primary", "motorway"
	FromAddr int64
	ToAddr   int64
	Geom     geom.LineString
}

// Area is a polygonal feature (water, landmark or parcel).
type Area struct {
	ID       int64
	Name     string
	Category string
	Geom     geom.Polygon
}

// Point is a point feature.
type Point struct {
	ID       int64
	Name     string
	Category string
	Geom     geom.Point
}

// Dataset is a complete generated dataset.
type Dataset struct {
	Scale          Scale
	Seed           int64
	Extent         geom.Rect
	Edges          []Edge
	AreaWater      []Area
	AreaLandmarks  []Area
	PointLandmarks []Point
	Parcels        []Area
}

// rng is a splitmix64 generator: deterministic across platforms and Go
// versions (unlike math/rand's algorithms, which are version-dependent).
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// rangeF returns a uniform value in [lo, hi).
func (r *rng) rangeF(lo, hi float64) float64 { return lo + r.float()*(hi-lo) }

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

var streetNames = []string{
	"Oak", "Main", "Pine", "Cedar", "Maple", "Elm", "Washington", "Lake",
	"Hill", "Park", "River", "Spring", "Church", "Mill", "Walnut", "Union",
	"High", "Center", "Franklin", "Jackson", "Birch", "Spruce", "Sunset",
	"Ridge", "Meadow", "Forest", "Highland", "Willow", "Juniper", "Aspen",
}

var landmarkCategories = []string{"park", "school", "cemetery", "golf course", "airport", "stadium"}

var pointCategories = []string{"school", "hospital", "church", "fire station", "library", "post office"}

var landuseCodes = []string{"residential", "commercial", "industrial", "agricultural", "public"}

// Generate builds the dataset for a scale and seed.
func Generate(scale Scale, seed int64) *Dataset {
	p := scale.params()
	r := &rng{state: uint64(seed)*0x9E3779B97F4A7C15 + 1}
	side := float64(p.blocks) * BlockSize
	ds := &Dataset{
		Scale:  scale,
		Seed:   seed,
		Extent: geom.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side},
	}

	// Street intersections: a grid perturbed by up to 12% of a block, so
	// predicates meet non-axis-aligned segments. Boundary nodes stay
	// put so the city has a clean rectangular frame.
	n := p.blocks + 1
	nodes := make([][]geom.Coord, n)
	for j := 0; j < n; j++ {
		nodes[j] = make([]geom.Coord, n)
		for i := 0; i < n; i++ {
			x := float64(i) * BlockSize
			y := float64(j) * BlockSize
			if i > 0 && i < n-1 && j > 0 && j < n-1 {
				x += r.rangeF(-0.12, 0.12) * BlockSize
				y += r.rangeF(-0.12, 0.12) * BlockSize
			}
			nodes[j][i] = geom.Coord{X: x, Y: y}
		}
	}

	// Horizontal streets ("... St") and vertical avenues ("... Ave").
	var id int64
	addEdge := func(name, class string, block int, a, b geom.Coord) {
		id++
		ds.Edges = append(ds.Edges, Edge{
			ID:       id,
			Name:     name,
			Class:    class,
			FromAddr: int64(block)*100 + 1,
			ToAddr:   int64(block)*100 + 99,
			Geom:     geom.LineString{a, b},
		})
	}
	class := func(idx int) string {
		switch {
		case idx%10 == 0:
			return "motorway"
		case idx%3 == 0:
			return "primary"
		default:
			return "residential"
		}
	}
	for j := 0; j < n; j++ {
		name := fmt.Sprintf("%s St", streetNames[j%len(streetNames)])
		if j >= len(streetNames) {
			name = fmt.Sprintf("%s St %d", streetNames[j%len(streetNames)], j/len(streetNames)+1)
		}
		for i := 0; i < n-1; i++ {
			addEdge(name, class(j), i, nodes[j][i], nodes[j][i+1])
		}
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s Ave", streetNames[(i*7+3)%len(streetNames)])
		if i >= len(streetNames) {
			name = fmt.Sprintf("%s Ave %d", streetNames[(i*7+3)%len(streetNames)], i/len(streetNames)+1)
		}
		for j := 0; j < n-1; j++ {
			addEdge(name, class(i), j, nodes[j][i], nodes[j+1][i])
		}
	}

	// Water: one river band across the city plus lakes.
	ds.AreaWater = append(ds.AreaWater, river(side, r))
	for k := 0; k < p.lakes; k++ {
		cx := r.rangeF(0.05*side, 0.95*side)
		cy := r.rangeF(0.05*side, 0.95*side)
		radius := r.rangeF(0.3, 1.6) * BlockSize
		ds.AreaWater = append(ds.AreaWater, Area{
			ID:       int64(k + 2),
			Name:     fmt.Sprintf("%s Lake", streetNames[r.intn(len(streetNames))]),
			Category: "lake",
			Geom:     blob(geom.Coord{X: cx, Y: cy}, radius, 8+r.intn(8), r),
		})
	}

	// Area landmarks: clustered blobs around a handful of centres.
	centres := make([]geom.Coord, 5)
	for i := range centres {
		centres[i] = geom.Coord{X: r.rangeF(0.15, 0.85) * side, Y: r.rangeF(0.15, 0.85) * side}
	}
	for k := 0; k < p.arealm; k++ {
		c := centres[r.intn(len(centres))]
		pos := geom.Coord{
			X: clampF(c.X+r.rangeF(-0.25, 0.25)*side, 10, side-10),
			Y: clampF(c.Y+r.rangeF(-0.25, 0.25)*side, 10, side-10),
		}
		cat := landmarkCategories[r.intn(len(landmarkCategories))]
		ds.AreaLandmarks = append(ds.AreaLandmarks, Area{
			ID:       int64(k + 1),
			Name:     fmt.Sprintf("%s %s %d", streetNames[r.intn(len(streetNames))], cat, k),
			Category: cat,
			Geom:     blob(pos, r.rangeF(0.2, 1.0)*BlockSize, 6+r.intn(10), r),
		})
	}

	// Point landmarks: clustered points.
	for k := 0; k < p.pointlm; k++ {
		c := centres[r.intn(len(centres))]
		pos := geom.Coord{
			X: clampF(c.X+r.rangeF(-0.3, 0.3)*side, 0, side),
			Y: clampF(c.Y+r.rangeF(-0.3, 0.3)*side, 0, side),
		}
		cat := pointCategories[r.intn(len(pointCategories))]
		ds.PointLandmarks = append(ds.PointLandmarks, Point{
			ID:       int64(k + 1),
			Name:     fmt.Sprintf("%s %s", streetNames[r.intn(len(streetNames))], cat),
			Category: cat,
			Geom:     geom.Point{Coord: pos},
		})
	}

	// Parcels: subdivide every parcelFrac-th block into an m×m fabric of
	// rectangles sharing edges exactly.
	var pid int64
	for bj := 0; bj < p.blocks; bj++ {
		for bi := 0; bi < p.blocks; bi++ {
			if (bi+bj)%p.parcelFrac != 0 {
				continue
			}
			m := p.parcelsPerB
			x0 := float64(bi)*BlockSize + 10
			y0 := float64(bj)*BlockSize + 10
			w := (BlockSize - 20) / float64(m)
			// Precompute the grid lines so neighbouring parcels share
			// corner coordinates bit-for-bit (x0+i*w+w differs from
			// x0+(i+1)*w by rounding).
			xs := make([]float64, m+1)
			ys := make([]float64, m+1)
			for k := 0; k <= m; k++ {
				xs[k] = x0 + float64(k)*w
				ys[k] = y0 + float64(k)*w
			}
			for pj := 0; pj < m; pj++ {
				for piX := 0; piX < m; piX++ {
					pid++
					ds.Parcels = append(ds.Parcels, Area{
						ID:       pid,
						Name:     fmt.Sprintf("owner-%04d", r.intn(10000)),
						Category: landuseCodes[r.intn(len(landuseCodes))],
						Geom: geom.Polygon{geom.Ring{
							{X: xs[piX], Y: ys[pj]}, {X: xs[piX+1], Y: ys[pj]},
							{X: xs[piX+1], Y: ys[pj+1]}, {X: xs[piX], Y: ys[pj+1]},
							{X: xs[piX], Y: ys[pj]},
						}},
					})
				}
			}
		}
	}
	return ds
}

// river builds a thin polygon meandering across the extent.
func river(side float64, r *rng) Area {
	const steps = 40
	halfWidth := side / 120
	var top, bottom []geom.Coord
	y := side * r.rangeF(0.3, 0.7)
	for i := 0; i <= steps; i++ {
		x := side * float64(i) / steps
		y += r.rangeF(-1, 1) * side / 60
		y = clampF(y, side*0.1, side*0.9)
		top = append(top, geom.Coord{X: x, Y: y + halfWidth})
		bottom = append(bottom, geom.Coord{X: x, Y: y - halfWidth})
	}
	ring := make(geom.Ring, 0, 2*len(top)+1)
	ring = append(ring, bottom...)
	for i := len(top) - 1; i >= 0; i-- {
		ring = append(ring, top[i])
	}
	ring = append(ring, ring[0])
	return Area{ID: 1, Name: "Big River", Category: "river", Geom: geom.Polygon{ring}}
}

// blob builds a star-convex polygon with k vertices around centre c.
func blob(c geom.Coord, radius float64, k int, r *rng) geom.Polygon {
	ring := make(geom.Ring, 0, k+1)
	for i := 0; i < k; i++ {
		ang := 2 * math.Pi * float64(i) / float64(k)
		rad := radius * r.rangeF(0.6, 1.0)
		ring = append(ring, geom.Coord{X: c.X + rad*math.Cos(ang), Y: c.Y + rad*math.Sin(ang)})
	}
	ring = append(ring, ring[0])
	return geom.Polygon{ring}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
