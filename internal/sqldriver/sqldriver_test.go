package sqldriver

import (
	gosql "database/sql"
	"strings"
	"testing"

	"jackpine/internal/engine"
	"jackpine/internal/geom"
	"jackpine/internal/wire"
)

func openLocal(t *testing.T) *gosql.DB {
	t.Helper()
	eng := engine.Open(engine.GaiaDB())
	db := gosql.OpenDB(NewConnector(eng))
	t.Cleanup(func() { db.Close() })
	return db
}

func TestDatabaseSQLBasics(t *testing.T) {
	db := openLocal(t)
	if _, err := db.Exec("CREATE TABLE pois (id INTEGER, name TEXT, score DOUBLE, active BOOLEAN, loc GEOMETRY)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO pois VALUES (1, 'park', 2.5, TRUE, ST_MakePoint(1, 2)), (2, NULL, NULL, FALSE, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Fatalf("affected = %d", n)
	}

	rows, err := db.Query("SELECT id, name, score, active, loc FROM pois ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, _ := rows.Columns()
	if len(cols) != 5 || cols[0] != "id" {
		t.Fatalf("columns = %v", cols)
	}

	var (
		id     int64
		name   gosql.NullString
		score  gosql.NullFloat64
		active bool
		wkb    []byte
	)
	if !rows.Next() {
		t.Fatal("no first row")
	}
	if err := rows.Scan(&id, &name, &score, &active, &wkb); err != nil {
		t.Fatal(err)
	}
	if id != 1 || !name.Valid || name.String != "park" || score.Float64 != 2.5 || !active {
		t.Errorf("row 1 = %v %v %v %v", id, name, score, active)
	}
	g, err := geom.UnmarshalWKB(wkb)
	if err != nil || geom.WKT(g) != "POINT (1 2)" {
		t.Errorf("geometry = %v, %v", g, err)
	}
	if !rows.Next() {
		t.Fatal("no second row")
	}
	var wkb2 []byte
	if err := rows.Scan(&id, &name, &score, &active, &wkb2); err != nil {
		t.Fatal(err)
	}
	if name.Valid || score.Valid || wkb2 != nil {
		t.Errorf("NULLs not mapped: %v %v %v", name, score, wkb2)
	}
	if rows.Next() {
		t.Fatal("too many rows")
	}
}

func TestPlaceholders(t *testing.T) {
	db := openLocal(t)
	if _, err := db.Exec("CREATE TABLE t (id INTEGER, name TEXT, g GEOMETRY)"); err != nil {
		t.Fatal(err)
	}
	wkb := geom.MarshalWKB(geom.Pt(3, 4))
	if _, err := db.Exec("INSERT INTO t VALUES (?, ?, ?)", int64(7), "o'hare", wkb); err != nil {
		t.Fatal(err)
	}
	var name string
	var x float64
	err := db.QueryRow("SELECT name, ST_X(g) FROM t WHERE id = ?", int64(7)).Scan(&name, &x)
	if err != nil {
		t.Fatal(err)
	}
	if name != "o'hare" || x != 3 {
		t.Errorf("got %q, %v", name, x)
	}
	// A '?' inside a string literal is not a placeholder.
	var s string
	if err := db.QueryRow("SELECT '?' FROM t").Scan(&s); err != nil || s != "?" {
		t.Errorf("literal question mark: %q, %v", s, err)
	}
	// Arity mismatch errors.
	if _, err := db.Exec("INSERT INTO t VALUES (?, ?, ?)", int64(1)); err == nil {
		t.Error("placeholder arity mismatch accepted")
	}
}

func TestPreparedStatementReuse(t *testing.T) {
	db := openLocal(t)
	db.Exec("CREATE TABLE t (id INTEGER)")
	stmt, err := db.Prepare("INSERT INTO t VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i := int64(0); i < 10; i++ {
		if _, err := stmt.Exec(i); err != nil {
			t.Fatal(err)
		}
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM t").Scan(&n); err != nil || n != 10 {
		t.Errorf("count = %d, %v", n, err)
	}
}

func TestTransactionsRejected(t *testing.T) {
	db := openLocal(t)
	if _, err := db.Begin(); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Errorf("Begin: %v", err)
	}
}

func TestDSNRemote(t *testing.T) {
	eng := engine.Open(engine.MySpatial())
	srv := wire.NewServer(eng)
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	db, err := gosql.Open("jackpine", "tcp://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (?), (?)", int64(1), int64(2)); err != nil {
		t.Fatal(err)
	}
	var sum int64
	if err := db.QueryRow("SELECT SUM(a) FROM t").Scan(&sum); err != nil || sum != 3 {
		t.Errorf("sum = %d, %v", sum, err)
	}
}

func TestDSNErrors(t *testing.T) {
	db, err := gosql.Open("jackpine", "mem://nope")
	if err != nil {
		t.Fatal(err) // Open defers dialing
	}
	if err := db.Ping(); err == nil || !strings.Contains(err.Error(), "unsupported DSN") {
		t.Errorf("ping of bad DSN: %v", err)
	}
	db.Close()
}

func TestQueryErrorsPropagate(t *testing.T) {
	db := openLocal(t)
	if _, err := db.Query("SELECT x FROM missing"); err == nil {
		t.Error("query error not propagated")
	}
	if _, err := db.Exec("CREATE TABLE t (a WIBBLE)"); err == nil {
		t.Error("exec error not propagated")
	}
}
