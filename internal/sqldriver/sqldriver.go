// Package sqldriver adapts the spatial engines to Go's standard
// database/sql interface — the role JDBC plays for the original
// Jackpine. Any tool written against database/sql can talk to the
// engines:
//
//	// Local engine (one engine shared by the pool's connections):
//	eng := engine.Open(engine.GaiaDB())
//	db := sql.OpenDB(sqldriver.NewConnector(eng))
//
//	// Remote engine over the wire protocol:
//	db, err := sql.Open("jackpine", "tcp://127.0.0.1:7676")
//
// Placeholders: statements may use '?' parameters, which the driver
// interpolates client-side with proper quoting (ints, floats, strings,
// booleans, nil, []byte as hex WKB via ST_GeomFromWKB).
//
// Value mapping: INTEGER→int64, DOUBLE→float64, TEXT→string,
// BOOLEAN→bool, GEOMETRY→[]byte (WKB), NULL→nil.
package sqldriver

import (
	"context"
	gosql "database/sql"
	"database/sql/driver"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	jdriver "jackpine/internal/driver"
	"jackpine/internal/engine"
	"jackpine/internal/geom"
	"jackpine/internal/storage"
	"jackpine/internal/wire"
)

func init() {
	gosql.Register("jackpine", Driver{})
}

// Driver implements database/sql/driver.Driver for DSN-based opens.
// Supported DSNs: "tcp://host:port" (wire protocol).
type Driver struct{}

// Open implements driver.Driver.
func (Driver) Open(dsn string) (driver.Conn, error) {
	addr, ok := strings.CutPrefix(dsn, "tcp://")
	if !ok {
		return nil, fmt.Errorf("sqldriver: unsupported DSN %q (use tcp://host:port, or sql.OpenDB with NewConnector for local engines)", dsn)
	}
	inner, err := wire.NewClient(addr, "jackpine").Connect()
	if err != nil {
		return nil, err
	}
	return &conn{inner: inner}, nil
}

// Connector binds a local engine into a database/sql pool: every pooled
// connection shares the one engine.
type Connector struct {
	eng *engine.Engine
}

// NewConnector wraps an engine for sql.OpenDB.
func NewConnector(eng *engine.Engine) *Connector { return &Connector{eng: eng} }

// Connect implements driver.Connector. The supplied context is ignored:
// session creation is in-process and does not block.
func (c *Connector) Connect(context.Context) (driver.Conn, error) {
	inner, err := jdriver.NewInProc(c.eng).Connect()
	if err != nil {
		return nil, err
	}
	return &conn{inner: inner}, nil
}

// Driver implements driver.Connector.
func (c *Connector) Driver() driver.Driver { return Driver{} }

// conn implements driver.Conn over a jackpine driver connection.
type conn struct {
	inner jdriver.Conn
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return &stmt{conn: c, query: query, numInput: countPlaceholders(query)}, nil
}

// Close implements driver.Conn.
func (c *conn) Close() error { return c.inner.Close() }

// Begin implements driver.Conn. The engines execute statements
// atomically but provide no multi-statement transactions.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("sqldriver: transactions are not supported")
}

type stmt struct {
	conn     *conn
	query    string
	numInput int
}

// Close implements driver.Stmt.
func (s *stmt) Close() error { return nil }

// NumInput implements driver.Stmt.
func (s *stmt) NumInput() int { return s.numInput }

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	q, err := interpolate(s.query, args)
	if err != nil {
		return nil, err
	}
	n, err := s.conn.inner.Exec(q)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(n)}, nil
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	q, err := interpolate(s.query, args)
	if err != nil {
		return nil, err
	}
	rs, err := s.conn.inner.Query(q)
	if err != nil {
		return nil, err
	}
	return &rows{rs: rs}, nil
}

type result struct{ affected int64 }

// LastInsertId implements driver.Result.
func (result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("sqldriver: last-insert-id is not supported")
}

// RowsAffected implements driver.Result.
func (r result) RowsAffected() (int64, error) { return r.affected, nil }

type rows struct {
	rs  *jdriver.ResultSet
	pos int
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.rs.Columns }

// Close implements driver.Rows.
func (r *rows) Close() error { return nil }

// Next implements driver.Rows.
func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.rs.Rows) {
		return io.EOF
	}
	row := r.rs.Rows[r.pos]
	r.pos++
	for i, v := range row {
		switch v.Type {
		case storage.TypeNull:
			dest[i] = nil
		case storage.TypeInt:
			dest[i] = v.Int
		case storage.TypeFloat:
			dest[i] = v.Float
		case storage.TypeText:
			dest[i] = v.Text
		case storage.TypeBool:
			dest[i] = v.Int != 0
		case storage.TypeGeom:
			dest[i] = geom.MarshalWKB(v.Geom)
		default:
			return fmt.Errorf("sqldriver: cannot map %s to a driver value", v.Type)
		}
	}
	return nil
}

// countPlaceholders counts '?' outside string literals.
func countPlaceholders(query string) int {
	n := 0
	inString := false
	for i := 0; i < len(query); i++ {
		switch {
		case query[i] == '\'':
			inString = !inString
		case query[i] == '?' && !inString:
			n++
		}
	}
	return n
}

// interpolate substitutes '?' placeholders with quoted values.
func interpolate(query string, args []driver.Value) (string, error) {
	if countPlaceholders(query) != len(args) {
		return "", fmt.Errorf("sqldriver: statement has %d placeholders, got %d arguments",
			countPlaceholders(query), len(args))
	}
	if len(args) == 0 {
		return query, nil
	}
	var sb strings.Builder
	sb.Grow(len(query) + 16*len(args))
	arg := 0
	inString := false
	for i := 0; i < len(query); i++ {
		c := query[i]
		switch {
		case c == '\'':
			inString = !inString
			sb.WriteByte(c)
		case c == '?' && !inString:
			if err := writeValue(&sb, args[arg]); err != nil {
				return "", err
			}
			arg++
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String(), nil
}

func writeValue(sb *strings.Builder, v driver.Value) error {
	switch t := v.(type) {
	case nil:
		sb.WriteString("NULL")
	case int64:
		fmt.Fprintf(sb, "%d", t)
	case float64:
		fmt.Fprintf(sb, "%g", t)
	case bool:
		if t {
			sb.WriteString("TRUE")
		} else {
			sb.WriteString("FALSE")
		}
	case string:
		sb.WriteByte('\'')
		sb.WriteString(strings.ReplaceAll(t, "'", "''"))
		sb.WriteByte('\'')
	case []byte:
		// WKB bytes become a geometry via the hex interchange function.
		sb.WriteString("ST_GeomFromWKB('")
		sb.WriteString(hex.EncodeToString(t))
		sb.WriteString("')")
	default:
		return fmt.Errorf("sqldriver: unsupported argument type %T", v)
	}
	return nil
}
