package sql

import (
	"fmt"

	"jackpine/internal/geom"
	"jackpine/internal/storage"
	"jackpine/internal/topo"
)

// preparedCall is the prepared-constant state of one topological
// FuncCall: the constant geometry operand decomposed and indexed once,
// plus enough of the call shape to evaluate the remaining variable
// operand per row. The fast path reproduces the registry
// implementation's semantics exactly — same NULL propagation, same
// error precedence, same truth values — it only swaps the kernel entry
// point for the prepared one.
type preparedCall struct {
	p        *topo.Prepared
	pred     topo.Predicate
	pattern  string // ST_RELATE only
	relate   bool
	constIdx int // which of Args[0], Args[1] is the prepared constant
}

// eval evaluates the call over a row via the prepared constant.
func (pc *preparedCall) eval(fc *FuncCall, row []storage.Value, reg *Registry) (storage.Value, error) {
	varIdx := 1 - pc.constIdx
	v, err := Eval(fc.Args[varIdx], row, reg)
	if err != nil {
		return storage.Null(), err
	}
	fn := "predicate"
	if pc.relate {
		fn = "ST_RELATE"
	}
	var g geom.Geometry
	if !v.IsNull() {
		if v.Type != storage.TypeGeom {
			return storage.Null(), fmt.Errorf("sql: %s: argument %d is %s, want GEOMETRY", fn, varIdx+1, v.Type)
		}
		g = v.Geom
	}
	if g == nil {
		return storage.Null(), nil
	}
	reg.prepHits.Add(1)
	if pc.relate {
		if pc.constIdx == 0 {
			return storage.NewBool(pc.p.RelatePattern(g, pc.pattern)), nil
		}
		return storage.NewBool(pc.p.RelatePatternReversed(g, pc.pattern)), nil
	}
	if pc.constIdx == 0 {
		return storage.NewBool(pc.p.Eval(pc.pred, g)), nil
	}
	return storage.NewBool(pc.p.EvalReversed(pc.pred, g)), nil
}

// installPrepared walks bound expressions and prepares the constant
// geometry side of every topological predicate call (the literal query
// window of the benchmark micro queries). Stale state from a previous
// execution of the same tree is cleared first, so toggling the knob or
// re-executing a caller-held statement stays correct. Runs once per
// execution, before any parallel fan-out; workers only read the result.
func (r *Runner) installPrepared(exprs ...Expr) {
	enabled := r.prep && !r.reg.mbr
	for _, e := range exprs {
		walkExpr(e, func(x Expr) {
			if fc, ok := x.(*FuncCall); ok {
				fc.prep = nil
				if enabled {
					r.tryPrepare(fc)
				}
			}
		})
	}
}

// tryPrepare installs prepared state on the call when exactly one
// geometry operand is constant (no column references) and evaluates
// cleanly to a geometry. Any irregularity — both sides constant,
// neither, evaluation error, NULL, non-geometry, invalid ST_RELATE
// pattern — leaves the call on the unprepared path, which reproduces
// the lazy per-row semantics (a statement whose scan yields no rows
// must not surface the constant's evaluation error).
func (r *Runner) tryPrepare(fc *FuncCall) {
	if pred, ok := topoPredicates[fc.Name]; ok && len(fc.Args) == 2 {
		ci, ok := constGeomSide(fc.Args[0], fc.Args[1])
		if !ok {
			return
		}
		g, ok := r.evalConstGeom(fc.Args[ci])
		if !ok {
			return
		}
		fc.prep = &preparedCall{p: topo.Prepare(g), pred: pred, constIdx: ci}
		return
	}
	if fc.Name == "ST_RELATE" && len(fc.Args) == 3 {
		pat, ok := r.constRelatePattern(fc.Args[2])
		if !ok {
			return
		}
		ci, ok := constGeomSide(fc.Args[0], fc.Args[1])
		if !ok {
			return
		}
		g, ok := r.evalConstGeom(fc.Args[ci])
		if !ok {
			return
		}
		fc.prep = &preparedCall{p: topo.Prepare(g), pattern: pat, relate: true, constIdx: ci}
	}
}

// constGeomSide picks the constant operand when exactly one of the two
// has no column references.
func constGeomSide(a0, a1 Expr) (int, bool) {
	c0, c1 := maxRef(a0) < 0, maxRef(a1) < 0
	switch {
	case c0 && !c1:
		return 0, true
	case c1 && !c0:
		return 1, true
	}
	return 0, false
}

// evalConstGeom evaluates a reference-free expression to a non-nil
// geometry, reporting false on error, NULL or a non-geometry value.
func (r *Runner) evalConstGeom(e Expr) (geom.Geometry, bool) {
	v, err := Eval(e, nil, r.reg)
	if err != nil || v.IsNull() || v.Type != storage.TypeGeom || v.Geom == nil {
		return nil, false
	}
	return v.Geom, true
}

// constRelatePattern evaluates a reference-free ST_RELATE pattern
// argument, reporting false unless it is valid text.
func (r *Runner) constRelatePattern(e Expr) (string, bool) {
	if maxRef(e) >= 0 {
		return "", false
	}
	v, err := Eval(e, nil, r.reg)
	if err != nil || v.Type != storage.TypeText || !topo.ValidPattern(v.Text) {
		return "", false
	}
	return v.Text, true
}

// prepFilterSpec marks one residual filter of a join stage as an
// index-nested-loop spatial predicate: a top-level topological call
// whose one geometry operand reads only outer stages (offsets < lo)
// and whose other operand reads this stage. Per produce invocation —
// i.e. per outer row — the outer operand is evaluated once, prepared,
// and reused across every inner row of that invocation.
type prepFilterSpec struct {
	idx      int // position in the stage's filter list
	fc       *FuncCall
	pred     topo.Predicate
	pattern  string
	relate   bool
	outerIdx int
}

// joinPrepSpecs analyzes a join stage's residual filters (stage offset
// lo > 0) for specialization candidates. Returns nil when preparation
// is disabled or nothing qualifies, in which case the stage evaluates
// filters on the shared plain path with zero per-invocation cost.
func (r *Runner) joinPrepSpecs(filters []Expr, lo int) []prepFilterSpec {
	if !r.prep || r.reg.mbr || lo == 0 {
		return nil
	}
	var specs []prepFilterSpec
	for i, f := range filters {
		fc, ok := f.(*FuncCall)
		if !ok || fc.prep != nil {
			continue
		}
		spec := prepFilterSpec{idx: i, fc: fc}
		if pred, ok := topoPredicates[fc.Name]; ok && len(fc.Args) == 2 {
			spec.pred = pred
		} else if fc.Name == "ST_RELATE" && len(fc.Args) == 3 {
			pat, ok := r.constRelatePattern(fc.Args[2])
			if !ok {
				continue
			}
			spec.pattern, spec.relate = pat, true
		} else {
			continue
		}
		oi, ok := outerGeomSide(fc.Args[0], fc.Args[1], lo)
		if !ok {
			continue
		}
		spec.outerIdx = oi
		specs = append(specs, spec)
	}
	return specs
}

// outerGeomSide picks the operand fixed by the outer prefix: all of
// its references below lo (with at least one), while the other operand
// reads the current stage.
func outerGeomSide(a0, a1 Expr, lo int) (int, bool) {
	outer0 := maxRef(a0) >= 0 && refsInRange(a0, 0, lo)
	outer1 := maxRef(a1) >= 0 && refsInRange(a1, 0, lo)
	switch {
	case outer0 && maxRef(a1) >= lo:
		return 0, true
	case outer1 && maxRef(a0) >= lo:
		return 1, true
	}
	return 0, false
}

// filterFn evaluates one residual filter over a row.
type filterFn func(row []storage.Value) (storage.Value, error)

// specialize builds the per-invocation evaluator for a marked filter.
// The outer geometry is prepared lazily on the first inner row — an
// empty inner scan must not pay for (or surface errors from) the outer
// evaluation, matching the unprepared path. If the outer operand does
// not evaluate to a geometry, every row falls back to plain Eval,
// which reproduces the exact error/NULL precedence.
func (sp *prepFilterSpec) specialize(r *Runner) filterFn {
	var inited, failed bool
	var pc preparedCall
	return func(row []storage.Value) (storage.Value, error) {
		if !inited {
			inited = true
			v, err := Eval(sp.fc.Args[sp.outerIdx], row, r.reg)
			if err != nil || v.IsNull() || v.Type != storage.TypeGeom || v.Geom == nil {
				failed = true
			} else {
				pc = preparedCall{
					p:        topo.Prepare(v.Geom),
					pred:     sp.pred,
					pattern:  sp.pattern,
					relate:   sp.relate,
					constIdx: sp.outerIdx,
				}
			}
		}
		if failed {
			return Eval(sp.fc, row, r.reg)
		}
		return pc.eval(sp.fc, row, r.reg)
	}
}
