package sql

import (
	"errors"
	"fmt"

	"jackpine/internal/geom"
	"jackpine/internal/storage"
)

// errBatchFallback signals that a statically batch-eligible plan hit a
// runtime shape the batch machinery cannot amortize (a spatial window
// with only a handful of index candidates); the caller reruns stage 0
// through the row path instead. Never surfaces to users.
var errBatchFallback = errors.New("sql: batch stage 0 falls back to row path")

// batchFallbackMin is the minimum spatial-window candidate count worth
// batching. Below it the fixed per-query batch cost (pool checkout,
// column reset, envelope fill) exceeds the cascade savings — point
// probes like "polygons containing this point" fetch a couple of rows
// and regress under batching — so the plan reverts to tuple-at-a-time.
// The threshold is deliberately low: a fallback re-runs the index
// search, so it must only fire where the batch could never win.
const batchFallbackMin = 8

// Batch-at-a-time stage-0 execution. Eligible plans replace the
// tuple-at-a-time scan of the driving table with column batches
// (storage.ColBatch): the table fills a batch, prefilters it against
// the MBR window with one pass over flat envelope arrays, and hands the
// survivors here, where the stage's residual filters run column-major
// over the selection vector. Prepared topological predicates evaluate a
// whole batch's candidates through one kernel call; surviving rows are
// then emitted — as fresh full-width copies, since batch memory is
// recycled — into the unchanged join/aggregate/sort pipeline.
//
// The batch path is byte-equivalent to the row path on success. Two
// narrow divergences are accepted and documented in DESIGN.md: a batch
// validates all of its tuples and envelopes before materializing any,
// so corrupt data can surface a different (but same-shaped) error than
// the strictly row-ordered scan; and when several filters would each
// error on different rows, the column-major cascade can surface a
// different conjunct's error than row-major short-circuiting.

// nextFn forwards one surviving full-width row into the rest of the
// pipeline (the next join stage, or the sink for single-table plans).
type nextFn func(row []storage.Value, emit emitFn) (bool, error)

// batchFilter is one stage-0 residual filter, pre-classified so the
// batch loop dispatches without re-inspecting the tree per row.
type batchFilter struct {
	expr Expr
	// fc is set when the filter is a top-level non-aggregate call: its
	// arguments evaluate into a reused buffer instead of a fresh slice
	// per row.
	fc *FuncCall
	// pc is set when fc additionally carries a prepared constant side:
	// the whole batch's candidates go through one prepared-kernel call.
	pc *preparedCall
}

// batchPlan is the shared, read-only batch state of one query: built
// once after planning, read concurrently by every shard.
type batchPlan struct {
	r       *Runner
	filters []batchFilter
	width   int // scope width of emitted rows
	// ephCols lists stage-0 columns that only this stage's filters
	// read; emitted survivor rows NULL them so arena-decoded geometries
	// never escape the batch.
	ephCols []int
}

// batchExec is the per-shard scratch of the batch filter cascade. All
// slices are reused across batches; nothing here is shared.
type batchExec struct {
	plan  *batchPlan
	sel2  []int // survivor accumulator (compacted in place)
	slots []int // slots feeding a prepared kernel call
	geoms []geom.Geometry
	outs  []bool
	args  []storage.Value // argument buffer for plain calls
}

// hoistConsts returns the filter with every maximal constant subtree
// (no column references) replaced by its evaluated literal, copying
// nodes only along changed paths. Evaluation failures keep the original
// subtree so errors stay lazy: a scan that yields no rows must not
// surface a constant's error, exactly like the row path. Registry
// functions are pure, so eager evaluation of a subtree the row path
// would re-evaluate per row (or short-circuit past) is unobservable.
func hoistConsts(e Expr, r *Runner) Expr {
	if e == nil {
		return nil
	}
	if _, ok := e.(*Literal); ok {
		return e
	}
	if maxRef(e) < 0 {
		v, err := Eval(e, nil, r.reg)
		if err != nil {
			return e
		}
		return &Literal{Value: v}
	}
	switch t := e.(type) {
	case *BinaryExpr:
		l, rr := hoistConsts(t.Left, r), hoistConsts(t.Right, r)
		if l != t.Left || rr != t.Right {
			return &BinaryExpr{Op: t.Op, Left: l, Right: rr}
		}
	case *UnaryExpr:
		if x := hoistConsts(t.Expr, r); x != t.Expr {
			return &UnaryExpr{Op: t.Op, Expr: x}
		}
	case *IsNull:
		if x := hoistConsts(t.Expr, r); x != t.Expr {
			return &IsNull{Expr: x, Negate: t.Negate}
		}
	case *Between:
		x, lo, hi := hoistConsts(t.Expr, r), hoistConsts(t.Lo, r), hoistConsts(t.Hi, r)
		if x != t.Expr || lo != t.Lo || hi != t.Hi {
			return &Between{Expr: x, Lo: lo, Hi: hi}
		}
	case *FuncCall:
		var args []Expr
		for i, a := range t.Args {
			na := hoistConsts(a, r)
			if na != a && args == nil {
				args = append([]Expr(nil), t.Args...)
			}
			if args != nil {
				args[i] = na
			}
		}
		if args != nil {
			return &FuncCall{Name: t.Name, Args: args, Star: t.Star, prep: t.prep}
		}
	}
	return e
}

// newBatchPlan hoists and classifies the stage-0 filters. ephemeral is
// the stage-0 table's table-relative ephemeral mask (may be nil).
func (r *Runner) newBatchPlan(filters []Expr, width int, ephemeral []bool) *batchPlan {
	p := &batchPlan{r: r, width: width}
	for _, f := range filters {
		bf := batchFilter{expr: hoistConsts(f, r)}
		if fc, ok := bf.expr.(*FuncCall); ok && !IsAggregateCall(fc) {
			bf.fc = fc
			bf.pc = fc.prep
		}
		p.filters = append(p.filters, bf)
	}
	for i, e := range ephemeral {
		if e {
			p.ephCols = append(p.ephCols, i)
		}
	}
	return p
}

// batchEligible reports whether the stage-0 scan of this plan runs
// batched: the knob is on, the table supports batch access, and the
// plan has no early-exit shape (kNN and bare LIMIT stream row-at-a-time
// where stopping mid-batch would waste the overshoot).
func (r *Runner) batchEligible(sel *Select, tbl Table, kind accessKind, hasAgg, knn bool) (BatchTable, bool) {
	if !r.batch || knn {
		return nil, false
	}
	if kind != accessFullScan && kind != accessSpatialWindow {
		return nil, false
	}
	if sel.Limit >= 0 && !hasAgg && len(sel.OrderBy) == 0 {
		return nil, false
	}
	bt, ok := tbl.(BatchTable)
	return bt, ok
}

// run applies the filter cascade to one batch and emits the survivors.
func (ex *batchExec) run(b *storage.ColBatch, next nextFn, emit emitFn) (bool, error) {
	p := ex.plan
	p.r.batchBatches.Add(1)
	p.r.batchRows.Add(int64(len(b.Sel)))
	sel := b.Sel
	for i := range p.filters {
		if len(sel) == 0 {
			return true, nil
		}
		f := &p.filters[i]
		var err error
		switch {
		case f.pc != nil:
			sel, err = ex.runPrepared(b, f.fc, f.pc, sel)
		case f.fc != nil:
			sel, err = ex.runPlainCall(b, f.fc, sel)
		default:
			sel, err = ex.runGeneric(b, f.expr, sel)
		}
		if err != nil {
			return false, err
		}
	}
	for _, s := range sel {
		full := make([]storage.Value, p.width) //lint:allow batchalloc survivor rows escape the recycled batch
		copy(full, b.Row(s))
		for _, c := range p.ephCols {
			full[c] = storage.Value{}
		}
		cont, err := next(full, emit)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// runPrepared evaluates one prepared topological filter over the
// selection: the variable operand is evaluated per survivor (same NULL
// and type-error semantics as preparedCall.eval), non-NULL geometries
// feed one batch kernel call, and prepHits advances by the number of
// evaluated candidates — identical totals to the per-row fast path.
func (ex *batchExec) runPrepared(b *storage.ColBatch, fc *FuncCall, pc *preparedCall, sel []int) ([]int, error) {
	reg := ex.plan.r.reg
	varIdx := 1 - pc.constIdx
	arg := fc.Args[varIdx]
	ex.slots = ex.slots[:0]
	ex.geoms = ex.geoms[:0]
	for _, s := range sel {
		v, err := Eval(arg, b.Row(s), reg)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			continue // NULL predicate result: row dropped
		}
		if v.Type != storage.TypeGeom {
			fn := "predicate"
			if pc.relate {
				fn = "ST_RELATE"
			}
			return nil, fmt.Errorf("sql: %s: argument %d is %s, want GEOMETRY", fn, varIdx+1, v.Type)
		}
		if v.Geom == nil {
			continue
		}
		ex.slots = append(ex.slots, s)
		ex.geoms = append(ex.geoms, v.Geom)
	}
	if cap(ex.outs) < len(ex.geoms) {
		ex.outs = make([]bool, len(ex.geoms))
	}
	outs := ex.outs[:len(ex.geoms)]
	switch {
	case pc.relate && pc.constIdx == 0:
		pc.p.RelatePatternBatch(ex.geoms, pc.pattern, outs)
	case pc.relate:
		pc.p.RelatePatternBatchReversed(ex.geoms, pc.pattern, outs)
	case pc.constIdx == 0:
		pc.p.EvalBatch(pc.pred, ex.geoms, outs)
	default:
		pc.p.EvalBatchReversed(pc.pred, ex.geoms, outs)
	}
	reg.prepHits.Add(int64(len(ex.geoms)))
	out := ex.sel2[:0]
	for i, s := range ex.slots {
		if outs[i] {
			out = append(out, s)
		}
	}
	ex.sel2 = out
	return out, nil
}

// runPlainCall evaluates a top-level unprepared call with a reused
// argument buffer (Value has value semantics and registry functions do
// not retain the slice), removing the per-row args allocation of Eval.
func (ex *batchExec) runPlainCall(b *storage.ColBatch, fc *FuncCall, sel []int) ([]int, error) {
	reg := ex.plan.r.reg
	if cap(ex.args) < len(fc.Args) {
		ex.args = make([]storage.Value, len(fc.Args))
	}
	args := ex.args[:len(fc.Args)]
	out := ex.sel2[:0]
	for _, s := range sel {
		row := b.Row(s)
		for i, a := range fc.Args {
			v, err := Eval(a, row, reg)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		v, err := reg.Call(fc.Name, args)
		if err != nil {
			return nil, err
		}
		if v.IsNull() || !truthy(v) {
			continue
		}
		out = append(out, s)
	}
	ex.sel2 = out
	return out, nil
}

// runGeneric evaluates any other filter shape row by row over the
// selection. Compaction is in place: the write index never passes the
// read index, so out may alias sel.
func (ex *batchExec) runGeneric(b *storage.ColBatch, f Expr, sel []int) ([]int, error) {
	reg := ex.plan.r.reg
	out := ex.sel2[:0]
	for _, s := range sel {
		v, err := Eval(f, b.Row(s), reg)
		if err != nil {
			return nil, err
		}
		if v.IsNull() || !truthy(v) {
			continue
		}
		out = append(out, s)
	}
	ex.sel2 = out
	return out, nil
}

// runBatchStage0 drives the serial batched stage-0 scan. The batch
// plan is built lazily (planFn) so statements that fall back to the
// row path before processing a batch never pay for its construction.
func (r *Runner) runBatchStage0(tbl BatchTable, path accessPath, planFn func() *batchPlan,
	next nextFn, emit emitFn) (bool, error) {

	switch path.kind {
	case accessFullScan:
		proj, skip, err := path.scanProjection(nil, r.reg)
		if err != nil {
			return false, err
		}
		if skip {
			return true, nil
		}
		ex := &batchExec{plan: planFn()}
		cont := true
		err = tbl.ScanBatch(0, 1, proj, r.batchSize, func(b *storage.ColBatch) (bool, error) {
			c, err := ex.run(b, next, emit)
			cont = c
			return c, err
		})
		return cont, err

	case accessSpatialWindow:
		window, err := path.evalWindow(nil, r.reg)
		if err != nil {
			return false, err
		}
		if window.IsEmpty() {
			return true, nil
		}
		var cands []RowID
		path.spatial.Search(window, func(id RowID) bool {
			cands = append(cands, id)
			return true
		})
		if len(cands) == 0 {
			return true, nil
		}
		if len(cands) < batchFallbackMin {
			return false, errBatchFallback
		}
		return r.batchRefine(tbl, path, &batchExec{plan: planFn()}, cands, next, emit)
	}
	return false, fmt.Errorf("sql: access path %s cannot run batched", path.kind)
}

// batchRefine fetches spatial-window candidates in batch-sized chunks
// (preserving index search order) and runs the filter cascade on each.
func (r *Runner) batchRefine(tbl BatchTable, path accessPath, ex *batchExec,
	cands []RowID, next nextFn, emit emitFn) (bool, error) {

	if len(cands) == 0 {
		return true, nil
	}
	proj := Projection{Need: path.need, MBRCol: -1, Ephemeral: path.ephemeral}
	b := storage.GetColBatch()
	defer storage.PutColBatch(b)
	size := r.batchSize
	if size <= 0 {
		size = defaultBatchSize
	}
	for lo := 0; lo < len(cands); lo += size {
		hi := lo + size
		if hi > len(cands) {
			hi = len(cands)
		}
		if err := tbl.FetchBatch(cands[lo:hi], proj, b); err != nil {
			return false, err
		}
		cont, err := ex.run(b, next, emit)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// makeBatchShardRunner is the batch counterpart of makeShardRunner:
// full scans shard the heap (identical partitioning), spatial windows
// share one candidate collection and chunk it contiguously, so shard
// concatenation reproduces the serial row order exactly.
func (r *Runner) makeBatchShardRunner(tbl BatchTable, path accessPath, planFn func() *batchPlan,
	workers int, next nextFn) (shardFn, error) {

	switch path.kind {
	case accessFullScan:
		proj, skip, err := path.scanProjection(nil, r.reg)
		if err != nil {
			return nil, err
		}
		plan := planFn()
		return func(shard int, emit emitFn) error {
			if skip {
				return nil
			}
			ex := &batchExec{plan: plan}
			return tbl.ScanBatch(shard, workers, proj, r.batchSize, func(b *storage.ColBatch) (bool, error) {
				return ex.run(b, next, emit)
			})
		}, nil

	case accessSpatialWindow:
		window, err := path.evalWindow(nil, r.reg)
		if err != nil {
			return nil, err
		}
		var cands []RowID
		if !window.IsEmpty() {
			path.spatial.Search(window, func(id RowID) bool {
				cands = append(cands, id)
				return true
			})
		}
		if n := len(cands); n > 0 && n < batchFallbackMin {
			return nil, errBatchFallback
		}
		plan := planFn()
		return func(shard int, emit emitFn) error {
			ex := &batchExec{plan: plan}
			clo := shard * len(cands) / workers
			chi := (shard + 1) * len(cands) / workers
			_, err := r.batchRefine(tbl, path, ex, cands[clo:chi], next, emit)
			return err
		}, nil
	}
	return nil, fmt.Errorf("sql: access path %s cannot run batched in parallel", path.kind)
}
