package sql

import (
	"fmt"
	"strconv"
	"strings"

	"jackpine/internal/storage"
)

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokOp, ";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected input after statement: %q", p.peek().raw)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error near offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// accept consumes the next token when it matches kind and (for idents and
// ops) the given text.
func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.peek()
	if t.kind != kind || (text != "" && t.text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, p.errorf("expected %s, found %q", want, t.raw)
	}
	return p.advance(), nil
}

// keyword consumes the identifier keyword kw if next.
func (p *parser) keyword(kw string) bool { return p.accept(tokIdent, kw) }

func (p *parser) expectKeyword(kw string) error {
	_, err := p.expect(tokIdent, kw)
	return err
}

func (p *parser) identifier() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	return strings.ToLower(t.raw), nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch p.peek().text {
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "SELECT":
		return p.parseSelect()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "DROP":
		p.advance()
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		ifExists := false
		if p.keyword("IF") {
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		table, err := p.identifier()
		if err != nil {
			return nil, err
		}
		return &DropTable{Table: table, IfExists: ifExists}, nil
	case "VACUUM":
		p.advance()
		table, err := p.identifier()
		if err != nil {
			return nil, err
		}
		return &Vacuum{Table: table}, nil
	case "EXPLAIN":
		p.advance()
		if p.peek().text != "SELECT" {
			return nil, p.errorf("EXPLAIN supports SELECT statements only")
		}
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Query: inner.(*Select)}, nil
	default:
		return nil, p.errorf("expected statement, found %q", p.peek().raw)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	switch {
	case p.keyword("TABLE"):
		name, err := p.identifier()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var cols []Column
		for {
			colName, err := p.identifier()
			if err != nil {
				return nil, err
			}
			colType, err := p.parseType()
			if err != nil {
				return nil, err
			}
			cols = append(cols, Column{Name: colName, Type: colType})
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return &CreateTable{Name: name, Columns: cols}, nil

	case p.keyword("SPATIAL"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseIndexTail(true)
	case p.keyword("INDEX"):
		return p.parseIndexTail(false)
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseIndexTail(spatial bool) (Statement, error) {
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.identifier()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Columns: cols, Spatial: spatial}, nil
}

func (p *parser) parseType() (storage.ValueType, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return 0, err
	}
	// Swallow VARCHAR(n)-style size arguments.
	if p.accept(tokOp, "(") {
		if _, err := p.expect(tokNumber, ""); err != nil {
			return 0, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return 0, err
		}
	}
	switch t.text {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return storage.TypeInt, nil
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return storage.TypeFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return storage.TypeText, nil
	case "GEOMETRY", "POINT", "LINESTRING", "POLYGON", "MULTIPOLYGON", "MULTILINESTRING":
		return storage.TypeGeom, nil
	case "BOOL", "BOOLEAN":
		return storage.TypeBool, nil
	default:
		return 0, p.errorf("unknown type %q", t.raw)
	}
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	for {
		if _, err := p.expect(tokOp, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseSelect() (Statement, error) {
	p.advance() // SELECT
	sel := &Select{Limit: -1}
	for {
		if p.accept(tokOp, "*") {
			sel.Exprs = append(sel.Exprs, SelectExpr{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectExpr{Expr: e}
			if p.keyword("AS") {
				alias, err := p.identifier()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			}
			sel.Exprs = append(sel.Exprs, item)
		}
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from
	for p.keyword("JOIN") || p.peek().text == "INNER" {
		if p.peek().text == "INNER" {
			p.advance()
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, Join{Table: ref, On: cond})
	}
	if p.keyword("WHERE") {
		if sel.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.keyword("DESC") {
				key.Desc = true
			} else {
				p.keyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	if p.keyword("LIMIT") {
		n, err := p.parseNonNegInt()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
		if p.keyword("OFFSET") {
			if sel.Offset, err = p.parseNonNegInt(); err != nil {
				return nil, err
			}
		}
	}
	return sel, nil
}

func (p *parser) parseNonNegInt() (int, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errorf("expected non-negative integer, found %q", t.raw)
	}
	return n, nil
}

func (p *parser) parseTableRef() (*TableRef, error) {
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	ref := &TableRef{Table: name}
	if p.keyword("AS") {
		if ref.Alias, err = p.identifier(); err != nil {
			return nil, err
		}
	} else if t := p.peek(); t.kind == tokIdent && !reservedWord(t.text) {
		p.advance()
		ref.Alias = strings.ToLower(t.raw)
	}
	return ref, nil
}

func reservedWord(w string) bool {
	switch w {
	case "JOIN", "INNER", "ON", "WHERE", "GROUP", "ORDER", "LIMIT", "OFFSET",
		"AS", "AND", "OR", "NOT", "SET", "VALUES", "FROM", "BY", "DESC", "ASC",
		"IS", "NULL", "BETWEEN", "LIKE", "SELECT", "INSERT", "UPDATE", "DELETE":
		return true
	}
	return false
}

func (p *parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: table}
	for {
		col, err := p.identifier()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Expr: e})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if p.keyword("WHERE") {
		if upd.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return upd, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.identifier()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	if p.keyword("WHERE") {
		if del.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return del, nil
}

// --- expression parsing (precedence climbing) --------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.keyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.keyword("IS") {
		negate := p.keyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Expr: left, Negate: negate}, nil
	}
	if p.keyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{Expr: left, Lo: lo, Hi: hi}, nil
	}
	if p.keyword("LIKE") {
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "LIKE", Left: left, Right: right}, nil
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(tokOp, op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "+"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "+", Left: left, Right: right}
		case p.accept(tokOp, "-"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "-", Left: left, Right: right}
		case p.accept(tokOp, "||"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "||", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokOp, "*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "*", Left: left, Right: right}
		case p.accept(tokOp, "/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "/", Left: left, Right: right}
		case p.accept(tokOp, "%"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "%", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokOp, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			switch lit.Value.Type {
			case storage.TypeInt:
				return &Literal{Value: storage.NewInt(-lit.Value.Int)}, nil
			case storage.TypeFloat:
				return &Literal{Value: storage.NewFloat(-lit.Value.Float)}, nil
			}
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.raw)
			}
			return &Literal{Value: storage.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.raw)
		}
		return &Literal{Value: storage.NewInt(n)}, nil

	case tokString:
		p.advance()
		return &Literal{Value: storage.NewText(t.text)}, nil

	case tokOp:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected token %q", t.raw)

	case tokIdent:
		switch t.text {
		case "NULL":
			p.advance()
			return &Literal{Value: storage.Null()}, nil
		case "TRUE":
			p.advance()
			return &Literal{Value: storage.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Value: storage.NewBool(false)}, nil
		}
		p.advance()
		// Function call?
		if p.accept(tokOp, "(") {
			fn := &FuncCall{Name: t.text}
			if p.accept(tokOp, "*") {
				fn.Star = true
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
				return fn, nil
			}
			if !p.accept(tokOp, ")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fn.Args = append(fn.Args, arg)
					if !p.accept(tokOp, ",") {
						break
					}
				}
				if _, err := p.expect(tokOp, ")"); err != nil {
					return nil, err
				}
			}
			return fn, nil
		}
		// Qualified column?
		if p.accept(tokOp, ".") {
			col, err := p.identifier()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: strings.ToLower(t.raw), Column: col, Index: -1}, nil
		}
		return &ColumnRef{Column: strings.ToLower(t.raw), Index: -1}, nil
	}
	return nil, p.errorf("unexpected token %q", t.raw)
}
