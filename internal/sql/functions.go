package sql

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"jackpine/internal/geom"
	"jackpine/internal/overlay"
	"jackpine/internal/storage"
	"jackpine/internal/topo"
)

// FuncImpl is a scalar function implementation.
type FuncImpl func(args []storage.Value) (storage.Value, error)

// RegistryOptions configure the function registry for an engine profile.
type RegistryOptions struct {
	// MBRPredicates makes every topological predicate evaluate on
	// minimum bounding rectangles only (the MySQL-5.x emulation).
	MBRPredicates bool
	// Disabled lists function names (canonical upper case) the profile
	// does not support; calling them is a bind-time error.
	Disabled []string
}

// Registry maps function names to implementations.
type Registry struct {
	funcs map[string]FuncImpl
	mbr   bool

	// Prepared-geometry counters: hits are exact topological
	// evaluations routed through a prepared constant side, misses are
	// exact evaluations that re-decomposed both operands. MBR-profile
	// evaluations count as neither (nothing to prepare).
	prepHits   atomic.Int64
	prepMisses atomic.Int64
}

// PreparedCounters returns the cumulative prepared-path hit/miss
// counters for topological predicate evaluation.
func (r *Registry) PreparedCounters() (hits, misses int64) {
	return r.prepHits.Load(), r.prepMisses.Load()
}

// ResetPreparedCounters zeroes the prepared-path counters.
func (r *Registry) ResetPreparedCounters() {
	r.prepHits.Store(0)
	r.prepMisses.Store(0)
}

// Has reports whether the named function exists.
func (r *Registry) Has(name string) bool {
	_, ok := r.funcs[name]
	return ok
}

// MBRPredicates reports whether the registry evaluates topological
// predicates on MBRs.
func (r *Registry) MBRPredicates() bool { return r.mbr }

// Names returns the sorted list of registered function names.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Call invokes the named function.
func (r *Registry) Call(name string, args []storage.Value) (storage.Value, error) {
	fn, ok := r.funcs[name]
	if !ok {
		return storage.Null(), fmt.Errorf("sql: function %s is not supported by this engine", name)
	}
	return fn(args)
}

// NewRegistry builds a registry with the complete builtin function set,
// adjusted by the options.
func NewRegistry(opts RegistryOptions) *Registry {
	r := &Registry{funcs: make(map[string]FuncImpl), mbr: opts.MBRPredicates}
	r.registerScalars()
	r.registerSpatial(opts.MBRPredicates)
	r.registerExtras()
	for _, name := range opts.Disabled {
		delete(r.funcs, strings.ToUpper(name))
	}
	return r
}

// --- argument helpers ---------------------------------------------------

func argGeom(args []storage.Value, i int, fn string) (geom.Geometry, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("sql: %s: missing argument %d", fn, i+1)
	}
	v := args[i]
	if v.IsNull() {
		return nil, nil
	}
	if v.Type != storage.TypeGeom {
		return nil, fmt.Errorf("sql: %s: argument %d is %s, want GEOMETRY", fn, i+1, v.Type)
	}
	return v.Geom, nil
}

func argFloat(args []storage.Value, i int, fn string) (float64, bool, error) {
	if i >= len(args) {
		return 0, false, fmt.Errorf("sql: %s: missing argument %d", fn, i+1)
	}
	if args[i].IsNull() {
		return 0, false, nil
	}
	f, ok := args[i].AsFloat()
	if !ok {
		return 0, false, fmt.Errorf("sql: %s: argument %d is %s, want numeric", fn, i+1, args[i].Type)
	}
	return f, true, nil
}

func argText(args []storage.Value, i int, fn string) (string, bool, error) {
	if i >= len(args) {
		return "", false, fmt.Errorf("sql: %s: missing argument %d", fn, i+1)
	}
	if args[i].IsNull() {
		return "", false, nil
	}
	if args[i].Type != storage.TypeText {
		return "", false, fmt.Errorf("sql: %s: argument %d is %s, want TEXT", fn, i+1, args[i].Type)
	}
	return args[i].Text, true, nil
}

func arity(n int, fn string) FuncImpl {
	return func(args []storage.Value) (storage.Value, error) {
		return storage.Null(), fmt.Errorf("sql: %s expects %d argument(s), got %d", fn, n, len(args))
	}
}

// wrapN enforces the argument count before delegating.
func wrapN(n int, fn string, impl FuncImpl) FuncImpl {
	return func(args []storage.Value) (storage.Value, error) {
		if len(args) != n {
			return arity(n, fn)(args)
		}
		return impl(args)
	}
}

// --- scalar builtins ----------------------------------------------------

func (r *Registry) registerScalars() {
	r.funcs["ABS"] = wrapN(1, "ABS", func(args []storage.Value) (storage.Value, error) {
		switch args[0].Type {
		case storage.TypeNull:
			return storage.Null(), nil
		case storage.TypeInt:
			v := args[0].Int
			if v < 0 {
				v = -v
			}
			return storage.NewInt(v), nil
		case storage.TypeFloat:
			return storage.NewFloat(math.Abs(args[0].Float)), nil
		}
		return storage.Null(), fmt.Errorf("sql: ABS of %s", args[0].Type)
	})
	r.funcs["FLOOR"] = wrapN(1, "FLOOR", numericUnary(math.Floor))
	r.funcs["CEIL"] = wrapN(1, "CEIL", numericUnary(math.Ceil))
	r.funcs["SQRT"] = wrapN(1, "SQRT", numericUnary(math.Sqrt))
	r.funcs["LOWER"] = wrapN(1, "LOWER", textUnary(strings.ToLower))
	r.funcs["UPPER"] = wrapN(1, "UPPER", textUnary(strings.ToUpper))
	r.funcs["LENGTH"] = wrapN(1, "LENGTH", func(args []storage.Value) (storage.Value, error) {
		if args[0].IsNull() {
			return storage.Null(), nil
		}
		if args[0].Type != storage.TypeText {
			return storage.Null(), fmt.Errorf("sql: LENGTH of %s", args[0].Type)
		}
		return storage.NewInt(int64(len(args[0].Text))), nil
	})
	r.funcs["COALESCE"] = func(args []storage.Value) (storage.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return storage.Null(), nil
	}
}

func numericUnary(f func(float64) float64) FuncImpl {
	return func(args []storage.Value) (storage.Value, error) {
		if args[0].IsNull() {
			return storage.Null(), nil
		}
		v, ok := args[0].AsFloat()
		if !ok {
			return storage.Null(), fmt.Errorf("sql: numeric function over %s", args[0].Type)
		}
		return storage.NewFloat(f(v)), nil
	}
}

func textUnary(f func(string) string) FuncImpl {
	return func(args []storage.Value) (storage.Value, error) {
		if args[0].IsNull() {
			return storage.Null(), nil
		}
		if args[0].Type != storage.TypeText {
			return storage.Null(), fmt.Errorf("sql: text function over %s", args[0].Type)
		}
		return storage.NewText(f(args[0].Text)), nil
	}
}

// --- spatial builtins ----------------------------------------------------

// topoPredicates maps ST_* names to named predicates.
var topoPredicates = map[string]topo.Predicate{
	"ST_EQUALS":     topo.PredEquals,
	"ST_DISJOINT":   topo.PredDisjoint,
	"ST_INTERSECTS": topo.PredIntersects,
	"ST_TOUCHES":    topo.PredTouches,
	"ST_CROSSES":    topo.PredCrosses,
	"ST_WITHIN":     topo.PredWithin,
	"ST_CONTAINS":   topo.PredContains,
	"ST_OVERLAPS":   topo.PredOverlaps,
	"ST_COVERS":     topo.PredCovers,
	"ST_COVEREDBY":  topo.PredCoveredBy,
}

func (r *Registry) registerSpatial(mbr bool) {
	for name, pred := range topoPredicates {
		pred := pred
		r.funcs[name] = wrapN(2, name, func(args []storage.Value) (storage.Value, error) {
			a, err := argGeom(args, 0, "predicate")
			if err != nil {
				return storage.Null(), err
			}
			b, err := argGeom(args, 1, "predicate")
			if err != nil {
				return storage.Null(), err
			}
			if a == nil || b == nil {
				return storage.Null(), nil
			}
			if mbr {
				return storage.NewBool(topo.MBREval(pred, a, b)), nil
			}
			r.prepMisses.Add(1)
			return storage.NewBool(pred.Eval(a, b)), nil
		})
	}

	r.funcs["ST_RELATE"] = wrapN(3, "ST_RELATE", func(args []storage.Value) (storage.Value, error) {
		a, err := argGeom(args, 0, "ST_RELATE")
		if err != nil {
			return storage.Null(), err
		}
		b, err := argGeom(args, 1, "ST_RELATE")
		if err != nil {
			return storage.Null(), err
		}
		pat, ok, err := argText(args, 2, "ST_RELATE")
		if err != nil {
			return storage.Null(), err
		}
		if a == nil || b == nil || !ok {
			return storage.Null(), nil
		}
		if !topo.ValidPattern(pat) {
			return storage.Null(), fmt.Errorf("sql: ST_RELATE: bad DE-9IM pattern %q", pat)
		}
		r.prepMisses.Add(1)
		return storage.NewBool(topo.RelatePattern(a, b, pat)), nil
	})

	r.funcs["ST_DWITHIN"] = wrapN(3, "ST_DWITHIN", func(args []storage.Value) (storage.Value, error) {
		a, err := argGeom(args, 0, "ST_DWITHIN")
		if err != nil {
			return storage.Null(), err
		}
		b, err := argGeom(args, 1, "ST_DWITHIN")
		if err != nil {
			return storage.Null(), err
		}
		d, ok, err := argFloat(args, 2, "ST_DWITHIN")
		if err != nil {
			return storage.Null(), err
		}
		if a == nil || b == nil || !ok {
			return storage.Null(), nil
		}
		if mbr {
			return storage.NewBool(a.Envelope().Distance(b.Envelope()) <= d), nil
		}
		return storage.NewBool(geom.DWithin(a, b, d)), nil
	})

	r.funcs["ST_DISTANCE"] = wrapN(2, "ST_DISTANCE", func(args []storage.Value) (storage.Value, error) {
		a, err := argGeom(args, 0, "ST_DISTANCE")
		if err != nil {
			return storage.Null(), err
		}
		b, err := argGeom(args, 1, "ST_DISTANCE")
		if err != nil {
			return storage.Null(), err
		}
		if a == nil || b == nil {
			return storage.Null(), nil
		}
		return storage.NewFloat(geom.Distance(a, b)), nil
	})

	geomUnaryFloat := func(name string, f func(geom.Geometry) float64) {
		r.funcs[name] = wrapN(1, name, func(args []storage.Value) (storage.Value, error) {
			g, err := argGeom(args, 0, name)
			if err != nil {
				return storage.Null(), err
			}
			if g == nil {
				return storage.Null(), nil
			}
			return storage.NewFloat(f(g)), nil
		})
	}
	geomUnaryFloat("ST_AREA", geom.Area)
	geomUnaryFloat("ST_LENGTH", geom.Length)
	geomUnaryFloat("ST_PERIMETER", func(g geom.Geometry) float64 {
		if g.Dimension() != 2 {
			return 0
		}
		return geom.Length(g)
	})

	geomUnaryGeom := func(name string, f func(geom.Geometry) geom.Geometry) {
		r.funcs[name] = wrapN(1, name, func(args []storage.Value) (storage.Value, error) {
			g, err := argGeom(args, 0, name)
			if err != nil {
				return storage.Null(), err
			}
			if g == nil {
				return storage.Null(), nil
			}
			return storage.NewGeom(f(g)), nil
		})
	}
	geomUnaryGeom("ST_ENVELOPE", func(g geom.Geometry) geom.Geometry {
		return g.Envelope().ToPolygon()
	})
	geomUnaryGeom("ST_CONVEXHULL", overlay.ConvexHull)
	geomUnaryGeom("ST_BOUNDARY", geom.Boundary)
	geomUnaryGeom("ST_CENTROID", func(g geom.Geometry) geom.Geometry {
		c, ok := geom.Centroid(g)
		if !ok {
			return geom.Point{Empty: true}
		}
		return geom.Point{Coord: c}
	})
	geomUnaryGeom("ST_POINTONSURFACE", func(g geom.Geometry) geom.Geometry {
		c, ok := geom.InteriorPoint(g)
		if !ok {
			return geom.Point{Empty: true}
		}
		return geom.Point{Coord: c}
	})

	geomBinaryGeom := func(name string, f func(a, b geom.Geometry) geom.Geometry) {
		r.funcs[name] = wrapN(2, name, func(args []storage.Value) (storage.Value, error) {
			a, err := argGeom(args, 0, name)
			if err != nil {
				return storage.Null(), err
			}
			b, err := argGeom(args, 1, name)
			if err != nil {
				return storage.Null(), err
			}
			if a == nil || b == nil {
				return storage.Null(), nil
			}
			return storage.NewGeom(f(a, b)), nil
		})
	}
	geomBinaryGeom("ST_UNION", overlay.Union)
	geomBinaryGeom("ST_INTERSECTION", overlay.Intersection)
	geomBinaryGeom("ST_DIFFERENCE", overlay.Difference)
	geomBinaryGeom("ST_SYMDIFFERENCE", overlay.SymDifference)

	r.funcs["ST_BUFFER"] = func(args []storage.Value) (storage.Value, error) {
		if len(args) != 2 && len(args) != 3 {
			return storage.Null(), fmt.Errorf("sql: ST_BUFFER expects 2 or 3 arguments, got %d", len(args))
		}
		g, err := argGeom(args, 0, "ST_BUFFER")
		if err != nil {
			return storage.Null(), err
		}
		d, ok, err := argFloat(args, 1, "ST_BUFFER")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil || !ok {
			return storage.Null(), nil
		}
		quadSegs := 0
		if len(args) == 3 {
			q, qok, err := argFloat(args, 2, "ST_BUFFER")
			if err != nil {
				return storage.Null(), err
			}
			if qok {
				quadSegs = int(q)
			}
		}
		return storage.NewGeom(overlay.Buffer(g, d, quadSegs)), nil
	}

	r.funcs["ST_GEOMFROMTEXT"] = wrapN(1, "ST_GEOMFROMTEXT", func(args []storage.Value) (storage.Value, error) {
		s, ok, err := argText(args, 0, "ST_GEOMFROMTEXT")
		if err != nil {
			return storage.Null(), err
		}
		if !ok {
			return storage.Null(), nil
		}
		g, err := geom.ParseWKT(s)
		if err != nil {
			return storage.Null(), fmt.Errorf("sql: ST_GEOMFROMTEXT: %w", err)
		}
		return storage.NewGeom(g), nil
	})

	r.funcs["ST_ASTEXT"] = wrapN(1, "ST_ASTEXT", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_ASTEXT")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil {
			return storage.Null(), nil
		}
		return storage.NewText(geom.WKT(g)), nil
	})

	r.funcs["ST_MAKEPOINT"] = wrapN(2, "ST_MAKEPOINT", func(args []storage.Value) (storage.Value, error) {
		x, okX, err := argFloat(args, 0, "ST_MAKEPOINT")
		if err != nil {
			return storage.Null(), err
		}
		y, okY, err := argFloat(args, 1, "ST_MAKEPOINT")
		if err != nil {
			return storage.Null(), err
		}
		if !okX || !okY {
			return storage.Null(), nil
		}
		return storage.NewGeom(geom.Pt(x, y)), nil
	})

	r.funcs["ST_MAKEENVELOPE"] = wrapN(4, "ST_MAKEENVELOPE", func(args []storage.Value) (storage.Value, error) {
		var coords [4]float64
		for i := range coords {
			v, ok, err := argFloat(args, i, "ST_MAKEENVELOPE")
			if err != nil {
				return storage.Null(), err
			}
			if !ok {
				return storage.Null(), nil
			}
			coords[i] = v
		}
		rect := geom.Rect{MinX: coords[0], MinY: coords[1], MaxX: coords[2], MaxY: coords[3]}
		return storage.NewGeom(rect.ToPolygon()), nil
	})

	r.funcs["ST_X"] = wrapN(1, "ST_X", pointOrdinate(func(p geom.Point) float64 { return p.X }))
	r.funcs["ST_Y"] = wrapN(1, "ST_Y", pointOrdinate(func(p geom.Point) float64 { return p.Y }))

	r.funcs["ST_DIMENSION"] = wrapN(1, "ST_DIMENSION", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_DIMENSION")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil {
			return storage.Null(), nil
		}
		return storage.NewInt(int64(g.Dimension())), nil
	})
	r.funcs["ST_NUMPOINTS"] = wrapN(1, "ST_NUMPOINTS", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_NUMPOINTS")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil {
			return storage.Null(), nil
		}
		return storage.NewInt(int64(g.NumCoords())), nil
	})
	r.funcs["ST_ISEMPTY"] = wrapN(1, "ST_ISEMPTY", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_ISEMPTY")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil {
			return storage.Null(), nil
		}
		return storage.NewBool(g.IsEmpty()), nil
	})
	r.funcs["ST_ISVALID"] = wrapN(1, "ST_ISVALID", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_ISVALID")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil {
			return storage.Null(), nil
		}
		return storage.NewBool(geom.IsValid(g)), nil
	})
	r.funcs["ST_GEOMETRYTYPE"] = wrapN(1, "ST_GEOMETRYTYPE", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_GEOMETRYTYPE")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil {
			return storage.Null(), nil
		}
		return storage.NewText(g.GeomType().String()), nil
	})
}

func pointOrdinate(f func(geom.Point) float64) FuncImpl {
	return func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_X/ST_Y")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil {
			return storage.Null(), nil
		}
		p, ok := g.(geom.Point)
		if !ok || p.Empty {
			return storage.Null(), fmt.Errorf("sql: ST_X/ST_Y requires a non-empty POINT")
		}
		return storage.NewFloat(f(p)), nil
	}
}
