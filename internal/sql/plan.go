package sql

import (
	"strings"

	"jackpine/internal/geom"
	"jackpine/internal/storage"
)

// accessKind identifies how a table is read.
type accessKind int

const (
	accessFullScan accessKind = iota
	accessSpatialWindow
	accessAttrSeek
	accessAttrRange
	accessKNN
	accessHashJoin
	accessPBSM
)

// String names the access path (used by EXPLAIN-style reporting and
// tests).
func (k accessKind) String() string {
	switch k {
	case accessFullScan:
		return "seqscan"
	case accessSpatialWindow:
		return "spatial-index"
	case accessAttrSeek:
		return "btree-seek"
	case accessAttrRange:
		return "btree-range"
	case accessKNN:
		return "knn"
	case accessHashJoin:
		return "hash-join"
	case accessPBSM:
		return "pbsm"
	}
	return "?"
}

// accessPath is a chosen physical access for one table.
type accessPath struct {
	kind accessKind

	// Spatial window scans: the window may depend on outer rows, so it
	// is an expression evaluated per invocation plus an optional
	// expansion distance (for ST_DWithin).
	spatial    SpatialIndex
	windowExpr Expr // geometry-valued
	expandExpr Expr // numeric, optional

	// Attribute seeks and ranges over (possibly composite) indexes:
	// equality probes for a prefix of the index columns, plus an
	// optional range on the following column.
	attr      AttrIndex
	eqExprs   []Expr
	eqTypes   []storage.ValueType
	rangeLo   Expr // optional lower bound on the next column
	rangeHi   Expr // optional upper bound on the next column
	rangeType storage.ValueType
	rangeLast bool // the range column is the index's final column

	// kNN scans.
	knnPointExpr Expr // geometry-valued centre
	knnK         int
	knnDistCol   int // row offset of the geometry column used in ORDER BY

	// Hash joins: the inner build column (offset within this table) and
	// the outer probe expression.
	hashCol  int
	hashExpr Expr

	// Partition-based spatial-merge joins: the grid/sweep build plan.
	// windowExpr/expandExpr above double as the probe-side key source so
	// the candidate map is keyed exactly like the INL window.
	pbsm *pbsmSpec

	// idxCol names the indexed column of spatial-window paths (EXPLAIN).
	idxCol string

	// need marks which table-relative columns the plan references; it is
	// passed to ScanProject/FetchProject so unreferenced columns are
	// never decoded. nil means all columns.
	need []bool

	// ephemeral marks needed geometry columns that only this stage's
	// residual filters read (nothing downstream references them). Batch
	// scans may decode such columns into recycled arena memory; the row
	// path ignores the mask. nil means none. Only ever set on stage-0
	// paths of batch-eligible plans.
	ephemeral []bool

	// MBR prefilter for unindexed sargable spatial predicates: full
	// scans skip rows whose geometry envelope (read straight from WKB)
	// does not intersect the probe's envelope. The exact predicate stays
	// in the residual filter, so results are unchanged — only the decode
	// work for envelope-disjoint rows is avoided.
	mbrPrefilter bool
	mbrCol       int // table-relative offset of the geometry column
	// windowExpr/expandExpr above are shared with spatial-window paths.
}

// splitConjuncts flattens nested ANDs.
func splitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// maxRef returns the largest bound column offset referenced (-1 if none).
func maxRef(e Expr) int {
	m := -1
	walkExpr(e, func(x Expr) {
		if c, ok := x.(*ColumnRef); ok && c.Index > m {
			m = c.Index
		}
	})
	return m
}

func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch t := e.(type) {
	case *BinaryExpr:
		walkExpr(t.Left, fn)
		walkExpr(t.Right, fn)
	case *UnaryExpr:
		walkExpr(t.Expr, fn)
	case *IsNull:
		walkExpr(t.Expr, fn)
	case *Between:
		walkExpr(t.Expr, fn)
		walkExpr(t.Lo, fn)
		walkExpr(t.Hi, fn)
	case *FuncCall:
		for _, a := range t.Args {
			walkExpr(a, fn)
		}
	}
}

// refsInRange reports whether every column reference falls in [lo, hi).
func refsInRange(e Expr, lo, hi int) bool {
	ok := true
	walkExpr(e, func(x Expr) {
		if c, isCol := x.(*ColumnRef); isCol && (c.Index < lo || c.Index >= hi) {
			ok = false
		}
	})
	return ok
}

// sargableSpatial are the predicates whose true results are confined to
// geometries whose envelopes intersect the probe's envelope.
var sargableSpatial = map[string]bool{
	"ST_INTERSECTS": true, "ST_CONTAINS": true, "ST_WITHIN": true,
	"ST_TOUCHES": true, "ST_CROSSES": true, "ST_OVERLAPS": true,
	"ST_EQUALS": true, "ST_COVERS": true, "ST_COVEREDBY": true,
}

// pickAccess selects an access path for the table occupying row offsets
// [lo, hi) of the scope. Conjuncts that reference only offsets < hi are
// candidates; outer offsets (< lo) act as per-invocation parameters (for
// index nested-loop joins). The chosen driving conjuncts remain in the
// residual filter (index access is a pre-filter, not exact).
func pickAccess(tbl Table, lo, hi int, scope *Scope, conjuncts []Expr) accessPath {
	for _, c := range conjuncts {
		if !refsInRange(c, 0, hi) {
			continue
		}
		if p, ok := trySpatialWindow(tbl, lo, hi, scope, c); ok {
			return p
		}
	}
	if p, ok := tryAttrPath(tbl, lo, hi, scope, conjuncts); ok {
		return p
	}
	// Inner side of a join with an unindexed equality condition: build a
	// hash table once instead of rescanning per outer row.
	if lo > 0 {
		for _, c := range conjuncts {
			if !refsInRange(c, 0, hi) {
				continue
			}
			if p, ok := tryHashJoin(lo, hi, c); ok {
				return p
			}
		}
	}
	// No index available: a sargable spatial predicate can still prune
	// full-scan rows by envelope before decoding them.
	for _, c := range conjuncts {
		if !refsInRange(c, 0, hi) {
			continue
		}
		if p, ok := tryMBRPrefilter(lo, hi, scope, c); ok {
			return p
		}
	}
	return accessPath{kind: accessFullScan}
}

// tryMBRPrefilter recognises the same pred(geomcol, probe) patterns as
// trySpatialWindow but without requiring a spatial index: a full scan
// can test each row's envelope (read from WKB without decoding) against
// the probe's envelope. Sound because sargableSpatial predicates are
// only true for envelope-intersecting geometries, and the exact
// predicate remains in the residual filter.
func tryMBRPrefilter(lo, hi int, scope *Scope, c Expr) (accessPath, bool) {
	fc, ok := c.(*FuncCall)
	if !ok {
		return accessPath{}, false
	}
	name := strings.ToUpper(fc.Name)
	isDWithin := name == "ST_DWITHIN"
	if !sargableSpatial[name] && !isDWithin {
		return accessPath{}, false
	}
	wantArgs := 2
	if isDWithin {
		wantArgs = 3
	}
	if len(fc.Args) != wantArgs {
		return accessPath{}, false
	}
	for i := 0; i < 2; i++ {
		col, isCol := fc.Args[i].(*ColumnRef)
		if !isCol || col.Index < lo || col.Index >= hi {
			continue
		}
		if scope.Column(col.Index).Type != storage.TypeGeom {
			continue
		}
		probe := fc.Args[1-i]
		if !refsInRange(probe, 0, lo) {
			continue
		}
		p := accessPath{
			kind:         accessFullScan,
			mbrPrefilter: true,
			mbrCol:       col.Index - lo,
			windowExpr:   probe,
		}
		if isDWithin {
			if !refsInRange(fc.Args[2], 0, lo) {
				continue
			}
			p.expandExpr = fc.Args[2]
		}
		return p, true
	}
	return accessPath{}, false
}

// trySpatialWindow recognises pred(geomcol, probe) patterns.
func trySpatialWindow(tbl Table, lo, hi int, scope *Scope, c Expr) (accessPath, bool) {
	fc, ok := c.(*FuncCall)
	if !ok {
		return accessPath{}, false
	}
	name := strings.ToUpper(fc.Name)
	isDWithin := name == "ST_DWITHIN"
	if !sargableSpatial[name] && !isDWithin {
		return accessPath{}, false
	}
	wantArgs := 2
	if isDWithin {
		wantArgs = 3
	}
	if len(fc.Args) != wantArgs {
		return accessPath{}, false
	}
	// One geometry argument must be a column of this table with a
	// spatial index; the other must not reference this table.
	for i := 0; i < 2; i++ {
		col, isCol := fc.Args[i].(*ColumnRef)
		if !isCol || col.Index < lo || col.Index >= hi {
			continue
		}
		probe := fc.Args[1-i]
		if !refsInRange(probe, 0, lo) {
			continue
		}
		idx := tbl.SpatialIndexOn(scope.Column(col.Index).Name)
		if idx == nil {
			continue
		}
		p := accessPath{
			kind:       accessSpatialWindow,
			spatial:    idx,
			windowExpr: probe,
			idxCol:     scope.Column(col.Index).Name,
		}
		if isDWithin {
			if !refsInRange(fc.Args[2], 0, lo) {
				continue
			}
			p.expandExpr = fc.Args[2]
		}
		return p, true
	}
	return accessPath{}, false
}

// tryAttrPath matches conjuncts against the table's attribute indexes:
// equality probes on a prefix of an index's columns, optionally followed
// by a range condition on the next column. The index with the longest
// matched prefix wins. Index scans are pre-filters — every driving
// conjunct stays in the residual filter — so bounds only need to be
// sound, not exact.
func tryAttrPath(tbl Table, lo, hi int, scope *Scope, conjuncts []Expr) (accessPath, bool) {
	// Collect candidate probes per column of this table.
	type probe struct {
		expr Expr
		op   string // "=", ">=", "<=" (normalized; BETWEEN yields both)
	}
	probes := make(map[string][]probe)
	addProbe := func(colExpr, valExpr Expr, op string) {
		col, ok := colExpr.(*ColumnRef)
		if !ok || col.Index < lo || col.Index >= hi {
			return
		}
		if !refsInRange(valExpr, 0, lo) {
			return
		}
		name := scope.Column(col.Index).Name
		probes[name] = append(probes[name], probe{expr: valExpr, op: op})
	}
	for _, c := range conjuncts {
		if !refsInRange(c, 0, hi) {
			continue
		}
		switch t := c.(type) {
		case *BinaryExpr:
			switch t.Op {
			case "=":
				addProbe(t.Left, t.Right, "=")
				addProbe(t.Right, t.Left, "=")
			case "<", "<=":
				addProbe(t.Left, t.Right, "<=")
				addProbe(t.Right, t.Left, ">=")
			case ">", ">=":
				addProbe(t.Left, t.Right, ">=")
				addProbe(t.Right, t.Left, "<=")
			}
		case *Between:
			addProbe(t.Expr, t.Lo, ">=")
			addProbe(t.Expr, t.Hi, "<=")
		}
	}
	if len(probes) == 0 {
		return accessPath{}, false
	}

	colType := func(name string) storage.ValueType {
		for i := lo; i < hi; i++ {
			if scope.Column(i).Name == name {
				return scope.Column(i).Type
			}
		}
		return storage.TypeNull
	}

	best := accessPath{}
	bestScore := 0
	for _, def := range tbl.AttrIndexes() {
		p := accessPath{attr: def.Index}
		score := 0
		matched := 0
		for _, col := range def.Columns {
			var eq Expr
			for _, pr := range probes[col] {
				if pr.op == "=" {
					eq = pr.expr
					break
				}
			}
			if eq == nil {
				break
			}
			p.eqExprs = append(p.eqExprs, eq)
			p.eqTypes = append(p.eqTypes, colType(col))
			matched++
			score += 2
		}
		if matched < len(def.Columns) {
			// Optional range on the next column.
			next := def.Columns[matched]
			for _, pr := range probes[next] {
				switch pr.op {
				case ">=":
					if p.rangeLo == nil {
						p.rangeLo = pr.expr
					}
				case "<=":
					if p.rangeHi == nil {
						p.rangeHi = pr.expr
					}
				}
			}
			if p.rangeLo != nil || p.rangeHi != nil {
				p.rangeType = colType(next)
				p.rangeLast = matched+1 == len(def.Columns)
				score++
			}
		}
		if score > bestScore {
			if matched == len(def.Columns) {
				p.kind = accessAttrSeek
			} else {
				p.kind = accessAttrRange
			}
			best = p
			bestScore = score
		}
	}
	if bestScore == 0 {
		return accessPath{}, false
	}
	return best, true
}

// tryHashJoin recognises innerCol = outerExpr equality conditions where
// the probe side genuinely references outer tables.
func tryHashJoin(lo, hi int, c Expr) (accessPath, bool) {
	b, ok := c.(*BinaryExpr)
	if !ok || b.Op != "=" {
		return accessPath{}, false
	}
	try := func(colSide, probeSide Expr) (accessPath, bool) {
		col, isCol := colSide.(*ColumnRef)
		if !isCol || col.Index < lo || col.Index >= hi {
			return accessPath{}, false
		}
		if !refsInRange(probeSide, 0, lo) || maxRef(probeSide) < 0 {
			return accessPath{}, false
		}
		return accessPath{kind: accessHashJoin, hashCol: col.Index - lo, hashExpr: probeSide}, true
	}
	if p, ok := try(b.Left, b.Right); ok {
		return p, true
	}
	return try(b.Right, b.Left)
}

// tryKNN recognises the ORDER BY ST_Distance(col, probe) LIMIT k pattern
// on a single un-grouped table with a spatial index, returning an
// upgraded access path.
func tryKNN(sel *Select, tbl Table, scope *Scope) (accessPath, bool) {
	if len(sel.Joins) != 0 || len(sel.GroupBy) != 0 || sel.Limit < 0 ||
		len(sel.OrderBy) != 1 || sel.OrderBy[0].Desc {
		return accessPath{}, false
	}
	fc, ok := sel.OrderBy[0].Expr.(*FuncCall)
	if !ok || strings.ToUpper(fc.Name) != "ST_DISTANCE" || len(fc.Args) != 2 {
		return accessPath{}, false
	}
	for i := 0; i < 2; i++ {
		col, isCol := fc.Args[i].(*ColumnRef)
		if !isCol {
			continue
		}
		probe := fc.Args[1-i]
		if maxRef(probe) >= 0 {
			continue // probe must be constant
		}
		idx := tbl.SpatialIndexOn(scope.Column(col.Index).Name)
		if idx == nil {
			continue
		}
		return accessPath{
			kind:         accessKNN,
			spatial:      idx,
			knnPointExpr: probe,
			knnK:         sel.Limit + sel.Offset,
			knnDistCol:   col.Index,
		}, true
	}
	return accessPath{}, false
}

// scanProjection builds the Projection for a full scan of this path
// against the current outer row. skip is true when an MBR prefilter's
// window is empty (NULL probe): the residual spatial conjunct is then
// NULL or false for every row, so the whole scan can be elided.
func (p *accessPath) scanProjection(prefix []storage.Value, reg *Registry) (Projection, bool, error) {
	proj := Projection{Need: p.need, MBRCol: -1, Ephemeral: p.ephemeral}
	if !p.mbrPrefilter {
		return proj, false, nil
	}
	window, err := p.evalWindow(prefix, reg)
	if err != nil {
		return proj, false, err
	}
	if window.IsEmpty() {
		return proj, true, nil
	}
	proj.MBRCol = p.mbrCol
	proj.Window = window
	return proj, false, nil
}

// evalWindow computes the query window for a spatial access path against
// the current (possibly partial) outer row.
func (p *accessPath) evalWindow(row []storage.Value, reg *Registry) (geom.Rect, error) {
	v, err := Eval(p.windowExpr, row, reg)
	if err != nil {
		return geom.EmptyRect(), err
	}
	if v.IsNull() || v.Type != storage.TypeGeom {
		return geom.EmptyRect(), nil
	}
	w := v.Geom.Envelope()
	if p.expandExpr != nil {
		d, err := Eval(p.expandExpr, row, reg)
		if err != nil {
			return geom.EmptyRect(), err
		}
		if f, ok := d.AsFloat(); ok {
			w = w.Expand(f)
		}
	}
	return w, nil
}
