package sql

import (
	"fmt"
	"sync"

	"jackpine/internal/storage"
)

// Morsel-style intra-query parallelism.
//
// Eligible plans fan the stage-0 scan out across a worker pool: full
// scans shard the heap into contiguous page ranges (Table.ScanShard),
// and spatial-window scans collect candidate row ids from the MBR index
// once, then refine (fetch + exact predicate) in contiguous chunks.
// Join stages run inside each worker against read-only state. Shard
// results merge strictly in shard order, so a parallel plan returns
// exactly the rows — and row order — of its serial counterpart.

// parallelMinRows is the smallest stage-0 table worth fanning out;
// below it goroutine startup dominates any scan win.
const parallelMinRows = 256

// shardFn runs the whole pipeline for one stage-0 shard, feeding
// surviving full-width rows to emit.
type shardFn func(shard int, emit emitFn) error

// parallelWorkers decides the worker count for a plan, returning 1 when
// the plan must stay serial: kNN (ordered streaming), index seeks and
// range scans (already selective), LIMIT without ORDER BY or aggregation
// (early exit beats materializing every shard), and small inputs.
func (r *Runner) parallelWorkers(sel *Select, tbl Table, kind accessKind, hasAgg, knn bool) int {
	if r.par < 2 || knn {
		return 1
	}
	if kind != accessFullScan && kind != accessSpatialWindow {
		return 1
	}
	if !hasAgg && len(sel.OrderBy) == 0 && sel.Limit >= 0 {
		return 1
	}
	if tbl.RowCount() < parallelMinRows {
		return 1
	}
	return r.par
}

// makeShardRunner builds the per-shard stage-0 driver. For spatial
// windows the candidate collection happens here, once, in index search
// order; workers then split the candidate list into contiguous chunks
// so that chunk concatenation preserves the serial refinement order.
func (r *Runner) makeShardRunner(tbl Table, path accessPath, width, lo, workers int,
	chain func(emit emitFn) emitFn) (shardFn, error) {

	pad := func(row []storage.Value) []storage.Value {
		full := make([]storage.Value, width)
		copy(full[lo:], row)
		return full
	}

	switch path.kind {
	case accessFullScan:
		// Stage-0 scans never see outer rows, so the projection (and any
		// MBR prefilter window) is computed once, up front.
		proj, skip, err := path.scanProjection(nil, r.reg)
		if err != nil {
			return nil, err
		}
		return func(shard int, emit emitFn) error {
			if skip {
				return nil
			}
			emitRow := chain(emit)
			var emitErr error
			err := tbl.ScanProject(shard, workers, proj, func(_ RowID, row []storage.Value) bool {
				c, err := emitRow(pad(row))
				if err != nil {
					emitErr = err
					return false
				}
				return c
			})
			if emitErr != nil {
				return emitErr
			}
			return err
		}, nil

	case accessSpatialWindow:
		window, err := path.evalWindow(nil, r.reg)
		if err != nil {
			return nil, err
		}
		var cands []RowID
		if !window.IsEmpty() {
			path.spatial.Search(window, func(id RowID) bool {
				cands = append(cands, id)
				return true
			})
		}
		return func(shard int, emit emitFn) error {
			emitRow := chain(emit)
			clo := shard * len(cands) / workers
			chi := (shard + 1) * len(cands) / workers
			for _, id := range cands[clo:chi] {
				row, err := tbl.FetchProject(id, path.need)
				if err != nil {
					return err
				}
				cont, err := emitRow(pad(row))
				if err != nil {
					return err
				}
				if !cont {
					return nil
				}
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("sql: access path %s cannot run in parallel", path.kind)
}

// runShards executes one sink per shard concurrently and waits. The
// returned error is the first failing shard's, in shard order.
func runShards(workers int, runShard shardFn, sink func(shard int) emitFn) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = runShard(w, sink(w))
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// gatherShards materializes every shard's output and concatenates the
// buffers in shard order, reproducing the serial row order exactly.
// Rows reaching the sink are freshly padded per row, so buffering them
// without copying is safe.
func gatherShards(workers int, runShard shardFn) ([][]storage.Value, error) {
	buffers := make([][][]storage.Value, workers)
	err := runShards(workers, runShard, func(w int) emitFn {
		return func(row []storage.Value) (bool, error) {
			buffers[w] = append(buffers[w], row)
			return true, nil
		}
	})
	if err != nil {
		return nil, err
	}
	var out [][]storage.Value
	for _, buf := range buffers {
		out = append(out, buf...)
	}
	return out, nil
}

// runAggregateParallel gives each worker a private aggregator (partial
// aggregation), then merges the partials in shard order and finalizes.
// The exact big.Float SUM accumulator makes the merged result
// bit-identical to a serial run regardless of partitioning.
func (r *Runner) runAggregateParallel(sel *Select, scope *Scope, workers int,
	runShard shardFn) ([][]storage.Value, error) {

	aggs, err := collectAggregates(sel)
	if err != nil {
		return nil, err
	}
	parts := make([]*aggregator, workers)
	for w := range parts {
		parts[w] = newAggregator(sel, r.reg, aggs)
	}
	err = runShards(workers, runShard, func(w int) emitFn { return parts[w].add })
	if err != nil {
		return nil, err
	}
	root := parts[0]
	for _, p := range parts[1:] {
		root.merge(p)
	}
	return root.rows(scope.Len())
}
