package sql

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/big"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"jackpine/internal/geom"
	"jackpine/internal/index/btree"
	"jackpine/internal/overlay"
	"jackpine/internal/storage"
)

// Result is the outcome of executing a statement.
type Result struct {
	// Columns names the output columns (queries only).
	Columns []string
	// Rows holds the materialized result rows (queries only).
	Rows [][]storage.Value
	// Affected counts modified rows (DML) or is 0 for DDL.
	Affected int
	// Access describes the chosen access paths per table binding, for
	// inspection by tests and the benchmark reporter.
	Access []string
}

// defaultBatchSize is the number of row slots per column batch. Large
// enough to amortize per-batch overhead, small enough that a batch's
// arena and row backing stay cache-resident.
const defaultBatchSize = 256

// Runner binds a catalog and function registry into a statement executor.
type Runner struct {
	cat       Catalog
	reg       *Registry
	par       int  // worker pool size for parallel-eligible queries (>= 1)
	prep      bool // prepare constant sides of topological predicates
	batch     bool // batch-at-a-time stage-0 execution
	batchSize int  // row slots per column batch

	// Batch activity counters (equivalence tests assert the intended
	// path actually ran): batches processed and rows entering the batch
	// filter cascade.
	batchBatches atomic.Int64
	batchRows    atomic.Int64

	// Spatial-join strategy knob and activity counters.
	joinStrategy JoinStrategy
	joinINL      atomic.Int64
	joinPBSM     atomic.Int64
	pbsmCells    atomic.Int64
	pbsmDedup    atomic.Int64
	pbsmHits     atomic.Int64

	// rowPool recycles emitted join tuples for sinks that never retain
	// them (aggregation copies what it keeps); see pbsmSpec.reuseRows.
	rowPool sync.Pool

	// pbsmCache retains built sweep states across statements, keyed by
	// join shape and validated against table data versions on every
	// acquisition. Guarded by pbsmMu.
	pbsmMu    sync.Mutex
	pbsmCache map[pbsmKey]*pbsmEntry
}

// getRow leases a tuple buffer of at least the given width from the
// pool; putRow returns it. Only plans whose sink provably copies
// emitted rows (pbsmSpec.reuseRows) may recycle buffers this way.
func (r *Runner) getRow(width int) []storage.Value {
	if b, ok := r.rowPool.Get().(*[]storage.Value); ok && cap(*b) >= width {
		return (*b)[:width]
	}
	return make([]storage.Value, width)
}

func (r *Runner) putRow(b []storage.Value) {
	r.rowPool.Put(&b)
}

// NewRunner creates an executor over the catalog using the registry's
// function semantics. Parallelism defaults to GOMAXPROCS; topological
// constant-side preparation and batch execution are on.
func NewRunner(cat Catalog, reg *Registry) *Runner {
	r := &Runner{cat: cat, reg: reg, prep: true, batch: true, batchSize: defaultBatchSize}
	r.SetParallelism(0)
	return r
}

// SetTopoPrep toggles prepared-geometry evaluation of topological
// predicates (the constant query window in filters, the outer row of
// index-nested-loop spatial joins). On by default; the off position
// exists for equivalence testing and measurement. Not safe to call
// concurrently with running queries.
func (r *Runner) SetTopoPrep(enabled bool) { r.prep = enabled }

// TopoPrep reports whether prepared-geometry evaluation is enabled.
func (r *Runner) TopoPrep() bool { return r.prep }

// SetBatchExec toggles batch-at-a-time stage-0 execution. On by
// default; the off position exists for equivalence testing and
// measurement (plans that batching does not cover — kNN, index seeks,
// bare LIMIT — fall back to the row path regardless). Not safe to call
// concurrently with running queries.
func (r *Runner) SetBatchExec(enabled bool) { r.batch = enabled }

// BatchExec reports whether batch execution is enabled.
func (r *Runner) BatchExec() bool { return r.batch }

// SetBatchSize sets the number of row slots per column batch. n <= 0
// resets to the default. Not safe to call concurrently with running
// queries.
func (r *Runner) SetBatchSize(n int) {
	if n <= 0 {
		n = defaultBatchSize
	}
	r.batchSize = n
}

// BatchSize reports the configured batch size.
func (r *Runner) BatchSize() int { return r.batchSize }

// BatchStats returns the cumulative batch activity: batches processed
// and rows that entered the batch filter cascade. Zero while batch
// execution is disabled or never eligible.
func (r *Runner) BatchStats() (batches, rows int64) {
	return r.batchBatches.Load(), r.batchRows.Load()
}

// ResetBatchStats zeroes the batch activity counters.
func (r *Runner) ResetBatchStats() {
	r.batchBatches.Store(0)
	r.batchRows.Store(0)
}

// Registry returns the function registry (engine feature inspection).
func (r *Runner) Registry() *Registry { return r.reg }

// SetParallelism sets the worker pool size used by parallel-eligible
// query plans. n <= 0 resets to runtime.GOMAXPROCS(0); 1 forces serial
// execution. Not safe to call concurrently with running queries.
func (r *Runner) SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	r.par = n
}

// Parallelism reports the configured worker pool size.
func (r *Runner) Parallelism() int { return r.par }

// Run parses and executes one SQL statement.
func (r *Runner) Run(query string) (*Result, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return r.Execute(stmt)
}

// Execute runs a parsed statement.
func (r *Runner) Execute(stmt Statement) (*Result, error) {
	switch t := stmt.(type) {
	case *CreateTable:
		if err := r.cat.CreateTable(t.Name, t.Columns); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CreateIndex:
		if err := r.cat.CreateIndex(t.Name, t.Table, t.Columns, t.Spatial); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *Insert:
		return r.execInsert(t)
	case *Select:
		return r.execSelect(t, false)
	case *Explain:
		return r.execSelect(t.Query, true)
	case *Vacuum:
		if err := r.cat.Vacuum(t.Table); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *DropTable:
		if err := r.cat.DropTable(t.Table, t.IfExists); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *Update:
		return r.execUpdate(t)
	case *Delete:
		return r.execDelete(t)
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
}

func (r *Runner) table(name string) (Table, error) {
	tbl, ok := r.cat.Table(name)
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", name)
	}
	return tbl, nil
}

// --- INSERT -------------------------------------------------------------

func (r *Runner) execInsert(ins *Insert) (*Result, error) {
	tbl, err := r.table(ins.Table)
	if err != nil {
		return nil, err
	}
	cols := tbl.Columns()
	emptyScope := NewScope()
	n := 0
	for _, rowExprs := range ins.Rows {
		if len(rowExprs) != len(cols) {
			return nil, fmt.Errorf("sql: INSERT into %s needs %d values, got %d",
				ins.Table, len(cols), len(rowExprs))
		}
		row := make([]storage.Value, len(cols))
		for i, e := range rowExprs {
			if err := Bind(e, emptyScope, r.reg, false); err != nil {
				return nil, err
			}
			v, err := Eval(e, nil, r.reg)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, cols[i])
			if err != nil {
				return nil, err
			}
			row[i] = cv
		}
		if _, err := tbl.Insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Affected: n}, nil
}

// coerce adapts a value to a column type where a lossless conversion
// exists.
func coerce(v storage.Value, col Column) (storage.Value, error) {
	if v.IsNull() || v.Type == col.Type {
		return v, nil
	}
	switch {
	case col.Type == storage.TypeFloat && v.Type == storage.TypeInt:
		return storage.NewFloat(float64(v.Int)), nil
	case col.Type == storage.TypeInt && v.Type == storage.TypeFloat && v.Float == float64(int64(v.Float)):
		return storage.NewInt(int64(v.Float)), nil
	case col.Type == storage.TypeGeom && v.Type == storage.TypeText:
		g, err := geom.ParseWKT(v.Text)
		if err != nil {
			return storage.Null(), fmt.Errorf("sql: column %s: %w", col.Name, err)
		}
		return storage.NewGeom(g), nil
	}
	return storage.Null(), fmt.Errorf("sql: cannot store %s in %s column %s", v.Type, col.Type, col.Name)
}

// --- SELECT -------------------------------------------------------------

// emitFn receives rows; returning false stops production.
type emitFn func(row []storage.Value) (bool, error)

func (r *Runner) execSelect(sel *Select, explainOnly bool) (*Result, error) {
	// Build the scope over FROM + JOIN tables.
	type boundTable struct {
		tbl     Table
		binding string
		lo, hi  int
	}
	scope := NewScope()
	var tables []boundTable
	addTable := func(ref *TableRef) error {
		tbl, err := r.table(ref.Table)
		if err != nil {
			return err
		}
		lo := scope.Len()
		scope.AddTable(ref.Name(), tbl.Columns())
		tables = append(tables, boundTable{tbl: tbl, binding: ref.Name(), lo: lo, hi: scope.Len()})
		return nil
	}
	if sel.From == nil {
		return nil, fmt.Errorf("sql: SELECT requires FROM")
	}
	if err := addTable(sel.From); err != nil {
		return nil, err
	}
	for _, j := range sel.Joins {
		if err := addTable(j.Table); err != nil {
			return nil, err
		}
	}

	// Bind expressions.
	hasAgg := len(sel.GroupBy) > 0
	for i := range sel.Exprs {
		if sel.Exprs[i].Star {
			continue
		}
		if err := Bind(sel.Exprs[i].Expr, scope, r.reg, true); err != nil {
			return nil, err
		}
		if HasAggregate(sel.Exprs[i].Expr) {
			hasAgg = true
		}
	}
	var conjuncts []Expr
	if sel.Where != nil {
		if err := Bind(sel.Where, scope, r.reg, false); err != nil {
			return nil, err
		}
		conjuncts = splitConjuncts(sel.Where)
	}
	for i := range sel.Joins {
		if err := Bind(sel.Joins[i].On, scope, r.reg, false); err != nil {
			return nil, err
		}
		conjuncts = append(conjuncts, splitConjuncts(sel.Joins[i].On)...)
	}
	for _, g := range sel.GroupBy {
		if err := Bind(g, scope, r.reg, false); err != nil {
			return nil, err
		}
	}
	if !hasAgg {
		for i := range sel.OrderBy {
			if err := Bind(sel.OrderBy[i].Expr, scope, r.reg, false); err != nil {
				return nil, err
			}
		}
	}

	// Prepare the constant side of topological predicates once per
	// execution (the literal query window of the micro queries), on
	// this execution's private tree, before any worker fan-out.
	installExprs := make([]Expr, 0, len(conjuncts)+len(sel.Exprs))
	for _, c := range conjuncts {
		installExprs = append(installExprs, c)
	}
	for i := range sel.Exprs {
		if !sel.Exprs[i].Star {
			installExprs = append(installExprs, sel.Exprs[i].Expr)
		}
	}
	r.installPrepared(installExprs...)

	// Choose access paths: each conjunct is attached to the earliest
	// pipeline stage at which all of its references are available.
	stageFilters := make([][]Expr, len(tables))
	paths := make([]accessPath, len(tables))
	for i, bt := range tables {
		paths[i] = pickAccess(bt.tbl, bt.lo, bt.hi, scope, conjuncts)
	}
	// kNN upgrade for the single-table pattern.
	knn := false
	if !hasAgg && len(tables) == 1 && paths[0].kind == accessFullScan {
		if err := bindOrderByEarly(sel, scope, r.reg); err == nil {
			if p, ok := tryKNN(sel, tables[0].tbl, scope); ok {
				paths[0] = p
				knn = true
			}
		}
	}
	for _, c := range conjuncts {
		m := maxRef(c)
		stage := 0
		for i, bt := range tables {
			if m < bt.hi {
				stage = i
				break
			}
		}
		stageFilters[stage] = append(stageFilters[stage], c)
	}
	// Spatial-predicate joins over exactly two tables may swap the
	// per-outer-row index probe for a partitioned sweep (PBSM). Mutates
	// paths[1] and, in fast-refine mode, stageFilters[1] — so it must
	// run before the prep-spec and batch classification below.
	if len(tables) == 2 {
		r.planPBSM(scope, conjuncts, stageFilters, paths,
			tables[0].tbl, tables[1].tbl, tables[1].lo, tables[1].hi)
		if paths[1].kind == accessPBSM {
			// The aggregation sink copies the rows it keeps, so the
			// sweep's emit loops may recycle tuple buffers.
			paths[1].pbsm.reuseRows = hasAgg
		}
	}
	// Join stages: mark residual spatial predicates whose one side is
	// fixed by the outer row, so each produce invocation prepares the
	// outer geometry once instead of re-decomposing it per inner row.
	stagePrep := make([][]prepFilterSpec, len(tables))
	for i, bt := range tables {
		stagePrep[i] = r.joinPrepSpecs(stageFilters[i], bt.lo)
	}

	// Column pruning: mark every scope column the plan references so
	// scans and fetches can skip decoding the rest. ORDER BY only reads
	// scope columns on the non-aggregate path (grouped ORDER BY keys
	// name output columns).
	need := make([]bool, scope.Len())
	markRefs := func(e Expr) {
		walkExpr(e, func(x Expr) {
			if c, ok := x.(*ColumnRef); ok && c.Index >= 0 && c.Index < len(need) {
				need[c.Index] = true
			}
		})
	}
	allCols := false
	for _, se := range sel.Exprs {
		if se.Star {
			allCols = true
			continue
		}
		markRefs(se.Expr)
	}
	for _, c := range conjuncts {
		markRefs(c)
	}
	for _, g := range sel.GroupBy {
		markRefs(g)
	}
	if !hasAgg {
		for i := range sel.OrderBy {
			markRefs(sel.OrderBy[i].Expr)
		}
	}
	if !allCols {
		for i, bt := range tables {
			paths[i].need = need[bt.lo:bt.hi]
		}
	}

	// Batch eligibility for the stage-0 scan, and — when eligible —
	// ephemeral classification: stage-0 geometry columns that only this
	// stage's filters read may be decoded into recycled arena memory,
	// since emitted survivor rows NULL them before anything downstream
	// could observe the value.
	bt0, batchOK := r.batchEligible(sel, tables[0].tbl, paths[0].kind, hasAgg, knn)
	if batchOK && !allCols {
		needElse := make([]bool, scope.Len())
		markElse := func(e Expr) {
			walkExpr(e, func(x Expr) {
				if c, ok := x.(*ColumnRef); ok && c.Index >= 0 && c.Index < len(needElse) {
					needElse[c.Index] = true
				}
			})
		}
		for _, se := range sel.Exprs {
			if !se.Star {
				markElse(se.Expr)
			}
		}
		for _, g := range sel.GroupBy {
			markElse(g)
		}
		if !hasAgg {
			for i := range sel.OrderBy {
				markElse(sel.OrderBy[i].Expr)
			}
		}
		for i := 1; i < len(tables); i++ {
			for _, f := range stageFilters[i] {
				markElse(f)
			}
			// A PBSM fast-refine conjunct was stripped from the stage
			// filters but its outer geometry is still read by the probe;
			// it must not be classified ephemeral.
			if paths[i].kind == accessPBSM && paths[i].pbsm.refineFC != nil {
				markElse(paths[i].pbsm.refineFC)
			}
		}
		var eph []bool
		for i := 0; i < tables[0].hi; i++ {
			if need[i] && !needElse[i] && scope.Column(i).Type == storage.TypeGeom {
				if eph == nil {
					eph = make([]bool, tables[0].hi)
				}
				eph[i] = true
			}
		}
		paths[0].ephemeral = eph
	}

	// Pipeline: scan stage 0, then for each join stage either index
	// probe, hash probe, partitioned sweep or nested loop, applying
	// stage filters.
	hashBuilt := make([]map[string][][]storage.Value, len(tables))
	pbsmBuilt := make([]*pbsmState, len(tables))
	var produce func(stage int, prefix []storage.Value, emit emitFn) (bool, error)
	// stageEmit wraps a downstream emit with this stage's residual
	// filters and the chain into the next pipeline stage.
	stageEmit := func(stage int, emit emitFn) emitFn {
		// Specialized filters carry per-invocation state (the prepared
		// outer geometry), so they are rebuilt here — once per outer
		// row — while unmarked stages share the zero-cost plain path.
		var special []filterFn
		if specs := stagePrep[stage]; len(specs) > 0 {
			special = make([]filterFn, len(stageFilters[stage]))
			for i := range specs {
				special[specs[i].idx] = specs[i].specialize(r)
			}
		}
		return func(row []storage.Value) (bool, error) {
			for fi, f := range stageFilters[stage] {
				var v storage.Value
				var err error
				if special != nil && special[fi] != nil {
					v, err = special[fi](row)
				} else {
					v, err = Eval(f, row, r.reg)
				}
				if err != nil {
					return false, err
				}
				if v.IsNull() || !truthy(v) {
					return true, nil
				}
			}
			if stage == len(tables)-1 {
				return emit(row)
			}
			return produce(stage+1, row, emit)
		}
	}
	produce = func(stage int, prefix []storage.Value, emit emitFn) (bool, error) {
		bt := tables[stage]
		emitRow := stageEmit(stage, emit)
		if paths[stage].kind == accessHashJoin {
			return r.scanHashJoin(bt.tbl, paths[stage], prefix, scope.Len(), bt.lo,
				&hashBuilt[stage], emitRow)
		}
		if paths[stage].kind == accessPBSM {
			return r.scanPBSM(bt.tbl, paths[stage], prefix, scope.Len(), bt.lo,
				&pbsmBuilt[stage], emitRow)
		}
		return r.scanTable(bt.tbl, paths[stage], prefix, scope.Len(), bt.lo, emitRow)
	}

	// Batched stage 0: the scan feeds column batches through the batch
	// filter cascade instead of stage-0's stageEmit; survivors re-enter
	// the unchanged pipeline at the next stage (or the sink directly).
	// Join stages and the row-path fallback go through rowProduce.
	var bplan *batchPlan
	var batchNext nextFn
	var batchPlanFn func() *batchPlan
	if batchOK {
		// Lazy so point probes that fall back (or match nothing) never
		// pay for filter classification; within one statement the plan
		// is built at most once.
		batchPlanFn = func() *batchPlan {
			if bplan == nil {
				bplan = r.newBatchPlan(stageFilters[0], scope.Len(), paths[0].ephemeral)
			}
			return bplan
		}
		batchNext = func(row []storage.Value, emit emitFn) (bool, error) {
			if len(tables) == 1 {
				return emit(row)
			}
			return produce(1, row, emit)
		}
		rowProduce := produce
		produce = func(stage int, prefix []storage.Value, emit emitFn) (bool, error) {
			if stage != 0 {
				return rowProduce(stage, prefix, emit)
			}
			cont, err := r.runBatchStage0(bt0, paths[0], batchPlanFn, batchNext, emit)
			if errors.Is(err, errBatchFallback) {
				return rowProduce(0, prefix, emit)
			}
			return cont, err
		}
	}

	// Intra-query parallelism: when the plan qualifies, stage 0 fans
	// out across a worker pool (join stages run inside each worker) and
	// shard results merge deterministically in shard order.
	workers := r.parallelWorkers(sel, tables[0].tbl, paths[0].kind, hasAgg, knn)

	// Sinks: aggregation, ordering, limit, projection.
	res := &Result{}
	labels := make([]string, len(tables))
	for i := range tables {
		labels[i] = paths[i].kind.String()
		if i > 0 {
			// Join stages surface their strategy, fastpath-label style.
			switch paths[i].kind {
			case accessPBSM:
				labels[i] = fmt.Sprintf("pbsm(cells=%dx%d)", paths[i].pbsm.gx, paths[i].pbsm.gy)
			case accessSpatialWindow:
				labels[i] = fmt.Sprintf("inl(index=%s)", paths[i].idxCol)
			case accessHashJoin:
				labels[i] = "hash"
			}
		}
		if i == 0 && workers > 1 {
			labels[i] = fmt.Sprintf("parallel %s (%d workers)", labels[i], workers)
		}
	}
	for i, bt := range tables {
		res.Access = append(res.Access, bt.binding+":"+labels[i])
	}
	if explainOnly {
		res.Columns = []string{"table", "access", "rows"}
		for i, bt := range tables {
			res.Rows = append(res.Rows, []storage.Value{
				storage.NewText(bt.binding),
				storage.NewText(labels[i]),
				storage.NewInt(int64(bt.tbl.RowCount())),
			})
		}
		return res, nil
	}
	if len(tables) > 1 {
		switch paths[1].kind {
		case accessPBSM:
			r.joinPBSM.Add(1)
		case accessSpatialWindow:
			r.joinINL.Add(1)
		}
	}

	// Build the per-shard stage-0 runner for parallel plans. Hash-join
	// and PBSM build sides are materialized up front: the lazy build
	// inside the scan would race once workers share it.
	var runShard shardFn
	if workers > 1 {
		for i := range tables {
			if paths[i].kind == accessHashJoin {
				built, err := r.buildHashTable(tables[i].tbl, paths[i])
				if err != nil {
					return nil, err
				}
				hashBuilt[i] = built
			}
			if paths[i].kind == accessPBSM {
				built, err := r.acquirePBSM(paths[i].pbsm, paths[i].need)
				if err != nil {
					return nil, err
				}
				pbsmBuilt[i] = built
			}
		}
		var err error
		if batchOK {
			runShard, err = r.makeBatchShardRunner(bt0, paths[0], batchPlanFn, workers, batchNext)
			if errors.Is(err, errBatchFallback) {
				runShard, err = r.makeShardRunner(tables[0].tbl, paths[0], scope.Len(), tables[0].lo,
					workers, func(emit emitFn) emitFn { return stageEmit(0, emit) })
			}
		} else {
			runShard, err = r.makeShardRunner(tables[0].tbl, paths[0], scope.Len(), tables[0].lo,
				workers, func(emit emitFn) emitFn { return stageEmit(0, emit) })
		}
		if err != nil {
			return nil, err
		}
	}

	// Output column names.
	outNames := func() []string {
		var names []string
		for _, se := range sel.Exprs {
			switch {
			case se.Star:
				for i := 0; i < scope.Len(); i++ {
					names = append(names, scope.Column(i).Name)
				}
			case se.Alias != "":
				names = append(names, se.Alias)
			default:
				names = append(names, strings.ToLower(se.Expr.String()))
			}
		}
		return names
	}
	res.Columns = outNames()

	project := func(row []storage.Value) ([]storage.Value, error) {
		var out []storage.Value
		for _, se := range sel.Exprs {
			if se.Star {
				out = append(out, row...)
				continue
			}
			v, err := Eval(se.Expr, row, r.reg)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}

	// For non-aggregate parallel plans the shards are gathered up front
	// (these sinks materialize anyway) and replayed in shard order, so
	// downstream logic is identical to the serial path.
	prod := produce
	if workers > 1 && !hasAgg {
		merged, err := gatherShards(workers, runShard)
		if err != nil {
			return nil, err
		}
		prod = func(_ int, _ []storage.Value, emit emitFn) (bool, error) {
			for _, row := range merged {
				cont, err := emit(row)
				if err != nil || !cont {
					return cont, err
				}
			}
			return true, nil
		}
	}

	switch {
	case hasAgg:
		var rows [][]storage.Value
		var err error
		if workers > 1 {
			rows, err = r.runAggregateParallel(sel, scope, workers, runShard)
		} else {
			rows, err = r.runAggregate(sel, scope, produce)
		}
		if err != nil {
			return nil, err
		}
		if len(sel.OrderBy) > 0 {
			if err := sortAggregateRows(sel, res.Columns, rows); err != nil {
				return nil, err
			}
		}
		if sel.Offset > 0 || sel.Limit >= 0 {
			start := sel.Offset
			if start > len(rows) {
				start = len(rows)
			}
			end := len(rows)
			if sel.Limit >= 0 && start+sel.Limit < end {
				end = start + sel.Limit
			}
			rows = rows[start:end]
		}
		res.Rows = rows
	case knn:
		// The kNN scan already orders and limits.
		limit := sel.Limit
		offset := sel.Offset
		skipped := 0
		_, err := produce(0, nil, func(row []storage.Value) (bool, error) {
			if limit >= 0 && len(res.Rows) >= limit {
				return false, nil
			}
			if skipped < offset {
				skipped++
				return true, nil
			}
			out, err := project(row)
			if err != nil {
				return false, err
			}
			res.Rows = append(res.Rows, out)
			return limit < 0 || len(res.Rows) < limit, nil
		})
		if err != nil {
			return nil, err
		}
	case len(sel.OrderBy) > 0:
		// Materialize with sort keys, sort, then project.
		type keyedRow struct {
			row  []storage.Value
			keys []storage.Value
		}
		var all []keyedRow
		_, err := prod(0, nil, func(row []storage.Value) (bool, error) {
			kr := keyedRow{row: append([]storage.Value(nil), row...)}
			for _, ok := range sel.OrderBy {
				v, err := Eval(ok.Expr, row, r.reg)
				if err != nil {
					return false, err
				}
				kr.keys = append(kr.keys, v)
			}
			all = append(all, kr)
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		sort.SliceStable(all, func(i, j int) bool {
			for k := range sel.OrderBy {
				c, _ := storage.Compare(all[i].keys[k], all[j].keys[k])
				if c == 0 {
					continue
				}
				if sel.OrderBy[k].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		start := sel.Offset
		if start > len(all) {
			start = len(all)
		}
		end := len(all)
		if sel.Limit >= 0 && start+sel.Limit < end {
			end = start + sel.Limit
		}
		for _, kr := range all[start:end] {
			out, err := project(kr.row)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, out)
		}
	default:
		limit := sel.Limit
		offset := sel.Offset
		skipped := 0
		_, err := prod(0, nil, func(row []storage.Value) (bool, error) {
			if limit >= 0 && len(res.Rows) >= limit {
				return false, nil
			}
			if skipped < offset {
				skipped++
				return true, nil
			}
			out, err := project(row)
			if err != nil {
				return false, err
			}
			res.Rows = append(res.Rows, out)
			return limit < 0 || len(res.Rows) < limit, nil
		})
		if err != nil {
			return nil, err
		}
	}
	if res.Rows == nil {
		res.Rows = [][]storage.Value{}
	}
	return res, nil
}

// sortAggregateRows orders grouped output rows. After aggregation,
// ORDER BY keys must name output columns: by alias or column name, by
// 1-based ordinal, or by textually matching a select expression.
func sortAggregateRows(sel *Select, outCols []string, rows [][]storage.Value) error {
	keyIdx := make([]int, len(sel.OrderBy))
	for i, ok := range sel.OrderBy {
		idx := -1
		switch t := ok.Expr.(type) {
		case *Literal:
			if t.Value.Type == storage.TypeInt && t.Value.Int >= 1 && int(t.Value.Int) <= len(outCols) {
				idx = int(t.Value.Int) - 1
			}
		case *ColumnRef:
			for j, name := range outCols {
				if name == strings.ToLower(t.Column) {
					idx = j
					break
				}
			}
		}
		if idx < 0 {
			want := strings.ToLower(ok.Expr.String())
			for j, name := range outCols {
				if name == want {
					idx = j
					break
				}
			}
			// Fall back to matching the un-aliased select expressions.
			for j, se := range sel.Exprs {
				if !se.Star && se.Expr != nil && strings.ToLower(se.Expr.String()) == want {
					idx = j
					break
				}
			}
		}
		if idx < 0 {
			return fmt.Errorf("sql: ORDER BY %s must name an output column when grouping", ok.Expr)
		}
		keyIdx[i] = idx
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for k, idx := range keyIdx {
			c, _ := storage.Compare(rows[a][idx], rows[b][idx])
			if c == 0 {
				continue
			}
			if sel.OrderBy[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// bindOrderByEarly binds ORDER BY expressions for the non-aggregate path
// so that kNN detection can inspect resolved column offsets.
func bindOrderByEarly(sel *Select, scope *Scope, reg *Registry) error {
	for i := range sel.OrderBy {
		if err := Bind(sel.OrderBy[i].Expr, scope, reg, false); err != nil {
			return err
		}
	}
	return nil
}

// scanTable drives one table's access path, emitting full-width rows
// (prefix + this table's columns + NULL padding to width).
func (r *Runner) scanTable(tbl Table, path accessPath, prefix []storage.Value,
	width, lo int, emit emitFn) (bool, error) {

	pad := func(row []storage.Value) []storage.Value {
		full := make([]storage.Value, width)
		copy(full, prefix)
		copy(full[lo:], row)
		return full
	}

	switch path.kind {
	case accessFullScan:
		proj, skip, err := path.scanProjection(prefix, r.reg)
		if err != nil {
			return false, err
		}
		if skip {
			return true, nil
		}
		cont := true
		var emitErr error
		err = tbl.ScanProject(0, 1, proj, func(_ RowID, row []storage.Value) bool {
			c, err := emit(pad(row))
			if err != nil {
				emitErr = err
				return false
			}
			cont = c
			return c
		})
		if emitErr != nil {
			return false, emitErr
		}
		return cont, err

	case accessSpatialWindow:
		window, err := path.evalWindow(prefix, r.reg)
		if err != nil {
			return false, err
		}
		if window.IsEmpty() {
			return true, nil
		}
		cont := true
		var innerErr error
		path.spatial.Search(window, func(id RowID) bool {
			row, err := tbl.FetchProject(id, path.need)
			if err != nil {
				innerErr = err
				return false
			}
			c, err := emit(pad(row))
			if err != nil {
				innerErr = err
				return false
			}
			cont = c
			return c
		})
		return cont, innerErr

	case accessAttrSeek:
		key, ok, err := r.buildAttrKeyPrefix(path, prefix)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		cont := true
		var innerErr error
		path.attr.Seek(key, func(id RowID) bool {
			row, err := tbl.FetchProject(id, path.need)
			if err != nil {
				innerErr = err
				return false
			}
			c, err := emit(pad(row))
			if err != nil {
				innerErr = err
				return false
			}
			cont = c
			return c
		})
		return cont, innerErr

	case accessAttrRange:
		keyPrefix, ok, err := r.buildAttrKeyPrefix(path, prefix)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		loKey := keyPrefix
		if path.rangeLo != nil {
			v, err := Eval(path.rangeLo, prefix, r.reg)
			if err != nil {
				return false, err
			}
			if k, ok := appendKeyComponent(append([]byte(nil), keyPrefix...), v, path.rangeType); ok {
				loKey = k
			}
		}
		var hiKey []byte
		hiInc := false
		if path.rangeHi != nil && path.rangeLast {
			v, err := Eval(path.rangeHi, prefix, r.reg)
			if err != nil {
				return false, err
			}
			if k, ok := appendKeyComponent(append([]byte(nil), keyPrefix...), v, path.rangeType); ok {
				hiKey = k
				hiInc = true
			}
		}
		if hiKey == nil {
			hiKey = btree.PrefixSuccessor(keyPrefix)
		}
		if len(loKey) == 0 {
			loKey = nil
		}
		cont := true
		var innerErr error
		path.attr.Range(loKey, hiKey, true, hiInc, func(id RowID) bool {
			row, err := tbl.FetchProject(id, path.need)
			if err != nil {
				innerErr = err
				return false
			}
			c, err := emit(pad(row))
			if err != nil {
				innerErr = err
				return false
			}
			cont = c
			return c
		})
		return cont, innerErr

	case accessKNN:
		return r.scanKNN(tbl, path, prefix, width, lo, emit)
	}
	return false, fmt.Errorf("sql: unknown access path")
}

// hashJoinKey builds a bucket key that collides for numerically equal
// values; the original equality conjunct remains in the stage's residual
// filter, so over-wide buckets are re-checked exactly.
func hashJoinKey(v storage.Value) (string, bool) {
	if v.IsNull() {
		return "", false // SQL equality never matches NULL
	}
	if f, ok := v.AsFloat(); ok {
		var b [9]byte
		b[0] = 'n'
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			b[1+i] = byte(bits >> (8 * i))
		}
		return string(b[:]), true
	}
	return string(storage.EncodeTuple([]storage.Value{v})), true
}

// buildHashTable materializes a hash join's build side, bucketed by the
// join key of the build column.
func (r *Runner) buildHashTable(tbl Table, path accessPath) (map[string][][]storage.Value, error) {
	table := make(map[string][][]storage.Value)
	err := tbl.ScanProject(0, 1, Projection{Need: path.need, MBRCol: -1}, func(_ RowID, row []storage.Value) bool {
		if key, ok := hashJoinKey(row[path.hashCol]); ok {
			table[key] = append(table[key], append([]storage.Value(nil), row...))
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// scanHashJoin probes the build table (materialized once per query) with
// the outer row's key.
func (r *Runner) scanHashJoin(tbl Table, path accessPath, prefix []storage.Value,
	width, lo int, built *map[string][][]storage.Value, emit emitFn) (bool, error) {

	if *built == nil {
		table, err := r.buildHashTable(tbl, path)
		if err != nil {
			return false, err
		}
		*built = table
	}
	probe, err := Eval(path.hashExpr, prefix, r.reg)
	if err != nil {
		return false, err
	}
	key, ok := hashJoinKey(probe)
	if !ok {
		return true, nil
	}
	for _, row := range (*built)[key] {
		full := make([]storage.Value, width)
		copy(full, prefix)
		copy(full[lo:], row)
		cont, err := emit(full)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// knnCand is a heap element for the kNN re-ranking scan.
type knnCand struct {
	row  []storage.Value
	dist float64
}

type knnHeap []knnCand // max-heap by dist

func (h knnHeap) Len() int           { return len(h) }
func (h knnHeap) Less(i, j int) bool { return h[i].dist > h[j].dist }
func (h knnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x any)        { *h = append(*h, x.(knnCand)) }
func (h *knnHeap) Pop() any          { old := *h; n := len(old); c := old[n-1]; *h = old[:n-1]; return c }

// scanKNN performs an exact k-nearest-neighbour scan: candidates arrive
// in increasing envelope distance (a lower bound of true distance), are
// re-ranked by exact distance in a bounded heap, and the stream stops
// once the envelope bound passes the kth exact distance.
func (r *Runner) scanKNN(tbl Table, path accessPath, prefix []storage.Value,
	width, lo int, emit emitFn) (bool, error) {

	pv, err := Eval(path.knnPointExpr, prefix, r.reg)
	if err != nil {
		return false, err
	}
	if pv.IsNull() || pv.Type != storage.TypeGeom {
		return true, nil
	}
	probe := pv.Geom
	centre, ok := geom.Centroid(probe)
	if !ok {
		return true, nil
	}
	k := path.knnK
	if k <= 0 {
		return true, nil
	}
	h := &knnHeap{}
	var innerErr error
	path.spatial.Nearest(centre, func(id RowID, envDist float64) bool {
		if h.Len() == k && envDist > (*h)[0].dist {
			return false // no closer candidate can appear
		}
		row, err := tbl.FetchProject(id, path.need)
		if err != nil {
			innerErr = err
			return false
		}
		full := make([]storage.Value, width)
		copy(full, prefix)
		copy(full[lo:], row)
		gv := full[path.knnDistCol]
		if gv.IsNull() || gv.Type != storage.TypeGeom {
			return true
		}
		d := geom.Distance(gv.Geom, probe)
		if h.Len() < k {
			heap.Push(h, knnCand{row: full, dist: d})
		} else if d < (*h)[0].dist {
			(*h)[0] = knnCand{row: full, dist: d}
			heap.Fix(h, 0)
		}
		return true
	})
	if innerErr != nil {
		return false, innerErr
	}
	// Emit in increasing distance order.
	cands := make([]knnCand, h.Len())
	for i := len(cands) - 1; i >= 0; i-- {
		cands[i] = heap.Pop(h).(knnCand)
	}
	for _, c := range cands {
		cont, err := emit(c.row)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// buildAttrKeyPrefix evaluates an access path's equality probes into a
// composite key prefix. ok is false when any probe is NULL or cannot be
// represented in the column's key encoding (such probes can never match).
func (r *Runner) buildAttrKeyPrefix(path accessPath, row []storage.Value) ([]byte, bool, error) {
	var key []byte
	for i, e := range path.eqExprs {
		v, err := Eval(e, row, r.reg)
		if err != nil {
			return nil, false, err
		}
		k, ok := appendKeyComponent(key, v, path.eqTypes[i])
		if !ok {
			return nil, false, nil
		}
		key = k
	}
	return key, true, nil
}

// appendKeyComponent appends one probe value in the index key encoding
// of the column type (matching the engine's index maintenance encoding).
func appendKeyComponent(dst []byte, v storage.Value, colType storage.ValueType) ([]byte, bool) {
	if v.IsNull() {
		return nil, false
	}
	switch colType {
	case storage.TypeInt, storage.TypeBool:
		switch v.Type {
		case storage.TypeInt, storage.TypeBool:
			return btree.AppendInt(dst, v.Int), true
		case storage.TypeFloat:
			if v.Float == float64(int64(v.Float)) {
				return btree.AppendInt(dst, int64(v.Float)), true
			}
		}
	case storage.TypeFloat:
		if f, ok := v.AsFloat(); ok {
			return btree.AppendFloat(dst, f), true
		}
	case storage.TypeText:
		if v.Type == storage.TypeText {
			return btree.AppendText(dst, v.Text), true
		}
	}
	return nil, false
}

// --- aggregation ---------------------------------------------------------

type aggState struct {
	count   int64
	sum     *big.Float // exact SUM/AVG accumulator, lazily allocated
	sumBad  float64    // non-finite inputs, kept outside the exact sum
	hasBad  bool
	sumInt  int64
	intOnly bool
	min     storage.Value
	max     storage.Value
	seen    bool
	geoms   []geom.Geometry // ST_UNION accumulator
	extent  geom.Rect       // ST_EXTENT accumulator
}

// sumPrec makes big.Float addition of float64 terms exact: the full
// double exponent range (~2098 bits) plus headroom for carries, so the
// sum is independent of accumulation order and serial and parallel
// plans produce bit-identical SUM/AVG results.
const sumPrec = 2304

// addSum folds one finite or non-finite term into the accumulator.
func (st *aggState) addSum(f float64) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		st.sumBad += f
		st.hasBad = true
		return
	}
	if st.sum == nil {
		st.sum = new(big.Float).SetPrec(sumPrec)
	}
	st.sum.Add(st.sum, new(big.Float).SetPrec(sumPrec).SetFloat64(f))
}

// sumFloat rounds the exact accumulator to float64.
func (st *aggState) sumFloat() float64 {
	var f float64
	if st.sum != nil {
		f, _ = st.sum.Float64()
	}
	if st.hasBad {
		f += st.sumBad
	}
	return f
}

// collectAggregates gathers the aggregate calls of the select list.
func collectAggregates(sel *Select) ([]*FuncCall, error) {
	var aggs []*FuncCall
	for _, se := range sel.Exprs {
		if se.Star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregates")
		}
		walkExpr(se.Expr, func(e Expr) {
			if fc, ok := e.(*FuncCall); ok && IsAggregateCall(fc) {
				aggs = append(aggs, fc)
			}
		})
	}
	return aggs, nil
}

// aggGroup holds one group's representative row and aggregate states.
type aggGroup struct {
	firstRow []storage.Value
	states   []aggState
}

// aggregator folds rows into grouped aggregate states. Each worker of a
// parallel plan owns one; partials merge in shard order, which keeps
// group order and tie-breaks identical to a serial run.
type aggregator struct {
	sel    *Select
	reg    *Registry
	aggs   []*FuncCall
	groups map[string]*aggGroup
	order  []string // group keys in first-seen order
}

func newAggregator(sel *Select, reg *Registry, aggs []*FuncCall) *aggregator {
	return &aggregator{sel: sel, reg: reg, aggs: aggs, groups: make(map[string]*aggGroup)}
}

// add is the aggregation sink (an emitFn).
func (a *aggregator) add(row []storage.Value) (bool, error) {
	var keyVals []storage.Value
	for _, g := range a.sel.GroupBy {
		v, err := Eval(g, row, a.reg)
		if err != nil {
			return false, err
		}
		keyVals = append(keyVals, v)
	}
	key := string(storage.EncodeTuple(keyVals))
	grp, ok := a.groups[key]
	if !ok {
		grp = &aggGroup{
			firstRow: append([]storage.Value(nil), row...),
			states:   make([]aggState, len(a.aggs)),
		}
		for i := range grp.states {
			grp.states[i].intOnly = true
		}
		a.groups[key] = grp
		a.order = append(a.order, key)
	}
	for i, fc := range a.aggs {
		if err := accumulate(&grp.states[i], fc, row, a.reg); err != nil {
			return false, err
		}
	}
	return true, nil
}

// merge folds src (a later shard) into a. Groups unseen by a keep their
// src state; shared groups merge state-wise with a (the earlier shard)
// winning ties, matching serial first-seen semantics.
func (a *aggregator) merge(src *aggregator) {
	for _, key := range src.order {
		sg := src.groups[key]
		dg, ok := a.groups[key]
		if !ok {
			a.groups[key] = sg
			a.order = append(a.order, key)
			continue
		}
		for i := range dg.states {
			mergeState(&dg.states[i], &sg.states[i])
		}
	}
}

// mergeState folds a later shard's partial state into dst.
func mergeState(dst, src *aggState) {
	dst.count += src.count
	if src.sum != nil {
		if dst.sum == nil {
			dst.sum = src.sum
		} else {
			dst.sum.Add(dst.sum, src.sum)
		}
	}
	if src.hasBad {
		dst.sumBad += src.sumBad
		dst.hasBad = true
	}
	dst.sumInt += src.sumInt
	dst.intOnly = dst.intOnly && src.intOnly
	if src.seen {
		if !dst.seen {
			dst.min = src.min
			dst.max = src.max
			dst.extent = src.extent
		} else {
			if c, _ := storage.Compare(src.min, dst.min); c < 0 {
				dst.min = src.min
			}
			if c, _ := storage.Compare(src.max, dst.max); c > 0 {
				dst.max = src.max
			}
			dst.extent = dst.extent.Union(src.extent)
		}
	}
	dst.seen = dst.seen || src.seen
	dst.geoms = append(dst.geoms, src.geoms...)
}

// rows finalizes every group (in first-seen order) into output rows.
func (a *aggregator) rows(scopeLen int) ([][]storage.Value, error) {
	// A global aggregate over zero rows still yields one output row.
	if len(a.sel.GroupBy) == 0 && len(a.groups) == 0 {
		a.groups[""] = &aggGroup{firstRow: make([]storage.Value, scopeLen), states: make([]aggState, len(a.aggs))}
		a.order = append(a.order, "")
	}
	var out [][]storage.Value
	for _, key := range a.order {
		grp := a.groups[key]
		aggVals := make(map[*FuncCall]storage.Value, len(a.aggs))
		for i, fc := range a.aggs {
			aggVals[fc] = finalize(&grp.states[i], fc)
		}
		var row []storage.Value
		for _, se := range a.sel.Exprs {
			v, err := evalWithAggs(se.Expr, grp.firstRow, a.reg, aggVals)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out = append(out, row)
	}
	return out, nil
}

func (r *Runner) runAggregate(sel *Select, scope *Scope,
	produce func(stage int, prefix []storage.Value, emit emitFn) (bool, error)) ([][]storage.Value, error) {

	aggs, err := collectAggregates(sel)
	if err != nil {
		return nil, err
	}
	agg := newAggregator(sel, r.reg, aggs)
	if _, err := produce(0, nil, agg.add); err != nil {
		return nil, err
	}
	return agg.rows(scope.Len())
}

func accumulate(st *aggState, fc *FuncCall, row []storage.Value, reg *Registry) error {
	if fc.Star { // COUNT(*)
		st.count++
		return nil
	}
	v, err := Eval(fc.Args[0], row, reg)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	st.count++
	switch fc.Name {
	case "ST_UNION":
		if v.Type != storage.TypeGeom {
			return fmt.Errorf("sql: ST_UNION over %s", v.Type)
		}
		st.geoms = append(st.geoms, v.Geom)
	case "ST_EXTENT":
		if v.Type != storage.TypeGeom {
			return fmt.Errorf("sql: ST_EXTENT over %s", v.Type)
		}
		if !st.seen {
			st.extent = geom.EmptyRect()
		}
		st.extent = st.extent.Union(v.Geom.Envelope())
	case "SUM", "AVG", PartialSumName:
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("sql: %s over %s", fc.Name, v.Type)
		}
		st.addSum(f)
		if v.Type == storage.TypeInt {
			st.sumInt += v.Int
		} else {
			st.intOnly = false
		}
	case "MIN":
		if !st.seen {
			st.min = v
		} else if c, _ := storage.Compare(v, st.min); c < 0 {
			st.min = v
		}
	case "MAX":
		if !st.seen {
			st.max = v
		} else if c, _ := storage.Compare(v, st.max); c > 0 {
			st.max = v
		}
	}
	st.seen = true
	return nil
}

func finalize(st *aggState, fc *FuncCall) storage.Value {
	switch fc.Name {
	case "COUNT":
		return storage.NewInt(st.count)
	case "SUM":
		if st.count == 0 {
			return storage.Null()
		}
		if st.intOnly {
			return storage.NewInt(st.sumInt)
		}
		return storage.NewFloat(st.sumFloat())
	case "AVG":
		if st.count == 0 {
			return storage.Null()
		}
		return storage.NewFloat(st.sumFloat() / float64(st.count))
	case "MIN":
		if !st.seen {
			return storage.Null()
		}
		return st.min
	case "MAX":
		if !st.seen {
			return storage.Null()
		}
		return st.max
	case "ST_UNION":
		if len(st.geoms) == 0 {
			return storage.Null()
		}
		return storage.NewGeom(overlay.UnionAll(st.geoms))
	case "ST_EXTENT":
		if !st.seen {
			return storage.Null()
		}
		return storage.NewGeom(st.extent.ToPolygon())
	case PartialSumName:
		// Distributed partial aggregation: ship the exact mergeable
		// state instead of a rounded scalar (see PartialSum).
		return storage.NewText(partialFromState(st).Encode())
	}
	return storage.Null()
}

// evalWithAggs evaluates an expression substituting pre-computed
// aggregate results.
func evalWithAggs(e Expr, row []storage.Value, reg *Registry, aggVals map[*FuncCall]storage.Value) (storage.Value, error) {
	if fc, ok := e.(*FuncCall); ok {
		if v, hit := aggVals[fc]; hit {
			return v, nil
		}
	}
	switch t := e.(type) {
	case *BinaryExpr:
		cp := *t
		l, err := evalWithAggs(t.Left, row, reg, aggVals)
		if err != nil {
			return storage.Null(), err
		}
		rr, err := evalWithAggs(t.Right, row, reg, aggVals)
		if err != nil {
			return storage.Null(), err
		}
		cp.Left = &Literal{Value: l}
		cp.Right = &Literal{Value: rr}
		return Eval(&cp, row, reg)
	case *UnaryExpr:
		v, err := evalWithAggs(t.Expr, row, reg, aggVals)
		if err != nil {
			return storage.Null(), err
		}
		return Eval(&UnaryExpr{Op: t.Op, Expr: &Literal{Value: v}}, row, reg)
	case *FuncCall:
		args := make([]storage.Value, len(t.Args))
		for i, a := range t.Args {
			v, err := evalWithAggs(a, row, reg, aggVals)
			if err != nil {
				return storage.Null(), err
			}
			args[i] = v
		}
		return reg.Call(t.Name, args)
	default:
		return Eval(e, row, reg)
	}
}

// --- UPDATE / DELETE ------------------------------------------------------

// matchRows collects the row ids satisfying the WHERE clause of a
// single-table DML statement.
func (r *Runner) matchRows(tbl Table, binding string, where Expr) ([]RowID, error) {
	scope := NewScope()
	scope.AddTable(binding, tbl.Columns())
	if where != nil {
		if err := Bind(where, scope, r.reg, false); err != nil {
			return nil, err
		}
		r.installPrepared(where)
	}
	var ids []RowID
	var evalErr error
	err := tbl.Scan(func(id RowID, row []storage.Value) bool {
		if where != nil {
			v, err := Eval(where, row, r.reg)
			if err != nil {
				evalErr = err
				return false
			}
			if v.IsNull() || !truthy(v) {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return ids, err
}

func (r *Runner) execUpdate(upd *Update) (*Result, error) {
	tbl, err := r.table(upd.Table)
	if err != nil {
		return nil, err
	}
	cols := tbl.Columns()
	scope := NewScope()
	scope.AddTable(upd.Table, cols)
	type setOp struct {
		idx int
		e   Expr
	}
	var sets []setOp
	for _, a := range upd.Set {
		idx := ColumnIndexByName(cols, a.Column)
		if idx < 0 {
			return nil, fmt.Errorf("sql: unknown column %q in UPDATE", a.Column)
		}
		if err := Bind(a.Expr, scope, r.reg, false); err != nil {
			return nil, err
		}
		sets = append(sets, setOp{idx: idx, e: a.Expr})
	}
	ids, err := r.matchRows(tbl, upd.Table, upd.Where)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		row, err := tbl.Fetch(id)
		if err != nil {
			return nil, err
		}
		newRow := append([]storage.Value(nil), row...)
		for _, s := range sets {
			v, err := Eval(s.e, row, r.reg)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, cols[s.idx])
			if err != nil {
				return nil, err
			}
			newRow[s.idx] = cv
		}
		if _, err := tbl.Update(id, newRow); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(ids)}, nil
}

func (r *Runner) execDelete(del *Delete) (*Result, error) {
	tbl, err := r.table(del.Table)
	if err != nil {
		return nil, err
	}
	ids, err := r.matchRows(tbl, del.Table, del.Where)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := tbl.Delete(id); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(ids)}, nil
}
