package sql

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // identifiers upper-cased except quoted; ops verbatim
	raw  string // original text (for strings: unescaped content)
	pos  int
}

// lexer tokenizes a SQL string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: lex error at offset %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		raw := l.src[start:l.pos]
		return token{kind: tokIdent, text: strings.ToUpper(raw), raw: raw, pos: start}, nil

	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
			l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		raw := l.src[start:l.pos]
		return token{kind: tokNumber, text: raw, raw: raw, pos: start}, nil

	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: sb.String(), raw: sb.String(), pos: start}, nil

	case c == '"':
		// Quoted identifier: preserved case.
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '"')
		if end < 0 {
			return token{}, l.errorf("unterminated quoted identifier")
		}
		raw := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return token{kind: tokIdent, text: raw, raw: raw, pos: start}, nil

	default:
		// Multi-character operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=", "||":
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return token{kind: tokOp, text: two, raw: two, pos: start}, nil
		}
		switch c {
		case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';', '.':
			l.pos++
			s := string(c)
			return token{kind: tokOp, text: s, raw: s, pos: start}, nil
		}
		return token{}, l.errorf("unexpected character %q", string(c))
	}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
