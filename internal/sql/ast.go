// Package sql implements the query processing layer of the spatial
// engines: a lexer and parser for a compact SQL dialect with spatial
// (ST_*) functions, a planner that selects spatial (R-tree / grid) and
// attribute (B+tree) index access paths, and a volcano-style executor
// with sequential, index and k-nearest-neighbour scans, filters, joins,
// sorting, grouping and aggregation.
//
// The dialect covers the statements the Jackpine workloads need:
//
//	CREATE TABLE t (col TYPE, ...)
//	CREATE [SPATIAL] INDEX name ON t (col)
//	INSERT INTO t VALUES (expr, ...), ...
//	SELECT exprs FROM t [AS a] [JOIN u [AS b] ON cond] [WHERE cond]
//	    [GROUP BY exprs] [ORDER BY expr [ASC|DESC], ...]
//	    [LIMIT n [OFFSET m]]
//	UPDATE t SET col = expr [, ...] [WHERE cond]
//	DELETE FROM t [WHERE cond]
package sql

import (
	"fmt"
	"strings"

	"jackpine/internal/storage"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Name    string
	Columns []Column
}

// CreateIndex is a CREATE [SPATIAL] INDEX statement.
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
	Spatial bool
}

// Insert is an INSERT INTO ... VALUES statement.
type Insert struct {
	Table string
	Rows  [][]Expr
}

// Select is a SELECT statement.
type Select struct {
	Exprs   []SelectExpr
	From    *TableRef
	Joins   []Join
	Where   Expr
	GroupBy []Expr
	OrderBy []OrderKey
	Limit   int // -1 when absent
	Offset  int
}

// SelectExpr is one projection item. Star marks "*".
type SelectExpr struct {
	Expr  Expr
	Alias string
	Star  bool
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the effective binding name for the reference.
func (t *TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// Join is one JOIN clause.
type Join struct {
	Table *TableRef
	On    Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET column = expr pair.
type Assignment struct {
	Column string
	Expr   Expr
}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Where Expr
}

// Explain reports the access plan of a query without executing it.
type Explain struct {
	Query *Select
}

// Vacuum rewrites a table's heap, reclaiming the space of deleted and
// updated rows, and rebuilds its indexes.
type Vacuum struct {
	Table string
}

// DropTable removes a table and its indexes.
type DropTable struct {
	Table    string
	IfExists bool
}

func (*CreateTable) stmt() {}
func (*CreateIndex) stmt() {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}
func (*Explain) stmt()     {}
func (*Vacuum) stmt()      {}
func (*DropTable) stmt()   {}

// Column describes one table column.
type Column struct {
	Name string
	Type storage.ValueType
}

// Expr is any expression node.
type Expr interface {
	fmt.Stringer
	expr()
}

// Literal is a constant value.
type Literal struct{ Value storage.Value }

// ColumnRef names a column, optionally qualified by table/alias. After
// semantic analysis, Index is the row offset (-1 before resolution).
type ColumnRef struct {
	Table  string
	Column string
	Index  int
}

// BinaryExpr applies an infix operator.
type BinaryExpr struct {
	Op          string // =, <>, <, <=, >, >=, +, -, *, /, %, AND, OR, LIKE
	Left, Right Expr
}

// UnaryExpr applies a prefix operator (NOT, -).
type UnaryExpr struct {
	Op   string
	Expr Expr
}

// FuncCall invokes a scalar or aggregate function.
type FuncCall struct {
	Name string // canonical upper-case
	Args []Expr
	Star bool // COUNT(*)

	// prep caches the prepared constant side of a topological
	// predicate for the duration of one statement execution. It is
	// installed by Runner.installPrepared on the execution's private
	// statement tree after binding and before any fan-out, and read
	// (never written) during evaluation, so morsel workers share it
	// safely. Clones drop it (see CloneStatement).
	prep *preparedCall
}

// IsNull tests for SQL NULL (negated when Negate).
type IsNull struct {
	Expr   Expr
	Negate bool
}

// Between tests lo <= e <= hi.
type Between struct {
	Expr, Lo, Hi Expr
}

func (*Literal) expr()    {}
func (*ColumnRef) expr()  {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*FuncCall) expr()   {}
func (*IsNull) expr()     {}
func (*Between) expr()    {}

// String renders the literal.
func (l *Literal) String() string {
	if l.Value.Type == storage.TypeText {
		return "'" + strings.ReplaceAll(l.Value.Text, "'", "''") + "'"
	}
	return l.Value.String()
}

// String renders the column reference.
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// String renders the operator expression.
func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// String renders the unary expression.
func (u *UnaryExpr) String() string { return u.Op + " " + u.Expr.String() }

// String renders the call.
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

// String renders the null test.
func (n *IsNull) String() string {
	if n.Negate {
		return n.Expr.String() + " IS NOT NULL"
	}
	return n.Expr.String() + " IS NULL"
}

// String renders the range test.
func (b *Between) String() string {
	return b.Expr.String() + " BETWEEN " + b.Lo.String() + " AND " + b.Hi.String()
}
