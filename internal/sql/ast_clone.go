package sql

// CloneStatement deep-copies a parsed statement. The plan cache stores
// pristine parse trees and hands each execution its own clone, because
// binding mutates ColumnRef.Index in place: without the copy, two
// concurrent executions of one cached statement would race on the tree,
// and a template bound against one schema could leak stale offsets into
// a later run.
func CloneStatement(s Statement) Statement {
	switch t := s.(type) {
	case *CreateTable:
		cp := *t
		cp.Columns = append([]Column(nil), t.Columns...)
		return &cp
	case *CreateIndex:
		cp := *t
		cp.Columns = append([]string(nil), t.Columns...)
		return &cp
	case *Insert:
		cp := *t
		cp.Rows = make([][]Expr, len(t.Rows))
		for i, row := range t.Rows {
			cp.Rows[i] = cloneExprs(row)
		}
		return &cp
	case *Select:
		return cloneSelect(t)
	case *Update:
		cp := *t
		cp.Set = make([]Assignment, len(t.Set))
		for i, a := range t.Set {
			cp.Set[i] = Assignment{Column: a.Column, Expr: cloneExpr(a.Expr)}
		}
		cp.Where = cloneExpr(t.Where)
		return &cp
	case *Delete:
		cp := *t
		cp.Where = cloneExpr(t.Where)
		return &cp
	case *Explain:
		return &Explain{Query: cloneSelect(t.Query)}
	case *Vacuum:
		cp := *t
		return &cp
	case *DropTable:
		cp := *t
		return &cp
	}
	return s
}

func cloneSelect(sel *Select) *Select {
	if sel == nil {
		return nil
	}
	cp := *sel
	cp.Exprs = make([]SelectExpr, len(sel.Exprs))
	for i, se := range sel.Exprs {
		cp.Exprs[i] = SelectExpr{Expr: cloneExpr(se.Expr), Alias: se.Alias, Star: se.Star}
	}
	if sel.From != nil {
		f := *sel.From
		cp.From = &f
	}
	cp.Joins = make([]Join, len(sel.Joins))
	for i, j := range sel.Joins {
		cp.Joins[i] = Join{On: cloneExpr(j.On)}
		if j.Table != nil {
			tr := *j.Table
			cp.Joins[i].Table = &tr
		}
	}
	cp.Where = cloneExpr(sel.Where)
	cp.GroupBy = cloneExprs(sel.GroupBy)
	cp.OrderBy = make([]OrderKey, len(sel.OrderBy))
	for i, ok := range sel.OrderBy {
		cp.OrderBy[i] = OrderKey{Expr: cloneExpr(ok.Expr), Desc: ok.Desc}
	}
	return &cp
}

func cloneExprs(es []Expr) []Expr {
	if es == nil {
		return nil
	}
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = cloneExpr(e)
	}
	return out
}

func cloneExpr(e Expr) Expr {
	switch t := e.(type) {
	case nil:
		return nil
	case *Literal:
		cp := *t
		return &cp
	case *ColumnRef:
		cp := *t
		return &cp
	case *BinaryExpr:
		return &BinaryExpr{Op: t.Op, Left: cloneExpr(t.Left), Right: cloneExpr(t.Right)}
	case *UnaryExpr:
		return &UnaryExpr{Op: t.Op, Expr: cloneExpr(t.Expr)}
	case *FuncCall:
		return &FuncCall{Name: t.Name, Args: cloneExprs(t.Args), Star: t.Star}
	case *IsNull:
		return &IsNull{Expr: cloneExpr(t.Expr), Negate: t.Negate}
	case *Between:
		return &Between{Expr: cloneExpr(t.Expr), Lo: cloneExpr(t.Lo), Hi: cloneExpr(t.Hi)}
	}
	return e
}
