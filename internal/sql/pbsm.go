package sql

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"jackpine/internal/geom"
	"jackpine/internal/storage"
	"jackpine/internal/topo"
)

// Partition-based spatial-merge join (PBSM). An index-nested-loop
// spatial join pays one R-tree descent per outer row; when the outer
// side is large that descent dominates the join. PBSM instead collects
// both sides' envelopes decode-free into flat arrays, assigns them to a
// uniform grid over the intersection of the two extents, runs an
// x-sorted plane sweep inside each cell, and deduplicates pairs that
// straddle cells with the reference-point rule: a pair counts only in
// the cell that contains the top-left (min-x, min-y) corner of the two
// envelopes' intersection. The result is a candidate map keyed by the
// outer row's expanded envelope — exactly the window the INL path would
// probe the index with — so the probe side of the executor is a map
// lookup instead of a tree search, and refinement reuses the batched
// prepared-topology kernels. Emission stays deterministic: candidates
// are sorted in heap (RowID) order per outer envelope.

// JoinStrategy selects how spatial-predicate joins are executed.
type JoinStrategy int

const (
	// JoinAuto costs index-nested-loop against PBSM from table stats.
	JoinAuto JoinStrategy = iota
	// JoinINL forces the per-outer-row index probe.
	JoinINL
	// JoinPBSM forces the partitioned sweep whenever the join shape is
	// structurally eligible (it never displaces hash or btree paths).
	JoinPBSM
)

// String names the strategy knob.
func (s JoinStrategy) String() string {
	switch s {
	case JoinINL:
		return "inl"
	case JoinPBSM:
		return "pbsm"
	}
	return "auto"
}

// ParseJoinStrategy parses "auto", "inl" or "pbsm".
func ParseJoinStrategy(s string) (JoinStrategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return JoinAuto, nil
	case "inl":
		return JoinINL, nil
	case "pbsm":
		return JoinPBSM, nil
	}
	return JoinAuto, fmt.Errorf("sql: unknown join strategy %q", s)
}

// JoinStats is a snapshot of the runner's spatial-join counters.
type JoinStats struct {
	INL        int64 // joins executed by index-nested-loop
	PBSM       int64 // joins executed by the partitioned sweep
	Cells      int64 // grid cells across all PBSM builds
	DedupDrops int64 // cross-cell duplicate pairs suppressed by the reference-point rule
	CacheHits  int64 // sweep states served from the version-checked cache
}

// SetJoinStrategy sets the spatial-join strategy knob.
func (r *Runner) SetJoinStrategy(s JoinStrategy) { r.joinStrategy = s }

// JoinStrategy returns the spatial-join strategy knob.
func (r *Runner) JoinStrategy() JoinStrategy { return r.joinStrategy }

// JoinStats returns the spatial-join activity counters.
func (r *Runner) JoinStats() JoinStats {
	return JoinStats{
		INL:        r.joinINL.Load(),
		PBSM:       r.joinPBSM.Load(),
		Cells:      r.pbsmCells.Load(),
		DedupDrops: r.pbsmDedup.Load(),
		CacheHits:  r.pbsmHits.Load(),
	}
}

// ResetJoinStats zeroes the spatial-join counters.
func (r *Runner) ResetJoinStats() {
	r.joinINL.Store(0)
	r.joinPBSM.Store(0)
	r.pbsmCells.Store(0)
	r.pbsmDedup.Store(0)
	r.pbsmHits.Store(0)
}

// pbsmMinOuterRows is the auto-strategy floor: below this many
// (estimated) outer probes the INL descent cost cannot dominate, and
// tiny joins keep their index-order emission.
const pbsmMinOuterRows = 256

// pbsmMaxGrid caps the grid side length.
const pbsmMaxGrid = 64

// pbsmSpec is the plan-time description of one PBSM join stage.
type pbsmSpec struct {
	outer    Table
	inner    Table
	outerCol int     // outer geometry column, table-relative (outer table sits at scope offset 0)
	innerCol int     // inner geometry column, table-relative
	expand   float64 // ST_DWithin distance (0 otherwise)
	gx, gy   int     // grid dimensions, fixed at plan time for EXPLAIN

	// Fast refinement: when the join conjunct is a 2-argument prepared
	// topology predicate, it is stripped from the stage filters and
	// evaluated in-probe through the batch kernel against the outer
	// geometry prepared once per outer row. A constant-distance
	// ST_DWithin conjunct is stripped the same way (refineDWithin set)
	// and refined with a direct distance kernel instead of the generic
	// per-candidate expression evaluator.
	refineFC       *FuncCall
	refinePred     topo.Predicate
	refineOuterArg int // which of refineFC.Args is the outer operand
	refineDWithin  bool

	// reuseRows marks plans whose sink copies every row it keeps (the
	// aggregation sink), letting the emit loops lease one tuple buffer
	// per probe from the runner's pool instead of allocating per row.
	reuseRows bool
}

// pbsmState is the built candidate index, shared read-only by workers.
type pbsmState struct {
	// cands maps each distinct expanded outer envelope to its candidate
	// inner rows, sorted ascending (heap order). Every distinct non-empty
	// outer envelope has an entry, so a probe miss means the probing
	// geometry was not part of the build snapshot (concurrent insert) and
	// falls back to a linear envelope scan.
	cands map[[4]float64][]RowID
	inner storage.MBRBuf // flat inner envelopes for the fallback scan
	cells int

	// rowCache holds the inner rows materialized in one sequential pass
	// on the first probe (projected to the stage's needed columns), so
	// candidates skip the per-pair heap fetch, tuple decode and
	// geometry-cache lock the INL path pays per index hit. Rows landing
	// after the build snapshot miss the cache and fall back to a fetch.
	rowCache map[RowID][]storage.Value

	// drops is the cross-cell duplicate candidate pairs suppressed by
	// the reference-point rule during this build; surfaced through the
	// runner counter on every acquisition of the state.
	drops int64

	// preps holds each inner geometry prepared once per execution, for
	// topology fast-refine joins whose inner side is smaller than the
	// outer: both the INL filter path and the outer-prepared kernel pay
	// one topo.Prepare per outer row, so sharing one prepared structure
	// per inner row across all the probes that touch it is the
	// partitioned join's structural win. nil when the outer side is the
	// cheaper one to prepare (then the batch kernel path runs instead).
	preps map[RowID]*topo.Prepared
}

// materialize fills rowCache (and, for small-inner topology refines,
// preps) once per state; probes after the first reuse it.
func (st *pbsmState) materialize(tbl Table, spec *pbsmSpec, need []bool) error {
	if st.rowCache != nil {
		return nil
	}
	cache := make(map[RowID][]storage.Value, st.inner.Len())
	err := tbl.ScanProject(0, 1, Projection{Need: need, MBRCol: -1},
		func(id RowID, row []storage.Value) bool {
			cache[id] = row
			return true
		})
	if err != nil {
		return err
	}
	if spec.refineFC != nil && !spec.refineDWithin && len(cache) < spec.outer.RowCount() {
		preps := make(map[RowID]*topo.Prepared, len(cache))
		for id, row := range cache {
			if v := row[spec.innerCol]; !v.IsNull() && v.Type == storage.TypeGeom && v.Geom != nil {
				preps[id] = topo.Prepare(v.Geom)
			}
		}
		st.preps = preps
	}
	st.rowCache = cache
	return nil
}

// fetch resolves a candidate row through the cache, falling back to a
// point fetch for rows inserted after the build snapshot.
func (st *pbsmState) fetch(tbl Table, id RowID, need []bool) ([]storage.Value, error) {
	if row, ok := st.rowCache[id]; ok {
		return row, nil
	}
	return tbl.FetchProject(id, need)
}

// planPBSM decides whether the join stage at tables[1] should run as a
// partitioned sweep, and if so mutates paths[1] (and, in fast-refine
// mode, stageFilters[1]) in place. Only exact two-table plans are
// considered; the inner stage must currently be a spatial window probe
// or a full rescan — attr/hash paths are always better left alone.
func (r *Runner) planPBSM(scope *Scope, conjuncts []Expr, stageFilters [][]Expr,
	paths []accessPath, outer, inner Table, innerLo, innerHi int) {

	if r.joinStrategy == JoinINL {
		return
	}
	if paths[1].kind != accessSpatialWindow && paths[1].kind != accessFullScan {
		return
	}
	fc, outerArg, expand, ok := findPBSMConjunct(scope, conjuncts, innerLo, innerHi, r.reg)
	if !ok {
		return
	}
	outerRef := fc.Args[outerArg].(*ColumnRef).Index
	innerRef := fc.Args[1-outerArg].(*ColumnRef).Index
	outerName := scope.Column(outerRef).Name
	innerName := scope.Column(innerRef).Name
	if r.joinStrategy == JoinAuto &&
		!r.choosePBSM(outer, inner, outerName, innerName, paths[0], expand) {
		return
	}

	spec := &pbsmSpec{
		outer:    outer,
		inner:    inner,
		outerCol: outerRef, // outer table occupies scope offsets [0, innerLo)
		innerCol: innerRef - innerLo,
		expand:   expand,
	}
	spec.gx, spec.gy = pbsmGridDims(outer, inner, outerName, innerName, expand)
	p := accessPath{
		kind:       accessPBSM,
		pbsm:       spec,
		windowExpr: fc.Args[outerArg],
		need:       paths[1].need,
	}
	if expand != 0 {
		p.expandExpr = fc.Args[2]
	}
	paths[1] = p

	// Fast refinement only when the per-row path would also use the
	// prepared kernel; otherwise (ST_DWithin, MBR-semantics registry,
	// prep disabled) the conjunct stays a stage filter and PBSM replaces
	// candidate enumeration only.
	if r.prep && !r.reg.mbr {
		if pred, isTopo := topoPredicates[strings.ToUpper(fc.Name)]; isTopo && len(fc.Args) == 2 {
			for i, f := range stageFilters[1] {
				if f == Expr(fc) {
					stageFilters[1] = append(stageFilters[1][:i], stageFilters[1][i+1:]...)
					spec.refineFC = fc
					spec.refinePred = pred
					spec.refineOuterArg = outerArg
					break
				}
			}
		}
	}
	// A constant-distance ST_DWithin refines through the direct distance
	// kernel (exact semantics only — the MBR-semantics registry keeps it
	// as a stage filter so envelope-distance evaluation stays shared).
	if !r.reg.mbr && strings.ToUpper(fc.Name) == "ST_DWITHIN" {
		for i, f := range stageFilters[1] {
			if f == Expr(fc) {
				stageFilters[1] = append(stageFilters[1][:i], stageFilters[1][i+1:]...)
				spec.refineFC = fc
				spec.refineOuterArg = outerArg
				spec.refineDWithin = true
				break
			}
		}
	}
}

// findPBSMConjunct locates a sargable spatial predicate (or constant-
// distance ST_DWithin) joining an outer geometry column to an inner
// one, both as bare column references.
func findPBSMConjunct(scope *Scope, conjuncts []Expr, innerLo, innerHi int,
	reg *Registry) (fc *FuncCall, outerArg int, expand float64, ok bool) {

	for _, c := range conjuncts {
		f, isCall := c.(*FuncCall)
		if !isCall {
			continue
		}
		name := strings.ToUpper(f.Name)
		isDWithin := name == "ST_DWITHIN"
		if !sargableSpatial[name] && !isDWithin {
			continue
		}
		wantArgs := 2
		if isDWithin {
			wantArgs = 3
		}
		if len(f.Args) != wantArgs {
			continue
		}
		a0, ok0 := f.Args[0].(*ColumnRef)
		a1, ok1 := f.Args[1].(*ColumnRef)
		if !ok0 || !ok1 {
			continue
		}
		var oi int
		switch {
		case a0.Index >= innerLo && a0.Index < innerHi && a1.Index >= 0 && a1.Index < innerLo:
			oi = 1
		case a1.Index >= innerLo && a1.Index < innerHi && a0.Index >= 0 && a0.Index < innerLo:
			oi = 0
		default:
			continue
		}
		if scope.Column(a0.Index).Type != storage.TypeGeom ||
			scope.Column(a1.Index).Type != storage.TypeGeom {
			continue
		}
		var d float64
		if isDWithin {
			if maxRef(f.Args[2]) >= 0 {
				continue // distance must be constant for a precomputed grid
			}
			v, err := Eval(f.Args[2], nil, reg)
			if err != nil || v.IsNull() {
				continue
			}
			fl, isNum := v.AsFloat()
			if !isNum || math.IsNaN(fl) || math.IsInf(fl, 0) {
				continue
			}
			d = fl
		}
		return f, oi, d, true
	}
	return nil, 0, 0, false
}

// geomStatsOn fetches stats through the optional StatsTable extension.
func geomStatsOn(tbl Table, column string) (GeomStats, bool) {
	st, ok := tbl.(StatsTable)
	if !ok {
		return GeomStats{}, false
	}
	return st.GeomStatsOn(column)
}

// choosePBSM is the auto-strategy cost decision. INL wins whenever the
// outer stage is already selective (attr/kNN/hash access) or small; a
// missing inner index flips the default toward PBSM early, since the
// alternative is a quadratic prefiltered rescan.
func (r *Runner) choosePBSM(outer, inner Table, outerCol, innerCol string,
	outerPath accessPath, expand float64) bool {

	switch outerPath.kind {
	case accessAttrSeek, accessAttrRange, accessKNN, accessHashJoin:
		return false
	}
	nOuter := outer.RowCount()
	nInner := inner.RowCount()
	estOuter := float64(nOuter)
	// A constant spatial window on the outer stage scales the number of
	// probes by the window's share of the table extent.
	if outerPath.windowExpr != nil && maxRef(outerPath.windowExpr) < 0 {
		if st, ok := geomStatsOn(outer, outerCol); ok && st.MBR.Area() > 0 {
			if win, err := outerPath.evalWindow(nil, r.reg); err == nil && !win.IsEmpty() {
				frac := win.Intersect(st.MBR).Area() / st.MBR.Area()
				if frac < 1 {
					estOuter *= frac
				}
			}
		}
	}
	if inner.SpatialIndexOn(innerCol) == nil {
		// No index: INL degenerates to a per-outer-row rescan.
		return estOuter >= 16 && nInner >= 16
	}
	return estOuter >= pbsmMinOuterRows && 4*estOuter >= float64(nOuter)
}

// pbsmGridDims sizes the grid at plan time: cells scale with sqrt of
// the larger side (targeting ~16 envelopes per cell per side) and are
// capped so a cell never shrinks below the mean envelope footprint —
// oversized envelopes would otherwise replicate into many cells and
// inflate dedup work.
func pbsmGridDims(outer, inner Table, outerCol, innerCol string, expand float64) (int, int) {
	n := outer.RowCount()
	if c := inner.RowCount(); c > n {
		n = c
	}
	if n < 1 {
		n = 1
	}
	g := int(math.Ceil(math.Sqrt(float64(n) / 16)))
	if g < 1 {
		g = 1
	}
	if g > pbsmMaxGrid {
		g = pbsmMaxGrid
	}
	gx, gy := g, g
	oStats, oOK := geomStatsOn(outer, outerCol)
	iStats, iOK := geomStatsOn(inner, innerCol)
	if oOK && iOK {
		extent := oStats.MBR.Expand(expand).Intersect(iStats.MBR)
		meanSide := math.Max(math.Sqrt(oStats.MeanArea)+2*expand, math.Sqrt(iStats.MeanArea))
		if !extent.IsEmpty() && meanSide > 0 {
			if c := int(extent.Width() / meanSide); c < gx {
				gx = c
			}
			if c := int(extent.Height() / meanSide); c < gy {
				gy = c
			}
		}
	}
	if gx < 1 {
		gx = 1
	}
	if gy < 1 {
		gy = 1
	}
	return gx, gy
}

// collectMBRs fills buf with every row envelope of one geometry column,
// expanded by expand, skipping NULL/empty geometries. Decode-free when
// the table implements MBRTable; otherwise each geometry is
// materialized once.
func collectMBRs(tbl Table, col int, expand float64, buf *storage.MBRBuf) error {
	appendEnv := func(id RowID, env geom.Rect) bool {
		if expand != 0 {
			env = env.Expand(expand)
		}
		if env.IsEmpty() {
			return true
		}
		buf.Append(int64(id), env.MinX, env.MinY, env.MaxX, env.MaxY)
		return true
	}
	if mt, ok := tbl.(MBRTable); ok {
		return mt.ScanMBR(col, appendEnv)
	}
	need := make([]bool, len(tbl.Columns()))
	need[col] = true
	return tbl.ScanProject(0, 1, Projection{Need: need, MBRCol: -1},
		func(id RowID, row []storage.Value) bool {
			v := row[col]
			if v.IsNull() || v.Type != storage.TypeGeom || v.Geom == nil || v.Geom.IsEmpty() {
				return true
			}
			return appendEnv(id, v.Geom.Envelope())
		})
}

// pbsmPair is one candidate (outer envelope, inner row) pair emitted by
// a cell sweep, as indices into the flat envelope arrays.
type pbsmPair struct {
	a, b int32
}

// buildPBSM materializes the candidate index: collect envelopes, grid
// them, sweep each cell (cells fan out across the worker pool), and
// merge cell outputs in deterministic cell order.
func (r *Runner) buildPBSM(spec *pbsmSpec) (*pbsmState, error) {
	st := &pbsmState{}
	if err := collectMBRs(spec.inner, spec.innerCol, 0, &st.inner); err != nil {
		return nil, err
	}
	var outer storage.MBRBuf
	if err := collectMBRs(spec.outer, spec.outerCol, spec.expand, &outer); err != nil {
		return nil, err
	}

	// Deduplicate outer envelopes: rows sharing an envelope share a
	// candidate list (point tables collapse massively). ukeys remembers
	// first-seen order so the map is filled deterministically.
	st.cands = make(map[[4]float64][]RowID, outer.Len())
	var u storage.MBRBuf
	ukeys := make([][4]float64, 0, outer.Len())
	for i := 0; i < outer.Len(); i++ {
		key := [4]float64{outer.MinX[i], outer.MinY[i], outer.MaxX[i], outer.MaxY[i]}
		if _, seen := st.cands[key]; seen {
			continue
		}
		st.cands[key] = nil
		u.Append(0, key[0], key[1], key[2], key[3])
		ukeys = append(ukeys, key)
	}

	extent := u.Bounds().Intersect(st.inner.Bounds())
	gx, gy := spec.gx, spec.gy
	if extent.IsEmpty() {
		// Disjoint extents: no pair can exist; every list stays empty.
		st.cells = 0
		return st, nil
	}
	if extent.Width() <= 0 {
		gx = 1
	}
	if extent.Height() <= 0 {
		gy = 1
	}
	st.cells = gx * gy
	cw := extent.Width() / float64(gx)
	ch := extent.Height() / float64(gy)
	cellX := func(x float64) int {
		if gx == 1 || cw <= 0 {
			return 0
		}
		i := int((x - extent.MinX) / cw)
		if i < 0 {
			i = 0
		}
		if i >= gx {
			i = gx - 1
		}
		return i
	}
	cellY := func(y float64) int {
		if gy == 1 || ch <= 0 {
			return 0
		}
		i := int((y - extent.MinY) / ch)
		if i < 0 {
			i = 0
		}
		if i >= gy {
			i = gy - 1
		}
		return i
	}

	// Replicate each envelope into every cell its clamped span covers.
	// Envelopes outside the joint extent can never pair up.
	type cellList struct{ a, b []int32 }
	cells := make([]cellList, gx*gy)
	assign := func(buf *storage.MBRBuf, side int) {
		for i := 0; i < buf.Len(); i++ {
			if buf.MinX[i] > extent.MaxX || buf.MaxX[i] < extent.MinX ||
				buf.MinY[i] > extent.MaxY || buf.MaxY[i] < extent.MinY {
				continue
			}
			x0, x1 := cellX(buf.MinX[i]), cellX(buf.MaxX[i])
			y0, y1 := cellY(buf.MinY[i]), cellY(buf.MaxY[i])
			for y := y0; y <= y1; y++ {
				for x := x0; x <= x1; x++ {
					c := &cells[y*gx+x]
					if side == 0 {
						c.a = append(c.a, int32(i))
					} else {
						c.b = append(c.b, int32(i))
					}
				}
			}
		}
	}
	assign(&u, 0)
	assign(&st.inner, 1)

	// Sweep cells across the worker pool; each worker owns a pair buffer
	// and a dedup-drop counter, merged afterwards in cell order so the
	// per-envelope lists come out identical at any parallelism.
	nw := r.par
	if nw > len(cells) {
		nw = len(cells)
	}
	if len(cells) < 8 || nw < 1 {
		nw = 1
	}
	pairBufs := make([][]pbsmPair, nw)
	dropCounts := make([]int64, nw)
	sweepRange := func(w, lo, hi int) {
		pairs := pairBufs[w]
		drops := int64(0)
		for ci := lo; ci < hi; ci++ {
			c := &cells[ci]
			if len(c.a) == 0 || len(c.b) == 0 {
				continue
			}
			sortByMinX(c.a, u.MinX)
			sortByMinX(c.b, st.inner.MinX)
			pairs, drops = sweepCell(&u, &st.inner, c.a, c.b,
				ci%gx, ci/gx, cellX, cellY, pairs, drops)
		}
		pairBufs[w] = pairs
		dropCounts[w] = drops
	}
	if nw <= 1 {
		sweepRange(0, 0, len(cells))
	} else {
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			lo, hi := w*len(cells)/nw, (w+1)*len(cells)/nw
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				sweepRange(w, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
	}

	lists := make([][]RowID, u.Len())
	for w := 0; w < nw; w++ {
		for _, p := range pairBufs[w] {
			lists[p.a] = append(lists[p.a], RowID(st.inner.IDs[p.b]))
		}
		st.drops += dropCounts[w]
	}
	for i, key := range ukeys {
		l := lists[i]
		sort.Slice(l, func(p, q int) bool { return l[p] < l[q] })
		st.cands[key] = l
	}
	return st, nil
}

// sortByMinX orders a cell list by envelope min-x, breaking ties by
// index so the sweep is deterministic.
func sortByMinX(idx []int32, minX []float64) {
	sort.Slice(idx, func(p, q int) bool {
		if minX[idx[p]] != minX[idx[q]] {
			return minX[idx[p]] < minX[idx[q]]
		}
		return idx[p] < idx[q]
	})
}

// sweepCell runs the x-sorted plane sweep over one cell's two lists.
// Both lists are sorted by min-x; advancing the side with the smaller
// min-x and scanning the other while x-ranges overlap visits each
// envelope-intersecting pair exactly once. The reference-point rule
// then keeps a pair only in the cell owning the top-left corner of the
// envelope intersection, so pairs replicated into several cells are
// emitted once globally.
func sweepCell(ua, ub *storage.MBRBuf, la, lb []int32, cx, cy int,
	cellX, cellY func(float64) int, out []pbsmPair, drops int64) ([]pbsmPair, int64) {

	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		if ua.MinX[la[i]] <= ub.MinX[lb[j]] {
			ai := la[i]
			for k := j; k < len(lb); k++ {
				bi := lb[k]
				if ub.MinX[bi] > ua.MaxX[ai] {
					break
				}
				if ua.MinY[ai] > ub.MaxY[bi] || ub.MinY[bi] > ua.MaxY[ai] {
					continue
				}
				rx := math.Max(ua.MinX[ai], ub.MinX[bi])
				ry := math.Max(ua.MinY[ai], ub.MinY[bi])
				if cellX(rx) != cx || cellY(ry) != cy {
					drops++
					continue
				}
				out = append(out, pbsmPair{ai, bi})
			}
			i++
		} else {
			bi := lb[j]
			for k := i; k < len(la); k++ {
				ai := la[k]
				if ua.MinX[ai] > ub.MaxX[bi] {
					break
				}
				if ua.MinY[ai] > ub.MaxY[bi] || ub.MinY[bi] > ua.MaxY[ai] {
					continue
				}
				rx := math.Max(ua.MinX[ai], ub.MinX[bi])
				ry := math.Max(ua.MinY[ai], ub.MinY[bi])
				if cellX(rx) != cx || cellY(ry) != cy {
					drops++
					continue
				}
				out = append(out, pbsmPair{ai, bi})
			}
			j++
		}
	}
	return out, drops
}

// linear is the defensive fallback for probe envelopes absent from the
// build snapshot (a row inserted between build and probe): a flat
// envelope-overlap scan, still candidate-exact.
func (st *pbsmState) linear(w geom.Rect) []RowID {
	var ids []RowID
	b := &st.inner
	for i := 0; i < b.Len(); i++ {
		if b.MinX[i] <= w.MaxX && w.MinX <= b.MaxX[i] &&
			b.MinY[i] <= w.MaxY && w.MinY <= b.MaxY[i] {
			ids = append(ids, RowID(b.IDs[i]))
		}
	}
	sort.Slice(ids, func(p, q int) bool { return ids[p] < ids[q] })
	return ids
}

// pbsmKey identifies a cacheable sweep state: the physical tables and
// join columns, the window expansion, the grid, the refine mode (it
// decides whether inner geometries are pre-prepared) and the projected
// column set (the row cache stores projected rows).
type pbsmKey struct {
	outer, inner       Table
	outerCol, innerCol int
	expand             float64
	gx, gy             int
	mode               byte
	needKey            string
}

// pbsmEntry is one cached state stamped with the table versions it was
// built against.
type pbsmEntry struct {
	st                 *pbsmState
	outerVer, innerVer uint64
}

// pbsmCacheMax bounds the runner's state cache; at the cap the whole
// map is dropped (states are cheap to rebuild relative to churn logic).
const pbsmCacheMax = 16

// pbsmSpecKey derives the cache key, reporting false when either table
// cannot report a data version (then caching would be unsound).
func pbsmSpecKey(spec *pbsmSpec, need []bool) (pbsmKey, bool) {
	if _, ok := spec.outer.(VersionedTable); !ok {
		return pbsmKey{}, false
	}
	if _, ok := spec.inner.(VersionedTable); !ok {
		return pbsmKey{}, false
	}
	mode := byte(0)
	if spec.refineFC != nil {
		mode = 1
		if spec.refineDWithin {
			mode = 2
		}
	}
	nb := make([]byte, len(need))
	for i, n := range need {
		if n {
			nb[i] = 1
		}
	}
	return pbsmKey{
		outer: spec.outer, inner: spec.inner,
		outerCol: spec.outerCol, innerCol: spec.innerCol,
		expand: spec.expand, gx: spec.gx, gy: spec.gy,
		mode: mode, needKey: string(nb),
	}, true
}

// acquirePBSM returns the ready-to-probe sweep state for the spec:
// from the runner's version-checked cache when both tables report data
// versions, else built (and materialized) fresh. Versions are read
// before the build, so a mutation racing the build at worst stamps the
// entry stale and forces a rebuild on the next statement — never a
// silently reused stale index. The cells/dedup counters advance on
// every acquisition, so per-statement deltas stay meaningful whether
// or not the build was reused.
func (r *Runner) acquirePBSM(spec *pbsmSpec, need []bool) (*pbsmState, error) {
	key, cacheable := pbsmSpecKey(spec, need)
	var outerVer, innerVer uint64
	if cacheable {
		outerVer = spec.outer.(VersionedTable).DataVersion()
		innerVer = spec.inner.(VersionedTable).DataVersion()
		r.pbsmMu.Lock()
		e, ok := r.pbsmCache[key]
		r.pbsmMu.Unlock()
		if ok && e.outerVer == outerVer && e.innerVer == innerVer {
			r.pbsmHits.Add(1)
			r.pbsmCells.Add(int64(e.st.cells))
			r.pbsmDedup.Add(e.st.drops)
			return e.st, nil
		}
	}
	st, err := r.buildPBSM(spec)
	if err != nil {
		return nil, err
	}
	if err := st.materialize(spec.inner, spec, need); err != nil {
		return nil, err
	}
	r.pbsmCells.Add(int64(st.cells))
	r.pbsmDedup.Add(st.drops)
	if cacheable {
		r.pbsmMu.Lock()
		if r.pbsmCache == nil {
			r.pbsmCache = make(map[pbsmKey]*pbsmEntry)
		}
		if len(r.pbsmCache) >= pbsmCacheMax {
			r.pbsmCache = make(map[pbsmKey]*pbsmEntry, pbsmCacheMax)
		}
		r.pbsmCache[key] = &pbsmEntry{st: st, outerVer: outerVer, innerVer: innerVer}
		r.pbsmMu.Unlock()
	}
	return st, nil
}

// scanPBSM is the probe side of the join stage: compute the outer
// window exactly as the INL path would, look up the candidate list, and
// either emit candidates through the stage filters (safe mode) or
// refine them in-probe with the batched prepared kernel (fast mode,
// join conjunct stripped from the filters).
func (r *Runner) scanPBSM(tbl Table, path accessPath, prefix []storage.Value,
	width, lo int, built **pbsmState, emit emitFn) (bool, error) {

	if *built == nil {
		st, err := r.acquirePBSM(path.pbsm, path.need)
		if err != nil {
			return false, err
		}
		*built = st
	}
	st := *built
	window, err := path.evalWindow(prefix, r.reg)
	if err != nil {
		return false, err
	}
	if window.IsEmpty() {
		return true, nil
	}
	ids, hit := st.cands[[4]float64{window.MinX, window.MinY, window.MaxX, window.MaxY}]
	if !hit {
		ids = st.linear(window)
	}
	if len(ids) == 0 {
		return true, nil
	}
	if path.pbsm.refineFC != nil {
		return r.pbsmRefine(tbl, st, path, prefix, width, lo, ids, emit)
	}
	var full []storage.Value
	if path.pbsm.reuseRows {
		full = r.getRow(width)
		defer r.putRow(full)
	}
	for _, id := range ids {
		row, err := st.fetch(tbl, id, path.need)
		if err != nil {
			return false, err
		}
		if !path.pbsm.reuseRows {
			full = make([]storage.Value, width) //lint:allow batchalloc emitted rows escape the probe
		}
		copy(full, prefix)
		copy(full[lo:], row)
		cont, err := emit(full)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// pbsmRefine evaluates the stripped join conjunct over the candidate
// list — through one batch kernel call against the outer geometry
// prepared once (topology predicates), or through the direct distance
// kernel (constant ST_DWithin) — with the same NULL, type-error and
// prep-hit semantics as the per-row path, producing the same survivors.
func (r *Runner) pbsmRefine(tbl Table, st *pbsmState, path accessPath, prefix []storage.Value,
	width, lo int, ids []RowID, emit emitFn) (bool, error) {

	spec := path.pbsm
	ov, err := Eval(spec.refineFC.Args[spec.refineOuterArg], prefix, r.reg)
	if err != nil {
		return false, err
	}
	if ov.IsNull() || ov.Type != storage.TypeGeom || ov.Geom == nil {
		// A NULL outer operand makes the predicate NULL for every
		// candidate: nothing survives. (Unreachable after a non-empty
		// window, kept for safety.)
		return true, nil
	}
	varIdx := 1 - spec.refineOuterArg
	if spec.refineDWithin {
		// Distance refinement: the inner operand is a bare column
		// reference (findPBSMConjunct guarantees it), so it is read
		// straight off the fetched row — no expression dispatch, and a
		// joined tuple is built only for survivors.
		var full []storage.Value
		if spec.reuseRows {
			full = r.getRow(width)
			defer r.putRow(full)
		}
		for _, id := range ids {
			row, err := st.fetch(tbl, id, path.need)
			if err != nil {
				return false, err
			}
			v := row[spec.innerCol]
			if v.IsNull() {
				continue // NULL predicate result: row dropped
			}
			if v.Type != storage.TypeGeom {
				return false, fmt.Errorf("sql: predicate: argument %d is %s, want GEOMETRY", varIdx+1, v.Type)
			}
			if v.Geom == nil || !geom.DWithin(ov.Geom, v.Geom, spec.expand) {
				continue
			}
			if !spec.reuseRows {
				full = make([]storage.Value, width) //lint:allow batchalloc survivor rows escape the probe
			}
			copy(full, prefix)
			copy(full[lo:], row)
			cont, err := emit(full)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	if st.preps != nil {
		// Small-inner mode: each inner geometry was prepared once at
		// materialization, so candidates evaluate against that shared
		// structure directly — no per-probe topo.Prepare — and a joined
		// tuple is allocated only for survivors. A candidate missing
		// from the prepared set landed after the build snapshot and is
		// prepared on the spot (the result is identical either way).
		evals := 0
		var full []storage.Value
		if spec.reuseRows {
			full = r.getRow(width)
			defer r.putRow(full)
		}
		for _, id := range ids {
			row, err := st.fetch(tbl, id, path.need)
			if err != nil {
				return false, err
			}
			v := row[spec.innerCol]
			if v.IsNull() {
				continue // NULL predicate result: row dropped
			}
			if v.Type != storage.TypeGeom {
				return false, fmt.Errorf("sql: predicate: argument %d is %s, want GEOMETRY", varIdx+1, v.Type)
			}
			if v.Geom == nil {
				continue
			}
			p := st.preps[id]
			if p == nil {
				p = topo.Prepare(v.Geom)
			}
			evals++
			var hit bool
			if spec.refineOuterArg == 0 {
				hit = p.EvalReversed(spec.refinePred, ov.Geom)
			} else {
				hit = p.Eval(spec.refinePred, ov.Geom)
			}
			if !hit {
				continue
			}
			if !spec.reuseRows {
				full = make([]storage.Value, width) //lint:allow batchalloc survivor rows escape the probe
			}
			copy(full, prefix)
			copy(full[lo:], row)
			cont, err := emit(full)
			if err != nil || !cont {
				return cont, err
			}
		}
		r.reg.prepHits.Add(int64(evals))
		return true, nil
	}
	prepared := topo.Prepare(ov.Geom)
	arg := spec.refineFC.Args[varIdx]
	rows := make([][]storage.Value, 0, len(ids))
	geoms := make([]geom.Geometry, 0, len(ids))
	for _, id := range ids {
		row, err := st.fetch(tbl, id, path.need)
		if err != nil {
			return false, err
		}
		full := make([]storage.Value, width) //lint:allow batchalloc survivor rows escape the probe
		copy(full, prefix)
		copy(full[lo:], row)
		v, err := Eval(arg, full, r.reg)
		if err != nil {
			return false, err
		}
		if v.IsNull() {
			continue // NULL predicate result: row dropped
		}
		if v.Type != storage.TypeGeom {
			return false, fmt.Errorf("sql: predicate: argument %d is %s, want GEOMETRY", varIdx+1, v.Type)
		}
		if v.Geom == nil {
			continue
		}
		rows = append(rows, full)
		geoms = append(geoms, v.Geom)
	}
	outs := make([]bool, len(geoms))
	if spec.refineOuterArg == 0 {
		prepared.EvalBatch(spec.refinePred, geoms, outs)
	} else {
		prepared.EvalBatchReversed(spec.refinePred, geoms, outs)
	}
	r.reg.prepHits.Add(int64(len(geoms)))
	for i, row := range rows {
		if !outs[i] {
			continue
		}
		cont, err := emit(row)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}
