package sql

import (
	"encoding/hex"
	"fmt"

	"jackpine/internal/geom"
	"jackpine/internal/storage"
)

// registerExtras adds the extended function surface: WKB interchange,
// collection accessors, geometry simplification and affine helpers.
// These are part of every profile (they are format/accessor functions,
// not topology, so even the reduced profiles provide them).
func (r *Registry) registerExtras() {
	r.funcs["ST_ASBINARY"] = wrapN(1, "ST_ASBINARY", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_ASBINARY")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil {
			return storage.Null(), nil
		}
		return storage.NewText(hex.EncodeToString(geom.MarshalWKB(g))), nil
	})

	r.funcs["ST_GEOMFROMWKB"] = wrapN(1, "ST_GEOMFROMWKB", func(args []storage.Value) (storage.Value, error) {
		s, ok, err := argText(args, 0, "ST_GEOMFROMWKB")
		if err != nil {
			return storage.Null(), err
		}
		if !ok {
			return storage.Null(), nil
		}
		raw, err := hex.DecodeString(s)
		if err != nil {
			return storage.Null(), fmt.Errorf("sql: ST_GEOMFROMWKB: bad hex: %w", err)
		}
		g, err := geom.UnmarshalWKB(raw)
		if err != nil {
			return storage.Null(), fmt.Errorf("sql: ST_GEOMFROMWKB: %w", err)
		}
		return storage.NewGeom(g), nil
	})

	r.funcs["ST_NUMGEOMETRIES"] = wrapN(1, "ST_NUMGEOMETRIES", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_NUMGEOMETRIES")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil {
			return storage.Null(), nil
		}
		return storage.NewInt(int64(numGeometries(g))), nil
	})

	r.funcs["ST_GEOMETRYN"] = wrapN(2, "ST_GEOMETRYN", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_GEOMETRYN")
		if err != nil {
			return storage.Null(), err
		}
		n, ok, err := argFloat(args, 1, "ST_GEOMETRYN")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil || !ok {
			return storage.Null(), nil
		}
		sub, found := geometryN(g, int(n))
		if !found {
			return storage.Null(), nil
		}
		return storage.NewGeom(sub), nil
	})

	r.funcs["ST_SIMPLIFY"] = wrapN(2, "ST_SIMPLIFY", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_SIMPLIFY")
		if err != nil {
			return storage.Null(), err
		}
		tol, ok, err := argFloat(args, 1, "ST_SIMPLIFY")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil || !ok {
			return storage.Null(), nil
		}
		return storage.NewGeom(geom.Simplify(g, tol)), nil
	})

	r.funcs["ST_TRANSLATE"] = wrapN(3, "ST_TRANSLATE", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_TRANSLATE")
		if err != nil {
			return storage.Null(), err
		}
		dx, okX, err := argFloat(args, 1, "ST_TRANSLATE")
		if err != nil {
			return storage.Null(), err
		}
		dy, okY, err := argFloat(args, 2, "ST_TRANSLATE")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil || !okX || !okY {
			return storage.Null(), nil
		}
		return storage.NewGeom(translate(g, dx, dy)), nil
	})

	r.funcs["ST_ASGEOJSON"] = wrapN(1, "ST_ASGEOJSON", func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_ASGEOJSON")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil {
			return storage.Null(), nil
		}
		out, err := geom.MarshalGeoJSON(g)
		if err != nil {
			return storage.Null(), fmt.Errorf("sql: ST_ASGEOJSON: %w", err)
		}
		return storage.NewText(string(out)), nil
	})

	r.funcs["ST_GEOMFROMGEOJSON"] = wrapN(1, "ST_GEOMFROMGEOJSON", func(args []storage.Value) (storage.Value, error) {
		s, ok, err := argText(args, 0, "ST_GEOMFROMGEOJSON")
		if err != nil {
			return storage.Null(), err
		}
		if !ok {
			return storage.Null(), nil
		}
		g, err := geom.UnmarshalGeoJSON([]byte(s))
		if err != nil {
			return storage.Null(), fmt.Errorf("sql: ST_GEOMFROMGEOJSON: %w", err)
		}
		return storage.NewGeom(g), nil
	})

	r.funcs["ST_XMIN"] = wrapN(1, "ST_XMIN", envOrdinate(func(rc geom.Rect) float64 { return rc.MinX }))
	r.funcs["ST_YMIN"] = wrapN(1, "ST_YMIN", envOrdinate(func(rc geom.Rect) float64 { return rc.MinY }))
	r.funcs["ST_XMAX"] = wrapN(1, "ST_XMAX", envOrdinate(func(rc geom.Rect) float64 { return rc.MaxX }))
	r.funcs["ST_YMAX"] = wrapN(1, "ST_YMAX", envOrdinate(func(rc geom.Rect) float64 { return rc.MaxY }))
}

func envOrdinate(f func(geom.Rect) float64) FuncImpl {
	return func(args []storage.Value) (storage.Value, error) {
		g, err := argGeom(args, 0, "ST_XMIN/..")
		if err != nil {
			return storage.Null(), err
		}
		if g == nil || g.IsEmpty() {
			return storage.Null(), nil
		}
		return storage.NewFloat(f(g.Envelope())), nil
	}
}

// numGeometries counts top-level parts (1 for primitive geometries).
func numGeometries(g geom.Geometry) int {
	switch t := g.(type) {
	case geom.MultiPoint:
		return len(t)
	case geom.MultiLineString:
		return len(t)
	case geom.MultiPolygon:
		return len(t)
	case geom.Collection:
		return len(t)
	default:
		return 1
	}
}

// geometryN returns the 1-based nth part.
func geometryN(g geom.Geometry, n int) (geom.Geometry, bool) {
	idx := n - 1
	pick := func(l int) bool { return idx >= 0 && idx < l }
	switch t := g.(type) {
	case geom.MultiPoint:
		if pick(len(t)) {
			return t[idx], true
		}
	case geom.MultiLineString:
		if pick(len(t)) {
			return t[idx], true
		}
	case geom.MultiPolygon:
		if pick(len(t)) {
			return t[idx], true
		}
	case geom.Collection:
		if pick(len(t)) {
			return t[idx], true
		}
	default:
		if n == 1 {
			return g, true
		}
	}
	return nil, false
}

// translate shifts every coordinate of g by (dx, dy).
func translate(g geom.Geometry, dx, dy float64) geom.Geometry {
	out := g.Clone()
	shift := func(cs []geom.Coord) {
		for i := range cs {
			cs[i].X += dx
			cs[i].Y += dy
		}
	}
	var walk func(geom.Geometry) geom.Geometry
	walk = func(g geom.Geometry) geom.Geometry {
		switch t := g.(type) {
		case geom.Point:
			if t.Empty {
				return t
			}
			t.X += dx
			t.Y += dy
			return t
		case geom.MultiPoint:
			for i := range t {
				t[i] = walk(t[i]).(geom.Point)
			}
			return t
		case geom.LineString:
			shift(t)
			return t
		case geom.MultiLineString:
			for _, l := range t {
				shift(l)
			}
			return t
		case geom.Polygon:
			for _, r := range t {
				shift(r)
			}
			return t
		case geom.MultiPolygon:
			for _, p := range t {
				for _, r := range p {
					shift(r)
				}
			}
			return t
		case geom.Collection:
			for i := range t {
				t[i] = walk(t[i])
			}
			return t
		}
		return g
	}
	return walk(out)
}
