package sql

import (
	"strings"

	"jackpine/internal/geom"
	"jackpine/internal/storage"
)

// This file exports the planner's predicate-analysis building blocks for
// use by distributed query routers (internal/cluster): splitting WHERE
// clauses into conjuncts, recognising sargable spatial predicates, and
// evaluating a query's constant spatial window for shard pruning. The
// logic mirrors trySpatialWindow/evalWindow so a router prunes with
// exactly the windows the engine's own planner would use.

// Conjuncts flattens nested ANDs into a conjunct list (nil input yields
// nil).
func Conjuncts(e Expr) []Expr { return splitConjuncts(e) }

// CloneExpr deep-copies an expression tree (see CloneStatement).
func CloneExpr(e Expr) Expr { return cloneExpr(e) }

// WalkExpr visits every node of the expression tree in prefix order.
func WalkExpr(e Expr, fn func(Expr)) { walkExpr(e, fn) }

// IsSargableSpatial reports whether the named predicate confines true
// results to geometries whose envelopes intersect the probe's envelope
// (ST_DWithin qualifies via its expansion distance and is handled by
// ExtractSpatialWindow).
func IsSargableSpatial(name string) bool { return sargableSpatial[strings.ToUpper(name)] }

// HasColumnRef reports whether the expression references any column.
func HasColumnRef(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if _, ok := x.(*ColumnRef); ok {
			found = true
		}
	})
	return found
}

// ExtractSpatialWindow derives the constant spatial query window implied
// by a WHERE clause, for shard pruning: every top-level conjunct of the
// form pred(geomcol, probe) — with pred sargable (or ST_DWithin) and
// probe free of column references — contributes its probe envelope, and
// contributions intersect. isGeomCol classifies column references
// (receiving the reference's table qualifier, possibly empty, and
// column name, both as written). The expression must be unbound; probes
// are evaluated against reg as constants.
//
// ok is false when no conjunct matched (no pruning possible). A matched
// conjunct with a NULL probe yields an empty window: the predicate can
// never hold, so every shard may be pruned.
func ExtractSpatialWindow(where Expr, isGeomCol func(table, column string) bool, reg *Registry) (geom.Rect, bool) {
	window := geom.Rect{}
	found := false
	for _, c := range splitConjuncts(where) {
		w, ok := conjunctWindow(c, isGeomCol, reg)
		if !ok {
			continue
		}
		if found {
			window = window.Intersect(w)
		} else {
			window = w
			found = true
		}
	}
	return window, found
}

// conjunctWindow matches one conjunct against the pred(geomcol, probe)
// pattern, mirroring trySpatialWindow + evalWindow. Equality on the
// geometry column (geomcol = probe) also contributes a window: equal
// geometries have equal envelopes, so matching rows are confined to the
// probe's envelope.
func conjunctWindow(c Expr, isGeomCol func(table, column string) bool, reg *Registry) (geom.Rect, bool) {
	if be, ok := c.(*BinaryExpr); ok && be.Op == "=" {
		sides := [2]Expr{be.Left, be.Right}
		for i := 0; i < 2; i++ {
			col, isCol := sides[i].(*ColumnRef)
			if !isCol || !isGeomCol(col.Table, col.Column) {
				continue
			}
			probe := sides[1-i]
			if HasColumnRef(probe) {
				continue
			}
			v, err := Eval(probe, nil, reg)
			if err != nil {
				continue
			}
			if v.IsNull() {
				// geom = NULL is never true.
				return geom.EmptyRect(), true
			}
			if v.Type != storage.TypeGeom {
				continue // engine-side coercion rules unknown: no pruning
			}
			return v.Geom.Envelope(), true
		}
		return geom.Rect{}, false
	}
	fc, ok := c.(*FuncCall)
	if !ok {
		return geom.Rect{}, false
	}
	name := strings.ToUpper(fc.Name)
	isDWithin := name == "ST_DWITHIN"
	if !sargableSpatial[name] && !isDWithin {
		return geom.Rect{}, false
	}
	wantArgs := 2
	if isDWithin {
		wantArgs = 3
	}
	if len(fc.Args) != wantArgs {
		return geom.Rect{}, false
	}
	for i := 0; i < 2; i++ {
		col, isCol := fc.Args[i].(*ColumnRef)
		if !isCol || !isGeomCol(col.Table, col.Column) {
			continue
		}
		probe := fc.Args[1-i]
		if HasColumnRef(probe) {
			continue
		}
		v, err := Eval(probe, nil, reg)
		if err != nil {
			continue // unevaluable probe: no pruning from this conjunct
		}
		if v.IsNull() || v.Type != storage.TypeGeom {
			return geom.EmptyRect(), true
		}
		w := v.Geom.Envelope()
		if isDWithin {
			if HasColumnRef(fc.Args[2]) {
				continue
			}
			d, err := Eval(fc.Args[2], nil, reg)
			if err != nil {
				continue
			}
			if f, ok := d.AsFloat(); ok {
				w = w.Expand(f)
			}
		}
		return w, true
	}
	return geom.Rect{}, false
}

// ConstantGeometry evaluates a column-free expression to a geometry (for
// routing INSERT rows by location). ok is false for NULL, non-geometry
// results, evaluation errors, or expressions referencing columns; a text
// result parses as WKT, matching the executor's INSERT coercion.
func ConstantGeometry(e Expr, reg *Registry) (geom.Geometry, bool) {
	if HasColumnRef(e) {
		return nil, false
	}
	v, err := Eval(e, nil, reg)
	if err != nil {
		return nil, false
	}
	switch v.Type {
	case storage.TypeGeom:
		return v.Geom, true
	case storage.TypeText:
		g, err := geom.ParseWKT(v.Text)
		if err != nil {
			return nil, false
		}
		return g, true
	}
	return nil, false
}
