package sql

import (
	"jackpine/internal/geom"
	"jackpine/internal/storage"
)

// RowID is the executor-facing identifier of a stored row, equal to the
// heap RecordID packed as (page << 16 | slot).
type RowID int64

// PackRowID converts a heap record id to a RowID.
func PackRowID(rid storage.RecordID) RowID {
	return RowID(int64(rid.Page)<<16 | int64(rid.Slot))
}

// Unpack converts the RowID back to a heap record id.
func (r RowID) Unpack() storage.RecordID {
	return storage.RecordID{Page: uint32(r >> 16), Slot: uint16(r & 0xFFFF)}
}

// SpatialIndex is the access-path abstraction over the engine's spatial
// indexes (R-tree or grid).
type SpatialIndex interface {
	// Search invokes fn for every row whose indexed envelope intersects
	// the query window, stopping when fn returns false.
	Search(window geom.Rect, fn func(RowID) bool)
	// Nearest visits rows in increasing envelope distance from p.
	Nearest(p geom.Coord, fn func(id RowID, envDist float64) bool)
	// Len returns the number of indexed entries.
	Len() int
}

// AttrIndex is the access-path abstraction over attribute B+tree indexes.
type AttrIndex interface {
	// Seek invokes fn for every row with the exact encoded key.
	Seek(key []byte, fn func(RowID) bool)
	// Range scans keys in [lo, hi] (nil = unbounded, bounds per loInc/hiInc).
	Range(lo, hi []byte, loInc, hiInc bool, fn func(RowID) bool)
}

// AttrIndexDef describes one attribute index: its ordered column list
// and the index itself. Keys are the concatenated component encodings
// (btree.AppendInt/AppendFloat/AppendText) of the columns in order.
type AttrIndexDef struct {
	Columns []string
	Index   AttrIndex
}

// Projection tells a scan which columns the plan actually references
// and, optionally, which geometry column to MBR-prefilter. Tables use
// it to decode lazily: unneeded columns surface as NULL (they are never
// read by the plan), and rows whose prefiltered geometry envelope does
// not intersect Window are skipped before any full decode.
type Projection struct {
	// Need[i] marks column i as referenced; nil means all columns.
	Need []bool
	// MBRCol is the table-relative offset of the geometry column to
	// prefilter, or -1 to disable prefiltering.
	MBRCol int
	// Window is the query envelope the prefilter tests against (only
	// meaningful when MBRCol >= 0).
	Window geom.Rect
	// Ephemeral marks needed geometry columns that only stage-0 filters
	// read: nothing downstream of the scan references them, so batch
	// scans may decode them into per-worker arena memory that is
	// recycled at the next morsel. nil means none; row-at-a-time scans
	// ignore the field entirely.
	Ephemeral []bool
}

// AllColumns is the trivial projection: decode everything, no prefilter.
func AllColumns() Projection { return Projection{MBRCol: -1} }

// Table is the executor's view of a stored table.
type Table interface {
	// Name returns the table name.
	Name() string
	// Columns returns the schema.
	Columns() []Column
	// Scan iterates all rows, stopping when fn returns false.
	Scan(fn func(id RowID, row []storage.Value) bool) error
	// ScanShard iterates the shard'th of nshards page partitions.
	// Partitions are disjoint and contiguous: visiting shards
	// 0..nshards-1 in order reproduces exactly the rows (and order)
	// of Scan, which lets parallel scans merge deterministically.
	// Shards may be scanned concurrently.
	ScanShard(shard, nshards int, fn func(id RowID, row []storage.Value) bool) error
	// ScanProject is ScanShard with lazy decoding: only columns marked
	// in proj.Need are materialized (others are NULL), and when
	// proj.MBRCol >= 0 rows whose geometry envelope does not intersect
	// proj.Window are skipped without decoding. Use shard=0, nshards=1
	// for a serial scan.
	ScanProject(shard, nshards int, proj Projection, fn func(id RowID, row []storage.Value) bool) error
	// Fetch returns the row with the given id.
	Fetch(id RowID) ([]storage.Value, error)
	// FetchProject returns the row with the given id, materializing only
	// the columns marked in need (nil need means all).
	FetchProject(id RowID, need []bool) ([]storage.Value, error)
	// Insert appends a row and maintains indexes.
	Insert(row []storage.Value) (RowID, error)
	// Delete removes a row and maintains indexes.
	Delete(id RowID) error
	// Update replaces the row at id (the id may change).
	Update(id RowID, row []storage.Value) (RowID, error)
	// SpatialIndexOn returns the spatial index on the named column, or
	// nil when there is none.
	SpatialIndexOn(column string) SpatialIndex
	// AttrIndexes returns the attribute indexes on this table.
	AttrIndexes() []AttrIndexDef
	// RowCount returns the current number of rows.
	RowCount() int
}

// VersionedTable is an optional Table extension: DataVersion advances
// on every row mutation (and on physical renumbering), letting
// executors cache table-derived state — the PBSM candidate index —
// and invalidate it precisely instead of rebuilding per statement.
type VersionedTable interface {
	DataVersion() uint64
}

// BatchTable is the optional batch-at-a-time extension of Table. A
// table that implements it can feed the vectorized executor whole
// column batches instead of one row per callback; tables that do not
// stay on the row path unchanged.
type BatchTable interface {
	Table
	// ScanBatch drives the shard'th of nshards heap partitions in
	// batches of up to size slots: each batch is filled with validated
	// tuples, MBR-prefiltered against proj.Window when proj.MBRCol >= 0
	// (survivors land in the batch's selection vector), and its selected
	// slots materialized per proj.Need before fn runs. Batch memory is
	// reused: fn must copy anything that outlives the call. Visiting
	// shards 0..nshards-1 in order reproduces exactly the rows (and
	// order) of ScanProject.
	ScanBatch(shard, nshards int, proj Projection, size int, fn func(*storage.ColBatch) (bool, error)) error
	// FetchBatch fills b with the identified rows (in id order, all
	// selected) and materializes them per proj.Need. Used by the batch
	// refinement stage of spatial-index scans.
	FetchBatch(ids []RowID, proj Projection, b *storage.ColBatch) error
}

// GeomStats summarizes one geometry column for join planning: the union
// envelope of every non-empty geometry, the count of rows carrying one,
// and their mean envelope area. Maintained incrementally on insert (the
// MBR never shrinks on delete) and recomputed on vacuum.
type GeomStats struct {
	MBR      geom.Rect
	Rows     int
	MeanArea float64
}

// StatsTable is the optional statistics extension of Table. Tables that
// implement it let the planner cost index-nested-loop against
// partition-based spatial-merge joins; tables that do not are planned
// conservatively.
type StatsTable interface {
	Table
	// GeomStatsOn returns statistics for the named geometry column, or
	// ok=false when the column is unknown or stats are unavailable.
	GeomStatsOn(column string) (GeomStats, bool)
}

// MBRTable is the optional decode-free envelope extension of Table.
// Implementations stream every row's geometry envelope for one column
// straight from the stored tuple (EnvelopeWKB header walk) without
// materializing geometries — the PBSM join's build-side input. Rows
// whose column is NULL, non-geometry, or empty are skipped, matching
// the spatial-index and MBR-prefilter population.
type MBRTable interface {
	Table
	// ScanMBR invokes fn with each row's envelope in heap (RowID) order,
	// stopping when fn returns false.
	ScanMBR(col int, fn func(id RowID, env geom.Rect) bool) error
}

// Catalog resolves table names and applies DDL. The engine implements it.
type Catalog interface {
	// Table returns the named table.
	Table(name string) (Table, bool)
	// CreateTable registers a new table.
	CreateTable(name string, cols []Column) error
	// CreateIndex builds an index on an existing table. Spatial indexes
	// take exactly one geometry column; attribute indexes take one or
	// more non-geometry columns.
	CreateIndex(name, table string, columns []string, spatial bool) error
	// Vacuum rewrites a table's storage and rebuilds its indexes.
	Vacuum(table string) error
	// DropTable removes a table. Missing tables error unless ifExists.
	DropTable(table string, ifExists bool) error
}

// ColumnIndexByName returns the offset of the named column, or -1.
func ColumnIndexByName(cols []Column, name string) int {
	for i, c := range cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}
