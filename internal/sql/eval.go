package sql

import (
	"fmt"
	"strings"

	"jackpine/internal/storage"
)

// Scope describes the flattened row layout visible to expressions: one
// entry per column of the FROM tables in join order.
type Scope struct {
	cols []scopeCol
}

type scopeCol struct {
	binding string // table alias or name (lower case)
	col     Column
}

// NewScope builds a scope from (binding, columns) pairs in row order.
func NewScope() *Scope { return &Scope{} }

// AddTable appends a table's columns under the given binding name.
func (s *Scope) AddTable(binding string, cols []Column) {
	for _, c := range cols {
		s.cols = append(s.cols, scopeCol{binding: strings.ToLower(binding), col: c})
	}
}

// Len returns the width of the scope's row.
func (s *Scope) Len() int { return len(s.cols) }

// Column returns the schema of offset i.
func (s *Scope) Column(i int) Column { return s.cols[i].col }

// Binding returns the table binding of offset i.
func (s *Scope) Binding(i int) string { return s.cols[i].binding }

// Resolve locates a column reference, returning its row offset.
func (s *Scope) Resolve(table, column string) (int, error) {
	found := -1
	for i, sc := range s.cols {
		if sc.col.Name != column {
			continue
		}
		if table != "" && sc.binding != table {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %q", column)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return 0, fmt.Errorf("sql: unknown column %s.%s", table, column)
		}
		return 0, fmt.Errorf("sql: unknown column %q", column)
	}
	return found, nil
}

// Bind resolves every column reference in the expression against the
// scope (mutating ColumnRef.Index) and verifies functions exist in reg.
// Aggregate calls are permitted only when aggOK.
func Bind(e Expr, s *Scope, reg *Registry, aggOK bool) error {
	switch t := e.(type) {
	case nil:
		return nil
	case *Literal:
		return nil
	case *ColumnRef:
		idx, err := s.Resolve(strings.ToLower(t.Table), strings.ToLower(t.Column))
		if err != nil {
			return err
		}
		t.Index = idx
		return nil
	case *BinaryExpr:
		if err := Bind(t.Left, s, reg, aggOK); err != nil {
			return err
		}
		return Bind(t.Right, s, reg, aggOK)
	case *UnaryExpr:
		return Bind(t.Expr, s, reg, aggOK)
	case *IsNull:
		return Bind(t.Expr, s, reg, aggOK)
	case *Between:
		if err := Bind(t.Expr, s, reg, aggOK); err != nil {
			return err
		}
		if err := Bind(t.Lo, s, reg, aggOK); err != nil {
			return err
		}
		return Bind(t.Hi, s, reg, aggOK)
	case *FuncCall:
		if IsAggregateCall(t) {
			if !aggOK {
				return fmt.Errorf("sql: aggregate %s not allowed here", t.Name)
			}
			// Aggregate arguments must not nest aggregates.
			for _, a := range t.Args {
				if err := Bind(a, s, reg, false); err != nil {
					return err
				}
			}
			return nil
		}
		if !reg.Has(t.Name) {
			return fmt.Errorf("sql: function %s is not supported by this engine", t.Name)
		}
		for _, a := range t.Args {
			if err := Bind(a, s, reg, aggOK); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("sql: cannot bind %T", e)
	}
}

// IsAggregate reports whether name is an aggregate function. ST_UNION
// and ST_EXTENT are aggregates in their one-argument form only (the
// two-argument ST_UNION is the scalar overlay function); use
// IsAggregateCall where the argument count is known.
func IsAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// IsAggregateCall reports whether the call is an aggregate invocation,
// resolving the ST_UNION / ST_EXTENT arity overloads.
func IsAggregateCall(fc *FuncCall) bool {
	if IsAggregate(fc.Name) {
		return true
	}
	switch fc.Name {
	case "ST_UNION", "ST_EXTENT", PartialSumName:
		return !fc.Star && len(fc.Args) == 1
	}
	return false
}

// HasAggregate reports whether the expression contains an aggregate call.
func HasAggregate(e Expr) bool {
	switch t := e.(type) {
	case *FuncCall:
		if IsAggregateCall(t) {
			return true
		}
		for _, a := range t.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return HasAggregate(t.Left) || HasAggregate(t.Right)
	case *UnaryExpr:
		return HasAggregate(t.Expr)
	case *IsNull:
		return HasAggregate(t.Expr)
	case *Between:
		return HasAggregate(t.Expr) || HasAggregate(t.Lo) || HasAggregate(t.Hi)
	}
	return false
}

// Eval computes the expression over the row. Column references must have
// been bound first.
func Eval(e Expr, row []storage.Value, reg *Registry) (storage.Value, error) {
	switch t := e.(type) {
	case *Literal:
		return t.Value, nil
	case *ColumnRef:
		if t.Index < 0 || t.Index >= len(row) {
			return storage.Null(), fmt.Errorf("sql: unbound column %s", t)
		}
		return row[t.Index], nil
	case *UnaryExpr:
		v, err := Eval(t.Expr, row, reg)
		if err != nil {
			return storage.Null(), err
		}
		switch t.Op {
		case "NOT":
			if v.IsNull() {
				return storage.Null(), nil
			}
			return storage.NewBool(!truthy(v)), nil
		case "-":
			switch v.Type {
			case storage.TypeInt:
				return storage.NewInt(-v.Int), nil
			case storage.TypeFloat:
				return storage.NewFloat(-v.Float), nil
			case storage.TypeNull:
				return storage.Null(), nil
			}
			return storage.Null(), fmt.Errorf("sql: cannot negate %s", v.Type)
		}
		return storage.Null(), fmt.Errorf("sql: unknown unary op %s", t.Op)
	case *IsNull:
		v, err := Eval(t.Expr, row, reg)
		if err != nil {
			return storage.Null(), err
		}
		return storage.NewBool(v.IsNull() != t.Negate), nil
	case *Between:
		v, err := Eval(t.Expr, row, reg)
		if err != nil {
			return storage.Null(), err
		}
		lo, err := Eval(t.Lo, row, reg)
		if err != nil {
			return storage.Null(), err
		}
		hi, err := Eval(t.Hi, row, reg)
		if err != nil {
			return storage.Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return storage.Null(), nil
		}
		cLo, ok1 := storage.Compare(v, lo)
		cHi, ok2 := storage.Compare(v, hi)
		if !ok1 || !ok2 {
			return storage.Null(), fmt.Errorf("sql: BETWEEN on incomparable types")
		}
		return storage.NewBool(cLo >= 0 && cHi <= 0), nil
	case *BinaryExpr:
		return evalBinary(t, row, reg)
	case *FuncCall:
		if IsAggregateCall(t) {
			return storage.Null(), fmt.Errorf("sql: aggregate %s evaluated outside aggregation", t.Name)
		}
		if t.prep != nil {
			// Topological call with a prepared constant side: evaluate
			// only the variable operand and reuse the cached
			// decomposition (see preparedCall.eval for the semantics
			// guarantee).
			return t.prep.eval(t, row, reg)
		}
		args := make([]storage.Value, len(t.Args))
		for i, a := range t.Args {
			v, err := Eval(a, row, reg)
			if err != nil {
				return storage.Null(), err
			}
			args[i] = v
		}
		return reg.Call(t.Name, args)
	}
	return storage.Null(), fmt.Errorf("sql: cannot evaluate %T", e)
}

// truthy interprets a value as a boolean condition.
func truthy(v storage.Value) bool {
	switch v.Type {
	case storage.TypeBool:
		return v.Int != 0
	case storage.TypeInt:
		return v.Int != 0
	case storage.TypeFloat:
		return v.Float != 0
	case storage.TypeText:
		return v.Text != ""
	case storage.TypeNull:
		return false
	}
	return true
}

func evalBinary(b *BinaryExpr, row []storage.Value, reg *Registry) (storage.Value, error) {
	// Short-circuit logic with SQL three-valued semantics approximated
	// as NULL-propagating.
	switch b.Op {
	case "AND":
		l, err := Eval(b.Left, row, reg)
		if err != nil {
			return storage.Null(), err
		}
		if !l.IsNull() && !truthy(l) {
			return storage.NewBool(false), nil
		}
		r, err := Eval(b.Right, row, reg)
		if err != nil {
			return storage.Null(), err
		}
		if !r.IsNull() && !truthy(r) {
			return storage.NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return storage.Null(), nil
		}
		return storage.NewBool(true), nil
	case "OR":
		l, err := Eval(b.Left, row, reg)
		if err != nil {
			return storage.Null(), err
		}
		if !l.IsNull() && truthy(l) {
			return storage.NewBool(true), nil
		}
		r, err := Eval(b.Right, row, reg)
		if err != nil {
			return storage.Null(), err
		}
		if !r.IsNull() && truthy(r) {
			return storage.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return storage.Null(), nil
		}
		return storage.NewBool(false), nil
	}

	l, err := Eval(b.Left, row, reg)
	if err != nil {
		return storage.Null(), err
	}
	r, err := Eval(b.Right, row, reg)
	if err != nil {
		return storage.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return storage.Null(), nil
	}

	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		c, ok := storage.Compare(l, r)
		if !ok {
			return storage.Null(), fmt.Errorf("sql: cannot compare %s with %s", l.Type, r.Type)
		}
		var res bool
		switch b.Op {
		case "=":
			res = c == 0
		case "<>":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return storage.NewBool(res), nil

	case "+", "-", "*", "/", "%":
		return evalArith(b.Op, l, r)

	case "||":
		return storage.NewText(l.String() + r.String()), nil

	case "LIKE":
		if l.Type != storage.TypeText || r.Type != storage.TypeText {
			return storage.Null(), fmt.Errorf("sql: LIKE requires text operands")
		}
		return storage.NewBool(likeMatch(l.Text, r.Text)), nil
	}
	return storage.Null(), fmt.Errorf("sql: unknown operator %s", b.Op)
}

func evalArith(op string, l, r storage.Value) (storage.Value, error) {
	if l.Type == storage.TypeInt && r.Type == storage.TypeInt {
		a, b := l.Int, r.Int
		switch op {
		case "+":
			return storage.NewInt(a + b), nil
		case "-":
			return storage.NewInt(a - b), nil
		case "*":
			return storage.NewInt(a * b), nil
		case "/":
			if b == 0 {
				return storage.Null(), fmt.Errorf("sql: division by zero")
			}
			return storage.NewInt(a / b), nil
		case "%":
			if b == 0 {
				return storage.Null(), fmt.Errorf("sql: division by zero")
			}
			return storage.NewInt(a % b), nil
		}
	}
	a, okA := l.AsFloat()
	b, okB := r.AsFloat()
	if !okA || !okB {
		return storage.Null(), fmt.Errorf("sql: arithmetic on %s and %s", l.Type, r.Type)
	}
	switch op {
	case "+":
		return storage.NewFloat(a + b), nil
	case "-":
		return storage.NewFloat(a - b), nil
	case "*":
		return storage.NewFloat(a * b), nil
	case "/":
		if b == 0 {
			return storage.Null(), fmt.Errorf("sql: division by zero")
		}
		return storage.NewFloat(a / b), nil
	case "%":
		return storage.Null(), fmt.Errorf("sql: %% requires integer operands")
	}
	return storage.Null(), fmt.Errorf("sql: unknown arithmetic op %s", op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (single char).
func likeMatch(s, pattern string) bool {
	// Dynamic-programming match over bytes.
	n, m := len(s), len(pattern)
	prev := make([]bool, n+1)
	cur := make([]bool, n+1)
	prev[0] = true
	for j := 1; j <= m; j++ {
		pc := pattern[j-1]
		cur[0] = prev[0] && pc == '%'
		for i := 1; i <= n; i++ {
			switch pc {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == pc
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}
