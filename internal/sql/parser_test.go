package sql

import (
	"strings"
	"testing"

	"jackpine/internal/storage"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE Roads (id BIGINT, name VARCHAR(64), len DOUBLE, geo GEOMETRY, open BOOLEAN)`)
	ct := stmt.(*CreateTable)
	if ct.Name != "roads" || len(ct.Columns) != 5 {
		t.Fatalf("parsed %+v", ct)
	}
	wantTypes := []storage.ValueType{storage.TypeInt, storage.TypeText, storage.TypeFloat, storage.TypeGeom, storage.TypeBool}
	for i, w := range wantTypes {
		if ct.Columns[i].Type != w {
			t.Errorf("column %d type = %v, want %v", i, ct.Columns[i].Type, w)
		}
	}
}

func TestParseCreateIndex(t *testing.T) {
	ci := mustParse(t, "CREATE SPATIAL INDEX gidx ON roads (geo)").(*CreateIndex)
	if !ci.Spatial || ci.Table != "roads" || len(ci.Columns) != 1 || ci.Columns[0] != "geo" {
		t.Errorf("parsed %+v", ci)
	}
	ci = mustParse(t, "CREATE INDEX nidx ON roads (name)").(*CreateIndex)
	if ci.Spatial {
		t.Error("plain index parsed as spatial")
	}
	// Composite column lists.
	ci = mustParse(t, "CREATE INDEX addr ON roads (name, fromaddr, toaddr)").(*CreateIndex)
	if len(ci.Columns) != 3 || ci.Columns[1] != "fromaddr" {
		t.Errorf("composite parsed %+v", ci)
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t VALUES (1, 'a'), (2, 'it''s')").(*Insert)
	if len(ins.Rows) != 2 || len(ins.Rows[0]) != 2 {
		t.Fatalf("rows %+v", ins.Rows)
	}
	lit := ins.Rows[1][1].(*Literal)
	if lit.Value.Text != "it's" {
		t.Errorf("escaped string = %q", lit.Value.Text)
	}
}

func TestParseSelectFull(t *testing.T) {
	sel := mustParse(t, `SELECT a.id, COUNT(*) AS n FROM roads a JOIN parcels AS p ON ST_Intersects(a.geo, p.geo) WHERE a.len > 10 AND p.id <> 3 GROUP BY a.id ORDER BY n DESC, a.id LIMIT 5 OFFSET 2`).(*Select)
	if len(sel.Exprs) != 2 || sel.Exprs[1].Alias != "n" {
		t.Errorf("exprs %+v", sel.Exprs)
	}
	if sel.From.Table != "roads" || sel.From.Alias != "a" {
		t.Errorf("from %+v", sel.From)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Table.Alias != "p" {
		t.Errorf("joins %+v", sel.Joins)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || len(sel.OrderBy) != 2 {
		t.Error("clauses missing")
	}
	if !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Error("order directions wrong")
	}
	if sel.Limit != 5 || sel.Offset != 2 {
		t.Errorf("limit %d offset %d", sel.Limit, sel.Offset)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT 1 + 2 * 3 FROM t").(*Select)
	if got := sel.Exprs[0].Expr.String(); got != "(1 + (2 * 3))" {
		t.Errorf("precedence tree = %s", got)
	}
	sel = mustParse(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").(*Select)
	b := sel.Where.(*BinaryExpr)
	if b.Op != "OR" {
		t.Errorf("OR should be outermost, got %s", b.Op)
	}
	sel = mustParse(t, "SELECT a FROM t WHERE NOT x = 1").(*Select)
	if _, ok := sel.Where.(*UnaryExpr); !ok {
		t.Error("NOT should wrap comparison")
	}
}

func TestParseSpecialPredicates(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL AND c BETWEEN 1 AND 5 AND d LIKE 'x%'").(*Select)
	conj := splitConjuncts(sel.Where)
	if len(conj) != 4 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if n, ok := conj[0].(*IsNull); !ok || n.Negate {
		t.Error("IS NULL parse")
	}
	if n, ok := conj[1].(*IsNull); !ok || !n.Negate {
		t.Error("IS NOT NULL parse")
	}
	if _, ok := conj[2].(*Between); !ok {
		t.Error("BETWEEN parse")
	}
	if b, ok := conj[3].(*BinaryExpr); !ok || b.Op != "LIKE" {
		t.Error("LIKE parse")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	upd := mustParse(t, "UPDATE t SET a = 1, b = b + 1 WHERE id = 3").(*Update)
	if len(upd.Set) != 2 || upd.Set[1].Column != "b" || upd.Where == nil {
		t.Errorf("update %+v", upd)
	}
	del := mustParse(t, "DELETE FROM t").(*Delete)
	if del.Where != nil {
		t.Error("bare delete should have nil where")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC 1",
		"SELECT FROM t",
		"SELECT a FROM",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a WIBBLE)",
		"INSERT INTO t (1)",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t extra junk (",
		"SELECT 'unterminated FROM t",
		"UPDATE t SET WHERE x = 1",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseNegativeNumbersAndCase(t *testing.T) {
	sel := mustParse(t, "select ID from T where X = -4.5e2").(*Select)
	cmp := sel.Where.(*BinaryExpr)
	lit := cmp.Right.(*Literal)
	if lit.Value.Float != -450 {
		t.Errorf("literal = %v", lit.Value)
	}
	if sel.From.Table != "t" {
		t.Error("table names should be lower-cased")
	}
	if sel.Exprs[0].Expr.(*ColumnRef).Column != "id" {
		t.Error("column names should be lower-cased")
	}
}

func TestParseComments(t *testing.T) {
	sel := mustParse(t, "SELECT a -- trailing comment\nFROM t -- another\n").(*Select)
	if sel.From.Table != "t" {
		t.Error("comment handling broken")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"main street", "main%", true},
		{"main street", "%street", true},
		{"main street", "%str%", true},
		{"main street", "m__n street", true},
		{"main street", "x%", false},
		{"", "%", true},
		{"", "", true},
		{"a", "_", true},
		{"ab", "_", false},
		{"100 oak ave", "% oak %", true},
	}
	for _, tc := range cases {
		if got := likeMatch(tc.s, tc.p); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v", tc.s, tc.p, got)
		}
	}
}

func TestRegistryDisabledAndMBR(t *testing.T) {
	full := NewRegistry(RegistryOptions{})
	if !full.Has("ST_BUFFER") || !full.Has("ST_RELATE") || full.MBRPredicates() {
		t.Error("full registry misconfigured")
	}
	limited := NewRegistry(RegistryOptions{MBRPredicates: true, Disabled: []string{"ST_Buffer", "st_relate"}})
	if limited.Has("ST_BUFFER") || limited.Has("ST_RELATE") {
		t.Error("disabled functions still present")
	}
	if !limited.MBRPredicates() {
		t.Error("MBR flag lost")
	}
	if _, err := limited.Call("ST_BUFFER", nil); err == nil ||
		!strings.Contains(err.Error(), "not supported") {
		t.Errorf("call of disabled function: %v", err)
	}
	names := full.Names()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("Names not sorted")
		}
	}
}

func TestScopeResolution(t *testing.T) {
	s := NewScope()
	s.AddTable("a", []Column{{Name: "id", Type: storage.TypeInt}, {Name: "geo", Type: storage.TypeGeom}})
	s.AddTable("b", []Column{{Name: "id", Type: storage.TypeInt}})
	if _, err := s.Resolve("", "id"); err == nil {
		t.Error("ambiguous column resolved")
	}
	idx, err := s.Resolve("b", "id")
	if err != nil || idx != 2 {
		t.Errorf("b.id = %d, %v", idx, err)
	}
	idx, err = s.Resolve("", "geo")
	if err != nil || idx != 1 {
		t.Errorf("geo = %d, %v", idx, err)
	}
	if _, err := s.Resolve("", "nope"); err == nil {
		t.Error("missing column resolved")
	}
	if _, err := s.Resolve("c", "id"); err == nil {
		t.Error("missing table resolved")
	}
}

func TestRowIDPacking(t *testing.T) {
	rids := []storage.RecordID{
		{Page: 0, Slot: 0},
		{Page: 1, Slot: 2},
		{Page: 0xFFFFFFFF, Slot: 0xFFFF},
		{Page: 123456, Slot: 789},
	}
	for _, rid := range rids {
		if got := PackRowID(rid).Unpack(); got != rid {
			t.Errorf("round trip %v -> %v", rid, got)
		}
	}
}
