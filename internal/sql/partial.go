package sql

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
	"strings"

	"jackpine/internal/storage"
)

// PartialSumName is the hidden aggregate a distributed query router
// substitutes for SUM and AVG when fanning an aggregate query out across
// shards. Each shard accumulates exactly like SUM but finalizes to a
// text-encoded PartialSum state instead of a rounded float, so the
// router can merge shard states and round once — producing the same
// bits as a single engine summing every row itself (the accumulator is
// an exact big.Float, see sumPrec).
//
// The name is not parseable-by-accident: it only enters queries through
// a router rewrite.
const PartialSumName = "__PARTIAL_SUM"

// PartialSum is the mergeable state of a distributed SUM/AVG: the exact
// high-precision sum, the integer-only fast path, and the non-finite
// overflow bucket, mirroring the executor's aggState fields.
type PartialSum struct {
	Count   int64
	SumInt  int64
	IntOnly bool
	Sum     *big.Float // nil until a finite term arrives
	SumBad  float64
	HasBad  bool
}

// NewPartialSum returns the empty state (IntOnly starts true, matching a
// fresh aggState).
func NewPartialSum() PartialSum { return PartialSum{IntOnly: true} }

// partialFromState snapshots an executor aggregate state.
func partialFromState(st *aggState) PartialSum {
	return PartialSum{
		Count:   st.count,
		SumInt:  st.sumInt,
		IntOnly: st.intOnly,
		Sum:     st.sum,
		SumBad:  st.sumBad,
		HasBad:  st.hasBad,
	}
}

// Encode renders the state as text. The big.Float sum uses the 'p'
// (hexadecimal mantissa, binary exponent) format, which round-trips
// exactly; the non-finite bucket is carried as raw float64 bits.
func (p PartialSum) Encode() string {
	sum := ""
	if p.Sum != nil {
		sum = p.Sum.Text('p', 0)
	}
	return fmt.Sprintf("%d|%d|%t|%t|%s|%s",
		p.Count, p.SumInt, p.IntOnly, p.HasBad,
		strconv.FormatUint(math.Float64bits(p.SumBad), 16), sum)
}

// ParsePartialSum decodes a state produced by Encode.
func ParsePartialSum(s string) (PartialSum, error) {
	parts := strings.SplitN(s, "|", 6)
	if len(parts) != 6 {
		return PartialSum{}, fmt.Errorf("sql: malformed partial sum %q", s)
	}
	var p PartialSum
	var err error
	if p.Count, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return PartialSum{}, fmt.Errorf("sql: partial sum count: %w", err)
	}
	if p.SumInt, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return PartialSum{}, fmt.Errorf("sql: partial sum int: %w", err)
	}
	if p.IntOnly, err = strconv.ParseBool(parts[2]); err != nil {
		return PartialSum{}, fmt.Errorf("sql: partial sum intOnly: %w", err)
	}
	if p.HasBad, err = strconv.ParseBool(parts[3]); err != nil {
		return PartialSum{}, fmt.Errorf("sql: partial sum hasBad: %w", err)
	}
	bits, err := strconv.ParseUint(parts[4], 16, 64)
	if err != nil {
		return PartialSum{}, fmt.Errorf("sql: partial sum bad bits: %w", err)
	}
	p.SumBad = math.Float64frombits(bits)
	if parts[5] != "" {
		f, _, err := big.ParseFloat(parts[5], 0, sumPrec, big.ToNearestEven)
		if err != nil {
			return PartialSum{}, fmt.Errorf("sql: partial sum value: %w", err)
		}
		p.Sum = f
	}
	return p, nil
}

// Merge folds a later shard's state into p, mirroring the executor's
// mergeState: exact sums add (order-independent at sumPrec), the
// integer fast path survives only if every shard kept it.
func (p *PartialSum) Merge(o PartialSum) {
	p.Count += o.Count
	if o.Sum != nil {
		if p.Sum == nil {
			p.Sum = o.Sum
		} else {
			p.Sum.Add(p.Sum, o.Sum)
		}
	}
	if o.HasBad {
		p.SumBad += o.SumBad
		p.HasBad = true
	}
	p.SumInt += o.SumInt
	// A shard that accumulated nothing reports the zero-value state
	// (IntOnly false); it must not poison the integer fast path.
	if o.Count > 0 {
		p.IntOnly = p.IntOnly && o.IntOnly
	}
}

// float rounds the exact accumulator to float64, mirroring
// aggState.sumFloat.
func (p PartialSum) float() float64 {
	var f float64
	if p.Sum != nil {
		f, _ = p.Sum.Float64()
	}
	if p.HasBad {
		f += p.SumBad
	}
	return f
}

// FinalizeSum produces the value SUM would have returned on a single
// engine seeing all rows.
func (p PartialSum) FinalizeSum() storage.Value {
	if p.Count == 0 {
		return storage.Null()
	}
	if p.IntOnly {
		return storage.NewInt(p.SumInt)
	}
	return storage.NewFloat(p.float())
}

// FinalizeAvg produces the value AVG would have returned on a single
// engine seeing all rows.
func (p PartialSum) FinalizeAvg() storage.Value {
	if p.Count == 0 {
		return storage.Null()
	}
	return storage.NewFloat(p.float() / float64(p.Count))
}
