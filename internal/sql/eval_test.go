package sql

import (
	"strings"
	"testing"

	"jackpine/internal/storage"
)

// evalStr parses and evaluates a standalone expression against an empty
// row.
func evalStr(t *testing.T, expr string) (storage.Value, error) {
	t.Helper()
	stmt, err := Parse("SELECT " + expr + " FROM t")
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	e := stmt.(*Select).Exprs[0].Expr
	reg := NewRegistry(RegistryOptions{})
	if err := Bind(e, NewScope(), reg, false); err != nil {
		return storage.Null(), err
	}
	return Eval(e, nil, reg)
}

func TestEvalArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{"1 + 2 * 3", "7"},
		{"(1 + 2) * 3", "9"},
		{"7 / 2", "3"},     // integer division
		{"7.0 / 2", "3.5"}, // float division
		{"7 % 3", "1"},
		{"-5 + 2", "-3"},
		{"2 * 3.5", "7"},
		{"'a' || 'b' || 1", "ab1"},
		{"ABS(-4)", "4"},
		{"COALESCE(NULL, NULL, 9)", "9"},
		{"NULL + 1", "NULL"},
		{"1 = 1.0", "true"},
		{"1 < 2 AND 3 > 2", "true"},
		{"1 > 2 OR 2 > 1", "true"},
		{"NOT FALSE", "true"},
		{"NOT NULL", "NULL"},
		{"NULL AND FALSE", "false"}, // false short-circuits
		{"NULL OR TRUE", "true"},    // true short-circuits
		{"NULL AND TRUE", "NULL"},
		{"5 BETWEEN 1 AND 9", "true"},
		{"0 BETWEEN 1 AND 9", "false"},
		{"NULL BETWEEN 1 AND 2", "NULL"},
		{"NULL IS NULL", "true"},
		{"1 IS NOT NULL", "true"},
		{"'oak st' LIKE '%st'", "true"},
	}
	for _, tc := range cases {
		v, err := evalStr(t, tc.expr)
		if err != nil {
			t.Errorf("%s: %v", tc.expr, err)
			continue
		}
		if v.String() != tc.want {
			t.Errorf("%s = %s, want %s", tc.expr, v, tc.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []struct {
		expr   string
		reason string
	}{
		{"1 / 0", "division by zero"},
		{"1 % 0", "division by zero"},
		{"1.5 % 2", "integer"},
		{"'a' + 1", "arithmetic"},
		{"'a' < ST_MakePoint(1, 2)", "compare"},
		{"ST_NoSuchFunction(1)", "not supported"},
		{"ST_Area(1)", "GEOMETRY"},
		{"ST_Buffer(ST_MakePoint(0,0))", "argument"},
		{"ABS('x')", "ABS"},
		{"1 LIKE 2", "text"},
		{"ST_Relate(ST_MakePoint(0,0), ST_MakePoint(1,1), 'BAD')", "pattern"},
	}
	for _, tc := range cases {
		_, err := evalStr(t, tc.expr)
		if err == nil {
			t.Errorf("%s: expected error about %q", tc.expr, tc.reason)
			continue
		}
		if !strings.Contains(err.Error(), tc.reason) {
			t.Errorf("%s: error %q does not mention %q", tc.expr, err, tc.reason)
		}
	}
}

func TestEvalSpatialExpressions(t *testing.T) {
	cases := []struct {
		expr string
		want string
	}{
		{"ST_AsText(ST_MakePoint(1, 2))", "POINT (1 2)"},
		{"ST_Area(ST_MakeEnvelope(0, 0, 4, 3))", "12"},
		{"ST_Intersects(ST_MakePoint(1, 1), ST_MakeEnvelope(0, 0, 2, 2))", "true"},
		{"ST_Distance(ST_MakePoint(0, 0), ST_MakePoint(3, 4))", "5"},
		{"ST_GeometryType(ST_GeomFromText('LINESTRING (0 0, 1 1)'))", "LINESTRING"},
		{"ST_IsValid(ST_GeomFromText('POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))'))", "true"},
		{"ST_NumPoints(ST_GeomFromText('LINESTRING (0 0, 1 1, 2 2)'))", "3"},
		{"ST_Dimension(ST_MakePoint(0, 0))", "0"},
		{"ST_X(ST_Centroid(ST_MakeEnvelope(0, 0, 4, 4)))", "2"},
		{"ST_Area(ST_Intersection(ST_MakeEnvelope(0,0,2,2), ST_MakeEnvelope(1,1,3,3)))", "1"},
	}
	for _, tc := range cases {
		v, err := evalStr(t, tc.expr)
		if err != nil {
			t.Errorf("%s: %v", tc.expr, err)
			continue
		}
		if v.String() != tc.want {
			t.Errorf("%s = %s, want %s", tc.expr, v, tc.want)
		}
	}
}

func TestEvalNullPropagationThroughSpatialFunctions(t *testing.T) {
	exprs := []string{
		"ST_Area(NULL)",
		"ST_Intersects(NULL, ST_MakePoint(0, 0))",
		"ST_Buffer(NULL, 5)",
		"ST_Distance(ST_MakePoint(0,0), NULL)",
		"ST_AsText(NULL)",
	}
	for _, expr := range exprs {
		v, err := evalStr(t, expr)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		if !v.IsNull() {
			t.Errorf("%s = %s, want NULL", expr, v)
		}
	}
}
