package topo

import (
	"testing"

	"jackpine/internal/geom"
)

func g(wkt string) geom.Geometry { return geom.MustParseWKT(wkt) }

func TestRelateMatrices(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want string
	}{
		// --- point / point ---
		{"equal points", "POINT (1 1)", "POINT (1 1)", "0FFFFFFF2"},
		{"distinct points", "POINT (1 1)", "POINT (2 2)", "FF0FFF0F2"},
		{"point in multipoint", "POINT (1 1)", "MULTIPOINT ((1 1), (2 2))", "0FFFFF0F2"},

		// --- point / line ---
		{"point on line interior", "POINT (1 0)", "LINESTRING (0 0, 2 0)", "0FFFFF102"},
		{"point on line endpoint", "POINT (0 0)", "LINESTRING (0 0, 2 0)", "F0FFFF102"},
		{"point off line", "POINT (5 5)", "LINESTRING (0 0, 2 0)", "FF0FFF102"},

		// --- point / polygon ---
		{"point in polygon", "POINT (2 2)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "0FFFFF212"},
		{"point on polygon boundary", "POINT (4 2)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "F0FFFF212"},
		{"point outside polygon", "POINT (9 9)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "FF0FFF212"},
		{"point in polygon hole",
			"POINT (5 5)",
			"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))",
			"FF0FFF212"},

		// --- line / line ---
		{"crossing lines", "LINESTRING (0 0, 2 2)", "LINESTRING (0 2, 2 0)", "0F1FF0102"},
		{"identical lines", "LINESTRING (0 0, 2 2)", "LINESTRING (0 0, 2 2)", "1FFF0FFF2"},
		{"reversed identical lines", "LINESTRING (0 0, 2 2)", "LINESTRING (2 2, 0 0)", "1FFF0FFF2"},
		{"disjoint lines", "LINESTRING (0 0, 1 1)", "LINESTRING (5 5, 6 6)", "FF1FF0102"},
		{"endpoint-to-endpoint touch", "LINESTRING (0 0, 1 1)", "LINESTRING (1 1, 2 0)", "FF1F00102"},
		{"T touch: endpoint on interior", "LINESTRING (0 0, 2 0)", "LINESTRING (1 0, 1 5)", "F01FF0102"},
		{"partial overlap", "LINESTRING (0 0, 2 0)", "LINESTRING (1 0, 3 0)", "1010F0102"},
		{"line within line", "LINESTRING (1 0, 2 0)", "LINESTRING (0 0, 3 0)", "1FF0FF102"},

		// --- line / polygon ---
		{"line crosses polygon",
			"LINESTRING (-1 2, 5 2)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"101FF0212"},
		{"line within polygon",
			"LINESTRING (1 1, 3 3)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"1FF0FF212"},
		{"line outside polygon",
			"LINESTRING (5 5, 7 7)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"FF1FF0212"},
		{"line along polygon edge",
			"LINESTRING (1 0, 3 0)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"F1FF0F212"},
		{"line touches polygon at point",
			"LINESTRING (4 2, 8 2)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"FF1F00212"},
		{"line enters and exits through same edge",
			"LINESTRING (1 -1, 2 1, 3 -1)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"101FF0212"},
		{"line ends on boundary from inside",
			"LINESTRING (2 2, 4 2)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"1FF00F212"},

		// --- polygon / polygon ---
		{"equal polygons",
			"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"2FFF1FFF2"},
		{"equal polygons different start vertex",
			"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "POLYGON ((4 4, 0 4, 0 0, 4 0, 4 4))",
			"2FFF1FFF2"},
		{"disjoint polygons",
			"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))", "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))",
			"FF2FF1212"},
		{"overlapping polygons",
			"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))",
			"212101212"},
		{"polygon strictly within",
			"POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
			"2FF1FF212"},
		{"polygon contains strictly",
			"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))",
			"212FF1FF2"},
		{"edge-adjacent polygons",
			"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))",
			"FF2F11212"},
		{"corner-touching polygons",
			"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))",
			"FF2F01212"},
		{"within sharing an edge",
			"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "POLYGON ((0 0, 4 0, 4 2, 0 2, 0 0))",
			"2FF11F212"},
		{"polygon fills other's hole exactly",
			"POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))",
			"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))",
			"FF2F1F212"},
		{"polygon inside other's hole with gap",
			"POLYGON ((4.5 4.5, 5.5 4.5, 5.5 5.5, 4.5 5.5, 4.5 4.5))",
			"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))",
			"FF2FF1212"},
		{"donut contains small square (not in hole)",
			"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))",
			"POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))",
			"212FF1FF2"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Relate(g(tc.a), g(tc.b)).String()
			if got != tc.want {
				t.Errorf("Relate(%s, %s) = %s, want %s", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestRelateEmptyOperands(t *testing.T) {
	poly := g("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	m := Relate(g("POLYGON EMPTY"), poly)
	// Empty vs polygon: only the exterior row is populated.
	if m.Get(Interior, Interior) != DimF || m.Get(Exterior, Interior) != 2 ||
		m.Get(Exterior, Boundary) != 1 || m.Get(Exterior, Exterior) != 2 {
		t.Errorf("empty vs polygon matrix = %s", m)
	}
	m = Relate(poly, g("POINT EMPTY"))
	if m.Get(Interior, Exterior) != 2 || m.Get(Boundary, Exterior) != 1 ||
		m.Get(Interior, Interior) != DimF {
		t.Errorf("polygon vs empty matrix = %s", m)
	}
}

func TestRelateTransposeSymmetry(t *testing.T) {
	pairs := [][2]string{
		{"POINT (2 2)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"},
		{"LINESTRING (-1 2, 5 2)", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"},
		{"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))"},
		{"LINESTRING (0 0, 2 0)", "LINESTRING (1 0, 3 0)"},
		{"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))"},
	}
	for _, pair := range pairs {
		a, b := g(pair[0]), g(pair[1])
		ab := Relate(a, b)
		ba := Relate(b, a)
		if ab.Transpose() != ba {
			t.Errorf("Relate(%s,%s)=%s is not the transpose of %s", pair[0], pair[1], ab, ba)
		}
	}
}

func TestMatrixPatternMatching(t *testing.T) {
	m := Relate(g("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"), g("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))"))
	if !m.Matches("T*T***T**") {
		t.Error("overlap pattern should match")
	}
	if !m.Matches("212101212") {
		t.Error("exact pattern should match")
	}
	if m.Matches("FF*FF****") {
		t.Error("disjoint pattern must not match")
	}
	if !m.Matches("*********") {
		t.Error("wildcard pattern should match anything")
	}
}

func TestMatrixPatternPanics(t *testing.T) {
	var m Matrix // all cells 0, so 'T' matches and the bad character is reached
	for _, bad := range []string{"", "TTTT", "TTTTTTTTX"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Matches(%q) should panic", bad)
				}
			}()
			m.Matches(bad)
		}()
	}
}

func TestValidPattern(t *testing.T) {
	if !ValidPattern("T*F**FFF*") || !ValidPattern("012TFtf**") {
		t.Error("valid patterns rejected")
	}
	if ValidPattern("T*F**FFF") || ValidPattern("T*F**FFFX") {
		t.Error("invalid patterns accepted")
	}
}
