// Package topo implements the Dimensionally Extended 9-Intersection Model
// (DE-9IM) of topological relations between planar geometries, the named
// predicates derived from it (Equals, Disjoint, Intersects, Touches,
// Crosses, Within, Contains, Overlaps, Covers, CoveredBy), and an
// MBR-only approximate evaluator that reproduces the semantics of systems
// (such as MySQL 5.x) whose spatial predicates operate on minimum
// bounding rectangles rather than exact geometry.
package topo

import "fmt"

// Location identifies one of the three point sets of a geometry.
type Location int

// The three topological point sets.
const (
	Interior Location = 0
	Boundary Location = 1
	Exterior Location = 2
)

// DimF marks an empty intersection in a DE-9IM matrix cell.
const DimF int8 = -1

// Matrix is a DE-9IM intersection matrix. Cell (r, c) holds the dimension
// (-1 = F, 0, 1, 2) of the intersection between point set r of geometry A
// and point set c of geometry B, with rows and columns ordered Interior,
// Boundary, Exterior.
type Matrix [9]int8

// NewMatrix returns a matrix with every cell set to F.
func NewMatrix() Matrix {
	var m Matrix
	for i := range m {
		m[i] = DimF
	}
	return m
}

// Get returns the dimension stored for (row, col).
func (m *Matrix) Get(row, col Location) int8 { return m[int(row)*3+int(col)] }

// Set stores dim for (row, col).
func (m *Matrix) Set(row, col Location, dim int8) { m[int(row)*3+int(col)] = dim }

// Upgrade raises (row, col) to dim if dim is larger than the current value.
func (m *Matrix) Upgrade(row, col Location, dim int8) {
	if dim > m[int(row)*3+int(col)] {
		m[int(row)*3+int(col)] = dim
	}
}

// Transpose returns the matrix of the reversed relation (B relate A).
func (m Matrix) Transpose() Matrix {
	var out Matrix
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			out[c*3+r] = m[r*3+c]
		}
	}
	return out
}

// String renders the matrix in the standard nine-character form, e.g.
// "212101212", using 'F' for empty cells.
func (m Matrix) String() string {
	var b [9]byte
	for i, d := range m {
		switch d {
		case DimF:
			b[i] = 'F'
		default:
			b[i] = byte('0' + d)
		}
	}
	return string(b[:])
}

// Matches reports whether the matrix satisfies the nine-character DE-9IM
// pattern. Pattern characters: 'T' any non-empty intersection, 'F' empty,
// '*' anything, '0'/'1'/'2' the exact dimension. Matches panics on
// malformed patterns; use ValidPattern to check user input first.
func (m Matrix) Matches(pattern string) bool {
	if len(pattern) != 9 {
		panic(fmt.Sprintf("topo: DE-9IM pattern %q must have 9 characters", pattern))
	}
	for i := 0; i < 9; i++ {
		switch pattern[i] {
		case '*':
		case 'T', 't':
			if m[i] < 0 {
				return false
			}
		case 'F', 'f':
			if m[i] >= 0 {
				return false
			}
		case '0', '1', '2':
			if m[i] != int8(pattern[i]-'0') {
				return false
			}
		default:
			panic(fmt.Sprintf("topo: bad DE-9IM pattern character %q", pattern[i]))
		}
	}
	return true
}

// ValidPattern reports whether s is a well-formed nine-character DE-9IM
// pattern.
func ValidPattern(s string) bool {
	if len(s) != 9 {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '*', 'T', 't', 'F', 'f', '0', '1', '2':
		default:
			return false
		}
	}
	return true
}
