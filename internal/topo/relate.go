package topo

import (
	"jackpine/internal/geom"
	"jackpine/internal/index/rtree"
)

// Relate computes the DE-9IM intersection matrix of two geometries.
//
// The algorithm decomposes both geometries into point, segment and
// polygon parts, gathers all pairwise segment intersections, classifies
// the resulting event points and split sub-segments against both
// geometries, and then derives the areal (dimension 2) cells from
// neighbourhood arguments: a boundary piece of an areal geometry lying in
// the interior (or exterior) of the other implies a two-dimensional
// overlap of the adjacent region.
func Relate(a, b geom.Geometry) Matrix {
	sa, sb := decompose(a), decompose(b)
	return relateShapes(sa, sb)
}

func relateShapes(sa, sb *shape) Matrix {
	m := NewMatrix()
	m.Set(Exterior, Exterior, 2)

	if !sa.nonEmpty || !sb.nonEmpty {
		// Empty operands: only exterior rows/columns can be non-empty.
		if sa.nonEmpty {
			m.Set(Interior, Exterior, int8(sa.dim))
			m.Set(Boundary, Exterior, sa.boundaryDim())
		}
		if sb.nonEmpty {
			m.Set(Exterior, Interior, int8(sb.dim))
			m.Set(Exterior, Boundary, sb.boundaryDim())
		}
		return m
	}

	if !sa.env.Intersects(sb.env) {
		return disjointMatrix(sa, sb)
	}

	// Large shapes get static segment/location indexes; the indexed
	// paths enumerate exactly the candidate sets the brute-force loops
	// filter to, so the matrix is identical either way.
	sa.maybeIndex()
	sb.maybeIndex()

	// --- 0D contributions: event points -------------------------------
	for _, p := range gatherEventPoints(sa, sb) {
		m.Upgrade(sa.locate(p), sb.locate(p), 0)
	}

	// --- 1D contributions: classified sub-segments --------------------
	classifySubSegments(&m, sa, sb, false)
	classifySubSegments(&m, sa, sb, true)

	// --- 2D contributions ---------------------------------------------
	if sa.hasArea() {
		if !sb.hasArea() {
			// Removing a 0/1-dimensional set from a non-empty open 2D
			// interior leaves a 2D set.
			m.Upgrade(Interior, Exterior, 2)
		}
		for i := range sa.polys {
			if ip, ok := geom.InteriorPoint(sa.polys[i]); ok {
				switch sb.locate(ip) {
				case Interior:
					if sb.hasArea() {
						m.Upgrade(Interior, Interior, 2)
					}
				case Exterior:
					m.Upgrade(Interior, Exterior, 2)
				case Boundary:
					// A 2D neighbourhood inside A straddles B's boundary.
					if sb.hasArea() {
						m.Upgrade(Interior, Interior, 2)
						m.Upgrade(Interior, Exterior, 2)
						// The neighbourhood meets B's 1D ring in a curve.
						m.Upgrade(Interior, Boundary, 1)
					} else {
						m.Upgrade(Interior, Boundary, 0)
					}
				}
			}
		}
	}
	if sb.hasArea() {
		if !sa.hasArea() {
			m.Upgrade(Exterior, Interior, 2)
		}
		for i := range sb.polys {
			if ip, ok := geom.InteriorPoint(sb.polys[i]); ok {
				switch sa.locate(ip) {
				case Interior:
					if sa.hasArea() {
						m.Upgrade(Interior, Interior, 2)
					}
				case Exterior:
					m.Upgrade(Exterior, Interior, 2)
				case Boundary:
					if sa.hasArea() {
						m.Upgrade(Interior, Interior, 2)
						m.Upgrade(Exterior, Interior, 2)
						m.Upgrade(Boundary, Interior, 1)
					} else {
						m.Upgrade(Boundary, Interior, 0)
					}
				}
			}
		}
	}

	return m
}

// disjointMatrix builds the matrix for geometries with disjoint envelopes.
func disjointMatrix(sa, sb *shape) Matrix {
	m := NewMatrix()
	m.Set(Interior, Exterior, int8(sa.dim))
	m.Set(Boundary, Exterior, sa.boundaryDim())
	m.Set(Exterior, Interior, int8(sb.dim))
	m.Set(Exterior, Boundary, sb.boundaryDim())
	m.Set(Exterior, Exterior, 2)
	return m
}

// gatherEventPoints collects every point where the classification of one
// geometry against the other can change: all pairwise segment
// intersections, the 1D boundary points of both, and the 0D parts of both.
// The list is deduplicated: many segments meeting at one point (shared
// corners, stars) would otherwise trigger repeated locate calls, and the
// matrix is unaffected because Upgrade is a max.
func gatherEventPoints(sa, sb *shape) []geom.Coord {
	var events []geom.Coord
	segPairs(sa, sb, func(ga, gb *seg) {
		kind, p0, p1 := geom.SegSegIntersection(ga.a, ga.b, gb.a, gb.b)
		switch kind {
		case geom.SegPoint:
			events = append(events, p0)
		case geom.SegOverlap:
			events = append(events, p0, p1)
		}
	})
	for p := range sa.lineBoundary {
		events = append(events, p)
	}
	for p := range sb.lineBoundary {
		events = append(events, p)
	}
	events = append(events, sa.points...)
	events = append(events, sb.points...)
	return dedupeCoords(events)
}

// dedupeCoords removes duplicate coordinates in place, keeping first
// occurrences.
func dedupeCoords(pts []geom.Coord) []geom.Coord {
	if len(pts) < 2 {
		return pts
	}
	seen := make(map[geom.Coord]struct{}, len(pts))
	kept := pts[:0]
	for _, p := range pts {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		kept = append(kept, p)
	}
	return kept
}

// classifySubSegments splits the segments of one shape at all crossings
// with the other shape's segments and classifies each piece's midpoint.
// When swap is false it processes A's segments (matrix rows); when true,
// B's segments (matrix columns).
func classifySubSegments(m *Matrix, sa, sb *shape, swap bool) {
	src, other := sa, sb
	if swap {
		src, other = sb, sa
	}
	cuts := make([]float64, 0, 8)
	for i := range src.segs {
		sg := &src.segs[i]
		cuts = cuts[:0]
		if sg.env.Intersects(other.env) {
			addCut := func(og *seg) {
				kind, p0, p1 := geom.SegSegIntersection(sg.a, sg.b, og.a, og.b)
				switch kind {
				case geom.SegPoint:
					cuts = append(cuts, segParam(sg, p0))
				case geom.SegOverlap:
					cuts = append(cuts, segParam(sg, p0), segParam(sg, p1))
				}
			}
			if tree := other.segTree; tree != nil {
				tree.Search(sg.env, func(e rtree.Entry) bool {
					addCut(&other.segs[e.ID])
					return true
				})
			} else {
				for j := range other.segs {
					og := &other.segs[j]
					if !sg.env.Intersects(og.env) {
						continue
					}
					addCut(og)
				}
			}
			// The other shape's isolated points also change the
			// classification at a single parameter value.
			for _, p := range other.points {
				if sg.env.ContainsCoord(p) && geom.OnSegment(p, sg.a, sg.b) {
					cuts = append(cuts, segParam(sg, p))
				}
			}
		}
		cuts = append(cuts, 0, 1)
		sortCuts(cuts)

		rowLoc := Interior
		if sg.ring {
			rowLoc = Boundary
		}
		for k := 0; k+1 < len(cuts); k++ {
			t0, t1 := cuts[k], cuts[k+1]
			if t1-t0 < 1e-12 {
				continue
			}
			tm := (t0 + t1) / 2
			mid := geom.Coord{
				X: sg.a.X + tm*(sg.b.X-sg.a.X),
				Y: sg.a.Y + tm*(sg.b.Y-sg.a.Y),
			}
			loc := other.locate(mid)
			if swap {
				m.Upgrade(loc, rowLoc, 1)
			} else {
				m.Upgrade(rowLoc, loc, 1)
			}
			if sg.ring {
				// Neighbourhood deduction: the areal interior adjacent to
				// this boundary piece lies in the same region of the
				// other geometry, as does the adjacent exterior.
				deduceArealCells(m, other, loc, swap)
			}
		}
	}
}

// deduceArealCells upgrades 2D cells implied by a ring sub-segment of an
// areal geometry classified at loc in the other geometry.
func deduceArealCells(m *Matrix, other *shape, loc Location, swap bool) {
	up := func(row, col Location, dim int8) {
		if swap {
			m.Upgrade(col, row, dim)
		} else {
			m.Upgrade(row, col, dim)
		}
	}
	switch loc {
	case Exterior:
		// Both sides of the boundary piece (the areal interior and the
		// areal exterior) lie in the other geometry's exterior.
		up(Interior, Exterior, 2)
	case Interior:
		if other.hasArea() {
			// The other geometry is areal, so its interior is open: both
			// sides of this boundary piece are inside it.
			up(Interior, Interior, 2)
			up(Exterior, Interior, 2)
		}
	case Boundary:
		// Coincident boundaries: no side information.
	}
}

// segParam returns the parameter of p along segment sg (0 at a, 1 at b).
func segParam(sg *seg, p geom.Coord) float64 {
	dx, dy := sg.b.X-sg.a.X, sg.b.Y-sg.a.Y
	if absf(dx) >= absf(dy) {
		if geom.ExactEq(dx, 0) {
			return 0
		}
		return (p.X - sg.a.X) / dx
	}
	return (p.Y - sg.a.Y) / dy
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func sortCuts(cuts []float64) {
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
}
