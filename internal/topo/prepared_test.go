package topo

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"jackpine/internal/geom"
)

// relateNaive evaluates the kernel with indexing suppressed (the Once
// is burned before relateShapes can build), i.e. the brute-force
// all-pairs and linear point-location paths.
func relateNaive(a, b geom.Geometry) Matrix {
	sa, sb := decompose(a), decompose(b)
	sa.indexOnce.Do(func() {})
	sb.indexOnce.Do(func() {})
	return relateShapes(sa, sb)
}

// relateForced evaluates the kernel with indexing forced regardless of
// the indexMinSegs threshold, so small corpus geometries exercise the
// indexed paths too.
func relateForced(a, b geom.Geometry) Matrix {
	sa, sb := decompose(a), decompose(b)
	sa.indexOnce.Do(sa.buildIndex)
	sb.indexOnce.Do(sb.buildIndex)
	return relateShapes(sa, sb)
}

// corpusPairs loads the committed FuzzDE9IM seed corpus (go fuzz v1
// format: two quoted strings per file).
func corpusPairs(t *testing.T) [][2]string {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzDE9IM")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read corpus dir: %v", err)
	}
	var pairs [][2]string
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read corpus file: %v", err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 3 || lines[0] != "go test fuzz v1" {
			t.Fatalf("unexpected corpus format in %s", e.Name())
		}
		var pair [2]string
		for i, ln := range lines[1:] {
			ln = strings.TrimPrefix(ln, "string(")
			ln = strings.TrimSuffix(ln, ")")
			s, err := strconv.Unquote(ln)
			if err != nil {
				t.Fatalf("unquote corpus line in %s: %v", e.Name(), err)
			}
			pair[i] = s
		}
		pairs = append(pairs, pair)
	}
	if len(pairs) == 0 {
		t.Fatal("empty corpus")
	}
	return pairs
}

// ngon builds a closed regular n-gon ring around (cx, cy).
func ngon(n int, cx, cy, r float64) geom.Ring {
	ring := make(geom.Ring, 0, n+1)
	for i := 0; i < n; i++ {
		th := 2 * math.Pi * float64(i) / float64(n)
		ring = append(ring, geom.Coord{X: cx + r*math.Cos(th), Y: cy + r*math.Sin(th)})
	}
	return append(ring, ring[0])
}

// zigzag builds an n-vertex zigzag linestring starting at (x0, y0).
func zigzag(n int, x0, y0 float64) geom.LineString {
	ls := make(geom.LineString, 0, n)
	for i := 0; i < n; i++ {
		y := y0
		if i%2 == 1 {
			y += 7
		}
		ls = append(ls, geom.Coord{X: x0 + float64(i), Y: y})
	}
	return ls
}

// largePairs are geometry pairs big enough to cross the indexMinSegs
// threshold on at least one side, covering polygon/polygon,
// polygon-with-hole, line/polygon, shared-boundary and disjoint cases
// on TIGER-scale coordinates.
func largePairs() [][2]geom.Geometry {
	big := geom.Polygon{ngon(256, -77.0, 38.9, 0.5)}
	shifted := geom.Polygon{ngon(300, -76.7, 38.9, 0.5)}
	inner := geom.Polygon{ngon(64, -77.0, 38.9, 0.1)}
	holed := geom.Polygon{ngon(256, -77.0, 38.9, 0.5), ngon(128, -77.0, 38.9, 0.2)}
	far := geom.Polygon{ngon(256, 10, 10, 0.5)}
	line := zigzag(400, -77.5, 38.9)
	shared := geom.Polygon{geom.Ring{
		{X: -77.5, Y: 38.4}, {X: -77.0, Y: 38.4}, {X: -77.0, Y: 39.4},
		{X: -77.5, Y: 39.4}, {X: -77.5, Y: 38.4},
	}}
	return [][2]geom.Geometry{
		{big, shifted},
		{big, inner},
		{inner, big},
		{holed, inner},
		{holed, geom.Point{Coord: geom.Coord{X: -77.0, Y: 38.9}}},
		{big, far},
		{big, line},
		{line, holed},
		{big, shared},
		{big, big},
		{holed, holed},
		{line, zigzag(350, -77.4, 38.95)},
	}
}

// TestIndexedEquivalence pins that the indexed kernel paths produce
// byte-identical DE-9IM matrices to the brute-force paths, over the
// committed fuzz corpus (indexing forced) and over large synthetic
// geometries (indexing hit naturally and forced).
func TestIndexedEquivalence(t *testing.T) {
	for _, pair := range corpusPairs(t) {
		a, err := geom.ParseWKT(pair[0])
		if err != nil {
			t.Fatalf("corpus WKT: %v", err)
		}
		b, err := geom.ParseWKT(pair[1])
		if err != nil {
			t.Fatalf("corpus WKT: %v", err)
		}
		naive, forced := relateNaive(a, b), relateForced(a, b)
		if naive != forced {
			t.Errorf("indexed relate diverges on corpus pair %q / %q: %s vs %s",
				pair[0], pair[1], naive, forced)
		}
		if got := Relate(a, b); got != naive {
			t.Errorf("Relate diverges from naive on %q / %q: %s vs %s",
				pair[0], pair[1], got, naive)
		}
	}
	for i, pair := range largePairs() {
		naive, forced := relateNaive(pair[0], pair[1]), relateForced(pair[0], pair[1])
		if naive != forced {
			t.Errorf("indexed relate diverges on large pair %d: %s vs %s", i, naive, forced)
		}
		if got := Relate(pair[0], pair[1]); got != naive {
			t.Errorf("Relate diverges from naive on large pair %d: %s vs %s", i, got, naive)
		}
	}
}

// TestPreparedEquivalence pins that every Prepared method agrees with
// its package-level counterpart, in both operand orders.
func TestPreparedEquivalence(t *testing.T) {
	check := func(t *testing.T, a, b geom.Geometry) {
		t.Helper()
		pa := Prepare(a)
		if got, want := pa.Relate(b), Relate(a, b); got != want {
			t.Errorf("Prepared.Relate = %s, want %s", got, want)
		}
		if got, want := pa.RelateReversed(b), Relate(b, a); got != want {
			t.Errorf("Prepared.RelateReversed = %s, want %s", got, want)
		}
		pat := "T********"
		if got, want := pa.RelatePattern(b, pat), RelatePattern(a, b, pat); got != want {
			t.Errorf("Prepared.RelatePattern = %v, want %v", got, want)
		}
		if got, want := pa.RelatePatternReversed(b, pat), RelatePattern(b, a, pat); got != want {
			t.Errorf("Prepared.RelatePatternReversed = %v, want %v", got, want)
		}
		for pred := PredEquals; pred <= PredCoveredBy; pred++ {
			if got, want := pa.Eval(pred, b), pred.Eval(a, b); got != want {
				t.Errorf("Prepared.Eval(%s) = %v, want %v", pred, got, want)
			}
			if got, want := pa.EvalReversed(pred, b), pred.Eval(b, a); got != want {
				t.Errorf("Prepared.EvalReversed(%s) = %v, want %v", pred, got, want)
			}
		}
	}
	for _, pair := range corpusPairs(t) {
		a, errA := geom.ParseWKT(pair[0])
		b, errB := geom.ParseWKT(pair[1])
		if errA != nil || errB != nil {
			t.Fatalf("corpus WKT: %v / %v", errA, errB)
		}
		check(t, a, b)
	}
	for _, pair := range largePairs() {
		check(t, pair[0], pair[1])
	}
	// Named methods route through the same dispatcher; spot-check one
	// asymmetric and one symmetric predicate.
	a := geom.Polygon{ngon(256, 0, 0, 10)}
	b := geom.Polygon{ngon(32, 1, 0, 2)}
	pa := Prepare(a)
	if pa.Contains(b) != Contains(a, b) || pa.Within(b) != Within(a, b) ||
		pa.Intersects(b) != Intersects(a, b) {
		t.Error("named Prepared methods diverge from package-level predicates")
	}
	// Degenerate operands must behave exactly like the unprepared path.
	for _, g := range []geom.Geometry{nil, geom.Point{Empty: true}} {
		pg := Prepare(g)
		if pg.Intersects(b) || pg.Eval(PredContains, b) {
			t.Error("prepared nil/empty geometry should hit no predicate")
		}
		if !pg.Disjoint(b) {
			t.Error("prepared nil/empty geometry should be disjoint from everything")
		}
		if got, want := pg.Relate(b), Relate(g, b); got != want {
			t.Errorf("prepared empty Relate = %s, want %s", got, want)
		}
	}
}

// TestGatherEventPointsDedupe pins the dedupe satellite: coincident
// event points collapse to one locate call each, and the matrix is
// unchanged. The star polygonal chain meets the box corner repeatedly,
// so the raw event list contains the corner many times.
func TestGatherEventPointsDedupe(t *testing.T) {
	star, err := geom.ParseWKT("LINESTRING (0 0, 4 4, 0 4, 4 0, 0 2, 4 2)")
	if err != nil {
		t.Fatal(err)
	}
	box, err := geom.ParseWKT("POLYGON ((2 0, 6 0, 6 6, 2 6, 2 0))")
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := decompose(star), decompose(box)
	events := gatherEventPoints(sa, sb)
	seen := make(map[geom.Coord]struct{}, len(events))
	for _, p := range events {
		if _, dup := seen[p]; dup {
			t.Fatalf("duplicate event point %v", p)
		}
		seen[p] = struct{}{}
	}
	// The matrix must match the hand-derived classification: the chain
	// crosses the box boundary and runs through interior and exterior.
	if got, want := Relate(star, box).String(), "1010F0212"; got != want {
		t.Errorf("Relate(star, box) = %s, want %s", got, want)
	}
}
