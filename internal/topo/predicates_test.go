package topo

import (
	"testing"

	"jackpine/internal/geom"
)

// Fixture geometries reused across predicate tests.
var (
	sqA      = "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))" // base square
	sqB      = "POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))" // overlaps sqA
	sqInner  = "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))" // inside sqA
	sqRight  = "POLYGON ((4 0, 8 0, 8 4, 4 4, 4 0))" // edge-adjacent to sqA
	sqFar    = "POLYGON ((10 10, 11 10, 11 11, 10 11, 10 10))"
	lineX    = "LINESTRING (-1 2, 5 2)" // crosses sqA
	lineIn   = "LINESTRING (1 1, 3 3)"  // inside sqA
	lineEdge = "LINESTRING (1 0, 3 0)"  // along sqA's bottom edge
	ptIn     = "POINT (2 2)"
	ptEdge   = "POINT (4 2)"
	ptOut    = "POINT (9 9)"
)

func TestNamedPredicates(t *testing.T) {
	tests := []struct {
		pred Predicate
		a, b string
		want bool
	}{
		{PredEquals, sqA, sqA, true},
		{PredEquals, sqA, "POLYGON ((4 4, 0 4, 0 0, 4 0, 4 4))", true},
		{PredEquals, sqA, sqB, false},
		{PredEquals, "LINESTRING (0 0, 2 2)", "LINESTRING (2 2, 0 0)", true},
		{PredEquals, "LINESTRING (0 0, 2 2)", "LINESTRING (0 0, 1 1, 2 2)", true},

		{PredDisjoint, sqA, sqFar, true},
		{PredDisjoint, sqA, sqB, false},
		{PredDisjoint, ptOut, sqA, true},

		{PredIntersects, sqA, sqB, true},
		{PredIntersects, sqA, sqRight, true},
		{PredIntersects, ptEdge, sqA, true},
		{PredIntersects, sqA, sqFar, false},
		{PredIntersects, lineX, sqA, true},

		{PredTouches, sqA, sqRight, true},
		{PredTouches, sqA, sqB, false},
		{PredTouches, ptEdge, sqA, true},
		{PredTouches, ptIn, sqA, false},
		{PredTouches, lineEdge, sqA, true},
		{PredTouches, ptIn, ptIn, false}, // two points never touch

		{PredCrosses, lineX, sqA, true},
		{PredCrosses, lineIn, sqA, false},
		{PredCrosses, "LINESTRING (0 0, 2 2)", "LINESTRING (0 2, 2 0)", true},
		{PredCrosses, "LINESTRING (0 0, 2 0)", "LINESTRING (1 0, 3 0)", false}, // overlap, not cross
		{PredCrosses, sqA, lineX, true},                                        // higher-dim against lower

		{PredWithin, sqInner, sqA, true},
		{PredWithin, sqA, sqInner, false},
		{PredWithin, ptIn, sqA, true},
		{PredWithin, ptEdge, sqA, false}, // boundary point is not within
		{PredWithin, lineIn, sqA, true},
		{PredWithin, lineEdge, sqA, false}, // on boundary only

		{PredContains, sqA, sqInner, true},
		{PredContains, sqA, ptIn, true},
		{PredContains, sqA, ptEdge, false},
		{PredContains, sqA, lineEdge, false},

		{PredOverlaps, sqA, sqB, true},
		{PredOverlaps, sqA, sqInner, false},
		{PredOverlaps, sqA, sqRight, false},
		{PredOverlaps, "LINESTRING (0 0, 2 0)", "LINESTRING (1 0, 3 0)", true},
		{PredOverlaps, lineX, sqA, false}, // different dimensions never overlap

		{PredCovers, sqA, ptEdge, true}, // covers includes the boundary
		{PredCovers, sqA, lineEdge, true},
		{PredCovers, sqA, sqInner, true},
		{PredCovers, sqA, sqB, false},
		{PredCoveredBy, ptEdge, sqA, true},
		{PredCoveredBy, sqB, sqA, false},
	}
	for _, tc := range tests {
		name := tc.pred.String() + "(" + tc.a + ", " + tc.b + ")"
		if got := tc.pred.Eval(g(tc.a), g(tc.b)); got != tc.want {
			t.Errorf("%s = %v, want %v", name, got, tc.want)
		}
	}
}

func TestPredicateStrings(t *testing.T) {
	if PredTouches.String() != "Touches" || PredCoveredBy.String() != "CoveredBy" {
		t.Error("predicate names wrong")
	}
	if Predicate(99).String() != "Unknown" {
		t.Error("out-of-range predicate name")
	}
	if Predicate(99).Eval(g(ptIn), g(ptIn)) {
		t.Error("unknown predicate must evaluate false")
	}
}

func TestPredicatesWithEmptyAndNil(t *testing.T) {
	e := geom.Polygon{}
	p := g(sqA)
	if Intersects(e, p) || Intersects(p, e) || Intersects(nil, p) {
		t.Error("empty/nil must not intersect")
	}
	if !Disjoint(e, p) {
		t.Error("empty is disjoint from everything")
	}
	if Within(e, p) || Contains(p, e) || Covers(p, e) || Equals(e, p) {
		t.Error("containment predicates with empty operand must be false")
	}
}

func TestRelatePattern(t *testing.T) {
	if !RelatePattern(g(sqInner), g(sqA), "T*F**F***") {
		t.Error("within pattern should match")
	}
	if RelatePattern(g(sqB), g(sqA), "T*F**F***") {
		t.Error("within pattern must not match overlap")
	}
}

func TestPredicateDuality(t *testing.T) {
	// Within(a,b) == Contains(b,a) and CoveredBy(a,b) == Covers(b,a)
	// across a grid of fixture pairs; Intersects == !Disjoint.
	fixtures := []string{sqA, sqB, sqInner, sqRight, sqFar, lineX, lineIn, lineEdge, ptIn, ptEdge, ptOut}
	for _, aw := range fixtures {
		for _, bw := range fixtures {
			a, b := g(aw), g(bw)
			if Within(a, b) != Contains(b, a) {
				t.Errorf("Within/Contains duality broken for %s vs %s", aw, bw)
			}
			if CoveredBy(a, b) != Covers(b, a) {
				t.Errorf("CoveredBy/Covers duality broken for %s vs %s", aw, bw)
			}
			if Intersects(a, b) != !Disjoint(a, b) {
				t.Errorf("Intersects/Disjoint complement broken for %s vs %s", aw, bw)
			}
			if Intersects(a, b) != Intersects(b, a) {
				t.Errorf("Intersects symmetry broken for %s vs %s", aw, bw)
			}
			if Touches(a, b) != Touches(b, a) {
				t.Errorf("Touches symmetry broken for %s vs %s", aw, bw)
			}
			if Equals(a, b) != Equals(b, a) {
				t.Errorf("Equals symmetry broken for %s vs %s", aw, bw)
			}
			if Within(a, b) && !Intersects(a, b) {
				t.Errorf("Within implies Intersects broken for %s vs %s", aw, bw)
			}
			if Within(a, b) && !CoveredBy(a, b) {
				t.Errorf("Within implies CoveredBy broken for %s vs %s", aw, bw)
			}
			if Overlaps(a, b) != Overlaps(b, a) {
				t.Errorf("Overlaps symmetry broken for %s vs %s", aw, bw)
			}
		}
	}
}

func TestMBREval(t *testing.T) {
	// Diamond inside square: exact says within; MBRs are equal.
	diamond := g("POLYGON ((2 0, 4 2, 2 4, 0 2, 2 0))")
	square := g(sqA)
	if !MBREval(PredEquals, diamond, square) {
		t.Error("MBR equals should hold for same-envelope geometries")
	}
	if Equals(diamond, square) {
		t.Error("exact equals must reject different shapes")
	}

	// Two diamonds whose MBRs overlap but shapes are disjoint.
	d1 := g("POLYGON ((2 0, 4 2, 2 4, 0 2, 2 0))")
	d2 := g("POLYGON ((5 3, 7 5, 5 7, 3 5, 5 3))")
	if !MBREval(PredIntersects, d1, d2) {
		t.Error("MBRs overlap so MBR intersects should be true")
	}
	if Intersects(d1, d2) {
		t.Error("shapes are disjoint so exact intersects should be false")
	}
	if MBREval(PredDisjoint, d1, d2) {
		t.Error("MBR disjoint should be false when MBRs overlap")
	}

	// Containment.
	if !MBREval(PredContains, square, g(sqInner)) || !MBREval(PredWithin, g(sqInner), square) {
		t.Error("MBR containment on nested squares")
	}

	// Touches on MBRs: edge-adjacent squares.
	if !MBREval(PredTouches, g(sqA), g(sqRight)) {
		t.Error("MBR touches for edge-adjacent squares")
	}
	if MBREval(PredTouches, g(sqA), g(sqB)) {
		t.Error("MBR touches must reject interior overlap")
	}

	// Overlaps/Crosses on MBRs.
	if !MBREval(PredOverlaps, g(sqA), g(sqB)) {
		t.Error("MBR overlaps for overlapping squares")
	}
	if MBREval(PredOverlaps, g(sqA), g(sqInner)) {
		t.Error("MBR overlaps must reject containment")
	}

	// Empty operands.
	if MBREval(PredIntersects, geom.Polygon{}, square) || MBREval(PredIntersects, nil, square) {
		t.Error("MBR predicates with empty operand must be false")
	}
	if MBREval(Predicate(99), square, square) {
		t.Error("unknown predicate must be false")
	}
}

func TestMBRSupersetProperty(t *testing.T) {
	// For Intersects, the MBR answer is always a superset of the exact
	// answer: exact true implies MBR true.
	fixtures := []string{sqA, sqB, sqInner, sqRight, sqFar, lineX, lineIn, lineEdge, ptIn, ptEdge, ptOut}
	for _, aw := range fixtures {
		for _, bw := range fixtures {
			a, b := g(aw), g(bw)
			if Intersects(a, b) && !MBREval(PredIntersects, a, b) {
				t.Errorf("exact intersects but MBR does not: %s vs %s", aw, bw)
			}
			if Within(a, b) && !MBREval(PredWithin, a, b) {
				t.Errorf("exact within but MBR does not: %s vs %s", aw, bw)
			}
		}
	}
}
