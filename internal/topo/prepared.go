package topo

import "jackpine/internal/geom"

// operand is one side of a predicate evaluation: the geometry plus the
// values every predicate screen needs (envelope, emptiness) and its
// lazily computed decomposition. The unprepared predicates build two
// throwaway operands per call; Prepare caches one across calls.
type operand struct {
	g     geom.Geometry
	s     *shape
	env   geom.Rect
	empty bool
}

func newOperand(g geom.Geometry) operand {
	if g == nil {
		return operand{empty: true, env: geom.EmptyRect()}
	}
	return operand{g: g, env: g.Envelope(), empty: g.IsEmpty()}
}

func (o *operand) nilOrEmpty() bool { return o.g == nil || o.empty }

// shape returns the decomposition, computing it on first use. Prepared
// operands decompose (and index) at Prepare time, so concurrent readers
// never hit the lazy write.
func (o *operand) shape() *shape {
	if o.s == nil {
		o.s = decompose(o.g)
	}
	return o.s
}

// Prepared is a geometry preprocessed for repeated topological
// evaluation against many other geometries: the decomposition into
// points, segments and polygons is computed once, and large shapes
// carry bulk-loaded segment and point-location indexes. A Prepared is
// immutable after Prepare and safe for concurrent use.
//
// Every method returns exactly what the corresponding package-level
// function returns — same matrices, bit for bit — because both route
// through the same kernel; Prepare only moves the per-call
// decomposition and index build to construction time.
type Prepared struct {
	op operand
}

// Prepare decomposes and indexes g for repeated evaluation.
func Prepare(g geom.Geometry) *Prepared {
	p := &Prepared{op: newOperand(g)}
	p.op.shape().maybeIndex()
	return p
}

// Geometry returns the prepared geometry.
func (p *Prepared) Geometry() geom.Geometry { return p.op.g }

// Eval evaluates pred(p.Geometry(), b).
func (p *Prepared) Eval(pred Predicate, b geom.Geometry) bool {
	bo := newOperand(b)
	return evalOp(pred, &p.op, &bo)
}

// EvalReversed evaluates pred(a, p.Geometry()), for call sites where
// the prepared geometry is the second operand of a non-symmetric
// predicate.
func (p *Prepared) EvalReversed(pred Predicate, a geom.Geometry) bool {
	ao := newOperand(a)
	return evalOp(pred, &ao, &p.op)
}

// Relate computes the DE-9IM matrix of (p.Geometry(), b).
func (p *Prepared) Relate(b geom.Geometry) Matrix {
	bo := newOperand(b)
	return relateOp(&p.op, &bo)
}

// RelateReversed computes the DE-9IM matrix of (a, p.Geometry()).
func (p *Prepared) RelateReversed(a geom.Geometry) Matrix {
	ao := newOperand(a)
	return relateOp(&ao, &p.op)
}

// RelatePattern reports whether Relate(b) matches the pattern.
func (p *Prepared) RelatePattern(b geom.Geometry, pattern string) bool {
	return p.Relate(b).Matches(pattern)
}

// RelatePatternReversed reports whether RelateReversed(a) matches the
// pattern.
func (p *Prepared) RelatePatternReversed(a geom.Geometry, pattern string) bool {
	return p.RelateReversed(a).Matches(pattern)
}

// The ten named predicates, with the prepared geometry as the first
// operand.

// Equals reports topological equality of p.Geometry() and b.
func (p *Prepared) Equals(b geom.Geometry) bool { return p.Eval(PredEquals, b) }

// Disjoint reports whether p.Geometry() and b share no point.
func (p *Prepared) Disjoint(b geom.Geometry) bool { return p.Eval(PredDisjoint, b) }

// Intersects reports whether p.Geometry() and b share a point.
func (p *Prepared) Intersects(b geom.Geometry) bool { return p.Eval(PredIntersects, b) }

// Touches reports whether p.Geometry() and b touch only at boundaries.
func (p *Prepared) Touches(b geom.Geometry) bool { return p.Eval(PredTouches, b) }

// Crosses reports whether p.Geometry() and b cross.
func (p *Prepared) Crosses(b geom.Geometry) bool { return p.Eval(PredCrosses, b) }

// Within reports whether p.Geometry() lies within b.
func (p *Prepared) Within(b geom.Geometry) bool { return p.Eval(PredWithin, b) }

// Contains reports whether p.Geometry() contains b.
func (p *Prepared) Contains(b geom.Geometry) bool { return p.Eval(PredContains, b) }

// Overlaps reports whether p.Geometry() and b overlap.
func (p *Prepared) Overlaps(b geom.Geometry) bool { return p.Eval(PredOverlaps, b) }

// Covers reports whether p.Geometry() covers b.
func (p *Prepared) Covers(b geom.Geometry) bool { return p.Eval(PredCovers, b) }

// CoveredBy reports whether p.Geometry() is covered by b.
func (p *Prepared) CoveredBy(b geom.Geometry) bool { return p.Eval(PredCoveredBy, b) }
