package topo

import "jackpine/internal/geom"

// Predicate identifies one of the named DE-9IM topological predicates.
type Predicate int

// The named topological predicates.
const (
	PredEquals Predicate = iota
	PredDisjoint
	PredIntersects
	PredTouches
	PredCrosses
	PredWithin
	PredContains
	PredOverlaps
	PredCovers
	PredCoveredBy
)

var predicateNames = [...]string{
	"Equals", "Disjoint", "Intersects", "Touches", "Crosses",
	"Within", "Contains", "Overlaps", "Covers", "CoveredBy",
}

// String returns the predicate's conventional name.
func (p Predicate) String() string {
	if int(p) < len(predicateNames) {
		return predicateNames[p]
	}
	return "Unknown"
}

// Eval evaluates the predicate exactly on the two geometries.
func (p Predicate) Eval(a, b geom.Geometry) bool {
	switch p {
	case PredEquals:
		return Equals(a, b)
	case PredDisjoint:
		return Disjoint(a, b)
	case PredIntersects:
		return Intersects(a, b)
	case PredTouches:
		return Touches(a, b)
	case PredCrosses:
		return Crosses(a, b)
	case PredWithin:
		return Within(a, b)
	case PredContains:
		return Contains(a, b)
	case PredOverlaps:
		return Overlaps(a, b)
	case PredCovers:
		return Covers(a, b)
	case PredCoveredBy:
		return CoveredBy(a, b)
	default:
		return false
	}
}

// Equals reports topological equality: the geometries occupy the same
// point set (orientation and vertex order are irrelevant).
func Equals(a, b geom.Geometry) bool {
	if !envHit(a, b) {
		return false
	}
	return Relate(a, b).Matches("T*F**FFF*")
}

// Disjoint reports whether the geometries share no point.
func Disjoint(a, b geom.Geometry) bool { return !Intersects(a, b) }

// Intersects reports whether the geometries share at least one point.
func Intersects(a, b geom.Geometry) bool {
	if !envHit(a, b) {
		return false
	}
	m := Relate(a, b)
	return m.Get(Interior, Interior) >= 0 ||
		m.Get(Interior, Boundary) >= 0 ||
		m.Get(Boundary, Interior) >= 0 ||
		m.Get(Boundary, Boundary) >= 0
}

// Touches reports whether the geometries intersect only at their
// boundaries (their interiors are disjoint). It is always false for two
// points.
func Touches(a, b geom.Geometry) bool {
	if !envHit(a, b) {
		return false
	}
	m := Relate(a, b)
	return m.Matches("FT*******") || m.Matches("F**T*****") || m.Matches("F***T****")
}

// Crosses reports whether the geometries cross: the intersection has
// lower dimension than the maximum operand dimension, lies in both
// interiors, and is not equal to either geometry.
func Crosses(a, b geom.Geometry) bool {
	if !envHit(a, b) {
		return false
	}
	da, db := a.Dimension(), b.Dimension()
	m := Relate(a, b)
	switch {
	case da < db:
		return m.Matches("T*T******")
	case da > db:
		return m.Matches("T*****T**")
	case da == 1 && db == 1:
		return m.Matches("0********")
	default:
		return false
	}
}

// Within reports whether a lies within b (every point of a is in b and
// their interiors intersect).
func Within(a, b geom.Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if !b.Envelope().ContainsRect(a.Envelope()) {
		return false
	}
	return Relate(a, b).Matches("T*F**F***")
}

// Contains reports whether a contains b: Within(b, a).
func Contains(a, b geom.Geometry) bool { return Within(b, a) }

// Overlaps reports whether the geometries overlap: same dimension,
// interiors intersect, and each has interior points outside the other.
func Overlaps(a, b geom.Geometry) bool {
	if !envHit(a, b) {
		return false
	}
	da, db := a.Dimension(), b.Dimension()
	if da != db {
		return false
	}
	m := Relate(a, b)
	if da == 1 {
		return m.Matches("1*T***T**")
	}
	return m.Matches("T*T***T**")
}

// Covers reports whether every point of b lies in a. Unlike Contains it
// holds when b lies entirely on a's boundary.
func Covers(a, b geom.Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if !a.Envelope().ContainsRect(b.Envelope()) {
		return false
	}
	m := Relate(a, b)
	return m.Matches("T*****FF*") || m.Matches("*T****FF*") ||
		m.Matches("***T**FF*") || m.Matches("****T*FF*")
}

// CoveredBy reports Covers(b, a).
func CoveredBy(a, b geom.Geometry) bool { return Covers(b, a) }

// RelatePattern reports whether the DE-9IM matrix of (a, b) matches the
// given pattern. The pattern must be valid per ValidPattern.
func RelatePattern(a, b geom.Geometry, pattern string) bool {
	return Relate(a, b).Matches(pattern)
}

// envHit screens out nil/empty operands and disjoint envelopes.
func envHit(a, b geom.Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	return a.Envelope().Intersects(b.Envelope())
}
