package topo

import "jackpine/internal/geom"

// Predicate identifies one of the named DE-9IM topological predicates.
type Predicate int

// The named topological predicates.
const (
	PredEquals Predicate = iota
	PredDisjoint
	PredIntersects
	PredTouches
	PredCrosses
	PredWithin
	PredContains
	PredOverlaps
	PredCovers
	PredCoveredBy
)

var predicateNames = [...]string{
	"Equals", "Disjoint", "Intersects", "Touches", "Crosses",
	"Within", "Contains", "Overlaps", "Covers", "CoveredBy",
}

// String returns the predicate's conventional name.
func (p Predicate) String() string {
	if int(p) < len(predicateNames) {
		return predicateNames[p]
	}
	return "Unknown"
}

// Eval evaluates the predicate exactly on the two geometries.
func (p Predicate) Eval(a, b geom.Geometry) bool {
	ao, bo := newOperand(a), newOperand(b)
	return evalOp(p, &ao, &bo)
}

// evalOp dispatches a predicate over prebuilt operands.
func evalOp(p Predicate, a, b *operand) bool {
	switch p {
	case PredEquals:
		return equalsOp(a, b)
	case PredDisjoint:
		return disjointOp(a, b)
	case PredIntersects:
		return intersectsOp(a, b)
	case PredTouches:
		return touchesOp(a, b)
	case PredCrosses:
		return crossesOp(a, b)
	case PredWithin:
		return withinOp(a, b)
	case PredContains:
		return withinOp(b, a)
	case PredOverlaps:
		return overlapsOp(a, b)
	case PredCovers:
		return coversOp(a, b)
	case PredCoveredBy:
		return coversOp(b, a)
	default:
		return false
	}
}

// Equals reports topological equality: the geometries occupy the same
// point set (orientation and vertex order are irrelevant).
func Equals(a, b geom.Geometry) bool {
	ao, bo := newOperand(a), newOperand(b)
	return equalsOp(&ao, &bo)
}

// Disjoint reports whether the geometries share no point.
func Disjoint(a, b geom.Geometry) bool { return !Intersects(a, b) }

// Intersects reports whether the geometries share at least one point.
func Intersects(a, b geom.Geometry) bool {
	ao, bo := newOperand(a), newOperand(b)
	return intersectsOp(&ao, &bo)
}

// Touches reports whether the geometries intersect only at their
// boundaries (their interiors are disjoint). It is always false for two
// points.
func Touches(a, b geom.Geometry) bool {
	ao, bo := newOperand(a), newOperand(b)
	return touchesOp(&ao, &bo)
}

// Crosses reports whether the geometries cross: the intersection has
// lower dimension than the maximum operand dimension, lies in both
// interiors, and is not equal to either geometry.
func Crosses(a, b geom.Geometry) bool {
	ao, bo := newOperand(a), newOperand(b)
	return crossesOp(&ao, &bo)
}

// Within reports whether a lies within b (every point of a is in b and
// their interiors intersect).
func Within(a, b geom.Geometry) bool {
	ao, bo := newOperand(a), newOperand(b)
	return withinOp(&ao, &bo)
}

// Contains reports whether a contains b: Within(b, a).
func Contains(a, b geom.Geometry) bool { return Within(b, a) }

// Overlaps reports whether the geometries overlap: same dimension,
// interiors intersect, and each has interior points outside the other.
func Overlaps(a, b geom.Geometry) bool {
	ao, bo := newOperand(a), newOperand(b)
	return overlapsOp(&ao, &bo)
}

// Covers reports whether every point of b lies in a. Unlike Contains it
// holds when b lies entirely on a's boundary.
func Covers(a, b geom.Geometry) bool {
	ao, bo := newOperand(a), newOperand(b)
	return coversOp(&ao, &bo)
}

// CoveredBy reports Covers(b, a).
func CoveredBy(a, b geom.Geometry) bool { return Covers(b, a) }

// RelatePattern reports whether the DE-9IM matrix of (a, b) matches the
// given pattern. The pattern must be valid per ValidPattern.
func RelatePattern(a, b geom.Geometry, pattern string) bool {
	return Relate(a, b).Matches(pattern)
}

// relateOp computes the DE-9IM matrix over operands, reusing any cached
// decomposition.
func relateOp(a, b *operand) Matrix { return relateShapes(a.shape(), b.shape()) }

func equalsOp(a, b *operand) bool {
	if !envHitOp(a, b) {
		return false
	}
	return relateOp(a, b).Matches("T*F**FFF*")
}

func disjointOp(a, b *operand) bool { return !intersectsOp(a, b) }

func intersectsOp(a, b *operand) bool {
	if !envHitOp(a, b) {
		return false
	}
	m := relateOp(a, b)
	return m.Get(Interior, Interior) >= 0 ||
		m.Get(Interior, Boundary) >= 0 ||
		m.Get(Boundary, Interior) >= 0 ||
		m.Get(Boundary, Boundary) >= 0
}

func touchesOp(a, b *operand) bool {
	if !envHitOp(a, b) {
		return false
	}
	m := relateOp(a, b)
	return m.Matches("FT*******") || m.Matches("F**T*****") || m.Matches("F***T****")
}

func crossesOp(a, b *operand) bool {
	if !envHitOp(a, b) {
		return false
	}
	da, db := a.g.Dimension(), b.g.Dimension()
	m := relateOp(a, b)
	switch {
	case da < db:
		return m.Matches("T*T******")
	case da > db:
		return m.Matches("T*****T**")
	case da == 1 && db == 1:
		return m.Matches("0********")
	default:
		return false
	}
}

func withinOp(a, b *operand) bool {
	if a.nilOrEmpty() || b.nilOrEmpty() {
		return false
	}
	if !b.env.ContainsRect(a.env) {
		return false
	}
	return relateOp(a, b).Matches("T*F**F***")
}

func overlapsOp(a, b *operand) bool {
	if !envHitOp(a, b) {
		return false
	}
	da, db := a.g.Dimension(), b.g.Dimension()
	if da != db {
		return false
	}
	m := relateOp(a, b)
	if da == 1 {
		return m.Matches("1*T***T**")
	}
	return m.Matches("T*T***T**")
}

func coversOp(a, b *operand) bool {
	if a.nilOrEmpty() || b.nilOrEmpty() {
		return false
	}
	if !a.env.ContainsRect(b.env) {
		return false
	}
	m := relateOp(a, b)
	return m.Matches("T*****FF*") || m.Matches("*T****FF*") ||
		m.Matches("***T**FF*") || m.Matches("****T*FF*")
}

// envHitOp screens out nil/empty operands and disjoint envelopes.
func envHitOp(a, b *operand) bool {
	if a.nilOrEmpty() || b.nilOrEmpty() {
		return false
	}
	return a.env.Intersects(b.env)
}
