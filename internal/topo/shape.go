package topo

import (
	"math"
	"sync"

	"jackpine/internal/geom"
	"jackpine/internal/index/rtree"
)

// seg is a single 1D element of a decomposed geometry.
type seg struct {
	a, b geom.Coord
	ring bool // true when the segment comes from a polygon ring
	env  geom.Rect
}

// shape is a geometry decomposed into 0D, 1D and 2D parts, preprocessed
// for point location and pairwise intersection.
type shape struct {
	points []geom.Coord   // 0D parts
	segs   []seg          // 1D elements: line segments and ring segments
	polys  []geom.Polygon // 2D parts (for interior membership)

	// lineBoundary holds the mod-2 boundary endpoints of the 1D parts
	// (OGC combinatorial boundary of (multi)linestrings).
	lineBoundary map[geom.Coord]bool

	env      geom.Rect
	dim      int  // topological dimension of the geometry (-1 if empty)
	nonEmpty bool // any coordinates at all

	// Static indexes, built at most once by maybeIndex (index.go) and
	// read-only afterwards: segTree indexes segs for pairwise
	// intersection probing, locTree indexes locEdges for point
	// location. Both stay nil below indexMinSegs, in which case the
	// brute-force paths run. Readers must call maybeIndex before
	// touching the fields; the Once publishes them safely to
	// concurrent readers of a shared (prepared) shape.
	indexOnce sync.Once
	segTree   *rtree.Tree
	locTree   *rtree.Tree
	locEdges  []locEdge
	rings     []ringMeta
	scale     float64 // max |coordinate| over indexed edges, clamped >= 1
}

// decompose flattens g into a shape.
func decompose(g geom.Geometry) *shape {
	s := &shape{env: geom.EmptyRect(), dim: -1}
	endpointCount := make(map[geom.Coord]int)
	s.addGeometry(g, endpointCount)
	s.lineBoundary = make(map[geom.Coord]bool)
	for c, n := range endpointCount {
		if n%2 == 1 {
			s.lineBoundary[c] = true
		}
	}
	return s
}

func (s *shape) addGeometry(g geom.Geometry, endpoints map[geom.Coord]int) {
	if g == nil {
		return
	}
	switch t := g.(type) {
	case geom.Point:
		if !t.Empty {
			s.points = append(s.points, t.Coord)
			s.markDim(0)
		}
	case geom.MultiPoint:
		for _, p := range t {
			s.addGeometry(p, endpoints)
		}
	case geom.LineString:
		s.addLine(t, endpoints)
	case geom.MultiLineString:
		for _, l := range t {
			s.addLine(l, endpoints)
		}
	case geom.Polygon:
		s.addPolygon(t)
	case geom.MultiPolygon:
		for _, p := range t {
			s.addPolygon(p)
		}
	case geom.Collection:
		for _, sub := range t {
			s.addGeometry(sub, endpoints)
		}
	}
}

func (s *shape) addLine(l geom.LineString, endpoints map[geom.Coord]int) {
	if len(l) < 2 {
		return
	}
	s.markDim(1)
	for i := 0; i < len(l)-1; i++ {
		s.addSeg(l[i], l[i+1], false)
	}
	if !l.IsClosed() {
		endpoints[l[0]]++
		endpoints[l[len(l)-1]]++
	}
}

func (s *shape) addPolygon(p geom.Polygon) {
	if p.IsEmpty() {
		return
	}
	s.markDim(2)
	s.polys = append(s.polys, p)
	for _, r := range p {
		for i := 0; i < len(r)-1; i++ {
			s.addSeg(r[i], r[i+1], true)
		}
	}
}

func (s *shape) addSeg(a, b geom.Coord, ring bool) {
	if a.Equal(b) {
		return
	}
	e := geom.RectFromPoints(a, b)
	s.segs = append(s.segs, seg{a: a, b: b, ring: ring, env: e})
	s.env = s.env.Union(e)
}

func (s *shape) markDim(d int) {
	s.nonEmpty = true
	if d > s.dim {
		s.dim = d
	}
	if d == 0 {
		// Points extend the envelope too.
		if n := len(s.points); n > 0 {
			s.env = s.env.ExpandCoord(s.points[n-1])
		}
	}
}

// boundaryDim returns the dimension of the geometry's boundary:
// 1 for areal geometries, 0 for curves with non-empty mod-2 boundary,
// F otherwise (points, closed curves, empty).
func (s *shape) boundaryDim() int8 {
	if len(s.polys) > 0 {
		return 1
	}
	if len(s.lineBoundary) > 0 {
		return 0
	}
	return DimF
}

// hasArea reports whether the shape has 2D parts.
func (s *shape) hasArea() bool { return len(s.polys) > 0 }

// locate classifies a point against the shape's point set using union
// semantics: Interior if the point is interior to any part, otherwise
// Boundary if on any part's boundary, otherwise Exterior.
func (s *shape) locate(p geom.Coord) Location {
	if s.locTree != nil {
		return s.locateIndexed(p)
	}
	loc := Exterior

	// 2D parts.
	for i := range s.polys {
		switch locatePolygon(p, s.polys[i]) {
		case Interior:
			return Interior
		case Boundary:
			loc = Boundary
		}
	}

	// 1D parts (non-ring segments).
	for i := range s.segs {
		sg := &s.segs[i]
		if sg.ring {
			continue // ring segments belong to polygon boundaries, handled above
		}
		if nearSegment(p, sg.a, sg.b) {
			if s.lineBoundary[p] {
				if loc == Exterior {
					loc = Boundary
				}
			} else {
				return Interior
			}
		}
	}

	// 0D parts: points are all interior (their boundary is empty).
	for _, q := range s.points {
		if q.Equal(p) {
			return Interior
		}
	}
	return loc
}

// locatePolygon classifies p against a single polygon.
func locatePolygon(p geom.Coord, poly geom.Polygon) Location {
	if len(poly) == 0 {
		return Exterior
	}
	switch ringLocation(p, poly[0]) {
	case geom.RingExterior:
		return Exterior
	case geom.RingBoundary:
		return Boundary
	}
	for _, hole := range poly[1:] {
		switch ringLocation(p, hole) {
		case geom.RingInterior:
			return Exterior
		case geom.RingBoundary:
			return Boundary
		}
	}
	return Interior
}

// relateEps is the relative tolerance for classifying computed points —
// sub-segment midpoints and segment-intersection points — against a
// shape. These coordinates carry floating-point interpolation error, so
// a point lying on a coincident boundary fails the exact collinearity
// test of geom.OnSegment and would otherwise fall through to an
// arbitrary ray-casting answer (the Equals(a, a) reflexivity bug the
// DE-9IM fuzz target caught on TIGER coordinates). The exact predicates
// in internal/geom stay exact; only point location inside the relate
// algorithm is tolerant.
const relateEps = 1e-9

// nearSegment reports whether p is within the relative tolerance of
// segment a–b.
func nearSegment(p, a, b geom.Coord) bool {
	scale := math.Max(math.Max(math.Abs(a.X), math.Abs(a.Y)),
		math.Max(math.Max(math.Abs(b.X), math.Abs(b.Y)),
			math.Max(math.Max(math.Abs(p.X), math.Abs(p.Y)), 1)))
	return geom.DistPointSegment(p, a, b) <= relateEps*scale
}

// ringLocation is geom.PointInRing with a tolerant boundary test.
func ringLocation(p geom.Coord, ring geom.Ring) geom.PointInRingResult {
	for i := 0; i+1 < len(ring); i++ {
		if nearSegment(p, ring[i], ring[i+1]) {
			return geom.RingBoundary
		}
	}
	return geom.PointInRing(p, ring)
}
