package topo

import "jackpine/internal/geom"

// MBREval evaluates the named predicate on the minimum bounding
// rectangles of the geometries instead of their exact shapes. This
// reproduces the semantics of spatial systems whose topological
// predicates operate on MBRs only (notably MySQL before 5.6): results
// are fast but approximate — a superset of the exact answer for
// Intersects-like predicates, and generally incomparable for Touches,
// Crosses and Equals.
func MBREval(p Predicate, a, b geom.Geometry) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	ra, rb := a.Envelope(), b.Envelope()
	switch p {
	case PredEquals:
		return ra == rb
	case PredDisjoint:
		return !ra.Intersects(rb)
	case PredIntersects:
		return ra.Intersects(rb)
	case PredTouches:
		return mbrTouches(ra, rb)
	case PredCrosses, PredOverlaps:
		// MBR semantics collapse Crosses onto Overlaps: proper overlap
		// where neither rectangle contains the other.
		return ra.Intersects(rb) && !ra.ContainsRect(rb) && !rb.ContainsRect(ra) &&
			!mbrTouches(ra, rb)
	case PredWithin, PredCoveredBy:
		return rb.ContainsRect(ra)
	case PredContains, PredCovers:
		return ra.ContainsRect(rb)
	default:
		return false
	}
}

// mbrTouches reports boundary-only contact between two rectangles: they
// intersect, but their interiors do not.
func mbrTouches(a, b geom.Rect) bool {
	if !a.Intersects(b) {
		return false
	}
	// Interiors intersect iff the overlap has positive width and height.
	i := a.Intersect(b)
	return geom.ExactEq(i.Width(), 0) || geom.ExactEq(i.Height(), 0)
}
