package topo

import (
	"testing"

	"jackpine/internal/geom"
)

// FuzzPrepared is the metamorphic layer over the prepared-geometry
// kernel: for every valid pair it checks that evaluation routed through
// topo.Prepare — with the prepared geometry on either side — agrees
// bit-for-bit with the unprepared package-level functions, and that the
// FuzzDE9IM algebra still holds when one operand is prepared. Indexing
// is forced (Prepare + sub-threshold forcing in the kernel tests covers
// the rest), so divergence between the index-probed and brute-force
// paths surfaces here as a prepared-vs-naive mismatch.
func FuzzPrepared(f *testing.F) {
	pairs := [][2]string{
		{"POINT (1 1)", "POINT (1 1)"},
		{"POINT (1 1)", "LINESTRING (0 0, 2 2)"},
		{"LINESTRING (0 0, 2 2)", "LINESTRING (0 2, 2 0)"},
		{"LINESTRING (0 0, 1 0)", "LINESTRING (1 0, 2 0)"},
		{"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))"},
		{"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))"},
		{"POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "LINESTRING (-1 1, 4 1)"},
		{"MULTIPOINT (0 0, 2 2)", "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))"},
		{"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 3 1, 3 3, 1 3, 1 1))", "POINT (2 2)"},
		{"GEOMETRYCOLLECTION (POINT (0 0), LINESTRING (1 1, 2 2))", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"},
	}
	for _, p := range pairs {
		f.Add(p[0], p[1])
	}
	f.Fuzz(func(t *testing.T, wa, wb string) {
		if len(wa) > 2048 || len(wb) > 2048 {
			t.Skip("oversized input")
		}
		a := parseUsable(t, wa)
		b := parseUsable(t, wb)

		pa := Prepare(a)
		want := Relate(a, b)
		if got := pa.Relate(b); got != want {
			t.Errorf("Prepared.Relate = %s, want %s for %s / %s",
				got, want, geom.WKT(a), geom.WKT(b))
		}
		if got, want := pa.RelateReversed(b), Relate(b, a); got != want {
			t.Errorf("Prepared.RelateReversed = %s, want %s for %s / %s",
				got, want, geom.WKT(a), geom.WKT(b))
		}
		if got := pa.Relate(b).Transpose(); got != pa.RelateReversed(b) {
			t.Errorf("prepared transpose symmetry broken for %s / %s",
				geom.WKT(a), geom.WKT(b))
		}
		for pred := PredEquals; pred <= PredCoveredBy; pred++ {
			if got, want := pa.Eval(pred, b), pred.Eval(a, b); got != want {
				t.Errorf("Prepared.Eval(%s) = %v, want %v for %s / %s",
					pred, got, want, geom.WKT(a), geom.WKT(b))
			}
			if got, want := pa.EvalReversed(pred, b), pred.Eval(b, a); got != want {
				t.Errorf("Prepared.EvalReversed(%s) = %v, want %v for %s / %s",
					pred, got, want, geom.WKT(a), geom.WKT(b))
			}
		}
		// The FuzzDE9IM algebra, with one side prepared.
		if pa.Disjoint(b) == pa.Intersects(b) {
			t.Errorf("prepared Disjoint != !Intersects for %s / %s", geom.WKT(a), geom.WKT(b))
		}
		if !pa.Equals(a) {
			t.Errorf("prepared Equals not reflexive for %s", geom.WKT(a))
		}
		if pa.Contains(b) != Within(b, a) {
			t.Errorf("prepared Contains/Within duality broken for %s / %s",
				geom.WKT(a), geom.WKT(b))
		}
		if pa.Covers(b) != CoveredBy(b, a) {
			t.Errorf("prepared Covers/CoveredBy duality broken for %s / %s",
				geom.WKT(a), geom.WKT(b))
		}
	})
}
