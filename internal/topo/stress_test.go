package topo

import (
	"math"
	"testing"
	"testing/quick"

	"jackpine/internal/geom"
	"jackpine/internal/tiger"
)

// disc builds a regular 24-gon approximating a disc.
func disc(cx, cy, r float64) geom.Polygon {
	const n = 24
	ring := make(geom.Ring, 0, n+1)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / n
		ring = append(ring, geom.Coord{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)})
	}
	ring = append(ring, ring[0])
	return geom.Polygon{ring}
}

// TestDiscGroundTruth checks predicates against analytic truth for
// pairs of discs: centre distance fully determines the relation (with a
// guard band for the polygonal approximation).
func TestDiscGroundTruth(t *testing.T) {
	prop := func(seed uint64) bool {
		r := seed
		next := func() float64 {
			r = r*6364136223846793005 + 1442695040888963407
			return float64(r>>40) / float64(1<<24)
		}
		r1 := 1 + next()*3
		r2 := 1 + next()*3
		d := next() * (r1 + r2) * 1.5
		a := disc(0, 0, r1)
		b := disc(d, 0, r2)

		// The 24-gon's inradius is r·cos(π/24) ≈ 0.9914·r: stay outside
		// the approximation band.
		const band = 0.02
		switch {
		case d > (r1+r2)*(1+band):
			return Disjoint(a, b) && !Intersects(a, b) && !Overlaps(a, b)
		case d < (r1+r2)*(1-band) && d > math.Abs(r1-r2)*(1+band):
			return Intersects(a, b) && Overlaps(a, b) && !Within(a, b) && !Contains(a, b)
		case d < math.Abs(r1-r2)*(1-band) && math.Abs(r1-r2) > band:
			if r1 > r2 {
				return Contains(a, b) && Covers(a, b) && !Overlaps(a, b)
			}
			return Within(a, b) && CoveredBy(a, b) && !Overlaps(a, b)
		default:
			return true // inside the approximation band: no claim
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestParcelFabricGroundTruth uses the generator's parcel fabric, whose
// topology is known by construction: within one subdivided block,
// side-neighbours share an edge (Touches), diagonal neighbours share a
// corner (Touches), and all parcels are interior-disjoint.
func TestParcelFabricGroundTruth(t *testing.T) {
	ds := tiger.Generate(tiger.Small, 1)
	// The generator subdivides each chosen block into m×m parcels
	// emitted row-major; recover m from the first block's parcels.
	m := 3
	block := ds.Parcels[:m*m]
	at := func(i, j int) geom.Geometry { return block[j*m+i].Geom }

	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			a := at(i, j)
			for jj := 0; jj < m; jj++ {
				for ii := 0; ii < m; ii++ {
					if i == ii && j == jj {
						continue
					}
					b := at(ii, jj)
					di, dj := abs(i-ii), abs(j-jj)
					adjacent := di+dj == 1
					diagonal := di == 1 && dj == 1
					switch {
					case adjacent || diagonal:
						if !Touches(a, b) {
							t.Fatalf("parcels (%d,%d) and (%d,%d) should touch", i, j, ii, jj)
						}
						if Overlaps(a, b) {
							t.Fatalf("parcels (%d,%d) and (%d,%d) must not overlap", i, j, ii, jj)
						}
					default:
						if !Disjoint(a, b) {
							t.Fatalf("parcels (%d,%d) and (%d,%d) should be disjoint", i, j, ii, jj)
						}
					}
					// Interior disjointness always holds in the fabric.
					mtrx := Relate(a, b)
					if mtrx.Get(Interior, Interior) >= 0 {
						t.Fatalf("parcels (%d,%d)/(%d,%d): interiors intersect: %s", i, j, ii, jj, mtrx)
					}
				}
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestStreetNetworkGroundTruth exercises line-line relations on the road
// grid: consecutive edges of one street share exactly one endpoint
// (Touches), and edges of the same street two blocks apart are disjoint.
func TestStreetNetworkGroundTruth(t *testing.T) {
	ds := tiger.Generate(tiger.Small, 2)
	// Collect the first horizontal street's edges in block order.
	name := ds.Edges[0].Name
	var street []geom.LineString
	for _, e := range ds.Edges {
		if e.Name == name {
			street = append(street, e.Geom)
		}
		if len(street) == 6 {
			break
		}
	}
	if len(street) < 4 {
		t.Fatal("street too short")
	}
	for i := 0; i+1 < len(street); i++ {
		if !Touches(street[i], street[i+1]) {
			t.Errorf("consecutive edges %d,%d should touch", i, i+1)
		}
		if Crosses(street[i], street[i+1]) {
			t.Errorf("consecutive edges %d,%d must not cross", i, i+1)
		}
	}
	for i := 0; i+2 < len(street); i++ {
		if !Disjoint(street[i], street[i+2]) {
			t.Errorf("edges %d,%d two blocks apart should be disjoint", i, i+2)
		}
	}
}

// TestPointsAgainstLandmarks cross-checks point-in-polygon predicates
// against the raw geometry primitive for generated data.
func TestPointsAgainstLandmarks(t *testing.T) {
	ds := tiger.Generate(tiger.Small, 4)
	checked := 0
	for _, p := range ds.PointLandmarks[:200] {
		for _, lm := range ds.AreaLandmarks[:50] {
			if !lm.Geom.Envelope().ContainsCoord(p.Geom.Coord) {
				continue
			}
			checked++
			inRing := geom.PointInRing(p.Geom.Coord, lm.Geom[0])
			within := Within(p.Geom, lm.Geom)
			if (inRing == geom.RingInterior) != within {
				t.Fatalf("point %v vs landmark %d: ring=%v within=%v",
					p.Geom.Coord, lm.ID, inRing, within)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d point/landmark pairs checked", checked)
	}
}
