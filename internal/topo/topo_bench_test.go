package topo

import (
	"math"
	"testing"

	"jackpine/internal/geom"
)

func benchPolygon(cx, cy float64, n int) geom.Polygon {
	ring := make(geom.Ring, 0, n+1)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		r := 10 + 3*math.Sin(5*a)
		ring = append(ring, geom.Coord{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)})
	}
	ring = append(ring, ring[0])
	return geom.Polygon{ring}
}

func BenchmarkRelatePolygonPolygonOverlap(b *testing.B) {
	p1 := benchPolygon(0, 0, 64)
	p2 := benchPolygon(8, 3, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Relate(p1, p2)
	}
}

func BenchmarkRelatePolygonPolygonDisjoint(b *testing.B) {
	p1 := benchPolygon(0, 0, 64)
	p2 := benchPolygon(100, 100, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Relate(p1, p2)
	}
}

func BenchmarkIntersectsExact(b *testing.B) {
	p1 := benchPolygon(0, 0, 64)
	p2 := benchPolygon(8, 3, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Intersects(p1, p2) {
			b.Fatal("should intersect")
		}
	}
}

func BenchmarkIntersectsMBR(b *testing.B) {
	p1 := benchPolygon(0, 0, 64)
	p2 := benchPolygon(8, 3, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !MBREval(PredIntersects, p1, p2) {
			b.Fatal("should intersect")
		}
	}
}

func BenchmarkContainsPointInPolygon(b *testing.B) {
	p := benchPolygon(0, 0, 128)
	pt := geom.Pt(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Contains(p, pt) {
			b.Fatal("should contain")
		}
	}
}

func BenchmarkTouchesSharedEdge(b *testing.B) {
	a := geom.Polygon{geom.Ring{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}, {X: 0, Y: 0}}}
	c := geom.Polygon{geom.Ring{{X: 2, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 0}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Touches(a, c) {
			b.Fatal("should touch")
		}
	}
}
