package topo

import (
	"testing"

	"jackpine/internal/geom"
)

// TestRelateCoincidentBoundaryRobustness is the regression test for a
// bug the DE-9IM metamorphic fuzz target found with TIGER-generator
// coordinates: sub-segment midpoints are interpolated, so on geometry
// with non-representable coordinates they are not exactly collinear
// with the coincident boundary they lie on, and the exact OnSegment
// test handed them to ray casting, which returned arbitrary
// interior/exterior answers. Relate(a, a) came out 212111212 and
// Equals(a, a) was false. Point location inside relate is now tolerant
// (see nearSegment).
func TestRelateCoincidentBoundaryRobustness(t *testing.T) {
	w := "POLYGON ((818.0679378921384 241.62309477103017, 788.9258648391952 284.4465581989776, " +
		"753.2956775994653 328.98822225156675, 704.9225761903995 298.7258173652141, " +
		"652.6445300089395 272.65021726494103, 671.3527876780904 217.40522120367265, " +
		"700.1255355553528 176.21165407097305, 752.965146299306 156.13250344390133, " +
		"793.1266850125822 195.27472468495156, 818.0679378921384 241.62309477103017))"
	g := geom.MustParseWKT(w)
	if !geom.IsValid(g) {
		t.Fatal("fixture polygon is invalid")
	}
	if got, want := Relate(g, g).String(), "2FFF1FFF2"; got != want {
		t.Errorf("Relate(a, a) = %s, want %s", got, want)
	}
	if !Equals(g, g) {
		t.Error("Equals(a, a) = false")
	}
	if !Contains(g, g) || !Within(g, g) || !Covers(g, g) {
		t.Error("containment not reflexive on identical polygons")
	}
}
