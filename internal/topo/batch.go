package topo

import "jackpine/internal/geom"

// Batch entry points for the prepared kernel: one call evaluates a
// prepared constant side against every surviving candidate of a column
// batch, amortizing call dispatch on top of the decomposition and index
// reuse Prepare already provides. Each result is bit-identical to the
// corresponding per-row method — the batch forms route through the same
// evalOp/relateOp kernel with a fresh operand per candidate.
//
// bs and out must have equal length; out[i] receives the result for
// bs[i]. A nil element evaluates like the per-row form (nil operand).

// EvalBatch evaluates pred(p.Geometry(), bs[i]) for every candidate.
func (p *Prepared) EvalBatch(pred Predicate, bs []geom.Geometry, out []bool) {
	for i, b := range bs {
		bo := newOperand(b)
		out[i] = evalOp(pred, &p.op, &bo)
	}
}

// EvalBatchReversed evaluates pred(bs[i], p.Geometry()) for every
// candidate (the prepared geometry as second operand of a
// non-symmetric predicate).
func (p *Prepared) EvalBatchReversed(pred Predicate, bs []geom.Geometry, out []bool) {
	for i, b := range bs {
		bo := newOperand(b)
		out[i] = evalOp(pred, &bo, &p.op)
	}
}

// RelatePatternBatch reports pattern matches of the DE-9IM matrices of
// (p.Geometry(), bs[i]).
func (p *Prepared) RelatePatternBatch(bs []geom.Geometry, pattern string, out []bool) {
	for i, b := range bs {
		bo := newOperand(b)
		out[i] = relateOp(&p.op, &bo).Matches(pattern)
	}
}

// RelatePatternBatchReversed reports pattern matches of the DE-9IM
// matrices of (bs[i], p.Geometry()).
func (p *Prepared) RelatePatternBatchReversed(bs []geom.Geometry, pattern string, out []bool) {
	for i, b := range bs {
		bo := newOperand(b)
		out[i] = relateOp(&bo, &p.op).Matches(pattern)
	}
}
