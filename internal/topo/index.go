package topo

import (
	"math"

	"jackpine/internal/geom"
	"jackpine/internal/index/rtree"
)

// indexMinSegs is the segment count below which a shape skips index
// construction: for small geometries the brute-force pair loop and the
// linear point-location scan beat the tree probes, and building two
// R-trees per Relate call would pessimize the common tiny-operand case.
const indexMinSegs = 32

// locEdge is one edge of the point-location index. Ring edges are taken
// from the raw rings — including degenerate zero-length edges that
// addSeg drops from segs — because ringLocation's tolerant boundary
// sweep walks the raw ring. Non-ring line segments carry ring == -1.
type locEdge struct {
	a, b geom.Coord
	ring int32 // index into shape.rings, -1 for a line segment
}

// ringMeta records the provenance of one indexed ring: rings are
// appended polygon by polygon (shell first, holes in order), so each
// polygon owns a contiguous run of len(poly) entries.
type ringMeta struct {
	poly int32 // index into shape.polys
	n    int32 // raw vertex count (PointInRing needs n >= 3)
}

// maybeIndex builds the shape's static indexes when the shape is large
// enough to benefit. Safe for concurrent callers; after it returns, the
// index fields are visible to the calling goroutine.
func (s *shape) maybeIndex() {
	if len(s.segs) < indexMinSegs {
		return
	}
	s.indexOnce.Do(s.buildIndex)
}

// buildIndex bulk-loads the segment-pair tree over segs and the
// point-location tree over raw ring edges plus line segments.
func (s *shape) buildIndex() {
	entries := make([]rtree.Entry, len(s.segs))
	for i := range s.segs {
		entries[i] = rtree.Entry{Rect: s.segs[i].env, ID: int64(i)}
	}
	s.segTree = rtree.BulkLoad(entries, 0)

	for pi := range s.polys {
		for _, r := range s.polys[pi] {
			ri := int32(len(s.rings))
			s.rings = append(s.rings, ringMeta{poly: int32(pi), n: int32(len(r))})
			for i := 0; i+1 < len(r); i++ {
				s.locEdges = append(s.locEdges, locEdge{a: r[i], b: r[i+1], ring: ri})
			}
		}
	}
	for i := range s.segs {
		if !s.segs[i].ring {
			s.locEdges = append(s.locEdges, locEdge{a: s.segs[i].a, b: s.segs[i].b, ring: -1})
		}
	}
	scale := 1.0
	les := make([]rtree.Entry, len(s.locEdges))
	for i := range s.locEdges {
		e := &s.locEdges[i]
		les[i] = rtree.Entry{Rect: geom.RectFromPoints(e.a, e.b), ID: int64(i)}
		scale = math.Max(scale, math.Max(
			math.Max(math.Abs(e.a.X), math.Abs(e.a.Y)),
			math.Max(math.Abs(e.b.X), math.Abs(e.b.Y))))
	}
	s.scale = scale
	s.locTree = rtree.BulkLoad(les, 0)
}

// ringState accumulates the per-ring evidence of one indexed location
// query: whether any edge's tolerant boundary test hit, and the
// ray-crossing parity.
type ringState struct {
	boundary bool
	odd      bool
}

// ringRes reduces a ring's accumulated state to the ringLocation result:
// the tolerant boundary sweep wins outright, degenerate rings (< 3
// vertices) are exterior, otherwise crossing parity decides. This is
// exactly ringLocation's decision order; PointInRing's exact OnSegment
// early-out is unreachable there because nearSegment subsumes it.
func ringRes(st ringState, n int32) geom.PointInRingResult {
	if st.boundary {
		return geom.RingBoundary
	}
	if n < 3 {
		return geom.RingExterior
	}
	if st.odd {
		return geom.RingInterior
	}
	return geom.RingExterior
}

// locateIndexed is locate backed by the location tree. One tree query
// collects every edge that can contribute: the half-open box reaches
// tol below/left of p for the tolerant boundary tests (tol dominates
// every per-edge nearSegment tolerance, and point-to-envelope distance
// lower-bounds point-to-segment distance) and +Inf to the right for the
// +X ray crossings. Each candidate then runs the exact per-edge tests
// of ringLocation/PointInRing, so the result is bit-identical to the
// linear scan: boundary hits and crossing parity are order-independent,
// and the per-polygon shell/hole decision tree is replayed in
// declaration order from the per-ring states.
func (s *shape) locateIndexed(p geom.Coord) Location {
	tol := relateEps * math.Max(s.scale, math.Max(math.Abs(p.X), math.Abs(p.Y)))
	query := geom.Rect{MinX: p.X - tol, MinY: p.Y - tol, MaxX: math.Inf(1), MaxY: p.Y + tol}

	var rbuf [16]ringState
	var rstate []ringState
	if len(s.rings) <= len(rbuf) {
		rstate = rbuf[:len(s.rings)]
	} else {
		rstate = make([]ringState, len(s.rings))
	}
	lineHit := false
	s.locTree.Search(query, func(e rtree.Entry) bool {
		ed := &s.locEdges[e.ID]
		if ed.ring < 0 {
			if !lineHit && nearSegment(p, ed.a, ed.b) {
				lineHit = true
			}
			return true
		}
		st := &rstate[ed.ring]
		if !st.boundary && nearSegment(p, ed.a, ed.b) {
			st.boundary = true
		}
		if (ed.a.Y > p.Y) != (ed.b.Y > p.Y) {
			t := (p.Y - ed.a.Y) / (ed.b.Y - ed.a.Y)
			x := ed.a.X + t*(ed.b.X-ed.a.X)
			if x > p.X {
				st.odd = !st.odd
			}
		}
		return true
	})

	loc := Exterior
	ri := 0
	for pi := range s.polys {
		poly := s.polys[pi]
		base := ri
		ri += len(poly)
		if len(poly) == 0 {
			continue
		}
		ploc := Interior
		switch ringRes(rstate[base], s.rings[base].n) {
		case geom.RingExterior:
			ploc = Exterior
		case geom.RingBoundary:
			ploc = Boundary
		default:
			for h := 1; h < len(poly); h++ {
				done := false
				switch ringRes(rstate[base+h], s.rings[base+h].n) {
				case geom.RingInterior:
					ploc, done = Exterior, true
				case geom.RingBoundary:
					ploc, done = Boundary, true
				}
				if done {
					break
				}
			}
		}
		switch ploc {
		case Interior:
			return Interior
		case Boundary:
			loc = Boundary
		}
	}

	if lineHit {
		if s.lineBoundary[p] {
			if loc == Exterior {
				loc = Boundary
			}
		} else {
			return Interior
		}
	}
	for _, q := range s.points {
		if q.Equal(p) {
			return Interior
		}
	}
	return loc
}

// segPairs invokes fn for every segment pair (one from sa, one from sb)
// whose envelopes intersect — the same candidate set the brute-force
// nested loop enumerates, since rtree.Search filters with the same
// geom.Rect.Intersects. When a tree is available the smaller side
// probes the larger side's tree; fn always receives the sa segment
// first so downstream floating-point computation is order-stable.
func segPairs(sa, sb *shape, fn func(ga, gb *seg)) {
	switch {
	case sb.segTree != nil && (sa.segTree == nil || len(sb.segs) >= len(sa.segs)):
		for i := range sa.segs {
			ga := &sa.segs[i]
			if !ga.env.Intersects(sb.env) {
				continue
			}
			sb.segTree.Search(ga.env, func(e rtree.Entry) bool {
				fn(ga, &sb.segs[e.ID])
				return true
			})
		}
	case sa.segTree != nil:
		for j := range sb.segs {
			gb := &sb.segs[j]
			if !gb.env.Intersects(sa.env) {
				continue
			}
			sa.segTree.Search(gb.env, func(e rtree.Entry) bool {
				fn(&sa.segs[e.ID], gb)
				return true
			})
		}
	default:
		for i := range sa.segs {
			ga := &sa.segs[i]
			if !ga.env.Intersects(sb.env) {
				continue
			}
			for j := range sb.segs {
				gb := &sb.segs[j]
				if !ga.env.Intersects(gb.env) {
					continue
				}
				fn(ga, gb)
			}
		}
	}
}
