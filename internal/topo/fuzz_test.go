package topo

import (
	"testing"

	"jackpine/internal/geom"
)

// FuzzDE9IM is the metamorphic layer over the DE-9IM predicate kernel:
// instead of comparing against an oracle (there is none in-tree), it
// checks the algebra the predicates must satisfy for every valid pair of
// geometries:
//
//	Intersects(a, b) == Intersects(b, a)          symmetry
//	Disjoint(a, b)   == !Intersects(a, b)         complement
//	Equals(a, a)                                  reflexivity
//	Equals(a, b)     == Equals(b, a)              symmetry
//	Touches/Overlaps symmetric                    symmetry
//	Contains(a, b)   == Within(b, a)              duality
//	Covers(a, b)     == CoveredBy(b, a)           duality
//	Relate(a, b)     == Relate(b, a) transposed   matrix symmetry
//
// Inputs are WKT pairs (the committed corpus under
// testdata/fuzz/FuzzDE9IM is drawn from the TIGER generator, so seeds
// look like real benchmark geometry). Unparseable, invalid or empty
// inputs are skipped: the parser and validator have their own fuzz
// targets in internal/geom, and the DE-9IM algebra is only specified on
// non-empty valid geometries.
func FuzzDE9IM(f *testing.F) {
	pairs := [][2]string{
		{"POINT (1 1)", "POINT (1 1)"},
		{"POINT (1 1)", "LINESTRING (0 0, 2 2)"},
		{"LINESTRING (0 0, 2 2)", "LINESTRING (0 2, 2 0)"},
		{"LINESTRING (0 0, 1 0)", "LINESTRING (1 0, 2 0)"},
		{"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))"},
		{"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))"},
		{"POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "LINESTRING (-1 1, 4 1)"},
		{"MULTIPOINT (0 0, 2 2)", "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))"},
		{"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 3 1, 3 3, 1 3, 1 1))", "POINT (2 2)"},
		{"GEOMETRYCOLLECTION (POINT (0 0), LINESTRING (1 1, 2 2))", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"},
	}
	for _, p := range pairs {
		f.Add(p[0], p[1])
	}
	f.Fuzz(func(t *testing.T, wa, wb string) {
		// Text length bounds vertex count, so this also bounds the
		// work inside Relate: the O(n log n) STR bulk load of the
		// segment indexes and the index-probed pair enumeration.
		if len(wa) > 2048 || len(wb) > 2048 {
			t.Skip("oversized input")
		}
		a := parseUsable(t, wa)
		b := parseUsable(t, wb)

		inter := Intersects(a, b)
		if Intersects(b, a) != inter {
			t.Errorf("Intersects not symmetric: %s vs %s", geom.WKT(a), geom.WKT(b))
		}
		if Disjoint(a, b) == inter {
			t.Errorf("Disjoint != !Intersects: %s vs %s", geom.WKT(a), geom.WKT(b))
		}
		if !Equals(a, a) {
			t.Errorf("Equals not reflexive: %s", geom.WKT(a))
		}
		if Equals(a, b) != Equals(b, a) {
			t.Errorf("Equals not symmetric: %s vs %s", geom.WKT(a), geom.WKT(b))
		}
		if Touches(a, b) != Touches(b, a) {
			t.Errorf("Touches not symmetric: %s vs %s", geom.WKT(a), geom.WKT(b))
		}
		if Overlaps(a, b) != Overlaps(b, a) {
			t.Errorf("Overlaps not symmetric: %s vs %s", geom.WKT(a), geom.WKT(b))
		}
		if Contains(a, b) != Within(b, a) {
			t.Errorf("Contains/Within duality broken: %s vs %s", geom.WKT(a), geom.WKT(b))
		}
		if Covers(a, b) != CoveredBy(b, a) {
			t.Errorf("Covers/CoveredBy duality broken: %s vs %s", geom.WKT(a), geom.WKT(b))
		}
		if m, n := Relate(a, b), Relate(b, a).Transpose(); m != n {
			t.Errorf("Relate(a,b) != Relate(b,a)^T: %s vs %s for %s / %s",
				m, n, geom.WKT(a), geom.WKT(b))
		}
	})
}

// parseUsable parses WKT and skips the test for inputs outside the
// fuzz target's domain (unparseable, invalid, or empty geometry).
func parseUsable(t *testing.T, w string) geom.Geometry {
	t.Helper()
	g, err := geom.ParseWKT(w)
	if err != nil {
		t.Skip("unparseable input")
	}
	if g.IsEmpty() || !geom.IsValid(g) {
		t.Skip("empty or invalid geometry")
	}
	return g
}
