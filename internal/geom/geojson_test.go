package geom

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestGeoJSONRoundTrip(t *testing.T) {
	geoms := []Geometry{
		Pt(1.5, -2),
		MultiPoint{Pt(0, 0), Pt(3, 4)},
		LineString{{0, 0}, {1, 1}, {2, 0}},
		MultiLineString{{{0, 0}, {1, 1}}, {{5, 5}, {6, 6}}},
		unitSquare(),
		donut(),
		MultiPolygon{unitSquare(), squareAt(5, 5, 2)},
		Collection{Pt(1, 2), LineString{{0, 0}, {1, 1}}},
		Collection{},
	}
	for _, g := range geoms {
		data, err := MarshalGeoJSON(g)
		if err != nil {
			t.Fatalf("%s: marshal: %v", WKT(g), err)
		}
		back, err := UnmarshalGeoJSON(data)
		if err != nil {
			t.Fatalf("%s: unmarshal %s: %v", WKT(g), data, err)
		}
		if WKT(back) != WKT(g) {
			t.Errorf("round trip: %s -> %s -> %s", WKT(g), data, WKT(back))
		}
	}
}

func TestGeoJSONExactShapes(t *testing.T) {
	data, err := MarshalGeoJSON(Pt(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"type":"Point","coordinates":[1,2]}` {
		t.Errorf("point json = %s", data)
	}
	data, _ = MarshalGeoJSON(unitSquare())
	var obj map[string]any
	if err := json.Unmarshal(data, &obj); err != nil {
		t.Fatal(err)
	}
	if obj["type"] != "Polygon" {
		t.Errorf("polygon json = %s", data)
	}
}

func TestGeoJSONEmptyPoint(t *testing.T) {
	data, err := MarshalGeoJSON(Point{Empty: true})
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGeoJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsEmpty() {
		t.Errorf("empty point round trip = %s", WKT(back))
	}
}

func TestGeoJSONParseExtras(t *testing.T) {
	// Altitude ordinates are discarded.
	g, err := UnmarshalGeoJSON([]byte(`{"type":"Point","coordinates":[1,2,99]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p := g.(Point); !p.Equal(Coord{1, 2}) {
		t.Errorf("3D point = %v", p)
	}
	// Nested collections parse.
	g, err = UnmarshalGeoJSON([]byte(`{"type":"GeometryCollection","geometries":[
		{"type":"GeometryCollection","geometries":[{"type":"Point","coordinates":[7,8]}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	inner := g.(Collection)[0].(Collection)[0].(Point)
	if !inner.Equal(Coord{7, 8}) {
		t.Errorf("nested = %v", inner)
	}
}

func TestGeoJSONParseErrors(t *testing.T) {
	bad := []struct {
		json   string
		reason string
	}{
		{`not json`, "parse"},
		{`{"type":"Hexagon","coordinates":[]}`, "unknown"},
		{`{"type":"Point"}`, "missing coordinates"},
		{`{"type":"Point","coordinates":[1]}`, "2 ordinates"},
		{`{"type":"MultiPoint","coordinates":[[1]]}`, "2 ordinates"},
		{`{"type":"Polygon","coordinates":"nope"}`, "cannot unmarshal"},
	}
	for _, tc := range bad {
		_, err := UnmarshalGeoJSON([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: parsed, expected error about %q", tc.json, tc.reason)
			continue
		}
		if !strings.Contains(err.Error(), tc.reason) {
			t.Errorf("%s: error %q does not mention %q", tc.json, err, tc.reason)
		}
	}
	// Recursion bomb is rejected.
	deep := strings.Repeat(`{"type":"GeometryCollection","geometries":[`, 40) +
		`{"type":"Point","coordinates":[0,0]}` + strings.Repeat(`]}`, 40)
	if _, err := UnmarshalGeoJSON([]byte(deep)); err == nil {
		t.Error("deep nesting accepted")
	}
}

func TestGeoJSONPreservesStructure(t *testing.T) {
	d := donut()
	data, _ := MarshalGeoJSON(d)
	back, _ := UnmarshalGeoJSON(data)
	if !reflect.DeepEqual(back, d) {
		t.Errorf("donut structure changed: %s", WKT(back))
	}
}
