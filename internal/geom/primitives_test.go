package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrient(t *testing.T) {
	a, b := Coord{0, 0}, Coord{2, 0}
	if Orient(a, b, Coord{1, 1}) != CounterClockwise {
		t.Error("left turn should be CCW")
	}
	if Orient(a, b, Coord{1, -1}) != Clockwise {
		t.Error("right turn should be CW")
	}
	if Orient(a, b, Coord{5, 0}) != Collinear {
		t.Error("collinear point should be Collinear")
	}
}

func TestOnSegment(t *testing.T) {
	a, b := Coord{0, 0}, Coord{4, 4}
	if !OnSegment(Coord{2, 2}, a, b) {
		t.Error("midpoint should be on segment")
	}
	if !OnSegment(a, a, b) || !OnSegment(b, a, b) {
		t.Error("endpoints should be on segment")
	}
	if OnSegment(Coord{5, 5}, a, b) {
		t.Error("collinear point beyond endpoint must be off segment")
	}
	if OnSegment(Coord{2, 2.5}, a, b) {
		t.Error("off-line point must be off segment")
	}
}

func TestSegSegIntersectionProperCross(t *testing.T) {
	kind, p, _ := SegSegIntersection(Coord{0, 0}, Coord{2, 2}, Coord{0, 2}, Coord{2, 0})
	if kind != SegPoint {
		t.Fatalf("kind = %v, want SegPoint", kind)
	}
	if math.Abs(p.X-1) > 1e-12 || math.Abs(p.Y-1) > 1e-12 {
		t.Errorf("intersection point = %v, want (1,1)", p)
	}
}

func TestSegSegIntersectionEndpointTouch(t *testing.T) {
	// q1 lies on the interior of p.
	kind, p, _ := SegSegIntersection(Coord{0, 0}, Coord{4, 0}, Coord{2, 0}, Coord{2, 3})
	if kind != SegPoint || !p.Equal(Coord{2, 0}) {
		t.Errorf("T-touch: kind=%v p=%v", kind, p)
	}
	// Shared endpoint only.
	kind, p, _ = SegSegIntersection(Coord{0, 0}, Coord{1, 1}, Coord{1, 1}, Coord{2, 0})
	if kind != SegPoint || !p.Equal(Coord{1, 1}) {
		t.Errorf("shared endpoint: kind=%v p=%v", kind, p)
	}
}

func TestSegSegIntersectionCollinear(t *testing.T) {
	// Overlapping collinear segments.
	kind, lo, hi := SegSegIntersection(Coord{0, 0}, Coord{4, 0}, Coord{2, 0}, Coord{6, 0})
	if kind != SegOverlap {
		t.Fatalf("kind = %v, want SegOverlap", kind)
	}
	if !lo.Equal(Coord{2, 0}) || !hi.Equal(Coord{4, 0}) {
		t.Errorf("overlap = %v..%v, want (2,0)..(4,0)", lo, hi)
	}
	// Collinear but disjoint.
	kind, _, _ = SegSegIntersection(Coord{0, 0}, Coord{1, 0}, Coord{2, 0}, Coord{3, 0})
	if kind != SegDisjoint {
		t.Errorf("disjoint collinear: kind = %v", kind)
	}
	// Collinear touching at one point.
	kind, p, _ := SegSegIntersection(Coord{0, 0}, Coord{2, 0}, Coord{2, 0}, Coord{5, 0})
	if kind != SegPoint || !p.Equal(Coord{2, 0}) {
		t.Errorf("collinear touch: kind=%v p=%v", kind, p)
	}
	// Vertical collinear overlap (exercise the Y-dominant projection).
	kind, lo, hi = SegSegIntersection(Coord{1, 0}, Coord{1, 5}, Coord{1, 3}, Coord{1, 9})
	if kind != SegOverlap || !lo.Equal(Coord{1, 3}) || !hi.Equal(Coord{1, 5}) {
		t.Errorf("vertical overlap: kind=%v %v..%v", kind, lo, hi)
	}
}

func TestSegSegIntersectionDisjoint(t *testing.T) {
	kind, _, _ := SegSegIntersection(Coord{0, 0}, Coord{1, 0}, Coord{0, 1}, Coord{1, 1})
	if kind != SegDisjoint {
		t.Errorf("parallel separated: kind = %v", kind)
	}
	// Collinear extension beyond segment (no contact).
	kind, _, _ = SegSegIntersection(Coord{0, 0}, Coord{1, 0}, Coord{2, 0}, Coord{2.5, 1})
	if kind != SegDisjoint {
		t.Errorf("beyond-end configuration: kind = %v", kind)
	}
}

func TestPointInRing(t *testing.T) {
	sq := Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}}
	tests := []struct {
		p    Coord
		want PointInRingResult
	}{
		{Coord{2, 2}, RingInterior},
		{Coord{0, 0}, RingBoundary},
		{Coord{2, 0}, RingBoundary},
		{Coord{4, 4}, RingBoundary},
		{Coord{5, 2}, RingExterior},
		{Coord{-1, 0}, RingExterior},
		{Coord{2, 4.000001}, RingExterior},
	}
	for _, tc := range tests {
		if got := PointInRing(tc.p, sq); got != tc.want {
			t.Errorf("PointInRing(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPointInRingConcave(t *testing.T) {
	// A "C" shaped concave ring.
	c := Ring{{0, 0}, {6, 0}, {6, 2}, {2, 2}, {2, 4}, {6, 4}, {6, 6}, {0, 6}, {0, 0}}
	if PointInRing(Coord{4, 3}, c) != RingExterior {
		t.Error("point in the concavity should be exterior")
	}
	if PointInRing(Coord{1, 3}, c) != RingInterior {
		t.Error("point in the spine should be interior")
	}
	if PointInRing(Coord{4, 1}, c) != RingInterior {
		t.Error("point in lower arm should be interior")
	}
}

func TestPointInRingVertexRay(t *testing.T) {
	// Ray passing exactly through a vertex must not double count.
	diamond := Ring{{0, -2}, {2, 0}, {0, 2}, {-2, 0}, {0, -2}}
	if PointInRing(Coord{-1, 0}, diamond) != RingInterior {
		t.Error("point left of vertex-level should be interior")
	}
	if PointInRing(Coord{-3, 0}, diamond) != RingExterior {
		t.Error("point outside at vertex level should be exterior")
	}
}

func TestRingOrientation(t *testing.T) {
	ccw := Ring{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}}
	if !RingIsCCW(ccw) {
		t.Error("CCW ring misclassified")
	}
	cw := append(Ring(nil), ccw...)
	ReverseCoords(cw)
	if RingIsCCW(cw) {
		t.Error("CW ring misclassified")
	}
	if got := RingSignedArea2(ccw); got != 2 {
		t.Errorf("signed area*2 = %v, want 2", got)
	}
	if got := RingSignedArea2(cw); got != -2 {
		t.Errorf("reversed signed area*2 = %v, want -2", got)
	}
}

func TestDistPointSegment(t *testing.T) {
	a, b := Coord{0, 0}, Coord{4, 0}
	if d := DistPointSegment(Coord{2, 3}, a, b); d != 3 {
		t.Errorf("perpendicular distance = %v, want 3", d)
	}
	if d := DistPointSegment(Coord{-3, 4}, a, b); d != 5 {
		t.Errorf("beyond-endpoint distance = %v, want 5", d)
	}
	if d := DistPointSegment(Coord{2, 0}, a, b); d != 0 {
		t.Errorf("on-segment distance = %v, want 0", d)
	}
	// Degenerate zero-length segment.
	if d := DistPointSegment(Coord{3, 4}, a, a); d != 5 {
		t.Errorf("point-to-point distance = %v, want 5", d)
	}
}

func TestClosestPointOnSegment(t *testing.T) {
	a, b := Coord{0, 0}, Coord{10, 0}
	p, tt := ClosestPointOnSegment(Coord{3, 7}, a, b)
	if !p.Equal(Coord{3, 0}) || math.Abs(tt-0.3) > 1e-12 {
		t.Errorf("closest = %v t=%v", p, tt)
	}
	p, tt = ClosestPointOnSegment(Coord{-5, 2}, a, b)
	if !p.Equal(a) || tt != 0 {
		t.Errorf("clamped closest = %v t=%v", p, tt)
	}
}

func TestDistSegSeg(t *testing.T) {
	if d := DistSegSeg(Coord{0, 0}, Coord{2, 2}, Coord{0, 2}, Coord{2, 0}); d != 0 {
		t.Errorf("crossing segments distance = %v, want 0", d)
	}
	if d := DistSegSeg(Coord{0, 0}, Coord{1, 0}, Coord{0, 2}, Coord{1, 2}); d != 2 {
		t.Errorf("parallel distance = %v, want 2", d)
	}
}

func TestSegSegPropertySymmetry(t *testing.T) {
	// Intersection classification is symmetric in segment order. Exact
	// integer coordinates keep orientation tests exact, so the property
	// holds without a tolerance.
	norm := func(v float64) float64 {
		return float64(int64(math.Float64bits(v)%21) - 10)
	}
	prop := func(a, b, c, d, e, f, g, h float64) bool {
		p1 := Coord{norm(a), norm(b)}
		p2 := Coord{norm(c), norm(d)}
		q1 := Coord{norm(e), norm(f)}
		q2 := Coord{norm(g), norm(h)}
		k1, _, _ := SegSegIntersection(p1, p2, q1, q2)
		k2, _, _ := SegSegIntersection(q1, q2, p1, p2)
		return k1 == k2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSegSegDegeneratePointSegment(t *testing.T) {
	// A zero-length segment has no direction, so the collinear-overlap
	// projection axis must come from the other segment: the point
	// (-10,-3) is on the line of the vertical segment x=-10, y∈[-6,-5]
	// but outside its range, and both argument orders must agree.
	pt := Coord{-10, -3}
	q1, q2 := Coord{-10, -5}, Coord{-10, -6}
	if k, _, _ := SegSegIntersection(pt, pt, q1, q2); k != SegDisjoint {
		t.Errorf("point vs vertical segment: kind=%v, want disjoint", k)
	}
	if k, _, _ := SegSegIntersection(q1, q2, pt, pt); k != SegDisjoint {
		t.Errorf("vertical segment vs point: kind=%v, want disjoint", k)
	}
	// The same point inside the range is a contact either way around.
	on := Coord{-10, -5.5}
	if k, i0, _ := SegSegIntersection(on, on, q1, q2); k != SegPoint || !i0.Equal(on) {
		t.Errorf("point on segment: kind=%v at %v, want point contact at %v", k, i0, on)
	}
	if k, i0, _ := SegSegIntersection(q1, q2, on, on); k != SegPoint || !i0.Equal(on) {
		t.Errorf("segment vs point on it: kind=%v at %v, want point contact at %v", k, i0, on)
	}
}

func TestSegDistPropertyConsistency(t *testing.T) {
	// DistSegSeg is zero iff SegSegIntersection reports contact (on a
	// small integer grid where arithmetic is exact).
	norm := func(v float64) float64 {
		return float64(int64(math.Float64bits(v)%13) - 6)
	}
	prop := func(a, b, c, d, e, f, g, h float64) bool {
		p1 := Coord{norm(a), norm(b)}
		p2 := Coord{norm(c), norm(d)}
		q1 := Coord{norm(e), norm(f)}
		q2 := Coord{norm(g), norm(h)}
		kind, _, _ := SegSegIntersection(p1, p2, q1, q2)
		dist := DistSegSeg(p1, p2, q1, q2)
		return (kind != SegDisjoint) == (dist == 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
