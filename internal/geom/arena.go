package geom

import "fmt"

// CoordArena is a bump allocator for the coordinate and ring slices a
// WKB decode produces. Batch scans decode many short-lived geometries
// per morsel (filter operands that never leave the batch); taking their
// backing arrays from a reusable arena instead of the heap removes the
// dominant per-row allocation of the refine path. Reset recycles every
// block at once, so geometries decoded from an arena are only valid
// until the owner resets it — callers must not let them escape the
// batch that produced them.
//
// The zero value is ready to use. A CoordArena is not safe for
// concurrent use; each worker owns its own.
type CoordArena struct {
	coords    []Coord
	coordOff  int
	coordCap  int // high-water mark, so Reset sizes the block once
	rings     []Ring
	ringOff   int
	ringCap   int
	overflows int // slices larger than a block, served by the heap
}

// arenaBlockCoords sizes fresh coordinate blocks (64 KiB of Coords).
const arenaBlockCoords = 4096

// Coords returns an n-element coordinate slice backed by the arena.
// Slices larger than a block fall back to the heap (they would defeat
// reuse anyway).
func (a *CoordArena) Coords(n int) []Coord {
	if n > arenaBlockCoords {
		a.overflows++
		return make([]Coord, n)
	}
	if a.coordOff+n > len(a.coords) {
		a.coords = make([]Coord, arenaBlockCoords)
		a.coordOff = 0
		a.coordCap += arenaBlockCoords
	}
	s := a.coords[a.coordOff : a.coordOff+n : a.coordOff+n]
	a.coordOff += n
	return s
}

// Rings returns an n-element ring slice backed by the arena.
func (a *CoordArena) Rings(n int) []Ring {
	if n > arenaBlockCoords {
		a.overflows++
		return make([]Ring, n)
	}
	if a.ringOff+n > len(a.rings) {
		block := arenaBlockCoords / 8
		if block < n {
			block = n
		}
		a.rings = make([]Ring, block)
		a.ringOff = 0
		a.ringCap += block
	}
	s := a.rings[a.ringOff : a.ringOff+n : a.ringOff+n]
	a.ringOff += n
	return s
}

// Reset makes every previously returned slice reusable. Geometries
// decoded from the arena before the call must no longer be read.
func (a *CoordArena) Reset() {
	a.coordOff = 0
	a.ringOff = 0
	// Blocks abandoned mid-use (a fresh block was started while the old
	// one still had tail space) are simply dropped; the current block is
	// reused from offset zero.
}

// Overflows reports how many slices exceeded the block size and were
// heap-allocated instead (diagnostics for the batch experiments).
func (a *CoordArena) Overflows() int { return a.overflows }

// UnmarshalWKBArena decodes a WKB-encoded geometry like UnmarshalWKB,
// but takes coordinate and ring backing arrays from the arena. The
// returned geometry aliases arena memory: it is valid only until the
// arena is reset and must never be stored beyond the current batch.
func UnmarshalWKBArena(data []byte, a *CoordArena) (Geometry, error) {
	d := &wkbDecoder{data: data, arena: a}
	g, err := d.geometry(0)
	if err != nil {
		return nil, err
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptWKB, len(data)-d.pos)
	}
	return g, nil
}
