package geom

import "math"

// Orientation classifies the turn a→b→c.
type Orientation int

// Turn directions returned by Orient.
const (
	Collinear        Orientation = 0
	CounterClockwise Orientation = 1
	Clockwise        Orientation = -1
)

// Orient returns the orientation of the ordered triple (a, b, c).
func Orient(a, b, c Coord) Orientation {
	v := crossProduct(a, b, c)
	switch {
	case v > 0:
		return CounterClockwise
	case v < 0:
		return Clockwise
	default:
		return Collinear
	}
}

// crossProduct returns (b-a) × (c-a). The computation uses a compensated
// form to reduce rounding error on nearly collinear inputs.
func crossProduct(a, b, c Coord) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// OnSegment reports whether p lies on the closed segment a–b. The test
// requires exact collinearity, which holds for shared vertices and for
// points produced by exact midpoint construction in tests.
func OnSegment(p, a, b Coord) bool {
	if Orient(a, b, p) != Collinear {
		return false
	}
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// SegKind classifies how two segments intersect.
type SegKind int

// Segment intersection classifications returned by SegSegIntersection.
const (
	SegDisjoint SegKind = iota // no shared point
	SegPoint                   // exactly one shared point
	SegOverlap                 // a collinear overlap of positive length
)

// SegSegIntersection computes the intersection of closed segments p1–p2
// and q1–q2. For SegPoint the single intersection point is returned in
// i0. For SegOverlap the overlapping sub-segment endpoints are returned
// in i0 and i1.
func SegSegIntersection(p1, p2, q1, q2 Coord) (kind SegKind, i0, i1 Coord) {
	o1 := Orient(p1, p2, q1)
	o2 := Orient(p1, p2, q2)
	o3 := Orient(q1, q2, p1)
	o4 := Orient(q1, q2, p2)

	if o1 != o2 && o3 != o4 && o1 != Collinear && o2 != Collinear &&
		o3 != Collinear && o4 != Collinear {
		// Proper crossing: solve for the intersection point.
		return SegPoint, segCrossPoint(p1, p2, q1, q2), Coord{}
	}

	// Collinear/touching handling.
	if o1 == Collinear && o2 == Collinear && o3 == Collinear && o4 == Collinear {
		// All four points are collinear: compute the 1D overlap.
		return collinearOverlap(p1, p2, q1, q2)
	}

	// Endpoint touching: one endpoint lies on the other segment.
	switch {
	case o1 == Collinear && OnSegment(q1, p1, p2):
		return SegPoint, q1, Coord{}
	case o2 == Collinear && OnSegment(q2, p1, p2):
		return SegPoint, q2, Coord{}
	case o3 == Collinear && OnSegment(p1, q1, q2):
		return SegPoint, p1, Coord{}
	case o4 == Collinear && OnSegment(p2, q1, q2):
		return SegPoint, p2, Coord{}
	}

	if o1 != o2 && o3 != o4 {
		// Mixed case: a proper crossing where one orientation test was
		// exactly zero was handled above; the remaining case is a true
		// interior crossing with no collinearities.
		return SegPoint, segCrossPoint(p1, p2, q1, q2), Coord{}
	}
	return SegDisjoint, Coord{}, Coord{}
}

// segCrossPoint computes the crossing point of two properly intersecting
// segments using the parametric form.
func segCrossPoint(p1, p2, q1, q2 Coord) Coord {
	d1 := p2.Sub(p1)
	d2 := q2.Sub(q1)
	denom := d1.X*d2.Y - d1.Y*d2.X
	if ExactEq(denom, 0) {
		// Degenerate (parallel) input: fall back to a midpoint of the
		// closest endpoints. Callers only reach this under rounding.
		return Coord{(p1.X + q1.X) / 2, (p1.Y + q1.Y) / 2}
	}
	t := ((q1.X-p1.X)*d2.Y - (q1.Y-p1.Y)*d2.X) / denom
	return Coord{p1.X + t*d1.X, p1.Y + t*d1.Y}
}

// collinearOverlap computes the shared portion of two collinear segments.
func collinearOverlap(p1, p2, q1, q2 Coord) (SegKind, Coord, Coord) {
	// Project onto the dominant axis of the shared line to order points.
	// Taking the max over both segments keeps the choice meaningful when
	// one segment is degenerate (a point has no direction of its own).
	dx := math.Max(math.Abs(p2.X-p1.X), math.Abs(q2.X-q1.X))
	dy := math.Max(math.Abs(p2.Y-p1.Y), math.Abs(q2.Y-q1.Y))
	useX := dx >= dy
	key := func(c Coord) float64 {
		if useX {
			return c.X
		}
		return c.Y
	}
	pLo, pHi := p1, p2
	if key(pLo) > key(pHi) {
		pLo, pHi = pHi, pLo
	}
	qLo, qHi := q1, q2
	if key(qLo) > key(qHi) {
		qLo, qHi = qHi, qLo
	}
	lo, hi := pLo, pHi
	if key(qLo) > key(lo) {
		lo = qLo
	}
	if key(qHi) < key(hi) {
		hi = qHi
	}
	switch {
	case key(lo) > key(hi):
		return SegDisjoint, Coord{}, Coord{}
	case lo.Equal(hi) || ExactEq(key(lo), key(hi)):
		return SegPoint, lo, Coord{}
	default:
		return SegOverlap, lo, hi
	}
}

// PointInRingResult classifies a point's position relative to a ring.
type PointInRingResult int

// Results of PointInRing.
const (
	RingExterior PointInRingResult = iota
	RingBoundary
	RingInterior
)

// PointInRing locates p relative to the closed ring using the crossing
// number algorithm with exact boundary detection.
func PointInRing(p Coord, ring []Coord) PointInRingResult {
	n := len(ring)
	if n < 3 {
		return RingExterior
	}
	inside := false
	for i := 0; i < n-1; i++ {
		a, b := ring[i], ring[i+1]
		if OnSegment(p, a, b) {
			return RingBoundary
		}
		// Ray casting toward +X, counting crossings with half-open
		// edge intervals to handle vertices exactly once.
		if (a.Y > p.Y) != (b.Y > p.Y) {
			t := (p.Y - a.Y) / (b.Y - a.Y)
			x := a.X + t*(b.X-a.X)
			if x > p.X {
				inside = !inside
			}
		}
	}
	if inside {
		return RingInterior
	}
	return RingExterior
}

// RingSignedArea2 returns twice the signed area of the ring: positive for
// counter-clockwise winding, negative for clockwise.
func RingSignedArea2(ring []Coord) float64 {
	var sum float64
	for i := 0; i < len(ring)-1; i++ {
		a, b := ring[i], ring[i+1]
		sum += a.X*b.Y - b.X*a.Y
	}
	return sum
}

// RingIsCCW reports whether the ring winds counter-clockwise.
func RingIsCCW(ring []Coord) bool { return RingSignedArea2(ring) > 0 }

// ReverseCoords reverses the coordinate slice in place.
func ReverseCoords(cs []Coord) {
	for i, j := 0, len(cs)-1; i < j; i, j = i+1, j-1 {
		cs[i], cs[j] = cs[j], cs[i]
	}
}

// DistPointSegment returns the distance from p to the closed segment a–b.
func DistPointSegment(p, a, b Coord) float64 {
	d := b.Sub(a)
	l2 := d.X*d.X + d.Y*d.Y
	if ExactEq(l2, 0) {
		return math.Hypot(p.X-a.X, p.Y-a.Y)
	}
	t := ((p.X-a.X)*d.X + (p.Y-a.Y)*d.Y) / l2
	t = math.Max(0, math.Min(1, t))
	proj := Coord{a.X + t*d.X, a.Y + t*d.Y}
	return math.Hypot(p.X-proj.X, p.Y-proj.Y)
}

// ClosestPointOnSegment returns the point of segment a–b closest to p and
// the parameter t in [0,1] locating it along the segment.
func ClosestPointOnSegment(p, a, b Coord) (Coord, float64) {
	d := b.Sub(a)
	l2 := d.X*d.X + d.Y*d.Y
	if ExactEq(l2, 0) {
		return a, 0
	}
	t := ((p.X-a.X)*d.X + (p.Y-a.Y)*d.Y) / l2
	t = math.Max(0, math.Min(1, t))
	return Coord{a.X + t*d.X, a.Y + t*d.Y}, t
}

// DistSegSeg returns the distance between two closed segments.
func DistSegSeg(p1, p2, q1, q2 Coord) float64 {
	if kind, _, _ := SegSegIntersection(p1, p2, q1, q2); kind != SegDisjoint {
		return 0
	}
	d := DistPointSegment(p1, q1, q2)
	if v := DistPointSegment(p2, q1, q2); v < d {
		d = v
	}
	if v := DistPointSegment(q1, p1, p2); v < d {
		d = v
	}
	if v := DistPointSegment(q2, p1, p2); v < d {
		d = v
	}
	return d
}

// Dist returns the Euclidean distance between two coordinates.
func Dist(a, b Coord) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }
