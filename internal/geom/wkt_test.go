package geom

import (
	"strings"
	"testing"
)

func TestWKTRoundTrip(t *testing.T) {
	wkts := []string{
		"POINT (1 2)",
		"POINT EMPTY",
		"LINESTRING (0 0, 1 1, 2 0)",
		"LINESTRING EMPTY",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))",
		"POLYGON EMPTY",
		"MULTIPOINT ((1 2), (3 4))",
		"MULTIPOINT EMPTY",
		"MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 2))",
		"MULTILINESTRING EMPTY",
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 7 5, 7 7, 5 7, 5 5)))",
		"MULTIPOLYGON EMPTY",
		"GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))",
		"GEOMETRYCOLLECTION EMPTY",
		"POINT (-1.5 2.25)",
		"POINT (1e-07 2500000)",
	}
	for _, s := range wkts {
		g, err := ParseWKT(s)
		if err != nil {
			t.Errorf("ParseWKT(%q): %v", s, err)
			continue
		}
		out := WKT(g)
		g2, err := ParseWKT(out)
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", out, s, err)
			continue
		}
		if WKT(g2) != out {
			t.Errorf("WKT not stable: %q -> %q -> %q", s, out, WKT(g2))
		}
	}
}

func TestWKTExactOutput(t *testing.T) {
	tests := []struct {
		g    Geometry
		want string
	}{
		{Pt(1, 2), "POINT (1 2)"},
		{Point{Empty: true}, "POINT EMPTY"},
		{LineString{{0, 0}, {1, 1}}, "LINESTRING (0 0, 1 1)"},
		{unitSquare(), "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"},
		{MultiPoint{Pt(1, 2)}, "MULTIPOINT ((1 2))"},
		{MultiPoint{{Empty: true}}, "MULTIPOINT (EMPTY)"},
		{Collection{}, "GEOMETRYCOLLECTION EMPTY"},
		{nil, "GEOMETRYCOLLECTION EMPTY"},
	}
	for _, tc := range tests {
		if got := WKT(tc.g); got != tc.want {
			t.Errorf("WKT = %q, want %q", got, tc.want)
		}
	}
}

func TestParseWKTFlexibleSyntax(t *testing.T) {
	// Case-insensitivity, odd whitespace, bare multipoint coordinates.
	variants := []string{
		"point(1 2)",
		"  POINT  ( 1   2 ) ",
		"Point (1 2)",
	}
	for _, s := range variants {
		g, err := ParseWKT(s)
		if err != nil {
			t.Errorf("ParseWKT(%q): %v", s, err)
			continue
		}
		if p, ok := g.(Point); !ok || !p.Equal(Coord{1, 2}) {
			t.Errorf("ParseWKT(%q) = %v", s, g)
		}
	}
	g, err := ParseWKT("MULTIPOINT (1 2, 3 4)")
	if err != nil {
		t.Fatalf("bare multipoint: %v", err)
	}
	if mp := g.(MultiPoint); len(mp) != 2 || !mp[1].Equal(Coord{3, 4}) {
		t.Errorf("bare multipoint = %v", g)
	}
}

func TestParseWKTErrors(t *testing.T) {
	bad := []struct {
		wkt    string
		reason string
	}{
		{"", "tag"},
		{"CIRCLE (0 0, 1)", "unknown"},
		{"POINT", `expected "("`},
		{"POINT (1)", "number"},
		{"POINT (1 2", `expected ")"`},
		{"POINT (1 2) junk", "trailing"},
		{"POINT Z (1 2 3)", "modifier"},
		{"POINT (1 2 3)", "3D"},
		{"LINESTRING (0 0)", "at least 2"},
		{"POLYGON ((0 0, 1 1, 0 0))", "at least 4"},
		{"POLYGON ((0 0, 1 0, 1 1, 0 1))", "not closed"},
		{"POINT (a b)", "number"},
	}
	for _, tc := range bad {
		_, err := ParseWKT(tc.wkt)
		if err == nil {
			t.Errorf("ParseWKT(%q): expected error containing %q", tc.wkt, tc.reason)
			continue
		}
		if !strings.Contains(err.Error(), tc.reason) {
			t.Errorf("ParseWKT(%q) error %q does not mention %q", tc.wkt, err, tc.reason)
		}
	}
}

func TestMustParseWKTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseWKT did not panic on bad input")
		}
	}()
	MustParseWKT("NOT A GEOMETRY")
}

func TestParseWKTPreservesPrecision(t *testing.T) {
	const x = 123456.789012345
	g := MustParseWKT(WKT(Pt(x, -x)))
	p := g.(Point)
	if p.X != x || p.Y != -x {
		t.Errorf("precision lost: %v", p)
	}
}
