package geom

import "math"

// Rect is an axis-aligned rectangle (a minimum bounding rectangle). The
// empty rectangle is represented with inverted bounds; use EmptyRect to
// construct it and IsEmpty to test for it.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the canonical empty rectangle.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// RectFromPoints returns the smallest rectangle containing both coords.
func RectFromPoints(a, b Coord) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X), MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X), MaxY: math.Max(a.Y, b.Y),
	}
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the extent along X (zero if empty).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the extent along Y (zero if empty).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the rectangle's area (zero if empty).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Perimeter returns the rectangle's perimeter (zero if empty).
func (r Rect) Perimeter() float64 { return 2 * (r.Width() + r.Height()) }

// Center returns the rectangle's center point.
func (r Rect) Center() Coord {
	return Coord{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, o.MinX), MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX), MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// Intersect returns the overlap of r and o (possibly empty).
func (r Rect) Intersect(o Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, o.MinX), MinY: math.Max(r.MinY, o.MinY),
		MaxX: math.Min(r.MaxX, o.MaxX), MaxY: math.Min(r.MaxY, o.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Intersects reports whether r and o share at least one point (boundary
// contact counts).
func (r Rect) Intersects(o Rect) bool {
	if r.IsEmpty() || o.IsEmpty() {
		return false
	}
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX &&
		r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// ContainsCoord reports whether the coordinate lies inside or on the
// boundary of r.
func (r Rect) ContainsCoord(c Coord) bool {
	return c.X >= r.MinX && c.X <= r.MaxX && c.Y >= r.MinY && c.Y <= r.MaxY
}

// ContainsCoordStrict reports whether the coordinate lies strictly inside r.
func (r Rect) ContainsCoordStrict(c Coord) bool {
	return c.X > r.MinX && c.X < r.MaxX && c.Y > r.MinY && c.Y < r.MaxY
}

// ContainsRect reports whether o lies entirely within r (boundaries may
// touch). An empty o is contained in any non-empty r.
func (r Rect) ContainsRect(o Rect) bool {
	if r.IsEmpty() {
		return false
	}
	if o.IsEmpty() {
		return true
	}
	return o.MinX >= r.MinX && o.MaxX <= r.MaxX &&
		o.MinY >= r.MinY && o.MaxY <= r.MaxY
}

// Expand returns r grown by d on every side. Expanding an empty rectangle
// yields an empty rectangle.
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	out := Rect{r.MinX - d, r.MinY - d, r.MaxX + d, r.MaxY + d}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// ExpandCoord returns the smallest rectangle containing r and c.
func (r Rect) ExpandCoord(c Coord) Rect {
	return r.Union(Rect{c.X, c.Y, c.X, c.Y})
}

// DistanceToCoord returns the minimum distance from the rectangle to the
// coordinate (zero if the coordinate is inside).
func (r Rect) DistanceToCoord(c Coord) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(r.MinX-c.X, c.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-c.Y, c.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// Distance returns the minimum distance between two rectangles (zero if
// they intersect).
func (r Rect) Distance(o Rect) float64 {
	if r.IsEmpty() || o.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(o.MinX-r.MaxX, r.MinX-o.MaxX))
	dy := math.Max(0, math.Max(o.MinY-r.MaxY, r.MinY-o.MaxY))
	return math.Hypot(dx, dy)
}

// ToPolygon converts the rectangle to a counter-clockwise Polygon.
// Degenerate (zero-extent) rectangles still yield a closed ring.
func (r Rect) ToPolygon() Polygon {
	if r.IsEmpty() {
		return Polygon{}
	}
	return Polygon{Ring{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
		{r.MinX, r.MinY},
	}}
}
