package geom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EnvelopeWKB computes the envelope of a WKB-encoded geometry in one
// pass over the encoded bytes, without materializing coordinate slices
// or geometry values. The result is identical (bit for bit) to
// UnmarshalWKB(data) followed by Envelope() — including the
// outer-ring-only polygon envelope and the NaN-ordinate empty-point
// convention — so scan prefilters can use it interchangeably with the
// decoded form.
func EnvelopeWKB(data []byte) (Rect, error) {
	d := &wkbDecoder{data: data}
	r, err := d.envelope(0)
	if err != nil {
		return EmptyRect(), err
	}
	if d.pos != len(data) {
		return EmptyRect(), fmt.Errorf("%w: %d trailing bytes", ErrCorruptWKB, len(data)-d.pos)
	}
	return r, nil
}

func (d *wkbDecoder) envelope(depth int) (Rect, error) {
	if depth > maxWKBNesting {
		return EmptyRect(), fmt.Errorf("%w: nesting deeper than %d", ErrCorruptWKB, maxWKBNesting)
	}
	bo, err := d.byteOrder()
	if err != nil {
		return EmptyRect(), err
	}
	typ, err := d.uint32(bo)
	if err != nil {
		return EmptyRect(), err
	}
	switch Type(typ) {
	case TypePoint:
		x, err := d.float64(bo)
		if err != nil {
			return EmptyRect(), err
		}
		y, err := d.float64(bo)
		if err != nil {
			return EmptyRect(), err
		}
		if math.IsNaN(x) && math.IsNaN(y) {
			return EmptyRect(), nil
		}
		return Rect{x, y, x, y}, nil

	case TypeLineString:
		return d.coordsEnvelope(bo)

	case TypePolygon:
		n, err := d.uint32(bo)
		if err != nil {
			return EmptyRect(), err
		}
		if int(n) > d.remaining()/4 {
			return EmptyRect(), fmt.Errorf("%w: ring count %d exceeds input", ErrCorruptWKB, n)
		}
		// A polygon's envelope is its outer ring's; the holes still have
		// to be walked to keep the decoder position honest.
		env := EmptyRect()
		for i := uint32(0); i < n; i++ {
			r, err := d.coordsEnvelope(bo)
			if err != nil {
				return EmptyRect(), err
			}
			if i == 0 {
				env = r
			}
		}
		return env, nil

	case TypeMultiPoint, TypeMultiLineString, TypeMultiPolygon, TypeGeometryCollection:
		n, err := d.uint32(bo)
		if err != nil {
			return EmptyRect(), err
		}
		if int(n) > d.remaining()/5 {
			return EmptyRect(), fmt.Errorf("%w: element count %d exceeds input", ErrCorruptWKB, n)
		}
		env := EmptyRect()
		for i := uint32(0); i < n; i++ {
			sub, err := d.envelope(depth + 1)
			if err != nil {
				return EmptyRect(), err
			}
			env = env.Union(sub)
		}
		return env, nil

	default:
		return EmptyRect(), fmt.Errorf("%w: unknown geometry type code %d", ErrCorruptWKB, typ)
	}
}

// coordsEnvelope folds a WKB coordinate sequence into its envelope with
// the same first-coordinate initialization and min/max comparisons as
// the in-memory coordsEnvelope, so NaN ordinates propagate identically.
func (d *wkbDecoder) coordsEnvelope(bo binary.ByteOrder) (Rect, error) {
	n, err := d.uint32(bo)
	if err != nil {
		return EmptyRect(), err
	}
	if int(n) > d.remaining()/16 {
		return EmptyRect(), fmt.Errorf("%w: coordinate count %d exceeds input", ErrCorruptWKB, n)
	}
	if n == 0 {
		return EmptyRect(), nil
	}
	x, err := d.float64(bo)
	if err != nil {
		return EmptyRect(), err
	}
	y, err := d.float64(bo)
	if err != nil {
		return EmptyRect(), err
	}
	r := Rect{x, y, x, y}
	for i := uint32(1); i < n; i++ {
		if x, err = d.float64(bo); err != nil {
			return EmptyRect(), err
		}
		if y, err = d.float64(bo); err != nil {
			return EmptyRect(), err
		}
		if x < r.MinX {
			r.MinX = x
		}
		if x > r.MaxX {
			r.MaxX = x
		}
		if y < r.MinY {
			r.MinY = y
		}
		if y > r.MaxY {
			r.MaxY = y
		}
	}
	return r, nil
}
