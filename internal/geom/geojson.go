package geom

import (
	"encoding/json"
	"fmt"
)

// geoJSON is the wire structure for all geometry types.
type geoJSON struct {
	Type        string            `json:"type"`
	Coordinates json.RawMessage   `json:"coordinates,omitempty"`
	Geometries  []json.RawMessage `json:"geometries,omitempty"`
}

// MarshalGeoJSON serializes the geometry as RFC 7946 GeoJSON. Empty
// points (which GeoJSON cannot express) encode as an empty
// GeometryCollection.
func MarshalGeoJSON(g Geometry) ([]byte, error) {
	obj, err := toGeoJSON(g)
	if err != nil {
		return nil, err
	}
	return json.Marshal(obj)
}

func toGeoJSON(g Geometry) (*geoJSON, error) {
	enc := func(v any) (json.RawMessage, error) {
		b, err := json.Marshal(v)
		return json.RawMessage(b), err
	}
	switch t := g.(type) {
	case Point:
		if t.Empty {
			return &geoJSON{Type: "GeometryCollection", Geometries: []json.RawMessage{}}, nil
		}
		c, err := enc(coordJSON(t.Coord))
		if err != nil {
			return nil, err
		}
		return &geoJSON{Type: "Point", Coordinates: c}, nil
	case MultiPoint:
		cs := make([][2]float64, 0, len(t))
		for _, p := range t {
			if !p.Empty {
				cs = append(cs, coordJSON(p.Coord))
			}
		}
		c, err := enc(cs)
		if err != nil {
			return nil, err
		}
		return &geoJSON{Type: "MultiPoint", Coordinates: c}, nil
	case LineString:
		c, err := enc(coordsJSON(t))
		if err != nil {
			return nil, err
		}
		return &geoJSON{Type: "LineString", Coordinates: c}, nil
	case MultiLineString:
		lines := make([][][2]float64, len(t))
		for i, l := range t {
			lines[i] = coordsJSON(l)
		}
		c, err := enc(lines)
		if err != nil {
			return nil, err
		}
		return &geoJSON{Type: "MultiLineString", Coordinates: c}, nil
	case Polygon:
		c, err := enc(polyJSON(t))
		if err != nil {
			return nil, err
		}
		return &geoJSON{Type: "Polygon", Coordinates: c}, nil
	case MultiPolygon:
		polys := make([][][][2]float64, len(t))
		for i, p := range t {
			polys[i] = polyJSON(p)
		}
		c, err := enc(polys)
		if err != nil {
			return nil, err
		}
		return &geoJSON{Type: "MultiPolygon", Coordinates: c}, nil
	case Collection:
		subs := make([]json.RawMessage, 0, len(t))
		for _, sub := range t {
			b, err := MarshalGeoJSON(sub)
			if err != nil {
				return nil, err
			}
			subs = append(subs, json.RawMessage(b))
		}
		return &geoJSON{Type: "GeometryCollection", Geometries: subs}, nil
	default:
		return nil, fmt.Errorf("geom: cannot encode %T as GeoJSON", g)
	}
}

func coordJSON(c Coord) [2]float64 { return [2]float64{c.X, c.Y} }

func coordsJSON(cs []Coord) [][2]float64 {
	out := make([][2]float64, len(cs))
	for i, c := range cs {
		out[i] = coordJSON(c)
	}
	return out
}

func polyJSON(p Polygon) [][][2]float64 {
	out := make([][][2]float64, len(p))
	for i, r := range p {
		out[i] = coordsJSON(r)
	}
	return out
}

// UnmarshalGeoJSON parses an RFC 7946 GeoJSON geometry object. Position
// arrays may carry extra ordinates (altitude), which are discarded.
func UnmarshalGeoJSON(data []byte) (Geometry, error) {
	var obj geoJSON
	if err := json.Unmarshal(data, &obj); err != nil {
		return nil, fmt.Errorf("geom: parse GeoJSON: %w", err)
	}
	return fromGeoJSON(&obj, 0)
}

const maxGeoJSONNesting = 32

func fromGeoJSON(obj *geoJSON, depth int) (Geometry, error) {
	if depth > maxGeoJSONNesting {
		return nil, fmt.Errorf("geom: GeoJSON nesting deeper than %d", maxGeoJSONNesting)
	}
	dec := func(v any) error {
		if obj.Coordinates == nil {
			return fmt.Errorf("geom: GeoJSON %s missing coordinates", obj.Type)
		}
		return json.Unmarshal(obj.Coordinates, v)
	}
	switch obj.Type {
	case "Point":
		var c []float64
		if err := dec(&c); err != nil {
			return nil, err
		}
		if len(c) < 2 {
			return nil, fmt.Errorf("geom: GeoJSON point needs 2 ordinates")
		}
		return Pt(c[0], c[1]), nil
	case "MultiPoint":
		var cs [][]float64
		if err := dec(&cs); err != nil {
			return nil, err
		}
		mp := make(MultiPoint, 0, len(cs))
		for _, c := range cs {
			if len(c) < 2 {
				return nil, fmt.Errorf("geom: GeoJSON position needs 2 ordinates")
			}
			mp = append(mp, Pt(c[0], c[1]))
		}
		return mp, nil
	case "LineString":
		var cs [][]float64
		if err := dec(&cs); err != nil {
			return nil, err
		}
		return LineString(positions(cs)), nil
	case "MultiLineString":
		var ls [][][]float64
		if err := dec(&ls); err != nil {
			return nil, err
		}
		ml := make(MultiLineString, 0, len(ls))
		for _, l := range ls {
			ml = append(ml, LineString(positions(l)))
		}
		return ml, nil
	case "Polygon":
		var rings [][][]float64
		if err := dec(&rings); err != nil {
			return nil, err
		}
		return polyFromPositions(rings), nil
	case "MultiPolygon":
		var polys [][][][]float64
		if err := dec(&polys); err != nil {
			return nil, err
		}
		mp := make(MultiPolygon, 0, len(polys))
		for _, rings := range polys {
			mp = append(mp, polyFromPositions(rings))
		}
		return mp, nil
	case "GeometryCollection":
		col := make(Collection, 0, len(obj.Geometries))
		for _, raw := range obj.Geometries {
			var sub geoJSON
			if err := json.Unmarshal(raw, &sub); err != nil {
				return nil, fmt.Errorf("geom: parse GeoJSON member: %w", err)
			}
			g, err := fromGeoJSON(&sub, depth+1)
			if err != nil {
				return nil, err
			}
			col = append(col, g)
		}
		return col, nil
	default:
		return nil, fmt.Errorf("geom: unknown GeoJSON type %q", obj.Type)
	}
}

func positions(cs [][]float64) []Coord {
	out := make([]Coord, 0, len(cs))
	for _, c := range cs {
		if len(c) >= 2 {
			out = append(out, Coord{X: c[0], Y: c[1]})
		}
	}
	return out
}

func polyFromPositions(rings [][][]float64) Polygon {
	p := make(Polygon, 0, len(rings))
	for _, r := range rings {
		p = append(p, Ring(positions(r)))
	}
	return p
}
