package geom

import (
	"testing"
)

// The fuzz targets assert the parser trilogy never panics and that
// anything successfully parsed round-trips through its writer. Run with
// `go test -fuzz FuzzParseWKT ./internal/geom` for continuous fuzzing;
// plain `go test` executes the seed corpus.

func FuzzParseWKT(f *testing.F) {
	seeds := []string{
		"POINT (1 2)",
		"POINT EMPTY",
		"LINESTRING (0 0, 1 1)",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))",
		"MULTIPOINT (1 2, 3 4)",
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))",
		"GEOMETRYCOLLECTION (POINT (1 2), GEOMETRYCOLLECTION EMPTY)",
		"POINT (1e308 -1e308)",
		"POINT (",
		"POLYGON ((0 0))",
		"LINESTRING (0 0, 1 1) garbage",
		"  point  ( 1   2 )  ",
		"POINT (1.5.5 2)",
		"GEOMETRYCOLLECTION (GEOMETRYCOLLECTION (GEOMETRYCOLLECTION (POINT (0 0))))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		g, err := ParseWKT(s)
		if err != nil {
			return
		}
		// Parsed geometries must serialize and re-parse to the same text.
		out := WKT(g)
		g2, err := ParseWKT(out)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", out, err)
		}
		if WKT(g2) != out {
			t.Fatalf("unstable WKT: %q -> %q", out, WKT(g2))
		}
	})
}

func FuzzUnmarshalWKB(f *testing.F) {
	for _, g := range []Geometry{
		Pt(1, 2),
		LineString{{0, 0}, {1, 1}},
		Polygon{Ring{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}}},
		MultiPolygon{},
		Collection{Pt(0, 0), MultiPoint{Pt(1, 1)}},
	} {
		f.Add(MarshalWKB(g))
	}
	f.Add([]byte{})
	f.Add([]byte{1, 7, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := UnmarshalWKB(data)
		if err != nil {
			return
		}
		// Decoded geometries re-encode and decode losslessly.
		out := MarshalWKB(g)
		g2, err := UnmarshalWKB(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if WKT(g2) != WKT(g) {
			t.Fatalf("unstable WKB: %s vs %s", WKT(g), WKT(g2))
		}
	})
}

func FuzzUnmarshalGeoJSON(f *testing.F) {
	seeds := []string{
		`{"type":"Point","coordinates":[1,2]}`,
		`{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,0]]]}`,
		`{"type":"GeometryCollection","geometries":[]}`,
		`{"type":"MultiLineString","coordinates":[[[0,0],[1,1]]]}`,
		`{"type":"Point"}`,
		`{"type":"Point","coordinates":[1]}`,
		`[]`,
		`{"type":"GeometryCollection","geometries":[{"type":"Point","coordinates":[0,0]}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := UnmarshalGeoJSON(data)
		if err != nil {
			return
		}
		out, err := MarshalGeoJSON(g)
		if err != nil {
			t.Fatalf("re-marshal of %s failed: %v", WKT(g), err)
		}
		if _, err := UnmarshalGeoJSON(out); err != nil {
			t.Fatalf("re-parse of %s failed: %v", out, err)
		}
	})
}
