package geom

import (
	"testing"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypePoint:              "POINT",
		TypeLineString:         "LINESTRING",
		TypePolygon:            "POLYGON",
		TypeMultiPoint:         "MULTIPOINT",
		TypeMultiLineString:    "MULTILINESTRING",
		TypeMultiPolygon:       "MULTIPOLYGON",
		TypeGeometryCollection: "GEOMETRYCOLLECTION",
		Type(99):               "UNKNOWN(99)",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func unitSquare() Polygon {
	return Polygon{Ring{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}}}
}

func squareAt(x, y, side float64) Polygon {
	return Polygon{Ring{
		{x, y}, {x + side, y}, {x + side, y + side}, {x, y + side}, {x, y},
	}}
}

// donut returns a square with a square hole.
func donut() Polygon {
	return Polygon{
		Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}},
		Ring{{4, 4}, {6, 4}, {6, 6}, {4, 6}, {4, 4}},
	}
}

func TestEnvelopes(t *testing.T) {
	tests := []struct {
		name string
		g    Geometry
		want Rect
	}{
		{"point", Pt(3, 4), Rect{3, 4, 3, 4}},
		{"linestring", LineString{{0, 0}, {2, 5}, {-1, 3}}, Rect{-1, 0, 2, 5}},
		{"polygon", unitSquare(), Rect{0, 0, 1, 1}},
		{"multipoint", MultiPoint{Pt(1, 1), Pt(-2, 4)}, Rect{-2, 1, 1, 4}},
		{"multilinestring", MultiLineString{{{0, 0}, {1, 1}}, {{5, 5}, {6, 7}}}, Rect{0, 0, 6, 7}},
		{"multipolygon", MultiPolygon{unitSquare(), squareAt(5, 5, 2)}, Rect{0, 0, 7, 7}},
		{"collection", Collection{Pt(0, 0), LineString{{3, 3}, {4, 9}}}, Rect{0, 0, 4, 9}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Envelope(); got != tc.want {
				t.Errorf("Envelope() = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestEmptyGeometries(t *testing.T) {
	empties := []Geometry{
		Point{Empty: true},
		MultiPoint{},
		LineString{},
		MultiLineString{},
		Polygon{},
		MultiPolygon{},
		Collection{},
	}
	for _, g := range empties {
		if !g.IsEmpty() {
			t.Errorf("%s: IsEmpty() = false, want true", g.GeomType())
		}
		if !g.Envelope().IsEmpty() {
			t.Errorf("%s: Envelope().IsEmpty() = false, want true", g.GeomType())
		}
		if g.NumCoords() != 0 {
			t.Errorf("%s: NumCoords() = %d, want 0", g.GeomType(), g.NumCoords())
		}
	}
}

func TestNonEmptyGeometries(t *testing.T) {
	nonEmpties := []struct {
		g Geometry
		n int
	}{
		{Pt(1, 2), 1},
		{MultiPoint{Pt(1, 2), Pt(3, 4)}, 2},
		{LineString{{0, 0}, {1, 1}}, 2},
		{unitSquare(), 5},
		{donut(), 10},
		{Collection{Pt(0, 0), unitSquare()}, 6},
	}
	for _, tc := range nonEmpties {
		if tc.g.IsEmpty() {
			t.Errorf("%s: IsEmpty() = true, want false", tc.g.GeomType())
		}
		if got := tc.g.NumCoords(); got != tc.n {
			t.Errorf("%s: NumCoords() = %d, want %d", tc.g.GeomType(), got, tc.n)
		}
	}
}

func TestDimension(t *testing.T) {
	tests := []struct {
		g    Geometry
		want int
	}{
		{Pt(0, 0), 0},
		{MultiPoint{Pt(0, 0)}, 0},
		{LineString{{0, 0}, {1, 1}}, 1},
		{MultiLineString{{{0, 0}, {1, 1}}}, 1},
		{unitSquare(), 2},
		{MultiPolygon{unitSquare()}, 2},
		{Collection{Pt(0, 0), LineString{{0, 0}, {1, 1}}}, 1},
		{Collection{Pt(0, 0), unitSquare()}, 2},
	}
	for _, tc := range tests {
		if got := tc.g.Dimension(); got != tc.want {
			t.Errorf("%s: Dimension() = %d, want %d", tc.g.GeomType(), got, tc.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	ls := LineString{{0, 0}, {1, 1}}
	cl := ls.Clone().(LineString)
	cl[0].X = 99
	if ls[0].X == 99 {
		t.Error("Clone shares backing storage with original LineString")
	}

	poly := donut()
	pc := poly.Clone().(Polygon)
	pc[1][0].X = 99
	if poly[1][0].X == 99 {
		t.Error("Clone shares backing storage with original Polygon")
	}

	col := Collection{LineString{{0, 0}, {1, 1}}}
	cc := col.Clone().(Collection)
	cc[0].(LineString)[0].X = 99
	if col[0].(LineString)[0].X == 99 {
		t.Error("Clone shares backing storage with original Collection")
	}
}

func TestLineStringIsClosed(t *testing.T) {
	if (LineString{{0, 0}, {1, 1}}).IsClosed() {
		t.Error("open linestring reported closed")
	}
	if !(LineString{{0, 0}, {1, 0}, {1, 1}, {0, 0}}).IsClosed() {
		t.Error("closed linestring reported open")
	}
	if (LineString{{0, 0}, {0, 0}}).IsClosed() {
		t.Error("degenerate 2-point loop must not count as closed")
	}
}

func TestPolygonShellHoles(t *testing.T) {
	d := donut()
	if len(d.Shell()) != 5 {
		t.Errorf("Shell() has %d coords, want 5", len(d.Shell()))
	}
	if len(d.Holes()) != 1 {
		t.Fatalf("Holes() has %d rings, want 1", len(d.Holes()))
	}
	var empty Polygon
	if empty.Shell() != nil {
		t.Error("empty polygon Shell() should be nil")
	}
	if empty.Holes() != nil {
		t.Error("empty polygon Holes() should be nil")
	}
}

func TestCoordArithmetic(t *testing.T) {
	a := Coord{1, 2}
	b := Coord{3, 5}
	if got := b.Sub(a); got != (Coord{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Add(b); got != (Coord{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(2); got != (Coord{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if !a.Equal(Coord{1, 2}) || a.Equal(b) {
		t.Error("Equal misbehaves")
	}
}
