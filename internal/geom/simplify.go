package geom

// Simplify returns a simplified copy of the geometry using the
// Douglas–Peucker algorithm with the given distance tolerance. Points
// are returned unchanged; linestrings keep their endpoints; rings keep
// at least four coordinates (degenerating rings are dropped, which can
// empty a polygon). A non-positive tolerance returns a clone.
func Simplify(g Geometry, tolerance float64) Geometry {
	if g == nil {
		return nil
	}
	if tolerance <= 0 {
		return g.Clone()
	}
	switch t := g.(type) {
	case Point, MultiPoint:
		return g.Clone()
	case LineString:
		return LineString(simplifyCoords(t, tolerance, 2))
	case MultiLineString:
		out := make(MultiLineString, 0, len(t))
		for _, l := range t {
			s := simplifyCoords(l, tolerance, 2)
			if len(s) >= 2 {
				out = append(out, LineString(s))
			}
		}
		return out
	case Polygon:
		return simplifyPolygon(t, tolerance)
	case MultiPolygon:
		out := make(MultiPolygon, 0, len(t))
		for _, p := range t {
			if sp := simplifyPolygon(p, tolerance); !sp.IsEmpty() {
				out = append(out, sp)
			}
		}
		return out
	case Collection:
		out := make(Collection, 0, len(t))
		for _, sub := range t {
			out = append(out, Simplify(sub, tolerance))
		}
		return out
	default:
		return g.Clone()
	}
}

func simplifyPolygon(p Polygon, tolerance float64) Polygon {
	var out Polygon
	for i, r := range p {
		s := simplifyRing(r, tolerance)
		if len(s) < 4 {
			if i == 0 {
				return Polygon{} // shell collapsed: polygon vanishes
			}
			continue // hole collapsed: drop it
		}
		out = append(out, Ring(s))
	}
	return out
}

// simplifyRing simplifies a closed ring, keeping closure. The ring is
// cut at its start vertex; if the result degenerates below 4 coords the
// caller drops it.
func simplifyRing(r Ring, tolerance float64) []Coord {
	if len(r) < 4 {
		return nil
	}
	s := simplifyCoords(r, tolerance, 3)
	if len(s) < 4 || !s[0].Equal(s[len(s)-1]) {
		return nil
	}
	return s
}

// simplifyCoords runs Douglas–Peucker keeping at least minKeep interior
// structure (endpoints always survive).
func simplifyCoords(cs []Coord, tolerance float64, minKeep int) []Coord {
	n := len(cs)
	if n <= minKeep {
		out := make([]Coord, n)
		copy(out, cs)
		return out
	}
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true
	dpMark(cs, 0, n-1, tolerance, keep)
	out := make([]Coord, 0, n)
	for i, k := range keep {
		if k {
			out = append(out, cs[i])
		}
	}
	return out
}

// dpMark marks the coordinates to keep between endpoints lo and hi.
func dpMark(cs []Coord, lo, hi int, tolerance float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	maxDist := -1.0
	maxIdx := -1
	for i := lo + 1; i < hi; i++ {
		d := DistPointSegment(cs[i], cs[lo], cs[hi])
		if d > maxDist {
			maxDist = d
			maxIdx = i
		}
	}
	if maxDist > tolerance {
		keep[maxIdx] = true
		dpMark(cs, lo, maxIdx, tolerance, keep)
		dpMark(cs, maxIdx, hi, tolerance, keep)
	}
}
