package geom

import (
	"math"
	"strings"
	"testing"
)

func TestValidateValidGeometries(t *testing.T) {
	valid := []Geometry{
		Pt(1, 2),
		Point{Empty: true},
		LineString{{0, 0}, {1, 1}},
		LineString{},
		unitSquare(),
		donut(),
		Polygon{},
		MultiPolygon{unitSquare(), squareAt(10, 10, 1)},
		Collection{Pt(0, 0), unitSquare()},
	}
	for _, g := range valid {
		if err := Validate(g); err != nil {
			t.Errorf("%s: unexpected error: %v", WKT(g), err)
		}
	}
}

func TestValidateInvalidGeometries(t *testing.T) {
	bowtie := Polygon{Ring{{0, 0}, {4, 0}, {1, 3}, {3, 3}, {0, 0}}}
	tests := []struct {
		name   string
		g      Geometry
		reason string
	}{
		{"nan point", Pt(math.NaN(), 0), "non-finite"},
		{"inf line", LineString{{0, 0}, {math.Inf(1), 1}}, "non-finite"},
		{"one-coord line", LineString{{0, 0}}, "need >= 2"},
		{"zero-length line", LineString{{1, 1}, {1, 1}}, "zero length"},
		{"open ring", Polygon{Ring{{0, 0}, {1, 0}, {1, 1}, {0, 1}}}, "not closed"},
		{"tiny ring", Polygon{Ring{{0, 0}, {1, 0}, {0, 0}}}, "coordinate"},
		{"zero-area ring", Polygon{Ring{{0, 0}, {1, 1}, {2, 2}, {0, 0}}}, "zero area"},
		{"bowtie", bowtie, "self-intersection"},
		{"hole outside", Polygon{
			Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}},
			Ring{{10, 10}, {12, 10}, {12, 12}, {10, 12}, {10, 10}},
		}, "outside shell"},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.g)
			if err == nil {
				t.Fatalf("expected error mentioning %q", tc.reason)
			}
			if !strings.Contains(err.Error(), tc.reason) {
				t.Errorf("error %q does not mention %q", err, tc.reason)
			}
		})
	}
	if IsValid(bowtie) {
		t.Error("IsValid(bowtie) = true")
	}
	if !IsValid(unitSquare()) {
		t.Error("IsValid(square) = false")
	}
}

func TestValidateNestedErrorsArePrefixed(t *testing.T) {
	g := MultiPolygon{unitSquare(), Polygon{Ring{{0, 0}, {1, 1}, {2, 2}, {0, 0}}}}
	err := Validate(g)
	if err == nil || !strings.Contains(err.Error(), "polygon 1") {
		t.Errorf("error should name the failing polygon, got %v", err)
	}
	c := Collection{Pt(0, 0), LineString{{0, 0}}}
	err = Validate(c)
	if err == nil || !strings.Contains(err.Error(), "element 1") {
		t.Errorf("error should name the failing element, got %v", err)
	}
}

func TestBoundary(t *testing.T) {
	// Open line: two endpoints.
	b := Boundary(LineString{{0, 0}, {1, 1}, {2, 2}})
	mp, ok := b.(MultiPoint)
	if !ok || len(mp) != 2 {
		t.Fatalf("line boundary = %v", WKT(b))
	}
	// Closed line: empty boundary.
	closed := LineString{{0, 0}, {1, 0}, {1, 1}, {0, 0}}
	if !Boundary(closed).IsEmpty() {
		t.Error("closed line boundary should be empty")
	}
	// Point: empty boundary.
	if !Boundary(Pt(1, 1)).IsEmpty() {
		t.Error("point boundary should be empty")
	}
	// Polygon: rings.
	pb := Boundary(donut())
	ml, ok := pb.(MultiLineString)
	if !ok || len(ml) != 2 {
		t.Fatalf("donut boundary = %v", WKT(pb))
	}
}

func TestBoundaryMod2Rule(t *testing.T) {
	// Two lines sharing an endpoint: the shared endpoint appears twice
	// (even) so it is NOT on the boundary; the other two are.
	m := MultiLineString{
		{{0, 0}, {1, 1}},
		{{1, 1}, {2, 0}},
	}
	b := Boundary(m).(MultiPoint)
	if len(b) != 2 {
		t.Fatalf("mod-2 boundary has %d points, want 2: %v", len(b), WKT(b))
	}
	for _, p := range b {
		if p.Equal(Coord{1, 1}) {
			t.Error("shared endpoint must not be on the boundary")
		}
	}
	// Three lines at one point: odd count keeps it on the boundary.
	m = append(m, LineString{{1, 1}, {1, 5}})
	b = Boundary(m).(MultiPoint)
	found := false
	for _, p := range b {
		if p.Equal(Coord{1, 1}) {
			found = true
		}
	}
	if !found {
		t.Error("triple junction endpoint should be on the boundary")
	}
}
