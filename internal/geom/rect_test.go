package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 || e.Perimeter() != 0 {
		t.Error("empty rect should have zero measures")
	}
	if e.Intersects(Rect{0, 0, 1, 1}) {
		t.Error("empty rect must not intersect anything")
	}
	if e.ContainsRect(Rect{0, 0, 1, 1}) {
		t.Error("empty rect must not contain anything")
	}
	if !(Rect{0, 0, 1, 1}).ContainsRect(e) {
		t.Error("non-empty rect contains the empty rect")
	}
}

func TestRectUnionIntersect(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	if got := a.Union(b); got != (Rect{0, 0, 3, 3}) {
		t.Errorf("Union = %+v", got)
	}
	if got := a.Intersect(b); got != (Rect{1, 1, 2, 2}) {
		t.Errorf("Intersect = %+v", got)
	}
	c := Rect{5, 5, 6, 6}
	if !a.Intersect(c).IsEmpty() {
		t.Error("disjoint rects should intersect to empty")
	}
	if a.Union(EmptyRect()) != a {
		t.Error("union with empty should be identity")
	}
	if EmptyRect().Union(a) != a {
		t.Error("union with empty should be identity (reversed)")
	}
}

func TestRectIntersectsEdgeTouch(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{1, 0, 2, 1} // shares the x=1 edge
	if !a.Intersects(b) {
		t.Error("edge-touching rects must intersect")
	}
	c := Rect{1, 1, 2, 2} // shares only corner (1,1)
	if !a.Intersects(c) {
		t.Error("corner-touching rects must intersect")
	}
	d := Rect{1.0001, 0, 2, 1}
	if a.Intersects(d) {
		t.Error("separated rects must not intersect")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.ContainsCoord(Coord{0, 0}) || !r.ContainsCoord(Coord{10, 10}) {
		t.Error("boundary coords should be contained")
	}
	if r.ContainsCoordStrict(Coord{0, 5}) {
		t.Error("strict containment must exclude boundary")
	}
	if !r.ContainsCoordStrict(Coord{5, 5}) {
		t.Error("interior coord should be strictly contained")
	}
	if !r.ContainsRect(Rect{2, 2, 8, 8}) {
		t.Error("inner rect should be contained")
	}
	if r.ContainsRect(Rect{2, 2, 11, 8}) {
		t.Error("overflowing rect must not be contained")
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if got := r.Expand(1); got != (Rect{-1, -1, 3, 3}) {
		t.Errorf("Expand(1) = %+v", got)
	}
	if got := r.Expand(-2); !got.IsEmpty() {
		t.Errorf("over-shrunk rect should be empty, got %+v", got)
	}
	if !EmptyRect().Expand(5).IsEmpty() {
		t.Error("expanding the empty rect should stay empty")
	}
	if got := r.ExpandCoord(Coord{5, -1}); got != (Rect{0, -1, 5, 2}) {
		t.Errorf("ExpandCoord = %+v", got)
	}
}

func TestRectDistance(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{2, 0, 3, 1}, 1},                    // right gap 1
		{Rect{0, 2, 1, 3}, 1},                    // above gap 1
		{Rect{2, 2, 3, 3}, math.Sqrt2},           // diagonal gap
		{Rect{0.5, 0.5, 0.6, 0.6}, 0},            // inside
		{Rect{1, 1, 2, 2}, 0},                    // corner touch
		{Rect{-4, -5, -3, -4}, math.Hypot(3, 4)}, // diagonal far corner
	}
	for i, tc := range cases {
		if got := a.Distance(tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: Distance = %v, want %v", i, got, tc.want)
		}
	}
	if got := a.DistanceToCoord(Coord{4, 5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("DistanceToCoord = %v, want 5", got)
	}
	if got := a.DistanceToCoord(Coord{0.5, 0.5}); got != 0 {
		t.Errorf("inside coord distance = %v, want 0", got)
	}
}

func TestRectToPolygon(t *testing.T) {
	p := (Rect{0, 0, 2, 3}).ToPolygon()
	if len(p) != 1 || len(p[0]) != 5 {
		t.Fatalf("unexpected polygon shape: %v", p)
	}
	if !RingIsCCW(p[0]) {
		t.Error("rect polygon should be counter-clockwise")
	}
	if got := Area(p); got != 6 {
		t.Errorf("area = %v, want 6", got)
	}
	if len(EmptyRect().ToPolygon()) != 0 {
		t.Error("empty rect should convert to empty polygon")
	}
}

// normRect converts four arbitrary floats into a valid small rectangle.
func normRect(a, b, c, d float64) Rect {
	f := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1000)
	}
	x1, x2 := f(a), f(b)
	y1, y2 := f(c), f(d)
	return Rect{math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2)}
}

func TestRectPropertyUnionContains(t *testing.T) {
	prop := func(a, b, c, d, e, f, g, h float64) bool {
		r1 := normRect(a, b, c, d)
		r2 := normRect(e, f, g, h)
		u := r1.Union(r2)
		return u.ContainsRect(r1) && u.ContainsRect(r2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRectPropertyIntersectSymmetry(t *testing.T) {
	prop := func(a, b, c, d, e, f, g, h float64) bool {
		r1 := normRect(a, b, c, d)
		r2 := normRect(e, f, g, h)
		if r1.Intersects(r2) != r2.Intersects(r1) {
			return false
		}
		i := r1.Intersect(r2)
		// The intersection must be within both.
		if !i.IsEmpty() && (!r1.ContainsRect(i) || !r2.ContainsRect(i)) {
			return false
		}
		// Intersects agrees with non-empty intersection.
		return r1.Intersects(r2) == !i.IsEmpty()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRectPropertyDistanceZeroIffIntersect(t *testing.T) {
	prop := func(a, b, c, d, e, f, g, h float64) bool {
		r1 := normRect(a, b, c, d)
		r2 := normRect(e, f, g, h)
		if r1.IsEmpty() || r2.IsEmpty() {
			return true
		}
		return (r1.Distance(r2) == 0) == r1.Intersects(r2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
