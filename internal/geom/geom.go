// Package geom provides the planar geometry model used throughout the
// Jackpine reproduction: the seven OGC Simple Features geometry types,
// envelopes, measures (area, length, centroid), low-level computational
// geometry primitives, and WKT/WKB codecs.
//
// Coordinates are planar float64 pairs. Rings follow the Simple Features
// convention: a polygon's exterior ring plus zero or more interior rings
// (holes), each ring closed (first coordinate equals last coordinate).
package geom

import "fmt"

// Type identifies the concrete geometry type, with values matching the
// OGC/WKB geometry type codes.
type Type uint32

// Geometry type codes (identical to the WKB type codes).
const (
	TypePoint              Type = 1
	TypeLineString         Type = 2
	TypePolygon            Type = 3
	TypeMultiPoint         Type = 4
	TypeMultiLineString    Type = 5
	TypeMultiPolygon       Type = 6
	TypeGeometryCollection Type = 7
)

// String returns the WKT keyword for the type.
func (t Type) String() string {
	switch t {
	case TypePoint:
		return "POINT"
	case TypeLineString:
		return "LINESTRING"
	case TypePolygon:
		return "POLYGON"
	case TypeMultiPoint:
		return "MULTIPOINT"
	case TypeMultiLineString:
		return "MULTILINESTRING"
	case TypeMultiPolygon:
		return "MULTIPOLYGON"
	case TypeGeometryCollection:
		return "GEOMETRYCOLLECTION"
	}
	return fmt.Sprintf("UNKNOWN(%d)", uint32(t))
}

// Eps is the absolute tolerance used when comparing derived quantities
// (areas, distances). Raw coordinate comparisons are exact: the data
// generator and codecs preserve coordinates bit-for-bit, so shared
// vertices compare equal without a tolerance.
const Eps = 1e-9

// Coord is a planar coordinate.
type Coord struct {
	X, Y float64
}

// Sub returns c - o as a vector.
func (c Coord) Sub(o Coord) Coord { return Coord{c.X - o.X, c.Y - o.Y} }

// Add returns c + o.
func (c Coord) Add(o Coord) Coord { return Coord{c.X + o.X, c.Y + o.Y} }

// Scale returns c scaled by f.
func (c Coord) Scale(f float64) Coord { return Coord{c.X * f, c.Y * f} }

// Equal reports exact coordinate equality.
func (c Coord) Equal(o Coord) bool { return ExactEq(c.X, o.X) && ExactEq(c.Y, o.Y) }

// Geometry is implemented by all geometry types in this package.
type Geometry interface {
	// GeomType returns the concrete type code.
	GeomType() Type
	// Envelope returns the minimum bounding rectangle. Empty geometries
	// return an empty Rect (see Rect.IsEmpty).
	Envelope() Rect
	// IsEmpty reports whether the geometry contains no coordinates.
	IsEmpty() bool
	// Dimension returns the topological dimension: 0 for points, 1 for
	// curves, 2 for surfaces. Collections return the maximum dimension
	// of their elements; empty geometries return their nominal dimension.
	Dimension() int
	// NumCoords returns the total number of coordinates stored.
	NumCoords() int
	// Clone returns a deep copy.
	Clone() Geometry

	appendWKT(dst []byte) []byte
}

// Point is a zero-dimensional geometry. The zero value is the point (0,0);
// an explicitly empty point (WKT "POINT EMPTY") has Empty set.
type Point struct {
	Coord
	Empty bool
}

// Pt is shorthand for constructing a non-empty Point.
func Pt(x, y float64) Point { return Point{Coord: Coord{x, y}} }

// GeomType implements Geometry.
func (p Point) GeomType() Type { return TypePoint }

// IsEmpty implements Geometry.
func (p Point) IsEmpty() bool { return p.Empty }

// Dimension implements Geometry.
func (p Point) Dimension() int { return 0 }

// NumCoords implements Geometry.
func (p Point) NumCoords() int {
	if p.Empty {
		return 0
	}
	return 1
}

// Envelope implements Geometry.
func (p Point) Envelope() Rect {
	if p.Empty {
		return EmptyRect()
	}
	return Rect{p.X, p.Y, p.X, p.Y}
}

// Clone implements Geometry.
func (p Point) Clone() Geometry { return p }

// MultiPoint is a collection of points.
type MultiPoint []Point

// GeomType implements Geometry.
func (m MultiPoint) GeomType() Type { return TypeMultiPoint }

// IsEmpty implements Geometry.
func (m MultiPoint) IsEmpty() bool {
	for _, p := range m {
		if !p.Empty {
			return false
		}
	}
	return true
}

// Dimension implements Geometry.
func (m MultiPoint) Dimension() int { return 0 }

// NumCoords implements Geometry.
func (m MultiPoint) NumCoords() int {
	n := 0
	for _, p := range m {
		n += p.NumCoords()
	}
	return n
}

// Envelope implements Geometry.
func (m MultiPoint) Envelope() Rect {
	r := EmptyRect()
	for _, p := range m {
		r = r.Union(p.Envelope())
	}
	return r
}

// Clone implements Geometry.
func (m MultiPoint) Clone() Geometry {
	out := make(MultiPoint, len(m))
	copy(out, m)
	return out
}

// LineString is a one-dimensional geometry: a polyline with at least two
// coordinates when non-empty.
type LineString []Coord

// GeomType implements Geometry.
func (l LineString) GeomType() Type { return TypeLineString }

// IsEmpty implements Geometry.
func (l LineString) IsEmpty() bool { return len(l) == 0 }

// Dimension implements Geometry.
func (l LineString) Dimension() int { return 1 }

// NumCoords implements Geometry.
func (l LineString) NumCoords() int { return len(l) }

// Envelope implements Geometry.
func (l LineString) Envelope() Rect { return coordsEnvelope(l) }

// Clone implements Geometry.
func (l LineString) Clone() Geometry {
	out := make(LineString, len(l))
	copy(out, l)
	return out
}

// IsClosed reports whether the linestring's endpoints coincide.
func (l LineString) IsClosed() bool {
	return len(l) >= 3 && l[0].Equal(l[len(l)-1])
}

// MultiLineString is a collection of linestrings.
type MultiLineString []LineString

// GeomType implements Geometry.
func (m MultiLineString) GeomType() Type { return TypeMultiLineString }

// IsEmpty implements Geometry.
func (m MultiLineString) IsEmpty() bool {
	for _, l := range m {
		if !l.IsEmpty() {
			return false
		}
	}
	return true
}

// Dimension implements Geometry.
func (m MultiLineString) Dimension() int { return 1 }

// NumCoords implements Geometry.
func (m MultiLineString) NumCoords() int {
	n := 0
	for _, l := range m {
		n += len(l)
	}
	return n
}

// Envelope implements Geometry.
func (m MultiLineString) Envelope() Rect {
	r := EmptyRect()
	for _, l := range m {
		r = r.Union(l.Envelope())
	}
	return r
}

// Clone implements Geometry.
func (m MultiLineString) Clone() Geometry {
	out := make(MultiLineString, len(m))
	for i, l := range m {
		out[i] = l.Clone().(LineString)
	}
	return out
}

// Ring is a closed sequence of coordinates (first equals last). A valid
// ring has at least four coordinates.
type Ring []Coord

// IsClosed reports whether the ring's endpoints coincide.
func (r Ring) IsClosed() bool {
	return len(r) >= 4 && r[0].Equal(r[len(r)-1])
}

// Envelope returns the ring's bounding rectangle.
func (r Ring) Envelope() Rect { return coordsEnvelope(r) }

// Polygon is a two-dimensional geometry: an exterior ring followed by zero
// or more interior rings (holes).
type Polygon []Ring

// GeomType implements Geometry.
func (p Polygon) GeomType() Type { return TypePolygon }

// IsEmpty implements Geometry.
func (p Polygon) IsEmpty() bool { return len(p) == 0 || len(p[0]) == 0 }

// Dimension implements Geometry.
func (p Polygon) Dimension() int { return 2 }

// NumCoords implements Geometry.
func (p Polygon) NumCoords() int {
	n := 0
	for _, r := range p {
		n += len(r)
	}
	return n
}

// Envelope implements Geometry.
func (p Polygon) Envelope() Rect {
	if p.IsEmpty() {
		return EmptyRect()
	}
	return p[0].Envelope()
}

// Clone implements Geometry.
func (p Polygon) Clone() Geometry {
	out := make(Polygon, len(p))
	for i, r := range p {
		out[i] = append(Ring(nil), r...)
	}
	return out
}

// Shell returns the exterior ring, or nil for an empty polygon.
func (p Polygon) Shell() Ring {
	if len(p) == 0 {
		return nil
	}
	return p[0]
}

// Holes returns the interior rings.
func (p Polygon) Holes() []Ring {
	if len(p) <= 1 {
		return nil
	}
	return p[1:]
}

// MultiPolygon is a collection of polygons.
type MultiPolygon []Polygon

// GeomType implements Geometry.
func (m MultiPolygon) GeomType() Type { return TypeMultiPolygon }

// IsEmpty implements Geometry.
func (m MultiPolygon) IsEmpty() bool {
	for _, p := range m {
		if !p.IsEmpty() {
			return false
		}
	}
	return true
}

// Dimension implements Geometry.
func (m MultiPolygon) Dimension() int { return 2 }

// NumCoords implements Geometry.
func (m MultiPolygon) NumCoords() int {
	n := 0
	for _, p := range m {
		n += p.NumCoords()
	}
	return n
}

// Envelope implements Geometry.
func (m MultiPolygon) Envelope() Rect {
	r := EmptyRect()
	for _, p := range m {
		r = r.Union(p.Envelope())
	}
	return r
}

// Clone implements Geometry.
func (m MultiPolygon) Clone() Geometry {
	out := make(MultiPolygon, len(m))
	for i, p := range m {
		out[i] = p.Clone().(Polygon)
	}
	return out
}

// Collection is a heterogeneous collection of geometries.
type Collection []Geometry

// GeomType implements Geometry.
func (c Collection) GeomType() Type { return TypeGeometryCollection }

// IsEmpty implements Geometry.
func (c Collection) IsEmpty() bool {
	for _, g := range c {
		if !g.IsEmpty() {
			return false
		}
	}
	return true
}

// Dimension implements Geometry.
func (c Collection) Dimension() int {
	d := 0
	for _, g := range c {
		if gd := g.Dimension(); gd > d {
			d = gd
		}
	}
	return d
}

// NumCoords implements Geometry.
func (c Collection) NumCoords() int {
	n := 0
	for _, g := range c {
		n += g.NumCoords()
	}
	return n
}

// Envelope implements Geometry.
func (c Collection) Envelope() Rect {
	r := EmptyRect()
	for _, g := range c {
		r = r.Union(g.Envelope())
	}
	return r
}

// Clone implements Geometry.
func (c Collection) Clone() Geometry {
	out := make(Collection, len(c))
	for i, g := range c {
		out[i] = g.Clone()
	}
	return out
}

func coordsEnvelope(cs []Coord) Rect {
	if len(cs) == 0 {
		return EmptyRect()
	}
	r := Rect{cs[0].X, cs[0].Y, cs[0].X, cs[0].Y}
	for _, c := range cs[1:] {
		if c.X < r.MinX {
			r.MinX = c.X
		}
		if c.X > r.MaxX {
			r.MaxX = c.X
		}
		if c.Y < r.MinY {
			r.MinY = c.Y
		}
		if c.Y > r.MaxY {
			r.MaxY = c.Y
		}
	}
	return r
}

// Compile-time interface checks.
var (
	_ Geometry = Point{}
	_ Geometry = MultiPoint{}
	_ Geometry = LineString{}
	_ Geometry = MultiLineString{}
	_ Geometry = Polygon{}
	_ Geometry = MultiPolygon{}
	_ Geometry = Collection{}
)
