package geom

import "math"

// Distance returns the minimum Euclidean distance between two geometries.
// It returns +Inf if either geometry is empty. Distance is zero whenever
// the geometries intersect (including containment: a point inside a
// polygon is at distance zero from it).
func Distance(a, b Geometry) float64 {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return math.Inf(1)
	}
	// Normalize so the "simpler" type comes first to halve the dispatch.
	best := math.Inf(1)
	forEachPart(a, func(pa Geometry) {
		forEachPart(b, func(pb Geometry) {
			if d := partDistance(pa, pb); d < best {
				best = d
			}
		})
	})
	return best
}

// DWithin reports whether the two geometries lie within distance d of
// each other. It is equivalent to Distance(a, b) <= d but can exit early
// via envelope screening.
func DWithin(a, b Geometry, d float64) bool {
	if a == nil || b == nil || a.IsEmpty() || b.IsEmpty() {
		return false
	}
	if d < 0 {
		return false // distance is non-negative, so nothing is within
	}
	// Two points compare squared distances — the proximity-join hot
	// shape — skipping the envelope detour and the hypot calls.
	if pa, ok := a.(Point); ok {
		if pb, ok := b.(Point); ok {
			dx, dy := pa.X-pb.X, pa.Y-pb.Y
			return dx*dx+dy*dy <= d*d
		}
	}
	if a.Envelope().Distance(b.Envelope()) > d {
		return false
	}
	return Distance(a, b) <= d
}

// forEachPart visits the primitive (non-multi) parts of g.
func forEachPart(g Geometry, fn func(Geometry)) {
	switch t := g.(type) {
	case MultiPoint:
		for _, p := range t {
			if !p.Empty {
				fn(p)
			}
		}
	case MultiLineString:
		for _, l := range t {
			if !l.IsEmpty() {
				fn(l)
			}
		}
	case MultiPolygon:
		for _, p := range t {
			if !p.IsEmpty() {
				fn(p)
			}
		}
	case Collection:
		for _, sub := range t {
			forEachPart(sub, fn)
		}
	default:
		if !g.IsEmpty() {
			fn(g)
		}
	}
}

// partDistance computes distance between primitive geometries.
func partDistance(a, b Geometry) float64 {
	switch ta := a.(type) {
	case Point:
		switch tb := b.(type) {
		case Point:
			return Dist(ta.Coord, tb.Coord)
		case LineString:
			return distPointLine(ta.Coord, tb)
		case Polygon:
			return distPointPolygon(ta.Coord, tb)
		}
	case LineString:
		switch tb := b.(type) {
		case Point:
			return distPointLine(tb.Coord, ta)
		case LineString:
			return distLineLine(ta, tb)
		case Polygon:
			return distLinePolygon(ta, tb)
		}
	case Polygon:
		switch tb := b.(type) {
		case Point:
			return distPointPolygon(tb.Coord, ta)
		case LineString:
			return distLinePolygon(tb, ta)
		case Polygon:
			return distPolygonPolygon(ta, tb)
		}
	}
	return math.Inf(1)
}

func distPointLine(p Coord, l LineString) float64 {
	if len(l) == 1 {
		return Dist(p, l[0])
	}
	best := math.Inf(1)
	for i := 0; i < len(l)-1; i++ {
		if d := DistPointSegment(p, l[i], l[i+1]); d < best {
			best = d
		}
	}
	return best
}

// pointInPolygonLoose reports whether c is inside or on the polygon.
func pointInPolygonLoose(c Coord, p Polygon) bool {
	if len(p) == 0 {
		return false
	}
	switch PointInRing(c, p[0]) {
	case RingExterior:
		return false
	case RingBoundary:
		return true
	}
	for _, hole := range p[1:] {
		if PointInRing(c, hole) == RingInterior {
			return false
		}
	}
	return true
}

func distPointPolygon(c Coord, p Polygon) float64 {
	if pointInPolygonLoose(c, p) {
		return 0
	}
	best := math.Inf(1)
	for _, ring := range p {
		if d := distPointLine(c, LineString(ring)); d < best {
			best = d
		}
	}
	return best
}

func distLineLine(a, b LineString) float64 {
	if len(a) == 1 {
		return distPointLine(a[0], b)
	}
	if len(b) == 1 {
		return distPointLine(b[0], a)
	}
	best := math.Inf(1)
	for i := 0; i < len(a)-1; i++ {
		for j := 0; j < len(b)-1; j++ {
			if d := DistSegSeg(a[i], a[i+1], b[j], b[j+1]); d < best {
				best = d
				if ExactEq(best, 0) {
					return 0
				}
			}
		}
	}
	return best
}

func distLinePolygon(l LineString, p Polygon) float64 {
	if len(p) == 0 || len(l) == 0 {
		return math.Inf(1)
	}
	// Any vertex inside the polygon means contact or containment.
	for _, c := range l {
		if pointInPolygonLoose(c, p) {
			return 0
		}
	}
	best := math.Inf(1)
	for _, ring := range p {
		if d := distLineLine(l, LineString(ring)); d < best {
			best = d
			if ExactEq(best, 0) {
				return 0
			}
		}
	}
	return best
}

func distPolygonPolygon(a, b Polygon) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	// Containment screening: a vertex of one inside the other.
	if pointInPolygonLoose(a[0][0], b) || pointInPolygonLoose(b[0][0], a) {
		return 0
	}
	best := math.Inf(1)
	for _, ra := range a {
		for _, rb := range b {
			if d := distLineLine(LineString(ra), LineString(rb)); d < best {
				best = d
				if ExactEq(best, 0) {
					return 0
				}
			}
		}
	}
	return best
}
