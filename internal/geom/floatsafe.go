// Float comparison helpers. The floatcmp analyzer (internal/lint) flags
// every bare == / != between floating-point values in the geometry kernel
// and internal/topo, because accidental exact comparison after arithmetic
// is the classic source of robustness bugs in computational geometry.
// Comparisons that are *meant* to be exact — degeneracy sentinels,
// envelope identity, detecting an exactly-zero denominator before a
// divide — go through ExactEq so the intent is visible and greppable.
// Tolerance-based checks go through NearEq.
//
// This file is the one place bare float comparison is permitted; the
// analyzer skips it by name.
package geom

import "math"

// ExactEq reports whether a and b compare equal under IEEE-754 ==
// (so NaN != NaN and -0 == +0). Use it only where exact equality is the
// point: comparing against an exact sentinel (0, an untouched copy of an
// input coordinate) or where both operands came from the same computation.
func ExactEq(a, b float64) bool { return a == b }

// NearEq reports whether a and b are within eps of each other. NaN is
// never near anything.
func NearEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
