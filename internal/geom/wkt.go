package geom

import "strconv"

// WKT serializes the geometry to Well-Known Text.
func WKT(g Geometry) string {
	if g == nil {
		return "GEOMETRYCOLLECTION EMPTY"
	}
	return string(g.appendWKT(make([]byte, 0, 64)))
}

func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

func appendCoord(dst []byte, c Coord) []byte {
	dst = appendFloat(dst, c.X)
	dst = append(dst, ' ')
	return appendFloat(dst, c.Y)
}

func appendCoords(dst []byte, cs []Coord) []byte {
	dst = append(dst, '(')
	for i, c := range cs {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = appendCoord(dst, c)
	}
	return append(dst, ')')
}

func (p Point) appendWKT(dst []byte) []byte {
	if p.Empty {
		return append(dst, "POINT EMPTY"...)
	}
	dst = append(dst, "POINT ("...)
	dst = appendCoord(dst, p.Coord)
	return append(dst, ')')
}

func (m MultiPoint) appendWKT(dst []byte) []byte {
	if len(m) == 0 {
		return append(dst, "MULTIPOINT EMPTY"...)
	}
	dst = append(dst, "MULTIPOINT ("...)
	for i, p := range m {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		if p.Empty {
			dst = append(dst, "EMPTY"...)
			continue
		}
		dst = append(dst, '(')
		dst = appendCoord(dst, p.Coord)
		dst = append(dst, ')')
	}
	return append(dst, ')')
}

func (l LineString) appendWKT(dst []byte) []byte {
	if len(l) == 0 {
		return append(dst, "LINESTRING EMPTY"...)
	}
	dst = append(dst, "LINESTRING "...)
	return appendCoords(dst, l)
}

func (m MultiLineString) appendWKT(dst []byte) []byte {
	if len(m) == 0 {
		return append(dst, "MULTILINESTRING EMPTY"...)
	}
	dst = append(dst, "MULTILINESTRING ("...)
	for i, l := range m {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = appendCoords(dst, l)
	}
	return append(dst, ')')
}

func appendPolygonBody(dst []byte, p Polygon) []byte {
	dst = append(dst, '(')
	for i, r := range p {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = appendCoords(dst, r)
	}
	return append(dst, ')')
}

func (p Polygon) appendWKT(dst []byte) []byte {
	if p.IsEmpty() {
		return append(dst, "POLYGON EMPTY"...)
	}
	dst = append(dst, "POLYGON "...)
	return appendPolygonBody(dst, p)
}

func (m MultiPolygon) appendWKT(dst []byte) []byte {
	if len(m) == 0 {
		return append(dst, "MULTIPOLYGON EMPTY"...)
	}
	dst = append(dst, "MULTIPOLYGON ("...)
	for i, p := range m {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = appendPolygonBody(dst, p)
	}
	return append(dst, ')')
}

func (c Collection) appendWKT(dst []byte) []byte {
	if len(c) == 0 {
		return append(dst, "GEOMETRYCOLLECTION EMPTY"...)
	}
	dst = append(dst, "GEOMETRYCOLLECTION ("...)
	for i, g := range c {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		dst = g.appendWKT(dst)
	}
	return append(dst, ')')
}
