package geom

import (
	"math"
	"testing"
)

// TestEnvelopeWKBMatchesDecoded asserts the WKB envelope fast path is
// bit-identical to decoding and calling Envelope(), across every
// geometry kind including the tricky cases: empty points (NaN
// ordinates), polygons with holes (outer-ring-only envelope), and
// nested collections.
func TestEnvelopeWKBMatchesDecoded(t *testing.T) {
	cases := []Geometry{
		Point{Coord: Coord{3, -7}},
		Point{Empty: true},
		LineString{{0, 0}, {10, 5}, {-2, 8}},
		LineString{},
		Polygon{
			Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}},
			// Hole ring deliberately outside the outer envelope's span
			// on purpose-built coordinates: the decoded Envelope() uses
			// only ring 0, and the fast path must match that choice.
			Ring{{2, 2}, {30, 2}, {30, 3}, {2, 3}, {2, 2}},
		},
		Polygon{},
		MultiPoint{{Coord: Coord{1, 1}}, {Coord: Coord{-5, 9}}, {Empty: true}},
		MultiPoint{},
		MultiLineString{{{0, 0}, {1, 1}}, {{5, -5}, {6, 6}}},
		MultiPolygon{
			{Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}}},
			{Ring{{10, 10}, {12, 10}, {12, 12}, {10, 12}, {10, 10}}},
		},
		Collection{
			Point{Coord: Coord{100, 100}},
			LineString{{-50, 0}, {0, -50}},
			Collection{Point{Empty: true}},
		},
		Collection{},
	}
	for _, g := range cases {
		wkb := MarshalWKB(g)
		got, err := EnvelopeWKB(wkb)
		if err != nil {
			t.Errorf("%s: EnvelopeWKB error: %v", WKT(g), err)
			continue
		}
		want := g.Envelope()
		if !rectIdentical(got, want) {
			t.Errorf("%s: EnvelopeWKB = %+v, Envelope() = %+v", WKT(g), got, want)
		}
	}
}

// rectIdentical compares rects bit-for-bit (so ±Inf empty bounds and
// NaN propagation are distinguished, unlike ==).
func rectIdentical(a, b Rect) bool {
	same := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y)
	}
	return same(a.MinX, b.MinX) && same(a.MinY, b.MinY) &&
		same(a.MaxX, b.MaxX) && same(a.MaxY, b.MaxY)
}

func TestEnvelopeWKBRejectsCorruptInput(t *testing.T) {
	valid := MarshalWKB(LineString{{0, 0}, {1, 1}})
	bad := [][]byte{
		nil,
		{},
		valid[:len(valid)-3],          // truncated coordinates
		append(valid[:0:0], valid...), // mutated below
	}
	bad[3] = append([]byte{}, valid...)
	bad[3][0] = 7 // bogus byte-order marker
	for i, data := range bad {
		if _, err := EnvelopeWKB(data); err == nil {
			t.Errorf("case %d: corrupt WKB accepted", i)
		}
	}
	if _, err := EnvelopeWKB(append(valid, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
