package geom

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// TestEnvelopeWKBMatchesDecoded asserts the WKB envelope fast path is
// bit-identical to decoding and calling Envelope(), across every
// geometry kind including the tricky cases: empty points (NaN
// ordinates), polygons with holes (outer-ring-only envelope), and
// nested collections.
func TestEnvelopeWKBMatchesDecoded(t *testing.T) {
	cases := []Geometry{
		Point{Coord: Coord{3, -7}},
		Point{Empty: true},
		LineString{{0, 0}, {10, 5}, {-2, 8}},
		LineString{},
		Polygon{
			Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}},
			// Hole ring deliberately outside the outer envelope's span
			// on purpose-built coordinates: the decoded Envelope() uses
			// only ring 0, and the fast path must match that choice.
			Ring{{2, 2}, {30, 2}, {30, 3}, {2, 3}, {2, 2}},
		},
		Polygon{},
		MultiPoint{{Coord: Coord{1, 1}}, {Coord: Coord{-5, 9}}, {Empty: true}},
		MultiPoint{},
		MultiLineString{{{0, 0}, {1, 1}}, {{5, -5}, {6, 6}}},
		MultiPolygon{
			{Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}}},
			{Ring{{10, 10}, {12, 10}, {12, 12}, {10, 12}, {10, 10}}},
		},
		Collection{
			Point{Coord: Coord{100, 100}},
			LineString{{-50, 0}, {0, -50}},
			Collection{Point{Empty: true}},
		},
		Collection{},
	}
	for _, g := range cases {
		wkb := MarshalWKB(g)
		got, err := EnvelopeWKB(wkb)
		if err != nil {
			t.Errorf("%s: EnvelopeWKB error: %v", WKT(g), err)
			continue
		}
		want := g.Envelope()
		if !rectIdentical(got, want) {
			t.Errorf("%s: EnvelopeWKB = %+v, Envelope() = %+v", WKT(g), got, want)
		}
	}
}

// rectIdentical compares rects bit-for-bit (so ±Inf empty bounds and
// NaN propagation are distinguished, unlike ==).
func rectIdentical(a, b Rect) bool {
	same := func(x, y float64) bool {
		return math.Float64bits(x) == math.Float64bits(y)
	}
	return same(a.MinX, b.MinX) && same(a.MinY, b.MinY) &&
		same(a.MaxX, b.MaxX) && same(a.MaxY, b.MaxY)
}

func TestEnvelopeWKBRejectsCorruptInput(t *testing.T) {
	valid := MarshalWKB(LineString{{0, 0}, {1, 1}})
	bad := [][]byte{
		nil,
		{},
		valid[:len(valid)-3],          // truncated coordinates
		append(valid[:0:0], valid...), // mutated below
	}
	bad[3] = append([]byte{}, valid...)
	bad[3][0] = 7 // bogus byte-order marker
	for i, data := range bad {
		if _, err := EnvelopeWKB(data); err == nil {
			t.Errorf("case %d: corrupt WKB accepted", i)
		}
	}
	if _, err := EnvelopeWKB(append(valid, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestEnvelopeWKBMalformedInputs pins the hostile-input contract: every
// malformed encoding yields an error wrapping ErrCorruptWKB — never a
// panic, never a silent garbage envelope. These byte strings are built
// by hand so each one isolates a single corruption.
func TestEnvelopeWKBMalformedInputs(t *testing.T) {
	// le assembles a little-endian WKB body from the marker, a type
	// code, and raw words.
	le := func(typ uint32, words ...uint32) []byte {
		out := []byte{1}
		out = binary.LittleEndian.AppendUint32(out, typ)
		for _, w := range words {
			out = binary.LittleEndian.AppendUint32(out, w)
		}
		return out
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty input", []byte{}},
		{"byte-order marker only", []byte{1}},
		{"bad byte-order marker", []byte{2, 1, 0, 0, 0}},
		{"truncated type code", []byte{1, 3, 0}},
		{"unknown type code", le(99)},
		{"point with no coordinates", le(uint32(TypePoint))},
		{"point with half a coordinate", append(le(uint32(TypePoint)), 0, 0, 0, 0)},
		{"linestring count overflow", le(uint32(TypeLineString), 0xFFFFFFFF)},
		{"polygon ring-count overflow", le(uint32(TypePolygon), 0xFFFFFFFF)},
		{"collection element-count overflow", le(uint32(TypeGeometryCollection), 0xFFFFFFFF)},
		{"polygon ring truncated after count", le(uint32(TypePolygon), 1)},
		{"multipoint with truncated element", le(uint32(TypeMultiPoint), 1)},
	}
	// Deep nesting: collections-of-collections past the recursion bound.
	deep := []byte(nil)
	for i := 0; i < 64; i++ {
		deep = append(deep, le(uint32(TypeGeometryCollection), 1)...)
	}
	cases = append(cases, struct {
		name string
		data []byte
	}{"nesting past the recursion bound", deep})

	for _, tc := range cases {
		if _, err := EnvelopeWKB(tc.data); !errors.Is(err, ErrCorruptWKB) {
			t.Errorf("%s: error = %v, want ErrCorruptWKB", tc.name, err)
		}
	}

	// A sweep over every proper prefix of a nested valid geometry:
	// truncating anywhere — inside headers, counts, or coordinates —
	// must produce a clean error.
	valid := MarshalWKB(Collection{
		Point{Coord: Coord{1, 2}},
		Polygon{Ring{{0, 0}, {4, 0}, {4, 4}, {0, 0}}},
	})
	for n := 0; n < len(valid); n++ {
		if _, err := EnvelopeWKB(valid[:n]); err == nil {
			t.Errorf("prefix of %d/%d bytes accepted", n, len(valid))
		}
	}

	// A zero-point ring is degenerate but decodable: the fast path must
	// agree with the decoded form rather than erroring or panicking.
	zeroRing := le(uint32(TypePolygon), 1, 0)
	r, err := EnvelopeWKB(zeroRing)
	if err != nil {
		t.Fatalf("zero-point ring: %v", err)
	}
	if !rectIdentical(r, EmptyRect()) {
		t.Errorf("zero-point ring envelope = %+v, want empty", r)
	}
}
