package geom

import (
	"fmt"
	"math"
)

// Validate checks structural validity of the geometry and returns a
// descriptive error for the first violation found, or nil if valid.
//
// Checks performed:
//   - all ordinates are finite;
//   - linestrings have >= 2 coordinates and positive length;
//   - rings are closed, have >= 4 coordinates, and do not self-intersect
//     (adjacent segment contact at shared vertices excepted);
//   - polygon holes lie within the shell and rings do not cross.
func Validate(g Geometry) error {
	switch t := g.(type) {
	case Point:
		if t.Empty {
			return nil
		}
		return checkFinite(t.Coord)
	case MultiPoint:
		for i, p := range t {
			if err := Validate(p); err != nil {
				return fmt.Errorf("point %d: %w", i, err)
			}
		}
		return nil
	case LineString:
		return validateLineString(t)
	case MultiLineString:
		for i, l := range t {
			if err := validateLineString(l); err != nil {
				return fmt.Errorf("linestring %d: %w", i, err)
			}
		}
		return nil
	case Polygon:
		return validatePolygon(t)
	case MultiPolygon:
		for i, p := range t {
			if err := validatePolygon(p); err != nil {
				return fmt.Errorf("polygon %d: %w", i, err)
			}
		}
		return nil
	case Collection:
		for i, sub := range t {
			if err := Validate(sub); err != nil {
				return fmt.Errorf("element %d: %w", i, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("geom: unknown geometry type %T", g)
	}
}

// IsValid reports whether Validate(g) returns nil.
func IsValid(g Geometry) bool { return Validate(g) == nil }

func checkFinite(c Coord) error {
	if math.IsNaN(c.X) || math.IsInf(c.X, 0) || math.IsNaN(c.Y) || math.IsInf(c.Y, 0) {
		return fmt.Errorf("geom: non-finite coordinate (%v, %v)", c.X, c.Y)
	}
	return nil
}

func validateLineString(l LineString) error {
	if len(l) == 0 {
		return nil
	}
	if len(l) < 2 {
		return fmt.Errorf("geom: linestring has %d coordinate(s), need >= 2", len(l))
	}
	for _, c := range l {
		if err := checkFinite(c); err != nil {
			return err
		}
	}
	if ExactEq(coordsLength(l), 0) {
		return fmt.Errorf("geom: linestring has zero length")
	}
	return nil
}

func validateRing(r Ring) error {
	if len(r) < 4 {
		return fmt.Errorf("geom: ring has %d coordinate(s), need >= 4", len(r))
	}
	for _, c := range r {
		if err := checkFinite(c); err != nil {
			return err
		}
	}
	if !r.IsClosed() {
		return fmt.Errorf("geom: ring is not closed")
	}
	if ExactEq(math.Abs(RingSignedArea2(r)), 0) {
		return fmt.Errorf("geom: ring has zero area")
	}
	if err := ringSelfIntersection(r); err != nil {
		return err
	}
	return nil
}

// ringSelfIntersection tests every non-adjacent segment pair for contact.
// O(n^2), acceptable for the ring sizes the engine stores; rings above a
// size threshold use an envelope pre-filter per segment.
func ringSelfIntersection(r Ring) error {
	n := len(r) - 1 // number of segments
	for i := 0; i < n; i++ {
		a1, a2 := r[i], r[i+1]
		env := RectFromPoints(a1, a2)
		for j := i + 1; j < n; j++ {
			// Adjacent segments share exactly one endpoint: skip them,
			// including the wrap pair (last, first).
			if j == i+1 || (i == 0 && j == n-1) {
				continue
			}
			b1, b2 := r[j], r[j+1]
			if !env.Intersects(RectFromPoints(b1, b2)) {
				continue
			}
			if kind, pt, _ := SegSegIntersection(a1, a2, b1, b2); kind != SegDisjoint {
				return fmt.Errorf("geom: ring self-intersection near (%v, %v)", pt.X, pt.Y)
			}
		}
	}
	return nil
}

func validatePolygon(p Polygon) error {
	if p.IsEmpty() {
		return nil
	}
	for i, r := range p {
		if err := validateRing(r); err != nil {
			return fmt.Errorf("ring %d: %w", i, err)
		}
	}
	shell := p[0]
	for i, hole := range p[1:] {
		// Every hole vertex must be inside or on the shell.
		for _, c := range hole {
			if PointInRing(c, shell) == RingExterior {
				return fmt.Errorf("geom: hole %d extends outside shell", i)
			}
		}
		// Hole boundary must not cross the shell boundary.
		if ringsCross(hole, shell) {
			return fmt.Errorf("geom: hole %d crosses shell", i)
		}
	}
	return nil
}

// ringsCross reports whether two rings have a proper (non-endpoint)
// segment crossing.
func ringsCross(a, b Ring) bool {
	for i := 0; i < len(a)-1; i++ {
		envA := RectFromPoints(a[i], a[i+1])
		for j := 0; j < len(b)-1; j++ {
			if !envA.Intersects(RectFromPoints(b[j], b[j+1])) {
				continue
			}
			kind, pt, _ := SegSegIntersection(a[i], a[i+1], b[j], b[j+1])
			if kind == SegPoint {
				// Shared vertices/touches are allowed; a crossing at a
				// non-vertex point is not.
				if !pt.Equal(a[i]) && !pt.Equal(a[i+1]) && !pt.Equal(b[j]) && !pt.Equal(b[j+1]) {
					return true
				}
			}
		}
	}
	return false
}

// Boundary returns the topological boundary of the geometry per the OGC
// combinatorial boundary definition:
//   - points and multipoints have an empty boundary;
//   - a non-closed linestring's boundary is its two endpoints, a closed
//     one's is empty (mod-2 rule for multilinestrings);
//   - a polygon's boundary is its rings as a MultiLineString.
func Boundary(g Geometry) Geometry {
	switch t := g.(type) {
	case Point, MultiPoint:
		return Collection{}
	case LineString:
		if t.IsEmpty() || t.IsClosed() {
			return MultiPoint{}
		}
		return MultiPoint{Point{Coord: t[0]}, Point{Coord: t[len(t)-1]}}
	case MultiLineString:
		// Mod-2 rule: an endpoint is on the boundary iff it is an
		// endpoint of an odd number of component curves.
		counts := make(map[Coord]int)
		for _, l := range t {
			if l.IsEmpty() || l.IsClosed() {
				continue
			}
			counts[l[0]]++
			counts[l[len(l)-1]]++
		}
		var mp MultiPoint
		for c, n := range counts {
			if n%2 == 1 {
				mp = append(mp, Point{Coord: c})
			}
		}
		return mp
	case Polygon:
		ml := make(MultiLineString, 0, len(t))
		for _, r := range t {
			ml = append(ml, LineString(r))
		}
		return ml
	case MultiPolygon:
		var ml MultiLineString
		for _, p := range t {
			for _, r := range p {
				ml = append(ml, LineString(r))
			}
		}
		return ml
	case Collection:
		out := make(Collection, 0, len(t))
		for _, sub := range t {
			out = append(out, Boundary(sub))
		}
		return out
	default:
		return Collection{}
	}
}
