package geom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// WKB byte-order markers.
const (
	wkbBigEndian    = 0
	wkbLittleEndian = 1
)

// ErrCorruptWKB is wrapped by all WKB decode errors.
var ErrCorruptWKB = errors.New("geom: corrupt WKB")

// MarshalWKB serializes the geometry to little-endian Well-Known Binary.
func MarshalWKB(g Geometry) []byte {
	return AppendWKB(make([]byte, 0, wkbSize(g)), g)
}

// AppendWKB appends the little-endian WKB encoding of g to dst.
func AppendWKB(dst []byte, g Geometry) []byte {
	dst = append(dst, wkbLittleEndian)
	dst = appendUint32(dst, uint32(g.GeomType()))
	switch t := g.(type) {
	case Point:
		if t.Empty {
			// Encode the OGC convention for empty points: NaN ordinates.
			dst = appendFloat64(dst, math.NaN())
			dst = appendFloat64(dst, math.NaN())
			return dst
		}
		dst = appendFloat64(dst, t.X)
		return appendFloat64(dst, t.Y)
	case LineString:
		return appendWKBCoords(dst, t)
	case Polygon:
		dst = appendUint32(dst, uint32(len(t)))
		for _, r := range t {
			dst = appendWKBCoords(dst, r)
		}
		return dst
	case MultiPoint:
		dst = appendUint32(dst, uint32(len(t)))
		for _, p := range t {
			dst = AppendWKB(dst, p)
		}
		return dst
	case MultiLineString:
		dst = appendUint32(dst, uint32(len(t)))
		for _, l := range t {
			dst = AppendWKB(dst, l)
		}
		return dst
	case MultiPolygon:
		dst = appendUint32(dst, uint32(len(t)))
		for _, p := range t {
			dst = AppendWKB(dst, p)
		}
		return dst
	case Collection:
		dst = appendUint32(dst, uint32(len(t)))
		for _, sub := range t {
			dst = AppendWKB(dst, sub)
		}
		return dst
	default:
		panic(fmt.Sprintf("geom: unknown geometry type %T", g))
	}
}

// wkbSize returns the exact encoded size of g.
func wkbSize(g Geometry) int {
	const hdr = 1 + 4
	switch t := g.(type) {
	case Point:
		return hdr + 16
	case LineString:
		return hdr + 4 + 16*len(t)
	case Polygon:
		n := hdr + 4
		for _, r := range t {
			n += 4 + 16*len(r)
		}
		return n
	case MultiPoint:
		return hdr + 4 + len(t)*(hdr+16)
	case MultiLineString:
		n := hdr + 4
		for _, l := range t {
			n += wkbSize(l)
		}
		return n
	case MultiPolygon:
		n := hdr + 4
		for _, p := range t {
			n += wkbSize(p)
		}
		return n
	case Collection:
		n := hdr + 4
		for _, sub := range t {
			n += wkbSize(sub)
		}
		return n
	default:
		return hdr
	}
}

func appendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendWKBCoords(dst []byte, cs []Coord) []byte {
	dst = appendUint32(dst, uint32(len(cs)))
	for _, c := range cs {
		dst = appendFloat64(dst, c.X)
		dst = appendFloat64(dst, c.Y)
	}
	return dst
}

// UnmarshalWKB decodes a WKB-encoded geometry. Both byte orders are
// accepted. The entire input must be consumed.
func UnmarshalWKB(data []byte) (Geometry, error) {
	d := &wkbDecoder{data: data}
	g, err := d.geometry(0)
	if err != nil {
		return nil, err
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptWKB, len(data)-d.pos)
	}
	return g, nil
}

type wkbDecoder struct {
	data  []byte
	pos   int
	arena *CoordArena // nil = heap-allocated coordinate slices
}

// maxWKBNesting bounds recursion for hostile inputs.
const maxWKBNesting = 32

func (d *wkbDecoder) remaining() int { return len(d.data) - d.pos }

func (d *wkbDecoder) byteOrder() (binary.ByteOrder, error) {
	if d.remaining() < 1 {
		return nil, fmt.Errorf("%w: truncated byte-order marker", ErrCorruptWKB)
	}
	b := d.data[d.pos]
	d.pos++
	switch b {
	case wkbLittleEndian:
		return binary.LittleEndian, nil
	case wkbBigEndian:
		return binary.BigEndian, nil
	default:
		return nil, fmt.Errorf("%w: bad byte-order marker %d", ErrCorruptWKB, b)
	}
}

func (d *wkbDecoder) uint32(bo binary.ByteOrder) (uint32, error) {
	if d.remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated uint32", ErrCorruptWKB)
	}
	v := bo.Uint32(d.data[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *wkbDecoder) float64(bo binary.ByteOrder) (float64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated float64", ErrCorruptWKB)
	}
	v := math.Float64frombits(bo.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v, nil
}

func (d *wkbDecoder) coords(bo binary.ByteOrder) ([]Coord, error) {
	n, err := d.uint32(bo)
	if err != nil {
		return nil, err
	}
	if int(n) > d.remaining()/16 {
		return nil, fmt.Errorf("%w: coordinate count %d exceeds input", ErrCorruptWKB, n)
	}
	var cs []Coord
	if d.arena != nil {
		cs = d.arena.Coords(int(n))
	} else {
		cs = make([]Coord, n)
	}
	for i := range cs {
		if cs[i].X, err = d.float64(bo); err != nil {
			return nil, err
		}
		if cs[i].Y, err = d.float64(bo); err != nil {
			return nil, err
		}
	}
	return cs, nil
}

func (d *wkbDecoder) geometry(depth int) (Geometry, error) {
	if depth > maxWKBNesting {
		return nil, fmt.Errorf("%w: nesting deeper than %d", ErrCorruptWKB, maxWKBNesting)
	}
	bo, err := d.byteOrder()
	if err != nil {
		return nil, err
	}
	typ, err := d.uint32(bo)
	if err != nil {
		return nil, err
	}
	switch Type(typ) {
	case TypePoint:
		x, err := d.float64(bo)
		if err != nil {
			return nil, err
		}
		y, err := d.float64(bo)
		if err != nil {
			return nil, err
		}
		if math.IsNaN(x) && math.IsNaN(y) {
			return Point{Empty: true}, nil
		}
		return Point{Coord: Coord{x, y}}, nil

	case TypeLineString:
		cs, err := d.coords(bo)
		if err != nil {
			return nil, err
		}
		return LineString(cs), nil

	case TypePolygon:
		n, err := d.uint32(bo)
		if err != nil {
			return nil, err
		}
		if int(n) > d.remaining()/4 {
			return nil, fmt.Errorf("%w: ring count %d exceeds input", ErrCorruptWKB, n)
		}
		var rings []Ring
		if d.arena != nil {
			rings = d.arena.Rings(int(n))[:0]
		} else {
			rings = make([]Ring, 0, n)
		}
		for i := uint32(0); i < n; i++ {
			cs, err := d.coords(bo)
			if err != nil {
				return nil, err
			}
			rings = append(rings, Ring(cs))
		}
		return Polygon(rings), nil

	case TypeMultiPoint, TypeMultiLineString, TypeMultiPolygon, TypeGeometryCollection:
		n, err := d.uint32(bo)
		if err != nil {
			return nil, err
		}
		// Each nested geometry takes at least 5 bytes.
		if int(n) > d.remaining()/5 {
			return nil, fmt.Errorf("%w: element count %d exceeds input", ErrCorruptWKB, n)
		}
		subs := make([]Geometry, 0, n)
		for i := uint32(0); i < n; i++ {
			sub, err := d.geometry(depth + 1)
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
		}
		return assembleMulti(Type(typ), subs)

	default:
		return nil, fmt.Errorf("%w: unknown geometry type code %d", ErrCorruptWKB, typ)
	}
}

func assembleMulti(t Type, subs []Geometry) (Geometry, error) {
	switch t {
	case TypeMultiPoint:
		mp := make(MultiPoint, 0, len(subs))
		for _, s := range subs {
			p, ok := s.(Point)
			if !ok {
				return nil, fmt.Errorf("%w: multipoint element is %s", ErrCorruptWKB, s.GeomType())
			}
			mp = append(mp, p)
		}
		return mp, nil
	case TypeMultiLineString:
		ml := make(MultiLineString, 0, len(subs))
		for _, s := range subs {
			l, ok := s.(LineString)
			if !ok {
				return nil, fmt.Errorf("%w: multilinestring element is %s", ErrCorruptWKB, s.GeomType())
			}
			ml = append(ml, l)
		}
		return ml, nil
	case TypeMultiPolygon:
		mp := make(MultiPolygon, 0, len(subs))
		for _, s := range subs {
			p, ok := s.(Polygon)
			if !ok {
				return nil, fmt.Errorf("%w: multipolygon element is %s", ErrCorruptWKB, s.GeomType())
			}
			mp = append(mp, p)
		}
		return mp, nil
	default:
		return Collection(subs), nil
	}
}
