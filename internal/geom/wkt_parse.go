package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseWKT parses Well-Known Text into a Geometry. Parsing is
// case-insensitive and tolerant of extra whitespace. Z/M/ZM dimensions
// are rejected: the engine is strictly planar.
func ParseWKT(s string) (Geometry, error) {
	p := &wktParser{src: s}
	g, err := p.parseGeometry()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errorf("trailing input after geometry")
	}
	return g, nil
}

// MustParseWKT parses WKT and panics on error. Intended for tests and
// static data tables.
func MustParseWKT(s string) Geometry {
	g, err := ParseWKT(s)
	if err != nil {
		panic(err)
	}
	return g
}

type wktParser struct {
	src string
	pos int
}

func (p *wktParser) errorf(format string, args ...any) error {
	return fmt.Errorf("geom: parse WKT at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *wktParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// word consumes the next identifier (letters only), upper-cased.
func (p *wktParser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			p.pos++
		} else {
			break
		}
	}
	return strings.ToUpper(p.src[start:p.pos])
}

// peekWord reports the next identifier without consuming it.
func (p *wktParser) peekWord() string {
	save := p.pos
	w := p.word()
	p.pos = save
	return w
}

func (p *wktParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errorf("expected %q", string(c))
	}
	p.pos++
	return nil
}

// accept consumes c if it is next, reporting whether it did.
func (p *wktParser) accept(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *wktParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' ||
			c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, p.errorf("expected number")
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, p.errorf("bad number %q: %v", p.src[start:p.pos], err)
	}
	return v, nil
}

func (p *wktParser) coord() (Coord, error) {
	x, err := p.number()
	if err != nil {
		return Coord{}, err
	}
	y, err := p.number()
	if err != nil {
		return Coord{}, err
	}
	// Reject a third ordinate (Z) explicitly for a clear error.
	p.skipSpace()
	if p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' {
			return Coord{}, p.errorf("3D coordinates are not supported")
		}
	}
	return Coord{x, y}, nil
}

// isEmptyTag consumes the EMPTY keyword if present.
func (p *wktParser) isEmptyTag() bool {
	save := p.pos
	if p.word() == "EMPTY" {
		return true
	}
	p.pos = save
	return false
}

func (p *wktParser) coordSeq() ([]Coord, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var cs []Coord
	for {
		c, err := p.coord()
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
		if !p.accept(',') {
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return cs, nil
}

func (p *wktParser) parseGeometry() (Geometry, error) {
	tag := p.word()
	// Reject dimensional modifiers attached or separate (POINT Z, POINTZ).
	switch p.peekWord() {
	case "Z", "M", "ZM":
		return nil, p.errorf("dimensional modifier %q not supported", p.peekWord())
	}
	switch tag {
	case "POINT":
		if p.isEmptyTag() {
			return Point{Empty: true}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		c, err := p.coord()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return Point{Coord: c}, nil

	case "LINESTRING":
		if p.isEmptyTag() {
			return LineString{}, nil
		}
		cs, err := p.coordSeq()
		if err != nil {
			return nil, err
		}
		if len(cs) < 2 {
			return nil, p.errorf("linestring needs at least 2 coordinates")
		}
		return LineString(cs), nil

	case "POLYGON":
		if p.isEmptyTag() {
			return Polygon{}, nil
		}
		rings, err := p.ringList()
		if err != nil {
			return nil, err
		}
		return Polygon(rings), nil

	case "MULTIPOINT":
		if p.isEmptyTag() {
			return MultiPoint{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var mp MultiPoint
		for {
			if p.isEmptyTag() {
				mp = append(mp, Point{Empty: true})
			} else if p.accept('(') {
				c, err := p.coord()
				if err != nil {
					return nil, err
				}
				if err := p.expect(')'); err != nil {
					return nil, err
				}
				mp = append(mp, Point{Coord: c})
			} else {
				// Bare-coordinate form: MULTIPOINT (1 2, 3 4).
				c, err := p.coord()
				if err != nil {
					return nil, err
				}
				mp = append(mp, Point{Coord: c})
			}
			if !p.accept(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return mp, nil

	case "MULTILINESTRING":
		if p.isEmptyTag() {
			return MultiLineString{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var ml MultiLineString
		for {
			cs, err := p.coordSeq()
			if err != nil {
				return nil, err
			}
			if len(cs) < 2 {
				return nil, p.errorf("linestring needs at least 2 coordinates")
			}
			ml = append(ml, LineString(cs))
			if !p.accept(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return ml, nil

	case "MULTIPOLYGON":
		if p.isEmptyTag() {
			return MultiPolygon{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var mp MultiPolygon
		for {
			rings, err := p.ringList()
			if err != nil {
				return nil, err
			}
			mp = append(mp, Polygon(rings))
			if !p.accept(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return mp, nil

	case "GEOMETRYCOLLECTION":
		if p.isEmptyTag() {
			return Collection{}, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var col Collection
		for {
			g, err := p.parseGeometry()
			if err != nil {
				return nil, err
			}
			col = append(col, g)
			if !p.accept(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return col, nil

	case "":
		return nil, p.errorf("expected geometry tag")
	default:
		return nil, p.errorf("unknown geometry tag %q", tag)
	}
}

func (p *wktParser) ringList() ([]Ring, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var rings []Ring
	for {
		cs, err := p.coordSeq()
		if err != nil {
			return nil, err
		}
		if len(cs) < 4 {
			return nil, p.errorf("ring needs at least 4 coordinates")
		}
		if !cs[0].Equal(cs[len(cs)-1]) {
			return nil, p.errorf("ring is not closed")
		}
		rings = append(rings, Ring(cs))
		if !p.accept(',') {
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return rings, nil
}
