package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistancePointPoint(t *testing.T) {
	if d := Distance(Pt(0, 0), Pt(3, 4)); d != 5 {
		t.Errorf("Distance = %v, want 5", d)
	}
}

func TestDistancePointLine(t *testing.T) {
	l := LineString{{0, 0}, {10, 0}}
	if d := Distance(Pt(5, 3), l); d != 3 {
		t.Errorf("Distance = %v, want 3", d)
	}
	if d := Distance(l, Pt(5, 3)); d != 3 {
		t.Errorf("reversed Distance = %v, want 3", d)
	}
	if d := Distance(Pt(5, 0), l); d != 0 {
		t.Errorf("on-line Distance = %v, want 0", d)
	}
}

func TestDistancePointPolygon(t *testing.T) {
	sq := squareAt(0, 0, 4)
	if d := Distance(Pt(2, 2), sq); d != 0 {
		t.Errorf("inside point: Distance = %v, want 0", d)
	}
	if d := Distance(Pt(4, 2), sq); d != 0 {
		t.Errorf("boundary point: Distance = %v, want 0", d)
	}
	if d := Distance(Pt(7, 2), sq); d != 3 {
		t.Errorf("outside point: Distance = %v, want 3", d)
	}
	// Point inside the hole of a donut: distance to the hole ring.
	if d := Distance(Pt(5, 5), donut()); d != 1 {
		t.Errorf("hole point: Distance = %v, want 1", d)
	}
}

func TestDistanceLineLine(t *testing.T) {
	a := LineString{{0, 0}, {10, 0}}
	b := LineString{{0, 4}, {10, 4}}
	if d := Distance(a, b); d != 4 {
		t.Errorf("parallel lines: %v, want 4", d)
	}
	c := LineString{{5, -1}, {5, 1}}
	if d := Distance(a, c); d != 0 {
		t.Errorf("crossing lines: %v, want 0", d)
	}
}

func TestDistancePolygonPolygon(t *testing.T) {
	a := squareAt(0, 0, 2)
	b := squareAt(5, 0, 2)
	if d := Distance(a, b); d != 3 {
		t.Errorf("side gap: %v, want 3", d)
	}
	inner := squareAt(0.5, 0.5, 0.5)
	if d := Distance(a, inner); d != 0 {
		t.Errorf("contained polygon: %v, want 0", d)
	}
	if d := Distance(inner, a); d != 0 {
		t.Errorf("containing polygon reversed: %v, want 0", d)
	}
}

func TestDistanceLinePolygon(t *testing.T) {
	sq := squareAt(0, 0, 4)
	through := LineString{{-2, 2}, {6, 2}}
	if d := Distance(through, sq); d != 0 {
		t.Errorf("crossing line: %v, want 0", d)
	}
	inside := LineString{{1, 1}, {3, 3}}
	if d := Distance(inside, sq); d != 0 {
		t.Errorf("contained line: %v, want 0", d)
	}
	away := LineString{{0, 10}, {4, 10}}
	if d := Distance(away, sq); d != 6 {
		t.Errorf("distant line: %v, want 6", d)
	}
}

func TestDistanceMultiAndCollection(t *testing.T) {
	mp := MultiPoint{Pt(100, 100), Pt(3, 4)}
	if d := Distance(Pt(0, 0), mp); d != 5 {
		t.Errorf("multipoint min distance: %v, want 5", d)
	}
	col := Collection{LineString{{50, 50}, {60, 60}}, squareAt(0, 0, 1)}
	if d := Distance(Pt(2, 0.5), col); d != 1 {
		t.Errorf("collection distance: %v, want 1", d)
	}
}

func TestDistanceEmpty(t *testing.T) {
	if d := Distance(Pt(0, 0), Polygon{}); !math.IsInf(d, 1) {
		t.Errorf("distance to empty should be +Inf, got %v", d)
	}
	if d := Distance(nil, Pt(0, 0)); !math.IsInf(d, 1) {
		t.Errorf("distance to nil should be +Inf, got %v", d)
	}
}

func TestDWithin(t *testing.T) {
	a := Pt(0, 0)
	b := Pt(3, 4)
	if !DWithin(a, b, 5) {
		t.Error("DWithin at exact distance should hold")
	}
	if DWithin(a, b, 4.999) {
		t.Error("DWithin below distance should fail")
	}
	if DWithin(a, Polygon{}, 1e18) {
		t.Error("DWithin with empty geometry should fail")
	}
}

func TestDistancePropertySymmetric(t *testing.T) {
	geoms := []Geometry{
		Pt(0, 0), Pt(7, -2),
		LineString{{0, 0}, {5, 5}},
		LineString{{10, 0}, {10, 10}},
		squareAt(2, 2, 3),
		donut(),
		MultiPoint{Pt(1, 9), Pt(-4, 2)},
	}
	for i, a := range geoms {
		for j, b := range geoms {
			d1, d2 := Distance(a, b), Distance(b, a)
			if math.Abs(d1-d2) > 1e-9 {
				t.Errorf("asymmetric distance between %d and %d: %v vs %v", i, j, d1, d2)
			}
			if i == j && d1 != 0 {
				t.Errorf("self-distance of %d = %v", i, d1)
			}
		}
	}
}

func TestDistancePropertyTriangleish(t *testing.T) {
	// For points, distance obeys the triangle inequality.
	norm := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1000)
	}
	prop := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(norm(ax), norm(ay))
		b := Pt(norm(bx), norm(by))
		c := Pt(norm(cx), norm(cy))
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDWithinPropertyAgreesWithDistance(t *testing.T) {
	norm := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 100)
	}
	sq := squareAt(10, 10, 20)
	prop := func(x, y, dRaw float64) bool {
		p := Pt(norm(x), norm(y))
		d := math.Abs(norm(dRaw))
		return DWithin(p, sq, d) == (Distance(p, sq) <= d)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
