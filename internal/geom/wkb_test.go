package geom

import (
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func wkbCorpus() []Geometry {
	return []Geometry{
		Pt(1, 2),
		Point{Empty: true},
		LineString{{0, 0}, {1, 1}, {2, 0}},
		LineString{},
		unitSquare(),
		donut(),
		Polygon{},
		MultiPoint{Pt(1, 2), Pt(3, 4)},
		MultiPoint{},
		MultiLineString{{{0, 0}, {1, 1}}, {{2, 2}, {3, 3}}},
		MultiPolygon{unitSquare(), squareAt(5, 5, 2)},
		Collection{Pt(1, 2), LineString{{0, 0}, {1, 1}}, unitSquare()},
		Collection{},
		Collection{Collection{Pt(9, 9)}},
	}
}

func TestWKBRoundTrip(t *testing.T) {
	for _, g := range wkbCorpus() {
		data := MarshalWKB(g)
		got, err := UnmarshalWKB(data)
		if err != nil {
			t.Errorf("%s: UnmarshalWKB: %v", WKT(g), err)
			continue
		}
		if !reflect.DeepEqual(normalizeNil(got), normalizeNil(g)) {
			t.Errorf("round trip mismatch:\n in: %s\nout: %s", WKT(g), WKT(got))
		}
	}
}

// normalizeNil maps nil slices to empty ones so DeepEqual compares
// semantically (an empty LineString round-trips as a zero-length slice).
func normalizeNil(g Geometry) Geometry {
	switch t := g.(type) {
	case LineString:
		if t == nil {
			return LineString{}
		}
	case MultiPoint:
		if t == nil {
			return MultiPoint{}
		}
	case MultiLineString:
		if t == nil {
			return MultiLineString{}
		}
	case Polygon:
		if t == nil {
			return Polygon{}
		}
	case MultiPolygon:
		if t == nil {
			return MultiPolygon{}
		}
	case Collection:
		if t == nil {
			return Collection{}
		}
		out := make(Collection, len(t))
		for i, sub := range t {
			out[i] = normalizeNil(sub)
		}
		return out
	}
	return g
}

func TestWKBSizeExact(t *testing.T) {
	for _, g := range wkbCorpus() {
		if got, want := len(MarshalWKB(g)), wkbSize(g); got != want {
			t.Errorf("%s: encoded %d bytes, wkbSize says %d", WKT(g), got, want)
		}
	}
}

func TestWKBBigEndianDecode(t *testing.T) {
	// Hand-build a big-endian POINT (1 2).
	buf := []byte{wkbBigEndian}
	buf = binary.BigEndian.AppendUint32(buf, uint32(TypePoint))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(1))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(2))
	g, err := UnmarshalWKB(buf)
	if err != nil {
		t.Fatal(err)
	}
	if p := g.(Point); !p.Equal(Coord{1, 2}) {
		t.Errorf("decoded %v", p)
	}
}

func TestWKBCorruptInputs(t *testing.T) {
	valid := MarshalWKB(unitSquare())
	cases := [][]byte{
		nil,
		{},
		{5},                                      // bad byte order
		{1},                                      // truncated type
		{1, 1, 0, 0},                             // truncated type
		valid[:len(valid)-1],                     // truncated payload
		append(append([]byte{}, valid...), 0xFF), // trailing byte
		{1, 99, 0, 0, 0},                         // unknown type code
		// Huge declared coordinate count.
		{1, 2, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F},
		// Huge declared element count in a collection.
		{1, 7, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F},
	}
	for i, data := range cases {
		if _, err := UnmarshalWKB(data); err == nil {
			t.Errorf("case %d: expected error for corrupt input", i)
		} else if !errors.Is(err, ErrCorruptWKB) {
			t.Errorf("case %d: error %v is not ErrCorruptWKB", i, err)
		}
	}
}

func TestWKBDeepNestingRejected(t *testing.T) {
	g := Geometry(Pt(0, 0))
	for i := 0; i < maxWKBNesting+2; i++ {
		g = Collection{g}
	}
	if _, err := UnmarshalWKB(MarshalWKB(g)); err == nil {
		t.Error("expected nesting-depth error")
	}
}

func TestWKBWrongElementType(t *testing.T) {
	// A MultiPoint whose element is a LineString.
	buf := []byte{wkbLittleEndian}
	buf = appendUint32(buf, uint32(TypeMultiPoint))
	buf = appendUint32(buf, 1)
	buf = AppendWKB(buf, LineString{{0, 0}, {1, 1}})
	if _, err := UnmarshalWKB(buf); err == nil {
		t.Error("expected element-type error")
	}
}

func TestWKBPropertyRoundTripPolygons(t *testing.T) {
	prop := func(seed int64) bool {
		// Build a deterministic star polygon from the seed.
		n := 5 + int(uint64(seed)%13)
		ring := make(Ring, 0, n+1)
		for i := 0; i < n; i++ {
			ang := 2 * math.Pi * float64(i) / float64(n)
			r := 5 + float64((uint64(seed)>>(i%32))%7)
			ring = append(ring, Coord{r * math.Cos(ang), r * math.Sin(ang)})
		}
		ring = append(ring, ring[0])
		p := Polygon{ring}
		got, err := UnmarshalWKB(MarshalWKB(p))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
