package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimplifyLineCollinear(t *testing.T) {
	l := LineString{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}
	s := Simplify(l, 0.01).(LineString)
	if len(s) != 2 || !s[0].Equal(Coord{0, 0}) || !s[1].Equal(Coord{4, 0}) {
		t.Errorf("collinear simplify = %v", WKT(s))
	}
}

func TestSimplifyKeepsSignificantVertices(t *testing.T) {
	l := LineString{{0, 0}, {2, 0.05}, {4, 3}, {6, 0.05}, {8, 0}}
	// With the bump kept, the wiggles sit ~1.16 from the slanted
	// sub-baselines, so a tolerance of 1.5 removes them but not the bump.
	s := Simplify(l, 1.5).(LineString)
	if len(s) != 3 || !s[1].Equal(Coord{4, 3}) {
		t.Errorf("simplify = %v", WKT(s))
	}
	// A tolerance above the bump flattens everything.
	s = Simplify(l, 5).(LineString)
	if len(s) != 2 {
		t.Errorf("aggressive simplify = %v", WKT(s))
	}
}

func TestSimplifyEndpointsPreserved(t *testing.T) {
	l := LineString{{0, 0}, {1, 5}, {2, -5}, {3, 1}}
	s := Simplify(l, 100).(LineString)
	if !s[0].Equal(l[0]) || !s[len(s)-1].Equal(l[len(l)-1]) {
		t.Error("endpoints must survive simplification")
	}
}

func TestSimplifyPolygon(t *testing.T) {
	// A square with a redundant midpoint on each edge.
	p := Polygon{Ring{
		{0, 0}, {2, 0}, {4, 0}, {4, 2}, {4, 4}, {2, 4}, {0, 4}, {0, 2}, {0, 0},
	}}
	s := Simplify(p, 0.1).(Polygon)
	if len(s[0]) != 5 {
		t.Errorf("square simplify kept %d coords: %s", len(s[0]), WKT(s))
	}
	if math.Abs(Area(s)-16) > 1e-9 {
		t.Errorf("area changed: %v", Area(s))
	}
	if err := Validate(s); err != nil {
		t.Errorf("simplified polygon invalid: %v", err)
	}
}

func TestSimplifyPolygonCollapse(t *testing.T) {
	// A sliver narrower than the tolerance collapses to empty.
	p := Polygon{Ring{{0, 0}, {10, 0.01}, {10, 0.02}, {0, 0.01}, {0, 0}}}
	s := Simplify(p, 1).(Polygon)
	if !s.IsEmpty() {
		t.Errorf("sliver should collapse, got %s", WKT(s))
	}
	// Holes collapse independently of the shell.
	d := Polygon{
		Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {0, 0}},
		Ring{{5, 5}, {5.01, 5}, {5.01, 5.01}, {5, 5.01}, {5, 5}},
	}
	s = Simplify(d, 0.5).(Polygon)
	if len(s) != 1 {
		t.Errorf("tiny hole should vanish: %s", WKT(s))
	}
}

func TestSimplifyZeroToleranceClones(t *testing.T) {
	l := LineString{{0, 0}, {1, 0.0001}, {2, 0}}
	s := Simplify(l, 0).(LineString)
	if len(s) != 3 {
		t.Error("zero tolerance must not simplify")
	}
	s[0].X = 99
	if l[0].X == 99 {
		t.Error("zero-tolerance result shares storage")
	}
}

func TestSimplifyPropertyWithinTolerance(t *testing.T) {
	// Every dropped vertex lies within tolerance of the simplified line.
	prop := func(seed uint64) bool {
		r := seed
		next := func() float64 {
			r = r*6364136223846793005 + 1442695040888963407
			return float64(r>>40) / float64(1<<24)
		}
		l := make(LineString, 30)
		x := 0.0
		for i := range l {
			x += next() * 5
			l[i] = Coord{X: x, Y: next() * 10}
		}
		const tol = 2.0
		s := Simplify(l, tol).(LineString)
		for _, c := range l {
			best := math.Inf(1)
			for i := 0; i+1 < len(s); i++ {
				if d := DistPointSegment(c, s[i], s[i+1]); d < best {
					best = d
				}
			}
			// Douglas–Peucker guarantees each dropped vertex is within
			// tol of the segment that replaced its subchain; distance to
			// the whole simplified line can only be smaller.
			if best > tol+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
