package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestArea(t *testing.T) {
	tests := []struct {
		name string
		g    Geometry
		want float64
	}{
		{"point", Pt(1, 1), 0},
		{"line", LineString{{0, 0}, {3, 4}}, 0},
		{"unit square", unitSquare(), 1},
		{"donut", donut(), 100 - 4},
		{"multipolygon", MultiPolygon{unitSquare(), squareAt(5, 5, 2)}, 5},
		{"collection", Collection{unitSquare(), Pt(0, 0)}, 1},
		{"cw ring", Polygon{Ring{{0, 0}, {0, 2}, {2, 2}, {2, 0}, {0, 0}}}, 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Area(tc.g); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Area = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestLength(t *testing.T) {
	tests := []struct {
		name string
		g    Geometry
		want float64
	}{
		{"point", Pt(1, 1), 0},
		{"segment", LineString{{0, 0}, {3, 4}}, 5},
		{"polyline", LineString{{0, 0}, {3, 4}, {3, 10}}, 11},
		{"multiline", MultiLineString{{{0, 0}, {1, 0}}, {{0, 0}, {0, 2}}}, 3},
		{"square perimeter", unitSquare(), 4},
		{"donut perimeter", donut(), 40 + 8},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Length(tc.g); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Length = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCentroid(t *testing.T) {
	tests := []struct {
		name string
		g    Geometry
		want Coord
	}{
		{"point", Pt(3, 4), Coord{3, 4}},
		{"multipoint", MultiPoint{Pt(0, 0), Pt(2, 2)}, Coord{1, 1}},
		{"segment", LineString{{0, 0}, {4, 0}}, Coord{2, 0}},
		{"square", unitSquare(), Coord{0.5, 0.5}},
		{"donut", donut(), Coord{5, 5}},
		{"cw square", Polygon{Ring{{0, 0}, {0, 2}, {2, 2}, {2, 0}, {0, 0}}}, Coord{1, 1}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := Centroid(tc.g)
			if !ok {
				t.Fatal("no centroid for non-empty geometry")
			}
			if math.Abs(got.X-tc.want.X) > 1e-9 || math.Abs(got.Y-tc.want.Y) > 1e-9 {
				t.Errorf("Centroid = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCentroidEmpty(t *testing.T) {
	for _, g := range []Geometry{Point{Empty: true}, MultiPoint{}, LineString{}, Polygon{}, Collection{}} {
		if _, ok := Centroid(g); ok {
			t.Errorf("%s: empty geometry should have no centroid", g.GeomType())
		}
	}
}

func TestCentroidCollectionUsesHighestDimension(t *testing.T) {
	// The point should be ignored: only the polygon (dim 2) counts.
	c := Collection{Pt(100, 100), unitSquare()}
	got, ok := Centroid(c)
	if !ok {
		t.Fatal("no centroid")
	}
	if math.Abs(got.X-0.5) > 1e-9 || math.Abs(got.Y-0.5) > 1e-9 {
		t.Errorf("Centroid = %v, want (0.5, 0.5)", got)
	}
}

func TestInteriorPoint(t *testing.T) {
	tests := []struct {
		name string
		g    Geometry
	}{
		{"square", unitSquare()},
		{"donut", donut()},
		{"concave C", Polygon{Ring{{0, 0}, {6, 0}, {6, 2}, {2, 2}, {2, 4}, {6, 4}, {6, 6}, {0, 6}, {0, 0}}}},
		{"line", LineString{{0, 0}, {2, 2}}},
		{"point", Pt(7, 8)},
		{"multipolygon", MultiPolygon{unitSquare()}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c, ok := InteriorPoint(tc.g)
			if !ok {
				t.Fatal("no interior point for non-empty geometry")
			}
			switch g := tc.g.(type) {
			case Polygon:
				if PointInRing(c, g[0]) != RingInterior {
					t.Errorf("interior point %v not strictly inside shell", c)
				}
				for _, hole := range g[1:] {
					if PointInRing(c, hole) != RingExterior {
						t.Errorf("interior point %v inside a hole", c)
					}
				}
			case LineString:
				if DistPointSegment(c, g[0], g[1]) > 1e-12 {
					t.Errorf("interior point %v not on line", c)
				}
			}
		})
	}
}

func TestInteriorPointDonutCentroidMiss(t *testing.T) {
	// The centroid of this donut falls inside the hole, forcing the
	// scanline fallback.
	d := donut()
	c, ok := InteriorPoint(d)
	if !ok {
		t.Fatal("no interior point")
	}
	if PointInRing(c, d[1]) != RingExterior {
		t.Errorf("interior point %v is inside the hole", c)
	}
}

func TestInteriorPointEmpty(t *testing.T) {
	for _, g := range []Geometry{Point{Empty: true}, Polygon{}, LineString{}, MultiPolygon{}, Collection{}} {
		if _, ok := InteriorPoint(g); ok {
			t.Errorf("%s: empty geometry should have no interior point", g.GeomType())
		}
	}
}

func TestAreaPropertyScaling(t *testing.T) {
	// Scaling a polygon by f scales its area by f^2.
	prop := func(fRaw float64) bool {
		f := math.Mod(math.Abs(fRaw), 50) + 0.5
		p := donut()
		scaled := p.Clone().(Polygon)
		for _, r := range scaled {
			for i := range r {
				r[i] = r[i].Scale(f)
			}
		}
		want := Area(p) * f * f
		got := Area(scaled)
		return math.Abs(got-want) <= 1e-6*math.Max(1, want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLengthPropertyTranslationInvariance(t *testing.T) {
	prop := func(dxRaw, dyRaw float64) bool {
		dx := math.Mod(dxRaw, 1e6)
		dy := math.Mod(dyRaw, 1e6)
		if math.IsNaN(dx) || math.IsNaN(dy) {
			return true
		}
		l := LineString{{0, 0}, {3, 4}, {10, 4}, {10, 20}}
		moved := l.Clone().(LineString)
		for i := range moved {
			moved[i].X += dx
			moved[i].Y += dy
		}
		return math.Abs(Length(l)-Length(moved)) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
