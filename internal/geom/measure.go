package geom

import "math"

// Area returns the area of the geometry. Points and curves have zero
// area. Polygon holes subtract from the shell's area.
func Area(g Geometry) float64 {
	switch t := g.(type) {
	case Polygon:
		return polygonArea(t)
	case MultiPolygon:
		var sum float64
		for _, p := range t {
			sum += polygonArea(p)
		}
		return sum
	case Collection:
		var sum float64
		for _, sub := range t {
			sum += Area(sub)
		}
		return sum
	default:
		return 0
	}
}

func polygonArea(p Polygon) float64 {
	if len(p) == 0 {
		return 0
	}
	area := math.Abs(RingSignedArea2(p[0])) / 2
	for _, hole := range p[1:] {
		area -= math.Abs(RingSignedArea2(hole)) / 2
	}
	if area < 0 {
		return 0
	}
	return area
}

// Length returns the length of all curves in the geometry. For polygons
// it returns the perimeter (shell plus holes), matching OGC ST_Length
// applied to polygon boundaries via ST_Perimeter semantics.
func Length(g Geometry) float64 {
	switch t := g.(type) {
	case LineString:
		return coordsLength(t)
	case MultiLineString:
		var sum float64
		for _, l := range t {
			sum += coordsLength(l)
		}
		return sum
	case Polygon:
		var sum float64
		for _, r := range t {
			sum += coordsLength(r)
		}
		return sum
	case MultiPolygon:
		var sum float64
		for _, p := range t {
			sum += Length(p)
		}
		return sum
	case Collection:
		var sum float64
		for _, sub := range t {
			sum += Length(sub)
		}
		return sum
	default:
		return 0
	}
}

func coordsLength(cs []Coord) float64 {
	var sum float64
	for i := 0; i < len(cs)-1; i++ {
		sum += Dist(cs[i], cs[i+1])
	}
	return sum
}

// Centroid returns the centroid of the geometry and whether one exists
// (empty geometries have none). The centroid of mixed collections uses
// the highest-dimension components, per OGC semantics.
func Centroid(g Geometry) (Coord, bool) {
	switch t := g.(type) {
	case Point:
		if t.Empty {
			return Coord{}, false
		}
		return t.Coord, true
	case MultiPoint:
		var sx, sy float64
		n := 0
		for _, p := range t {
			if !p.Empty {
				sx += p.X
				sy += p.Y
				n++
			}
		}
		if n == 0 {
			return Coord{}, false
		}
		return Coord{sx / float64(n), sy / float64(n)}, true
	case LineString:
		return curveCentroid([]LineString{t})
	case MultiLineString:
		return curveCentroid(t)
	case Polygon:
		return areaCentroid(MultiPolygon{t})
	case MultiPolygon:
		return areaCentroid(t)
	case Collection:
		// Use the highest-dimension members.
		dim := t.Dimension()
		var acc Collection
		for _, sub := range t {
			if sub.Dimension() == dim && !sub.IsEmpty() {
				acc = append(acc, sub)
			}
		}
		if len(acc) == 0 {
			return Coord{}, false
		}
		var sx, sy, sw float64
		for _, sub := range acc {
			c, ok := Centroid(sub)
			if !ok {
				continue
			}
			w := 1.0
			switch dim {
			case 1:
				w = Length(sub)
			case 2:
				w = Area(sub)
			}
			if w <= 0 {
				w = 1e-300 // degenerate member: vanishing weight
			}
			sx += c.X * w
			sy += c.Y * w
			sw += w
		}
		if ExactEq(sw, 0) {
			return Coord{}, false
		}
		return Coord{sx / sw, sy / sw}, true
	default:
		return Coord{}, false
	}
}

func curveCentroid(lines []LineString) (Coord, bool) {
	var sx, sy, sl float64
	for _, l := range lines {
		for i := 0; i < len(l)-1; i++ {
			mid := Coord{(l[i].X + l[i+1].X) / 2, (l[i].Y + l[i+1].Y) / 2}
			d := Dist(l[i], l[i+1])
			sx += mid.X * d
			sy += mid.Y * d
			sl += d
		}
	}
	if ExactEq(sl, 0) {
		// Degenerate: average the vertices.
		n := 0
		for _, l := range lines {
			for _, c := range l {
				sx += c.X
				sy += c.Y
				n++
			}
		}
		if n == 0 {
			return Coord{}, false
		}
		return Coord{sx / float64(n), sy / float64(n)}, true
	}
	return Coord{sx / sl, sy / sl}, true
}

func areaCentroid(polys MultiPolygon) (Coord, bool) {
	var sx, sy, sa float64
	addRing := func(ring []Coord, sign float64) {
		for i := 0; i < len(ring)-1; i++ {
			a, b := ring[i], ring[i+1]
			cross := a.X*b.Y - b.X*a.Y
			sx += sign * (a.X + b.X) * cross
			sy += sign * (a.Y + b.Y) * cross
			sa += sign * cross
		}
	}
	for _, p := range polys {
		if len(p) == 0 {
			continue
		}
		// Normalize orientations: shell contributes positively, holes
		// negatively, independent of stored winding.
		shellSign := 1.0
		if !RingIsCCW(p[0]) {
			shellSign = -1
		}
		addRing(p[0], shellSign)
		for _, hole := range p[1:] {
			holeSign := -1.0
			if !RingIsCCW(hole) {
				holeSign = 1
			}
			addRing(hole, holeSign)
		}
	}
	if math.Abs(sa) < 1e-300 {
		return Coord{}, false
	}
	return Coord{sx / (3 * sa), sy / (3 * sa)}, true
}

// InteriorPoint returns a point guaranteed to lie in the interior of the
// geometry (for polygons) or on the geometry (for curves and points).
// It reports false for empty geometries.
func InteriorPoint(g Geometry) (Coord, bool) {
	switch t := g.(type) {
	case Point:
		if t.Empty {
			return Coord{}, false
		}
		return t.Coord, true
	case MultiPoint:
		for _, p := range t {
			if !p.Empty {
				return p.Coord, true
			}
		}
		return Coord{}, false
	case LineString:
		if len(t) == 0 {
			return Coord{}, false
		}
		if len(t) == 1 {
			return t[0], true
		}
		// Midpoint of the first segment avoids endpoints (which are
		// boundary, not interior, for open curves).
		return Coord{(t[0].X + t[1].X) / 2, (t[0].Y + t[1].Y) / 2}, true
	case MultiLineString:
		for _, l := range t {
			if c, ok := InteriorPoint(l); ok {
				return c, true
			}
		}
		return Coord{}, false
	case Polygon:
		return polygonInteriorPoint(t)
	case MultiPolygon:
		for _, p := range t {
			if c, ok := polygonInteriorPoint(p); ok {
				return c, true
			}
		}
		return Coord{}, false
	case Collection:
		dim := t.Dimension()
		for _, sub := range t {
			if sub.Dimension() == dim {
				if c, ok := InteriorPoint(sub); ok {
					return c, true
				}
			}
		}
		return Coord{}, false
	default:
		return Coord{}, false
	}
}

// polygonInteriorPoint scans horizontal lines through the polygon until a
// point strictly inside the shell and outside every hole is found.
func polygonInteriorPoint(p Polygon) (Coord, bool) {
	if p.IsEmpty() {
		return Coord{}, false
	}
	env := p.Envelope()
	if ExactEq(env.Height(), 0) || ExactEq(env.Width(), 0) {
		return Coord{}, false // degenerate polygon has no interior
	}
	inside := func(c Coord) bool {
		if PointInRing(c, p[0]) != RingInterior {
			return false
		}
		for _, hole := range p[1:] {
			if PointInRing(c, hole) != RingExterior {
				return false
			}
		}
		return true
	}
	// Try the centroid first: for convex-ish shapes this hits immediately.
	if c, ok := areaCentroid(MultiPolygon{p}); ok && inside(c) {
		return c, true
	}
	// Scanline sampling: for each of several y values, intersect the
	// scanline with the shell edges and take midpoints between crossing
	// pairs.
	const scans = 17
	for s := 1; s <= scans; s++ {
		y := env.MinY + env.Height()*float64(s)/float64(scans+1)
		var xs []float64
		for i := 0; i < len(p[0])-1; i++ {
			a, b := p[0][i], p[0][i+1]
			if (a.Y > y) != (b.Y > y) {
				t := (y - a.Y) / (b.Y - a.Y)
				xs = append(xs, a.X+t*(b.X-a.X))
			}
		}
		if len(xs) < 2 {
			continue
		}
		sortFloats(xs)
		for i := 0; i+1 < len(xs); i += 2 {
			c := Coord{(xs[i] + xs[i+1]) / 2, y}
			if inside(c) {
				return c, true
			}
		}
	}
	return Coord{}, false
}

func sortFloats(xs []float64) {
	// Insertion sort: the slices here are tiny (ring/scanline crossings).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
