// Package storage implements the table storage substrate of the spatial
// engines: typed column values with a compact tuple encoding, 8 KiB
// slotted pages with overflow chains for large tuples, pluggable page
// stores (memory and file backed), a buffer pool with LRU eviction and
// hit/miss accounting, and heap files built on top.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"jackpine/internal/geom"
)

// ValueType identifies the runtime type of a Value.
type ValueType uint8

// The supported column value types.
const (
	TypeNull ValueType = iota
	TypeInt
	TypeFloat
	TypeText
	TypeGeom
	TypeBool
)

// String returns the SQL-facing type name.
func (t ValueType) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "DOUBLE"
	case TypeText:
		return "TEXT"
	case TypeGeom:
		return "GEOMETRY"
	case TypeBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("UNKNOWN(%d)", uint8(t))
}

// Value is a single column value. The zero value is SQL NULL.
type Value struct {
	Type  ValueType
	Int   int64 // also carries booleans (0/1)
	Float float64
	Text  string
	Geom  geom.Geometry
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// NewInt wraps an integer.
func NewInt(v int64) Value { return Value{Type: TypeInt, Int: v} }

// NewFloat wraps a float.
func NewFloat(v float64) Value { return Value{Type: TypeFloat, Float: v} }

// NewText wraps a string.
func NewText(s string) Value { return Value{Type: TypeText, Text: s} }

// NewGeom wraps a geometry. A nil geometry becomes NULL.
func NewGeom(g geom.Geometry) Value {
	if g == nil {
		return Null()
	}
	return Value{Type: TypeGeom, Geom: g}
}

// NewBool wraps a boolean.
func NewBool(b bool) Value {
	v := Value{Type: TypeBool}
	if b {
		v.Int = 1
	}
	return v
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Type == TypeNull }

// Bool returns the boolean interpretation (only meaningful for TypeBool).
func (v Value) Bool() bool { return v.Type == TypeBool && v.Int != 0 }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Type {
	case TypeInt:
		return float64(v.Int), true
	case TypeFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Type {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return fmt.Sprintf("%d", v.Int)
	case TypeFloat:
		return fmt.Sprintf("%g", v.Float)
	case TypeText:
		return v.Text
	case TypeGeom:
		return geom.WKT(v.Geom)
	case TypeBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Compare orders two values. NULL sorts before everything; numeric types
// compare numerically across Int/Float; distinct non-comparable types
// order by type tag. Geometries compare by WKB bytes (arbitrary but
// stable). The second result is false when the comparison is between
// incompatible types (still ordered, for sort stability).
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0, true
		case a.IsNull():
			return -1, true
		default:
			return 1, true
		}
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	if aNum && bNum {
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.Type != b.Type {
		if a.Type < b.Type {
			return -1, false
		}
		return 1, false
	}
	switch a.Type {
	case TypeText:
		switch {
		case a.Text < b.Text:
			return -1, true
		case a.Text > b.Text:
			return 1, true
		default:
			return 0, true
		}
	case TypeBool:
		switch {
		case a.Int < b.Int:
			return -1, true
		case a.Int > b.Int:
			return 1, true
		default:
			return 0, true
		}
	case TypeGeom:
		wa, wb := geom.MarshalWKB(a.Geom), geom.MarshalWKB(b.Geom)
		switch {
		case string(wa) < string(wb):
			return -1, false
		case string(wa) > string(wb):
			return 1, false
		default:
			return 0, true
		}
	}
	return 0, false
}

// EncodeTuple serializes a row of values.
func EncodeTuple(vals []Value) []byte {
	out := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		out = append(out, byte(v.Type))
		switch v.Type {
		case TypeNull:
		case TypeInt, TypeBool:
			out = binary.AppendVarint(out, v.Int)
		case TypeFloat:
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v.Float))
		case TypeText:
			out = binary.AppendUvarint(out, uint64(len(v.Text)))
			out = append(out, v.Text...)
		case TypeGeom:
			wkb := geom.MarshalWKB(v.Geom)
			out = binary.AppendUvarint(out, uint64(len(wkb)))
			out = append(out, wkb...)
		}
	}
	return out
}

// DecodeTuple deserializes a row of exactly n values.
func DecodeTuple(data []byte, n int) ([]Value, error) {
	vals := make([]Value, 0, n)
	pos := 0
	for i := 0; i < n; i++ {
		if pos >= len(data) {
			return nil, fmt.Errorf("storage: tuple truncated at column %d", i)
		}
		t := ValueType(data[pos])
		pos++
		switch t {
		case TypeNull:
			vals = append(vals, Null())
		case TypeInt, TypeBool:
			v, read := binary.Varint(data[pos:])
			if read <= 0 {
				return nil, fmt.Errorf("storage: bad varint in column %d", i)
			}
			pos += read
			vals = append(vals, Value{Type: t, Int: v})
		case TypeFloat:
			if pos+8 > len(data) {
				return nil, fmt.Errorf("storage: truncated float in column %d", i)
			}
			bits := binary.LittleEndian.Uint64(data[pos:])
			pos += 8
			vals = append(vals, NewFloat(math.Float64frombits(bits)))
		case TypeText:
			l, read := binary.Uvarint(data[pos:])
			if read <= 0 || pos+read+int(l) > len(data) {
				return nil, fmt.Errorf("storage: truncated text in column %d", i)
			}
			pos += read
			vals = append(vals, NewText(string(data[pos:pos+int(l)])))
			pos += int(l)
		case TypeGeom:
			l, read := binary.Uvarint(data[pos:])
			if read <= 0 || pos+read+int(l) > len(data) {
				return nil, fmt.Errorf("storage: truncated geometry in column %d", i)
			}
			pos += read
			g, err := geom.UnmarshalWKB(data[pos : pos+int(l)])
			if err != nil {
				return nil, fmt.Errorf("storage: column %d: %w", i, err)
			}
			pos += int(l)
			vals = append(vals, NewGeom(g))
		default:
			return nil, fmt.Errorf("storage: unknown value type %d in column %d", t, i)
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("storage: %d trailing bytes after tuple", len(data)-pos)
	}
	return vals, nil
}
