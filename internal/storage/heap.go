package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// overflowMarker is the first byte of an inline record that points to an
// overflow chain. Tuple encodings always begin with a ValueType byte
// (< 0x80), so the marker cannot collide.
const overflowMarker = 0xFF

// Overflow chain page layout: next page id (u32), the page-LSN stamp
// word (u32, bytes 4-8 as in every page type — see SetPageLSN), data
// length (u16), then data.
const (
	ovfHeaderSize = 10
	ovfDataCap    = PageSize - ovfHeaderSize
	ovfNoNext     = 0xFFFFFFFF
)

// HeapFile stores tuples in slotted pages obtained from a buffer pool.
// Tuples larger than MaxInlineTuple spill to overflow page chains.
// Safe for concurrent use.
type HeapFile struct {
	pool *BufferPool

	mu       sync.RWMutex
	pages    []uint32 // data pages, in allocation order
	lastPage int      // index into pages with likely free space
	count    int
}

// NewHeapFile creates an empty heap over the pool.
func NewHeapFile(pool *BufferPool) *HeapFile {
	return &HeapFile{pool: pool, lastPage: -1}
}

// OpenHeapFile reattaches a heap to data pages persisted earlier (see
// Pages/LastPage): the page list and insertion cursor are restored
// verbatim, so record ids and future insert placement match the heap
// that was closed, and the live-tuple count is recomputed by scanning
// the slot directories (tombstones excluded, overflow chains not
// followed — the inline pointer is the live record).
func OpenHeapFile(pool *BufferPool, pages []uint32, lastPage int) (*HeapFile, error) {
	if lastPage < -1 || lastPage >= len(pages) {
		return nil, fmt.Errorf("storage: heap cursor %d out of range (%d pages)", lastPage, len(pages))
	}
	h := &HeapFile{pool: pool, pages: append([]uint32(nil), pages...), lastPage: lastPage}
	for _, pid := range h.pages {
		buf, err := pool.Pin(pid)
		if err != nil {
			return nil, err
		}
		p := page{buf}
		n := p.numSlots()
		for s := 0; s < n; s++ {
			if p.read(s) != nil {
				h.count++
			}
		}
		pool.Unpin(pid, false)
	}
	return h, nil
}

// Pages returns a copy of the heap's data page ids in allocation order
// (excluding overflow pages), for persisting in a catalog.
func (h *HeapFile) Pages() []uint32 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return append([]uint32(nil), h.pages...)
}

// LastPage returns the index into Pages of the insertion cursor
// (-1 for an empty heap).
func (h *HeapFile) LastPage() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.lastPage
}

// Count returns the number of live tuples.
func (h *HeapFile) Count() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.count
}

// NumPages returns the number of data pages (excluding overflow pages).
func (h *HeapFile) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// Insert stores a tuple and returns its record id.
func (h *HeapFile) Insert(tuple []byte) (RecordID, error) {
	inline := tuple
	if len(tuple) > MaxInlineTuple {
		ptr, err := h.writeOverflow(tuple)
		if err != nil {
			return RecordID{}, err
		}
		inline = ptr
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	try := func(pageIdx int) (RecordID, bool, error) {
		pid := h.pages[pageIdx]
		buf, err := h.pool.Pin(pid)
		if err != nil {
			return RecordID{}, false, err
		}
		slot := page{buf}.insert(inline)
		h.pool.Unpin(pid, slot >= 0)
		if slot < 0 {
			return RecordID{}, false, nil
		}
		h.lastPage = pageIdx
		h.count++
		return RecordID{Page: pid, Slot: uint16(slot)}, true, nil
	}

	if h.lastPage >= 0 && h.lastPage < len(h.pages) {
		if rid, ok, err := try(h.lastPage); err != nil || ok {
			return rid, err
		}
	}
	// Allocate a fresh page.
	pid, err := h.pool.Allocate()
	if err != nil {
		return RecordID{}, err
	}
	buf, err := h.pool.Pin(pid)
	if err != nil {
		return RecordID{}, err
	}
	initPage(buf)
	slot := page{buf}.insert(inline)
	h.pool.Unpin(pid, true)
	if slot < 0 {
		return RecordID{}, fmt.Errorf("storage: tuple of %d bytes does not fit a fresh page", len(inline))
	}
	h.pages = append(h.pages, pid)
	h.lastPage = len(h.pages) - 1
	h.count++
	return RecordID{Page: pid, Slot: uint16(slot)}, nil
}

// writeOverflow stores data across a chain of overflow pages and returns
// the inline pointer record.
func (h *HeapFile) writeOverflow(data []byte) ([]byte, error) {
	// Allocate the chain first so each page can point to the next.
	n := (len(data) + ovfDataCap - 1) / ovfDataCap
	ids := make([]uint32, n)
	for i := range ids {
		id, err := h.pool.Allocate()
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	rest := data
	for i, id := range ids {
		chunk := rest
		if len(chunk) > ovfDataCap {
			chunk = chunk[:ovfDataCap]
		}
		rest = rest[len(chunk):]
		buf, err := h.pool.Pin(id)
		if err != nil {
			return nil, err
		}
		next := uint32(ovfNoNext)
		if i+1 < len(ids) {
			next = ids[i+1]
		}
		binary.LittleEndian.PutUint32(buf[0:], next)
		binary.LittleEndian.PutUint16(buf[8:], uint16(len(chunk)))
		copy(buf[ovfHeaderSize:], chunk)
		h.pool.Unpin(id, true)
	}
	ptr := make([]byte, 1+4+4)
	ptr[0] = overflowMarker
	binary.LittleEndian.PutUint32(ptr[1:], ids[0])
	binary.LittleEndian.PutUint32(ptr[5:], uint32(len(data)))
	return ptr, nil
}

// readOverflow follows an overflow chain.
func (h *HeapFile) readOverflow(ptr []byte) ([]byte, error) {
	if len(ptr) != 9 {
		return nil, fmt.Errorf("storage: bad overflow pointer length %d", len(ptr))
	}
	id := binary.LittleEndian.Uint32(ptr[1:])
	total := int(binary.LittleEndian.Uint32(ptr[5:]))
	out := make([]byte, 0, total)
	for id != ovfNoNext {
		buf, err := h.pool.Pin(id)
		if err != nil {
			return nil, err
		}
		next := binary.LittleEndian.Uint32(buf[0:])
		l := int(binary.LittleEndian.Uint16(buf[8:]))
		out = append(out, buf[ovfHeaderSize:ovfHeaderSize+l]...)
		h.pool.Unpin(id, false)
		id = next
		if len(out) > total {
			return nil, fmt.Errorf("storage: overflow chain longer than declared %d bytes", total)
		}
	}
	if len(out) != total {
		return nil, fmt.Errorf("storage: overflow chain has %d bytes, declared %d", len(out), total)
	}
	return out, nil
}

// Get returns a copy of the tuple at rid, or an error if the slot is
// empty or out of range.
func (h *HeapFile) Get(rid RecordID) ([]byte, error) {
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return nil, err
	}
	raw := page{buf}.read(int(rid.Slot))
	if raw == nil {
		h.pool.Unpin(rid.Page, false)
		return nil, fmt.Errorf("storage: no tuple at %s", rid)
	}
	if raw[0] == overflowMarker {
		ptr := append([]byte(nil), raw...)
		h.pool.Unpin(rid.Page, false)
		return h.readOverflow(ptr)
	}
	out := append([]byte(nil), raw...)
	h.pool.Unpin(rid.Page, false)
	return out, nil
}

// GetAppend appends the tuple at rid to dst and returns the extended
// slice. It is Get without the per-call allocation: batch fetches reuse
// one scratch buffer across an id chunk instead of allocating a copy
// per row.
func (h *HeapFile) GetAppend(dst []byte, rid RecordID) ([]byte, error) {
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return dst, err
	}
	raw := page{buf}.read(int(rid.Slot))
	if raw == nil {
		h.pool.Unpin(rid.Page, false)
		return dst, fmt.Errorf("storage: no tuple at %s", rid)
	}
	if raw[0] == overflowMarker {
		ptr := append([]byte(nil), raw...)
		h.pool.Unpin(rid.Page, false)
		full, err := h.readOverflow(ptr)
		if err != nil {
			return dst, err
		}
		return append(dst, full...), nil
	}
	dst = append(dst, raw...)
	h.pool.Unpin(rid.Page, false)
	return dst, nil
}

// Delete removes the tuple at rid. Overflow pages are abandoned (they
// are reclaimed only by rebuilding the table).
func (h *HeapFile) Delete(rid RecordID) error {
	buf, err := h.pool.Pin(rid.Page)
	if err != nil {
		return err
	}
	ok := page{buf}.delete(int(rid.Slot))
	h.pool.Unpin(rid.Page, ok)
	if !ok {
		return fmt.Errorf("storage: no tuple at %s", rid)
	}
	h.mu.Lock()
	h.count--
	h.mu.Unlock()
	return nil
}

// Scan calls fn for every live tuple in heap order, stopping early when
// fn returns false. The tuple slice passed to fn is only valid during
// the call.
func (h *HeapFile) Scan(fn func(rid RecordID, tuple []byte) bool) error {
	h.mu.RLock()
	pages := append([]uint32(nil), h.pages...)
	h.mu.RUnlock()
	return h.scanPages(pages, fn)
}

// ScanShard calls fn for every live tuple in the shard'th of nshards
// page partitions. Partitions are contiguous page ranges, so visiting
// shards 0..nshards-1 in order reproduces exactly the tuples (and
// order) of Scan. Shards are disjoint; safe for concurrent use.
func (h *HeapFile) ScanShard(shard, nshards int, fn func(rid RecordID, tuple []byte) bool) error {
	if nshards < 1 || shard < 0 || shard >= nshards {
		return fmt.Errorf("storage: shard %d of %d out of range", shard, nshards)
	}
	h.mu.RLock()
	pages := append([]uint32(nil), h.pages...)
	h.mu.RUnlock()
	lo := shard * len(pages) / nshards
	hi := (shard + 1) * len(pages) / nshards
	return h.scanPages(pages[lo:hi], fn)
}

// scanPages drives Scan/ScanShard over the given data pages.
func (h *HeapFile) scanPages(pages []uint32, fn func(rid RecordID, tuple []byte) bool) error {
	for _, pid := range pages {
		buf, err := h.pool.Pin(pid)
		if err != nil {
			return err
		}
		p := page{buf}
		n := p.numSlots()
		for s := 0; s < n; s++ {
			raw := p.read(s)
			if raw == nil {
				continue
			}
			rid := RecordID{Page: pid, Slot: uint16(s)}
			if raw[0] == overflowMarker {
				ptr := append([]byte(nil), raw...)
				h.pool.Unpin(pid, false)
				full, err := h.readOverflow(ptr)
				if err != nil {
					return err
				}
				if !fn(rid, full) {
					return nil
				}
				if buf, err = h.pool.Pin(pid); err != nil {
					return err
				}
				p = page{buf}
				continue
			}
			if !fn(rid, raw) {
				h.pool.Unpin(pid, false)
				return nil
			}
		}
		h.pool.Unpin(pid, false)
	}
	return nil
}
