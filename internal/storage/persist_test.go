package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Reopen round-trips: a heap written through a FileStore-backed pool
// must read back identically through a fresh store handle — including
// overflow chains and tombstoned slots — and the catalog-level state
// needed to reattach (Pages/LastPage) must survive the trip.

func TestFileStoreReopenHeapRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewBufferPool(fs, 64)
	h := NewHeapFile(pool)

	big := bytes.Repeat([]byte{0x42}, 3*PageSize+100) // multi-page overflow chain
	var rids []RecordID
	var want [][]byte
	for i := 0; i < 200; i++ {
		tuple := []byte(fmt.Sprintf("tuple-%04d", i))
		if i%17 == 0 {
			tuple = append(append([]byte{byte(i)}, big...), byte(i))
		}
		rid, err := h.Insert(tuple)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		want = append(want, tuple)
	}
	// Tombstone a spread of slots, including an overflow row.
	deleted := map[int]bool{0: true, 17: true, 50: true, 199: true}
	for i := range deleted {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	pages, lastPage := h.Pages(), h.LastPage()
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := NewFileStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	pool2 := NewBufferPool(fs2, 64)
	h2, err := OpenHeapFile(pool2, pages, lastPage)
	if err != nil {
		t.Fatal(err)
	}
	if got, wantN := h2.Count(), len(rids)-len(deleted); got != wantN {
		t.Errorf("reopened count = %d, want %d", got, wantN)
	}
	for i, rid := range rids {
		got, err := h2.Get(rid)
		if deleted[i] {
			if err == nil {
				t.Errorf("tombstoned slot %d readable after reopen", i)
			}
			continue
		}
		if err != nil {
			t.Errorf("row %d: %v", i, err)
			continue
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("row %d differs after reopen (%d vs %d bytes)", i, len(got), len(want[i]))
		}
	}
	// The insertion cursor survived: a new insert lands where the old
	// heap would have put it.
	rid, err := h2.Insert([]byte("post-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if int(rid.Page) == 0 && len(pages) > 1 {
		t.Errorf("post-reopen insert landed on page 0; cursor lost")
	}
}

func TestFileStorePartialFinalPageRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Allocate(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, PageSize-100); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(path); err == nil {
		t.Fatal("partial final page accepted")
	}
}

func TestFileStoreAllocatePreallocatesInChunks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := fs.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Size(); got != int64(extendChunkPages)*PageSize {
		t.Errorf("after 10 allocations file spans %d bytes, want one chunk (%d)", got, extendChunkPages*PageSize)
	}
	// Sync trims the preallocation back to the allocated length, so a
	// reopened store sees exactly the allocated pages.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	info, err = os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Size(); got != 10*PageSize {
		t.Errorf("after Sync file spans %d bytes, want %d", got, 10*PageSize)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if got := fs2.NumPages(); got != 10 {
		t.Errorf("reopened store has %d pages, want 10", got)
	}
}

func TestMemAndFileStoreByteEquivalent(t *testing.T) {
	// The same write sequence through both stores must produce
	// byte-identical page arrays.
	path := filepath.Join(t.TempDir(), "pages.db")
	fs, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ms := NewMemStore()
	stores := []PageStore{ms, fs}
	for _, s := range stores {
		for i := 0; i < 20; i++ {
			if _, err := s.Allocate(); err != nil {
				t.Fatal(err)
			}
		}
		buf := make([]byte, PageSize)
		for i := 0; i < 20; i++ {
			for j := range buf {
				buf[j] = byte(i*31 + j)
			}
			if err := s.WritePage(uint32(i), buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, b := make([]byte, PageSize), make([]byte, PageSize)
	for i := uint32(0); i < 20; i++ {
		if err := ms.ReadPage(i, a); err != nil {
			t.Fatal(err)
		}
		if err := fs.ReadPage(i, b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("page %d differs between MemStore and FileStore", i)
		}
	}
}

func TestPoolLogDirtyAndNoSteal(t *testing.T) {
	// A fake logger records appends and durability waits.
	fs := NewMemStore()
	pool := NewBufferPool(fs, 64)
	logger := &fakeLogger{}
	pool.AttachWAL(logger)

	id, err := pool.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := pool.Pin(id)
	if err != nil {
		t.Fatal(err)
	}
	buf[100] = 0xAB
	pool.Unpin(id, true)

	// Uncaptured dirty page: FlushAll must refuse, not write.
	if err := pool.FlushAll(); err == nil {
		t.Fatal("FlushAll wrote an uncaptured dirty page")
	}
	n, err := pool.LogDirty(7)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("LogDirty captured %d pages, want 1", n)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatalf("FlushAll after LogDirty: %v", err)
	}
	if len(logger.waited) == 0 {
		t.Error("flush did not wait for durability")
	}
	// Re-dirtying resets the capture.
	buf, err = pool.Pin(id)
	if err != nil {
		t.Fatal(err)
	}
	buf[101] = 0xCD
	pool.Unpin(id, true)
	if got := pool.DirtyPages(); got != 1 {
		t.Errorf("DirtyPages = %d, want 1", got)
	}
	if err := pool.FlushAll(); err == nil {
		t.Fatal("re-dirtied page flushed without a fresh log record")
	}
}

type fakeLogger struct {
	next   uint64
	waited []uint64
}

func (l *fakeLogger) AppendPage(txn uint64, pageID uint32, buf []byte) (uint64, error) {
	l.next++
	return l.next, nil
}

func (l *fakeLogger) WaitDurable(lsn uint64) error {
	l.waited = append(l.waited, lsn)
	return nil
}
