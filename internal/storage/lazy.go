package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"jackpine/internal/geom"
)

// LazyTuple is a decode-on-demand view over an encoded tuple. Reset
// walks the encoding once, recording where each column starts, without
// materializing any value; callers then decode only the columns a plan
// references, and can read a geometry column's envelope straight from
// its WKB bytes (EnvelopeWKB) before deciding to pay for UnmarshalWKB.
//
// The view aliases the tuple bytes it was Reset with, so it is subject
// to the same lifetime rules (a heap scan's tuple slice is only valid
// during the callback). The zero value is ready for Reset; reusing one
// LazyTuple across the rows of a scan amortizes the offset slice.
type LazyTuple struct {
	data []byte
	offs []int // offs[i] is the byte offset of column i's type tag
	ends []int // ends[i] is the byte offset just past column i
}

// Reset points the view at a new encoded tuple of exactly n columns,
// validating the same structural properties DecodeTuple checks (column
// count, varint health, length prefixes, trailing bytes) but deferring
// all value materialization — including WKB decoding.
func (lt *LazyTuple) Reset(data []byte, n int) error {
	lt.data = data
	if cap(lt.offs) < n {
		lt.offs = make([]int, n)
		lt.ends = make([]int, n)
	}
	lt.offs = lt.offs[:n]
	lt.ends = lt.ends[:n]
	pos := 0
	for i := 0; i < n; i++ {
		if pos >= len(data) {
			return fmt.Errorf("storage: tuple truncated at column %d", i)
		}
		lt.offs[i] = pos
		t := ValueType(data[pos])
		pos++
		switch t {
		case TypeNull:
		case TypeInt, TypeBool:
			_, read := binary.Varint(data[pos:])
			if read <= 0 {
				return fmt.Errorf("storage: bad varint in column %d", i)
			}
			pos += read
		case TypeFloat:
			if pos+8 > len(data) {
				return fmt.Errorf("storage: truncated float in column %d", i)
			}
			pos += 8
		case TypeText:
			l, read := binary.Uvarint(data[pos:])
			if read <= 0 || pos+read+int(l) > len(data) {
				return fmt.Errorf("storage: truncated text in column %d", i)
			}
			pos += read + int(l)
		case TypeGeom:
			l, read := binary.Uvarint(data[pos:])
			if read <= 0 || pos+read+int(l) > len(data) {
				return fmt.Errorf("storage: truncated geometry in column %d", i)
			}
			pos += read + int(l)
		default:
			return fmt.Errorf("storage: unknown value type %d in column %d", t, i)
		}
		lt.ends[i] = pos
	}
	if pos != len(data) {
		return fmt.Errorf("storage: %d trailing bytes after tuple", len(data)-pos)
	}
	return nil
}

// Len returns the number of columns in the current tuple.
func (lt *LazyTuple) Len() int { return len(lt.offs) }

// Offsets exposes the per-column byte ranges of the current tuple:
// column i spans data[offs[i]:ends[i]]. The returned slices alias the
// view's internal state and are valid only until the next Reset; batch
// views copy them into their own flat offset arrays.
func (lt *LazyTuple) Offsets() (offs, ends []int) { return lt.offs, lt.ends }

// ColType returns the stored type tag of column i (TypeNull for NULL).
func (lt *LazyTuple) ColType(i int) ValueType {
	return ValueType(lt.data[lt.offs[i]])
}

// GeomWKB returns the raw WKB payload of geometry column i, aliasing
// the tuple bytes. It must only be called when ColType(i) == TypeGeom.
func (lt *LazyTuple) GeomWKB(i int) []byte {
	pos := lt.offs[i] + 1 // past the type tag
	_, read := binary.Uvarint(lt.data[pos:])
	return lt.data[pos+read : lt.ends[i]]
}

// GeomEnvelope returns the envelope of geometry column i computed
// directly from its WKB bytes, without decoding the geometry. ok is
// false when the column is NULL (a stored empty geometry reports
// ok=true with an empty rect, matching Envelope() on the decoded form).
func (lt *LazyTuple) GeomEnvelope(i int) (geom.Rect, bool, error) {
	if lt.ColType(i) != TypeGeom {
		return geom.EmptyRect(), false, nil
	}
	r, err := geom.EnvelopeWKB(lt.GeomWKB(i))
	if err != nil {
		return geom.EmptyRect(), false, fmt.Errorf("storage: column %d: %w", i, err)
	}
	return r, true, nil
}

// Col materializes column i, decoding geometries with UnmarshalWKB.
// Values are decoded fresh on every call; callers wanting memoization
// (or a shared decoded-geometry cache) layer it above this.
func (lt *LazyTuple) Col(i int) (Value, error) {
	return decodeColBytes(lt.data[lt.offs[i]:lt.ends[i]], i)
}

// decodeColBytes materializes one encoded column from its byte range
// (type tag through end); i is used only for error text. Shared by
// LazyTuple and ColBatch so both decode — and report errors —
// identically.
func decodeColBytes(buf []byte, i int) (Value, error) {
	t := ValueType(buf[0])
	pos := 1
	switch t {
	case TypeNull:
		return Null(), nil
	case TypeInt, TypeBool:
		v, _ := binary.Varint(buf[pos:])
		return Value{Type: t, Int: v}, nil
	case TypeFloat:
		bits := binary.LittleEndian.Uint64(buf[pos:])
		return NewFloat(math.Float64frombits(bits)), nil
	case TypeText:
		l, read := binary.Uvarint(buf[pos:])
		pos += read
		return NewText(string(buf[pos : pos+int(l)])), nil
	case TypeGeom:
		g, err := geom.UnmarshalWKB(geomWKBBytes(buf))
		if err != nil {
			return Null(), fmt.Errorf("storage: column %d: %w", i, err)
		}
		return NewGeom(g), nil
	}
	return Null(), fmt.Errorf("storage: unknown value type %d in column %d", t, i)
}

// geomWKBBytes returns the WKB payload of an encoded geometry column
// (buf starts at the type tag, which must be TypeGeom).
func geomWKBBytes(buf []byte) []byte {
	l, read := binary.Uvarint(buf[1:])
	return buf[1+read : 1+read+int(l)]
}
