package storage

import (
	"fmt"
	"os"
	"sync"
)

// PageStore is the backing store beneath the buffer pool: a flat,
// append-only array of fixed-size pages.
type PageStore interface {
	// Allocate appends a zeroed page and returns its id.
	Allocate() (uint32, error)
	// ReadPage copies page id into buf (len(buf) == PageSize).
	ReadPage(id uint32, buf []byte) error
	// WritePage copies buf into page id.
	WritePage(id uint32, buf []byte) error
	// NumPages returns the number of allocated pages.
	NumPages() uint32
	// Sync forces written pages to stable storage. Durability (the WAL
	// checkpoint protocol) depends on it; in-memory stores no-op.
	Sync() error
	// Close releases resources after syncing.
	Close() error
}

// MemStore keeps pages in memory, simulating a disk whose reads and
// writes are byte copies. Safe for concurrent use.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Allocate implements PageStore.
func (s *MemStore) Allocate() (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = append(s.pages, make([]byte, PageSize))
	return uint32(len(s.pages) - 1), nil
}

// ReadPage implements PageStore.
func (s *MemStore) ReadPage(id uint32, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(buf, s.pages[id])
	return nil
}

// WritePage implements PageStore.
func (s *MemStore) WritePage(id uint32, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	copy(s.pages[id], buf)
	return nil
}

// NumPages implements PageStore.
func (s *MemStore) NumPages() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint32(len(s.pages))
}

// Sync implements PageStore; memory is always "stable".
func (s *MemStore) Sync() error { return nil }

// Close implements PageStore.
func (s *MemStore) Close() error { return nil }

// extendChunkPages is the number of pages FileStore.Allocate extends the
// file by at a time. Extending in chunks via Truncate (sparse on every
// mainstream filesystem) replaces the one-zeroed-write-per-page pattern
// that made bulk loads O(pages) in syscalls.
const extendChunkPages = 64

// FileStore keeps pages in a single file. Safe for concurrent use.
type FileStore struct {
	mu    sync.Mutex
	f     *os.File
	pages uint32 // allocated (logical) pages
	phys  uint32 // pages the file physically covers (>= pages)
}

// NewFileStore opens (or creates) a page file at path. An existing file
// must contain a whole number of pages.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close() //lint:allow syncerr open failed mid-way; the stat error is primary and the file has no writes to lose
		return nil, fmt.Errorf("storage: stat page file: %w", err)
	}
	if info.Size()%PageSize != 0 {
		f.Close() //lint:allow syncerr rejecting a corrupt file; nothing was written through this handle
		return nil, fmt.Errorf("storage: page file %s has partial page (size %d)", path, info.Size())
	}
	n := uint32(info.Size() / PageSize)
	return &FileStore{f: f, pages: n, phys: n}, nil
}

// Allocate implements PageStore. The file is extended in chunks, so a
// burst of allocations costs one Truncate instead of one write each.
func (s *FileStore) Allocate() (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.pages
	if s.pages >= s.phys {
		s.phys = s.pages + extendChunkPages
		if err := s.f.Truncate(int64(s.phys) * PageSize); err != nil {
			s.phys = s.pages
			return 0, fmt.Errorf("storage: extend page file to %d pages: %w", s.pages+extendChunkPages, err)
		}
	}
	s.pages++
	return id, nil
}

// ReadPage implements PageStore.
func (s *FileStore) ReadPage(id uint32, buf []byte) error {
	s.mu.Lock()
	pages := s.pages
	s.mu.Unlock()
	if id >= pages {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if _, err := s.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements PageStore.
func (s *FileStore) WritePage(id uint32, buf []byte) error {
	s.mu.Lock()
	pages := s.pages
	s.mu.Unlock()
	if id >= pages {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	if _, err := s.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// NumPages implements PageStore.
func (s *FileStore) NumPages() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages
}

// Sync implements PageStore: the chunked preallocation is trimmed back
// to the allocated length (so a reopened store sees exactly the
// allocated pages) and the file is fsynced.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *FileStore) syncLocked() error {
	if s.phys != s.pages {
		if err := s.f.Truncate(int64(s.pages) * PageSize); err != nil {
			return fmt.Errorf("storage: trim page file to %d pages: %w", s.pages, err)
		}
		s.phys = s.pages
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync page file: %w", err)
	}
	return nil
}

// Close implements PageStore: Sync, then release the handle. A dropped
// fsync error here would be a silent durability hole, so both errors
// propagate (the close error only when the sync succeeded).
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	syncErr := s.syncLocked()
	closeErr := s.f.Close()
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("storage: close page file: %w", closeErr)
	}
	return nil
}
