package storage

import (
	"fmt"
	"os"
	"sync"
)

// PageStore is the backing store beneath the buffer pool: a flat,
// append-only array of fixed-size pages.
type PageStore interface {
	// Allocate appends a zeroed page and returns its id.
	Allocate() (uint32, error)
	// ReadPage copies page id into buf (len(buf) == PageSize).
	ReadPage(id uint32, buf []byte) error
	// WritePage copies buf into page id.
	WritePage(id uint32, buf []byte) error
	// NumPages returns the number of allocated pages.
	NumPages() uint32
	// Close releases resources.
	Close() error
}

// MemStore keeps pages in memory, simulating a disk whose reads and
// writes are byte copies. Safe for concurrent use.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Allocate implements PageStore.
func (s *MemStore) Allocate() (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = append(s.pages, make([]byte, PageSize))
	return uint32(len(s.pages) - 1), nil
}

// ReadPage implements PageStore.
func (s *MemStore) ReadPage(id uint32, buf []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(buf, s.pages[id])
	return nil
}

// WritePage implements PageStore.
func (s *MemStore) WritePage(id uint32, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	copy(s.pages[id], buf)
	return nil
}

// NumPages implements PageStore.
func (s *MemStore) NumPages() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint32(len(s.pages))
}

// Close implements PageStore.
func (s *MemStore) Close() error { return nil }

// FileStore keeps pages in a single file. Safe for concurrent use.
type FileStore struct {
	mu    sync.Mutex
	f     *os.File
	pages uint32
}

// NewFileStore opens (or creates) a page file at path. An existing file
// must contain a whole number of pages.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat page file: %w", err)
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: page file %s has partial page (size %d)", path, info.Size())
	}
	return &FileStore{f: f, pages: uint32(info.Size() / PageSize)}, nil
}

// Allocate implements PageStore.
func (s *FileStore) Allocate() (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.pages
	zero := make([]byte, PageSize)
	if _, err := s.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("storage: allocate page %d: %w", id, err)
	}
	s.pages++
	return id, nil
}

// ReadPage implements PageStore.
func (s *FileStore) ReadPage(id uint32, buf []byte) error {
	s.mu.Lock()
	pages := s.pages
	s.mu.Unlock()
	if id >= pages {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if _, err := s.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements PageStore.
func (s *FileStore) WritePage(id uint32, buf []byte) error {
	s.mu.Lock()
	pages := s.pages
	s.mu.Unlock()
	if id >= pages {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	if _, err := s.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// NumPages implements PageStore.
func (s *FileStore) NumPages() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages
}

// Close implements PageStore.
func (s *FileStore) Close() error { return s.f.Close() }
