package storage

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed size of every page.
const PageSize = 8192

// Slotted-page layout constants.
const (
	pageHeaderSize = 8 // numSlots u16, freeEnd u16, reserved u32
	slotSize       = 4 // offset u16, length u16
	// MaxInlineTuple is the largest tuple stored directly in a page;
	// larger tuples go to overflow chains.
	MaxInlineTuple = PageSize - pageHeaderSize - slotSize
)

// tombstoneOffset marks a deleted slot.
const tombstoneOffset = 0xFFFF

// page provides slotted-tuple access over a raw page buffer. It does not
// own the buffer.
type page struct {
	buf []byte
}

func (p page) numSlots() int { return int(binary.LittleEndian.Uint16(p.buf[0:])) }

func (p page) setNumSlots(n int) { binary.LittleEndian.PutUint16(p.buf[0:], uint16(n)) }

func (p page) freeEnd() int { return int(binary.LittleEndian.Uint16(p.buf[2:])) }

func (p page) setFreeEnd(v int) { binary.LittleEndian.PutUint16(p.buf[2:], uint16(v)) }

// initPage formats an empty page.
func initPage(buf []byte) {
	for i := range buf[:pageHeaderSize] {
		buf[i] = 0
	}
	p := page{buf}
	p.setNumSlots(0)
	// freeEnd == 0 encodes PageSize (the u16 cannot hold 8192 directly
	// when PageSize is 65536; with 8 KiB pages it fits, but the zero
	// encoding keeps freshly zeroed buffers valid).
	p.setFreeEnd(0)
}

func (p page) freeEndValue() int {
	v := p.freeEnd()
	if v == 0 {
		return PageSize
	}
	return v
}

func (p page) slot(i int) (offset, length int) {
	base := pageHeaderSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.buf[base:])),
		int(binary.LittleEndian.Uint16(p.buf[base+2:]))
}

func (p page) setSlot(i, offset, length int) {
	base := pageHeaderSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], uint16(offset))
	binary.LittleEndian.PutUint16(p.buf[base+2:], uint16(length))
}

// freeSpace returns the bytes available for a new tuple plus its slot.
func (p page) freeSpace() int {
	return p.freeEndValue() - (pageHeaderSize + p.numSlots()*slotSize)
}

// insert places data in the page, returning the slot number, or -1 when
// it does not fit.
func (p page) insert(data []byte) int {
	if len(data)+slotSize > p.freeSpace() {
		return -1
	}
	slotNo := p.numSlots()
	newEnd := p.freeEndValue() - len(data)
	copy(p.buf[newEnd:], data)
	p.setSlot(slotNo, newEnd, len(data))
	p.setNumSlots(slotNo + 1)
	p.setFreeEnd(newEnd)
	return slotNo
}

// read returns the tuple bytes in slot i (aliasing the page buffer), or
// nil when the slot is a tombstone or out of range.
func (p page) read(i int) []byte {
	if i < 0 || i >= p.numSlots() {
		return nil
	}
	off, length := p.slot(i)
	if off == tombstoneOffset {
		return nil
	}
	return p.buf[off : off+length]
}

// delete tombstones slot i, reporting whether it held a tuple.
func (p page) delete(i int) bool {
	if i < 0 || i >= p.numSlots() {
		return false
	}
	off, _ := p.slot(i)
	if off == tombstoneOffset {
		return false
	}
	p.setSlot(i, tombstoneOffset, 0)
	return true
}

// SetPageLSN stamps the low 32 bits of a WAL sequence number into the
// page header's reserved word (bytes 4-8). The stamp records which log
// write last captured the page; nothing on the read path interprets it,
// and redo applies full page images, so the truncation to 32 bits only
// limits the stamp's diagnostic reach, not recovery correctness.
func SetPageLSN(buf []byte, lsn uint64) {
	binary.LittleEndian.PutUint32(buf[4:], uint32(lsn))
}

// PageLSN reads the page header's LSN stamp.
func PageLSN(buf []byte) uint32 { return binary.LittleEndian.Uint32(buf[4:]) }

// RecordID addresses a tuple in a heap file.
type RecordID struct {
	Page uint32
	Slot uint16
}

// String renders the record id as page:slot.
func (r RecordID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }
